// Wardrive-campaign: the offline phase of Waldo at metro scale — run the
// full three-sensor campaign, compare the low-cost sensors' Algorithm 1
// labels against the spectrum analyzer (the paper's §2.2 feasibility
// study), then stand up the central database and serve models to a
// simulated WSD over HTTP.
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	waldo "github.com/wsdetect/waldo"
)

func main() {
	env, err := waldo.BuildMetroEnvironment(42)
	if err != nil {
		log.Fatal(err)
	}
	campaign, err := waldo.RunCampaign(waldo.CampaignSpec{
		Env:     env,
		Samples: 1500,
		Seed:    7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// §2.2: per-channel agreement of the low-cost sensors with the
	// analyzer ground truth.
	fmt.Println("channel  sensor      misdetect%  false-alarm%")
	for _, ch := range waldo.EvalChannels {
		truth, err := waldo.LabelReadings(campaign.Readings(ch, waldo.SensorSpectrumAnalyzer), waldo.LabelConfig{})
		if err != nil {
			log.Fatal(err)
		}
		for _, kind := range []waldo.SensorKind{waldo.SensorRTLSDR, waldo.SensorUSRPB200} {
			pred, err := waldo.LabelReadings(campaign.Readings(ch, kind), waldo.LabelConfig{})
			if err != nil {
				log.Fatal(err)
			}
			var fn, safe, fp, notSafe int
			for i := range truth {
				switch truth[i] {
				case waldo.LabelSafe:
					safe++
					if pred[i] == waldo.LabelNotSafe {
						fn++
					}
				case waldo.LabelNotSafe:
					notSafe++
					if pred[i] == waldo.LabelSafe {
						fp++
					}
				}
			}
			fmt.Printf("%-8v %-11v %9.1f%% %12.1f%%\n",
				ch, kind, pct(fn, safe), pct(fp, notSafe))
		}
	}

	// Offline phase complete: bootstrap the central spectrum database
	// with the RTL-SDR data and serve it.
	var all []waldo.Reading
	for _, ch := range waldo.EvalChannels {
		all = append(all, campaign.Readings(ch, waldo.SensorRTLSDR)...)
	}
	srv := waldo.NewDatabaseServer(waldo.DatabaseConfig{})
	if err := srv.Bootstrap(all); err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Online phase: a WSD downloads one compact descriptor per channel.
	client, err := waldo.NewClient(ts.URL, ts.Client())
	if err != nil {
		log.Fatal(err)
	}
	var total int
	for _, ch := range waldo.EvalChannels {
		_, n, err := client.Model(ch, waldo.SensorRTLSDR)
		if err != nil {
			log.Fatal(err)
		}
		total += n
	}
	fmt.Printf("\nWSD bootstrap: downloaded %d channel models, %d bytes total\n",
		len(waldo.EvalChannels), total)
}

func pct(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}
