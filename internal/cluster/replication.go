package cluster

import (
	"bytes"
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/wsdetect/waldo/internal/core"
	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
	"github.com/wsdetect/waldo/internal/telemetry"
	"github.com/wsdetect/waldo/internal/wlog"
)

// Replication wire format. The primary ships its journal stream — the
// same mutation order the WAL persists — as length-prefixed frames over
// HTTP POST /v1/repl/apply. Reading batches reuse the stable 67-byte
// binary reading codec from internal/core, so the replication path and
// the durability path serialize measurements identically.
//
//	exchange := u64 incarnation | frame...
//	frame    := u32 length | u64 seq | u8 kind | payload
//	append   := u16 channel | u8 sensor | u32 count | count × 67-byte readings
//	retrain  := u16 channel | u8 sensor | u32 version | u32 trainedCount
//
// The incarnation is a random nonzero identifier minted once per primary
// process; sequence numbers are contiguous within it, starting at 1. A
// replica adopts the first incarnation it sees while still empty and
// from then on follows exactly that stream: frames at or below its
// applied mark are skipped (retries after a partial apply are
// idempotent), a gap above it is refused with 409, and an exchange
// stamped with any other incarnation — a restarted primary, a
// misconfigured topology — is refused outright instead of being
// misread as retry idempotency. Every answer carries the replica's
// applied high-water mark plus the incarnation it follows, which is
// also the primary's ack.
const (
	frameAppend  byte = 1
	frameRetrain byte = 2

	exchangeHeaderSize = 8         // incarnation
	frameHeaderSize    = 4 + 8 + 1 // length + seq + kind
)

// Machine-readable refusal reasons in applyStatus.Reason.
const (
	reasonGap      = "sequence_gap"
	reasonMismatch = "incarnation_mismatch"
	reasonResync   = "resync_required"
	reasonPromoted = "promoted"
)

// newIncarnation mints a random nonzero primary-incarnation identifier.
func newIncarnation() uint64 {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		// crypto/rand failing means the OS entropy source is gone;
		// fall back to a time-derived value rather than refusing to
		// start (uniqueness, not secrecy, is what matters here).
		return mix(uint64(time.Now().UnixNano())) | 1
	}
	return binary.LittleEndian.Uint64(b[:]) | 1
}

// replRecord is one journaled mutation awaiting (or past) shipping.
type replRecord struct {
	kind     byte
	ch       rfenv.Channel
	sensor   sensor.Kind
	readings []dataset.Reading // kind == frameAppend
	version  int               // kind == frameRetrain
	trained  int               // kind == frameRetrain
}

// appendExchangeHeader starts an exchange body: the shipping primary's
// incarnation, ahead of the frames.
func appendExchangeHeader(dst []byte, incarnation uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], incarnation)
	return append(dst, b[:]...)
}

// decodeExchangeHeader splits the incarnation off the front of an
// exchange body.
func decodeExchangeHeader(b []byte) (uint64, []byte, error) {
	if len(b) < exchangeHeaderSize {
		return 0, nil, fmt.Errorf("cluster: exchange truncated: %d bytes", len(b))
	}
	inc := binary.LittleEndian.Uint64(b)
	if inc == 0 {
		return 0, nil, fmt.Errorf("cluster: exchange carries zero incarnation")
	}
	return inc, b[exchangeHeaderSize:], nil
}

// appendFrame renders one record as a wire frame with the given sequence
// number.
func appendFrame(dst []byte, seq uint64, rec *replRecord) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length backfilled below
	var b [9]byte
	binary.LittleEndian.PutUint64(b[:8], seq)
	b[8] = rec.kind
	dst = append(dst, b[:]...)
	var kb [3]byte
	binary.LittleEndian.PutUint16(kb[:2], uint16(rec.ch))
	kb[2] = byte(rec.sensor)
	dst = append(dst, kb[:]...)
	switch rec.kind {
	case frameAppend:
		dst = core.AppendReadingsWire(dst, rec.readings)
	case frameRetrain:
		var v [8]byte
		binary.LittleEndian.PutUint32(v[:4], uint32(rec.version))
		binary.LittleEndian.PutUint32(v[4:], uint32(rec.trained))
		dst = append(dst, v[:]...)
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}

// decodeFrame parses one frame off the front of b, returning the
// sequence number, the record, and the unconsumed remainder.
func decodeFrame(b []byte) (uint64, replRecord, []byte, error) {
	if len(b) < frameHeaderSize {
		return 0, replRecord{}, nil, fmt.Errorf("cluster: frame truncated: %d bytes", len(b))
	}
	length := int(binary.LittleEndian.Uint32(b))
	if len(b) < 4+length || length < 9+3 {
		return 0, replRecord{}, nil, fmt.Errorf("cluster: frame length %d outside body of %d bytes", length, len(b)-4)
	}
	body, rest := b[4:4+length], b[4+length:]
	seq := binary.LittleEndian.Uint64(body)
	rec := replRecord{
		kind:   body[8],
		ch:     rfenv.Channel(binary.LittleEndian.Uint16(body[9:])),
		sensor: sensor.Kind(body[11]),
	}
	payload := body[12:]
	switch rec.kind {
	case frameAppend:
		rs, tail, err := core.DecodeReadingsWire(payload)
		if err != nil {
			return 0, replRecord{}, nil, fmt.Errorf("cluster: frame %d: %w", seq, err)
		}
		if len(tail) != 0 {
			return 0, replRecord{}, nil, fmt.Errorf("cluster: frame %d: %d trailing bytes", seq, len(tail))
		}
		rec.readings = rs
	case frameRetrain:
		if len(payload) != 8 {
			return 0, replRecord{}, nil, fmt.Errorf("cluster: frame %d: retrain payload is %d bytes", seq, len(payload))
		}
		rec.version = int(binary.LittleEndian.Uint32(payload))
		rec.trained = int(binary.LittleEndian.Uint32(payload[4:]))
	default:
		return 0, replRecord{}, nil, fmt.Errorf("cluster: frame %d: unknown kind %d", seq, rec.kind)
	}
	return seq, rec, rest, nil
}

// applyStatus is the replica's answer to every replication exchange: its
// contiguous applied high-water mark, the primary incarnation it
// follows (0 until it has adopted one), and — on refusals — a
// machine-readable reason.
type applyStatus struct {
	Applied     uint64 `json:"applied"`
	Incarnation uint64 `json:"incarnation"`
	Reason      string `json:"reason,omitempty"`
}

// replicaLink is the shipping state for one replica.
type replicaLink struct {
	url string

	mu     sync.Mutex
	acked  uint64 // highest sequence the replica confirmed applied
	fenced bool   // replica refused our stream; operator resync required

	lag     *telemetry.Gauge
	shipped *telemetry.Counter
	errs    *telemetry.Counter
	resync  *telemetry.Gauge
}

// setFenced flips the link's fence and mirrors it into the resync
// gauge, reporting whether the state changed (so the caller can count
// the fencing error once, not once per 3ms shipping tick).
func (l *replicaLink) setFenced(v bool) bool {
	l.mu.Lock()
	changed := l.fenced != v
	l.fenced = v
	l.mu.Unlock()
	if !changed {
		return false
	}
	if v {
		l.resync.Set(1)
	} else {
		l.resync.Set(0)
	}
	return changed
}

// Replicator ships a primary's journal stream to its replicas. It
// implements dbserver.Tap: the dbserver invokes it under each store's
// lock in apply order, and it only appends to an in-memory log — the
// HTTP shipping happens on one background goroutine per replica, so
// replication never blocks the upload path (asynchronous by design; the
// WAL, not the replica, is what an ack promises).
//
// The log is truncated below the minimum sequence every healthy replica
// has confirmed, so steady-state memory is bounded by the slowest live
// replica's lag, not the primary's lifetime. Records below the
// truncation point are gone: a replica whose mark falls below it (or
// that follows a different incarnation) is fenced — shipping to it
// stops counting as progress, waldo_cluster_replication_resync_needed
// goes to 1, and the operator rebuilds it empty (OPERATIONS.md §3) —
// never silently re-shipped from 1.
type Replicator struct {
	incarnation uint64
	httpc       *http.Client
	interval    time.Duration
	maxBatch    int
	reg         *telemetry.Registry
	lg          *wlog.Logger

	mu   sync.Mutex
	base uint64 // sequences ≤ base are truncated away; log[0] is base+1
	log  []replRecord

	links []*replicaLink
	stopc chan struct{}
	wg    sync.WaitGroup
}

// newReplicator assembles the shipper; start() launches the loops.
func newReplicator(incarnation uint64, replicaURLs []string, httpc *http.Client,
	interval time.Duration, maxBatch int, metrics *telemetry.Registry, lg *wlog.Logger) *Replicator {
	r := &Replicator{
		incarnation: incarnation,
		httpc:       httpc,
		interval:    interval,
		maxBatch:    maxBatch,
		reg:         metrics,
		lg:          lg.Named("repl"),
		stopc:       make(chan struct{}),
	}
	for _, u := range replicaURLs {
		r.links = append(r.links, &replicaLink{
			url: u,
			lag: metrics.Gauge("waldo_cluster_replication_lag_records",
				"Journal records accepted by the primary but not yet confirmed applied by this replica.",
				"replica", u),
			shipped: metrics.Counter("waldo_cluster_replication_shipped_total",
				"Journal records confirmed applied by this replica.", "replica", u),
			errs: metrics.Counter("waldo_cluster_replication_errors_total",
				"Failed replication exchanges with this replica (retried on the next shipping tick).",
				"replica", u),
			resync: metrics.Gauge("waldo_cluster_replication_resync_needed",
				"1 when this replica refused the primary's stream (divergent history or truncated backlog) and must be rebuilt.",
				"replica", u),
		})
	}
	return r
}

func (r *Replicator) start() {
	for _, link := range r.links {
		r.wg.Add(1)
		go r.ship(link)
	}
}

func (r *Replicator) stop() {
	close(r.stopc)
	r.wg.Wait()
}

// TapReadings implements dbserver.Tap. Runs under the store lock: copy
// and enqueue, nothing else. The shipping loop is asynchronous, so the
// originating request's trace ends at the enqueue — each exchange later
// runs under its own repl/ship trace.
func (r *Replicator) TapReadings(_ context.Context, ch rfenv.Channel, kind sensor.Kind, rs []dataset.Reading) {
	rec := replRecord{kind: frameAppend, ch: ch, sensor: kind,
		readings: append([]dataset.Reading(nil), rs...)}
	r.mu.Lock()
	r.log = append(r.log, rec)
	r.mu.Unlock()
}

// TapRetrain implements dbserver.Tap.
func (r *Replicator) TapRetrain(_ context.Context, ch rfenv.Channel, kind sensor.Kind, version, trained int) {
	rec := replRecord{kind: frameRetrain, ch: ch, sensor: kind, version: version, trained: trained}
	r.mu.Lock()
	r.log = append(r.log, rec)
	r.mu.Unlock()
}

// logLen returns the highest assigned sequence number.
func (r *Replicator) logLen() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.base + uint64(len(r.log))
}

// pending snapshots up to maxBatch unshipped records after acked. ok is
// false when acked has fallen below the truncation point — those records
// no longer exist and the caller must fence the link instead of
// shipping. Records are append-only and truncation copies the retained
// tail, so the returned subslice is stable.
func (r *Replicator) pending(acked uint64) (top uint64, recs []replRecord, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	top = r.base + uint64(len(r.log))
	if acked < r.base {
		return top, nil, false
	}
	if acked >= top {
		return top, nil, true
	}
	start := acked - r.base
	end := start + uint64(r.maxBatch)
	if end > uint64(len(r.log)) {
		end = uint64(len(r.log))
	}
	return top, r.log[start:end], true
}

// truncate drops journal records every healthy replica has confirmed.
// Fenced links are excluded — they will never consume the backlog, and
// holding it for them would grow the primary without bound, which is
// exactly what truncation exists to prevent.
func (r *Replicator) truncate() {
	min := ^uint64(0)
	healthy := false
	for _, link := range r.links {
		link.mu.Lock()
		if !link.fenced && link.acked < min {
			min = link.acked
			healthy = true
		}
		link.mu.Unlock()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	top := r.base + uint64(len(r.log))
	if !healthy || min > top {
		min = top // every link fenced: nothing will ever consume the log
	}
	if min > r.base {
		// Copy the retained tail so the dropped prefix is actually freed
		// (a plain reslice would pin the whole backing array).
		r.log = append([]replRecord(nil), r.log[min-r.base:]...)
		r.base = min
	}
}

// ship is one replica's shipping loop: every tick, push everything past
// the replica's ack in maxBatch chunks until caught up or erroring
// (errors wait for the next tick — the replica being down must not spin
// the primary).
func (r *Replicator) ship(link *replicaLink) {
	defer r.wg.Done()
	t := time.NewTicker(r.interval)
	defer t.Stop()
	for {
		select {
		case <-r.stopc:
			return
		case <-t.C:
			for r.shipOnce(link) {
			}
		}
	}
}

// shipOnce pushes one chunk and returns true if it made progress and
// more may be pending. Every exchange that actually carries frames runs
// under its own repl/ship trace (shipping is asynchronous, so there is
// no client request to join); the trace header propagates to the
// replica, whose /v1/repl/apply spans join the same trace ID.
func (r *Replicator) shipOnce(link *replicaLink) bool {
	link.mu.Lock()
	acked := link.acked
	link.mu.Unlock()
	top, recs, ok := r.pending(acked)
	link.lag.Set(float64(top - acked))
	if !ok {
		// The replica's confirmed position predates the truncation point:
		// the records it needs are gone. Fence and surface it.
		if link.setFenced(true) {
			link.errs.Inc()
			r.lg.Error(context.Background(), "replica_fenced",
				"replica", link.url, "reason", "backlog_truncated", "acked", acked)
		}
		return false
	}
	if len(recs) == 0 {
		return false
	}
	sp := r.reg.StartTrace("repl/ship", telemetry.SpanContext{})
	sp.SetAttr("replica", link.url)
	sp.SetAttr("records", fmt.Sprintf("%d", len(recs)))
	ctx := telemetry.ContextWithSpan(context.Background(), sp)
	defer sp.End()
	body := appendExchangeHeader(nil, r.incarnation)
	for i := range recs {
		body = appendFrame(body, acked+uint64(i)+1, &recs[i])
	}
	req, err := http.NewRequest(http.MethodPost, link.url+"/v1/repl/apply", bytes.NewReader(body))
	if err != nil {
		link.errs.Inc()
		sp.Fail(err.Error())
		return false
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(telemetry.TraceHeader, sp.Context().Header())
	resp, err := r.httpc.Do(req)
	if err != nil {
		link.errs.Inc()
		sp.Fail(err.Error())
		r.lg.Warn(ctx, "ship_failed", "replica", link.url, "err", err)
		return false
	}
	defer resp.Body.Close()
	var st applyStatus
	if err := decodeJSONBody(resp.Body, &st); err != nil {
		link.errs.Inc()
		sp.Fail(err.Error())
		r.lg.Warn(ctx, "ship_bad_status_body", "replica", link.url, "err", err)
		return false
	}
	if st.Incarnation != r.incarnation {
		// The replica follows a different primary incarnation (or refused
		// to adopt ours because it already holds history). Its mark means
		// nothing to this journal — fence rather than trusting it.
		if link.setFenced(true) {
			link.errs.Inc()
			r.lg.Error(ctx, "replica_fenced", "replica", link.url,
				"reason", st.Reason, "follows", fmt.Sprintf("%016x", st.Incarnation),
				"ships", fmt.Sprintf("%016x", r.incarnation))
		}
		sp.Fail("incarnation mismatch")
		return false
	}
	r.mu.Lock()
	base := r.base
	r.mu.Unlock()
	if st.Applied < base {
		// The replica rejoined our incarnation below the truncation point
		// (only an emptied replica can rewind); its backlog is gone.
		if link.setFenced(true) {
			link.errs.Inc()
			r.lg.Error(ctx, "replica_fenced", "replica", link.url,
				"reason", "rewound_below_truncation", "applied", st.Applied, "base", base)
		}
		sp.Fail("replica below truncation point")
		return false
	}
	link.setFenced(false)
	link.mu.Lock()
	progressed := st.Applied > link.acked
	if progressed {
		link.shipped.Add(st.Applied - link.acked)
	}
	// A forward mark is the normal ack. A backward one (≥ base) means the
	// replica was rebuilt empty and re-adopted this incarnation — rewind
	// and refill it from its mark; the records are still in the log.
	link.acked = st.Applied
	link.mu.Unlock()
	link.lag.Set(float64(top - st.Applied))
	if progressed {
		r.truncate()
	}
	if resp.StatusCode != http.StatusOK {
		link.errs.Inc()
	}
	return progressed && resp.StatusCode == http.StatusOK
}

// Lag returns the largest number of journal records any replica still
// has to apply (0 with no replicas).
func (r *Replicator) Lag() uint64 {
	top := r.logLen()
	var worst uint64
	for _, link := range r.links {
		link.mu.Lock()
		acked := link.acked
		link.mu.Unlock()
		if lag := top - acked; lag > worst {
			worst = lag
		}
	}
	return worst
}

// Drain blocks until every replica has confirmed the entire current
// journal, polling between checks, or until ctx expires.
func (r *Replicator) Drain(ctx context.Context) error {
	for {
		if r.Lag() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("cluster: drain: %w (lag %d records)", ctx.Err(), r.Lag())
		case <-time.After(time.Millisecond):
		}
	}
}

// decodeJSONBody reads and decodes a small JSON body with a hard cap.
func decodeJSONBody(r io.Reader, v any) error {
	data, err := io.ReadAll(io.LimitReader(r, 1<<16))
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}
