package benchharness

import (
	"context"
	"strings"
	"testing"
	"time"
)

// geoSmokeTier mirrors smokeTier for the spatiotemporal query surface.
func geoSmokeTier() GeoTier {
	return GeoTier{
		Name:         "geo-smoke",
		Rate:         400,
		Duration:     1200 * time.Millisecond,
		RetrainEvery: 250 * time.Millisecond,
		Workers:      16,
	}
}

// checkGeoTier asserts the invariants every healthy geo smoke tier must
// hold, on either topology.
func checkGeoTier(t *testing.T, res TierResult) {
	t.Helper()
	if res.AvailabilityLoop == nil || res.RouteLoop == nil {
		t.Fatalf("geo tier missing loop stats: %+v", res)
	}
	for _, loop := range []*LoopStats{res.AvailabilityLoop, res.RouteLoop} {
		if loop.Scheduled == 0 || loop.Completed == 0 {
			t.Fatalf("query loop did nothing: %+v", loop)
		}
		if got := loop.Completed + loop.Dropped; got != loop.Scheduled {
			t.Errorf("loop accounting: completed %d + dropped %d != scheduled %d",
				loop.Completed, loop.Dropped, loop.Scheduled)
		}
	}
	byName := map[string]EndpointLatency{}
	for _, ep := range res.Endpoints {
		byName[ep.Endpoint] = ep
	}
	for _, name := range []string{"availability", "route", "retrain"} {
		ep, ok := byName[name]
		if !ok || ep.Count == 0 {
			t.Errorf("endpoint %q recorded no successful operations (%+v)", name, ep)
			continue
		}
		if ep.P50 <= 0 || ep.P50 > ep.P99 || ep.P99 > ep.P999 {
			t.Errorf("endpoint %q quantiles not ordered: p50=%v p99=%v p999=%v",
				name, ep.P50, ep.P99, ep.P999)
		}
	}
	// Unlike uploads, queries have no legitimate failure mode against a
	// healthy in-process server: every error is a bug.
	if byName["availability"].Errors != 0 || byName["route"].Errors != 0 {
		t.Errorf("query errors under smoke load: availability=%d route=%d",
			byName["availability"].Errors, byName["route"].Errors)
	}
	// The point of the tier: the grid must actually have been rebuilding
	// while the latency columns were measured.
	if res.GridRebuilds == 0 {
		t.Error("no grid rebuilds published during a tier with retrain churn")
	}
}

func TestGeoTierSingle(t *testing.T) {
	h, err := Start(Config{Topology: TopologySingle, Samples: 120})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close() //nolint:errcheck // second close in the success path
	res := h.RunGeoTier(context.Background(), geoSmokeTier())
	checkGeoTier(t, res)
	if err := h.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// A geo tier must ride the same reporting pipeline as an ingest
	// tier: append, flatten for the regression gate, render.
	traj := &Trajectory{Format: TrajectoryFormat}
	traj.Append(Run{Time: "test", Topologies: []TopologyResult{
		{Topology: TopologySingle, Tiers: []TierResult{res}},
	}})
	path := t.TempDir() + "/BENCH_10.json"
	if err := traj.Write(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := loaded.Flatten(-1)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"e2e/single/geo-smoke/availability/p99", "e2e/single/geo-smoke/route/p99"} {
		if !strings.Contains(flat, want) {
			t.Errorf("flattened gate output missing %q:\n%s", want, flat)
		}
	}
	if _, err := loaded.RenderMarkdown(); err != nil {
		t.Fatal(err)
	}
}

func TestGeoTierCluster(t *testing.T) {
	h, err := Start(Config{Topology: TopologyCluster, Samples: 120, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close() //nolint:errcheck // second close in the success path
	res := h.RunGeoTier(context.Background(), geoSmokeTier())
	checkGeoTier(t, res)
	if err := h.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestGeoTierRebuildOffRequestPath is the acceptance criterion for the
// snapshot-then-swap design: route-query latency with the rebuild
// machinery churning must stay in the same regime as with the grid
// fully quiescent. If rebuilds ever move onto the request path (a lock
// shared with queries, a synchronous rebuild in a handler), the churn
// run's tail blows out by orders of magnitude and this fails.
func TestGeoTierRebuildOffRequestPath(t *testing.T) {
	if raceEnabled {
		// The race detector multiplies the rebuild's CPU cost ~10×,
		// so on a small box the builder goroutine physically starves
		// the request path for the core — real contention, but not
		// the lock-sharing bug this test gates on. The strict
		// assertion runs in every race-free `go test ./...`.
		t.Skip("latency-regime assertion is meaningless under the race detector's CPU multiplier")
	}
	h, err := Start(Config{Topology: TopologySingle, Samples: 120})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close() //nolint:errcheck

	// The bootstrap campaign's last retrain schedules a coalesced
	// rebuild that can publish after Start returns; wait for the grid
	// to quiesce so the baseline really is rebuild-free.
	gen := h.gridGeneration()
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		time.Sleep(150 * time.Millisecond)
		if next := h.gridGeneration(); next == gen {
			break
		} else {
			gen = next
		}
	}

	quiet := geoSmokeTier()
	quiet.Name = "geo-quiet"
	quiet.RetrainEvery = -1 // no retrains, no rebuilds: the baseline
	base := h.RunGeoTier(context.Background(), quiet)
	if base.GridRebuilds != 0 {
		t.Fatalf("baseline tier saw %d rebuilds, want 0", base.GridRebuilds)
	}

	churn := geoSmokeTier()
	churn.Name = "geo-churn"
	res := h.RunGeoTier(context.Background(), churn)
	checkGeoTier(t, res)

	p99 := func(res TierResult, name string) float64 {
		for _, ep := range res.Endpoints {
			if ep.Endpoint == name {
				return ep.P99
			}
		}
		t.Fatalf("tier %s has no %q endpoint", res.Name, name)
		return 0
	}
	// Lenient on purpose: scheduler noise on a loaded CI box is real,
	// but an on-request-path rebuild costs whole model evaluations per
	// query and lands far beyond 10x + 20ms.
	for _, name := range []string{"route", "availability"} {
		quietP99, churnP99 := p99(base, name), p99(res, name)
		if churnP99 > quietP99*10+20e-3 {
			t.Errorf("%s p99 %.3fms under rebuild churn vs %.3fms quiet: rebuild work is on the request path",
				name, churnP99*1e3, quietP99*1e3)
		}
	}
}
