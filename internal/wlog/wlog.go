// Package wlog is Waldo's structured logging: leveled key-value events
// with per-event rate limiting and automatic trace-ID correlation.
//
// The paper's operator is a locality without an SRE team (§6's "local
// and low-cost" pitch), so logs must be useful raw: one line per event,
// `key=value` pairs greppable without a pipeline, the trace ID of the
// request that hit the problem attached automatically so the line links
// straight to GET /debug/traces. Subsystems that used to fail silently
// into counters (WAL wedges, replication fencing, gateway failover,
// shed rejections) log through this package.
//
// Design constraints, mirrored from internal/telemetry:
//
//   - Stdlib only.
//   - Nil-safe: every method on a nil *Logger is a no-op, so
//     instrumented code never branches on "is logging enabled".
//   - Flood-proof: each (component, event) key has a token-bucket rate
//     limit; suppressed lines are counted and reported on the next
//     emitted line (`suppressed=N`) and in waldo_log_suppressed_total,
//     so an error loop can't turn the disk into the outage.
package wlog

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/wsdetect/waldo/internal/telemetry"
)

// Level orders event severity.
type Level int8

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String renders the level as its canonical lowercase name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return "level(" + strconv.Itoa(int(l)) + ")"
}

// ParseLevel parses a level name ("debug", "info", "warn", "error").
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("wlog: unknown level %q", s)
}

// Options parameterizes New.
type Options struct {
	// W receives log lines; nil means io.Discard.
	W io.Writer
	// Min is the lowest level emitted. The zero value is LevelDebug
	// (emit everything); binaries set this from their -log-level flag.
	Min Level
	// Metrics, when set, receives waldo_log_events_total (by level) and
	// waldo_log_suppressed_total.
	Metrics *telemetry.Registry
	// RatePerKey is the sustained events/second allowed per
	// (component, event) key; default 5. Negative disables limiting.
	RatePerKey float64
	// Burst is the token-bucket depth per key; default 10.
	Burst float64
	// Now is the clock; nil means time.Now. Injectable for tests.
	Now func() time.Time
}

// core is the shared state behind every Named view of one logger.
type core struct {
	mu      sync.Mutex
	w       io.Writer
	buckets map[string]*bucket

	min   Level
	rate  float64
	burst float64
	now   func() time.Time

	events     [4]*telemetry.Counter
	suppressed *telemetry.Counter
}

// bucket is one (component, event) key's token bucket plus its count of
// suppressed lines since the last emission.
type bucket struct {
	tokens     float64
	last       time.Time
	suppressed uint64
}

// Logger emits structured events for one named component. Create the
// root with New, derive per-subsystem views with Named. All methods are
// safe for concurrent use and no-ops on a nil receiver.
type Logger struct {
	c    *core
	name string
}

// New builds a root logger.
func New(opts Options) *Logger {
	if opts.W == nil {
		opts.W = io.Discard
	}
	if opts.RatePerKey == 0 {
		opts.RatePerKey = 5
	}
	if opts.Burst <= 0 {
		opts.Burst = 10
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	c := &core{
		w:       opts.W,
		buckets: make(map[string]*bucket),
		min:     opts.Min,
		rate:    opts.RatePerKey,
		burst:   opts.Burst,
		now:     opts.Now,
	}
	const help = "Log lines emitted, by level."
	for lv := LevelDebug; lv <= LevelError; lv++ {
		c.events[lv] = opts.Metrics.Counter("waldo_log_events_total", help, "level", lv.String())
	}
	c.suppressed = opts.Metrics.Counter("waldo_log_suppressed_total",
		"Log lines dropped by per-event rate limiting.")
	return &Logger{c: c, name: "waldo"}
}

// Named returns a view of the same logger labeled with a component name
// ("dbserver", "gateway", "wal", "repl"). Rate limits are keyed by
// (component, event), so a noisy subsystem can't starve another's
// events.
func (l *Logger) Named(component string) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{c: l.c, name: component}
}

// Enabled reports whether lines at lv would be emitted — use it to skip
// expensive argument construction.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && lv >= l.c.min
}

// Debug emits a debug-level event.
func (l *Logger) Debug(ctx context.Context, event string, kv ...any) {
	l.log(ctx, LevelDebug, event, kv)
}

// Info emits an info-level event.
func (l *Logger) Info(ctx context.Context, event string, kv ...any) {
	l.log(ctx, LevelInfo, event, kv)
}

// Warn emits a warn-level event.
func (l *Logger) Warn(ctx context.Context, event string, kv ...any) {
	l.log(ctx, LevelWarn, event, kv)
}

// Error emits an error-level event.
func (l *Logger) Error(ctx context.Context, event string, kv ...any) {
	l.log(ctx, LevelError, event, kv)
}

func (l *Logger) log(ctx context.Context, lv Level, event string, kv []any) {
	if l == nil || lv < l.c.min {
		return
	}
	c := l.c
	now := c.now()

	// Rate limit before formatting: a suppressed line costs one map
	// lookup and a few float ops.
	key := l.name + "\x00" + event
	c.mu.Lock()
	b := c.buckets[key]
	if b == nil {
		b = &bucket{tokens: c.burst, last: now}
		c.buckets[key] = b
	}
	if c.rate > 0 {
		b.tokens += now.Sub(b.last).Seconds() * c.rate
		if b.tokens > c.burst {
			b.tokens = c.burst
		}
	}
	b.last = now
	if c.rate > 0 && b.tokens < 1 {
		b.suppressed++
		c.mu.Unlock()
		c.suppressed.Inc()
		return
	}
	b.tokens--
	wasSuppressed := b.suppressed
	b.suppressed = 0
	c.mu.Unlock()

	var sb strings.Builder
	sb.Grow(128)
	sb.WriteString(now.UTC().Format("2006-01-02T15:04:05.000Z"))
	sb.WriteByte(' ')
	sb.WriteString(lv.String())
	sb.WriteByte(' ')
	sb.WriteString(l.name)
	sb.WriteByte(' ')
	sb.WriteString(event)
	for i := 0; i+1 < len(kv); i += 2 {
		sb.WriteByte(' ')
		writeKey(&sb, kv[i])
		sb.WriteByte('=')
		writeValue(&sb, kv[i+1])
	}
	if len(kv)%2 != 0 {
		// A dangling key is a programming error; surface it rather than
		// silently dropping the value-less key.
		sb.WriteString(" !BADKEY=")
		writeValue(&sb, kv[len(kv)-1])
	}
	if sp := telemetry.SpanFromContext(ctx); sp != nil {
		if sc := sp.Context(); sc.Valid() {
			sb.WriteString(" trace=")
			sb.WriteString(sc.Trace.String())
			sb.WriteString(" span=")
			sb.WriteString(sc.Span.String())
		}
	}
	if wasSuppressed > 0 {
		sb.WriteString(" suppressed=")
		sb.WriteString(strconv.FormatUint(wasSuppressed, 10))
	}
	sb.WriteByte('\n')

	c.mu.Lock()
	_, _ = io.WriteString(c.w, sb.String())
	c.mu.Unlock()
	c.events[lv].Inc()
}

func writeKey(sb *strings.Builder, k any) {
	s, ok := k.(string)
	if !ok {
		s = fmt.Sprint(k)
	}
	sb.WriteString(s)
}

// writeValue renders one value: bare for clean scalars, strconv-quoted
// when quoting is needed to keep the line one-token-per-pair greppable.
func writeValue(sb *strings.Builder, v any) {
	switch x := v.(type) {
	case string:
		writeString(sb, x)
	case error:
		if x == nil {
			sb.WriteString("<nil>")
			return
		}
		writeString(sb, x.Error())
	case time.Duration:
		sb.WriteString(x.String())
	case int:
		sb.WriteString(strconv.Itoa(x))
	case int64:
		sb.WriteString(strconv.FormatInt(x, 10))
	case uint64:
		sb.WriteString(strconv.FormatUint(x, 10))
	case float64:
		sb.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
	case bool:
		sb.WriteString(strconv.FormatBool(x))
	case fmt.Stringer:
		writeString(sb, x.String())
	default:
		writeString(sb, fmt.Sprint(x))
	}
}

func writeString(sb *strings.Builder, s string) {
	if needsQuote(s) {
		sb.WriteString(strconv.Quote(s))
		return
	}
	sb.WriteString(s)
}

func needsQuote(s string) bool {
	if s == "" {
		return true
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c == '"' || c == '=' || c >= 0x7f {
			return true
		}
	}
	return false
}
