package dbserver

import (
	"context"
	"fmt"

	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
)

// Replica apply surface. A replica shard receives its primary's mutation
// stream (internal/cluster ships the journal order over HTTP) and folds
// it into its own stores through these two methods. They bypass the α′
// gate and upload screening on purpose: the primary already applied its
// acceptance policy, and re-deciding here could diverge the stores. Both
// paths journal into the replica's own WAL (when it has a data dir), so
// a replica recovers from its own disk exactly like a primary.

// ApplyReplicatedReadings appends a replicated batch to the store for a
// channel/sensor, creating the store if needed. ctx carries the shipping
// exchange's trace through to the replica's own WAL append.
func (s *Server) ApplyReplicatedReadings(ctx context.Context, ch rfenv.Channel, kind sensor.Kind, rs []dataset.Reading) error {
	if len(rs) == 0 {
		return fmt.Errorf("dbserver: empty replicated batch")
	}
	for i := range rs {
		if rs[i].Channel != ch || rs[i].Sensor != kind {
			return fmt.Errorf("dbserver: replicated batch for %v/%v holds a %v/%v reading",
				ch, kind, rs[i].Channel, rs[i].Sensor)
		}
	}
	u, err := s.updaterFor(ch, kind)
	if err != nil {
		return err
	}
	u.BootstrapCtx(ctx, rs)
	s.maybeSnapshot(storeKey{ch, kind})
	return nil
}

// ApplyReplicatedRetrain rebuilds the model for a channel/sensor from the
// first trainedCount store readings and installs it at exactly the
// primary's version, so the replica serves byte-identical descriptors.
func (s *Server) ApplyReplicatedRetrain(ctx context.Context, ch rfenv.Channel, kind sensor.Kind, version, trainedCount int) error {
	u, err := s.updaterFor(ch, kind)
	if err != nil {
		return err
	}
	return u.RetrainAtCtx(ctx, version, trainedCount)
}

// HasData reports whether any store holds readings or a trained model —
// i.e. whether the server carries history a replication stream could
// conflict with. The cluster tier uses it to decide whether a node may
// adopt a primary's stream (only an empty node can) and whether a
// primary must seed its journal with recovered state before shipping.
func (s *Server) HasData() bool {
	_, byKey := s.storeSnapshot()
	for _, u := range byKey {
		if u.Size() > 0 {
			return true
		}
		if _, version := u.Model(); version > 0 {
			return true
		}
	}
	return false
}

// SnapshotStores passes every store's consistent (readings, model
// version, trained count) view to fn in deterministic key order. The
// readings slice is the updater's capacity-clamped checkpoint view;
// stores are append-only, so callers may retain it as a snapshot. The
// cluster tier uses this at node startup to seed a restarted primary's
// replication journal with its WAL-recovered state.
func (s *Server) SnapshotStores(fn func(ch rfenv.Channel, kind sensor.Kind, rs []dataset.Reading, version, trained int)) {
	keys, byKey := s.storeSnapshot()
	for _, k := range keys {
		byKey[k].Checkpoint(func(rs []dataset.Reading, version, trained int) {
			fn(k.ch, k.kind, rs, version, trained)
		})
	}
}
