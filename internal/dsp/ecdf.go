package dsp

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// ECDF is an empirical cumulative distribution function over a sample.
// Several of the paper's figures (5, 7, 14c, 17, 18) are CDF plots; ECDF is
// the series type the experiment harness renders them from.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from a sample (which it copies and sorts).
// NaN values are dropped.
func NewECDF(sample []float64) *ECDF {
	s := make([]float64, 0, len(sample))
	for _, v := range sample {
		if !math.IsNaN(v) {
			s = append(s, v)
		}
	}
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// At returns F(x) = P(X ≤ x).
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	idx := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(e.sorted))
}

// Quantile returns the p-quantile (0 ≤ p ≤ 1) of the sample.
func (e *ECDF) Quantile(p float64) float64 {
	if len(e.sorted) == 0 || p < 0 || p > 1 {
		return math.NaN()
	}
	return percentileSorted(e.sorted, p*100)
}

// Mean returns the sample mean.
func (e *ECDF) Mean() float64 { return Mean(e.sorted) }

// Min and Max return the sample extrema.
func (e *ECDF) Min() float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	return e.sorted[0]
}

// Max returns the largest sample value.
func (e *ECDF) Max() float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	return e.sorted[len(e.sorted)-1]
}

// Series samples the CDF at n evenly spaced x positions across the sample
// range, returning (x, F(x)) pairs suitable for plotting or table output.
func (e *ECDF) Series(n int) (xs, fs []float64) {
	if len(e.sorted) == 0 || n < 2 {
		return nil, nil
	}
	lo, hi := e.Min(), e.Max()
	xs = make([]float64, n)
	fs = make([]float64, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		xs[i] = x
		fs[i] = e.At(x)
	}
	return xs, fs
}

// RenderQuantiles formats a compact quantile table (p10/p25/p50/p75/p90)
// with the given value unit, used in experiment reports.
func (e *ECDF) RenderQuantiles(unit string) string {
	var b strings.Builder
	for _, p := range []float64{0.10, 0.25, 0.50, 0.75, 0.90} {
		fmt.Fprintf(&b, "p%02.0f=%.3f%s ", p*100, e.Quantile(p), unit)
	}
	return strings.TrimSpace(b.String())
}

// KolmogorovSmirnov returns the two-sample KS statistic between e and o:
// the maximum absolute difference between the two empirical CDFs. The
// sensor-sensitivity experiment uses it to quantify how distinguishable two
// input power levels are from a sensor's reading distributions (Fig. 5).
func (e *ECDF) KolmogorovSmirnov(o *ECDF) float64 {
	if e.Len() == 0 || o.Len() == 0 {
		return math.NaN()
	}
	var maxDiff float64
	for _, x := range e.sorted {
		if d := math.Abs(e.At(x) - o.At(x)); d > maxDiff {
			maxDiff = d
		}
	}
	for _, x := range o.sorted {
		if d := math.Abs(e.At(x) - o.At(x)); d > maxDiff {
			maxDiff = d
		}
	}
	return maxDiff
}
