package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"

	"github.com/wsdetect/waldo/internal/core"
	"github.com/wsdetect/waldo/internal/features"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
)

// sharedSuite keeps one small campaign for the whole test binary: building
// it dominates test time otherwise.
var (
	sharedOnce  sync.Once
	sharedSuite *Suite
)

func testSuite(t *testing.T) *Suite {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment suite tests need the campaign")
	}
	sharedOnce.Do(func() {
		sharedSuite = NewSuite(Config{Seed: 42, Samples: 1400})
	})
	return sharedSuite
}

func TestSuiteConfigDefaults(t *testing.T) {
	s := NewSuite(Config{})
	if s.Config().Samples != 5282 {
		t.Errorf("default samples = %d, want the paper's 5282", s.Config().Samples)
	}
	if s.Config().Seed == 0 {
		t.Error("default seed must be non-zero")
	}
}

func TestAntennaCorrectionValue(t *testing.T) {
	if c := AntennaCorrectionDB(); c < 7 || c > 8 {
		t.Errorf("correction = %v, paper reports ≈7.5", c)
	}
}

func TestSec22Shape(t *testing.T) {
	s := testSuite(t)
	res, err := s.Sec22SafetyEfficiency()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 18 { // 9 channels × 2 sensors
		t.Fatalf("rows = %d, want 18", len(res.Rows))
	}
	rtl := res.Overall[sensor.KindRTLSDR]
	usrp := res.Overall[sensor.KindUSRPB200]
	// The paper's headline orderings.
	if rtl.FNRate() <= usrp.FNRate() {
		t.Errorf("RTL misdetection (%.3f) must exceed USRP (%.3f)", rtl.FNRate(), usrp.FNRate())
	}
	if rtl.FPRate() > usrp.FPRate()+0.01 {
		t.Errorf("RTL false alarms (%.3f) should not exceed USRP (%.3f)", rtl.FPRate(), usrp.FPRate())
	}
	if !strings.Contains(res.Render(), "OVERALL") {
		t.Error("render must include the overall rows")
	}
}

func TestFig4Shape(t *testing.T) {
	s := testSuite(t)
	res, err := s.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(res.Rows))
	}
	// The database over-protects: mean FN well above its FP.
	if res.MeanFNPlain < 0.05 {
		t.Errorf("mean FN = %v, expected substantial over-protection", res.MeanFNPlain)
	}
	if res.MeanFNPlain <= res.MeanFPPlain {
		t.Errorf("over-protection must dominate: FN %.3f vs FP %.3f", res.MeanFNPlain, res.MeanFPPlain)
	}
	// Correction shrinks detected white space, so FN drops.
	if res.MeanFNCorrected >= res.MeanFNPlain {
		t.Errorf("corrected FN (%.3f) should drop below plain FN (%.3f)", res.MeanFNCorrected, res.MeanFNPlain)
	}
	// Fully occupied channels have no white space to miss.
	for _, row := range res.Rows {
		if (row.Channel == 27 || row.Channel == 39) && row.FNPlain != 0 {
			t.Errorf("%v FN = %v, want 0", row.Channel, row.FNPlain)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	s := testSuite(t)
	res, err := s.Fig5SensorSensitivity()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sensors) != 2 {
		t.Fatalf("sensors = %d", len(res.Sensors))
	}
	for _, fs := range res.Sensors {
		if fs.DetectableFloorDBm > -90 {
			t.Errorf("%v detectable floor %v, too insensitive", fs.Kind, fs.DetectableFloorDBm)
		}
		// KS must decrease toward the floor (weaker levels less
		// distinguishable).
		first := fs.Levels[0].KSFromNoSignal
		if first < 0.9 {
			t.Errorf("%v strongest level KS = %v, want ≈1", fs.Kind, first)
		}
	}
	// USRP reaches deeper than the RTL.
	var rtl, usrp float64
	for _, fs := range res.Sensors {
		switch fs.Kind {
		case sensor.KindRTLSDR:
			rtl = fs.DetectableFloorDBm
		case sensor.KindUSRPB200:
			usrp = fs.DetectableFloorDBm
		}
	}
	if usrp >= rtl {
		t.Errorf("USRP floor (%v) should be below RTL floor (%v)", usrp, rtl)
	}
}

func TestFig6Shape(t *testing.T) {
	s := testSuite(t)
	res, err := s.Fig6DetectionTraces(300)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 300 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, k := range []sensor.Kind{sensor.KindRTLSDR, sensor.KindUSRPB200} {
		if res.Agreement[k] < 0.6 {
			t.Errorf("%v label agreement = %v, want correlated traces", k, res.Agreement[k])
		}
		if res.RSSCorrelation[k] < 0.7 {
			t.Errorf("%v RSS correlation = %v, want high (Fig. 6b)", k, res.RSSCorrelation[k])
		}
	}
}

func TestFig7Shape(t *testing.T) {
	s := testSuite(t)
	res, err := s.Fig7LabelCorrelation()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Median < 0.5 {
		t.Errorf("median correlation = %v, want high", res.Median)
	}
	if math.IsNaN(res.Median) {
		t.Error("median is NaN")
	}
}

func TestFig10Shape(t *testing.T) {
	s := testSuite(t)
	res, err := s.Fig10and11FeatureBoxplots()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 { // 2 channels × 2 sensors
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		for _, box := range row.Boxes {
			// Not-safe medians sit above safe medians for every feature
			// (signal presence shifts all three).
			if box.NotSafe.Median <= box.Safe.Median {
				t.Errorf("%v/%v %s: not-safe median %.1f ≤ safe median %.1f",
					row.Channel, row.Kind, box.Feature, box.NotSafe.Median, box.Safe.Median)
			}
		}
	}
}

func TestFig13Shape(t *testing.T) {
	s := testSuite(t)
	res, err := s.Fig13LocalModels()
	if err != nil {
		t.Fatal(err)
	}
	// Clustering improves FP: k=3 beats k=1 at the Table-1 feature count.
	fp1, ok1 := res.Rate(sensor.KindUSRPB200, 1, features.SetLocationRSSCFT, false)
	fp3, ok3 := res.Rate(sensor.KindUSRPB200, 3, features.SetLocationRSSCFT, false)
	if !ok1 || !ok3 {
		t.Fatal("missing cells")
	}
	if fp3 > fp1+0.005 {
		t.Errorf("k=3 FP (%.4f) should improve on k=1 (%.4f)", fp3, fp1)
	}
}

func TestTable1Shape(t *testing.T) {
	s := testSuite(t)
	res, err := s.Table1VScopeComparison()
	if err != nil {
		t.Fatal(err)
	}
	// Waldo beats V-Scope decisively on FP (safety).
	if res.VScope.FPRate() < 2*res.WaldoUSRP.FPRate() {
		t.Errorf("V-Scope FP (%.3f) should be far worse than Waldo (%.3f)",
			res.VScope.FPRate(), res.WaldoUSRP.FPRate())
	}
	if len(res.PerChannel) != len(rfenv.EvalChannels) {
		t.Fatalf("per-channel rows = %d", len(res.PerChannel))
	}
	_, ratio := res.BestErrorRatio()
	if ratio < 2 {
		t.Errorf("best Waldo advantage = %.1fx, want multiple-fold", ratio)
	}
}

func TestFig17Shape(t *testing.T) {
	s := testSuite(t)
	res, err := s.Fig17Convergence()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stationary.Len() == 0 {
		t.Fatal("no stationary convergences")
	}
	mean := res.Stationary.Mean()
	if mean <= 0 || mean > 2 {
		t.Errorf("stationary convergence mean = %v s, want sub-second scale", mean)
	}
	if res.MobileConvergedFrac >= 0.95 {
		t.Errorf("mobile convergence fraction = %v, should degrade vs stationary", res.MobileConvergedFrac)
	}
	if res.FullScanSeconds <= 2 {
		t.Logf("full scan %.2f s within the 802.22 budget (paper exceeded it)", res.FullScanSeconds)
	}
}

func TestFig18Shape(t *testing.T) {
	s := testSuite(t)
	res, err := s.Fig18CPUOverhead()
	if err != nil {
		t.Fatal(err)
	}
	if res.NormalizedPct <= 0 || res.NormalizedPct > 50 {
		t.Errorf("normalized CPU = %v%%", res.NormalizedPct)
	}
	if res.DownloadBytesNB >= res.DownloadBytesSVM {
		t.Errorf("NB descriptor (%d) must be smaller than SVM (%d)",
			res.DownloadBytesNB, res.DownloadBytesSVM)
	}
}

func TestSec5Shape(t *testing.T) {
	s := testSuite(t)
	res, err := s.Sec5ModelSize()
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes[core.KindNB] >= res.Bytes[core.KindSVM] {
		t.Errorf("NB (%d B) must be smaller than SVM (%d B)",
			res.Bytes[core.KindNB], res.Bytes[core.KindSVM])
	}
	if res.Bytes[core.KindNB] > 4096 {
		t.Errorf("NB descriptor %d B, want ≤ 4 kB", res.Bytes[core.KindNB])
	}
}

func TestTable2Shape(t *testing.T) {
	s := testSuite(t)
	res, err := s.Table2Qualitative()
	if err != nil {
		t.Fatal(err)
	}
	if res.SensingFNRate < 0.9 {
		t.Errorf("sensing-only FN = %v, the −114 rule should forfeit nearly everything", res.SensingFNRate)
	}
	if !strings.Contains(res.Render(), "Waldo") {
		t.Error("render must include the Waldo row")
	}
}

func TestAblationLabelingMonotone(t *testing.T) {
	s := testSuite(t)
	res, err := s.AblationLabeling()
	if err != nil {
		t.Fatal(err)
	}
	byKey := func(thr, radius float64) float64 {
		for _, row := range res.Rows {
			if row.ThresholdDBm == thr && row.ProtectRadiusM == radius {
				return row.SafeFraction
			}
		}
		t.Fatalf("missing row %v/%v", thr, radius)
		return 0
	}
	// Shrinking the radius frees spectrum; lowering the threshold costs it.
	if !(byKey(-84, 1700) >= byKey(-84, 4000) && byKey(-84, 4000) >= byKey(-84, 6000)) {
		t.Error("safe fraction must grow as the protection radius shrinks")
	}
	if byKey(-90, 6000) > byKey(-84, 6000) {
		t.Error("a lower threshold must not free spectrum")
	}
	if byKey(-114, 6000) > 0.02 {
		t.Errorf("−114 dBm rule leaves %.3f safe, want ≈0", byKey(-114, 6000))
	}
}

func TestRendersNonEmpty(t *testing.T) {
	s := testSuite(t)
	res, err := s.Fig14TrainingSize()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Render(), "Fig. 14") {
		t.Error("render header missing")
	}
	// More data should help on average (allowing small noise).
	if res.MeanErrorAt(1.0) > res.MeanErrorAt(0.25)+0.02 {
		t.Errorf("error at full data (%v) should not exceed error at 25%% (%v)",
			res.MeanErrorAt(1.0), res.MeanErrorAt(0.25))
	}

	f15, err := s.Fig15AntennaCorrection()
	if err != nil {
		t.Fatal(err)
	}
	if len(f15.SurvivingChannels) == 0 {
		t.Error("some channels must survive the correction")
	}
	for _, ch := range f15.SurvivingChannels {
		if ch == 21 || ch == 30 || ch == 46 {
			t.Errorf("%v should flood under the correction", ch)
		}
	}
}

func TestAblationSafetyMarginCurve(t *testing.T) {
	s := testSuite(t)
	res, err := s.AblationSafetyMargin()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// FP must be non-increasing and FN non-decreasing along the sweep.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Metrics.FPRate() > res.Rows[i-1].Metrics.FPRate()+0.003 {
			t.Errorf("FP rose at margin %v: %v -> %v", res.Rows[i].Margin,
				res.Rows[i-1].Metrics.FPRate(), res.Rows[i].Metrics.FPRate())
		}
		if res.Rows[i].Metrics.FNRate() < res.Rows[i-1].Metrics.FNRate()-0.003 {
			t.Errorf("FN fell at margin %v", res.Rows[i].Margin)
		}
	}
}

func TestAblationTemporalDrift(t *testing.T) {
	s := testSuite(t)
	res, err := s.AblationTemporalDrift()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(rfenv.EvalChannels) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The refreshed model must not be worse overall than the stale one.
	if res.UpdatedTotal.ErrorRate() > res.StaleTotal.ErrorRate()+0.005 {
		t.Errorf("updated error %.4f exceeds stale %.4f",
			res.UpdatedTotal.ErrorRate(), res.StaleTotal.ErrorRate())
	}
	// Drift must actually cost the stale model something, or the
	// experiment is vacuous.
	if res.StaleTotal.ErrorRate() < 0.01 {
		t.Errorf("stale error %.4f — environment drift had no effect", res.StaleTotal.ErrorRate())
	}
}
