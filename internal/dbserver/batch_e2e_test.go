package dbserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/wsdetect/waldo/internal/core"
	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/sensor"
)

// uploadJSONReadings ships readings through the single JSON upload path.
func uploadJSONReadings(t *testing.T, ts *httptest.Server, rs []dataset.Reading, ciSpan float64) {
	t.Helper()
	up := UploadJSON{CISpanDB: ciSpan}
	for _, r := range rs {
		up.Readings = append(up.Readings, FromReading(r))
	}
	body, err := json.Marshal(up)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/readings", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("JSON upload = %s", resp.Status)
	}
}

// uploadBinaryReadings ships readings as one binary batch frame.
func uploadBinaryReadings(t *testing.T, ts *httptest.Server, rs []dataset.Reading, ciSpan float64) {
	t.Helper()
	frame, err := core.EncodeBatchFrame(rs)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/upload/batch", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(CISpanHeader, fmt.Sprint(ciSpan))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("binary upload = %s", resp.Status)
	}
}

// fetchModelBytes downloads the encoded model for ch47/rtl-sdr.
func fetchModelBytes(t *testing.T, ts *httptest.Server) []byte {
	t.Helper()
	body := getOK(t, ts, "/v1/model?channel=47&sensor=1")
	return body
}

func getOK(t *testing.T, ts *httptest.Server, path string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %s (%s)", path, resp.Status, buf.String())
	}
	return buf.Bytes()
}

// TestBatchVsSingleEndToEnd is the tentpole's equivalence proof on
// durable servers: the same readings ingested as binary batch frames on
// one server and as per-scan JSON uploads on another must produce
// byte-identical trusted stores, identical served models, and identical
// state again after both processes crash (no Close) and recover from
// WAL. The binary path is a faster encoding of the same ingest, not a
// second ingest semantics.
func TestBatchVsSingleEndToEnd(t *testing.T) {
	dirBatch, dirSingle := t.TempDir(), t.TempDir()
	mk := func(dir string) (*Server, *httptest.Server) {
		s, err := Open(durableConfig(dir))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Bootstrap(synthReadings(600, 47, 1)); err != nil {
			t.Fatal(err)
		}
		return s, httptest.NewServer(s.Handler())
	}
	sb, tsb := mk(dirBatch)
	ss, tss := mk(dirSingle)

	fresh := synthReadings(120, 47, 9)
	// Binary side: three frames of 40. JSON side: the same readings in
	// twelve 10-reading uploads — different framing, same stream.
	for i := 0; i < 120; i += 40 {
		uploadBinaryReadings(t, tsb, fresh[i:i+40], 0.5)
	}
	for i := 0; i < 120; i += 10 {
		uploadJSONReadings(t, tss, fresh[i:i+10], 0.5)
	}
	for _, ts := range []*httptest.Server{tsb, tss} {
		resp, err := http.Post(ts.URL+"/v1/retrain?channel=47&sensor=1", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("retrain = %s", resp.Status)
		}
	}

	if b, s := exportCSV(t, tsb, 47, 1), exportCSV(t, tss, 47, 1); b != s {
		t.Fatal("batch-ingested store differs from single-ingested store")
	}
	if b, s := fetchModelBytes(t, tsb), fetchModelBytes(t, tss); !bytes.Equal(b, s) {
		t.Fatal("batch-ingested model differs from single-ingested model")
	}
	if b, s := sb.ModelVersion(47, sensor.KindRTLSDR), ss.ModelVersion(47, sensor.KindRTLSDR); b != s {
		t.Fatalf("model versions diverge: batch %d, single %d", b, s)
	}

	// Crash both (flush so bytes are on disk, then abandon without Close)
	// and recover: equality must survive WAL replay.
	for _, s := range []*Server{sb, ss} {
		if err := s.FlushWAL(); err != nil {
			t.Fatal(err)
		}
	}
	tsb.Close()
	tss.Close()
	sb2, err := Open(durableConfig(dirBatch))
	if err != nil {
		t.Fatal(err)
	}
	defer sb2.Close()
	ss2, err := Open(durableConfig(dirSingle))
	if err != nil {
		t.Fatal(err)
	}
	defer ss2.Close()
	tsb2, tss2 := httptest.NewServer(sb2.Handler()), httptest.NewServer(ss2.Handler())
	defer tsb2.Close()
	defer tss2.Close()
	if b, s := exportCSV(t, tsb2, 47, 1), exportCSV(t, tss2, 47, 1); b != s {
		t.Fatal("recovered stores differ between batch and single ingest")
	}
	if b, s := sb2.ModelVersion(47, sensor.KindRTLSDR), ss2.ModelVersion(47, sensor.KindRTLSDR); b != s {
		t.Fatalf("recovered model versions diverge: batch %d, single %d", b, s)
	}
}

// TestBatchCrashMidAppendIsAtomic kills the server "mid-batch": the WAL
// record group-committing the last frame is torn on disk, as if power
// died during the write. Recovery must surface every fully committed
// batch and none of the torn one — a reading count strictly between two
// batch boundaries would mean a half-applied frame, which the whole
// retry/requeue design (client re-sends unacked frames verbatim)
// depends on never happening.
func TestBatchCrashMidAppendIsAtomic(t *testing.T) {
	dataDir := t.TempDir()
	s, err := Open(durableConfig(dataDir))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Bootstrap(synthReadings(600, 47, 1)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	uploadBinaryReadings(t, ts, synthReadings(40, 47, 5), 0.5)
	if err := s.FlushWAL(); err != nil {
		t.Fatal(err)
	}
	wantCSV := exportCSV(t, ts, 47, 1) // state with batch 1 committed

	uploadBinaryReadings(t, ts, synthReadings(30, 47, 6), 0.5)
	if err := s.FlushWAL(); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	// Crash: no Close. Tear the tail of the newest WAL segment so batch
	// 2's group-commit record is half on disk.
	seg := newestWALSegment(t, dataDir)
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-11); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(durableConfig(dataDir))
	if err != nil {
		t.Fatalf("reopen after torn batch: %v", err)
	}
	defer s2.Close()
	if got := s2.StoreSize(47, sensor.KindRTLSDR); got != 600+40 {
		t.Fatalf("recovered store size = %d, want 640 (batch 1 whole, torn batch 2 absent)", got)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	if got := exportCSV(t, ts2, 47, 1); got != wantCSV {
		t.Error("recovered store is not byte-identical to the pre-torn-batch state")
	}
}

// newestWALSegment finds the lexically last wal.*.log under root.
func newestWALSegment(t *testing.T, root string) string {
	t.Helper()
	var newest string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if !d.IsDir() && strings.HasPrefix(name, "wal.") && strings.HasSuffix(name, ".log") && p > newest {
			newest = p
		}
		return nil
	})
	if err != nil || newest == "" {
		t.Fatalf("find WAL segment under %s: %v", root, err)
	}
	return newest
}
