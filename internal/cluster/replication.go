package cluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/wsdetect/waldo/internal/core"
	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
	"github.com/wsdetect/waldo/internal/telemetry"
)

// Replication wire format. The primary ships its journal stream — the
// same mutation order the WAL persists — as length-prefixed frames over
// HTTP POST /v1/repl/apply. Reading batches reuse the stable 67-byte
// binary reading codec from internal/core, so the replication path and
// the durability path serialize measurements identically.
//
//	frame    := u32 length | u64 seq | u8 kind | payload
//	append   := u16 channel | u8 sensor | u32 count | count × 67-byte readings
//	retrain  := u16 channel | u8 sensor | u32 version | u32 trainedCount
//
// Sequence numbers are contiguous per primary process, starting at 1.
// The replica applies frames strictly in order, skips already-applied
// sequence numbers (retries after a partial apply are idempotent), and
// answers every request with its applied high-water mark, which is also
// the primary's ack.
const (
	frameAppend  byte = 1
	frameRetrain byte = 2

	frameHeaderSize = 4 + 8 + 1 // length + seq + kind
)

// replRecord is one journaled mutation awaiting (or past) shipping.
type replRecord struct {
	kind     byte
	ch       rfenv.Channel
	sensor   sensor.Kind
	readings []dataset.Reading // kind == frameAppend
	version  int               // kind == frameRetrain
	trained  int               // kind == frameRetrain
}

// appendFrame renders one record as a wire frame with the given sequence
// number.
func appendFrame(dst []byte, seq uint64, rec *replRecord) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length backfilled below
	var b [9]byte
	binary.LittleEndian.PutUint64(b[:8], seq)
	b[8] = rec.kind
	dst = append(dst, b[:]...)
	var kb [3]byte
	binary.LittleEndian.PutUint16(kb[:2], uint16(rec.ch))
	kb[2] = byte(rec.sensor)
	dst = append(dst, kb[:]...)
	switch rec.kind {
	case frameAppend:
		dst = core.AppendReadingsWire(dst, rec.readings)
	case frameRetrain:
		var v [8]byte
		binary.LittleEndian.PutUint32(v[:4], uint32(rec.version))
		binary.LittleEndian.PutUint32(v[4:], uint32(rec.trained))
		dst = append(dst, v[:]...)
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}

// decodeFrame parses one frame off the front of b, returning the
// sequence number, the record, and the unconsumed remainder.
func decodeFrame(b []byte) (uint64, replRecord, []byte, error) {
	if len(b) < frameHeaderSize {
		return 0, replRecord{}, nil, fmt.Errorf("cluster: frame truncated: %d bytes", len(b))
	}
	length := int(binary.LittleEndian.Uint32(b))
	if len(b) < 4+length || length < 9+3 {
		return 0, replRecord{}, nil, fmt.Errorf("cluster: frame length %d outside body of %d bytes", length, len(b)-4)
	}
	body, rest := b[4:4+length], b[4+length:]
	seq := binary.LittleEndian.Uint64(body)
	rec := replRecord{
		kind:   body[8],
		ch:     rfenv.Channel(binary.LittleEndian.Uint16(body[9:])),
		sensor: sensor.Kind(body[11]),
	}
	payload := body[12:]
	switch rec.kind {
	case frameAppend:
		rs, tail, err := core.DecodeReadingsWire(payload)
		if err != nil {
			return 0, replRecord{}, nil, fmt.Errorf("cluster: frame %d: %w", seq, err)
		}
		if len(tail) != 0 {
			return 0, replRecord{}, nil, fmt.Errorf("cluster: frame %d: %d trailing bytes", seq, len(tail))
		}
		rec.readings = rs
	case frameRetrain:
		if len(payload) != 8 {
			return 0, replRecord{}, nil, fmt.Errorf("cluster: frame %d: retrain payload is %d bytes", seq, len(payload))
		}
		rec.version = int(binary.LittleEndian.Uint32(payload))
		rec.trained = int(binary.LittleEndian.Uint32(payload[4:]))
	default:
		return 0, replRecord{}, nil, fmt.Errorf("cluster: frame %d: unknown kind %d", seq, rec.kind)
	}
	return seq, rec, rest, nil
}

// applyStatus is the replica's answer to every replication exchange: its
// contiguous applied high-water mark.
type applyStatus struct {
	Applied uint64 `json:"applied"`
}

// replicaLink is the shipping state for one replica.
type replicaLink struct {
	url string

	mu    sync.Mutex
	acked uint64 // highest sequence the replica confirmed applied

	lag     *telemetry.Gauge
	shipped *telemetry.Counter
	errs    *telemetry.Counter
}

// Replicator ships a primary's journal stream to its replicas. It
// implements dbserver.Tap: the dbserver invokes it under each store's
// lock in apply order, and it only appends to an in-memory log — the
// HTTP shipping happens on one background goroutine per replica, so
// replication never blocks the upload path (asynchronous by design; the
// WAL, not the replica, is what an ack promises).
//
// The log lives for the primary process's lifetime and sequence numbers
// restart at 1 with it, so a replica must follow a single primary
// incarnation from its start (the failover model in DESIGN.md §12: a
// killed primary is replaced by promoting its replica, not resumed).
type Replicator struct {
	httpc    *http.Client
	interval time.Duration
	maxBatch int

	mu  sync.Mutex
	log []replRecord

	links []*replicaLink
	stopc chan struct{}
	wg    sync.WaitGroup
}

// newReplicator assembles the shipper; start() launches the loops.
func newReplicator(replicaURLs []string, httpc *http.Client, interval time.Duration,
	maxBatch int, metrics *telemetry.Registry) *Replicator {
	r := &Replicator{
		httpc:    httpc,
		interval: interval,
		maxBatch: maxBatch,
		stopc:    make(chan struct{}),
	}
	for _, u := range replicaURLs {
		r.links = append(r.links, &replicaLink{
			url: u,
			lag: metrics.Gauge("waldo_cluster_replication_lag_records",
				"Journal records accepted by the primary but not yet confirmed applied by this replica.",
				"replica", u),
			shipped: metrics.Counter("waldo_cluster_replication_shipped_total",
				"Journal records confirmed applied by this replica.", "replica", u),
			errs: metrics.Counter("waldo_cluster_replication_errors_total",
				"Failed replication exchanges with this replica (retried on the next shipping tick).",
				"replica", u),
		})
	}
	return r
}

func (r *Replicator) start() {
	for _, link := range r.links {
		r.wg.Add(1)
		go r.ship(link)
	}
}

func (r *Replicator) stop() {
	close(r.stopc)
	r.wg.Wait()
}

// TapReadings implements dbserver.Tap. Runs under the store lock: copy
// and enqueue, nothing else.
func (r *Replicator) TapReadings(ch rfenv.Channel, kind sensor.Kind, rs []dataset.Reading) {
	rec := replRecord{kind: frameAppend, ch: ch, sensor: kind,
		readings: append([]dataset.Reading(nil), rs...)}
	r.mu.Lock()
	r.log = append(r.log, rec)
	r.mu.Unlock()
}

// TapRetrain implements dbserver.Tap.
func (r *Replicator) TapRetrain(ch rfenv.Channel, kind sensor.Kind, version, trained int) {
	rec := replRecord{kind: frameRetrain, ch: ch, sensor: kind, version: version, trained: trained}
	r.mu.Lock()
	r.log = append(r.log, rec)
	r.mu.Unlock()
}

// logLen returns the current journal length (== the highest assigned
// sequence number).
func (r *Replicator) logLen() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return uint64(len(r.log))
}

// pending snapshots up to maxBatch unshipped records after acked.
// Records are append-only, so the returned subslice is stable.
func (r *Replicator) pending(acked uint64) (uint64, []replRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	top := uint64(len(r.log))
	if acked >= top {
		return top, nil
	}
	end := acked + uint64(r.maxBatch)
	if end > top {
		end = top
	}
	return top, r.log[acked:end]
}

// ship is one replica's shipping loop: every tick, push everything past
// the replica's ack in maxBatch chunks until caught up or erroring
// (errors wait for the next tick — the replica being down must not spin
// the primary).
func (r *Replicator) ship(link *replicaLink) {
	defer r.wg.Done()
	t := time.NewTicker(r.interval)
	defer t.Stop()
	for {
		select {
		case <-r.stopc:
			return
		case <-t.C:
			for r.shipOnce(link) {
			}
		}
	}
}

// shipOnce pushes one chunk and returns true if it made progress and
// more may be pending.
func (r *Replicator) shipOnce(link *replicaLink) bool {
	link.mu.Lock()
	acked := link.acked
	link.mu.Unlock()
	top, recs := r.pending(acked)
	link.lag.Set(float64(top - acked))
	if len(recs) == 0 {
		return false
	}
	var body []byte
	for i := range recs {
		body = appendFrame(body, acked+uint64(i)+1, &recs[i])
	}
	resp, err := r.httpc.Post(link.url+"/v1/repl/apply", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		link.errs.Inc()
		return false
	}
	defer resp.Body.Close()
	var st applyStatus
	if err := decodeJSONBody(resp.Body, &st); err != nil {
		link.errs.Inc()
		return false
	}
	if resp.StatusCode != http.StatusOK {
		link.errs.Inc()
	}
	link.mu.Lock()
	progressed := st.Applied > link.acked
	if progressed {
		link.shipped.Add(st.Applied - link.acked)
	}
	// Trust the replica's high-water mark in both directions: forward is
	// the normal ack; backward would mean a replica reset, and
	// re-shipping from its mark is the only way to converge.
	link.acked = st.Applied
	link.mu.Unlock()
	link.lag.Set(float64(top - st.Applied))
	return progressed && resp.StatusCode == http.StatusOK
}

// Lag returns the largest number of journal records any replica still
// has to apply (0 with no replicas).
func (r *Replicator) Lag() uint64 {
	top := r.logLen()
	var worst uint64
	for _, link := range r.links {
		link.mu.Lock()
		acked := link.acked
		link.mu.Unlock()
		if lag := top - acked; lag > worst {
			worst = lag
		}
	}
	return worst
}

// Drain blocks until every replica has confirmed the entire current
// journal, polling between checks, or until ctx expires.
func (r *Replicator) Drain(ctx context.Context) error {
	for {
		if r.Lag() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("cluster: drain: %w (lag %d records)", ctx.Err(), r.Lag())
		case <-time.After(time.Millisecond):
		}
	}
}

// decodeJSONBody reads and decodes a small JSON body with a hard cap.
func decodeJSONBody(r io.Reader, v any) error {
	data, err := io.ReadAll(io.LimitReader(r, 1<<16))
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}
