package rfenv

import (
	"fmt"
	"math"
)

// PathLossModel predicts median propagation loss between a transmitter and
// a receiver.
type PathLossModel interface {
	// PathLossDB returns the median path loss in dB for a link of distM
	// meters at fMHz, with transmitter antenna height hTxM and receiver
	// antenna height hRxM (meters).
	PathLossDB(distM, fMHz, hTxM, hRxM float64) float64
	// Name identifies the model in reports.
	Name() string
}

// FreeSpace is the free-space path-loss model, the most optimistic bound
// (one of the generic models surveyed in the related work, §7).
type FreeSpace struct{}

// Name implements PathLossModel.
func (FreeSpace) Name() string { return "free-space" }

// PathLossDB implements PathLossModel.
// FSPL(dB) = 20·log10(d_km) + 20·log10(f_MHz) + 32.44.
func (FreeSpace) PathLossDB(distM, fMHz, _, _ float64) float64 {
	dKM := math.Max(distM/1000, 0.001)
	return 20*math.Log10(dKM) + 20*math.Log10(fMHz) + 32.44
}

// HataUrban is the Okumura–Hata empirical model for urban areas (Hata 1980,
// paper ref [31]), valid for 150–1500 MHz, the model the paper draws its
// antenna correction factor from.
type HataUrban struct {
	// LargeCity selects the large-city mobile antenna correction used in
	// the paper (a(hm) = 3.2·(log10(11.5·hm))² − 4.97); otherwise the
	// small/medium-city correction applies.
	LargeCity bool
}

// Name implements PathLossModel.
func (h HataUrban) Name() string {
	if h.LargeCity {
		return "hata-urban-large"
	}
	return "hata-urban"
}

// MobileAntennaCorrectionDB returns Hata's mobile-antenna height correction
// a(hm) in dB. The paper (§2.1) uses the large-city UHF form
// a(hm) = 3.2·(log10(11.5·hm))² − 4.97 and derives a 7.5 dB correction for
// the 8 m gap between its 2 m war-driving antennas and the 10 m regulatory
// reference height.
func MobileAntennaCorrectionDB(hmM float64) float64 {
	if hmM <= 0 {
		return 0
	}
	l := math.Log10(11.5 * hmM)
	return 3.2*l*l - 4.97
}

// AntennaHeightGapCorrectionDB is the constant the paper adds uniformly to
// all RSS readings when compensating for antenna height: a(10 m − 2 m) per
// §2.1 ("This yields a 7.5 dB correction factor").
func AntennaHeightGapCorrectionDB() float64 {
	return MobileAntennaCorrectionDB(8)
}

// PathLossDB implements PathLossModel.
func (h HataUrban) PathLossDB(distM, fMHz, hTxM, hRxM float64) float64 {
	dKM := math.Max(distM/1000, 0.01)
	hb := clamp(hTxM, 30, 300)
	hm := clamp(hRxM, 1, 10)
	f := clamp(fMHz, 150, 1500)

	var aHm float64
	if h.LargeCity {
		aHm = MobileAntennaCorrectionDB(hm)
	} else {
		lf := math.Log10(f)
		aHm = (1.1*lf-0.7)*hm - (1.56*lf - 0.8)
	}
	return 69.55 + 26.16*math.Log10(f) - 13.82*math.Log10(hb) - aHm +
		(44.9-6.55*math.Log10(hb))*math.Log10(dKM)
}

// FCCCurves approximates the behaviour of the FCC R-6602 propagation curves
// that certified spectrum databases must use (paper §1): it wraps a base
// model and biases it optimistically (less predicted loss), which inflates
// predicted protected contours and produces the over-protection errors the
// paper reports (up to 71% of locations, ref [52]).
type FCCCurves struct {
	// Base is the underlying median model; nil means HataUrban{LargeCity: true}.
	Base PathLossModel
	// OptimismDB is subtracted from the base model's loss; the default of
	// 6 dB reproduces database over-protection in the paper's range.
	OptimismDB float64
}

// Name implements PathLossModel.
func (FCCCurves) Name() string { return "fcc-r6602-style" }

// PathLossDB implements PathLossModel.
func (f FCCCurves) PathLossDB(distM, fMHz, hTxM, hRxM float64) float64 {
	base := f.Base
	if base == nil {
		base = HataUrban{LargeCity: true}
	}
	opt := f.OptimismDB
	if opt == 0 {
		opt = 6
	}
	return base.PathLossDB(distM, fMHz, hTxM, hRxM) - opt
}

// ModelByName returns a propagation model by its Name string, for CLI use.
func ModelByName(name string) (PathLossModel, error) {
	switch name {
	case "free-space":
		return FreeSpace{}, nil
	case "hata-urban":
		return HataUrban{}, nil
	case "hata-urban-large":
		return HataUrban{LargeCity: true}, nil
	case "fcc-r6602-style":
		return FCCCurves{}, nil
	default:
		return nil, fmt.Errorf("rfenv: unknown propagation model %q", name)
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
