package tree

import (
	"math/rand"
	"testing"

	"github.com/wsdetect/waldo/internal/ml"
)

func xorData(n int, seed int64) (x [][]float64, y []int) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		a := rng.Float64()*2 - 1
		b := rng.Float64()*2 - 1
		x = append(x, []float64{a, b})
		if (a > 0) == (b > 0) {
			y = append(y, ml.Positive)
		} else {
			y = append(y, ml.Negative)
		}
	}
	return x, y
}

func TestCARTSolvesXOR(t *testing.T) {
	// XOR defeats linear models but is trivial for a depth-2 tree.
	x, y := xorData(600, 1)
	c := &CART{MaxDepth: 10, MinLeaf: 5}
	if err := c.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	testX, testY := xorData(300, 2)
	correct := 0
	for i := range testX {
		pred, err := c.Predict(testX[i])
		if err != nil {
			t.Fatal(err)
		}
		if pred == testY[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(testX)); acc < 0.95 {
		t.Errorf("CART XOR accuracy = %v", acc)
	}
}

func TestCARTDepthLimit(t *testing.T) {
	x, y := xorData(400, 3)
	shallow := &CART{MaxDepth: 1}
	if err := shallow.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if d := shallow.Depth(); d > 1 {
		t.Errorf("depth = %d, want ≤ 1", d)
	}
	deep := &CART{MaxDepth: 8}
	if err := deep.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if deep.Depth() <= shallow.Depth() {
		t.Errorf("deep tree (%d) should be deeper than stump (%d)", deep.Depth(), shallow.Depth())
	}
}

func TestCARTMinLeaf(t *testing.T) {
	x, y := xorData(100, 4)
	c := &CART{MaxDepth: 20, MinLeaf: 40}
	if err := c.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	// With MinLeaf 40 of 100 points, at most one split is possible.
	if d := c.Depth(); d > 2 {
		t.Errorf("depth = %d with MinLeaf=40", d)
	}
}

func TestCARTValidation(t *testing.T) {
	c := &CART{}
	if err := c.Fit(nil, nil); err == nil {
		t.Error("empty fit must fail")
	}
	if _, err := c.Predict([]float64{1}); err == nil {
		t.Error("predict before fit must fail")
	}
	if err := (&CART{MaxDepth: -1}).Fit([][]float64{{1}, {2}}, []int{1, -1}); err == nil {
		t.Error("negative depth must fail")
	}
	x, y := xorData(50, 5)
	if err := c.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Predict([]float64{1, 2, 3}); err == nil {
		t.Error("dim mismatch must fail")
	}
}

func TestCARTOverfitsRoadData(t *testing.T) {
	// The paper's observation (§3.2): trees nail the training data
	// (≈1% error) on sparse road-following datasets — a red flag for
	// overfitting. Verify the memorization half: training error ≈ 0 even
	// on noisy labels.
	rng := rand.New(rand.NewSource(6))
	var x [][]float64
	var y []int
	for i := 0; i < 300; i++ {
		x = append(x, []float64{rng.Float64(), rng.Float64()})
		if rng.Float64() < 0.5 {
			y = append(y, ml.Positive)
		} else {
			y = append(y, ml.Negative)
		}
	}
	c := &CART{MaxDepth: 40, MinLeaf: 1}
	if err := c.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range x {
		if pred, _ := c.Predict(x[i]); pred == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(x)); acc < 0.99 {
		t.Errorf("unbounded tree should memorize noise: training accuracy %v", acc)
	}
}
