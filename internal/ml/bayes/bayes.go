// Package bayes implements the Gaussian Naive Bayes classifier, the second
// of the two Waldo-friendly model families the paper evaluates (§3.2):
// its descriptor is tiny (two moments per feature per class), which is why
// the paper measures a ~4 kB NB model download versus ~40 kB for SVM.
package bayes

import (
	"fmt"
	"math"

	"github.com/wsdetect/waldo/internal/ml"
)

// varianceFloor prevents degenerate likelihoods on near-constant features.
const varianceFloor = 1e-6

// GaussianNB is a two-class naive Bayes classifier with per-feature normal
// likelihoods.
type GaussianNB struct {
	dim      int
	logPrior [2]float64   // [negative, positive]
	mean     [2][]float64 // per class, per feature
	variance [2][]float64
}

var _ ml.Classifier = (*GaussianNB)(nil)
var _ ml.DecisionScorer = (*GaussianNB)(nil)

func classIndex(y int) int {
	if y == ml.Positive {
		return 1
	}
	return 0
}

// Fit implements ml.Classifier.
func (g *GaussianNB) Fit(x [][]float64, y []int) error {
	dim, err := ml.CheckTrainingSet(x, y)
	if err != nil {
		return fmt.Errorf("bayes: %w", err)
	}
	var count [2]float64
	var mean, m2 [2][]float64
	for c := 0; c < 2; c++ {
		mean[c] = make([]float64, dim)
		m2[c] = make([]float64, dim)
	}
	// Welford accumulation per class.
	for i := range x {
		c := classIndex(y[i])
		count[c]++
		for j, v := range x[i] {
			delta := v - mean[c][j]
			mean[c][j] += delta / count[c]
			m2[c][j] += delta * (v - mean[c][j])
		}
	}
	n := count[0] + count[1]
	for c := 0; c < 2; c++ {
		g.logPrior[c] = math.Log(count[c] / n)
		g.mean[c] = mean[c]
		g.variance[c] = make([]float64, dim)
		for j := range m2[c] {
			v := m2[c][j] / count[c]
			if v < varianceFloor {
				v = varianceFloor
			}
			g.variance[c][j] = v
		}
	}
	g.dim = dim
	return nil
}

// logLikelihood returns log p(x | class c) + log prior(c).
func (g *GaussianNB) logLikelihood(c int, x []float64) float64 {
	ll := g.logPrior[c]
	for j, v := range x {
		d := v - g.mean[c][j]
		ll += -0.5*math.Log(2*math.Pi*g.variance[c][j]) - d*d/(2*g.variance[c][j])
	}
	return ll
}

// DecisionValue implements ml.DecisionScorer: the positive-minus-negative
// log posterior margin.
func (g *GaussianNB) DecisionValue(x []float64) (float64, error) {
	if g.dim == 0 {
		return 0, fmt.Errorf("bayes: model not fitted")
	}
	if len(x) != g.dim {
		return 0, fmt.Errorf("bayes: input dim %d, model dim %d", len(x), g.dim)
	}
	return g.logLikelihood(1, x) - g.logLikelihood(0, x), nil
}

// Predict implements ml.Classifier.
func (g *GaussianNB) Predict(x []float64) (int, error) {
	d, err := g.DecisionValue(x)
	if err != nil {
		return 0, err
	}
	if d >= 0 {
		return ml.Positive, nil
	}
	return ml.Negative, nil
}

// Model exposes the fitted parameters for serialization, ordered
// (negative class, positive class).
func (g *GaussianNB) Model() (logPrior [2]float64, mean, variance [2][]float64, err error) {
	if g.dim == 0 {
		err = fmt.Errorf("bayes: model not fitted")
		return
	}
	logPrior = g.logPrior
	for c := 0; c < 2; c++ {
		mean[c] = append([]float64(nil), g.mean[c]...)
		variance[c] = append([]float64(nil), g.variance[c]...)
	}
	return logPrior, mean, variance, nil
}

// SetModel installs serialized parameters.
func (g *GaussianNB) SetModel(logPrior [2]float64, mean, variance [2][]float64) error {
	dim := len(mean[0])
	if dim == 0 || len(mean[1]) != dim || len(variance[0]) != dim || len(variance[1]) != dim {
		return fmt.Errorf("bayes: inconsistent model dimensions")
	}
	for c := 0; c < 2; c++ {
		for j, v := range variance[c] {
			if v <= 0 || math.IsNaN(v) {
				return fmt.Errorf("bayes: class %d feature %d variance %v", c, j, v)
			}
		}
		g.mean[c] = append([]float64(nil), mean[c]...)
		g.variance[c] = append([]float64(nil), variance[c]...)
	}
	g.logPrior = logPrior
	g.dim = dim
	return nil
}
