// Package tree implements a CART decision-tree classifier (Gini impurity,
// axis-aligned splits). The paper tried decision trees, observed ~1%
// error, and rejected them as overfitting artifacts of road-following data
// (§3.2) — the ablation benches reproduce that comparison.
package tree

import (
	"fmt"
	"sort"

	"github.com/wsdetect/waldo/internal/ml"
)

// CART is a binary classification tree.
type CART struct {
	// MaxDepth bounds tree height; default 12.
	MaxDepth int
	// MinLeaf is the minimum samples per leaf; default 2.
	MinLeaf int

	root *node
	dim  int
}

var _ ml.Classifier = (*CART)(nil)

type node struct {
	feature   int
	threshold float64
	left      *node
	right     *node
	label     int // for leaves
	leaf      bool
}

// Fit implements ml.Classifier.
func (t *CART) Fit(x [][]float64, y []int) error {
	if t.MaxDepth == 0 {
		t.MaxDepth = 12
	}
	if t.MinLeaf == 0 {
		t.MinLeaf = 2
	}
	if t.MaxDepth < 1 || t.MinLeaf < 1 {
		return fmt.Errorf("tree: invalid hyperparameters depth=%d minLeaf=%d", t.MaxDepth, t.MinLeaf)
	}
	dim, err := ml.CheckTrainingSet(x, y)
	if err != nil {
		return fmt.Errorf("tree: %w", err)
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	t.dim = dim
	t.root = t.build(x, y, idx, 0)
	return nil
}

func majority(y []int, idx []int) int {
	var vote int
	for _, i := range idx {
		vote += y[i]
	}
	if vote > 0 {
		return ml.Positive
	}
	return ml.Negative
}

// depthToFeature rotates fallback splits through the features.
func depthToFeature(depth, dim int) int { return depth % dim }

func gini(pos, total int) float64 {
	if total == 0 {
		return 0
	}
	p := float64(pos) / float64(total)
	return 2 * p * (1 - p)
}

func (t *CART) build(x [][]float64, y []int, idx []int, depth int) *node {
	pos := 0
	for _, i := range idx {
		if y[i] == ml.Positive {
			pos++
		}
	}
	if depth >= t.MaxDepth || len(idx) < 2*t.MinLeaf || pos == 0 || pos == len(idx) {
		return &node{leaf: true, label: majority(y, idx)}
	}

	bestFeature, bestThreshold, bestImpurity := -1, 0.0, gini(pos, len(idx))
	order := make([]int, len(idx))
	for f := 0; f < t.dim; f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return x[order[a]][f] < x[order[b]][f] })
		leftPos := 0
		for split := 1; split < len(order); split++ {
			if y[order[split-1]] == ml.Positive {
				leftPos++
			}
			if x[order[split]][f] == x[order[split-1]][f] {
				continue
			}
			if split < t.MinLeaf || len(order)-split < t.MinLeaf {
				continue
			}
			wl := float64(split) / float64(len(order))
			imp := wl*gini(leftPos, split) + (1-wl)*gini(pos-leftPos, len(order)-split)
			if imp < bestImpurity-1e-12 {
				bestImpurity = imp
				bestFeature = f
				bestThreshold = (x[order[split]][f] + x[order[split-1]][f]) / 2
			}
		}
	}
	if bestFeature < 0 {
		// No split with positive Gini gain. XOR-like structure still
		// needs a split for the children to resolve, so fall back to a
		// balanced median split on a rotating feature; depth and leaf
		// bounds keep the recursion finite.
		f := depthToFeature(depth, t.dim)
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return x[order[a]][f] < x[order[b]][f] })
		mid := len(order) / 2
		lo, hi := x[order[mid-1]][f], x[order[mid]][f]
		if lo == hi {
			return &node{leaf: true, label: majority(y, idx)}
		}
		bestFeature = f
		bestThreshold = (lo + hi) / 2
	}

	var left, right []int
	for _, i := range idx {
		if x[i][bestFeature] < bestThreshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return &node{leaf: true, label: majority(y, idx)}
	}
	return &node{
		feature:   bestFeature,
		threshold: bestThreshold,
		left:      t.build(x, y, left, depth+1),
		right:     t.build(x, y, right, depth+1),
	}
}

// Predict implements ml.Classifier.
func (t *CART) Predict(x []float64) (int, error) {
	if t.root == nil {
		return 0, fmt.Errorf("tree: model not fitted")
	}
	if len(x) != t.dim {
		return 0, fmt.Errorf("tree: input dim %d, model dim %d", len(x), t.dim)
	}
	n := t.root
	for !n.leaf {
		if x[n.feature] < n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.label, nil
}

// Depth returns the height of the fitted tree (0 for a single leaf).
func (t *CART) Depth() int { return depth(t.root) }

func depth(n *node) int {
	if n == nil || n.leaf {
		return 0
	}
	l, r := depth(n.left), depth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}
