# Build, test, and verification entry points. `make check` is the CI
# gate: vet + build + full test suite under the race detector.

GO ?= go

.PHONY: check build test race vet bench loadgen clean

check: vet build race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Telemetry hot-path budget (< ~100 ns/op for counter inc / histogram
# observe) plus the repo's other benchmarks.
bench:
	$(GO) test -bench . -benchmem -run XXX ./internal/telemetry/

# End-to-end performance harness against an in-process spectrum database.
loadgen:
	$(GO) run ./cmd/waldo-loadgen -clients 8 -duration 5s -channels 46,47

clean:
	$(GO) clean ./...
