package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"github.com/wsdetect/waldo/internal/features"
	"github.com/wsdetect/waldo/internal/geo"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
)

// csvHeader is the on-disk column layout for reading exports.
var csvHeader = []string{"seq", "lat", "lon", "channel", "sensor", "rss_dbm", "cft_db", "aft_db", "alt_m", "true_dbm"}

// WriteCSV streams readings to w in a stable CSV layout.
func WriteCSV(w io.Writer, readings []Reading) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	rec := make([]string, len(csvHeader))
	for i := range readings {
		r := &readings[i]
		rec[0] = strconv.Itoa(r.Seq)
		rec[1] = strconv.FormatFloat(r.Loc.Lat, 'f', 6, 64)
		rec[2] = strconv.FormatFloat(r.Loc.Lon, 'f', 6, 64)
		rec[3] = strconv.Itoa(int(r.Channel))
		rec[4] = strconv.Itoa(int(r.Sensor))
		rec[5] = strconv.FormatFloat(r.Signal.RSSdBm, 'f', 3, 64)
		rec[6] = strconv.FormatFloat(r.Signal.CFTdB, 'f', 3, 64)
		rec[7] = strconv.FormatFloat(r.Signal.AFTdB, 'f', 3, 64)
		rec[8] = strconv.FormatFloat(r.AltM, 'f', 2, 64)
		rec[9] = strconv.FormatFloat(r.TrueDBm, 'f', 3, 64)
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses readings previously written by WriteCSV.
func ReadCSV(r io.Reader) ([]Reading, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	for i, col := range csvHeader {
		if header[i] != col {
			return nil, fmt.Errorf("dataset: unexpected column %d: got %q, want %q", i, header[i], col)
		}
	}

	var readings []Reading
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return readings, nil
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		rd, err := parseRecord(rec)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		readings = append(readings, rd)
	}
}

func parseRecord(rec []string) (Reading, error) {
	var rd Reading
	seq, err := strconv.Atoi(rec[0])
	if err != nil {
		return rd, fmt.Errorf("seq: %w", err)
	}
	fields := make([]float64, 0, 8)
	for _, idx := range []int{1, 2, 5, 6, 7, 8, 9} {
		v, err := strconv.ParseFloat(rec[idx], 64)
		if err != nil {
			return rd, fmt.Errorf("column %s: %w", csvHeader[idx], err)
		}
		fields = append(fields, v)
	}
	ch, err := strconv.Atoi(rec[3])
	if err != nil {
		return rd, fmt.Errorf("channel: %w", err)
	}
	sk, err := strconv.Atoi(rec[4])
	if err != nil {
		return rd, fmt.Errorf("sensor: %w", err)
	}
	if !rfenv.Channel(ch).Valid() {
		return rd, fmt.Errorf("invalid channel %d", ch)
	}
	if _, err := sensor.SpecFor(sensor.Kind(sk)); err != nil {
		return rd, err
	}
	rd = Reading{
		Seq:     seq,
		Loc:     geo.Point{Lat: fields[0], Lon: fields[1]},
		Channel: rfenv.Channel(ch),
		Sensor:  sensor.Kind(sk),
		Signal:  features.Signal{RSSdBm: fields[2], CFTdB: fields[3], AFTdB: fields[4]},
		AltM:    fields[5],
		TrueDBm: fields[6],
	}
	if !rd.Loc.Valid() {
		return rd, fmt.Errorf("invalid location %v", rd.Loc)
	}
	return rd, nil
}
