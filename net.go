package waldo

import (
	"io"
	"net/http"

	"github.com/wsdetect/waldo/internal/client"
	"github.com/wsdetect/waldo/internal/core"
	"github.com/wsdetect/waldo/internal/dbserver"
)

// Networked deployment: the central spectrum database and the mobile
// White Space Device client (paper §3.1 / Fig. 8).
type (
	// DatabaseServer is the central spectrum database.
	DatabaseServer = dbserver.Server
	// DatabaseConfig parameterizes it.
	DatabaseConfig = dbserver.Config
	// Client is a WSD's connection to the database.
	Client = client.Client
	// Radio abstracts sensing hardware on a WSD.
	Radio = client.Radio
	// SimRadio is a simulated RTL-SDR-class radio.
	SimRadio = client.SimRadio
	// WSD is the mobile white-space device.
	WSD = client.WSD
	// ChannelScan is one channel's detection outcome on a WSD.
	ChannelScan = client.ChannelScan
	// ScanResult is a full duty-cycle scan.
	ScanResult = client.ScanResult
)

// NewDatabaseServer returns an empty central spectrum database; call
// Bootstrap with trusted campaign readings, then serve Handler().
func NewDatabaseServer(cfg DatabaseConfig) *DatabaseServer {
	return dbserver.New(cfg)
}

// NewClient connects a WSD to a database at baseURL.
func NewClient(baseURL string, httpc *http.Client) (*Client, error) {
	return client.New(baseURL, httpc)
}

// EncodeModel writes a model's compact descriptor (the artifact WSDs
// download; §5 measures its size).
func EncodeModel(w io.Writer, m *Model) error { return core.EncodeModel(w, m) }

// DecodeModel reads a model descriptor.
func DecodeModel(r io.Reader) (*Model, error) { return core.DecodeModel(r) }

// EncodedModelSize returns a model's descriptor size in bytes.
func EncodedModelSize(m *Model) (int, error) { return core.EncodedSize(m) }
