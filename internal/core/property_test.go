package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/features"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
)

// randomReadings builds a random two-class dataset from a seed.
func randomReadings(seed int64, n int) ([]dataset.Reading, []dataset.Label) {
	rng := rand.New(rand.NewSource(seed))
	origin := rfenv.MetroCenter
	readings := make([]dataset.Reading, n)
	labels := make([]dataset.Label, n)
	for i := range readings {
		rss := -105 + rng.Float64()*45
		readings[i] = dataset.Reading{
			Seq:     i,
			Loc:     origin.Offset(rng.Float64()*360, rng.Float64()*12000),
			Channel: 30,
			Sensor:  sensor.KindUSRPB200,
			Signal: features.Signal{
				RSSdBm: rss,
				CFTdB:  rss - 11.3 + rng.NormFloat64(),
				AFTdB:  rss - 13 + rng.NormFloat64(),
			},
		}
		if rss > -84 || rng.Float64() < 0.3 {
			labels[i] = dataset.LabelNotSafe
		} else {
			labels[i] = dataset.LabelSafe
		}
	}
	// Guarantee both classes.
	labels[0] = dataset.LabelSafe
	labels[1] = dataset.LabelNotSafe
	return readings, labels
}

// TestPropertyCodecRoundTrip: any trained model survives encode/decode
// with identical predictions.
func TestPropertyCodecRoundTrip(t *testing.T) {
	kinds := []ClassifierKind{KindSVM, KindNB, KindLinearSVM}
	f := func(seed int64, kindPick uint8, kPick uint8, setPick uint8) bool {
		kind := kinds[int(kindPick)%len(kinds)]
		k := 1 + int(kPick)%4
		set := features.AllSets[int(setPick)%len(features.AllSets)]
		readings, labels := randomReadings(seed, 160)
		m, err := BuildModel(readings, labels, ConstructorConfig{
			ClusterK: k, Classifier: kind, Features: set, Seed: seed,
		})
		if err != nil {
			t.Logf("build: %v", err)
			return false
		}
		var buf bytes.Buffer
		if err := EncodeModel(&buf, m); err != nil {
			t.Logf("encode: %v", err)
			return false
		}
		clone, err := DecodeModel(&buf)
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		for i := range readings {
			a, err := m.ClassifyReading(readings[i])
			if err != nil {
				return false
			}
			b, err := clone.ClassifyReading(readings[i])
			if err != nil {
				return false
			}
			if a != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDecoderNeverPanics: arbitrary byte soup must produce an
// error, not a panic or a hang.
func TestPropertyDecoderNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, err := DecodeModel(bytes.NewReader(data))
		return err != nil // decoding random bytes must always fail cleanly
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	// Corrupted valid descriptors too: flip one byte anywhere.
	readings, labels := randomReadings(7, 120)
	m, err := BuildModel(readings, labels, ConstructorConfig{Classifier: KindNB})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		corrupt := append([]byte(nil), valid...)
		pos := rng.Intn(len(corrupt))
		corrupt[pos] ^= byte(1 + rng.Intn(255))
		// Must not panic; error or a well-formed (if semantically
		// different) model are both acceptable.
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("decoder panicked on corrupted byte %d: %v", pos, r)
				}
			}()
			model, err := DecodeModel(bytes.NewReader(corrupt))
			if err == nil && model != nil {
				// Classification must still not panic.
				_, _ = model.ClassifyReading(readings[0])
			}
		}()
	}
}

// TestPropertyModelDeterminism: same inputs and seed give byte-identical
// descriptors.
func TestPropertyModelDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		readings, labels := randomReadings(seed, 150)
		encode := func() []byte {
			m, err := BuildModel(readings, labels, ConstructorConfig{
				ClusterK: 2, Classifier: KindSVM, Seed: seed,
			})
			if err != nil {
				t.Logf("build: %v", err)
				return nil
			}
			var buf bytes.Buffer
			if err := EncodeModel(&buf, m); err != nil {
				return nil
			}
			return buf.Bytes()
		}
		a := encode()
		b := encode()
		return a != nil && bytes.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
