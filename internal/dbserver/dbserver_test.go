package dbserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/wsdetect/waldo/internal/core"
	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/features"
	"github.com/wsdetect/waldo/internal/geo"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
)

func synthReadings(n int, ch rfenv.Channel, seed int64) []dataset.Reading {
	rng := rand.New(rand.NewSource(seed))
	origin := rfenv.MetroCenter
	out := make([]dataset.Reading, 0, n)
	for i := 0; i < n; i++ {
		loc := origin.Offset(rng.Float64()*360, rng.Float64()*10000)
		rss := -100.0
		if loc.Lon > origin.Lon {
			rss = -70
		}
		out = append(out, dataset.Reading{
			Seq: i, Loc: loc, Channel: ch, Sensor: sensor.KindRTLSDR,
			Signal: features.Signal{RSSdBm: rss, CFTdB: rss - 11.3, AFTdB: rss - 13},
		})
	}
	return out
}

func bootedServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{Constructor: core.ConstructorConfig{Classifier: core.KindNB}})
	if err := s.Bootstrap(synthReadings(600, 47, 1)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func TestHealth(t *testing.T) {
	_, ts := bootedServer(t)
	resp, err := http.Get(ts.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("health = %s", resp.Status)
	}
}

func TestModelDownload(t *testing.T) {
	_, ts := bootedServer(t)
	resp, err := http.Get(ts.URL + "/v1/model?channel=47&sensor=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("model download = %s", resp.Status)
	}
	if v := resp.Header.Get("X-Waldo-Model-Version"); v != "1" {
		t.Errorf("version = %q, want 1", v)
	}
	m, err := core.DecodeModel(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if m.Channel != 47 || m.Sensor != sensor.KindRTLSDR {
		t.Errorf("decoded model %v/%v", m.Channel, m.Sensor)
	}
	// The downloaded model must classify.
	got, err := m.Classify(rfenv.MetroCenter.Offset(90, 5000), features.Signal{RSSdBm: -70, CFTdB: -81, AFTdB: -83})
	if err != nil {
		t.Fatal(err)
	}
	if got != dataset.LabelNotSafe {
		t.Errorf("east strong signal → %v", got)
	}
}

func TestModelDownloadErrors(t *testing.T) {
	_, ts := bootedServer(t)
	cases := map[string]int{
		"/v1/model?channel=xx&sensor=1": http.StatusBadRequest,
		"/v1/model?channel=47&sensor=9": http.StatusBadRequest,
		"/v1/model?channel=5&sensor=1":  http.StatusBadRequest,
		"/v1/model?channel=30&sensor=1": http.StatusNotFound, // no data for ch30
	}
	for path, want := range cases {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s = %d, want %d", path, resp.StatusCode, want)
		}
	}
}

func TestUploadAndRetrain(t *testing.T) {
	s, ts := bootedServer(t)
	up := UploadJSON{CISpanDB: 0.4}
	for _, r := range synthReadings(50, 47, 2) {
		up.Readings = append(up.Readings, FromReading(r))
	}
	body, err := json.Marshal(up)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/readings", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("upload = %s", resp.Status)
	}
	if got := s.StoreSize(47, sensor.KindRTLSDR); got != 650 {
		t.Errorf("store size = %d, want 650", got)
	}

	resp, err = http.Post(ts.URL+"/v1/retrain?channel=47&sensor=1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retrain = %s", resp.Status)
	}
	if v := resp.Header.Get("X-Waldo-Model-Version"); v != "2" {
		t.Errorf("version after retrain = %q, want 2", v)
	}
}

func TestUploadRejections(t *testing.T) {
	_, ts := bootedServer(t)
	post := func(v any) int {
		body, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/readings", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	// Empty.
	if code := post(UploadJSON{}); code != http.StatusBadRequest {
		t.Errorf("empty upload = %d", code)
	}
	// Noisy (α′ exceeded).
	noisy := UploadJSON{CISpanDB: 5}
	for _, r := range synthReadings(5, 47, 3) {
		noisy.Readings = append(noisy.Readings, FromReading(r))
	}
	if code := post(noisy); code != http.StatusUnprocessableEntity {
		t.Errorf("noisy upload = %d", code)
	}
	// Invalid channel.
	bad := UploadJSON{CISpanDB: 0.1, Readings: []ReadingJSON{{Channel: 99, Sensor: 1, Lat: 33, Lon: -84}}}
	if code := post(bad); code != http.StatusBadRequest {
		t.Errorf("bad channel upload = %d", code)
	}
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/readings", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed upload = %d", resp.StatusCode)
	}
}

func TestReadingJSONRoundTrip(t *testing.T) {
	r := dataset.Reading{
		Seq: 7, Loc: geo.Point{Lat: 33.7, Lon: -84.4}, Channel: 30, Sensor: sensor.KindUSRPB200,
		Signal: features.Signal{RSSdBm: -88.5, CFTdB: -99.5, AFTdB: -101},
	}
	back, err := FromReading(r).ToReading()
	if err != nil {
		t.Fatal(err)
	}
	if back.Seq != r.Seq || back.Channel != r.Channel || back.Sensor != r.Sensor || back.Signal != r.Signal {
		t.Errorf("round trip mismatch: %+v vs %+v", back, r)
	}
	if _, err := (ReadingJSON{Channel: 30, Sensor: 1, Lat: 91}).ToReading(); err == nil {
		t.Error("invalid latitude must fail")
	}
}

func TestExportCSV(t *testing.T) {
	_, ts := bootedServer(t)
	resp, err := http.Get(ts.URL + "/v1/export?channel=47&sensor=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export = %s", resp.Status)
	}
	rows, err := dataset.ReadCSV(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 600 {
		t.Errorf("exported %d rows, want 600", len(rows))
	}
	// Missing store.
	resp, err = http.Get(ts.URL + "/v1/export?channel=30&sensor=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("export of empty store = %d", resp.StatusCode)
	}
}

func TestStats(t *testing.T) {
	_, ts := bootedServer(t)
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats = %s", resp.Status)
	}
	var stats []StatsJSON
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 {
		t.Fatalf("stats entries = %d, want 1", len(stats))
	}
	st := stats[0]
	if st.Channel != 47 || st.Sensor != 1 || st.Readings != 600 ||
		st.ModelVersion != 1 || st.ModelBytes == 0 {
		t.Errorf("stats entry = %+v", st)
	}
}

func TestUploadScreening(t *testing.T) {
	// The synthetic store is sparse (600 points over ~300 km²) with a
	// hard east/west RSS step, so screening needs a wide neighborhood
	// and a tolerance just above the step.
	s := New(Config{
		Constructor: core.ConstructorConfig{Classifier: core.KindNB},
		Screening:   &core.ValidatorConfig{NeighborhoodM: 3000, ToleranceDB: 31},
	})
	if err := s.Bootstrap(synthReadings(600, 47, 1)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	post := func(up UploadJSON) int {
		body, err := json.Marshal(up)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/readings", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// Honest upload: revisits stored locations with consistent readings
	// (the synthetic field is a hard east/west step, so fresh random
	// locations near the boundary would legitimately look suspect).
	honest := UploadJSON{CISpanDB: 0.3}
	for _, r := range synthReadings(600, 47, 1)[:40] {
		honest.Readings = append(honest.Readings, FromReading(r))
	}
	if code := post(honest); code != http.StatusNoContent {
		t.Fatalf("honest upload = %d", code)
	}
	if got := s.StoreSize(47, sensor.KindRTLSDR); got != 640 {
		t.Errorf("store size = %d, want 640", got)
	}

	// Fabricated upload: all RSS shifted 45 dB.
	attack := UploadJSON{CISpanDB: 0.3}
	for _, r := range synthReadings(40, 47, 3) {
		rj := FromReading(r)
		rj.RSSdBm -= 45
		attack.Readings = append(attack.Readings, rj)
	}
	if code := post(attack); code != http.StatusUnprocessableEntity {
		t.Errorf("fabricated upload = %d, want 422", code)
	}
	if got := s.StoreSize(47, sensor.KindRTLSDR); got != 640 {
		t.Errorf("store grew after rejected attack: %d", got)
	}
}

// TestConcurrentAccess hammers the server from parallel clients: model
// downloads, uploads, retrains, and stats must be safe together (run with
// -race).
func TestConcurrentAccess(t *testing.T) {
	_, ts := bootedServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				switch (worker + i) % 4 {
				case 0:
					resp, err := http.Get(ts.URL + "/v1/model?channel=47&sensor=1")
					if err != nil {
						errs <- err
						return
					}
					resp.Body.Close()
				case 1:
					up := UploadJSON{CISpanDB: 0.3}
					for _, r := range synthReadings(5, 47, int64(worker*100+i)) {
						up.Readings = append(up.Readings, FromReading(r))
					}
					body, _ := json.Marshal(up)
					resp, err := http.Post(ts.URL+"/v1/readings", "application/json", bytes.NewReader(body))
					if err != nil {
						errs <- err
						return
					}
					resp.Body.Close()
				case 2:
					resp, err := http.Post(ts.URL+"/v1/retrain?channel=47&sensor=1", "", nil)
					if err != nil {
						errs <- err
						return
					}
					resp.Body.Close()
				default:
					resp, err := http.Get(ts.URL + "/v1/stats")
					if err != nil {
						errs <- err
						return
					}
					resp.Body.Close()
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentMultiChannelNoLostUpdates drives parallel uploads and
// model fetches across several channels under the race detector and
// asserts no accepted reading is lost: the RWMutex lookup path must not
// let downloads starve or corrupt upload ingestion.
func TestConcurrentMultiChannelNoLostUpdates(t *testing.T) {
	channels := []rfenv.Channel{46, 47, 39}
	s := New(Config{Constructor: core.ConstructorConfig{Classifier: core.KindNB}})
	const bootN = 300
	for _, ch := range channels {
		if err := s.Bootstrap(synthReadings(bootN, ch, int64(ch))); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	const (
		uploaders      = 3 // per channel
		uploadsEach    = 8
		batchSize      = 5
		downloadersPer = 2
	)
	var wg sync.WaitGroup
	errs := make(chan error, len(channels)*(uploaders+downloadersPer)*uploadsEach)
	for _, ch := range channels {
		for w := 0; w < uploaders; w++ {
			wg.Add(1)
			go func(ch rfenv.Channel, worker int) {
				defer wg.Done()
				for i := 0; i < uploadsEach; i++ {
					up := UploadJSON{CISpanDB: 0.3}
					for _, r := range synthReadings(batchSize, ch, int64(int(ch)*1000+worker*100+i)) {
						up.Readings = append(up.Readings, FromReading(r))
					}
					body, _ := json.Marshal(up)
					resp, err := http.Post(ts.URL+"/v1/readings", "application/json", bytes.NewReader(body))
					if err != nil {
						errs <- err
						return
					}
					if resp.StatusCode != http.StatusNoContent {
						errs <- fmt.Errorf("upload ch%d: %s", int(ch), resp.Status)
					}
					resp.Body.Close()
				}
			}(ch, w)
		}
		for w := 0; w < downloadersPer; w++ {
			wg.Add(1)
			go func(ch rfenv.Channel) {
				defer wg.Done()
				for i := 0; i < uploadsEach; i++ {
					resp, err := http.Get(fmt.Sprintf("%s/v1/model?channel=%d&sensor=1", ts.URL, int(ch)))
					if err != nil {
						errs <- err
						return
					}
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("download ch%d: %s", int(ch), resp.Status)
					}
					resp.Body.Close()
				}
			}(ch)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	want := bootN + uploaders*uploadsEach*batchSize
	for _, ch := range channels {
		if got := s.StoreSize(ch, sensor.KindRTLSDR); got != want {
			t.Errorf("ch%d store = %d readings, want %d (lost updates)", int(ch), got, want)
		}
	}
}

func TestHealthz(t *testing.T) {
	s, ts := bootedServer(t)
	_ = s
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %s", resp.Status)
	}
	var rep HealthJSON
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Status != "ok" {
		t.Errorf("status = %q", rep.Status)
	}
	if len(rep.Stores) != 1 {
		t.Fatalf("stores = %d, want 1", len(rep.Stores))
	}
	st := rep.Stores[0]
	if st.Channel != 47 || st.Sensor != int(sensor.KindRTLSDR) {
		t.Errorf("store key = ch%d/%d", st.Channel, st.Sensor)
	}
	if st.Readings != 600 {
		t.Errorf("readings = %d, want 600", st.Readings)
	}
	if !st.Trained || st.ModelVersion != 1 {
		t.Errorf("trained=%v version=%d, want trained v1", st.Trained, st.ModelVersion)
	}
}

// TestMetricsEndpoint exercises the observability path end-to-end: server
// traffic must show up in /metrics as request, updater, and detector-free
// (server-side) metric families in Prometheus text format.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := bootedServer(t)

	// Generate some traffic first.
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/v1/model?channel=47&sensor=1")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	up := UploadJSON{CISpanDB: 0.3}
	for _, r := range synthReadings(4, 47, 9) {
		up.Readings = append(up.Readings, FromReading(r))
	}
	body, _ := json.Marshal(up)
	resp, err := http.Post(ts.URL+"/v1/readings", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %s", resp.Status)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"# TYPE waldo_http_requests_total counter",
		`waldo_http_requests_total{route="/v1/model",code="200"} 3`,
		`waldo_http_requests_total{route="/v1/readings",code="204"} 1`,
		"# TYPE waldo_http_request_seconds histogram",
		"# TYPE waldo_updater_uploads_total counter",
		`waldo_updater_uploads_total{store="ch47/rtl-sdr",outcome="accepted"} 1`,
		"# TYPE waldo_updater_store_readings gauge",
		`waldo_updater_store_readings{store="ch47/rtl-sdr"} 604`,
		"# TYPE waldo_updater_rebuild_seconds histogram",
		"# TYPE waldo_span_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
