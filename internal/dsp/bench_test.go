package dsp

import (
	"math/rand"
	"testing"
)

func benchSignal(n int) []complex128 {
	rng := rand.New(rand.NewSource(1))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

// BenchmarkFFT256 is the per-capture cost on the mobile WSD (256 I/Q
// samples per reading, §2.1).
func BenchmarkFFT256(b *testing.B) {
	x := benchSignal(256)
	buf := make([]complex128, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		if err := FFT(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFFT4096(b *testing.B) {
	x := benchSignal(4096)
	buf := make([]complex128, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		if err := FFT(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPowerSpectrum256 is the full per-capture feature-extraction
// front end: copy, FFT, and |X[k]|²/N² into a caller buffer. With the
// pooled scratch buffer and cached twiddle factors it is alloc-free.
func BenchmarkPowerSpectrum256(b *testing.B) {
	x := benchSignal(256)
	dst := make([]float64, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := PowerSpectrumInto(dst, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPercentile(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Percentile(xs, 95)
	}
}

func BenchmarkMeanCI(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 128)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MeanCI(xs, 0.9)
	}
}
