package core

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"reflect"
	"testing"

	"github.com/wsdetect/waldo/internal/dataset"
)

func batchReadings(n int) []dataset.Reading {
	rs := make([]dataset.Reading, n)
	for i := range rs {
		rs[i] = codecReading(i)
	}
	return rs
}

func TestBatchFrameRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 256} {
		rs := batchReadings(n)
		frame, err := EncodeBatchFrame(rs)
		if err != nil {
			t.Fatalf("n=%d: encode: %v", n, err)
		}
		if len(frame) != BatchFrameLen(n) {
			t.Fatalf("n=%d: encoded %d bytes, want %d", n, len(frame), BatchFrameLen(n))
		}
		got, rest, err := DecodeBatchFrame(nil, frame)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if len(rest) != 0 {
			t.Fatalf("n=%d: %d unconsumed bytes", n, len(rest))
		}
		if !reflect.DeepEqual(got, rs) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
	}
}

func TestBatchFrameTrailingBytesBelongToCaller(t *testing.T) {
	rs := batchReadings(3)
	frame, err := EncodeBatchFrame(rs)
	if err != nil {
		t.Fatal(err)
	}
	frame = append(frame, 0xDE, 0xAD)
	got, rest, err := DecodeBatchFrame(nil, frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || !bytes.Equal(rest, []byte{0xDE, 0xAD}) {
		t.Fatalf("got %d readings, rest %x", len(got), rest)
	}
}

// TestBatchFrameDecodeIntoScratch pins the pooled-scratch contract: a
// decode into a slice with enough capacity allocates nothing, and an
// errored decode returns dst unchanged.
func TestBatchFrameDecodeIntoScratch(t *testing.T) {
	rs := batchReadings(32)
	frame, err := EncodeBatchFrame(rs)
	if err != nil {
		t.Fatal(err)
	}
	scratch := make([]dataset.Reading, 0, 64)
	allocs := testing.AllocsPerRun(100, func() {
		out, _, err := DecodeBatchFrame(scratch[:0], frame)
		if err != nil || len(out) != 32 {
			t.Fatalf("decode: %v (%d readings)", err, len(out))
		}
	})
	if allocs != 0 {
		t.Errorf("decode into scratch allocates %.1f times/op, want 0", allocs)
	}

	seeded := append(scratch[:0], codecReading(99))
	out, _, err := DecodeBatchFrame(seeded, frame[:len(frame)-1])
	if err == nil {
		t.Fatal("truncated frame accepted")
	}
	if len(out) != 1 || out[0].Seq != 99 {
		t.Errorf("failed decode mutated dst: %d readings", len(out))
	}
}

// TestBatchFrameTornAtEveryOffset mirrors the WAL torn-write suite: a
// frame cut at any byte boundary must be rejected as truncated, never
// decoded as a shorter valid batch and never panicking.
func TestBatchFrameTornAtEveryOffset(t *testing.T) {
	rs := batchReadings(5)
	frame, err := EncodeBatchFrame(rs)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(frame); cut++ {
		if _, _, err := DecodeBatchFrame(nil, frame[:cut]); err == nil {
			t.Fatalf("frame torn at byte %d of %d accepted", cut, len(frame))
		}
	}
}

// TestBatchFrameCorruptAtEveryByte flips every byte in turn. The CRC must
// catch any flip in the count or the CRC itself; a flip inside a reading
// is caught by the CRC too (field validation is the second line, the CRC
// the first).
func TestBatchFrameCorruptAtEveryByte(t *testing.T) {
	rs := batchReadings(3)
	frame, err := EncodeBatchFrame(rs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(frame); i++ {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x40
		if _, _, err := DecodeBatchFrame(nil, bad); err == nil {
			t.Fatalf("byte %d flipped and still accepted", i)
		}
	}
}

func TestBatchFrameRejectsDegenerateCounts(t *testing.T) {
	// Zero count.
	zero := binary.LittleEndian.AppendUint32(nil, 0)
	zero = binary.LittleEndian.AppendUint32(zero, 0)
	if _, _, err := DecodeBatchFrame(nil, zero); err == nil {
		t.Error("zero-count frame accepted")
	}

	// Count far beyond the body (a length-prefix attack must not allocate
	// count readings before noticing).
	huge := binary.LittleEndian.AppendUint32(nil, 1<<31)
	huge = append(huge, make([]byte, 128)...)
	if _, _, err := DecodeBatchFrame(nil, huge); err == nil {
		t.Error("oversized count accepted")
	}

	// Count above MaxBatchReadings even with a plausible body length
	// prefix is rejected before any body inspection.
	over := binary.LittleEndian.AppendUint32(nil, MaxBatchReadings+1)
	if _, _, err := DecodeBatchFrame(nil, over); err == nil {
		t.Error("count above MaxBatchReadings accepted")
	}

	// Encoding side enforces the same bounds.
	if _, err := EncodeBatchFrame(nil); err == nil {
		t.Error("empty batch encoded")
	}
}

// TestBatchFrameProperty is the randomized sweep: random batches round
// trip exactly; random mutations (truncate, flip, count rewrite) never
// round trip and never panic.
func TestBatchFrameProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(40)
		rs := batchReadings(n)
		frame, err := EncodeBatchFrame(rs)
		if err != nil {
			t.Fatal(err)
		}
		got, rest, err := DecodeBatchFrame(nil, frame)
		if err != nil || len(rest) != 0 || !reflect.DeepEqual(got, rs) {
			t.Fatalf("iter %d: clean round trip failed: %v", iter, err)
		}

		bad := append([]byte(nil), frame...)
		switch rng.Intn(3) {
		case 0:
			bad = bad[:rng.Intn(len(bad))]
		case 1:
			bad[rng.Intn(len(bad))] ^= byte(1 + rng.Intn(255))
		case 2:
			binary.LittleEndian.PutUint32(bad, uint32(n+1+rng.Intn(100)))
		}
		if bytes.Equal(bad, frame) {
			continue
		}
		if _, _, err := DecodeBatchFrame(nil, bad); err == nil {
			t.Fatalf("iter %d: mutated frame accepted", iter)
		}
	}
}

func FuzzDecodeBatchFrame(f *testing.F) {
	seed, err := EncodeBatchFrame(batchReadings(3))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:10])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rs, rest, err := DecodeBatchFrame(nil, data)
		if err != nil {
			return
		}
		// Anything the decoder accepts must re-encode byte-identically
		// (the gateway's split path depends on this).
		consumed := data[:len(data)-len(rest)]
		re, err := EncodeBatchFrame(rs)
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, consumed) {
			t.Fatalf("re-encode mismatch: %d vs %d bytes", len(re), len(consumed))
		}
	})
}
