// Package wardrive generates measurement-collection drives over a metro
// area and runs full multi-sensor campaigns against an RF environment,
// producing the labeled datasets the rest of the system trains on.
//
// The paper's campaign drove ≈800 km of Atlanta roads collecting 5,282
// readings per channel per sensor, with consecutive same-channel readings
// separated by more than 20 m (shadowing decorrelation, §2.1). Routes here
// follow a street-grid serpentine — east–west sweeps plus a north–south
// pass — so the data has the road-following, non-uniform spatial structure
// that the paper calls out as a modeling challenge (§3.2).
package wardrive

import (
	"fmt"
	"math/rand"

	"github.com/wsdetect/waldo/internal/geo"
)

// MinReadingSpacingM is the paper's minimum separation between readings of
// the same channel (§2.1: "always separated by more than 20 meters").
const MinReadingSpacingM = 20.0

// RouteConfig describes a drive.
type RouteConfig struct {
	// Area is the region to cover.
	Area geo.BBox
	// StreetSpacingM is the distance between parallel streets in the
	// grid. Default 1800 m.
	StreetSpacingM float64
	// Samples is the number of reading locations to produce. Default
	// 5282, the paper's per-channel count.
	Samples int
	// GPSJitterM is the standard deviation of per-sample GPS error.
	// Default 4 m.
	GPSJitterM float64
	// Seed drives GPS jitter and sampling phase.
	Seed int64
}

func (c *RouteConfig) defaults() error {
	if c.Area.MinLat >= c.Area.MaxLat || c.Area.MinLon >= c.Area.MaxLon {
		return fmt.Errorf("wardrive: degenerate area %+v", c.Area)
	}
	if c.StreetSpacingM == 0 {
		c.StreetSpacingM = 1800
	}
	if c.StreetSpacingM < 0 {
		return fmt.Errorf("wardrive: negative street spacing %v", c.StreetSpacingM)
	}
	if c.Samples == 0 {
		c.Samples = 5282
	}
	if c.Samples < 0 {
		return fmt.Errorf("wardrive: negative sample count %d", c.Samples)
	}
	if c.GPSJitterM == 0 {
		c.GPSJitterM = 4
	}
	return nil
}

// Route is an ordered sequence of reading locations along a drive.
type Route struct {
	// Points are the sample locations in drive order.
	Points []geo.Point
	// LengthM is the total driven distance.
	LengthM float64
}

// GenerateRoute lays out the street-grid serpentine and samples reading
// locations along it at even spacing (never closer than
// MinReadingSpacingM).
func GenerateRoute(cfg RouteConfig) (*Route, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	proj := geo.NewProjector(cfg.Area.Center())
	sw, ne := cfg.Area.Corners()
	lo := proj.ToXY(sw)
	hi := proj.ToXY(ne)

	waypoints := serpentine(lo, hi, cfg.StreetSpacingM, false)
	waypoints = append(waypoints, serpentine(lo, hi, cfg.StreetSpacingM*1.6, true)...)

	var length float64
	for i := 1; i < len(waypoints); i++ {
		length += waypoints[i].DistanceM(waypoints[i-1])
	}
	if length == 0 {
		return nil, fmt.Errorf("wardrive: area too small for a route")
	}

	// 3% slack absorbs candidates dropped at sharp corners for violating
	// the minimum-spacing rule.
	spacing := length / (float64(cfg.Samples) * 1.03)
	if spacing < MinReadingSpacingM {
		return nil, fmt.Errorf("wardrive: %d samples on a %.0f m route violates the %v m minimum spacing",
			cfg.Samples, length, MinReadingSpacingM)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	points := make([]geo.Point, 0, cfg.Samples)
	// Walk the polyline emitting a sample every `spacing` meters of path.
	// Around sharp corners path spacing does not bound Euclidean spacing,
	// so candidates closer than the minimum to the previous kept sample
	// are skipped (the campaign rule is a hard >20 m separation).
	var lastXY geo.XY
	carry := spacing / 2 // phase offset into the first segment
	for i := 1; i < len(waypoints) && len(points) < cfg.Samples; i++ {
		a, b := waypoints[i-1], waypoints[i]
		segLen := a.DistanceM(b)
		for carry <= segLen && len(points) < cfg.Samples {
			t := carry / segLen
			xy := geo.XY{X: a.X + (b.X-a.X)*t, Y: a.Y + (b.Y-a.Y)*t}
			xy.X += rng.NormFloat64() * cfg.GPSJitterM
			xy.Y += rng.NormFloat64() * cfg.GPSJitterM
			carry += spacing
			if len(points) > 0 && xy.DistanceM(lastXY) < MinReadingSpacingM*1.05 {
				continue
			}
			points = append(points, proj.ToPoint(xy))
			lastXY = xy
		}
		carry -= segLen
	}
	if len(points) < cfg.Samples {
		return nil, fmt.Errorf("wardrive: produced %d of %d samples (route too short)", len(points), cfg.Samples)
	}
	return &Route{Points: points, LengthM: length}, nil
}

// serpentine builds a boustrophedon sweep across the box: horizontal rows
// when transpose is false, vertical columns when true.
func serpentine(lo, hi geo.XY, spacing float64, transpose bool) []geo.XY {
	var pts []geo.XY
	if transpose {
		forward := true
		for x := lo.X + spacing/2; x <= hi.X; x += spacing {
			if forward {
				pts = append(pts, geo.XY{X: x, Y: lo.Y}, geo.XY{X: x, Y: hi.Y})
			} else {
				pts = append(pts, geo.XY{X: x, Y: hi.Y}, geo.XY{X: x, Y: lo.Y})
			}
			forward = !forward
		}
		return pts
	}
	forward := true
	for y := lo.Y + spacing/2; y <= hi.Y; y += spacing {
		if forward {
			pts = append(pts, geo.XY{X: lo.X, Y: y}, geo.XY{X: hi.X, Y: y})
		} else {
			pts = append(pts, geo.XY{X: hi.X, Y: y}, geo.XY{X: lo.X, Y: y})
		}
		forward = !forward
	}
	return pts
}
