package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/features"
	"github.com/wsdetect/waldo/internal/geo"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
)

// Reading wire format (little-endian, fixed size). This is the stable
// binary codec shared by the write-ahead log and the snapshot files of
// internal/wal: one reading is always exactly ReadingWireSize bytes, so
// batch sizes are computable up front and a torn disk write can never be
// confused with a shorter valid encoding.
//
//	offset  size  field
//	     0     8  Seq (int64)
//	     8     8  Loc.Lat (float64)
//	    16     8  Loc.Lon (float64)
//	    24     2  Channel (uint16)
//	    26     1  Sensor (uint8)
//	    27     8  Signal.RSSdBm (float64)
//	    35     8  Signal.CFTdB (float64)
//	    43     8  Signal.AFTdB (float64)
//	    51     8  AltM (float64)
//	    59     8  TrueDBm (float64)
//
// The layout is versioned by its container (WAL record / snapshot header
// codec version), not per reading.
const ReadingWireSize = 67

// AppendReadingWire appends the fixed-size encoding of r to dst and
// returns the extended slice.
func AppendReadingWire(dst []byte, r *dataset.Reading) []byte {
	var b [ReadingWireSize]byte
	binary.LittleEndian.PutUint64(b[0:], uint64(int64(r.Seq)))
	binary.LittleEndian.PutUint64(b[8:], math.Float64bits(r.Loc.Lat))
	binary.LittleEndian.PutUint64(b[16:], math.Float64bits(r.Loc.Lon))
	binary.LittleEndian.PutUint16(b[24:], uint16(r.Channel))
	b[26] = byte(r.Sensor)
	binary.LittleEndian.PutUint64(b[27:], math.Float64bits(r.Signal.RSSdBm))
	binary.LittleEndian.PutUint64(b[35:], math.Float64bits(r.Signal.CFTdB))
	binary.LittleEndian.PutUint64(b[43:], math.Float64bits(r.Signal.AFTdB))
	binary.LittleEndian.PutUint64(b[51:], math.Float64bits(r.AltM))
	binary.LittleEndian.PutUint64(b[59:], math.Float64bits(r.TrueDBm))
	return append(dst, b[:]...)
}

// DecodeReadingWire decodes one fixed-size reading from the front of b,
// validating the fields a trusted store could never have accepted.
func DecodeReadingWire(b []byte) (dataset.Reading, error) {
	if len(b) < ReadingWireSize {
		return dataset.Reading{}, fmt.Errorf("core: reading truncated: %d of %d bytes", len(b), ReadingWireSize)
	}
	r := dataset.Reading{
		Seq: int(int64(binary.LittleEndian.Uint64(b[0:]))),
		Loc: geo.Point{
			Lat: math.Float64frombits(binary.LittleEndian.Uint64(b[8:])),
			Lon: math.Float64frombits(binary.LittleEndian.Uint64(b[16:])),
		},
		Channel: rfenv.Channel(binary.LittleEndian.Uint16(b[24:])),
		Sensor:  sensor.Kind(b[26]),
		Signal: features.Signal{
			RSSdBm: math.Float64frombits(binary.LittleEndian.Uint64(b[27:])),
			CFTdB:  math.Float64frombits(binary.LittleEndian.Uint64(b[35:])),
			AFTdB:  math.Float64frombits(binary.LittleEndian.Uint64(b[43:])),
		},
		AltM:    math.Float64frombits(binary.LittleEndian.Uint64(b[51:])),
		TrueDBm: math.Float64frombits(binary.LittleEndian.Uint64(b[59:])),
	}
	if !r.Channel.Valid() {
		return dataset.Reading{}, fmt.Errorf("core: decoded reading has invalid channel %d", r.Channel)
	}
	if _, err := sensor.SpecFor(r.Sensor); err != nil {
		return dataset.Reading{}, fmt.Errorf("core: decoded reading: %w", err)
	}
	if !r.Loc.Valid() {
		return dataset.Reading{}, fmt.Errorf("core: decoded reading has invalid location %v", r.Loc)
	}
	return r, nil
}

// AppendReadingsWire appends a counted batch (uint32 length prefix, then
// fixed-size readings) to dst.
func AppendReadingsWire(dst []byte, rs []dataset.Reading) []byte {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(rs)))
	dst = append(dst, n[:]...)
	for i := range rs {
		dst = AppendReadingWire(dst, &rs[i])
	}
	return dst
}

// DecodeReadingsWire decodes a counted batch from the front of b,
// returning the readings and the unconsumed remainder.
func DecodeReadingsWire(b []byte) ([]dataset.Reading, []byte, error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("core: reading batch truncated: missing count")
	}
	n := int(binary.LittleEndian.Uint32(b))
	return DecodeReadingsWireInto(make([]dataset.Reading, 0, n), b)
}

// DecodeReadingsWireInto decodes a counted batch from the front of b,
// appending the readings to dst and returning the extended slice plus the
// unconsumed remainder. Passing a scratch slice with capacity makes the
// decode allocation-free — the WAL replay path and the batch ingest
// handler both lean on this. On error dst is returned unchanged.
func DecodeReadingsWireInto(dst []dataset.Reading, b []byte) ([]dataset.Reading, []byte, error) {
	if len(b) < 4 {
		return dst, nil, fmt.Errorf("core: reading batch truncated: missing count")
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if need := n * ReadingWireSize; n > len(b)/ReadingWireSize {
		return dst, nil, fmt.Errorf("core: reading batch truncated: %d of %d bytes", len(b), need)
	}
	out := dst
	for i := 0; i < n; i++ {
		r, err := DecodeReadingWire(b)
		if err != nil {
			return dst, nil, fmt.Errorf("core: reading %d: %w", i, err)
		}
		out = append(out, r)
		b = b[ReadingWireSize:]
	}
	return out, b, nil
}
