package geoindex

import (
	"context"
	"math/rand"
	"testing"

	"github.com/wsdetect/waldo/internal/core"
	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/features"
	"github.com/wsdetect/waldo/internal/geo"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
)

// synthSplit generates readings around the metro with a sharp east/west
// occupancy split: east of the origin the channel is occupied (strong
// RSS), west it is free.
func synthSplit(n int, ch rfenv.Channel, seed int64) []dataset.Reading {
	rng := rand.New(rand.NewSource(seed))
	origin := rfenv.MetroCenter
	out := make([]dataset.Reading, 0, n)
	for i := 0; i < n; i++ {
		loc := origin.Offset(rng.Float64()*360, rng.Float64()*10000)
		rss := -100.0
		if loc.Lon > origin.Lon {
			rss = -70
		}
		out = append(out, dataset.Reading{
			Seq: i, Loc: loc, Channel: ch, Sensor: sensor.KindRTLSDR,
			Signal: features.Signal{RSSdBm: rss, CFTdB: rss - 11.3, AFTdB: rss - 13},
		})
	}
	return out
}

// trainedStore builds a model over the synthetic split and returns the
// index input for it.
func trainedStore(t *testing.T, ch rfenv.Channel, seed int64) StoreSnapshot {
	t.Helper()
	u, err := core.NewUpdater(core.UpdaterConfig{
		Constructor: core.ConstructorConfig{Classifier: core.KindNB},
	})
	if err != nil {
		t.Fatal(err)
	}
	rs := synthSplit(800, ch, seed)
	u.Bootstrap(rs)
	if _, err := u.Retrain(); err != nil {
		t.Fatal(err)
	}
	model, version := u.Model()
	return StoreSnapshot{
		Channel: ch, Sensor: sensor.KindRTLSDR,
		Model: model, ModelVersion: version, Recent: rs,
	}
}

func TestCellOfGolden(t *testing.T) {
	cases := []struct {
		lat, lon, deg float64
		want          Cell
	}{
		{0, 0, 0.05, Cell{0, 0}},
		{0.049999, 0.049999, 0.05, Cell{0, 0}},
		// Exact cell edges belong to the cell they open.
		{0.05, 0.05, 0.05, Cell{1, 1}},
		{-0.05, -0.05, 0.05, Cell{-1, -1}},
		// Negative coordinates floor away from zero: no double-width
		// cell straddling the equator/prime meridian.
		{-0.01, -0.01, 0.05, Cell{-1, -1}},
		// Antimeridian neighbors quantize to adjacent-most extremes.
		{10, 179.99, 0.05, Cell{200, 3599}},
		{10, -180, 0.05, Cell{200, -3600}},
		// cellDeg <= 0 falls back to the default quantum.
		{1.0, 2.0, 0, Cell{20, 40}},
	}
	for _, c := range cases {
		got := CellOf(geo.Point{Lat: c.lat, Lon: c.lon}, c.deg)
		if got != c.want {
			t.Errorf("CellOf(%v,%v @ %v) = %+v, want %+v", c.lat, c.lon, c.deg, got, c.want)
		}
	}
}

func TestBuildDerivesVerdicts(t *testing.T) {
	st := trainedStore(t, 47, 1)
	x := New(Config{Source: func() []StoreSnapshot { return []StoreSnapshot{st} }})
	snap := x.Rebuild(context.Background())

	if snap.Generation != 1 {
		t.Fatalf("generation = %d, want 1", snap.Generation)
	}
	if snap.Cells() == 0 || snap.Entries() == 0 {
		t.Fatalf("empty grid: %d cells, %d entries", snap.Cells(), snap.Entries())
	}
	if snap.Stores != 1 {
		t.Fatalf("stores = %d, want 1", snap.Stores)
	}

	// Deep west must read free, deep east occupied (the synthetic field
	// splits occupancy on the origin's meridian).
	west := rfenv.MetroCenter.Offset(270, 6000)
	east := rfenv.MetroCenter.Offset(90, 6000)
	checkStatus := func(p geo.Point, want Status) {
		t.Helper()
		entries := snap.Lookup(CellOf(p, snap.CellDeg))
		if len(entries) == 0 {
			t.Fatalf("no verdicts at %v", p)
		}
		e := entries[0]
		if e.Channel != 47 || e.Sensor != sensor.KindRTLSDR {
			t.Fatalf("entry identity = %v/%v", e.Channel, e.Sensor)
		}
		if e.Status != want {
			t.Errorf("status at %v = %v, want %v (conf %.2f, n=%d)",
				p, e.Status, want, e.Confidence, e.Readings)
		}
		if e.Confidence <= 0 || e.Confidence >= 1 {
			t.Errorf("confidence %v outside (0,1)", e.Confidence)
		}
		if e.ModelVersion != 1 {
			t.Errorf("model version = %d, want 1", e.ModelVersion)
		}
	}
	checkStatus(west, StatusFree)
	checkStatus(east, StatusOccupied)

	// A cell with no evidence has no entry — unknown, not free.
	if got := snap.Lookup(Cell{X: 9999, Y: 9999}); got != nil {
		t.Errorf("far cell lookup = %v, want nil", got)
	}
}

func TestConfidenceShrinksWithEvidence(t *testing.T) {
	st := trainedStore(t, 47, 2)
	// One-reading store: whatever the verdict, confidence must be small.
	one := st
	one.Recent = st.Recent[:1]
	x := New(Config{Source: func() []StoreSnapshot { return []StoreSnapshot{one} }})
	snap := x.Rebuild(context.Background())
	for _, cell := range []Cell{CellOf(one.Recent[0].Loc, snap.CellDeg)} {
		for _, e := range snap.Lookup(cell) {
			if e.Readings != 1 {
				t.Fatalf("readings = %d, want 1", e.Readings)
			}
			if e.Confidence > 0.25 {
				t.Errorf("single-reading confidence %.2f, want <= 0.25 (shrinkage)", e.Confidence)
			}
		}
	}
}

func TestScheduleCoalescesAndCloseWaits(t *testing.T) {
	st := trainedStore(t, 47, 3)
	x := New(Config{Source: func() []StoreSnapshot { return []StoreSnapshot{st} }})
	ctx := context.Background()
	for i := 0; i < 16; i++ {
		x.Schedule(ctx)
	}
	x.Close()
	if gen := x.Snapshot().Generation; gen == 0 {
		t.Fatal("no rebuild completed before Close returned")
	}
	// After Close, triggers are ignored.
	gen := x.Snapshot().Generation
	x.Schedule(ctx)
	x.Close()
	if got := x.Snapshot().Generation; got != gen {
		t.Errorf("generation moved to %d after Close, want %d", got, gen)
	}
}

func TestSnapshotStableDuringRebuild(t *testing.T) {
	st := trainedStore(t, 47, 4)
	x := New(Config{Source: func() []StoreSnapshot { return []StoreSnapshot{st} }})
	first := x.Rebuild(context.Background())
	held := x.Snapshot()
	second := x.Rebuild(context.Background())
	if held.Generation != first.Generation {
		t.Fatalf("held snapshot mutated: generation %d", held.Generation)
	}
	if second.Generation <= first.Generation {
		t.Fatalf("rebuild did not advance generation: %d -> %d",
			first.Generation, second.Generation)
	}
	if x.Snapshot().Generation != second.Generation {
		t.Fatalf("serving snapshot is not the newest")
	}
}

func TestSampleRouteSegments(t *testing.T) {
	start := rfenv.MetroCenter.Offset(270, 8000)
	end := rfenv.MetroCenter.Offset(90, 8000)
	mid := rfenv.MetroCenter.Offset(0, 2000)
	points := []geo.Point{start, mid, end}
	segs := SampleRoute(points, 500, DefaultCellDeg)
	if len(segs) < 2 {
		t.Fatalf("16 km route produced %d segments, want >= 2 cells", len(segs))
	}
	for i, s := range segs {
		if s.ExitM < s.EnterM {
			t.Errorf("segment %d spans [%.0f, %.0f]", i, s.EnterM, s.ExitM)
		}
		if i > 0 {
			if s.EnterM != segs[i-1].ExitM {
				t.Errorf("segment %d enters at %.0f, previous exits at %.0f",
					i, s.EnterM, segs[i-1].ExitM)
			}
			if s.Cell == segs[i-1].Cell {
				t.Errorf("segments %d and %d share cell %+v (not coalesced)", i-1, i, s.Cell)
			}
		}
	}
	if segs[0].From != start {
		t.Errorf("first segment starts at %v, want %v", segs[0].From, start)
	}
	if segs[len(segs)-1].To != end {
		t.Errorf("last segment ends at %v, want %v", segs[len(segs)-1].To, end)
	}
	// Determinism: same inputs, identical geometry (the gateway merge
	// contract).
	again := SampleRoute(points, 500, DefaultCellDeg)
	if len(again) != len(segs) {
		t.Fatalf("resample produced %d segments, want %d", len(again), len(segs))
	}
	for i := range segs {
		if segs[i] != again[i] {
			t.Errorf("segment %d differs across identical samplings", i)
		}
	}
	if n, want := SampleCount(points, 500), len(points); n < want {
		t.Errorf("SampleCount = %d, want >= %d", n, want)
	}
}

func TestSampleRouteDegenerate(t *testing.T) {
	if segs := SampleRoute(nil, 0, 0); segs != nil {
		t.Errorf("empty polyline = %v, want nil", segs)
	}
	p := rfenv.MetroCenter
	segs := SampleRoute([]geo.Point{p}, 0, 0)
	if len(segs) != 1 || segs[0].Cell != CellOf(p, DefaultCellDeg) {
		t.Errorf("single waypoint = %+v", segs)
	}
	// Repeated waypoints (zero-length legs) must not divide by zero.
	segs = SampleRoute([]geo.Point{p, p, p}, 0, 0)
	if len(segs) != 1 {
		t.Errorf("degenerate route = %d segments, want 1", len(segs))
	}
}

func TestConfidenceDecay(t *testing.T) {
	if got := ConfidenceDecay(0, 0); got != 1 {
		t.Errorf("no horizon decay = %v, want 1", got)
	}
	short := ConfidenceDecay(60, 0)
	long := ConfidenceDecay(3600, 0)
	if !(short > long && long > 0 && short < 1) {
		t.Errorf("decay not monotone: 60s=%v 3600s=%v", short, long)
	}
}
