package experiments

import (
	"fmt"
	"strings"

	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/dsp"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
)

// Fig6Point is one position in the drive sequence as seen by all sensors.
type Fig6Point struct {
	Seq int
	// RSS per sensor, dBm.
	RSS map[sensor.Kind]float64
	// Label per sensor.
	Label map[sensor.Kind]dataset.Label
}

// Fig6Result reproduces Fig. 6: detection decisions and RSS traces of all
// three sensors along a channel-47 drive segment.
type Fig6Result struct {
	Channel rfenv.Channel
	Points  []Fig6Point
	// Agreement is the fraction of positions where each low-cost sensor's
	// label matches the analyzer's.
	Agreement map[sensor.Kind]float64
	// RSSCorrelation is the Pearson correlation of each low-cost
	// sensor's RSS trace with the analyzer's.
	RSSCorrelation map[sensor.Kind]float64
}

// Fig6DetectionTraces extracts `length` readings of channel 47 from the
// middle of the drive, where the route crosses the coverage boundary
// (paper Fig. 6 plots ≈700).
func (s *Suite) Fig6DetectionTraces(length int) (*Fig6Result, error) {
	if length <= 0 {
		length = 700
	}
	camp, err := s.Campaign()
	if err != nil {
		return nil, err
	}
	const ch = rfenv.Channel(47)
	kinds := []sensor.Kind{sensor.KindRTLSDR, sensor.KindUSRPB200, sensor.KindSpectrumAnalyzer}

	labels := make(map[sensor.Kind][]dataset.Label)
	readings := make(map[sensor.Kind][]dataset.Reading)
	for _, k := range kinds {
		rs := camp.Readings(ch, k)
		if len(rs) == 0 {
			return nil, fmt.Errorf("experiments: no channel-47 readings for %v", k)
		}
		ls, err := s.Labels(ch, k, 0)
		if err != nil {
			return nil, err
		}
		if length > len(rs) {
			length = len(rs)
		}
		readings[k] = rs
		labels[k] = ls
	}

	start := (len(readings[sensor.KindSpectrumAnalyzer]) - length) / 2
	res := &Fig6Result{
		Channel:        ch,
		Agreement:      make(map[sensor.Kind]float64),
		RSSCorrelation: make(map[sensor.Kind]float64),
	}
	for i := start; i < start+length; i++ {
		pt := Fig6Point{
			Seq:   i,
			RSS:   make(map[sensor.Kind]float64, len(kinds)),
			Label: make(map[sensor.Kind]dataset.Label, len(kinds)),
		}
		for _, k := range kinds {
			pt.RSS[k] = readings[k][i].Signal.RSSdBm
			pt.Label[k] = labels[k][i]
		}
		res.Points = append(res.Points, pt)
	}

	saRSS := make([]float64, length)
	for i := 0; i < length; i++ {
		saRSS[i] = readings[sensor.KindSpectrumAnalyzer][start+i].Signal.RSSdBm
	}
	for _, k := range []sensor.Kind{sensor.KindRTLSDR, sensor.KindUSRPB200} {
		agree := 0
		rss := make([]float64, length)
		for i := 0; i < length; i++ {
			if labels[k][start+i] == labels[sensor.KindSpectrumAnalyzer][start+i] {
				agree++
			}
			rss[i] = readings[k][start+i].Signal.RSSdBm
		}
		res.Agreement[k] = float64(agree) / float64(length)
		res.RSSCorrelation[k] = dsp.Pearson(rss, saRSS)
	}
	return res, nil
}

// Render implements the experiment report.
func (r *Fig6Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 6: %v detection traces (all sensors, %d readings)\n", r.Channel, len(r.Points))
	for _, k := range []sensor.Kind{sensor.KindRTLSDR, sensor.KindUSRPB200} {
		fmt.Fprintf(&b, "  %v: label agreement with analyzer %.1f%%, RSS correlation %.3f\n",
			k, r.Agreement[k]*100, r.RSSCorrelation[k])
	}
	b.WriteString("  sample rows (seq: rtl / usrp / analyzer RSS dBm, labels):\n")
	step := len(r.Points) / 8
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(r.Points); i += step {
		pt := r.Points[i]
		fmt.Fprintf(&b, "  %5d: %7.1f / %7.1f / %7.1f   %s / %s / %s\n", pt.Seq,
			pt.RSS[sensor.KindRTLSDR], pt.RSS[sensor.KindUSRPB200], pt.RSS[sensor.KindSpectrumAnalyzer],
			pt.Label[sensor.KindRTLSDR], pt.Label[sensor.KindUSRPB200], pt.Label[sensor.KindSpectrumAnalyzer])
	}
	return b.String()
}

// Fig7Row is one channel's label correlation between the two low-cost
// sensors.
type Fig7Row struct {
	Channel rfenv.Channel
	// Pearson is the correlation between RTL-SDR and USRP label
	// sequences.
	Pearson float64
}

// Fig7Result reproduces Fig. 7: the CDF of per-channel Pearson correlation
// between RTL-SDR and USRP labels. The paper reports medians above 0.9
// with channel 21 anomalous (RTL misses its near-floor signals).
type Fig7Result struct {
	Rows   []Fig7Row
	Median float64
	// WorstChannel is the least-correlated channel (paper: 21).
	WorstChannel rfenv.Channel
}

// Fig7LabelCorrelation computes per-channel label correlation.
func (s *Suite) Fig7LabelCorrelation() (*Fig7Result, error) {
	camp, err := s.Campaign()
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{}
	var vals []float64
	worst := 2.0
	for _, ch := range camp.Channels {
		rtl, err := s.Labels(ch, sensor.KindRTLSDR, 0)
		if err != nil {
			return nil, err
		}
		usrp, err := s.Labels(ch, sensor.KindUSRPB200, 0)
		if err != nil {
			return nil, err
		}
		a := make([]float64, len(rtl))
		bb := make([]float64, len(usrp))
		for i := range rtl {
			if rtl[i] == dataset.LabelSafe {
				a[i] = 1
			}
			if usrp[i] == dataset.LabelSafe {
				bb[i] = 1
			}
		}
		r := dsp.Pearson(a, bb)
		// Constant label sequences (fully occupied channels) have
		// undefined correlation; the sensors agree perfectly there.
		if r != r { // NaN
			if agreementFraction(rtl, usrp) > 0.99 {
				r = 1
			} else {
				r = 0
			}
		}
		res.Rows = append(res.Rows, Fig7Row{Channel: ch, Pearson: r})
		vals = append(vals, r)
		if r < worst {
			worst = r
			res.WorstChannel = ch
		}
	}
	res.Median = dsp.Median(vals)
	return res, nil
}

func agreementFraction(a, b []dataset.Label) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return 0
	}
	n := 0
	for i := range a {
		if a[i] == b[i] {
			n++
		}
	}
	return float64(n) / float64(len(a))
}

// Render implements the experiment report.
func (r *Fig7Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 7: Pearson correlation between RTL-SDR and USRP labels\n")
	b.WriteString("(paper: median > 0.9, channel 21 anomalous)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-6v r=%.3f\n", row.Channel, row.Pearson)
	}
	fmt.Fprintf(&b, "  median=%.3f worst=%v\n", r.Median, r.WorstChannel)
	return b.String()
}
