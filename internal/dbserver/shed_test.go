package dbserver

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/wsdetect/waldo/internal/core"
	"github.com/wsdetect/waldo/internal/telemetry"
)

// shedServer boots a server with MaxInFlight 1 so a single parked
// request saturates it deterministically.
func shedServer(t *testing.T) (*Server, *httptest.Server, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.New()
	s := New(Config{
		Constructor: core.ConstructorConfig{Classifier: core.KindNB},
		MaxInFlight: 1,
		RetryAfter:  2 * time.Second,
		Metrics:     reg,
	})
	if err := s.Bootstrap(synthReadings(600, 47, 1)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, reg
}

// park opens an upload whose body never arrives, pinning one slot of the
// in-flight budget until the returned release func runs.
func park(t *testing.T, ts *httptest.Server) (release func()) {
	t.Helper()
	pr, pw := io.Pipe()
	done := make(chan struct{})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/readings", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	go func() {
		defer close(done)
		resp, err := ts.Client().Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	return func() {
		pw.Close()
		<-done
	}
}

// TestLoadSheddingDeterministic: with one slot pinned by a stalled
// upload, every further data request must be shed with 429 and the
// configured Retry-After hint, while health and metrics probes stay
// reachable for operators.
func TestLoadSheddingDeterministic(t *testing.T) {
	_, ts, reg := shedServer(t)
	release := park(t, ts)
	defer release()

	// The parked request is in the handler (reading its body), holding
	// the only slot; wait for the shed path to engage.
	var resp *http.Response
	deadline := time.Now().Add(5 * time.Second)
	for {
		var err error
		resp, err = ts.Client().Get(ts.URL + "/v1/model?channel=47&sensor=1")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			break
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("server never shed load with one slot saturated")
		}
		time.Sleep(2 * time.Millisecond)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want %q", got, "2")
	}
	if got := reg.Counter("waldo_dbserver_shed_total", "").Value(); got == 0 {
		t.Error("shed counter not incremented")
	}

	// Probes bypass the shed gate: an overloaded server must still
	// answer its operators.
	for _, path := range []string{"/v1/health", "/healthz", "/metrics"} {
		pr, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		io.Copy(io.Discard, pr.Body)
		pr.Body.Close()
		if pr.StatusCode != http.StatusOK {
			t.Errorf("%s under load = %d, want 200", path, pr.StatusCode)
		}
	}

	// Releasing the parked request frees the slot; service resumes.
	release()
	deadline = time.Now().Add(5 * time.Second)
	for {
		ok, err := ts.Client().Get(ts.URL + "/v1/model?channel=47&sensor=1")
		if err != nil {
			t.Fatal(err)
		}
		code := ok.StatusCode
		io.Copy(io.Discard, ok.Body)
		ok.Body.Close()
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("service did not resume after load cleared (last status %d)", code)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRequestTimeoutReturns503: a handler stalled past RequestTimeout is
// cut off with 503 by the per-request deadline instead of holding the
// connection open.
func TestRequestTimeoutReturns503(t *testing.T) {
	reg := telemetry.New()
	s := New(Config{
		Constructor:    core.ConstructorConfig{Classifier: core.KindNB},
		RequestTimeout: 50 * time.Millisecond,
		Metrics:        reg,
	})
	if err := s.Bootstrap(synthReadings(600, 47, 1)); err != nil {
		t.Fatal(err)
	}
	// An upload whose body stalls keeps the handler blocked in the read;
	// the timeout wrapper must answer 503 regardless. Driven in-process
	// (recorder) because a real HTTP/1.1 client would block writing the
	// stalled body instead of reading the early 503.
	pr, pw := io.Pipe()
	defer pw.Close() // unblock the leaked handler goroutine afterwards
	req := httptest.NewRequest(http.MethodPost, "/v1/readings", pr)
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	start := time.Now()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("stalled request status = %d, want 503", rec.Code)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout took %v, want ≈50ms", elapsed)
	}
	if !strings.Contains(rec.Body.String(), "timed out") {
		t.Errorf("timeout body = %q", rec.Body.String())
	}
}

// TestMaxBodyBytes: oversized uploads are rejected, not buffered.
func TestMaxBodyBytes(t *testing.T) {
	s := New(Config{
		Constructor:  core.ConstructorConfig{Classifier: core.KindNB},
		MaxBodyBytes: 1024,
	})
	if err := s.Bootstrap(synthReadings(600, 47, 1)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	big := strings.NewReader(fmt.Sprintf(`{"cispan_db":0.1,"readings":[%s]}`,
		strings.Repeat(`{"seq":1},`, 4096)+`{"seq":1}`))
	resp, err := ts.Client().Post(ts.URL+"/v1/readings", "application/json", big)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 400 || resp.StatusCode >= 500 {
		t.Errorf("oversized upload status = %d, want a 4xx rejection", resp.StatusCode)
	}
}
