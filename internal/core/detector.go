package core

import (
	"fmt"
	"strconv"

	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/dsp"
	"github.com/wsdetect/waldo/internal/features"
	"github.com/wsdetect/waldo/internal/geo"
	"github.com/wsdetect/waldo/internal/telemetry"
)

// DetectorConfig parameterizes the White Space Detector (§3.3).
type DetectorConfig struct {
	// AlphaDB is the sensitivity parameter α: the maximum span of the
	// 90 % confidence interval of the smoothed RSS before a decision is
	// allowed. The paper sweeps 0.5–5 dB; default 0.5.
	AlphaDB float64
	// Confidence is the CI level; default 0.90.
	Confidence float64
	// SmoothingWindow is the moving-average window; default 8.
	SmoothingWindow int
	// OutlierLoPct and OutlierHiPct bound the percentile band kept
	// before averaging; defaults 5 and 95.
	OutlierLoPct float64
	OutlierHiPct float64
	// MinReadings is the minimum stream length before convergence can be
	// declared; default 8.
	MinReadings int
	// MaxReadings caps the stream (a mobile device that never converges
	// must eventually give up); default 1024.
	MaxReadings int
	// Metrics, when set, receives detector telemetry: decision counts by
	// label/convergence, α-convergence stream lengths, and outliers
	// rejected by the percentile trim.
	Metrics *telemetry.Registry
}

func (c *DetectorConfig) defaults() error {
	if c.AlphaDB == 0 {
		c.AlphaDB = 0.5
	}
	if c.AlphaDB < 0 {
		return fmt.Errorf("core: negative alpha %v", c.AlphaDB)
	}
	if c.Confidence == 0 {
		c.Confidence = 0.90
	}
	if c.Confidence <= 0 || c.Confidence >= 1 {
		return fmt.Errorf("core: confidence %v outside (0,1)", c.Confidence)
	}
	if c.SmoothingWindow == 0 {
		c.SmoothingWindow = 8
	}
	if c.SmoothingWindow < 1 {
		return fmt.Errorf("core: smoothing window %d", c.SmoothingWindow)
	}
	if c.OutlierLoPct == 0 {
		c.OutlierLoPct = 5
	}
	if c.OutlierHiPct == 0 {
		c.OutlierHiPct = 95
	}
	if c.OutlierLoPct < 0 || c.OutlierHiPct > 100 || c.OutlierLoPct >= c.OutlierHiPct {
		return fmt.Errorf("core: bad outlier band [%v, %v]", c.OutlierLoPct, c.OutlierHiPct)
	}
	if c.MinReadings == 0 {
		c.MinReadings = 8
	}
	if c.MaxReadings == 0 {
		c.MaxReadings = 1024
	}
	if c.MinReadings < 2 || c.MaxReadings < c.MinReadings {
		return fmt.Errorf("core: bad reading bounds [%d, %d]", c.MinReadings, c.MaxReadings)
	}
	return nil
}

// Decision is the outcome of a detection attempt.
type Decision struct {
	// Label is the predicted availability.
	Label dataset.Label
	// Converged reports whether the α criterion was met (false means
	// the stream hit MaxReadings and the decision fell back to the
	// conservative NOR rule of §5).
	Converged bool
	// ReadingsUsed is the stream length consumed.
	ReadingsUsed int
	// CISpanDB is the final confidence-interval span of smoothed RSS.
	CISpanDB float64
	// Signal is the aggregated (smoothed, outlier-trimmed) feature
	// vector the classification used.
	Signal features.Signal
}

// Detector consumes a stream of noisy captures at one location and emits a
// classification once the stream is statistically stable. It is not safe
// for concurrent use.
type Detector struct {
	model *Model
	cfg   DetectorConfig

	rss []float64
	cft []float64
	aft []float64

	// Telemetry handles; nil-safe no-ops when cfg.Metrics is unset.
	readingsUsed  *telemetry.Histogram
	outliersTotal *telemetry.Counter
}

// NewDetector builds a detector over a trained model.
func NewDetector(model *Model, cfg DetectorConfig) (*Detector, error) {
	if model == nil {
		return nil, fmt.Errorf("core: nil model")
	}
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	return &Detector{
		model: model,
		cfg:   cfg,
		readingsUsed: cfg.Metrics.Histogram("waldo_detector_readings",
			"Stream length consumed per decision (α-convergence iterations).",
			telemetry.DefCountBuckets),
		outliersTotal: cfg.Metrics.Counter("waldo_detector_outliers_rejected_total",
			"Raw readings discarded by the percentile outlier trim."),
	}, nil
}

// Reset clears the stream (e.g. after the device moves).
func (d *Detector) Reset() {
	d.rss = d.rss[:0]
	d.cft = d.cft[:0]
	d.aft = d.aft[:0]
}

// Len returns the current stream length.
func (d *Detector) Len() int { return len(d.rss) }

// Offer appends one capture's features and reports whether the stream has
// converged (90 % CI span of smoothed RSS below α).
func (d *Detector) Offer(sig features.Signal) bool {
	if len(d.rss) < d.cfg.MaxReadings {
		d.rss = append(d.rss, sig.RSSdBm)
		d.cft = append(d.cft, sig.CFTdB)
		d.aft = append(d.aft, sig.AFTdB)
	}
	return d.converged()
}

// ciSpan returns the current CI span of the outlier-trimmed raw RSS. The
// CI is deliberately computed on raw (not smoothed) readings: a moving
// average autocorrelates the series and makes its sample variance
// underestimate the true uncertainty, which would declare convergence on
// streams that are still drifting (the mobile fading case of §5).
func (d *Detector) ciSpan() float64 {
	trimmed := dsp.TrimOutliers(d.rss, d.cfg.OutlierLoPct, d.cfg.OutlierHiPct)
	return dsp.MeanCI(trimmed, d.cfg.Confidence).Span()
}

func (d *Detector) converged() bool {
	if len(d.rss) < d.cfg.MinReadings {
		return false
	}
	return d.ciSpan() <= d.cfg.AlphaDB
}

// aggregate produces the robust feature estimate used for classification.
func (d *Detector) aggregate() features.Signal {
	robust := func(xs []float64) float64 {
		smoothed := dsp.MovingAverage(xs, d.cfg.SmoothingWindow)
		trimmed := dsp.TrimOutliers(smoothed, d.cfg.OutlierLoPct, d.cfg.OutlierHiPct)
		return dsp.Mean(trimmed)
	}
	return features.Signal{
		RSSdBm: robust(d.rss),
		CFTdB:  robust(d.cft),
		AFTdB:  robust(d.aft),
	}
}

// Decide classifies with the aggregated features at loc. If the stream has
// not converged, the paper's §5 fallback applies: classify at the 5th and
// 95th RSS percentiles and NOR the decisions, favouring NotSafe.
func (d *Detector) Decide(loc geo.Point) (Decision, error) {
	if len(d.rss) == 0 {
		return Decision{}, fmt.Errorf("core: no readings offered")
	}
	dec := Decision{
		Converged:    d.converged(),
		ReadingsUsed: len(d.rss),
		CISpanDB:     d.ciSpan(),
		Signal:       d.aggregate(),
	}
	if dec.Converged {
		label, err := d.model.Classify(loc, dec.Signal)
		if err != nil {
			return Decision{}, err
		}
		dec.Label = label
		d.record(dec)
		return dec, nil
	}

	// Non-converged fallback: evaluate the extremes; only if BOTH say
	// Safe is the channel declared Safe.
	lo := dec.Signal
	hi := dec.Signal
	lo.RSSdBm = dsp.Percentile(d.rss, d.cfg.OutlierLoPct)
	hi.RSSdBm = dsp.Percentile(d.rss, d.cfg.OutlierHiPct)
	lLabel, err := d.model.Classify(loc, lo)
	if err != nil {
		return Decision{}, err
	}
	hLabel, err := d.model.Classify(loc, hi)
	if err != nil {
		return Decision{}, err
	}
	if lLabel == dataset.LabelSafe && hLabel == dataset.LabelSafe {
		dec.Label = dataset.LabelSafe
	} else {
		dec.Label = dataset.LabelNotSafe
	}
	d.record(dec)
	return dec, nil
}

// record emits per-decision telemetry. The decision counter is looked up
// here (not held) because its labels depend on the outcome; decisions are
// per-channel-scan events, far off the per-capture hot path.
func (d *Detector) record(dec Decision) {
	if d.cfg.Metrics == nil {
		return
	}
	d.readingsUsed.Observe(float64(dec.ReadingsUsed))
	trimmed := dsp.TrimOutliers(d.rss, d.cfg.OutlierLoPct, d.cfg.OutlierHiPct)
	if n := len(d.rss) - len(trimmed); n > 0 {
		d.outliersTotal.Add(uint64(n))
	}
	d.cfg.Metrics.Counter("waldo_detector_decisions_total",
		"Detection decisions by label and convergence outcome.",
		"label", dec.Label.String(),
		"converged", strconv.FormatBool(dec.Converged)).Inc()
}
