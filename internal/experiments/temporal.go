package experiments

import (
	"fmt"
	"strings"

	"github.com/wsdetect/waldo/internal/core"
	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/features"
	"github.com/wsdetect/waldo/internal/ml/validate"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
	"github.com/wsdetect/waldo/internal/wardrive"
)

// TemporalRow is one channel's stale-vs-updated comparison.
type TemporalRow struct {
	Channel rfenv.Channel
	// Stale is a model trained only on the original campaign, evaluated
	// months later.
	Stale validate.Metrics
	// Updated is the same model family retrained after the Global Model
	// Updater absorbed the new pass.
	Updated validate.Metrics
}

// TemporalResult quantifies §3.4's second challenge — "coping with changes
// in the environment that affect signal propagation" — which the paper
// motivates (two collection sets months apart) but never measures: a
// second campaign runs in a temporally drifted environment (shadowing
// rho-correlated with the original), and a stale model is compared with
// one refreshed through the updater.
type TemporalResult struct {
	// Rho is the across-time shadowing correlation.
	Rho  float64
	Rows []TemporalRow
	// StaleTotal and UpdatedTotal aggregate over channels.
	StaleTotal   validate.Metrics
	UpdatedTotal validate.Metrics
}

// AblationTemporalDrift runs the two-pass protocol on the evaluation
// channels with the RTL-SDR.
func (s *Suite) AblationTemporalDrift() (*TemporalResult, error) {
	const rho = 0.9
	env, err := s.Env()
	if err != nil {
		return nil, err
	}
	camp1, err := s.Campaign()
	if err != nil {
		return nil, err
	}
	later, err := env.TemporalVariant(uint64(s.cfg.Seed)+77, rho)
	if err != nil {
		return nil, err
	}
	// The second pass drives the same roads months later (same route,
	// fresh measurement noise), as the paper's second collection set did.
	camp2, err := wardrive.Run(wardrive.CampaignConfig{
		Env:     later,
		Route:   camp1.Route,
		Sensors: []sensor.Spec{sensor.RTLSDR()},
		Seed:    s.cfg.Seed + 900,
	})
	if err != nil {
		return nil, fmt.Errorf("temporal: second pass: %w", err)
	}

	res := &TemporalResult{Rho: rho}
	cfg := core.ConstructorConfig{
		ClusterK:   3,
		Classifier: core.KindSVM,
		Features:   features.SetLocationRSSCFT,
		Seed:       s.cfg.Seed + 901,
	}
	for _, ch := range rfenv.EvalChannels {
		r1 := camp1.Readings(ch, sensor.KindRTLSDR)
		l1, err := s.Labels(ch, sensor.KindRTLSDR, 0)
		if err != nil {
			return nil, err
		}
		r2 := camp2.Readings(ch, sensor.KindRTLSDR)
		l2, err := dataset.LabelReadings(r2, dataset.LabelConfig{})
		if err != nil {
			return nil, err
		}

		// Held-out tenth of the new pass is the test set for both models.
		folds, err := validate.KFold(len(r2), 10, s.cfg.Seed+902+int64(ch))
		if err != nil {
			return nil, err
		}
		test := folds[0]
		inTest := make(map[int]bool, len(test))
		for _, i := range test {
			inTest[i] = true
		}

		stale, err := core.BuildModel(r1, l1, cfg)
		if err != nil {
			return nil, fmt.Errorf("temporal: stale %v: %w", ch, err)
		}
		var pooledR []dataset.Reading
		var pooledL []dataset.Label
		pooledR = append(pooledR, r1...)
		pooledL = append(pooledL, l1...)
		for i := range r2 {
			if !inTest[i] {
				pooledR = append(pooledR, r2[i])
				pooledL = append(pooledL, l2[i])
			}
		}
		updated, err := core.BuildModel(pooledR, pooledL, cfg)
		if err != nil {
			return nil, fmt.Errorf("temporal: updated %v: %w", ch, err)
		}

		row := TemporalRow{Channel: ch}
		for _, i := range test {
			sp, err := stale.ClassifyReading(r2[i])
			if err != nil {
				return nil, err
			}
			up, err := updated.ClassifyReading(r2[i])
			if err != nil {
				return nil, err
			}
			row.Stale.Count(labelClass(sp), labelClass(l2[i]))
			row.Updated.Count(labelClass(up), labelClass(l2[i]))
		}
		res.StaleTotal.Add(row.Stale)
		res.UpdatedTotal.Add(row.Updated)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render implements the experiment report.
func (r *TemporalResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§3.4 extension: temporal drift (shadowing correlation ρ=%.2f across passes)\n", r.Rho)
	fmt.Fprintf(&b, "%-8s %22s %22s\n", "channel", "stale (err/FP/FN)", "updated (err/FP/FN)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8v %7.4f %6.4f %7.4f %7.4f %6.4f %7.4f\n", row.Channel,
			row.Stale.ErrorRate(), row.Stale.FPRate(), row.Stale.FNRate(),
			row.Updated.ErrorRate(), row.Updated.FPRate(), row.Updated.FNRate())
	}
	fmt.Fprintf(&b, "TOTAL    %7.4f %6.4f %7.4f %7.4f %6.4f %7.4f\n",
		r.StaleTotal.ErrorRate(), r.StaleTotal.FPRate(), r.StaleTotal.FNRate(),
		r.UpdatedTotal.ErrorRate(), r.UpdatedTotal.FPRate(), r.UpdatedTotal.FNRate())
	b.WriteString("(the Global Model Updater's reason to exist: retraining on uploaded readings\n")
	b.WriteString(" recovers the accuracy the drifted environment took away)\n")
	return b.String()
}
