package waldo

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestOperationsDocCoversEveryMetric pins OPERATIONS.md to the code: every
// waldo_* metric name registered anywhere in non-test source must appear
// in the runbook's metrics reference, so an operator grepping an alert
// always finds guidance. Adding a metric means documenting it (with an
// alert threshold) in the same change.
func TestOperationsDocCoversEveryMetric(t *testing.T) {
	doc, err := os.ReadFile("OPERATIONS.md")
	if err != nil {
		t.Fatalf("read OPERATIONS.md: %v", err)
	}

	metricRE := regexp.MustCompile(`"(waldo_[a-z0-9_]+)"`)
	seen := map[string][]string{}
	err = filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// The source tree only; skip VCS internals.
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range metricRE.FindAllSubmatch(src, -1) {
			name := string(m[1])
			seen[name] = append(seen[name], path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) < 20 {
		t.Fatalf("found only %d waldo_* metric names in source; the scan is broken", len(seen))
	}

	for name, files := range seen {
		if !strings.Contains(string(doc), name) {
			t.Errorf("metric %s (registered in %s) is not documented in OPERATIONS.md", name, files[0])
		}
	}
}

// TestClusterMetricsDocumentedWithAlerts holds the cluster tier to a
// stricter bar than mere mention: every waldo_cluster_* series must have
// its own runbook table row with a non-empty Alert column, because the
// cluster metrics are the only way an operator can tell a routing
// misconfiguration from a dead shard.
func TestClusterMetricsDocumentedWithAlerts(t *testing.T) {
	doc, err := os.ReadFile("OPERATIONS.md")
	if err != nil {
		t.Fatalf("read OPERATIONS.md: %v", err)
	}

	// Table rows documenting a metric: | `name` | meaning | alert |
	rowRE := regexp.MustCompile("(?m)^\\|\\s*`(waldo_cluster_[a-z0-9_]+)`\\s*\\|([^|]*)\\|([^|]*)\\|")
	documented := map[string]bool{}
	for _, m := range rowRE.FindAllSubmatch(doc, -1) {
		name := string(m[1])
		if strings.TrimSpace(string(m[2])) == "" {
			t.Errorf("OPERATIONS.md row for %s has an empty Meaning column", name)
		}
		if strings.TrimSpace(string(m[3])) == "" {
			t.Errorf("OPERATIONS.md row for %s has an empty Alert column", name)
		}
		documented[name] = true
	}

	metricRE := regexp.MustCompile(`"(waldo_cluster_[a-z0-9_]+)"`)
	err = filepath.WalkDir("internal/cluster", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range metricRE.FindAllSubmatch(src, -1) {
			name := string(m[1])
			if !documented[name] {
				t.Errorf("cluster metric %s (in %s) has no alert-bearing table row in OPERATIONS.md §2.5", name, path)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(documented) < 9 {
		t.Errorf("OPERATIONS.md documents only %d waldo_cluster_* rows; the cluster tier exports 9", len(documented))
	}
}

// TestGeoindexMetricsDocumentedWithAlerts holds the availability-grid
// series to the alert-bearing-row bar. The grid fails quiet: a rebuild
// hook that comes unwired produces no errors anywhere — queries just
// serve an ever-staler snapshot — so the waldo_geoindex_* rows in
// OPERATIONS.md §2.8 are the only tripwire, and each must say when to
// alert. The series are registered in two packages (the index itself
// and the dbserver query handlers); scan both.
func TestGeoindexMetricsDocumentedWithAlerts(t *testing.T) {
	doc, err := os.ReadFile("OPERATIONS.md")
	if err != nil {
		t.Fatalf("read OPERATIONS.md: %v", err)
	}

	rowRE := regexp.MustCompile("(?m)^\\|\\s*`(waldo_geoindex_[a-z0-9_]+)`\\s*\\|([^|]*)\\|([^|]*)\\|")
	documented := map[string]bool{}
	for _, m := range rowRE.FindAllSubmatch(doc, -1) {
		name := string(m[1])
		if strings.TrimSpace(string(m[2])) == "" {
			t.Errorf("OPERATIONS.md row for %s has an empty Meaning column", name)
		}
		if strings.TrimSpace(string(m[3])) == "" {
			t.Errorf("OPERATIONS.md row for %s has an empty Alert column", name)
		}
		documented[name] = true
	}

	metricRE := regexp.MustCompile(`"(waldo_geoindex_[a-z0-9_]+)"`)
	for _, dir := range []string{"internal/geoindex", "internal/dbserver"} {
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			src, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			for _, m := range metricRE.FindAllSubmatch(src, -1) {
				name := string(m[1])
				if !documented[name] {
					t.Errorf("geoindex metric %s (in %s) has no alert-bearing table row in OPERATIONS.md §2.8", name, path)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(documented) < 8 {
		t.Errorf("OPERATIONS.md documents only %d waldo_geoindex_* rows; the grid exports 8", len(documented))
	}
}

// TestObservabilityMetricsDocumentedWithAlerts holds the observability
// pipeline's own series (flight recorder, structured log) to the same
// bar as the cluster tier: an alert-bearing table row each, not a mere
// mention — these metrics are what tells an operator their telemetry is
// lying to them, so "documented somewhere" isn't enough.
func TestObservabilityMetricsDocumentedWithAlerts(t *testing.T) {
	doc, err := os.ReadFile("OPERATIONS.md")
	if err != nil {
		t.Fatalf("read OPERATIONS.md: %v", err)
	}

	rowRE := regexp.MustCompile("(?m)^\\|\\s*`(waldo_(?:trace|log)_[a-z0-9_]+)`\\s*\\|([^|]*)\\|([^|]*)\\|")
	documented := map[string]bool{}
	for _, m := range rowRE.FindAllSubmatch(doc, -1) {
		name := string(m[1])
		if strings.TrimSpace(string(m[2])) == "" {
			t.Errorf("OPERATIONS.md row for %s has an empty Meaning column", name)
		}
		if strings.TrimSpace(string(m[3])) == "" {
			t.Errorf("OPERATIONS.md row for %s has an empty Alert column", name)
		}
		documented[name] = true
	}

	metricRE := regexp.MustCompile(`"(waldo_(?:trace|log)_[a-z0-9_]+)"`)
	for _, dir := range []string{"internal/telemetry", "internal/wlog"} {
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			src, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			for _, m := range metricRE.FindAllSubmatch(src, -1) {
				name := string(m[1])
				if !documented[name] {
					t.Errorf("observability metric %s (in %s) has no alert-bearing table row in OPERATIONS.md §2.6", name, path)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(documented) < 4 {
		t.Errorf("OPERATIONS.md documents only %d waldo_trace_*/waldo_log_* rows; the pipeline exports 4", len(documented))
	}
}
