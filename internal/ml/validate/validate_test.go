package validate

import (
	"math"
	"math/rand"
	"testing"

	"github.com/wsdetect/waldo/internal/ml"
	"github.com/wsdetect/waldo/internal/ml/bayes"
	"github.com/wsdetect/waldo/internal/ml/svm"
)

func TestMetricsCounting(t *testing.T) {
	var m Metrics
	m.Count(ml.Positive, ml.Positive) // TP
	m.Count(ml.Positive, ml.Negative) // FP
	m.Count(ml.Negative, ml.Positive) // FN
	m.Count(ml.Negative, ml.Negative) // TN
	m.Count(ml.Negative, ml.Negative) // TN

	if m.TP != 1 || m.FP != 1 || m.FN != 1 || m.TN != 2 {
		t.Fatalf("counts: %+v", m)
	}
	if m.Total() != 5 {
		t.Errorf("total = %d", m.Total())
	}
	// FP rate = FP / occupied = 1/3; FN rate = FN / vacant = 1/2.
	if math.Abs(m.FPRate()-1.0/3) > 1e-12 {
		t.Errorf("FP rate = %v", m.FPRate())
	}
	if math.Abs(m.FNRate()-0.5) > 1e-12 {
		t.Errorf("FN rate = %v", m.FNRate())
	}
	if math.Abs(m.ErrorRate()-0.4) > 1e-12 {
		t.Errorf("error rate = %v", m.ErrorRate())
	}
	if m.String() == "" {
		t.Error("empty String()")
	}
}

func TestMetricsEmptyDenominators(t *testing.T) {
	var m Metrics
	if m.FPRate() != 0 || m.FNRate() != 0 || m.ErrorRate() != 0 {
		t.Error("empty metrics should report zero rates")
	}
	var add Metrics
	add.Count(ml.Positive, ml.Positive)
	m.Add(add)
	if m.TP != 1 {
		t.Error("Add failed")
	}
}

func TestKFoldPartition(t *testing.T) {
	folds, err := KFold(103, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 10 {
		t.Fatalf("folds = %d", len(folds))
	}
	seen := make(map[int]int)
	for _, f := range folds {
		if len(f) < 10 || len(f) > 11 {
			t.Errorf("fold size %d, want 10-11", len(f))
		}
		for _, i := range f {
			seen[i]++
		}
	}
	if len(seen) != 103 {
		t.Fatalf("covered %d of 103 indices", len(seen))
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d appears %d times", i, c)
		}
	}
}

func TestKFoldValidation(t *testing.T) {
	if _, err := KFold(5, 1, 0); err == nil {
		t.Error("k=1 must fail")
	}
	if _, err := KFold(3, 10, 0); err == nil {
		t.Error("n<k must fail")
	}
}

func makeBlobs(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	var x [][]float64
	var y []int
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			x = append(x, []float64{1000 + 3*rng.NormFloat64(), rng.NormFloat64() * 50})
			y = append(y, ml.Positive)
		} else {
			x = append(x, []float64{990 + 3*rng.NormFloat64(), rng.NormFloat64() * 50})
			y = append(y, ml.Negative)
		}
	}
	return x, y
}

func TestCrossValidateNB(t *testing.T) {
	x, y := makeBlobs(400, 1)
	m, err := CrossValidate(func() ml.Classifier { return &bayes.GaussianNB{} }, x, y, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Total() != 400 {
		t.Fatalf("CV covered %d of 400", m.Total())
	}
	if m.ErrorRate() > 0.1 {
		t.Errorf("CV error = %v on separated blobs", m.ErrorRate())
	}
}

func TestCrossValidateStandardizes(t *testing.T) {
	// The blob features deliberately live on a huge offset/scale; the
	// RFF-SVM only works if CrossValidate standardizes internally.
	x, y := makeBlobs(400, 3)
	m, err := CrossValidate(func() ml.Classifier { return &svm.RFFSVM{Seed: 4} }, x, y, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.ErrorRate() > 0.12 {
		t.Errorf("CV error = %v — standardization missing?", m.ErrorRate())
	}
}

func TestTrainAndTestConstantClass(t *testing.T) {
	// All-occupied training cluster: the evaluator must degrade to a
	// constant predictor instead of failing (the paper's "binary"
	// clusters).
	trainX := [][]float64{{1}, {2}, {3}}
	trainY := []int{ml.Negative, ml.Negative, ml.Negative}
	testX := [][]float64{{1.5}, {2.5}}
	testY := []int{ml.Negative, ml.Positive}
	m, err := TrainAndTest(&bayes.GaussianNB{}, trainX, trainY, testX, testY)
	if err != nil {
		t.Fatal(err)
	}
	if m.TN != 1 || m.FN != 1 || m.TP != 0 || m.FP != 0 {
		t.Errorf("constant-class metrics: %+v", m)
	}
}

func TestTrainAndTestValidation(t *testing.T) {
	if _, err := TrainAndTest(&bayes.GaussianNB{}, nil, nil, nil, nil); err == nil {
		t.Error("empty training set must fail")
	}
	if _, err := TrainAndTest(&bayes.GaussianNB{},
		[][]float64{{1}}, []int{1}, [][]float64{{1}}, nil); err == nil {
		t.Error("test length mismatch must fail")
	}
}

func TestCrossValidateDeterminism(t *testing.T) {
	x, y := makeBlobs(200, 6)
	run := func() Metrics {
		m, err := CrossValidate(func() ml.Classifier { return &svm.Pegasos{Seed: 7} }, x, y, 5, 8)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	if run() != run() {
		t.Error("same seeds must give identical CV metrics")
	}
}
