package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/dbserver"
	"github.com/wsdetect/waldo/internal/geo"
	"github.com/wsdetect/waldo/internal/rfenv"
)

// synthAt clusters n readings within ~400 m of loc, so the whole batch
// shares one routing cell at any reasonable cell quantum.
func synthAt(n int, ch rfenv.Channel, seed int64, loc geo.Point) []dataset.Reading {
	rs := synthReadings(n, ch, seed)
	for i := range rs {
		rs[i].Loc = loc.Offset(float64(i*37%360), float64(i%40)*10)
	}
	return rs
}

// testCluster is a 3-shard single-node-per-shard topology behind one
// gateway, each piece on its own httptest server.
type testCluster struct {
	gw      *Gateway
	gwTS    *httptest.Server
	nodes   map[string]*Node
	nodeTS  map[string]*httptest.Server
	cellDeg float64
}

func newTestCluster(t *testing.T, shardIDs []string) *testCluster {
	t.Helper()
	tc := &testCluster{
		nodes:   map[string]*Node{},
		nodeTS:  map[string]*httptest.Server{},
		cellDeg: DefaultCellDeg,
	}
	var specs []ShardSpec
	for _, id := range shardIDs {
		n, ts := newTestNode(t, id, nil)
		tc.nodes[id] = n
		tc.nodeTS[id] = ts
		specs = append(specs, ShardSpec{ID: id, URLs: []string{ts.URL}})
	}
	gw, err := NewGateway(GatewayConfig{Shards: specs, Ring: RingConfig{Seed: 11}})
	if err != nil {
		t.Fatal(err)
	}
	tc.gw = gw
	tc.gwTS = httptest.NewServer(gw.Handler())
	t.Cleanup(func() {
		tc.gwTS.Close()
		gw.Close()
	})
	return tc
}

// cellCenter snaps a location to the center of its routing cell, so a
// batch synthesized within ~400 m of it can never straddle a cell
// boundary.
func cellCenter(p geo.Point, cellDeg float64) geo.Point {
	c := CellOf(p, cellDeg)
	return geo.Point{
		Lat: (float64(c.X) + 0.5) * cellDeg,
		Lon: (float64(c.Y) + 0.5) * cellDeg,
	}
}

// locations returns one probe location per shard: points 6 km apart
// east of the metro center, snapped to their cell centers, mapped to
// whichever shard the ring says owns them, until every shard is covered.
func (tc *testCluster) locations(t *testing.T, ch rfenv.Channel) map[string]geo.Point {
	t.Helper()
	out := map[string]geo.Point{}
	for i := 0; i < 200 && len(out) < len(tc.nodes); i++ {
		loc := cellCenter(rfenv.MetroCenter.Offset(90, float64(i)*6000), tc.cellDeg)
		owner := tc.gw.Ring().Owner(RouteKey{Channel: ch, Cell: CellOf(loc, tc.cellDeg)})
		if _, seen := out[owner]; !seen {
			out[owner] = loc
		}
	}
	if len(out) < len(tc.nodes) {
		t.Fatalf("probe walk covered only %d of %d shards", len(out), len(tc.nodes))
	}
	return out
}

// TestGatewayRoutesByCell uploads one batch per shard-owned cell through
// the gateway and checks each landed on exactly the ring-designated
// shard.
func TestGatewayRoutesByCell(t *testing.T) {
	tc := newTestCluster(t, []string{"s0", "s1", "s2"})
	locs := tc.locations(t, 47)
	for owner, loc := range locs {
		resp := mustPost(t, tc.gwTS.URL+"/v1/readings", uploadBody(t, synthAt(50, 47, 1, loc)))
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("upload for %s = %s", owner, resp.Status)
		}
	}
	for id, ts := range tc.nodeTS {
		body := mustGetBody(t, ts.URL+"/v1/export?channel=47&sensor=1", http.StatusOK)
		rows := len(body)
		if rows == 0 {
			t.Errorf("shard %s: empty export", id)
		}
		var stats []dbserver.StatsJSON
		if err := json.Unmarshal(mustGetBody(t, ts.URL+"/v1/stats", http.StatusOK), &stats); err != nil {
			t.Fatal(err)
		}
		if len(stats) != 1 || stats[0].Readings != 50 {
			t.Errorf("shard %s holds %+v, want exactly its own 50-reading batch", id, stats)
		}
	}

	// A model GET with the same location hint must route to the same
	// shard (checked via the X-Waldo-Shard response header).
	for owner, loc := range locs {
		url := tc.gwTS.URL + "/v1/export?channel=47&sensor=1&lat=" +
			strconv.FormatFloat(loc.Lat, 'f', -1, 64) + "&lon=" + strconv.FormatFloat(loc.Lon, 'f', -1, 64)
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := resp.Header.Get("X-Waldo-Shard"); got != owner {
			t.Errorf("hinted export routed to %q, want %q", got, owner)
		}
		if v := resp.Header.Get(ClusterVersionHeader); v != tc.gw.ConfigVersion() {
			t.Errorf("cluster version header %q, want %q", v, tc.gw.ConfigVersion())
		}
	}
}

// TestGatewaySplitsMixedCellUpload: a single upload whose readings span
// routing cells owned by different shards is split at the gateway, each
// piece landing on its ring-designated shard — not stored wholesale
// wherever the first reading pointed.
func TestGatewaySplitsMixedCellUpload(t *testing.T) {
	tc := newTestCluster(t, []string{"s0", "s1", "s2"})
	locs := tc.locations(t, 47)
	want := map[string]int{}
	var mixed []dataset.Reading
	share := 20
	for owner, loc := range locs {
		mixed = append(mixed, synthAt(share, 47, 7, loc)...)
		want[owner] = share
		share += 10 // unequal shares so misrouting shows up in counts
	}
	resp := mustPost(t, tc.gwTS.URL+"/v1/readings", uploadBody(t, mixed))
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("mixed-cell upload = %s", resp.Status)
	}
	for id, ts := range tc.nodeTS {
		var stats []dbserver.StatsJSON
		if err := json.Unmarshal(mustGetBody(t, ts.URL+"/v1/stats", http.StatusOK), &stats); err != nil {
			t.Fatal(err)
		}
		got := 0
		if len(stats) == 1 {
			got = stats[0].Readings
		}
		if got != want[id] {
			t.Errorf("shard %s holds %d readings, want %d", id, got, want[id])
		}
	}
	if v := tc.gw.uploadSplits.Value(); v < 1 {
		t.Errorf("upload split counter = %v, want ≥ 1", v)
	}

	// The split pieces must be visible to location-hinted reads — the
	// whole point of routing them correctly.
	for owner, loc := range locs {
		url := tc.gwTS.URL + "/v1/export?channel=47&sensor=1&lat=" +
			strconv.FormatFloat(loc.Lat, 'f', -1, 64) + "&lon=" + strconv.FormatFloat(loc.Lon, 'f', -1, 64)
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("hinted export for %s = %s", owner, resp.Status)
		}
		if got := resp.Header.Get("X-Waldo-Shard"); got != owner {
			t.Errorf("hinted export routed to %q, want %q", got, owner)
		}
	}
}

// TestGatewayStatsMerge checks the cross-shard read path: per-shard
// reading counts sum, and the reported model version is the freshest.
func TestGatewayStatsMerge(t *testing.T) {
	tc := newTestCluster(t, []string{"s0", "s1", "s2"})
	locs := tc.locations(t, 47)
	for _, loc := range locs {
		resp := mustPost(t, tc.gwTS.URL+"/v1/readings", uploadBody(t, synthAt(300, 47, 2, loc)))
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("upload = %s", resp.Status)
		}
	}
	// Hintless retrain broadcasts; every shard has channel 47 data.
	resp := mustPost(t, tc.gwTS.URL+"/v1/retrain?channel=47&sensor=1", nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("broadcast retrain = %s", resp.Status)
	}
	var legs []FanoutResult
	if err := json.NewDecoder(resp.Body).Decode(&legs); err != nil {
		t.Fatal(err)
	}
	if len(legs) != 3 {
		t.Fatalf("retrain fan-out touched %d shards, want 3", len(legs))
	}
	for _, leg := range legs {
		if leg.Status != http.StatusOK {
			t.Errorf("shard %s retrain = %d", leg.Shard, leg.Status)
		}
	}

	var merged []dbserver.StatsJSON
	if err := json.Unmarshal(mustGetBody(t, tc.gwTS.URL+"/v1/stats", http.StatusOK), &merged); err != nil {
		t.Fatal(err)
	}
	if len(merged) != 1 {
		t.Fatalf("merged stats = %+v, want one channel/sensor row", merged)
	}
	if merged[0].Readings != 900 {
		t.Errorf("merged readings = %d, want 900 summed across shards", merged[0].Readings)
	}
	if merged[0].ModelVersion != 1 {
		t.Errorf("merged model version = %d, want 1", merged[0].ModelVersion)
	}
}

// TestGatewayFailover kills a shard's primary endpoint and checks the
// same client request succeeds against the replica endpoint, that
// failover is sticky, and that the failover counter fired.
func TestGatewayFailover(t *testing.T) {
	// One shard, two endpoints: a dead primary and a live replica.
	replica, replicaTS := newTestNode(t, "s0r", nil)
	if err := replica.DB.Bootstrap(synthReadings(600, 47, 1)); err != nil {
		t.Fatal(err)
	}
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused from here on

	gw, err := NewGateway(GatewayConfig{
		Shards: []ShardSpec{{ID: "s0", URLs: []string{dead.URL, replicaTS.URL}}},
		Ring:   RingConfig{Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	gwTS := httptest.NewServer(gw.Handler())
	defer gwTS.Close()

	body := mustGetBody(t, gwTS.URL+"/v1/model?channel=47&sensor=1", http.StatusOK)
	if len(body) == 0 {
		t.Fatal("empty model after failover")
	}
	direct := mustGetBody(t, replicaTS.URL+"/v1/model?channel=47&sensor=1", http.StatusOK)
	if string(body) != string(direct) {
		t.Error("gateway-served model differs from replica's")
	}
	// Sticky: the next request goes straight to the replica endpoint.
	if got := gw.shards["s0"].currentURL(); got != replicaTS.URL {
		t.Errorf("active endpoint = %q, want replica %q", got, replicaTS.URL)
	}
	if v := gw.failovers.Value(); v < 1 {
		t.Errorf("failover counter = %v, want ≥ 1", v)
	}
}

// TestGatewayAllEndpointsDown: when every endpoint of the owning shard
// refuses connections the gateway answers 502, not a hang or a crash.
func TestGatewayAllEndpointsDown(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	gw, err := NewGateway(GatewayConfig{
		Shards: []ShardSpec{{ID: "s0", URLs: []string{dead.URL}}},
		Ring:   RingConfig{Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	gwTS := httptest.NewServer(gw.Handler())
	defer gwTS.Close()
	mustGetBody(t, gwTS.URL+"/v1/model?channel=47&sensor=1", http.StatusBadGateway)
}

// TestConfigVersionStability: the fingerprint is stable across shard
// order and changes when topology changes.
func TestConfigVersionStability(t *testing.T) {
	a := []ShardSpec{{ID: "s0", URLs: []string{"http://a"}}, {ID: "s1", URLs: []string{"http://b"}}}
	b := []ShardSpec{a[1], a[0]}
	if ConfigVersion(1, 128, 0.05, a) != ConfigVersion(1, 128, 0.05, b) {
		t.Error("fingerprint depends on shard order")
	}
	grown := append(append([]ShardSpec(nil), a...), ShardSpec{ID: "s2", URLs: []string{"http://c"}})
	if ConfigVersion(1, 128, 0.05, a) == ConfigVersion(1, 128, 0.05, grown) {
		t.Error("fingerprint misses a membership change")
	}
	if ConfigVersion(1, 128, 0.05, a) == ConfigVersion(2, 128, 0.05, a) {
		t.Error("fingerprint misses a seed change")
	}
}
