#!/usr/bin/env bash
# End-to-end trace smoke: boots the same real-process 3-shard cluster
# as cluster_smoke.sh, issues ONE traced upload through the gateway,
# and asserts the distributed trace actually crossed the tiers — the
# response's X-Waldo-Trace ID must name a trace retained in the
# gateway's flight recorder (route root + fan-out leg) AND in the
# owning shard's recorder (route root + wal/append span). This is the
# out-of-process proof that header propagation, /debug/traces, and the
# WAL span attribution survive flag parsing and real sockets, not just
# the in-process test harness.
#
# Usage: scripts/trace_smoke.sh [bin-dir]
# Binaries are taken from bin-dir (default ./bin); build them with
# `make trace-smoke` or `go build -o bin ./cmd/...`.
set -euo pipefail

BIN=${1:-bin}
GATEWAY_PORT=${GATEWAY_PORT:-9100}
SHARD_PORTS=(9101 9102 9103)

for exe in waldo-server waldo-gateway; do
    if [ ! -x "$BIN/$exe" ]; then
        echo "missing $BIN/$exe (run: go build -o $BIN ./cmd/...)" >&2
        exit 1
    fi
done

WORK=$(mktemp -d /tmp/waldo-trace.XXXXXX)
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

wait_port() {
    for _ in $(seq 1 100); do
        if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then
            exec 3>&- 3<&-
            return 0
        fi
        sleep 0.1
    done
    echo "port $1 never came up" >&2
    return 1
}

SHARDS=""
for i in "${!SHARD_PORTS[@]}"; do
    port=${SHARD_PORTS[$i]}
    id="s$i"
    "$BIN/waldo-server" -addr "127.0.0.1:$port" -shard-id "$id" \
        -data-dir "$WORK/$id" -classifier nb \
        >"$WORK/$id.log" 2>&1 &
    PIDS+=($!)
    SHARDS="${SHARDS:+$SHARDS;}$id=http://127.0.0.1:$port"
done
for port in "${SHARD_PORTS[@]}"; do
    wait_port "$port"
done

"$BIN/waldo-gateway" -addr "127.0.0.1:$GATEWAY_PORT" -shards "$SHARDS" \
    >"$WORK/gateway.log" 2>&1 &
PIDS+=($!)
wait_port "$GATEWAY_PORT"
echo "cluster up: gateway :$GATEWAY_PORT, shards ${SHARD_PORTS[*]}"

# One single-cell upload (4 readings clustered near the metro center, so
# the gateway's fast path forwards it whole to exactly one shard).
BODY='{"ci_span_db":0.4,"readings":[
 {"seq":0,"lat":33.7490,"lon":-84.3880,"channel":47,"sensor":1,"rss_dbm":-70,"cft_db":-81.3,"aft_db":-83},
 {"seq":1,"lat":33.7491,"lon":-84.3881,"channel":47,"sensor":1,"rss_dbm":-71,"cft_db":-82.3,"aft_db":-84},
 {"seq":2,"lat":33.7492,"lon":-84.3879,"channel":47,"sensor":1,"rss_dbm":-69,"cft_db":-80.3,"aft_db":-82},
 {"seq":3,"lat":33.7489,"lon":-84.3882,"channel":47,"sensor":1,"rss_dbm":-70.5,"cft_db":-81.8,"aft_db":-83.5}]}'

HDRS="$WORK/upload.headers"
curl -fsS -o /dev/null -D "$HDRS" \
    -H 'Content-Type: application/json' \
    -d "$BODY" "http://127.0.0.1:$GATEWAY_PORT/v1/readings" || {
    echo "upload failed; gateway log:" >&2
    tail -20 "$WORK/gateway.log" >&2
    exit 1
}

# Response headers carry the trace context and the shard that served it.
TRACEPARENT=$(tr -d '\r' <"$HDRS" | awk -F': ' 'tolower($1)=="x-waldo-trace"{print $2}')
SHARD=$(tr -d '\r' <"$HDRS" | awk -F': ' 'tolower($1)=="x-waldo-shard"{print $2}')
TRACE_ID=$(printf '%s' "$TRACEPARENT" | cut -d- -f2)
if ! printf '%s' "$TRACE_ID" | grep -Eq '^[0-9a-f]{32}$'; then
    echo "bad X-Waldo-Trace header: '$TRACEPARENT'" >&2
    exit 1
fi
if [ -z "$SHARD" ]; then
    echo "missing X-Waldo-Shard header" >&2
    exit 1
fi
echo "upload accepted: trace=$TRACE_ID shard=$SHARD"

# Gateway recorder: the trace must exist and contain the fan-out leg
# naming the serving shard.
GW_TRACE=$(curl -fsS "http://127.0.0.1:$GATEWAY_PORT/debug/traces?trace=$TRACE_ID&format=text")
printf '%s\n' "$GW_TRACE" | grep -q "trace $TRACE_ID" || {
    echo "gateway recorder did not retain trace $TRACE_ID" >&2
    exit 1
}
printf '%s\n' "$GW_TRACE" | grep -q "/v1/readings/leg .*shard=$SHARD" || {
    echo "gateway trace has no leg span for shard $SHARD:" >&2
    printf '%s\n' "$GW_TRACE" >&2
    exit 1
}
echo "gateway trace OK (route + leg shard=$SHARD)"

# Owning shard's recorder: same trace ID, with the WAL append span.
SHARD_IDX=${SHARD#s}
SHARD_PORT=${SHARD_PORTS[$SHARD_IDX]}
SH_TRACE=$(curl -fsS "http://127.0.0.1:$SHARD_PORT/debug/traces?trace=$TRACE_ID&format=text")
printf '%s\n' "$SH_TRACE" | grep -q "trace $TRACE_ID .*/v1/readings" || {
    echo "shard $SHARD did not retain trace $TRACE_ID" >&2
    printf '%s\n' "$SH_TRACE" >&2
    exit 1
}
printf '%s\n' "$SH_TRACE" | grep -q "wal/append" || {
    echo "shard trace has no wal/append span:" >&2
    printf '%s\n' "$SH_TRACE" >&2
    exit 1
}
echo "shard trace OK (route + wal/append on $SHARD)"

echo
echo "trace smoke OK: one trace ID crossed gateway -> $SHARD -> WAL"
