package telemetry

import (
	"testing"
)

// The instrumentation budget: counters and histograms stay on by default
// in the dbserver request path and the detector loop, so the per-op cost
// must stay well under ~100 ns (see package comment). Run with:
//
//	go test -bench . -benchmem ./internal/telemetry/
func BenchmarkCounterInc(b *testing.B) {
	r := New()
	c := r.Counter("bench_ops_total", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	r := New()
	c := r.Counter("bench_ops_total", "")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkGaugeSet(b *testing.B) {
	r := New()
	g := r.Gauge("bench_level", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := New()
	h := r.Histogram("bench_lat_seconds", "", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-4)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	r := New()
	h := r.Histogram("bench_lat_seconds", "", nil)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.Observe(float64(i%1000) * 1e-4)
			i++
		}
	})
}

// BenchmarkCounterLookup measures the anti-pattern (per-op registry
// lookup) to document why handles should be held.
func BenchmarkCounterLookup(b *testing.B) {
	r := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Counter("bench_ops_total", "", "route", "/v1/model").Inc()
	}
}

func BenchmarkNilCounterInc(b *testing.B) {
	var c *Counter
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// Span hot path. Metric-only spans ride the WAL append and upload-screen
// paths on every request, so StartSpan/End must not rebuild path strings
// or histogram lookups per call — that's what the spanNode interning and
// the span pool buy.
func BenchmarkSpanStartEnd(b *testing.B) {
	r := New()
	r.StartSpan("wal/append").End() // intern the node up front
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.StartSpan("wal/append").End()
	}
}

func BenchmarkSpanChildStartEnd(b *testing.B) {
	r := New()
	sp := r.StartSpan("retrain")
	defer sp.End()
	sp.Child("build").End()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Child("build").End()
	}
}

// TestSpanAllocBudget is the enforced ceiling behind the benchmarks
// above: a steady-state metric-only span costs zero heap allocations
// (pooled span, interned node, no attrs), and a traced span stays within
// a small constant for its recorded SpanData. A regression here —
// rebuilding the slash-joined path, losing the pool, boxing in the
// histogram — fails the test, not just a benchmark nobody reran.
func TestSpanAllocBudget(t *testing.T) {
	r := New()
	r.StartSpan("wal/append").End() // warm the intern tree + pool

	if avg := testing.AllocsPerRun(200, func() {
		r.StartSpan("wal/append").End()
	}); avg > 0 {
		t.Errorf("metric-only StartSpan/End allocates %.1f objects/op, budget 0", avg)
	}

	parent := r.StartSpan("retrain")
	parent.Child("build").End()
	if avg := testing.AllocsPerRun(200, func() {
		parent.Child("build").End()
	}); avg > 0 {
		t.Errorf("metric-only Child/End allocates %.1f objects/op, budget 0", avg)
	}
	parent.End()

	// Traced spans genuinely allocate — the Trace, two SpanData records,
	// hex-rendered IDs, the retained TraceData — currently 12 objects for
	// a root+child pair. The budget holds that constant: per-span costs,
	// never per-call path strings or histogram re-lookups.
	rec := NewRecorder(RecorderOptions{Metrics: r})
	defer rec.Close()
	r.SetFlightRecorder(rec)
	const tracedBudget = 14
	if avg := testing.AllocsPerRun(200, func() {
		sp := r.StartTrace("/v1/readings", SpanContext{})
		sp.Child("screen").End()
		sp.End()
	}); avg > tracedBudget {
		t.Errorf("traced root+child costs %.1f objects/op, budget %d", avg, tracedBudget)
	}
}
