package dbserver

import (
	"fmt"

	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
)

// Replica apply surface. A replica shard receives its primary's mutation
// stream (internal/cluster ships the journal order over HTTP) and folds
// it into its own stores through these two methods. They bypass the α′
// gate and upload screening on purpose: the primary already applied its
// acceptance policy, and re-deciding here could diverge the stores. Both
// paths journal into the replica's own WAL (when it has a data dir), so
// a replica recovers from its own disk exactly like a primary.

// ApplyReplicatedReadings appends a replicated batch to the store for a
// channel/sensor, creating the store if needed.
func (s *Server) ApplyReplicatedReadings(ch rfenv.Channel, kind sensor.Kind, rs []dataset.Reading) error {
	if len(rs) == 0 {
		return fmt.Errorf("dbserver: empty replicated batch")
	}
	for i := range rs {
		if rs[i].Channel != ch || rs[i].Sensor != kind {
			return fmt.Errorf("dbserver: replicated batch for %v/%v holds a %v/%v reading",
				ch, kind, rs[i].Channel, rs[i].Sensor)
		}
	}
	u, err := s.updaterFor(ch, kind)
	if err != nil {
		return err
	}
	u.Bootstrap(rs)
	s.maybeSnapshot(storeKey{ch, kind})
	return nil
}

// ApplyReplicatedRetrain rebuilds the model for a channel/sensor from the
// first trainedCount store readings and installs it at exactly the
// primary's version, so the replica serves byte-identical descriptors.
func (s *Server) ApplyReplicatedRetrain(ch rfenv.Channel, kind sensor.Kind, version, trainedCount int) error {
	u, err := s.updaterFor(ch, kind)
	if err != nil {
		return err
	}
	return u.RetrainAt(version, trainedCount)
}
