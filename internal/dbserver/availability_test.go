package dbserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"github.com/wsdetect/waldo/internal/rfenv"
)

func getAvailability(t *testing.T, url string) AvailabilityJSON {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("availability = %s", resp.Status)
	}
	var av AvailabilityJSON
	if err := json.NewDecoder(resp.Body).Decode(&av); err != nil {
		t.Fatal(err)
	}
	return av
}

func TestAvailabilityEndpoint(t *testing.T) {
	_, ts := bootedServer(t)

	// West of the metro origin the synthetic field is free.
	west := rfenv.MetroCenter.Offset(270, 6000)
	av := getAvailability(t, fmt.Sprintf("%s/v1/availability?lat=%v&lon=%v", ts.URL, west.Lat, west.Lon))
	if av.Generation == 0 {
		t.Fatal("bootstrapped server serves generation 0 (no grid built)")
	}
	if len(av.Channels) == 0 {
		t.Fatal("no verdicts in a surveyed cell")
	}
	e := av.Channels[0]
	if e.Channel != 47 || e.Status != "free" {
		t.Errorf("west verdict = ch%d %s, want ch47 free", e.Channel, e.Status)
	}
	if e.Confidence <= 0 || e.Confidence >= 1 {
		t.Errorf("confidence %v outside (0,1)", e.Confidence)
	}

	// The channels filter excludes everything but the named channels.
	av = getAvailability(t, fmt.Sprintf("%s/v1/availability?lat=%v&lon=%v&channels=46", ts.URL, west.Lat, west.Lon))
	if len(av.Channels) != 0 {
		t.Errorf("filter channels=46 returned %d verdicts for a ch47-only store", len(av.Channels))
	}

	// An unsurveyed cell answers 200 with no verdicts, not an error.
	av = getAvailability(t, ts.URL+"/v1/availability?lat=80&lon=120")
	if len(av.Channels) != 0 {
		t.Errorf("unsurveyed cell returned %d verdicts", len(av.Channels))
	}

	// Malformed queries are 400s.
	for _, q := range []string{"", "?lat=91&lon=0", "?lat=x&lon=0", "?lat=0&lon=0&channels=bogus", "?lat=0&lon=0&sensor=x"} {
		resp, err := http.Get(ts.URL + "/v1/availability" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("availability%s = %s, want 400", q, resp.Status)
		}
	}
}

func postRoute(t *testing.T, url string, req RouteRequestJSON) (*http.Response, RouteJSON) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/route", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var route RouteJSON
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&route); err != nil {
			t.Fatal(err)
		}
	}
	return resp, route
}

func TestRouteEndpoint(t *testing.T) {
	_, ts := bootedServer(t)

	west := rfenv.MetroCenter.Offset(270, 7000)
	east := rfenv.MetroCenter.Offset(90, 7000)
	req := RouteRequestJSON{
		Points: []RoutePointJSON{
			{Lat: west.Lat, Lon: west.Lon},
			{Lat: east.Lat, Lon: east.Lon},
		},
		StepM: 500,
	}
	resp, route := postRoute(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("route = %s", resp.Status)
	}
	if len(route.Segments) < 2 {
		t.Fatalf("14 km route produced %d segments", len(route.Segments))
	}
	if route.TotalM < 10000 || route.ConfidenceDecay != 1 {
		t.Errorf("total_m=%v decay=%v", route.TotalM, route.ConfidenceDecay)
	}
	var free, occupied int
	for _, seg := range route.Segments {
		for _, e := range seg.Channels {
			switch e.Status {
			case "free":
				free++
			case "occupied":
				occupied++
			}
		}
	}
	if free == 0 || occupied == 0 {
		t.Errorf("route across the occupancy split saw free=%d occupied=%d verdicts", free, occupied)
	}

	// A horizon discounts every confidence.
	withHorizon := req
	withHorizon.HorizonS = 1800
	resp2, decayed := postRoute(t, ts.URL, withHorizon)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("route with horizon = %s", resp2.Status)
	}
	if decayed.ConfidenceDecay >= 1 || decayed.ConfidenceDecay <= 0 {
		t.Fatalf("decay = %v, want in (0,1)", decayed.ConfidenceDecay)
	}
	for i, seg := range decayed.Segments {
		for j, e := range seg.Channels {
			base := route.Segments[i].Channels[j].Confidence
			if e.Confidence >= base {
				t.Fatalf("segment %d entry %d confidence %v not discounted from %v", i, j, e.Confidence, base)
			}
		}
	}

	// Bad requests: no points, too many points, invalid waypoint,
	// oversampled route, invalid channel, negative horizon.
	bad := []RouteRequestJSON{
		{},
		{Points: make([]RoutePointJSON, 300)},
		{Points: []RoutePointJSON{{Lat: 91}}},
		{Points: []RoutePointJSON{{Lat: 0, Lon: 0}, {Lat: 40, Lon: 100}}, StepM: 10},
		{Points: req.Points, Channels: []int{3}},
		{Points: req.Points, HorizonS: -1},
	}
	for i, b := range bad {
		resp, _ := postRoute(t, ts.URL, b)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad route %d = %s, want 400", i, resp.Status)
		}
	}
}

func TestRetrainSchedulesRebuild(t *testing.T) {
	s, ts := bootedServer(t)
	gen0 := s.GeoIndex().Snapshot().Generation

	resp, err := http.Post(ts.URL+"/v1/retrain?channel=47&sensor=1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retrain = %s", resp.Status)
	}
	// The rebuild is asynchronous (off the request path); poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for s.GeoIndex().Snapshot().Generation <= gen0 {
		if time.Now().After(deadline) {
			t.Fatalf("grid generation stuck at %d after retrain", gen0)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
