package rfenv

import (
	"fmt"
	"math"

	"github.com/wsdetect/waldo/internal/geo"
)

// MetroCenter anchors the synthetic metro area at downtown Atlanta, where
// the paper's war-driving campaign took place.
var MetroCenter = geo.Point{Lat: 33.749, Lon: -84.388}

// MetroAreaKM2 is the campaign coverage area (paper §2.1: "a total area of
// around 700 km²").
const MetroAreaKM2 = 700.0

// ERPFor solves for the effective radiated power that produces the target
// median received power at the given link distance under model m, so metro
// construction can be specified in terms of in-area signal levels rather
// than opaque power numbers.
func ERPFor(m PathLossModel, ch Channel, distKM, hTxM, hRxM, targetDBm float64) (float64, error) {
	fMHz, err := ch.CenterFreqMHz()
	if err != nil {
		return 0, err
	}
	return targetDBm + m.PathLossDB(distKM*1000, fMHz, hTxM, hRxM), nil
}

// BuildMetro constructs the default 700 km² synthetic metro environment
// whose channel occupancy structure mirrors the paper's campaign:
//
//   - ch 27, 39 — strong in-town towers, decodable everywhere (the two
//     channels §2.1 excludes from system evaluation as fully occupied);
//   - ch 47, 30 — mostly occupied; ch 47 has a sharp coverage boundary and
//     an in-coverage obstruction pocket (the Fig. 1 / Fig. 6 scenario);
//   - ch 22 — near-threshold, roughly half occupied (two medium stations);
//   - ch 15, 46 — fringe coverage, mostly white space with patches;
//   - ch 17 — deep fringe with heavy terrain obstructions: the channel on
//     which location-only models fail hardest (Fig. 12a / Fig. 16);
//   - ch 21 — very weak signals hovering near the RTL-SDR noise floor, the
//     anomalous channel of Fig. 7.
//
// Channels 15/17/22/47 get nearby one-sided transmitters (strong in-area
// gradient) so white space survives on their far sides even after the
// +7.5 dB antenna correction, while 21/30/46 get distant flat-field
// transmitters that the correction floods completely — reproducing the
// Fig. 15 note that channels 21, 30 and 46 become all-not-safe.
func BuildMetro(seed uint64) (*Environment, error) {
	side := math.Sqrt(MetroAreaKM2) * 1000
	area := geo.NewBBoxAround(MetroCenter, side)
	c := MetroCenter
	model := HataUrban{LargeCity: true}

	type station struct {
		call    string
		ch      Channel
		bearing float64 // from metro center to the tower
		distKM  float64
		target  float64 // median RSS at metro center, dBm
		height  float64
	}
	// Partial channels get towers at or just inside the area edge: the
	// 6 km protection dilation of Algorithm 1 turns any scattered
	// decodable patches into blanket not-safe labels, so surviving white
	// space requires a one-sided gradient (coverage on the tower side,
	// deep fringe on the far side) — which is also how real metro areas
	// look. Channels 15/17/22/47 use close towers (steep gradient: deeply
	// dead far sides that survive the +7.5 dB antenna correction), while
	// 21/30/46 use medium-distance towers whose corrected contours grow
	// past the whole area — reproducing the Fig. 15 note that those three
	// channels become all-not-safe under the correction.
	stations := []station{
		{"WMTR-15", 15, 90, 10, -92, 250},
		{"WFRN-17", 17, 315, 10, -92, 200},
		{"WDST-21", 21, 200, 35, -91.5, 300},
		{"WPRE-22A", 22, 80, 12, -93, 250},
		{"WPRE-22B", 22, 190, 12, -93, 250},
		{"WATL-27", 27, 10, 25, -56, 300},
		{"WMID-30", 30, 250, 25, -86.5, 300},
		{"WCTR-39", 39, 140, 25, -58, 300},
		{"WFAR-46", 46, 290, 30, -87.5, 300},
		{"WNEB-47", 47, 45, 9, -88, 280},
	}

	txs := make([]Transmitter, 0, len(stations))
	for _, s := range stations {
		erp, err := ERPFor(model, s.ch, s.distKM, s.height, 2, s.target)
		if err != nil {
			return nil, fmt.Errorf("rfenv: station %s: %w", s.call, err)
		}
		txs = append(txs, Transmitter{
			Callsign: s.call,
			Loc:      c.Offset(s.bearing, s.distKM*1000),
			Channel:  s.ch,
			ERPdBm:   erp,
			HeightM:  s.height,
		})
	}

	obstructions := []Obstruction{
		// Terrain common to all channels.
		{Center: c.Offset(270, 7000), RadiusM: 2500, EdgeM: 1500, DepthDB: 14},
		{Center: c.Offset(135, 9000), RadiusM: 3000, EdgeM: 2000, DepthDB: 12},
		{Center: c.Offset(0, 4000), RadiusM: 1500, EdgeM: 1000, DepthDB: 10},
		// Heavy terrain on channel 17's propagation path: deep, wide
		// pockets that defeat location-only and fitted-propagation
		// models.
		{Center: c.Offset(315, 8000), RadiusM: 4000, EdgeM: 2500, DepthDB: 20, Channels: []Channel{17}},
		{Center: c.Offset(180, 11000), RadiusM: 3000, EdgeM: 2000, DepthDB: 16, Channels: []Channel{17}},
		// The Fig. 1 pocket: an obstruction inside channel 47's coverage
		// whose interior cannot decode the signal but is still within the
		// 6 km protection radius of decodable surroundings.
		{Center: c.Offset(45, 5000), RadiusM: 2000, EdgeM: 1200, DepthDB: 18, Channels: []Channel{47}},
	}

	return NewEnvironment(EnvConfig{
		Area:         area,
		Transmitters: txs,
		Model:        model,
		Shadow: ShadowConfig{
			Seed:           seed,
			SigmaDB:        4,
			DecorrelationM: 120,
			CoarseScaleM:   6000,
			CoarseWeight:   0.55,
		},
		Obstructions: obstructions,
		RxHeightM:    2,
	})
}
