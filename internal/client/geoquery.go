package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"github.com/wsdetect/waldo/internal/dbserver"
	"github.com/wsdetect/waldo/internal/geo"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
)

// The spatiotemporal query surface (DESIGN.md §15): instead of
// downloading a model and classifying locally, a device — or a route
// planner with no radio at all — asks the database's precomputed
// availability grid. Both calls go through the same retry/breaker
// machinery as every other exchange, and both work identically against
// a single dbserver and a cluster gateway (which merges across shards).

// AvailabilityQuery selects what GET /v1/availability should answer:
// the cell containing Loc, optionally narrowed to specific channels
// and/or one sensor family.
type AvailabilityQuery struct {
	// Loc is the point of interest; the server answers for the geo-cell
	// containing it.
	Loc geo.Point
	// Channels, when non-empty, restricts verdicts to these channels. A
	// single-channel filter also lets a cluster gateway forward the query
	// straight to the owning shard instead of fanning out.
	Channels []rfenv.Channel
	// Sensor, when non-zero, restricts verdicts to one sensor family.
	Sensor sensor.Kind
}

// Availability fetches the availability grid's channel verdicts for the
// cell containing a point. See AvailabilityCtx.
func (c *Client) Availability(q AvailabilityQuery) (dbserver.AvailabilityJSON, error) {
	return c.AvailabilityCtx(context.Background(), q)
}

// AvailabilityCtx fetches the availability grid's channel verdicts for
// the cell containing q.Loc, retrying transient failures. An unsurveyed
// cell is a successful answer with an empty Channels slice, not an
// error — "unknown" is a verdict a caller must be able to act on.
func (c *Client) AvailabilityCtx(ctx context.Context, q AvailabilityQuery) (dbserver.AvailabilityJSON, error) {
	if !q.Loc.Valid() {
		return dbserver.AvailabilityJSON{}, fmt.Errorf("client: availability: invalid location %v", q.Loc)
	}
	vals := url.Values{}
	vals.Set("lat", strconv.FormatFloat(q.Loc.Lat, 'f', -1, 64))
	vals.Set("lon", strconv.FormatFloat(q.Loc.Lon, 'f', -1, 64))
	if len(q.Channels) > 0 {
		parts := make([]string, len(q.Channels))
		for i, ch := range q.Channels {
			parts[i] = strconv.Itoa(int(ch))
		}
		vals.Set("channels", strings.Join(parts, ","))
	}
	if q.Sensor != 0 {
		vals.Set("sensor", strconv.Itoa(int(q.Sensor)))
	}
	var out dbserver.AvailabilityJSON
	err := c.do(ctx, "availability",
		func(actx context.Context) (*http.Request, error) {
			return http.NewRequestWithContext(actx, http.MethodGet,
				c.base()+"/v1/availability?"+vals.Encode(), nil)
		},
		func(resp *http.Response) error {
			if resp.StatusCode != http.StatusOK {
				msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
				return fmt.Errorf("client: availability: %s: %s", resp.Status, bytes.TrimSpace(msg))
			}
			return json.NewDecoder(resp.Body).Decode(&out)
		})
	if err != nil {
		return dbserver.AvailabilityJSON{}, err
	}
	return out, nil
}

// RouteOptions tunes a PlanRoute call; the zero value asks for the
// server defaults (no horizon discount, default sampling step, all
// channels and sensors).
type RouteOptions struct {
	// HorizonS asks "will this still hold in HorizonS seconds?"; the
	// server discounts every confidence by exp(-horizon/τ).
	HorizonS float64
	// StepM is the trajectory sampling interval in meters (0: server
	// default).
	StepM float64
	// Channels, when non-empty, restricts verdicts to these channels.
	Channels []rfenv.Channel
	// Sensor, when non-zero, restricts verdicts to one sensor family.
	Sensor sensor.Kind
}

// PlanRoute asks the database for per-segment free-channel verdicts
// along a polyline. See PlanRouteCtx.
func (c *Client) PlanRoute(points []geo.Point, opts RouteOptions) (dbserver.RouteJSON, error) {
	return c.PlanRouteCtx(context.Background(), points, opts)
}

// PlanRouteCtx asks the database for per-segment free-channel verdicts
// along a polyline of waypoints, retrying transient failures. The
// answer partitions the route into cell-constant segments, each with
// the availability grid's verdicts for that cell, confidence already
// discounted for opts.HorizonS.
func (c *Client) PlanRouteCtx(ctx context.Context, points []geo.Point, opts RouteOptions) (dbserver.RouteJSON, error) {
	if len(points) == 0 {
		return dbserver.RouteJSON{}, fmt.Errorf("client: route: no waypoints")
	}
	req := dbserver.RouteRequestJSON{
		HorizonS: opts.HorizonS,
		StepM:    opts.StepM,
		Sensor:   int(opts.Sensor),
	}
	for i, p := range points {
		if !p.Valid() {
			return dbserver.RouteJSON{}, fmt.Errorf("client: route: waypoint %d: invalid location %v", i, p)
		}
		req.Points = append(req.Points, dbserver.RoutePointJSON{Lat: p.Lat, Lon: p.Lon})
	}
	for _, ch := range opts.Channels {
		req.Channels = append(req.Channels, int(ch))
	}
	body, err := json.Marshal(req)
	if err != nil {
		return dbserver.RouteJSON{}, fmt.Errorf("client: route: marshal: %w", err)
	}
	var out dbserver.RouteJSON
	err = c.do(ctx, "route",
		func(actx context.Context) (*http.Request, error) {
			hreq, err := http.NewRequestWithContext(actx, http.MethodPost,
				c.base()+"/v1/route", bytes.NewReader(body))
			if err != nil {
				return nil, err
			}
			hreq.Header.Set("Content-Type", "application/json")
			return hreq, nil
		},
		func(resp *http.Response) error {
			if resp.StatusCode != http.StatusOK {
				msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
				return fmt.Errorf("client: route: %s: %s", resp.Status, bytes.TrimSpace(msg))
			}
			return json.NewDecoder(resp.Body).Decode(&out)
		})
	if err != nil {
		return dbserver.RouteJSON{}, err
	}
	return out, nil
}
