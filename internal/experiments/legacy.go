package experiments

import (
	"fmt"

	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/features"
	"github.com/wsdetect/waldo/internal/ml"
	"github.com/wsdetect/waldo/internal/ml/knn"
	"github.com/wsdetect/waldo/internal/ml/validate"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
)

// The paper trained OpenCV-era SVMs on raw inputs: location in decimal
// degrees (range ≈ 0.24 over the metro) against signal features in dB
// (range ≈ 40), with the library-default RBF width (γ = 1). At that scale
// ratio the kernel has two limits:
//
//   - location-only: every pairwise distance is ≪ 1, the kernel is nearly
//     constant, and the SVM degenerates to a majority-class predictor;
//   - with signal features: the dB dimensions dominate the kernel, whose
//     ~1 dB width turns the SVM into a nearest-neighbor rule in signal
//     space (location effectively ignored).
//
// legacyCV emulates exactly those limits (majority vote / signal-space
// KNN), which is the regime where Fig. 12's dramatic 5–10× improvements
// from adding signal features arise. The normalized Waldo pipeline
// (core.BuildModel) is the repaired variant; EXPERIMENTS.md discusses the
// difference.
const legacyKNNK = 5

// legacyVector builds the unscaled input: raw degrees plus raw dB.
func legacyVector(set features.Set, r dataset.Reading) ([]float64, error) {
	if !set.Valid() {
		return nil, fmt.Errorf("experiments: invalid feature set %d", int(set))
	}
	v := make([]float64, 0, set.Dim())
	v = append(v, r.Loc.Lon, r.Loc.Lat)
	if set >= features.SetLocationRSS {
		v = append(v, r.Signal.RSSdBm)
	}
	if set >= features.SetLocationRSSCFT {
		v = append(v, r.Signal.CFTdB)
	}
	if set >= features.SetLocationRSSCFTAFT {
		v = append(v, r.Signal.AFTdB)
	}
	return v, nil
}

// legacyCV cross-validates the unscaled-SVM configuration (no
// standardization, default kernel width).
func legacyCV(readings []dataset.Reading, labels []dataset.Label, set features.Set, seed int64) (validate.Metrics, error) {
	var total validate.Metrics
	x := make([][]float64, len(readings))
	y := make([]int, len(readings))
	for i := range readings {
		v, err := legacyVector(set, readings[i])
		if err != nil {
			return total, err
		}
		x[i] = v
		y[i] = labelClass(labels[i])
	}
	folds, err := validate.KFold(len(x), cvFolds, seed)
	if err != nil {
		return total, err
	}
	inTest := make([]bool, len(x))
	for f, test := range folds {
		for i := range inTest {
			inTest[i] = false
		}
		for _, i := range test {
			inTest[i] = true
		}
		var trainX [][]float64
		var trainY []int
		for i := range x {
			if !inTest[i] {
				trainX = append(trainX, x[i])
				trainY = append(trainY, y[i])
			}
		}
		m, err := legacyTrainAndTest(set, trainX, trainY, test, x, y)
		if err != nil {
			return total, fmt.Errorf("legacy fold %d: %w", f, err)
		}
		total.Add(m)
	}
	return total, nil
}

// legacyTrainAndTest applies the degenerate-kernel limits: majority class
// for location-only inputs, signal-space KNN otherwise.
func legacyTrainAndTest(set features.Set, trainX [][]float64, trainY []int, test []int, x [][]float64, y []int) (validate.Metrics, error) {
	var m validate.Metrics
	constLabel, isConst := legacyConstant(trainY)
	if isConst || set == features.SetLocation {
		label := constLabel
		if !isConst {
			label = legacyMajority(trainY)
		}
		for _, i := range test {
			m.Count(label, y[i])
		}
		return m, nil
	}
	// Signal-space KNN: the kernel's dB dimensions dominate; drop the
	// (degree-scale) location columns entirely.
	sigTrain := stripLocation(trainX)
	cls := &knn.KNN{K: legacyKNNK}
	if err := cls.Fit(sigTrain, trainY); err != nil {
		return m, err
	}
	for _, i := range test {
		pred, err := cls.Predict(x[i][2:])
		if err != nil {
			return m, err
		}
		m.Count(pred, y[i])
	}
	return m, nil
}

func stripLocation(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i := range x {
		out[i] = x[i][2:]
	}
	return out
}

func legacyMajority(y []int) int {
	var vote int
	for _, v := range y {
		vote += v
	}
	if vote > 0 {
		return ml.Positive
	}
	return ml.Negative
}

func legacyConstant(y []int) (int, bool) {
	if len(y) == 0 {
		return ml.Negative, true
	}
	first := y[0]
	for _, v := range y[1:] {
		if v != first {
			return 0, false
		}
	}
	return first, true
}

// legacyChannelCV runs legacyCV for one suite channel/sensor.
func (s *Suite) legacyChannelCV(ch rfenv.Channel, kind sensor.Kind, set features.Set) (validate.Metrics, error) {
	camp, err := s.Campaign()
	if err != nil {
		return validate.Metrics{}, err
	}
	readings := camp.Readings(ch, kind)
	if len(readings) == 0 {
		return validate.Metrics{}, fmt.Errorf("experiments: no readings for %v/%v", ch, kind)
	}
	labels, err := s.Labels(ch, kind, 0)
	if err != nil {
		return validate.Metrics{}, err
	}
	return legacyCV(readings, labels, set, s.cfg.Seed+int64(ch)*37+int64(kind))
}
