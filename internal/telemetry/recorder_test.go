package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// recordTrace pushes one synthetic completed trace through the public
// StartTrace path so classification happens exactly as in production.
func recordTrace(r *Registry, endpoint string, fail bool) TraceID {
	sp := r.StartTrace(endpoint, SpanContext{})
	id := sp.TraceID()
	if fail {
		sp.Fail("synthetic failure")
	}
	sp.End()
	return id
}

func newTestRecorder(t *testing.T, opts RecorderOptions) (*Registry, *Recorder) {
	t.Helper()
	r := New()
	if opts.Metrics == nil {
		opts.Metrics = r
	}
	rec := NewRecorder(opts)
	t.Cleanup(rec.Close)
	r.SetFlightRecorder(rec)
	return r, rec
}

// TestErroredTracesSurviveSamplingPressure is the tail-sampling contract:
// with far more healthy traffic than the rings hold, every errored trace
// is still retained, because errors live in their own ring.
func TestErroredTracesSurviveSamplingPressure(t *testing.T) {
	const capacity = 32
	r, rec := newTestRecorder(t, RecorderOptions{Capacity: capacity})

	var errored []TraceID
	for i := 0; i < 20; i++ {
		errored = append(errored, recordTrace(r, "/v1/readings", true))
		// 100× healthy pressure: 2000 OK traces vs 32 recent slots.
		for j := 0; j < 100; j++ {
			recordTrace(r, "/v1/readings", false)
		}
	}

	for _, id := range errored {
		got := rec.Snapshot(TraceFilter{TraceID: id.String()})
		if len(got) != 1 {
			t.Fatalf("errored trace %s evicted by healthy traffic", id)
		}
		if got[0].Class != "error" {
			t.Fatalf("trace %s class = %q, want error", id, got[0].Class)
		}
	}
	// The recent ring is full but bounded.
	if got := len(rec.Snapshot(TraceFilter{Class: "recent"})); got != capacity {
		t.Fatalf("recent ring holds %d, want %d", got, capacity)
	}
	if v := r.Counter("waldo_trace_evicted_total", "", "class", "recent").Value(); v == 0 {
		t.Fatal("no recent evictions counted under pressure")
	}
	if v := r.Counter("waldo_trace_evicted_total", "", "class", "error").Value(); v != 0 {
		t.Fatalf("error ring evicted %d with only 20 errored traces recorded", v)
	}
}

// TestErrorRingWrapsAtCapacity: the no-starvation guarantee is per-ring;
// once the error ring itself wraps, the oldest errors go.
func TestErrorRingWrapsAtCapacity(t *testing.T) {
	r, rec := newTestRecorder(t, RecorderOptions{Capacity: 8})
	for i := 0; i < 20; i++ {
		recordTrace(r, "/v1/readings", true)
	}
	if got := len(rec.Snapshot(TraceFilter{Class: "error"})); got != 8 {
		t.Fatalf("error ring holds %d, want 8", got)
	}
	if v := r.Counter("waldo_trace_evicted_total", "", "class", "error").Value(); v != 12 {
		t.Fatalf("error evictions = %d, want 12", v)
	}
}

func TestSlowClassification(t *testing.T) {
	r, rec := newTestRecorder(t, RecorderOptions{
		Capacity:          16,
		MinSamples:        4,
		RecomputeInterval: time.Hour, // recompute manually, not by timer
	})
	// Seed the endpoint's duration window with fast traces, then force
	// the threshold refresh.
	for i := 0; i < 10; i++ {
		recordTrace(r, "/v1/model", false)
	}
	rec.recompute()

	// A trace slower than everything in the window lands in the slow ring.
	sp := r.StartTrace("/v1/model", SpanContext{})
	id := sp.TraceID()
	time.Sleep(20 * time.Millisecond)
	sp.End()

	got := rec.Snapshot(TraceFilter{TraceID: id.String()})
	if len(got) != 1 || got[0].Class != "slow" {
		t.Fatalf("slow trace retained as %+v", got)
	}
	// min_ms filtering finds it; an absurd floor does not.
	if n := len(rec.Snapshot(TraceFilter{MinDuration: 10 * time.Millisecond})); n != 1 {
		t.Fatalf("min_ms filter matched %d traces, want 1", n)
	}
	if n := len(rec.Snapshot(TraceFilter{MinDuration: time.Hour})); n != 0 {
		t.Fatalf("1h floor matched %d traces", n)
	}
}

// TestRecorderConcurrentRecordReadClose hammers record/Snapshot/Handler
// while Close fires mid-flight; run with -race this is the data-race
// gate, and the goroutine accounting below is the leak gate.
func TestRecorderConcurrentRecordReadClose(t *testing.T) {
	before := runtime.NumGoroutine()

	for iter := 0; iter < 5; iter++ {
		r := New()
		rec := NewRecorder(RecorderOptions{Capacity: 16, RecomputeInterval: time.Millisecond, Metrics: r})
		r.SetFlightRecorder(rec)
		srv := httptest.NewServer(rec.Handler())

		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					recordTrace(r, fmt.Sprintf("/ep%d", w%2), i%7 == 0)
				}
			}(w)
		}
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					rec.Snapshot(TraceFilter{})
					resp, err := srv.Client().Get(srv.URL + "?limit=5")
					if err == nil {
						resp.Body.Close()
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec.Close() // races with everything above, by design
		}()
		wg.Wait()
		rec.Close() // idempotent
		// Retained traces stay readable after Close.
		rec.Snapshot(TraceFilter{})
		srv.Close()
	}

	// Give the closed loops a moment to unwind, then check for leaks.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d after 5 recorder lifecycles", before, runtime.NumGoroutine())
}

func TestRecorderHandler(t *testing.T) {
	r, rec := newTestRecorder(t, RecorderOptions{Capacity: 8})
	okID := recordTrace(r, "/v1/model", false)
	badID := recordTrace(r, "/v1/readings", true)

	srv := httptest.NewServer(rec.Handler())
	defer srv.Close()

	get := func(q string) (*http.Response, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if _, err := fmt.Fprint(&b, readAll(t, resp)); err != nil {
			t.Fatal(err)
		}
		return resp, b.String()
	}

	// JSON default, with count and both traces.
	resp, body := get("")
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
	var out struct {
		Count  int         `json:"count"`
		Traces []TraceData `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if out.Count != 2 {
		t.Fatalf("count = %d, want 2", out.Count)
	}

	// Filters: class, endpoint, trace ID.
	_, body = get("?class=error")
	if !strings.Contains(body, badID.String()) || strings.Contains(body, okID.String()) {
		t.Fatalf("class=error returned:\n%s", body)
	}
	_, body = get("?endpoint=/v1/model")
	if !strings.Contains(body, okID.String()) || strings.Contains(body, badID.String()) {
		t.Fatalf("endpoint filter returned:\n%s", body)
	}
	_, body = get("?trace=" + okID.String())
	if !strings.Contains(body, okID.String()) {
		t.Fatalf("trace filter returned:\n%s", body)
	}

	// Text rendering carries the span tree.
	resp, body = get("?format=text")
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("text content type %q", ct)
	}
	if !strings.Contains(body, "trace "+badID.String()) || !strings.Contains(body, "ERROR") {
		t.Fatalf("text rendering:\n%s", body)
	}

	// Bad parameters are rejected.
	for _, q := range []string{"?min_ms=nope", "?limit=0", "?limit=x"} {
		if resp, _ := get(q); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s -> %d, want 400", q, resp.StatusCode)
		}
	}

	// A nil recorder's handler answers 404 instead of panicking.
	var nilRec *Recorder
	rr := httptest.NewRecorder()
	nilRec.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/debug/traces", nil))
	if rr.Code != http.StatusNotFound {
		t.Fatalf("nil recorder -> %d, want 404", rr.Code)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			return b.String()
		}
	}
}
