// Command waldo-bench-geo runs the spatiotemporal-query latency harness
// (internal/benchharness.RunGeoTier): it boots the real server stack
// in-process — a single waldo-server and/or the sharded gateway
// topology — and drives GET /v1/availability and POST /v1/route with
// open-loop load at fixed tiers while periodic retrains keep the
// availability grid rebuilding underneath. The measured trajectory
// (per-endpoint p50/p95/p99/p999 from scheduled start, grid rebuilds
// published, GC pauses) is appended to a BENCH_10.json file in the same
// bench_e2e/v1 schema as BENCH_E2E.json, so scripts/bench_regress.sh
// gates route-query p99 across runs with no new tooling.
//
// Usage:
//
//	waldo-bench-geo -out BENCH_10.json               # full 500/2k/5k sweep
//	waldo-bench-geo -smoke -out BENCH_10.json        # seconds-long sanity tier
//	waldo-bench-geo -render -out BENCH_10.json       # print the markdown table
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/wsdetect/waldo/internal/benchharness"
	"github.com/wsdetect/waldo/internal/rfenv"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "waldo-bench-geo:", err)
		os.Exit(1)
	}
}

// parseTiers reads "name=queries/s,..." tier specs.
func parseTiers(spec string, dur, retrainEvery time.Duration) ([]benchharness.GeoTier, error) {
	var tiers []benchharness.GeoTier
	for _, part := range strings.Split(spec, ",") {
		name, rateStr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad tier %q (want name=rate)", part)
		}
		rate, err := strconv.ParseFloat(rateStr, 64)
		if err != nil || rate <= 0 {
			return nil, fmt.Errorf("bad tier rate %q", rateStr)
		}
		tiers = append(tiers, benchharness.GeoTier{
			Name: name, Rate: rate, Duration: dur, RetrainEvery: retrainEvery,
		})
	}
	if len(tiers) == 0 {
		return nil, fmt.Errorf("no tiers")
	}
	return tiers, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("waldo-bench-geo", flag.ContinueOnError)
	out := fs.String("out", "BENCH_10.json", "trajectory file to append the run to")
	topologies := fs.String("topologies", "single,cluster", "comma-separated topologies to sweep (single, cluster)")
	tiersSpec := fs.String("tiers", "500=500,2k=2000,5k=5000", "comma-separated name=queries/s tiers (each rate drives both an availability and a route stream)")
	tierDur := fs.Duration("tier-duration", 5*time.Second, "load duration per tier")
	retrainEvery := fs.Duration("retrain-every", 500*time.Millisecond, "retrain period during each tier; every retrain schedules a grid rebuild (negative = never)")
	seed := fs.Int64("seed", 42, "simulation seed")
	samples := fs.Int("samples", 300, "bootstrap campaign size per channel")
	shards := fs.Int("shards", 3, "cluster topology shard count")
	smoke := fs.Bool("smoke", false, "run one short sanity tier instead of the full sweep")
	render := fs.Bool("render", false, "print the latest run as a markdown table and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *render {
		traj, err := benchharness.LoadTrajectory(*out)
		if err != nil {
			return err
		}
		table, err := traj.RenderMarkdown()
		if err != nil {
			return err
		}
		fmt.Print(table)
		return nil
	}

	if *smoke {
		*tiersSpec = "smoke=500"
		*tierDur = 1500 * time.Millisecond
	}
	tiers, err := parseTiers(*tiersSpec, *tierDur, *retrainEvery)
	if err != nil {
		return err
	}

	run := benchharness.Run{
		Time:       time.Now().UTC().Format(time.RFC3339),
		Goos:       runtime.GOOS,
		Goarch:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	ctx := context.Background()
	for _, topo := range strings.Split(*topologies, ",") {
		topo = strings.TrimSpace(topo)
		cfg := benchharness.Config{
			Topology: topo,
			Seed:     *seed,
			Channels: []rfenv.Channel{46, 47},
			Samples:  *samples,
			Shards:   *shards,
		}
		fmt.Printf("=== topology %s: booting + bootstrap...\n", topo)
		boot := time.Now()
		h, err := benchharness.Start(cfg)
		if err != nil {
			return fmt.Errorf("topology %s: %w", topo, err)
		}
		fmt.Printf("    up at %s in %v\n", h.BaseURL, time.Since(boot).Round(time.Millisecond))
		topoRes := benchharness.TopologyResult{Topology: topo}
		for _, tier := range tiers {
			fmt.Printf("    tier %-6s offered %7.0f avail/s + %7.0f route/s for %v... ",
				tier.Name, tier.Rate, tier.Rate, *tierDur)
			res := h.RunGeoTier(ctx, tier)
			fmt.Printf("%d queries, %d grid rebuilds, %d GC pauses\n",
				res.AvailabilityLoop.Completed+res.RouteLoop.Completed,
				res.GridRebuilds, res.GC.PauseCount)
			topoRes.Tiers = append(topoRes.Tiers, res)
		}
		if err := h.Close(); err != nil {
			return fmt.Errorf("topology %s close: %w", topo, err)
		}
		run.Topologies = append(run.Topologies, topoRes)
	}

	traj, err := benchharness.LoadTrajectory(*out)
	if err != nil {
		return err
	}
	traj.Append(run)
	if err := traj.Write(*out); err != nil {
		return err
	}
	fmt.Printf("\nappended run %d to %s\n\n", len(traj.Runs), *out)
	table, err := traj.RenderMarkdown()
	if err != nil {
		return err
	}
	fmt.Print(table)
	return nil
}
