package experiments

import (
	"fmt"
	"strings"

	"github.com/wsdetect/waldo/internal/core"
	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/dsp"
	"github.com/wsdetect/waldo/internal/features"
	"github.com/wsdetect/waldo/internal/ml/validate"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
)

// --- Figs. 10–11: feature discriminability boxplots ---

// FeatureBoxplot is one feature's five-number summaries per class.
type FeatureBoxplot struct {
	Feature string
	Safe    dsp.FiveNumber
	NotSafe dsp.FiveNumber
	// ANOVA scores for the feature between the two classes.
	F      float64
	PValue float64
}

// Fig10Row is one (channel, sensor) panel of Figs. 10–11.
type Fig10Row struct {
	Channel rfenv.Channel
	Kind    sensor.Kind
	Boxes   []FeatureBoxplot
}

// Fig10Result reproduces Figs. 10 and 11 (channels 47 and 30, both
// sensors) plus the §3.2 ANOVA feature-selection scores.
type Fig10Result struct {
	Rows []Fig10Row
}

// Fig10and11FeatureBoxplots computes class-conditional feature summaries.
func (s *Suite) Fig10and11FeatureBoxplots() (*Fig10Result, error) {
	camp, err := s.Campaign()
	if err != nil {
		return nil, err
	}
	res := &Fig10Result{}
	for _, ch := range []rfenv.Channel{47, 30} {
		for _, kind := range []sensor.Kind{sensor.KindUSRPB200, sensor.KindRTLSDR} {
			readings := camp.Readings(ch, kind)
			labels, err := s.Labels(ch, kind, 0)
			if err != nil {
				return nil, err
			}
			var safe, notSafe []features.Signal
			for i := range readings {
				if labels[i] == dataset.LabelSafe {
					safe = append(safe, readings[i].Signal)
				} else {
					notSafe = append(notSafe, readings[i].Signal)
				}
			}
			scores := features.ScoreANOVA(safe, notSafe)
			row := Fig10Row{Channel: ch, Kind: kind}
			extract := func(sigs []features.Signal, f func(features.Signal) float64) []float64 {
				out := make([]float64, len(sigs))
				for i := range sigs {
					out[i] = f(sigs[i])
				}
				return out
			}
			fields := []struct {
				name string
				fn   func(features.Signal) float64
			}{
				{"RSS", func(sg features.Signal) float64 { return sg.RSSdBm }},
				{"CFT", func(sg features.Signal) float64 { return sg.CFTdB }},
				{"AFT", func(sg features.Signal) float64 { return sg.AFTdB }},
			}
			for i, fl := range fields {
				row.Boxes = append(row.Boxes, FeatureBoxplot{
					Feature: fl.name,
					Safe:    dsp.Summarize(extract(safe, fl.fn)),
					NotSafe: dsp.Summarize(extract(notSafe, fl.fn)),
					F:       scores[i].F,
					PValue:  scores[i].PValue,
				})
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Render implements the experiment report.
func (r *Fig10Result) Render() string {
	var b strings.Builder
	b.WriteString("Figs. 10–11: feature boxplots per occupancy class (ch47, ch30)\n")
	b.WriteString("(paper: all three features score ANOVA p ≈ 0 on all channels)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%v / %v:\n", row.Channel, row.Kind)
		for _, box := range row.Boxes {
			fmt.Fprintf(&b, "  %-4s not-safe[%7.1f %7.1f %7.1f]  safe[%7.1f %7.1f %7.1f]  F=%9.1f p=%.2e\n",
				box.Feature,
				box.NotSafe.Q1, box.NotSafe.Median, box.NotSafe.Q3,
				box.Safe.Q1, box.Safe.Median, box.Safe.Q3,
				box.F, box.PValue)
		}
	}
	return b.String()
}

// --- Fig. 12: effect of adding signal features ---

// Fig. 12 model variants. "nb" and "svm" run the normalized Waldo
// constructor; "svm-legacy" reproduces the paper's raw-input OpenCV
// configuration, whose location-only degeneracy is what makes adding
// signal features so dramatic in the original figure.
const (
	VariantNB        = "nb"
	VariantSVM       = "svm"
	VariantLegacySVM = "svm-legacy"
)

// Fig12Variants lists the evaluated model variants.
var Fig12Variants = []string{VariantNB, VariantSVM, VariantLegacySVM}

// Fig12Cell is one (channel, sensor, variant, feature set) CV outcome.
type Fig12Cell struct {
	Channel rfenv.Channel
	Kind    sensor.Kind
	Variant string
	Set     features.Set
	Metrics validate.Metrics
}

// Fig12Result reproduces Fig. 12: per-channel error for location-only vs
// location+signal models (a), and FP/FN vs number of features (b, c).
type Fig12Result struct {
	Cells []Fig12Cell
}

// Fig12FeatureEffect cross-validates every combination over the seven
// evaluation channels with no clustering (isolating the feature effect, as
// in the paper's §4.3 first experiment).
func (s *Suite) Fig12FeatureEffect() (*Fig12Result, error) {
	res := &Fig12Result{}
	for _, kind := range []sensor.Kind{sensor.KindUSRPB200, sensor.KindRTLSDR} {
		for _, variant := range Fig12Variants {
			for _, set := range features.AllSets {
				for _, ch := range rfenv.EvalChannels {
					var m validate.Metrics
					var err error
					switch variant {
					case VariantLegacySVM:
						m, err = s.legacyChannelCV(ch, kind, set)
					case VariantNB:
						m, err = s.channelCV(ch, kind, 0, core.ConstructorConfig{
							ClusterK: 1, Classifier: core.KindNB, Features: set, Seed: s.cfg.Seed + 100,
						})
					case VariantSVM:
						m, err = s.channelCV(ch, kind, 0, core.ConstructorConfig{
							ClusterK: 1, Classifier: core.KindSVM, Features: set, Seed: s.cfg.Seed + 100,
						})
					}
					if err != nil {
						return nil, fmt.Errorf("fig12 %v/%v/%s/%v: %w", ch, kind, variant, set, err)
					}
					res.Cells = append(res.Cells, Fig12Cell{
						Channel: ch, Kind: kind, Variant: variant, Set: set, Metrics: m,
					})
				}
			}
		}
	}
	return res, nil
}

// ErrorByChannel returns Fig. 12a's series: per-channel error rate for one
// sensor/variant at a feature set.
func (r *Fig12Result) ErrorByChannel(kind sensor.Kind, variant string, set features.Set) map[rfenv.Channel]float64 {
	out := make(map[rfenv.Channel]float64)
	for _, c := range r.Cells {
		if c.Kind == kind && c.Variant == variant && c.Set == set {
			out[c.Channel] = c.Metrics.ErrorRate()
		}
	}
	return out
}

// MeanRates returns Fig. 12b/c's series: channel-averaged FP and FN per
// feature count for one sensor/variant.
func (r *Fig12Result) MeanRates(kind sensor.Kind, variant string) (fp, fn map[int]float64) {
	fp = make(map[int]float64)
	fn = make(map[int]float64)
	count := make(map[int]int)
	for _, c := range r.Cells {
		if c.Kind != kind || c.Variant != variant {
			continue
		}
		n := c.Set.Count()
		fp[n] += c.Metrics.FPRate()
		fn[n] += c.Metrics.FNRate()
		count[n]++
	}
	for n := range fp {
		fp[n] /= float64(count[n])
		fn[n] /= float64(count[n])
	}
	return fp, fn
}

// BestImprovement returns the largest per-channel error-rate ratio between
// location-only and location+two-features for one sensor/variant (the
// paper's "up to 5×" headline for Fig. 12a).
func (r *Fig12Result) BestImprovement(kind sensor.Kind, variant string) (rfenv.Channel, float64) {
	locOnly := r.ErrorByChannel(kind, variant, features.SetLocation)
	full := r.ErrorByChannel(kind, variant, features.SetLocationRSSCFT)
	bestCh := rfenv.Channel(0)
	best := 0.0
	for ch, e0 := range locOnly {
		e1 := full[ch]
		if e1 <= 0 {
			e1 = 0.0005 // avoid infinite ratios on perfect channels
		}
		if ratio := e0 / e1; ratio > best {
			best = ratio
			bestCh = ch
		}
	}
	return bestCh, best
}

// Render implements the experiment report.
func (r *Fig12Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 12a: per-channel error rate (USRP), location-only vs location+signal\n")
	b.WriteString("(svm-legacy reproduces the paper's raw-input configuration)\n")
	fmt.Fprintf(&b, "%-8s %10s %10s %10s %10s %10s %10s\n",
		"channel", "NB loc", "NB loc+f", "SVM loc", "SVM loc+f", "LEG loc", "LEG loc+f")
	nbLoc := r.ErrorByChannel(sensor.KindUSRPB200, VariantNB, features.SetLocation)
	nbFull := r.ErrorByChannel(sensor.KindUSRPB200, VariantNB, features.SetLocationRSSCFT)
	svmLoc := r.ErrorByChannel(sensor.KindUSRPB200, VariantSVM, features.SetLocation)
	svmFull := r.ErrorByChannel(sensor.KindUSRPB200, VariantSVM, features.SetLocationRSSCFT)
	legLoc := r.ErrorByChannel(sensor.KindUSRPB200, VariantLegacySVM, features.SetLocation)
	legFull := r.ErrorByChannel(sensor.KindUSRPB200, VariantLegacySVM, features.SetLocationRSSCFT)
	for _, ch := range rfenv.EvalChannels {
		fmt.Fprintf(&b, "%-8v %10.4f %10.4f %10.4f %10.4f %10.4f %10.4f\n",
			ch, nbLoc[ch], nbFull[ch], svmLoc[ch], svmFull[ch], legLoc[ch], legFull[ch])
	}
	ch, ratio := r.BestImprovement(sensor.KindUSRPB200, VariantLegacySVM)
	fmt.Fprintf(&b, "best legacy-SVM improvement: %.1fx on %v (paper: up to 5x)\n", ratio, ch)
	chN, ratioN := r.BestImprovement(sensor.KindUSRPB200, VariantSVM)
	fmt.Fprintf(&b, "best normalized-SVM improvement: %.1fx on %v (see EXPERIMENTS.md)\n\n", ratioN, chN)

	for _, panel := range []struct {
		title string
		idx   int
	}{
		{"Fig. 12b: mean FP rate vs number of features", 0},
		{"Fig. 12c: mean FN rate vs number of features", 1},
	} {
		b.WriteString(panel.title + "\n")
		fmt.Fprintf(&b, "%-26s %8s %8s %8s %8s\n", "series", "1", "2", "3", "4")
		for _, kind := range []sensor.Kind{sensor.KindRTLSDR, sensor.KindUSRPB200} {
			for _, variant := range Fig12Variants {
				fp, fn := r.MeanRates(kind, variant)
				src := fp
				if panel.idx == 1 {
					src = fn
				}
				fmt.Fprintf(&b, "%-26s %8.4f %8.4f %8.4f %8.4f\n",
					fmt.Sprintf("%v %s", kind, variant), src[1], src[2], src[3], src[4])
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
