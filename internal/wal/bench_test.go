package wal

import (
	"context"
	"fmt"
	"testing"
)

// BenchmarkAppendGroupCommit measures the request-path cost of one
// journal append: framing + enqueue, never an fsync (the flusher batches
// those in the background). This is the latency a durable upload adds
// before the handler acknowledges.
func BenchmarkAppendGroupCommit(b *testing.B) {
	for _, batch := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			s, _, err := OpenStore(b.TempDir(), testCh, testKind, StoreOptions{})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			rs := testReadings(0, batch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.AppendReadings(context.Background(), rs)
			}
			b.StopTimer()
			if err := s.Sync(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkAppendDurable measures the full durability round trip —
// append then wait for the group commit's fsync — under parallel
// appenders sharing flushes. This is what a caller that needs
// acknowledged durability (not the upload path) would pay.
func BenchmarkAppendDurable(b *testing.B) {
	s, _, err := OpenStore(b.TempDir(), testCh, testKind, StoreOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	rs := testReadings(0, 4)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			s.AppendReadings(context.Background(), rs)
			if err := s.Sync(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkReplay measures recovery speed per record. The allocation
// budget is pinned: replay must decode into the recovered slice (amortized
// growth only), never allocate per record — a regression here multiplies
// directly into restart time on big stores.
func BenchmarkReplay(b *testing.B) {
	dir := b.TempDir()
	s, _, err := OpenStore(dir, testCh, testKind, StoreOptions{})
	if err != nil {
		b.Fatal(err)
	}
	const records = 2000
	for i := 0; i < records; i++ {
		s.AppendReadings(context.Background(), testReadings(i, 1))
	}
	if err := s.Sync(); err != nil {
		b.Fatal(err)
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s2, rec, err := OpenStore(dir, testCh, testKind, StoreOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(rec.Readings) != records {
			b.Fatalf("recovered %d readings", len(rec.Readings))
		}
		s2.Close()
	}
	b.StopTimer()
	// ~0.1 allocs/record: segment reads, log-open bookkeeping, and
	// amortized growth of the recovered slice — but nothing per record.
	if maxAllocs := float64(records) / 10; float64(b.N) > 0 {
		if perOp := float64(testing.AllocsPerRun(1, func() {
			s2, rec, err := OpenStore(dir, testCh, testKind, StoreOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if len(rec.Readings) != records {
				b.Fatal("short recovery")
			}
			s2.Close()
		})); perOp > maxAllocs {
			b.Fatalf("replay of %d records allocates %.0f times, budget %.0f", records, perOp, maxAllocs)
		}
	}
}
