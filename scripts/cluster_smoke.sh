#!/usr/bin/env bash
# Boots a real 3-shard cluster on loopback — three waldo-server shard
# processes plus one waldo-gateway — runs waldo-loadgen against the
# gateway, and tears everything down. This is the out-of-process
# counterpart to the in-process e2e cluster harness: it proves the
# binaries, flag parsing, and process topology work, not just the
# library wiring.
#
# Usage: scripts/cluster_smoke.sh [bin-dir]
# Binaries are taken from bin-dir (default ./bin); build them with
# `make cluster-test` or `go build -o bin ./cmd/...`.
set -euo pipefail

BIN=${1:-bin}
GATEWAY_PORT=${GATEWAY_PORT:-9100}
SHARD_PORTS=(9101 9102 9103)
DURATION=${DURATION:-3s}
CLIENTS=${CLIENTS:-4}

for exe in waldo-server waldo-gateway waldo-loadgen; do
    if [ ! -x "$BIN/$exe" ]; then
        echo "missing $BIN/$exe (run: go build -o $BIN ./cmd/...)" >&2
        exit 1
    fi
done

WORK=$(mktemp -d /tmp/waldo-cluster.XXXXXX)
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

# wait_port host port: poll until something listens there.
wait_port() {
    for _ in $(seq 1 100); do
        if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then
            exec 3>&- 3<&-
            return 0
        fi
        sleep 0.1
    done
    echo "port $1 never came up" >&2
    return 1
}

SHARDS=""
for i in "${!SHARD_PORTS[@]}"; do
    port=${SHARD_PORTS[$i]}
    id="s$i"
    "$BIN/waldo-server" -addr "127.0.0.1:$port" -shard-id "$id" \
        -data-dir "$WORK/$id" -classifier nb \
        >"$WORK/$id.log" 2>&1 &
    PIDS+=($!)
    SHARDS="${SHARDS:+$SHARDS;}$id=http://127.0.0.1:$port"
done
for port in "${SHARD_PORTS[@]}"; do
    wait_port "$port"
done
echo "shards up: $SHARDS"

"$BIN/waldo-gateway" -addr "127.0.0.1:$GATEWAY_PORT" -shards "$SHARDS" \
    >"$WORK/gateway.log" 2>&1 &
PIDS+=($!)
wait_port "$GATEWAY_PORT"
echo "gateway up: http://127.0.0.1:$GATEWAY_PORT"

curl -fsS "http://127.0.0.1:$GATEWAY_PORT/healthz" || {
    echo "gateway /healthz failed; gateway log:" >&2
    cat "$WORK/gateway.log" >&2
    exit 1
}
echo

"$BIN/waldo-loadgen" -gateway "http://127.0.0.1:$GATEWAY_PORT" \
    -clients "$CLIENTS" -duration "$DURATION" -channels 46,47 || {
    echo "loadgen failed; logs:" >&2
    tail -20 "$WORK"/*.log >&2
    exit 1
}

echo
echo "cluster smoke OK"
