package benchharness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// TrajectoryFormat identifies the BENCH_E2E.json schema. Tools sniff
// this string (scripts/bench_regress.sh, cmd/waldo-benchjson) to tell an
// e2e trajectory from a micro-benchmark report.
const TrajectoryFormat = "bench_e2e/v1"

// Trajectory is the whole BENCH_E2E.json file: an append-only sequence
// of harness runs, so the perf history of the repo reads as one
// artifact instead of being overwritten per run.
type Trajectory struct {
	Format string `json:"format"`
	Runs   []Run  `json:"runs"`
}

// Run is one `make bench-e2e` invocation.
type Run struct {
	Time       string           `json:"time"`
	Goos       string           `json:"goos,omitempty"`
	Goarch     string           `json:"goarch,omitempty"`
	GOMAXPROCS int              `json:"gomaxprocs,omitempty"`
	Topologies []TopologyResult `json:"topologies"`
}

// TopologyResult groups one topology's tier sweep.
type TopologyResult struct {
	// Topology is "single" (one dbserver) or "cluster" (3 shards behind
	// a gateway).
	Topology string       `json:"topology"`
	Tiers    []TierResult `json:"tiers"`
}

// LoopStats is one open-loop stream's schedule accounting within a tier.
type LoopStats struct {
	OfferedOpsPerSec float64 `json:"offered_ops_per_sec"`
	Scheduled        uint64  `json:"scheduled"`
	Completed        uint64  `json:"completed"`
	Dropped          uint64  `json:"dropped"`
	Late             uint64  `json:"late"`
}

// TierResult is one load tier's full measurement.
type TierResult struct {
	Name            string  `json:"name"`
	DurationSeconds float64 `json:"duration_seconds"`
	// OfferedReadingsPerSec is the plan; AchievedReadingsPerSec is what
	// the server actually accepted. A widening gap is the saturation
	// signal micro-benchmarks cannot see.
	OfferedReadingsPerSec  float64 `json:"offered_readings_per_sec"`
	AchievedReadingsPerSec float64 `json:"achieved_readings_per_sec"`
	BatchSize              int     `json:"batch_size"`

	UploadLoop LoopStats `json:"upload_loop"`
	ModelLoop  LoopStats `json:"model_loop"`

	// Geo-query tiers (RunGeoTier / make bench-geo) populate these
	// instead of the upload/model loops; both kinds of tier share the
	// bench_e2e/v1 schema so one trajectory file can hold both sweeps.
	AvailabilityLoop *LoopStats `json:"availability_loop,omitempty"`
	RouteLoop        *LoopStats `json:"route_loop,omitempty"`
	// GridRebuilds counts availability-grid snapshots published across
	// all serving nodes during the tier — proof the rebuild machinery
	// was churning while the latency columns were measured.
	GridRebuilds uint64 `json:"grid_rebuilds,omitempty"`

	Endpoints []EndpointLatency `json:"endpoints"`
	GC        GCStats           `json:"gc"`
}

// EndpointLatency is one endpoint's latency distribution within a tier,
// measured from each operation's *scheduled* start (see openloop.go).
type EndpointLatency struct {
	Endpoint string  `json:"endpoint"`
	Count    uint64  `json:"count"`
	Errors   uint64  `json:"errors"`
	P50      float64 `json:"p50_seconds"`
	P95      float64 `json:"p95_seconds"`
	P99      float64 `json:"p99_seconds"`
	P999     float64 `json:"p999_seconds"`
	Max      float64 `json:"max_seconds"`
}

// GCStats is the runtime's GC activity during the tier (process-wide —
// in cluster topology that includes every in-process shard).
type GCStats struct {
	Cycles     uint64  `json:"cycles"`
	PauseCount uint64  `json:"pause_count"`
	PauseP50   float64 `json:"pause_p50_seconds"`
	PauseP95   float64 `json:"pause_p95_seconds"`
	PauseP99   float64 `json:"pause_p99_seconds"`
	PauseP999  float64 `json:"pause_p999_seconds"`
	PauseMax   float64 `json:"pause_max_seconds"`
	// PauseTotalApprox sums bucket midpoints (the runtime exposes a
	// histogram, not per-pause durations).
	PauseTotalApprox  float64 `json:"pause_total_approx_seconds"`
	AllocBytesPerOp   float64 `json:"alloc_bytes_per_op"`
	AllocObjectsPerOp float64 `json:"alloc_objects_per_op"`
}

// LoadTrajectory reads a BENCH_E2E.json file; a missing file yields an
// empty trajectory ready to append to.
func LoadTrajectory(path string) (*Trajectory, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Trajectory{Format: TrajectoryFormat}, nil
	}
	if err != nil {
		return nil, err
	}
	var t Trajectory
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if t.Format != TrajectoryFormat {
		return nil, fmt.Errorf("%s: format %q is not %q", path, t.Format, TrajectoryFormat)
	}
	return &t, nil
}

// Append adds a run to the trajectory.
func (t *Trajectory) Append(run Run) {
	t.Format = TrajectoryFormat
	t.Runs = append(t.Runs, run)
}

// Write persists the trajectory atomically (temp file + rename), so an
// interrupted bench run never truncates the perf history.
func (t *Trajectory) Write(path string) error {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), ".bench_e2e-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Flatten renders one run as sorted "key value-in-ns" lines — the
// regression-gate surface consumed by scripts/bench_regress.sh via
// `waldo-benchjson -extract-e2e`. Only the gated series appear: each
// endpoint's p99 and each tier's GC pause p99. idx selects the run
// (negative counts from the end: -1 is the latest).
func (t *Trajectory) Flatten(idx int) (string, error) {
	resolved := idx
	if resolved < 0 {
		resolved += len(t.Runs)
	}
	if resolved < 0 || resolved >= len(t.Runs) {
		return "", fmt.Errorf("trajectory has %d runs; run %d does not exist", len(t.Runs), idx)
	}
	idx = resolved
	var lines []string
	for _, topo := range t.Runs[idx].Topologies {
		for _, tier := range topo.Tiers {
			prefix := fmt.Sprintf("e2e/%s/%s", topo.Topology, tier.Name)
			for _, ep := range tier.Endpoints {
				if ep.Count == 0 {
					continue
				}
				lines = append(lines, fmt.Sprintf("%s/%s/p99 %.0f", prefix, ep.Endpoint, ep.P99*1e9))
			}
			if tier.GC.PauseCount > 0 {
				lines = append(lines, fmt.Sprintf("%s/gc_pause/p99 %.0f", prefix, tier.GC.PauseP99*1e9))
			}
		}
	}
	if len(lines) == 0 {
		return "", fmt.Errorf("run %d has no measurements to gate", idx)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n", nil
}

// RenderMarkdown renders the latest run as the README's perf-trajectory
// table.
func (t *Trajectory) RenderMarkdown() (string, error) {
	if len(t.Runs) == 0 {
		return "", fmt.Errorf("trajectory has no runs")
	}
	run := t.Runs[len(t.Runs)-1]
	var b strings.Builder
	b.WriteString("| topology | tier | offered rd/s | achieved rd/s | endpoint | p50 | p99 | p999 | GC pause p99 |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|\n")
	for _, topo := range run.Topologies {
		for _, tier := range topo.Tiers {
			gc := fmtDur(tier.GC.PauseP99)
			if tier.GC.PauseCount == 0 {
				gc = "—"
			}
			first := true
			for _, ep := range tier.Endpoints {
				if ep.Count == 0 {
					continue
				}
				tcol, ocol, acol, gcol := "", "", "", ""
				if first {
					tcol = tier.Name
					ocol = fmt.Sprintf("%.0f", tier.OfferedReadingsPerSec)
					acol = fmt.Sprintf("%.0f", tier.AchievedReadingsPerSec)
					gcol = gc
					first = false
				}
				fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | %s | %s | %s | %s |\n",
					topo.Topology, tcol, ocol, acol, ep.Endpoint,
					fmtDur(ep.P50), fmtDur(ep.P99), fmtDur(ep.P999), gcol)
			}
		}
	}
	return b.String(), nil
}

// fmtDur renders seconds as a compact human duration.
func fmtDur(s float64) string {
	switch {
	case s <= 0:
		return "0"
	case s < 1e-3:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}
