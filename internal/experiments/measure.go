package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/dsp"
	"github.com/wsdetect/waldo/internal/ml/validate"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
)

// AntennaCorrectionDB is the paper's §2.1 uniform correction (≈7.5 dB, the
// Hata a(h_m) for the 8 m antenna-height gap).
func AntennaCorrectionDB() float64 { return rfenv.AntennaHeightGapCorrectionDB() }

// labelMetrics compares predicted labels to truth labels.
func labelMetrics(pred, truth []dataset.Label) (validate.Metrics, error) {
	var m validate.Metrics
	if len(pred) != len(truth) {
		return m, fmt.Errorf("experiments: %d predictions vs %d truths", len(pred), len(truth))
	}
	toClass := func(l dataset.Label) int {
		if l == dataset.LabelSafe {
			return 1
		}
		return -1
	}
	for i := range pred {
		m.Count(toClass(pred[i]), toClass(truth[i]))
	}
	return m, nil
}

// --- §2.2: safety and efficiency of low-cost sensors ---

// SensorAccuracyRow is one channel's low-cost-sensor accuracy vs the
// analyzer ground truth.
type SensorAccuracyRow struct {
	Channel rfenv.Channel
	Kind    sensor.Kind
	// Misdetection is the FN rate (white space dismissed — efficiency).
	Misdetection float64
	// FalseAlarm is the FP rate (occupied declared vacant — safety).
	FalseAlarm float64
}

// Sec22Result reproduces the §2.2 numbers: RTL-SDR 39.8 % misdetection /
// 0.8 % false alarm; USRP 20.9 % / 5.2 %.
type Sec22Result struct {
	Rows []SensorAccuracyRow
	// Overall rates per sensor, aggregated over all nine channels.
	Overall map[sensor.Kind]validate.Metrics
}

// Sec22SafetyEfficiency labels each low-cost sensor's readings with
// Algorithm 1 and scores them against the analyzer's labels.
func (s *Suite) Sec22SafetyEfficiency() (*Sec22Result, error) {
	camp, err := s.Campaign()
	if err != nil {
		return nil, err
	}
	res := &Sec22Result{Overall: map[sensor.Kind]validate.Metrics{}}
	for _, kind := range []sensor.Kind{sensor.KindRTLSDR, sensor.KindUSRPB200} {
		var overall validate.Metrics
		for _, ch := range camp.Channels {
			truth, err := s.GroundTruth(ch, 0)
			if err != nil {
				return nil, err
			}
			pred, err := s.Labels(ch, kind, 0)
			if err != nil {
				return nil, err
			}
			m, err := labelMetrics(pred, truth)
			if err != nil {
				return nil, err
			}
			overall.Add(m)
			res.Rows = append(res.Rows, SensorAccuracyRow{
				Channel:      ch,
				Kind:         kind,
				Misdetection: m.FNRate(),
				FalseAlarm:   m.FPRate(),
			})
		}
		res.Overall[kind] = overall
	}
	return res, nil
}

// Render implements the experiment report.
func (r *Sec22Result) Render() string {
	var b strings.Builder
	b.WriteString("§2.2 Low-cost sensor safety/efficiency vs spectrum analyzer\n")
	b.WriteString("(paper: RTL misdetection 39.8%, false alarm 0.8%; USRP 20.9%, 5.2%)\n")
	fmt.Fprintf(&b, "%-9s %-12s %12s %12s\n", "channel", "sensor", "misdetect", "false-alarm")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-9v %-12v %11.1f%% %11.1f%%\n",
			row.Channel, row.Kind, row.Misdetection*100, row.FalseAlarm*100)
	}
	for _, kind := range []sensor.Kind{sensor.KindRTLSDR, sensor.KindUSRPB200} {
		m := r.Overall[kind]
		fmt.Fprintf(&b, "OVERALL   %-12v %11.1f%% %11.1f%%\n", kind, m.FNRate()*100, m.FPRate()*100)
	}
	return b.String()
}

// --- Fig. 4: spectrum database false negatives ---

// Fig4Row is one channel's database FN rate.
type Fig4Row struct {
	Channel rfenv.Channel
	// FNPlain is the database miss rate against ground truth at the
	// measurement height.
	FNPlain float64
	// FNCorrected is the same with the +7.5 dB antenna correction
	// applied to the ground-truth labeling (Fig. 4b).
	FNCorrected float64
	// FPPlain is the database false-vacancy rate (the ~2 % the paper
	// reports in §4.4).
	FPPlain float64
}

// Fig4Result reproduces Fig. 4: the over-protection of a conventional
// propagation-model spectrum database.
type Fig4Result struct {
	Rows []Fig4Row
	// MeanFNPlain and MeanFNCorrected average over channels.
	MeanFNPlain     float64
	MeanFNCorrected float64
	MeanFPPlain     float64
}

// Fig4 queries the generic-model database at every reading location and
// scores it against the analyzer ground truth.
func (s *Suite) Fig4() (*Fig4Result, error) {
	camp, err := s.Campaign()
	if err != nil {
		return nil, err
	}
	env, err := s.Env()
	if err != nil {
		return nil, err
	}
	db, err := newDefaultSpecDB(env)
	if err != nil {
		return nil, err
	}
	corr := AntennaCorrectionDB()

	res := &Fig4Result{}
	var sumPlain, sumCorr, sumFP float64
	for _, ch := range camp.Channels {
		readings := camp.Readings(ch, sensor.KindSpectrumAnalyzer)
		pred := make([]dataset.Label, len(readings))
		for i := range readings {
			if db.Available(ch, readings[i].Loc) {
				pred[i] = dataset.LabelSafe
			} else {
				pred[i] = dataset.LabelNotSafe
			}
		}
		truth, err := s.GroundTruth(ch, 0)
		if err != nil {
			return nil, err
		}
		mPlain, err := labelMetrics(pred, truth)
		if err != nil {
			return nil, err
		}
		truthCorr, err := s.GroundTruth(ch, corr)
		if err != nil {
			return nil, err
		}
		mCorr, err := labelMetrics(pred, truthCorr)
		if err != nil {
			return nil, err
		}
		row := Fig4Row{
			Channel:     ch,
			FNPlain:     mPlain.FNRate(),
			FNCorrected: mCorr.FNRate(),
			FPPlain:     mPlain.FPRate(),
		}
		res.Rows = append(res.Rows, row)
		sumPlain += row.FNPlain
		sumCorr += row.FNCorrected
		sumFP += row.FPPlain
	}
	n := float64(len(res.Rows))
	res.MeanFNPlain = sumPlain / n
	res.MeanFNCorrected = sumCorr / n
	res.MeanFPPlain = sumFP / n
	return res, nil
}

// Render implements the experiment report.
func (r *Fig4Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 4: spectrum database FN rate vs analyzer-measured white space\n")
	fmt.Fprintf(&b, "%-9s %14s %18s %12s\n", "channel", "FN (ground)", "FN (ant. corr.)", "FP (ground)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-9v %13.3f %17.3f %11.3f\n", row.Channel, row.FNPlain, row.FNCorrected, row.FPPlain)
	}
	fmt.Fprintf(&b, "MEAN      %13.3f %17.3f %11.3f\n", r.MeanFNPlain, r.MeanFNCorrected, r.MeanFPPlain)
	return b.String()
}

// --- Fig. 5: sensor sensitivity CDFs ---

// Fig5Level is the reading distribution for one wired input level.
type Fig5Level struct {
	// InputDBm is the signal-generator level; NaN marks the no-signal
	// run.
	InputDBm float64
	// Readings is the empirical CDF of raw readings.
	Readings *dsp.ECDF
	// KSFromNoSignal is the Kolmogorov–Smirnov distance to the
	// no-signal distribution: ≈0 means the level is indistinguishable
	// from the floor.
	KSFromNoSignal float64
}

// Fig5Sensor is one device's sensitivity sweep.
type Fig5Sensor struct {
	Kind   sensor.Kind
	Levels []Fig5Level
	// DetectableFloorDBm is the lowest swept level still clearly
	// distinguishable (KS ≥ 0.5) from no-signal.
	DetectableFloorDBm float64
}

// Fig5Result reproduces the calibration sweep of Fig. 5.
type Fig5Result struct {
	Sensors []Fig5Sensor
}

// Fig5SensorSensitivity sweeps a signal generator into each sensor and
// records reading CDFs (paper levels: USRP −50…−103; RTL −70…−98; both
// with a terminated no-signal run).
func (s *Suite) Fig5SensorSensitivity() (*Fig5Result, error) {
	const perLevel = 600
	sweeps := map[sensor.Kind][]float64{
		sensor.KindUSRPB200: {-50, -80, -94, -100, -103, -106},
		sensor.KindRTLSDR:   {-70, -80, -90, -94, -96, -98, -101},
	}
	rng := rand.New(rand.NewSource(s.cfg.Seed + 50))
	res := &Fig5Result{}
	for _, kind := range []sensor.Kind{sensor.KindUSRPB200, sensor.KindRTLSDR} {
		spec, err := sensor.SpecFor(kind)
		if err != nil {
			return nil, err
		}
		dev := sensor.NewDevice(spec)
		collect := func(level float64) (*dsp.ECDF, error) {
			vals := make([]float64, perLevel)
			for i := range vals {
				obs, err := dev.ObserveWired(rng, level)
				if err != nil {
					return nil, err
				}
				vals[i] = obs.RawDB
			}
			return dsp.NewECDF(vals), nil
		}
		noSignal, err := collect(math.Inf(-1))
		if err != nil {
			return nil, err
		}
		fs := Fig5Sensor{Kind: kind, DetectableFloorDBm: math.Inf(1)}
		for _, level := range sweeps[kind] {
			ecdf, err := collect(level)
			if err != nil {
				return nil, err
			}
			ks := ecdf.KolmogorovSmirnov(noSignal)
			fs.Levels = append(fs.Levels, Fig5Level{InputDBm: level, Readings: ecdf, KSFromNoSignal: ks})
			if ks >= 0.5 && level < fs.DetectableFloorDBm {
				fs.DetectableFloorDBm = level
			}
		}
		fs.Levels = append(fs.Levels, Fig5Level{InputDBm: math.NaN(), Readings: noSignal, KSFromNoSignal: 0})
		res.Sensors = append(res.Sensors, fs)
	}
	return res, nil
}

// Render implements the experiment report.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 5: CDFs of raw readings for calibrated generator levels\n")
	b.WriteString("(paper: RTL-SDR detects down to ≈−98 dBm, USRP to ≈−103 dBm)\n")
	for _, fs := range r.Sensors {
		fmt.Fprintf(&b, "%v (detectable floor ≈ %.0f dBm):\n", fs.Kind, fs.DetectableFloorDBm)
		for _, lv := range fs.Levels {
			name := "no-signal"
			if !math.IsNaN(lv.InputDBm) {
				name = fmt.Sprintf("%.0f dBm", lv.InputDBm)
			}
			fmt.Fprintf(&b, "  %-10s median=%8.2f dB  p10=%8.2f  p90=%8.2f  KS(no-sig)=%.2f\n",
				name, lv.Readings.Quantile(0.5), lv.Readings.Quantile(0.1),
				lv.Readings.Quantile(0.9), lv.KSFromNoSignal)
		}
	}
	return b.String()
}
