package geo

// BBox is an axis-aligned bounding box in WGS-84 coordinates. It is assumed
// not to cross the antimeridian, which holds for all metro-scale areas this
// library targets.
type BBox struct {
	MinLat float64
	MinLon float64
	MaxLat float64
	MaxLon float64
}

// NewBBoxAround returns the bounding box of a square of the given side
// length (meters) centered at c.
func NewBBoxAround(c Point, sideM float64) BBox {
	half := sideM / 2
	n := c.Offset(0, half)
	s := c.Offset(180, half)
	e := c.Offset(90, half)
	w := c.Offset(270, half)
	return BBox{MinLat: s.Lat, MaxLat: n.Lat, MinLon: w.Lon, MaxLon: e.Lon}
}

// Contains reports whether p lies within the box (inclusive).
func (b BBox) Contains(p Point) bool {
	return p.Lat >= b.MinLat && p.Lat <= b.MaxLat &&
		p.Lon >= b.MinLon && p.Lon <= b.MaxLon
}

// Center returns the box center.
func (b BBox) Center() Point {
	return Point{Lat: (b.MinLat + b.MaxLat) / 2, Lon: (b.MinLon + b.MaxLon) / 2}
}

// Corners returns the SW and NE corners.
func (b BBox) Corners() (sw, ne Point) {
	return Point{Lat: b.MinLat, Lon: b.MinLon}, Point{Lat: b.MaxLat, Lon: b.MaxLon}
}

// Expand grows the box by marginM meters on every side.
func (b BBox) Expand(marginM float64) BBox {
	sw, ne := b.Corners()
	sw = sw.Offset(180, marginM).Offset(270, marginM)
	ne = ne.Offset(0, marginM).Offset(90, marginM)
	return BBox{MinLat: sw.Lat, MinLon: sw.Lon, MaxLat: ne.Lat, MaxLon: ne.Lon}
}

// Union returns the smallest box containing both b and o.
func (b BBox) Union(o BBox) BBox {
	return BBox{
		MinLat: min(b.MinLat, o.MinLat),
		MinLon: min(b.MinLon, o.MinLon),
		MaxLat: max(b.MaxLat, o.MaxLat),
		MaxLon: max(b.MaxLon, o.MaxLon),
	}
}
