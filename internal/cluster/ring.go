package cluster

import (
	"fmt"
	"sort"
)

// RingConfig parameterizes ring construction. Two rings built from the
// same config and member list place every key identically — in this
// process, after a restart, or on another machine.
type RingConfig struct {
	// VNodes is the number of virtual nodes per member; more vnodes mean
	// lower placement skew at the cost of a larger (still tiny) table.
	// 0 means 128.
	VNodes int
	// Seed perturbs every ring position. Deploys fix it once; changing
	// it reshuffles all placements (a full data migration).
	Seed uint64
}

// Ring is an immutable consistent-hash ring: each member contributes
// VNodes points on a 64-bit circle, and a key belongs to the member
// owning the first point at or after the key's hash (wrapping at the
// top). Membership changes are modeled by building a new Ring with the
// new member list — the consistent-hashing guarantee is that the new
// ring moves only ~1/N of the keyspace, and every moved key moves to or
// from the changed member, never between surviving ones (the ring tests
// pin both properties).
type Ring struct {
	cfg    RingConfig
	nodes  []string
	points []ringPoint // sorted by hash
}

// ringPoint is one virtual node: a position and the index of its owner
// in Ring.nodes.
type ringPoint struct {
	hash uint64
	node int32
}

// NewRing builds a ring over the given members. The member list may
// arrive in any order; it is sorted before placement so that
// ownership depends only on the set.
func NewRing(cfg RingConfig, nodes []string) (*Ring, error) {
	if cfg.VNodes <= 0 {
		cfg.VNodes = 128
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("cluster: duplicate ring node %q", sorted[i])
		}
	}
	r := &Ring{
		cfg:    cfg,
		nodes:  sorted,
		points: make([]ringPoint, 0, cfg.VNodes*len(sorted)),
	}
	for ni, node := range sorted {
		for v := 0; v < cfg.VNodes; v++ {
			r.points = append(r.points, ringPoint{hash: vnodeHash(cfg.Seed, node, v), node: int32(ni)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A full 64-bit hash collision between vnodes is vanishingly
		// rare; break the tie by owner index so placement stays
		// deterministic even then.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// Nodes returns the members in sorted order (a copy).
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// VNodes returns the per-member virtual node count in effect.
func (r *Ring) VNodes() int { return r.cfg.VNodes }

// Owner returns the member owning a key.
func (r *Ring) Owner(k RouteKey) string {
	return r.nodes[r.points[r.search(keyHash(r.cfg.Seed, k))].node]
}

// OwnerN returns the first n distinct members encountered walking
// clockwise from the key's position — the owner first, then the natural
// replica placement order. n is clamped to the member count.
func (r *Ring) OwnerN(k RouteKey, n int) []string {
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	if n <= 0 {
		return nil
	}
	out := make([]string, 0, n)
	seen := make(map[int32]bool, n)
	for i, at := 0, r.search(keyHash(r.cfg.Seed, k)); i < len(r.points) && len(out) < n; i++ {
		p := r.points[(at+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, r.nodes[p.node])
		}
	}
	return out
}

// search returns the index of the first point at or after h, wrapping to
// 0 past the top of the circle.
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}
