// Command waldo-doccheck enforces godoc coverage: every exported
// package-level identifier, method, and struct field in the packages it
// is pointed at must carry a doc comment. It is the executable form of
// the "public surface means documented surface" convention (DESIGN.md
// §11) — scripts/doccheck.sh runs it from `make verify` over the
// packages whose exported API is a contract (the availability grid and
// the device client), so an undocumented identifier fails CI instead of
// surviving review.
//
// Usage:
//
//	waldo-doccheck ./internal/geoindex ./internal/client
//
// Exit status 0 when every exported identifier is documented, 1 when
// any is not (each undocumented identifier is listed as
// file:line: name), 2 on usage or parse errors.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: waldo-doccheck PKGDIR...")
		os.Exit(2)
	}
	var problems []problem
	for _, dir := range os.Args[1:] {
		ps, err := checkDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "waldo-doccheck:", err)
			os.Exit(2)
		}
		problems = append(problems, ps...)
	}
	if len(problems) == 0 {
		return
	}
	sort.Slice(problems, func(i, j int) bool { return problems[i].pos < problems[j].pos })
	for _, p := range problems {
		fmt.Printf("%s: undocumented exported %s %s\n", p.pos, p.kind, p.name)
	}
	fmt.Fprintf(os.Stderr, "waldo-doccheck: %d undocumented exported identifiers\n", len(problems))
	os.Exit(1)
}

// problem is one undocumented exported identifier.
type problem struct {
	pos  string // file:line
	kind string // "func", "method", "type", "const", "var", "field"
	name string
}

// checkDir parses every non-test .go file in dir and reports exported
// identifiers lacking doc comments.
func checkDir(dir string) ([]problem, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", dir, err)
	}
	var problems []problem
	add := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		problems = append(problems, problem{
			pos:  fmt.Sprintf("%s:%d", p.Filename, p.Line),
			kind: kind,
			name: name,
		})
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					checkFunc(d, add)
				case *ast.GenDecl:
					checkGen(d, add)
				}
			}
		}
	}
	return problems, nil
}

// checkFunc flags exported functions and exported methods on exported
// receivers. Methods on unexported types are internal surface even when
// capitalized (interface satisfaction), so they pass undocumented.
func checkFunc(d *ast.FuncDecl, add func(token.Pos, string, string)) {
	if !d.Name.IsExported() || d.Doc != nil {
		return
	}
	kind, name := "func", d.Name.Name
	if d.Recv != nil && len(d.Recv.List) == 1 {
		recv := receiverName(d.Recv.List[0].Type)
		if recv == "" || !ast.IsExported(recv) {
			return
		}
		kind, name = "method", recv+"."+d.Name.Name
	}
	add(d.Pos(), kind, name)
}

// receiverName unwraps *T / T / generic T[P] receivers to the type name.
func receiverName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.StarExpr:
		return receiverName(t.X)
	case *ast.IndexExpr:
		return receiverName(t.X)
	case *ast.IndexListExpr:
		return receiverName(t.X)
	case *ast.Ident:
		return t.Name
	}
	return ""
}

// checkGen flags exported names in type/const/var declarations. A doc
// comment may sit on the declaration group, the individual spec, or (for
// consts, vars, and fields) as a trailing line comment — any of the
// places godoc renders from.
func checkGen(d *ast.GenDecl, add func(token.Pos, string, string)) {
	groupDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
				add(s.Pos(), "type", s.Name.Name)
			}
			if s.Name.IsExported() {
				checkTypeBody(s, add)
			}
		case *ast.ValueSpec:
			documented := groupDoc || s.Doc != nil || s.Comment != nil
			for _, name := range s.Names {
				if name.IsExported() && !documented {
					add(name.Pos(), kindOf(d.Tok), name.Name)
				}
			}
		}
	}
}

func kindOf(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}

// checkTypeBody flags undocumented exported struct fields and interface
// methods of an exported type — the parts of a type's contract godoc
// renders indented under it.
func checkTypeBody(s *ast.TypeSpec, add func(token.Pos, string, string)) {
	switch t := s.Type.(type) {
	case *ast.StructType:
		for _, f := range t.Fields.List {
			if f.Doc != nil || f.Comment != nil {
				continue
			}
			for _, name := range f.Names {
				if name.IsExported() {
					add(name.Pos(), "field", s.Name.Name+"."+name.Name)
				}
			}
		}
	case *ast.InterfaceType:
		for _, m := range t.Methods.List {
			if m.Doc != nil || m.Comment != nil {
				continue
			}
			for _, name := range m.Names {
				if name.IsExported() {
					add(name.Pos(), "method", s.Name.Name+"."+name.Name)
				}
			}
		}
	}
}
