package wlog

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/wsdetect/waldo/internal/telemetry"
)

// lockedBuf is a goroutine-safe strings.Builder for concurrent tests.
type lockedBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *lockedBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "WARN": LevelWarn,
		"warning": LevelWarn, "Error": LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted \"loud\"")
	}
}

func TestLineFormatAndLevels(t *testing.T) {
	var buf lockedBuf
	reg := telemetry.New()
	lg := New(Options{W: &buf, Min: LevelInfo, Metrics: reg}).Named("dbserver")

	lg.Debug(context.Background(), "too_quiet") // below Min: dropped
	lg.Warn(context.Background(), "upload_screen_reject",
		"channel", 47,
		"err", errors.New("no model"),
		"took", 1500*time.Millisecond,
		"ratio", 0.25,
		"ok", false,
		"note", "two words",
	)

	out := buf.String()
	if strings.Contains(out, "too_quiet") {
		t.Fatalf("debug line leaked past Min=info:\n%s", out)
	}
	line := strings.TrimSpace(out)
	for _, want := range []string{
		" warn dbserver upload_screen_reject ",
		"channel=47",
		`err="no model"`,
		"took=1.5s",
		"ratio=0.25",
		"ok=false",
		`note="two words"`,
	} {
		if !strings.Contains(line, want) {
			t.Errorf("line missing %q:\n%s", want, line)
		}
	}
	if !strings.HasSuffix(line, `note="two words"`) {
		t.Errorf("unexpected trailing content:\n%s", line)
	}
	if got := reg.Counter("waldo_log_events_total", "", "level", "warn").Value(); got != 1 {
		t.Fatalf("waldo_log_events_total{level=warn} = %d, want 1", got)
	}
	if got := reg.Counter("waldo_log_events_total", "", "level", "debug").Value(); got != 0 {
		t.Fatalf("waldo_log_events_total{level=debug} = %d, want 0", got)
	}

	if !lg.Enabled(LevelWarn) || lg.Enabled(LevelDebug) {
		t.Fatal("Enabled disagrees with Min")
	}
}

func TestDanglingKeyIsSurfaced(t *testing.T) {
	var buf lockedBuf
	lg := New(Options{W: &buf})
	lg.Info(context.Background(), "oops", "key_without_value")
	if !strings.Contains(buf.String(), "!BADKEY=key_without_value") {
		t.Fatalf("dangling key not surfaced:\n%s", buf.String())
	}
}

func TestTraceCorrelation(t *testing.T) {
	var buf lockedBuf
	reg := telemetry.New()
	lg := New(Options{W: &buf, Metrics: reg})

	sp := reg.StartTrace("/v1/readings", telemetry.SpanContext{})
	sc := sp.Context()
	ctx := telemetry.ContextWithSpan(context.Background(), sp)
	lg.Error(ctx, "wal_wedged", "path", "/tmp/x")
	sp.End()

	line := buf.String()
	if !strings.Contains(line, "trace="+sc.Trace.String()) ||
		!strings.Contains(line, "span="+sc.Span.String()) {
		t.Fatalf("line not trace-correlated:\n%s", line)
	}

	// No span in ctx: no trace noise appended.
	buf.b.Reset()
	lg.Error(context.Background(), "wal_wedged", "path", "/tmp/x")
	if strings.Contains(buf.String(), "trace=") {
		t.Fatalf("untraced line grew a trace field:\n%s", buf.String())
	}
}

func TestRateLimitSuppressionAndRecovery(t *testing.T) {
	var buf lockedBuf
	reg := telemetry.New()
	clock := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	now := func() time.Time { return clock }
	lg := New(Options{W: &buf, Metrics: reg, RatePerKey: 1, Burst: 3, Now: now})

	// Burst drains after 3 lines; the rest of the flood is suppressed.
	for i := 0; i < 10; i++ {
		lg.Warn(context.Background(), "failover", "try", i)
	}
	if got := strings.Count(buf.String(), "failover"); got != 3 {
		t.Fatalf("flood emitted %d lines, want burst of 3:\n%s", got, buf.String())
	}
	if got := reg.Counter("waldo_log_suppressed_total", "").Value(); got != 7 {
		t.Fatalf("waldo_log_suppressed_total = %d, want 7", got)
	}

	// Another event key on the same component is untouched by the flood.
	lg.Warn(context.Background(), "shed", "x", 1)
	if !strings.Contains(buf.String(), "shed") {
		t.Fatal("independent event key starved by flood")
	}

	// After the bucket refills, the next line reports what was dropped.
	clock = clock.Add(5 * time.Second)
	lg.Warn(context.Background(), "failover", "try", 11)
	if !strings.Contains(buf.String(), "suppressed=7") {
		t.Fatalf("recovery line missing suppressed count:\n%s", buf.String())
	}
}

func TestNamedViewsShareCoreButNotLimits(t *testing.T) {
	var buf lockedBuf
	clock := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	lg := New(Options{W: &buf, RatePerKey: 1, Burst: 1, Now: func() time.Time { return clock }})
	a, b := lg.Named("gateway"), lg.Named("repl")
	a.Info(context.Background(), "tick")
	a.Info(context.Background(), "tick") // suppressed: gateway/tick bucket dry
	b.Info(context.Background(), "tick") // own bucket: emitted
	out := buf.String()
	if strings.Count(out, "gateway tick") != 1 || strings.Count(out, "repl tick") != 1 {
		t.Fatalf("per-component buckets broken:\n%s", out)
	}
}

func TestNilSafety(t *testing.T) {
	var lg *Logger
	lg.Debug(context.Background(), "x")
	lg.Info(context.Background(), "x", "k", "v")
	lg.Warn(nil, "x") //nolint:staticcheck // nil ctx must be tolerated too
	lg.Error(context.Background(), "x")
	if lg.Enabled(LevelError) {
		t.Fatal("nil logger claims to be enabled")
	}
	if lg.Named("sub") != nil {
		t.Fatal("Named on nil should stay nil")
	}
}

func TestConcurrentLogging(t *testing.T) {
	var buf lockedBuf
	reg := telemetry.New()
	lg := New(Options{W: &buf, Metrics: reg, RatePerKey: -1}) // unlimited
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sub := lg.Named(fmt.Sprintf("c%d", w))
			for i := 0; i < 100; i++ {
				sub.Info(context.Background(), "evt", "i", i)
			}
		}(w)
	}
	wg.Wait()
	if got := strings.Count(buf.String(), "\n"); got != 800 {
		t.Fatalf("emitted %d lines, want 800 (lines torn or lost)", got)
	}
	if got := reg.Counter("waldo_log_events_total", "", "level", "info").Value(); got != 800 {
		t.Fatalf("counter = %d, want 800", got)
	}
}
