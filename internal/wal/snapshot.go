package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path/filepath"

	"github.com/wsdetect/waldo/internal/core"
	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
)

// Snapshot file format (little-endian), CRC-32 over everything before the
// trailer:
//
//	magic "WLSN" | u16 codec version | u16 channel | u8 sensor |
//	u64 segment epoch | u32 model version | u32 trained count |
//	u32 reading count | readings (fixed-size core codec) | u32 CRC-32
var snapMagic = [4]byte{'W', 'L', 'S', 'N'}

const (
	snapVersion     uint16 = 1
	snapshotName           = "snapshot.bin"
	snapshotTmpName        = "snapshot.bin.tmp"
)

// snapshotState is the decoded content of a snapshot file.
type snapshotState struct {
	epoch        uint64
	modelVersion int
	trainedCount int
	readings     []dataset.Reading
}

// encodeSnapshot renders the snapshot file content.
func encodeSnapshot(ch rfenv.Channel, kind sensor.Kind, st snapshotState) []byte {
	buf := make([]byte, 0, 29+len(st.readings)*core.ReadingWireSize+4)
	buf = append(buf, snapMagic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, snapVersion)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(ch))
	buf = append(buf, byte(kind))
	buf = binary.LittleEndian.AppendUint64(buf, st.epoch)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(st.modelVersion))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(st.trainedCount))
	buf = core.AppendReadingsWire(buf, st.readings)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// decodeSnapshot parses and validates a snapshot file for the given
// store identity.
func decodeSnapshot(data []byte, ch rfenv.Channel, kind sensor.Kind) (snapshotState, error) {
	var st snapshotState
	if len(data) < 25+4 {
		return st, fmt.Errorf("wal: snapshot truncated: %d bytes", len(data))
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return st, fmt.Errorf("wal: snapshot CRC mismatch")
	}
	if [4]byte(body[:4]) != snapMagic {
		return st, fmt.Errorf("wal: bad snapshot magic %q", body[:4])
	}
	if v := binary.LittleEndian.Uint16(body[4:]); v != snapVersion {
		return st, fmt.Errorf("wal: unsupported snapshot version %d", v)
	}
	if got := rfenv.Channel(binary.LittleEndian.Uint16(body[6:])); got != ch {
		return st, fmt.Errorf("wal: snapshot is for channel %d, store is channel %d", got, ch)
	}
	if got := sensor.Kind(body[8]); got != kind {
		return st, fmt.Errorf("wal: snapshot is for sensor %d, store is sensor %d", got, kind)
	}
	st.epoch = binary.LittleEndian.Uint64(body[9:])
	st.modelVersion = int(binary.LittleEndian.Uint32(body[17:]))
	st.trainedCount = int(binary.LittleEndian.Uint32(body[21:]))
	readings, rest, err := core.DecodeReadingsWire(body[25:])
	if err != nil {
		return st, fmt.Errorf("wal: snapshot readings: %w", err)
	}
	if len(rest) != 0 {
		return st, fmt.Errorf("wal: snapshot has %d trailing bytes", len(rest))
	}
	st.readings = readings
	return st, nil
}

// writeSnapshot atomically replaces the store's snapshot file: temp file,
// fsync, rename, directory fsync. A crash at any point leaves either the
// old or the new snapshot intact, never a partial one.
func writeSnapshot(dir string, fs FS, ch rfenv.Channel, kind sensor.Kind, st snapshotState) error {
	data := encodeSnapshot(ch, kind, st)
	tmp := filepath.Join(dir, snapshotTmpName)
	f, err := fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: create snapshot temp: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("wal: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: close snapshot: %w", err)
	}
	if err := fs.Rename(tmp, filepath.Join(dir, snapshotName)); err != nil {
		return fmt.Errorf("wal: install snapshot: %w", err)
	}
	if err := fs.SyncDir(dir); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}
