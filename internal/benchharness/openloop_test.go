package benchharness

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

// TestOpenLoopHoldsOfferedRate runs a fast no-op workload and asserts the
// scheduler dispatches approximately Rate × Duration operations, with
// nothing dropped and every send accounted for.
func TestOpenLoopHoldsOfferedRate(t *testing.T) {
	var ran atomic.Uint64
	stats := RunOpenLoop(context.Background(), OpenLoopConfig{
		Rate:     2000,
		Workers:  8,
		Duration: 500 * time.Millisecond,
	}, func(_ int, _ time.Time) { ran.Add(1) })

	want := uint64(2000 * 0.5)
	if stats.Scheduled < want*8/10 || stats.Scheduled > want*12/10 {
		t.Errorf("Scheduled = %d, want ≈%d", stats.Scheduled, want)
	}
	if stats.Dropped != 0 {
		t.Errorf("Dropped = %d on an instant workload", stats.Dropped)
	}
	if stats.Completed != stats.Scheduled-stats.Dropped {
		t.Errorf("Completed = %d, Scheduled-Dropped = %d", stats.Completed, stats.Scheduled-stats.Dropped)
	}
	if ran.Load() != stats.Completed {
		t.Errorf("op ran %d times, Completed = %d", ran.Load(), stats.Completed)
	}
}

// TestOpenLoopCountsDroppedAndLate saturates a single slow worker with a
// far higher offered rate: the bounded backlog must shed sends (dropped)
// and everything that does run starts behind schedule (late), instead of
// the scheduler silently slowing the offer to the worker's pace.
func TestOpenLoopCountsDroppedAndLate(t *testing.T) {
	stats := RunOpenLoop(context.Background(), OpenLoopConfig{
		Rate:          1000,
		Workers:       1,
		MaxBacklog:    2,
		Duration:      300 * time.Millisecond,
		LateThreshold: time.Millisecond,
	}, func(_ int, _ time.Time) { time.Sleep(10 * time.Millisecond) })

	if stats.Dropped == 0 {
		t.Error("saturated backlog dropped nothing — offered load is being hidden")
	}
	if stats.Late == 0 {
		t.Error("10ms ops at a 1ms schedule recorded no late sends")
	}
	if stats.Completed+stats.Dropped != stats.Scheduled {
		t.Errorf("accounting leak: completed %d + dropped %d != scheduled %d",
			stats.Completed, stats.Dropped, stats.Scheduled)
	}
	// The point of open loop: ~30 completions against ~300 scheduled.
	if stats.Completed >= stats.Scheduled/2 {
		t.Errorf("Completed = %d of %d scheduled; the slow worker cannot have kept up", stats.Completed, stats.Scheduled)
	}
}

// TestOpenLoopLatencyFromSchedule asserts the coordinated-omission
// contract end to end: with one worker busy 20ms per op at a 5ms
// schedule, latency measured from the scheduled time must grow with the
// queue — the max observed must be well above a single op's service time.
func TestOpenLoopLatencyFromSchedule(t *testing.T) {
	var maxNs atomic.Int64
	RunOpenLoop(context.Background(), OpenLoopConfig{
		Rate:       200,
		Workers:    1,
		MaxBacklog: 64,
		Duration:   250 * time.Millisecond,
	}, func(_ int, sched time.Time) {
		time.Sleep(20 * time.Millisecond)
		lat := time.Since(sched).Nanoseconds()
		for {
			cur := maxNs.Load()
			if lat <= cur || maxNs.CompareAndSwap(cur, lat) {
				break
			}
		}
	})
	if got := time.Duration(maxNs.Load()); got < 40*time.Millisecond {
		t.Errorf("max latency from schedule = %v; queueing delay is being omitted (service time is 20ms)", got)
	}
}

// TestOpenLoopCancel stops the stream early via ctx.
func TestOpenLoopCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	RunOpenLoop(ctx, OpenLoopConfig{Rate: 10, Workers: 2, Duration: 30 * time.Second},
		func(_ int, _ time.Time) {})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancel did not stop the stream (ran %v)", elapsed)
	}
}
