package e2e

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/wsdetect/waldo/internal/faultinject"
)

// baseSeed is shared by every chaos run in this file: byte-identity is
// only meaningful against a baseline with the same simulation seed.
const baseSeed = 42

var (
	baseOnce sync.Once
	baseRes  *Result
	baseErr  error
)

// baseline runs the fault-free reference once per test binary.
func baseline(t *testing.T) *Result {
	t.Helper()
	baseOnce.Do(func() {
		baseRes, baseErr = Run(Config{Seed: baseSeed})
	})
	if baseErr != nil {
		t.Fatalf("baseline run: %v", baseErr)
	}
	return baseRes
}

func TestBaselineSanity(t *testing.T) {
	base := baseline(t)
	if len(base.DecisionLog) == 0 || len(base.StoreCSV) == 0 {
		t.Fatalf("empty artifacts: log=%d store=%d", len(base.DecisionLog), len(base.StoreCSV))
	}
	log := string(base.DecisionLog)
	if !strings.Contains(log, "cycle=0 channel=47") || !strings.Contains(log, "final channel=47") {
		t.Errorf("decision log missing expected lines:\n%s", log)
	}
	if base.UploadsAccepted == 0 {
		t.Error("baseline accepted no uploads; the store-growth half of the byte-identity check is vacuous")
	}
	if v := base.ModelVersion[47]; v < 2 {
		t.Errorf("final model version = %d, want ≥2 (bootstrap + retrain)", v)
	}
	if base.Retries != 0 || base.StaleServed != 0 || base.Shed != 0 {
		t.Errorf("fault-free run used resilience machinery: retries=%d stale=%d shed=%d",
			base.Retries, base.StaleServed, base.Shed)
	}
	if base.RefreshErrorsWhileCached != 0 {
		t.Errorf("refresh errored %d times while a model was cached", base.RefreshErrorsWhileCached)
	}
}

// TestChaosByteIdentical is the tentpole acceptance test: for seeded
// fault schedules that eventually clear (probability window or finite
// script), the final decision log and database store are byte-identical
// to the fault-free run, and the client never surfaced a refresh error
// while it held a cached model.
func TestChaosByteIdentical(t *testing.T) {
	base := baseline(t)
	cases := []struct {
		name       string
		client     faultinject.Plan
		server     faultinject.Plan
		wantFaults bool
	}{
		{
			name: "client-mixed-window",
			client: faultinject.Schedule{
				Seed: 101, DropP: 0.2, ErrorP: 0.15, CorruptP: 0.1,
				TruncateP: 0.1, DelayP: 0.1, Latency: 2 * time.Millisecond,
				Window: 60,
			},
			wantFaults: true,
		},
		{
			name: "server-mixed-window",
			server: faultinject.Schedule{
				Seed: 202, DropP: 0.2, ErrorP: 0.2, CorruptP: 0.1,
				DelayP: 0.1, Latency: 2 * time.Millisecond,
				Window: 60,
			},
			wantFaults: true,
		},
		{
			name: "both-sides",
			client: faultinject.Schedule{
				Seed: 303, DropP: 0.15, CorruptP: 0.1, Window: 40,
			},
			server: faultinject.Schedule{
				Seed: 404, ErrorP: 0.15, TruncateP: 0.1, Window: 40,
			},
			wantFaults: true,
		},
		{
			name:       "client-drop-burst",
			client:     faultinject.Repeat(faultinject.Fault{Kind: faultinject.Drop}, 9),
			wantFaults: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(Config{
				Seed:       baseSeed,
				ClientPlan: tc.client,
				ServerPlan: tc.server,
			})
			if err != nil {
				t.Fatalf("chaos run: %v", err)
			}
			injected := uint64(0)
			for k, n := range res.ClientFaults {
				if k != faultinject.None {
					injected += n
				}
			}
			for k, n := range res.ServerFaults {
				if k != faultinject.None {
					injected += n
				}
			}
			if tc.wantFaults && injected == 0 {
				t.Fatal("schedule injected no faults; test proves nothing")
			}
			if !bytes.Equal(res.DecisionLog, base.DecisionLog) {
				t.Errorf("decision log diverged from fault-free run\nbase:\n%s\nchaos:\n%s",
					base.DecisionLog, res.DecisionLog)
			}
			if !bytes.Equal(res.StoreCSV, base.StoreCSV) {
				t.Errorf("store contents diverged from fault-free run\nbase:\n%s\nchaos:\n%s",
					base.StoreCSV, res.StoreCSV)
			}
			if res.RefreshErrorsWhileCached != 0 {
				t.Errorf("refresh errored %d times while a model was cached", res.RefreshErrorsWhileCached)
			}
			if injected > 0 && res.Retries == 0 {
				t.Errorf("faults injected (%d) but client never retried", injected)
			}
			t.Logf("injected=%d retries=%d stale=%d client=%v server=%v",
				injected, res.Retries, res.StaleServed, res.ClientFaults, res.ServerFaults)
		})
	}
}

// TestChaosStaleServe drives an outage longer than the client's whole
// retry budget after the model is cached: the client must degrade to the
// cached descriptor (StaleServed > 0) instead of erroring, and the final
// state must still match the fault-free run once the outage clears.
func TestChaosStaleServe(t *testing.T) {
	base := baseline(t)
	// Requests 0–3 are clean (first model download + early uploads);
	// then a 28-request total outage; then clean forever.
	script := make(faultinject.Script, 32)
	for i := 4; i < len(script); i++ {
		script[i] = faultinject.Fault{Kind: faultinject.Drop}
	}
	res, err := Run(Config{Seed: baseSeed, ClientPlan: script})
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if res.StaleServed == 0 {
		t.Error("outage past the retry budget never hit the stale-serve path")
	}
	if res.Retries == 0 {
		t.Error("outage produced no retries")
	}
	if res.RefreshErrorsWhileCached != 0 {
		t.Errorf("client surfaced %d refresh errors while a model was cached", res.RefreshErrorsWhileCached)
	}
	if !bytes.Equal(res.DecisionLog, base.DecisionLog) {
		t.Errorf("decision log diverged from fault-free run\nbase:\n%s\nchaos:\n%s",
			base.DecisionLog, res.DecisionLog)
	}
	if !bytes.Equal(res.StoreCSV, base.StoreCSV) {
		t.Error("store contents diverged from fault-free run")
	}
}

// TestChaosReplayDeterminism: the same seed and the same schedule give
// the same artifacts, run over run — the property that makes a chaos
// failure debuggable.
func TestChaosReplayDeterminism(t *testing.T) {
	cfg := Config{
		Seed: baseSeed,
		ClientPlan: faultinject.Schedule{
			Seed: 7, DropP: 0.25, ErrorP: 0.2, CorruptP: 0.1, Window: 50,
		},
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if !bytes.Equal(a.DecisionLog, b.DecisionLog) {
		t.Error("identical configs produced different decision logs")
	}
	if !bytes.Equal(a.StoreCSV, b.StoreCSV) {
		t.Error("identical configs produced different stores")
	}
}
