package wal

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is the slice of *os.File the log needs: sequential writes,
// durability barriers, close.
type File interface {
	io.Writer
	// Sync flushes written data to stable storage (fsync).
	Sync() error
	Close() error
}

// FS abstracts the filesystem operations the WAL performs, so tests and
// the fault-injection layer (faultinject.FaultFS) can interpose on
// writes and fsyncs. OSFS is the real implementation.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// OpenAppend opens path for appending, creating it if absent.
	OpenAppend(path string) (File, error)
	// Create opens path for writing, truncating any existing content.
	Create(path string) (File, error)
	// ReadFile returns the full content of path.
	ReadFile(path string) ([]byte, error)
	// ReadDir returns the sorted file names (not paths) in dir.
	ReadDir(dir string) ([]string, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// Truncate cuts path to size bytes (discarding a torn record tail).
	Truncate(path string, size int64) error
	// SyncDir fsyncs the directory itself, making entry creations,
	// renames, and removals durable.
	SyncDir(dir string) error
}

// OSFS is the production FS, backed by the os package.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// OpenAppend implements FS.
func (OSFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// Create implements FS.
func (OSFS) Create(path string) (File, error) { return os.Create(path) }

// ReadFile implements FS.
func (OSFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Rename implements FS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OSFS) Remove(path string) error { return os.Remove(path) }

// Truncate implements FS.
func (OSFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

// SyncDir implements FS.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
