package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/dbserver"
	"github.com/wsdetect/waldo/internal/features"
	"github.com/wsdetect/waldo/internal/geo"
	"github.com/wsdetect/waldo/internal/geoindex"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
)

// TestCellOfBoundaryGolden pins the routing quantization at the cluster
// layer. cluster.Cell aliases geoindex.Cell so placement and the
// availability grid can never disagree on cell identity; these goldens
// guard the boundary cases (negative coordinates floor away from zero,
// the antimeridian, exact cell edges) against anyone re-homing CellOf
// with truncation semantics.
func TestCellOfBoundaryGolden(t *testing.T) {
	if DefaultCellDeg != geoindex.DefaultCellDeg {
		t.Fatalf("cluster quantum %v != geoindex quantum %v", DefaultCellDeg, geoindex.DefaultCellDeg)
	}
	golden := []struct {
		lat, lon float64
		cellDeg  float64
		want     Cell
	}{
		{0, 0, DefaultCellDeg, Cell{X: 0, Y: 0}},
		// Truncation would give {0,0} here; floor must give {-1,-1}.
		{-0.01, -0.01, DefaultCellDeg, Cell{X: -1, Y: -1}},
		// Exact cell edges belong to the cell they open.
		{0.05, 0.05, DefaultCellDeg, Cell{X: 1, Y: 1}},
		{-0.05, -0.05, DefaultCellDeg, Cell{X: -1, Y: -1}},
		// Antimeridian: the two sides land in distinct, non-wrapping cells.
		{10, 179.99, DefaultCellDeg, Cell{X: 200, Y: 3599}},
		{10, -180, DefaultCellDeg, Cell{X: 200, Y: -3600}},
		// A coarser quantum rescales, it does not re-center.
		{-0.01, 0.19, 0.1, Cell{X: -1, Y: 1}},
	}
	for _, g := range golden {
		got := CellOf(geo.Point{Lat: g.lat, Lon: g.lon}, g.cellDeg)
		if got != g.want {
			t.Errorf("CellOf(%v,%v @ %v) = %+v, want %+v", g.lat, g.lon, g.cellDeg, got, g.want)
		}
		if gi := geoindex.CellOf(geo.Point{Lat: g.lat, Lon: g.lon}, g.cellDeg); gi != got {
			t.Errorf("cluster and geoindex disagree at (%v,%v): %+v vs %+v", g.lat, g.lon, got, gi)
		}
	}
}

// fieldAt clusters n readings of uniform signal strength within ~400 m
// of loc: rss -100 reads as free, -70 as occupied. Unlike synthAt it
// does not mix classes, so the cell's grid verdict is deterministic.
func fieldAt(n int, ch rfenv.Channel, loc geo.Point, rss float64) []dataset.Reading {
	rs := make([]dataset.Reading, n)
	for i := range rs {
		rs[i] = dataset.Reading{
			Seq: i, Loc: loc.Offset(float64(i*37%360), float64(i%40)*10),
			Channel: ch, Sensor: sensor.KindRTLSDR,
			Signal: features.Signal{RSSdBm: rss, CFTdB: rss - 11.3, AFTdB: rss - 13},
		}
	}
	return rs
}

// westLocations mirrors locations() on the opposite bearing: one
// shard-owned cell center per shard, walking west so the cells are
// disjoint from the eastern probe walk.
func (tc *testCluster) westLocations(t *testing.T, ch rfenv.Channel) map[string]geo.Point {
	t.Helper()
	out := map[string]geo.Point{}
	for i := 1; i < 400 && len(out) < len(tc.nodes); i++ {
		loc := cellCenter(rfenv.MetroCenter.Offset(270, float64(i)*6000), tc.cellDeg)
		owner := tc.gw.Ring().Owner(RouteKey{Channel: ch, Cell: CellOf(loc, tc.cellDeg)})
		if _, seen := out[owner]; !seen {
			out[owner] = loc
		}
	}
	if len(out) < len(tc.nodes) {
		t.Fatalf("west probe walk covered only %d of %d shards", len(out), len(tc.nodes))
	}
	return out
}

// seedGeoCluster gives every shard a free cell (east walk) and an
// occupied cell (west walk), retrains the whole cluster through the
// gateway, and waits for each shard's grid rebuild to land. Returns the
// per-shard free and occupied cell centers.
func seedGeoCluster(t *testing.T, tc *testCluster, ch rfenv.Channel) (free, occupied map[string]geo.Point) {
	t.Helper()
	free = tc.locations(t, ch)
	occupied = tc.westLocations(t, ch)
	for id := range tc.nodes {
		for _, batch := range [][]dataset.Reading{
			fieldAt(400, ch, free[id], -100),
			fieldAt(400, ch, occupied[id], -70),
		} {
			resp := mustPost(t, tc.gwTS.URL+"/v1/readings", uploadBody(t, batch))
			resp.Body.Close()
			if resp.StatusCode != http.StatusNoContent {
				t.Fatalf("seed upload for %s = %s", id, resp.Status)
			}
		}
	}
	resp := mustPost(t, tc.gwTS.URL+fmt.Sprintf("/v1/retrain?channel=%d&sensor=%d", ch, sensor.KindRTLSDR), nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("broadcast retrain = %s", resp.Status)
	}
	// Grid rebuilds run off the request path; wait for every shard's to
	// land before querying.
	deadline := time.Now().Add(5 * time.Second)
	for id, n := range tc.nodes {
		for n.DB.GeoIndex().Snapshot().Generation == 0 {
			if time.Now().After(deadline) {
				t.Fatalf("shard %s grid never rebuilt after retrain", id)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	return free, occupied
}

func entryFor(entries []dbserver.AvailabilityEntryJSON, ch rfenv.Channel) (dbserver.AvailabilityEntryJSON, bool) {
	for _, e := range entries {
		if e.Channel == int(ch) {
			return e, true
		}
	}
	return dbserver.AvailabilityEntryJSON{}, false
}

// TestGatewayAvailability exercises both gateway paths: the unfiltered
// query fans out to every shard and merges, the channel-filtered query
// forwards straight to the single owning shard.
func TestGatewayAvailability(t *testing.T) {
	tc := newTestCluster(t, []string{"s0", "s1", "s2"})
	free, occupied := seedGeoCluster(t, tc, 47)

	for id, loc := range free {
		// Unfiltered: merged across all shards.
		url := fmt.Sprintf("%s/v1/availability?lat=%v&lon=%v", tc.gwTS.URL, loc.Lat, loc.Lon)
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		var av dbserver.AvailabilityJSON
		if err := json.NewDecoder(resp.Body).Decode(&av); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("availability at %s's cell = %s", id, resp.Status)
		}
		if got := len(strings.Split(resp.Header.Get(ShardHeader), ",")); got != len(tc.nodes) {
			t.Errorf("merged availability consulted %d shards, want %d", got, len(tc.nodes))
		}
		e, ok := entryFor(av.Channels, 47)
		if !ok || e.Status != "free" {
			t.Errorf("shard %s free cell: entry=%+v ok=%v, want ch47 free", id, e, ok)
		}
		if av.Generation == 0 {
			t.Errorf("merged generation 0 after rebuilds landed")
		}

		// Filtered to one channel: exactly one (channel, cell) owner, so
		// the gateway forwards instead of fanning out.
		owner := tc.gw.Ring().Owner(RouteKey{Channel: 47, Cell: CellOf(loc, tc.cellDeg)})
		resp2, err := http.Get(url + "&channels=47")
		if err != nil {
			t.Fatal(err)
		}
		var fav dbserver.AvailabilityJSON
		if err := json.NewDecoder(resp2.Body).Decode(&fav); err != nil {
			t.Fatal(err)
		}
		resp2.Body.Close()
		if got := resp2.Header.Get(ShardHeader); got != owner {
			t.Errorf("filtered availability served by %q, want owner %q", got, owner)
		}
		if e, ok := entryFor(fav.Channels, 47); !ok || e.Status != "free" {
			t.Errorf("forwarded availability at %s: entry=%+v ok=%v, want ch47 free", id, e, ok)
		}
	}
	// One occupied-cell spot check through the merge path.
	loc := occupied["s0"]
	body := mustGetBody(t, fmt.Sprintf("%s/v1/availability?lat=%v&lon=%v", tc.gwTS.URL, loc.Lat, loc.Lon), http.StatusOK)
	var av dbserver.AvailabilityJSON
	if err := json.Unmarshal(body, &av); err != nil {
		t.Fatal(err)
	}
	if e, ok := entryFor(av.Channels, 47); !ok || e.Status != "occupied" {
		t.Errorf("occupied cell: entry=%+v ok=%v, want ch47 occupied", e, ok)
	}

	if fwd := tc.gw.geomerge.availForwarded.Value(); fwd != uint64(len(free)) {
		t.Errorf("forwarded count = %d, want %d", fwd, len(free))
	}
	if merged := tc.gw.geomerge.availMerged.Value(); merged != uint64(len(free))+1 {
		t.Errorf("merged count = %d, want %d", merged, len(free)+1)
	}

	// Gateway-level validation rejects before any fan-out.
	for _, q := range []string{"?lat=91&lon=0", "?lat=x&lon=0", "?lat=0&lon=0&channels=bogus"} {
		resp, err := http.Get(tc.gwTS.URL + "/v1/availability" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("availability%s = %s, want 400", q, resp.Status)
		}
	}
}

// TestGatewayRouteMergeAcrossShards drives the acceptance route: a
// polyline visiting every shard's free cell, so the answer necessarily
// assembles verdicts owned by different shards.
func TestGatewayRouteMergeAcrossShards(t *testing.T) {
	tc := newTestCluster(t, []string{"s0", "s1", "s2"})
	free, _ := seedGeoCluster(t, tc, 47)

	// The east walk is a straight bearing-90 line, so ordering by
	// longitude orders the waypoints along the walk.
	locs := make([]geo.Point, 0, len(free))
	for _, loc := range free {
		locs = append(locs, loc)
	}
	sort.Slice(locs, func(i, j int) bool { return locs[i].Lon < locs[j].Lon })
	req := dbserver.RouteRequestJSON{StepM: 500}
	for _, loc := range locs {
		req.Points = append(req.Points, dbserver.RoutePointJSON{Lat: loc.Lat, Lon: loc.Lon})
	}
	body, _ := json.Marshal(req)

	resp := mustPost(t, tc.gwTS.URL+"/v1/route", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("route = %s", resp.Status)
	}
	if got := len(strings.Split(resp.Header.Get(ShardHeader), ",")); got != len(tc.nodes) {
		t.Errorf("route consulted %d shards, want %d", got, len(tc.nodes))
	}
	var route dbserver.RouteJSON
	if err := json.NewDecoder(resp.Body).Decode(&route); err != nil {
		t.Fatal(err)
	}
	if len(route.Segments) < len(locs) || route.TotalM <= 0 || route.ConfidenceDecay != 1 {
		t.Fatalf("segments=%d total_m=%v decay=%v", len(route.Segments), route.TotalM, route.ConfidenceDecay)
	}

	// Every shard's free cell must appear in the merged answer with its
	// own verdict, and the verdict-bearing cells must span shards —
	// proof the merge crossed ownership boundaries.
	owners := map[string]bool{}
	for _, seg := range route.Segments {
		if len(seg.Channels) == 0 {
			continue
		}
		owners[tc.gw.Ring().Owner(RouteKey{Channel: 47, Cell: Cell{X: seg.CellX, Y: seg.CellY}})] = true
	}
	if len(owners) < 2 {
		t.Errorf("verdict-bearing segments owned by %d shard(s), want >=2: %v", len(owners), owners)
	}
	for id, loc := range free {
		cell := CellOf(loc, tc.cellDeg)
		found := false
		for _, seg := range route.Segments {
			if seg.CellX != cell.X || seg.CellY != cell.Y {
				continue
			}
			found = true
			if e, ok := entryFor(seg.Channels, 47); !ok || e.Status != "free" {
				t.Errorf("shard %s cell %+v: entry=%+v ok=%v, want ch47 free", id, cell, e, ok)
			}
		}
		if !found {
			t.Errorf("route skipped shard %s's waypoint cell %+v", id, cell)
		}
	}
	if ok := tc.gw.geomerge.routeOK.Value(); ok != 1 {
		t.Errorf("route merge ok count = %d, want 1", ok)
	}

	// Deterministic shard-side validation failures pass through with the
	// shards' own status, not a 502.
	resp = mustPost(t, tc.gwTS.URL+"/v1/route", []byte(`{"points":[]}`))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty route = %s, want 400 passthrough", resp.Status)
	}
	if pass := tc.gw.geomerge.routePass.Value(); pass != 1 {
		t.Errorf("route passthrough count = %d, want 1", pass)
	}
}
