// Command waldo-wardrive generates a synthetic war-driving campaign over
// the metro environment — the stand-in for the paper's 800 km Atlanta
// collection drives — and writes the readings as CSV for waldo-server.
//
// Usage:
//
//	waldo-wardrive -out campaign.csv [-samples 5282] [-seed 42] [-sensors rtl,usrp,analyzer]
//
// The output format follows the extension: .csv for interchange, .gob for
// fast binary snapshots.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
	"github.com/wsdetect/waldo/internal/wardrive"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "waldo-wardrive:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("waldo-wardrive", flag.ContinueOnError)
	out := fs.String("out", "campaign.csv", "output CSV path")
	samples := fs.Int("samples", 5282, "readings per channel per sensor")
	seed := fs.Int64("seed", 42, "environment and noise seed")
	sensors := fs.String("sensors", "rtl,usrp,analyzer", "comma list: rtl,usrp,analyzer")
	if err := fs.Parse(args); err != nil {
		return err
	}

	specs, err := parseSensors(*sensors)
	if err != nil {
		return err
	}
	env, err := rfenv.BuildMetro(uint64(*seed))
	if err != nil {
		return err
	}
	route, err := wardrive.GenerateRoute(wardrive.RouteConfig{
		Area:    env.Area,
		Samples: *samples,
		Seed:    *seed + 1,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "route: %d samples over %.0f km of road\n",
		len(route.Points), route.LengthM/1000)

	camp, err := wardrive.Run(wardrive.CampaignConfig{
		Env:     env,
		Route:   route,
		Sensors: specs,
		Seed:    *seed + 2,
	})
	if err != nil {
		return err
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()

	var all []dataset.Reading
	for _, ch := range camp.Channels {
		for _, k := range camp.Sensors {
			all = append(all, camp.Readings(ch, k)...)
		}
	}
	if strings.HasSuffix(*out, ".gob") {
		err = dataset.WriteGob(f, all)
	} else {
		err = dataset.WriteCSV(f, all)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d readings (%d channels × %d sensors × %d points) to %s\n",
		len(all), len(camp.Channels), len(camp.Sensors), camp.Size(), *out)
	return f.Close()
}

func parseSensors(list string) ([]sensor.Spec, error) {
	var specs []sensor.Spec
	for _, name := range strings.Split(list, ",") {
		switch strings.TrimSpace(name) {
		case "rtl":
			specs = append(specs, sensor.RTLSDR())
		case "usrp":
			specs = append(specs, sensor.USRPB200())
		case "analyzer":
			specs = append(specs, sensor.SpectrumAnalyzer())
		case "":
		default:
			return nil, fmt.Errorf("unknown sensor %q (want rtl, usrp, analyzer)", name)
		}
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("no sensors selected")
	}
	return specs, nil
}
