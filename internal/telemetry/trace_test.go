package telemetry

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestTraceHeaderRoundTrip(t *testing.T) {
	sc := NewSpanContext()
	if !sc.Valid() || !sc.Sampled {
		t.Fatalf("NewSpanContext = %+v, want valid sampled", sc)
	}
	h := sc.Header()
	if len(h) != 55 || !strings.HasPrefix(h, "00-") {
		t.Fatalf("header %q not in traceparent layout", h)
	}
	got, ok := ParseTraceHeader(h)
	if !ok || got != sc {
		t.Fatalf("round trip: parsed %+v ok=%v, want %+v", got, ok, sc)
	}

	unsampled := SpanContext{Trace: NewTraceID(), Span: NewSpanID(), Sampled: false}
	got, ok = ParseTraceHeader(unsampled.Header())
	if !ok || got.Sampled {
		t.Fatalf("unsampled round trip: %+v ok=%v", got, ok)
	}
}

func TestParseTraceHeaderRejectsMalformed(t *testing.T) {
	valid := NewSpanContext().Header()
	bad := []string{
		"",
		"garbage",
		valid[:54],       // truncated
		valid + "0",      // too long
		"01" + valid[2:], // unknown version
		strings.Replace(valid, "-", "_", 1),
		valid[:3] + strings.Repeat("z", 32) + valid[35:], // non-hex trace id
		valid[:53] + "7f", // unknown flags
		"00-" + strings.Repeat("0", 32) + valid[35:],      // zero trace id
		valid[:36] + strings.Repeat("0", 16) + valid[52:], // zero span id
	}
	for _, v := range bad {
		if sc, ok := ParseTraceHeader(v); ok {
			t.Errorf("ParseTraceHeader(%q) accepted as %+v", v, sc)
		}
	}
}

func TestIDUniqueness(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID().String()
		if seen[id] {
			t.Fatalf("duplicate trace ID %s after %d draws", id, i)
		}
		seen[id] = true
	}
}

func TestStartTraceJoinsParent(t *testing.T) {
	r := New()
	rec := NewRecorder(RecorderOptions{Metrics: r})
	defer rec.Close()
	r.SetFlightRecorder(rec)

	parent := NewSpanContext()
	sp := r.StartTrace("/v1/readings", parent)
	if got := sp.TraceID(); got != parent.Trace {
		t.Fatalf("joined trace ID = %s, want %s", got, parent.Trace)
	}
	child := sp.Child("screen")
	child.SetAttr("channel", "47")
	child.End()
	sp.End()

	traces := rec.Snapshot(TraceFilter{TraceID: parent.Trace.String()})
	if len(traces) != 1 {
		t.Fatalf("recorder retained %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Endpoint != "/v1/readings" {
		t.Fatalf("endpoint = %q", tr.Endpoint)
	}
	if len(tr.Spans) != 2 {
		t.Fatalf("trace has %d spans, want 2: %+v", len(tr.Spans), tr.Spans)
	}
	// The child ended first, so it is first; it must parent under the root.
	var root, kid SpanData
	for _, s := range tr.Spans {
		if s.Name == "/v1/readings" {
			root = s
		} else {
			kid = s
		}
	}
	if root.SpanID == "" || kid.ParentID != root.SpanID {
		t.Fatalf("child parent = %q, want root %q", kid.ParentID, root.SpanID)
	}
	if len(kid.Attrs) != 1 || kid.Attrs[0].Key != "channel" || kid.Attrs[0].Value != "47" {
		t.Fatalf("child attrs = %+v", kid.Attrs)
	}
}

func TestStartTraceInvalidParentMintsFresh(t *testing.T) {
	r := New()
	sp := r.StartTrace("/x", SpanContext{})
	defer sp.End()
	if sp.TraceID().IsZero() {
		t.Fatal("fresh trace has zero ID")
	}
	if !sp.Context().Sampled {
		t.Fatal("fresh trace not sampled")
	}
}

func TestStartSpanCtxParentsUnderContextSpan(t *testing.T) {
	r := New()
	rec := NewRecorder(RecorderOptions{Metrics: r})
	defer rec.Close()
	r.SetFlightRecorder(rec)

	root := r.StartTrace("/route", SpanContext{})
	rootID := root.TraceID()
	ctx := ContextWithSpan(context.Background(), root)
	sub := r.StartSpanCtx(ctx, "wal/append")
	if got := sub.TraceID(); got != rootID {
		t.Fatalf("ctx span trace = %s, want %s", got, rootID)
	}
	sub.End()
	root.End()

	traces := rec.Snapshot(TraceFilter{TraceID: rootID.String()})
	if len(traces) != 1 || len(traces[0].Spans) != 2 {
		t.Fatalf("retained %+v", traces)
	}
	// Metric path stays the bare name: no route prefix, bounded cardinality.
	if got := r.Histogram(spanMetric, spanHelp, nil, "span", "wal/append").Count(); got != 1 {
		t.Fatalf("wal/append histogram count = %d, want 1", got)
	}

	// A context without a span yields a metric-only span.
	plain := r.StartSpanCtx(context.Background(), "lonely")
	if !plain.TraceID().IsZero() {
		t.Fatal("span without context trace should be metric-only")
	}
	plain.End()
}

func TestNilSpanSafety(t *testing.T) {
	var r *Registry
	sp := r.StartTrace("/x", SpanContext{})
	sp.SetAttr("k", "v")
	sp.Fail("boom")
	if sc := sp.Context(); sc.Valid() {
		t.Fatalf("nil span context = %+v", sc)
	}
	child := sp.Child("c")
	child.End()
	sp.End()
	sp2 := r.StartSpanCtx(context.Background(), "y")
	sp2.End()
}

func TestWrapRouteTracePropagation(t *testing.T) {
	r := New()
	rec := NewRecorder(RecorderOptions{Metrics: r})
	defer rec.Close()
	r.SetFlightRecorder(rec)

	var inner SpanContext
	h := r.WrapRouteFunc("/v1/thing", func(w http.ResponseWriter, req *http.Request) {
		inner = SpanFromContext(req.Context()).Context()
		w.WriteHeader(http.StatusNoContent)
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	// With an inbound header: the handler's span joins that trace and the
	// response echoes it.
	parent := NewSpanContext()
	req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	req.Header.Set(TraceHeader, parent.Header())
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if inner.Trace != parent.Trace {
		t.Fatalf("handler trace = %s, want inbound %s", inner.Trace, parent.Trace)
	}
	echo, ok := ParseTraceHeader(resp.Header.Get(TraceHeader))
	if !ok || echo.Trace != parent.Trace {
		t.Fatalf("response header %q does not echo trace %s", resp.Header.Get(TraceHeader), parent.Trace)
	}

	// Without one: a fresh trace is minted and returned.
	resp2, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	minted, ok := ParseTraceHeader(resp2.Header.Get(TraceHeader))
	if !ok || minted.Trace.IsZero() || minted.Trace == parent.Trace {
		t.Fatalf("minted header %q", resp2.Header.Get(TraceHeader))
	}

	// Both requests landed in the flight recorder under their trace IDs.
	for _, id := range []TraceID{parent.Trace, minted.Trace} {
		if got := rec.Snapshot(TraceFilter{TraceID: id.String()}); len(got) != 1 {
			t.Fatalf("trace %s retained %d times", id, len(got))
		}
	}
}

func TestWrapRouteErrorStatusMarksTraceErrored(t *testing.T) {
	r := New()
	rec := NewRecorder(RecorderOptions{Metrics: r})
	defer rec.Close()
	r.SetFlightRecorder(rec)

	h := r.WrapRouteFunc("/die", func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	errored := rec.Snapshot(TraceFilter{Class: "error"})
	if len(errored) != 1 || !errored[0].Errored {
		t.Fatalf("error ring holds %+v, want the 500 trace", errored)
	}
}

func TestExemplarOnSampledSpan(t *testing.T) {
	r := New()
	rec := NewRecorder(RecorderOptions{Metrics: r})
	defer rec.Close()
	r.SetFlightRecorder(rec)

	sp := r.StartTrace("/v1/model", SpanContext{})
	id := sp.TraceID().String()
	sp.End()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	if !strings.Contains(body, `# {trace_id="`+id+`"}`) {
		t.Fatalf("exposition carries no exemplar for trace %s:\n%s", id, body)
	}
}
