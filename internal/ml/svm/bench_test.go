package svm

import (
	"testing"

	"github.com/wsdetect/waldo/internal/ml"
)

// BenchmarkRFFSVMTrain measures one locality's training cost at campaign
// scale (the Model Constructor hot path).
func BenchmarkRFFSVMTrain(b *testing.B) {
	x, y := twoBlobs(2000, 2, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := &RFFSVM{D: 48, Gamma: 0.35, Seed: int64(i)}
		if err := m.Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRFFSVMPredict(b *testing.B) {
	x, y := twoBlobs(2000, 2, 2)
	m := &RFFSVM{D: 48, Gamma: 0.35, Seed: 3}
	if err := m.Fit(x, y); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Predict(x[i%len(x)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSMOTrain500(b *testing.B) {
	x, y := rings(500, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := &SMO{Kernel: RBF{Gamma: 1}, Seed: int64(i)}
		if err := s.Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

var benchSink int

func BenchmarkPegasosTrain(b *testing.B) {
	x, y := twoBlobs(2000, 2, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := &Pegasos{Seed: int64(i)}
		if err := p.Fit(x, y); err != nil {
			b.Fatal(err)
		}
		pred, _ := p.Predict(x[0])
		benchSink += pred
	}
}

var _ ml.Classifier = (*RFFSVM)(nil)
