package dbserver

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"github.com/wsdetect/waldo/internal/core"
	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/telemetry"
)

// Binary batch ingest (POST /v1/upload/batch): the high-rate alternative
// to the JSON upload path. The body is one core batch frame (u32 count |
// 67-byte readings | CRC32); the upload's confidence-interval span rides
// in the CISpanHeader since the frame itself is pure readings. Per
// reading the server still validates and (optionally) screens exactly
// like /v1/readings, but the whole batch costs one HTTP request, one
// allocation-free binary decode into pooled scratch, and one group-commit
// WAL append — that is where the single-JSON path spends its 23µs/op.

// CISpanHeader carries the uploader's confidence-interval span in dB on
// binary batch uploads (the JSON path embeds it in the body instead).
const CISpanHeader = "X-Waldo-CI-Span"

// batchState carries the binary ingest path's telemetry and decode pool.
type batchState struct {
	uploads  *telemetry.Counter
	readings *telemetry.Counter
	rejected *telemetry.Counter
	// scratch pools decode buffers ([]dataset.Reading and the body bytes)
	// across batch requests so a steady ingest load allocates nothing per
	// frame.
	scratch sync.Pool
}

// batchScratch is one pooled decode workspace.
type batchScratch struct {
	body     bytes.Buffer
	readings []dataset.Reading
}

func newBatchState(m *telemetry.Registry) *batchState {
	return &batchState{
		uploads: m.Counter("waldo_dbserver_batch_uploads_total",
			"Binary batch uploads accepted."),
		readings: m.Counter("waldo_dbserver_batch_readings_total",
			"Readings accepted through the binary batch path."),
		rejected: m.Counter("waldo_dbserver_batch_rejected_total",
			"Binary batch uploads rejected (framing, validation, or screening)."),
		scratch: sync.Pool{New: func() any { return new(batchScratch) }},
	}
}

// handleUploadBatch serves POST /v1/upload/batch. Framing violations and
// invalid readings are 400s, oversize bodies 413, screening and α′
// rejections 422 — the same contract as the JSON path, reached ~10x
// cheaper.
func (s *Server) handleUploadBatch(w http.ResponseWriter, r *http.Request) {
	limit := s.cfg.MaxBodyBytes
	if limit <= 0 {
		limit = 4 << 20
	}
	sc := s.batch.scratch.Get().(*batchScratch)
	defer s.batch.scratch.Put(sc)
	sc.body.Reset()
	if n := r.ContentLength; n > 0 && n <= limit {
		sc.body.Grow(int(n))
	}
	if _, err := sc.body.ReadFrom(http.MaxBytesReader(w, r.Body, limit)); err != nil {
		s.batch.rejected.Inc()
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(w, "read body: "+err.Error(), status)
		return
	}
	var ciSpan float64
	if h := r.Header.Get(CISpanHeader); h != "" {
		var err error
		ciSpan, err = strconv.ParseFloat(h, 64)
		if err != nil {
			s.batch.rejected.Inc()
			http.Error(w, "bad "+CISpanHeader+" header: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	readings, rest, err := core.DecodeBatchFrame(sc.readings[:0], sc.body.Bytes())
	sc.readings = readings[:0] // keep grown capacity pooled even on the error paths below
	if err != nil {
		s.batch.rejected.Inc()
		http.Error(w, "bad batch frame: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(rest) != 0 {
		s.batch.rejected.Inc()
		http.Error(w, fmt.Sprintf("bad batch frame: %d trailing bytes", len(rest)), http.StatusBadRequest)
		return
	}
	status, err := s.acceptUpload(r.Context(), core.UploadBatch{CISpanDB: ciSpan, Readings: readings})
	if err != nil {
		s.batch.rejected.Inc()
		http.Error(w, err.Error(), status)
		return
	}
	s.batch.uploads.Inc()
	s.batch.readings.Add(uint64(len(readings)))
	s.maybeSnapshot(storeKey{readings[0].Channel, readings[0].Sensor})
	w.WriteHeader(http.StatusNoContent)
}

// acceptUpload runs the shared tail of both upload paths: optional
// screening against the trusted store, then the α′-gated Submit, which
// journals the whole batch as one WAL append. ctx carries the request
// trace — the screen span and the WAL append join it. On error the
// returned status is the HTTP code to answer with. The batch's readings
// slice is only read — callers may pool it.
func (s *Server) acceptUpload(ctx context.Context, batch core.UploadBatch) (int, error) {
	u, err := s.updaterFor(batch.Readings[0].Channel, batch.Readings[0].Sensor)
	if err != nil {
		return http.StatusInternalServerError, err
	}
	if s.cfg.Screening != nil {
		span := s.metrics.StartSpanCtx(ctx, "screen")
		trusted := u.Readings()
		if len(trusted) == 0 {
			span.Fail("no trusted readings")
			span.End()
			return http.StatusUnprocessableEntity,
				errors.New("store has no trusted readings to corroborate against")
		}
		v, err := core.NewUploadValidator(trusted, *s.cfg.Screening)
		if err != nil {
			span.Fail(err.Error())
			span.End()
			return http.StatusInternalServerError, err
		}
		filtered, err := v.FilterBatch(batch)
		if err != nil {
			span.Fail(err.Error())
			span.End()
			s.lg.Warn(ctx, "upload_screen_reject",
				"channel", int(batch.Readings[0].Channel),
				"sensor", int(batch.Readings[0].Sensor),
				"readings", len(batch.Readings), "err", err)
			return http.StatusUnprocessableEntity,
				fmt.Errorf("upload failed corroboration: %w", err)
		}
		span.End()
		batch = filtered
	}
	if err := u.SubmitCtx(ctx, batch); err != nil {
		return http.StatusUnprocessableEntity, err
	}
	return 0, nil
}
