package dsp

import "math"

// RegularizedIncompleteBeta computes I_x(a, b), the regularized incomplete
// beta function, via the Lentz continued-fraction expansion. It underpins
// the F-distribution CDF used for ANOVA p-values in feature selection.
// Returns NaN for invalid parameters.
func RegularizedIncompleteBeta(a, b, x float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(x) || a <= 0 || b <= 0:
		return math.NaN()
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	// Use the symmetry relation to keep the continued fraction convergent.
	if x > (a+1)/(a+b+2) {
		return 1 - RegularizedIncompleteBeta(b, a, 1-x)
	}
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(math.Log(x)*a+math.Log(1-x)*b+lbeta-la-lb) / a

	// Lentz's algorithm for the continued fraction.
	const (
		eps     = 1e-14
		tiny    = 1e-30
		maxIter = 300
	)
	f, c, d := 1.0, 1.0, 0.0
	for i := 0; i <= maxIter; i++ {
		m := i / 2
		var numerator float64
		switch {
		case i == 0:
			numerator = 1
		case i%2 == 0:
			numerator = float64(m) * (b - float64(m)) * x /
				((a + 2*float64(m) - 1) * (a + 2*float64(m)))
		default:
			numerator = -(a + float64(m)) * (a + b + float64(m)) * x /
				((a + 2*float64(m)) * (a + 2*float64(m) + 1))
		}
		d = 1 + numerator*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		d = 1 / d
		c = 1 + numerator/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		cd := c * d
		f *= cd
		if math.Abs(1-cd) < eps {
			return front * (f - 1)
		}
	}
	return front * (f - 1) // ran out of iterations; best effort
}

// FDistCDF returns P(F ≤ x) for an F distribution with (d1, d2) degrees of
// freedom.
func FDistCDF(x, d1, d2 float64) float64 {
	if x <= 0 {
		return 0
	}
	return RegularizedIncompleteBeta(d1/2, d2/2, d1*x/(d1*x+d2))
}

// FDistSurvival returns P(F > x), the ANOVA p-value for an observed F
// statistic x with (d1, d2) degrees of freedom.
func FDistSurvival(x, d1, d2 float64) float64 {
	if x <= 0 {
		return 1
	}
	return RegularizedIncompleteBeta(d2/2, d1/2, d2/(d1*x+d2))
}

// OneWayANOVA computes the one-way analysis-of-variance F statistic and
// p-value for the given groups of observations. Groups with fewer than one
// observation are ignored; at least two non-empty groups and a total of
// more than #groups observations are required (otherwise F is NaN).
func OneWayANOVA(groups ...[]float64) (f, p float64) {
	var (
		k     int
		n     int
		total float64
	)
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		k++
		n += len(g)
		for _, v := range g {
			total += v
		}
	}
	if k < 2 || n <= k {
		return math.NaN(), math.NaN()
	}
	grand := total / float64(n)

	var ssBetween, ssWithin float64
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		gm := Mean(g)
		d := gm - grand
		ssBetween += float64(len(g)) * d * d
		for _, v := range g {
			dv := v - gm
			ssWithin += dv * dv
		}
	}
	d1 := float64(k - 1)
	d2 := float64(n - k)
	if ssWithin == 0 {
		// Perfect separation: infinite F, p-value of zero.
		return math.Inf(1), 0
	}
	f = (ssBetween / d1) / (ssWithin / d2)
	return f, FDistSurvival(f, d1, d2)
}
