// Pocket-hunt: the Figure 1 scenario. An obstruction inside channel 47's
// coverage creates a "pocket" where the TV signal is not decodable. A
// sensing-only device dismisses the area entirely (hidden-node caution), a
// conventional spectrum database denies it (no terrain knowledge), and
// Waldo classifies it correctly: the pocket is still within 6 km of
// decodable TV — NOT safe — while the genuinely-clear far side IS safe.
package main

import (
	"fmt"
	"log"
	"math/rand"

	waldo "github.com/wsdetect/waldo"
	"github.com/wsdetect/waldo/internal/baseline/sensing"
	"github.com/wsdetect/waldo/internal/baseline/specdb"
	"github.com/wsdetect/waldo/internal/features"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
)

func main() {
	env, err := waldo.BuildMetroEnvironment(42)
	if err != nil {
		log.Fatal(err)
	}
	campaign, err := waldo.RunCampaign(waldo.CampaignSpec{
		Env:      env,
		Samples:  2000,
		Channels: []waldo.Channel{47},
		Seed:     11,
	})
	if err != nil {
		log.Fatal(err)
	}
	readings := campaign.Readings(47, waldo.SensorRTLSDR)
	labels, err := waldo.LabelReadings(readings, waldo.LabelConfig{})
	if err != nil {
		log.Fatal(err)
	}
	model, err := waldo.BuildModel(readings, labels, waldo.ConstructorConfig{
		ClusterK: 3,
		Seed:     12,
	})
	if err != nil {
		log.Fatal(err)
	}

	db, err := specdb.New(specdb.Config{
		Transmitters: env.Transmitters(),
		Model:        rfenv.HataUrban{LargeCity: true},
		RxHeightM:    10,
	})
	if err != nil {
		log.Fatal(err)
	}
	fccSensing := sensing.NewFCC()

	// The demo device: a calibrated RTL-SDR, the same pipeline the
	// campaign used.
	rng := rand.New(rand.NewSource(13))
	dev, err := waldo.NewSensor(waldo.SensorRTLSDR)
	if err != nil {
		log.Fatal(err)
	}
	if err := sensor.CalibrateAndInstall(dev, rng, sensor.CalibrationConfig{}); err != nil {
		log.Fatal(err)
	}

	center := env.Area.Center()
	spots := []struct {
		name string
		loc  waldo.Point
	}{
		{"inside coverage (NE)", center.Offset(30, 8000)},
		{"the pocket (obstructed, in coverage)", center.Offset(45, 5000)},
		{"genuine white space (SW)", center.Offset(225, 12000)},
	}

	fmt.Println("channel 47, three locations:")
	fmt.Printf("%-38s %10s %10s %10s %10s\n", "location", "true dBm", "sensing", "specDB", "Waldo")
	for _, spot := range spots {
		truth := env.RSSDBm(47, spot.loc)

		// Sensing-only: a single local reading against the −114 rule.
		sensed := fccSensing.Decide(truth)

		dbAns := "denied"
		if db.Available(47, spot.loc) {
			dbAns = "vacant"
		}

		// Waldo: classify from location + what the device actually
		// measures there (same front end the model was trained on).
		obs, err := dev.Observe(rng, truth, env.StrongestDBm(spot.loc, 47))
		if err != nil {
			log.Fatal(err)
		}
		sig, err := features.FromObservation(obs, dev.Calibration())
		if err != nil {
			log.Fatal(err)
		}
		got, err := model.Classify(spot.loc, sig)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-38s %10.1f %10v %10s %10v\n", spot.name, truth, sensed, dbAns, got)
	}

	fmt.Println("\nsensing dismisses everything (RTL noise floor trips −114 dBm);")
	fmt.Println("the database cannot see terrain; Waldo separates the hidden-node")
	fmt.Println("pocket (protected) from the genuinely clear far side (usable).")
}
