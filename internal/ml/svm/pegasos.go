package svm

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/wsdetect/waldo/internal/ml"
)

// Pegasos is a linear SVM trained by the Pegasos stochastic sub-gradient
// method (Shalev-Shwartz et al.). Training is O(epochs·n·dim), which makes
// it the workhorse for full-campaign cross-validation sweeps.
type Pegasos struct {
	// Lambda is the regularization strength; default 1e-4.
	Lambda float64
	// Epochs is the number of passes over the data; default 30.
	Epochs int
	// Seed drives example shuffling.
	Seed int64
	// ClassBalance reweights the minority class's sub-gradients so
	// imbalanced channels don't collapse to the majority label.
	ClassBalance bool

	w    []float64
	bias float64
}

var _ ml.Classifier = (*Pegasos)(nil)
var _ ml.DecisionScorer = (*Pegasos)(nil)

func (p *Pegasos) defaults() {
	if p.Lambda == 0 {
		p.Lambda = 1e-4
	}
	if p.Epochs == 0 {
		p.Epochs = 30
	}
}

// Fit implements ml.Classifier.
func (p *Pegasos) Fit(x [][]float64, y []int) error {
	p.defaults()
	dim, err := ml.CheckTrainingSet(x, y)
	if err != nil {
		return fmt.Errorf("svm: %w", err)
	}
	if p.Lambda <= 0 || p.Epochs < 1 {
		return fmt.Errorf("svm: invalid hyperparameters lambda=%v epochs=%d", p.Lambda, p.Epochs)
	}
	n := len(x)

	weight := map[int]float64{ml.Positive: 1, ml.Negative: 1}
	if p.ClassBalance {
		var pos int
		for _, yi := range y {
			if yi == ml.Positive {
				pos++
			}
		}
		neg := n - pos
		// Inverse-frequency weights normalized to mean 1.
		weight[ml.Positive] = float64(n) / (2 * float64(pos))
		weight[ml.Negative] = float64(n) / (2 * float64(neg))
	}

	w := make([]float64, dim)
	var b float64
	rng := rand.New(rand.NewSource(p.Seed))
	order := rng.Perm(n)
	t := 1
	for epoch := 0; epoch < p.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			eta := 1 / (p.Lambda * float64(t))
			t++
			yi := float64(y[idx])
			xi := x[idx]
			var dot float64
			for j := range w {
				dot += w[j] * xi[j]
			}
			margin := yi * (dot + b)
			// Regularization shrink.
			shrink := 1 - eta*p.Lambda
			for j := range w {
				w[j] *= shrink
			}
			if margin < 1 {
				step := eta * yi * weight[y[idx]]
				for j := range w {
					w[j] += step * xi[j]
				}
				b += step * 0.1 // lightly-regularized bias channel
			}
			// Pegasos projection onto the ‖w‖ ≤ 1/√λ ball, which tames
			// the huge early learning rates.
			var norm2 float64
			for j := range w {
				norm2 += w[j] * w[j]
			}
			if bound := 1 / (p.Lambda * norm2); bound < 1 {
				scale := math.Sqrt(bound)
				for j := range w {
					w[j] *= scale
				}
				b *= scale
			}
		}
	}
	p.w = w
	p.bias = b
	return nil
}

// DecisionValue implements ml.DecisionScorer.
func (p *Pegasos) DecisionValue(x []float64) (float64, error) {
	if p.w == nil {
		return 0, fmt.Errorf("svm: model not fitted")
	}
	if len(x) != len(p.w) {
		return 0, fmt.Errorf("svm: input dim %d, model dim %d", len(x), len(p.w))
	}
	f := p.bias
	for j := range p.w {
		f += p.w[j] * x[j]
	}
	return f, nil
}

// Predict implements ml.Classifier.
func (p *Pegasos) Predict(x []float64) (int, error) {
	f, err := p.DecisionValue(x)
	if err != nil {
		return 0, err
	}
	if f >= 0 {
		return ml.Positive, nil
	}
	return ml.Negative, nil
}

// Model exposes the fitted hyperplane for serialization.
func (p *Pegasos) Model() (w []float64, bias float64, err error) {
	if p.w == nil {
		return nil, 0, fmt.Errorf("svm: model not fitted")
	}
	return append([]float64(nil), p.w...), p.bias, nil
}

// SetModel installs a serialized hyperplane.
func (p *Pegasos) SetModel(w []float64, bias float64) error {
	if len(w) == 0 {
		return fmt.Errorf("svm: empty weight vector")
	}
	for i, v := range w {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("svm: weight %d is %v", i, v)
		}
	}
	p.defaults()
	p.w = append([]float64(nil), w...)
	p.bias = bias
	return nil
}
