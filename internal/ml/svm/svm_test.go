package svm

import (
	"math"
	"math/rand"
	"testing"

	"github.com/wsdetect/waldo/internal/ml"
)

// twoBlobs generates a linearly separable 2-D problem.
func twoBlobs(n int, gap float64, seed int64) (x [][]float64, y []int) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			x = append(x, []float64{gap + rng.NormFloat64(), rng.NormFloat64()})
			y = append(y, ml.Positive)
		} else {
			x = append(x, []float64{-gap + rng.NormFloat64(), rng.NormFloat64()})
			y = append(y, ml.Negative)
		}
	}
	return x, y
}

// rings generates a radially separable (non-linear) 2-D problem: inner
// disk positive, outer annulus negative.
func rings(n int, seed int64) (x [][]float64, y []int) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		var r float64
		var label int
		if i%2 == 0 {
			r = rng.Float64() * 0.8
			label = ml.Positive
		} else {
			r = 1.6 + rng.Float64()*0.8
			label = ml.Negative
		}
		ang := rng.Float64() * 2 * math.Pi
		x = append(x, []float64{r * math.Cos(ang), r * math.Sin(ang)})
		y = append(y, label)
	}
	return x, y
}

func accuracy(t *testing.T, cls ml.Classifier, x [][]float64, y []int) float64 {
	t.Helper()
	correct := 0
	for i := range x {
		pred, err := cls.Predict(x[i])
		if err != nil {
			t.Fatal(err)
		}
		if pred == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x))
}

func TestSMOLinearSeparable(t *testing.T) {
	x, y := twoBlobs(200, 3, 1)
	s := &SMO{Kernel: Linear{}, Seed: 2}
	if err := s.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(t, s, x, y); acc < 0.98 {
		t.Errorf("linear SMO accuracy = %v on separable blobs", acc)
	}
	if s.NumSupportVectors() == 0 || s.NumSupportVectors() == len(x) {
		t.Errorf("suspicious SV count %d of %d", s.NumSupportVectors(), len(x))
	}
}

func TestSMORBFNonlinear(t *testing.T) {
	x, y := rings(300, 3)
	s := &SMO{Kernel: RBF{Gamma: 1}, Seed: 4}
	if err := s.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	testX, testY := rings(200, 5)
	if acc := accuracy(t, s, testX, testY); acc < 0.95 {
		t.Errorf("RBF SMO accuracy = %v on rings", acc)
	}
	// A linear SVM cannot solve rings: SMO-RBF must beat it clearly.
	lin := &Pegasos{Seed: 6}
	if err := lin.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if linAcc := accuracy(t, lin, testX, testY); linAcc > 0.8 {
		t.Errorf("linear accuracy %v on rings — problem is not non-linear enough", linAcc)
	}
}

func TestSMOValidation(t *testing.T) {
	s := &SMO{}
	if err := s.Fit(nil, nil); err == nil {
		t.Error("empty fit must fail")
	}
	if _, err := s.Predict([]float64{1, 2}); err == nil {
		t.Error("predict before fit must fail")
	}
	x, y := twoBlobs(50, 3, 7)
	if err := s.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Predict([]float64{1}); err == nil {
		t.Error("dim mismatch must fail")
	}
}

func TestSMOModelRoundTrip(t *testing.T) {
	x, y := rings(200, 8)
	s := &SMO{Kernel: RBF{Gamma: 1}, Seed: 9}
	if err := s.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	sv, coef, bias, err := s.Model()
	if err != nil {
		t.Fatal(err)
	}
	clone := &SMO{Kernel: RBF{Gamma: 1}}
	if err := clone.SetModel(sv, coef, bias); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		a, _ := s.Predict(x[i])
		b, _ := clone.Predict(x[i])
		if a != b {
			t.Fatalf("clone disagrees at %d", i)
		}
	}
	if err := clone.SetModel(nil, nil, 0); err == nil {
		t.Error("empty model must be rejected")
	}
}

func TestPegasosSeparable(t *testing.T) {
	x, y := twoBlobs(400, 3, 10)
	p := &Pegasos{Seed: 11}
	if err := p.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(t, p, x, y); acc < 0.97 {
		t.Errorf("pegasos accuracy = %v", acc)
	}
	w, bias, err := p.Model()
	if err != nil {
		t.Fatal(err)
	}
	clone := &Pegasos{}
	if err := clone.SetModel(w, bias); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(t, clone, x, y); acc < 0.97 {
		t.Errorf("clone accuracy = %v", acc)
	}
	if err := clone.SetModel([]float64{math.NaN()}, 0); err == nil {
		t.Error("NaN weights must be rejected")
	}
}

func TestPegasosClassBalance(t *testing.T) {
	// 95/5 imbalance with overlap: unbalanced hinge tends to starve the
	// minority class; balancing should recover minority recall.
	rng := rand.New(rand.NewSource(12))
	var x [][]float64
	var y []int
	for i := 0; i < 1000; i++ {
		if i%20 == 0 {
			x = append(x, []float64{1.2 + rng.NormFloat64(), rng.NormFloat64()})
			y = append(y, ml.Positive)
		} else {
			x = append(x, []float64{-0.6 + rng.NormFloat64(), rng.NormFloat64()})
			y = append(y, ml.Negative)
		}
	}
	recall := func(cls ml.Classifier) float64 {
		var tp, pos int
		for i := range x {
			if y[i] != ml.Positive {
				continue
			}
			pos++
			if pred, _ := cls.Predict(x[i]); pred == ml.Positive {
				tp++
			}
		}
		return float64(tp) / float64(pos)
	}
	plain := &Pegasos{Seed: 13}
	if err := plain.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	balanced := &Pegasos{Seed: 13, ClassBalance: true}
	if err := balanced.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if recall(balanced) <= recall(plain) {
		t.Errorf("balance should improve minority recall: %v vs %v", recall(balanced), recall(plain))
	}
}

func TestRFFApproximatesRBF(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	const gamma = 0.7
	rff, err := NewRFF(3, 2048, gamma, 15)
	if err != nil {
		t.Fatal(err)
	}
	kern := RBF{Gamma: gamma}
	var maxErr float64
	for trial := 0; trial < 50; trial++ {
		a := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		b := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		za, err := rff.Transform(a)
		if err != nil {
			t.Fatal(err)
		}
		zb, _ := rff.Transform(b)
		var dot float64
		for i := range za {
			dot += za[i] * zb[i]
		}
		if e := math.Abs(dot - kern.Eval(a, b)); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 0.08 {
		t.Errorf("RFF kernel approximation error = %v, want < 0.08 at D=2048", maxErr)
	}
}

func TestRFFSVMNonlinear(t *testing.T) {
	x, y := rings(600, 16)
	m := &RFFSVM{D: 256, Gamma: 1, Seed: 17}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	testX, testY := rings(300, 18)
	if acc := accuracy(t, m, testX, testY); acc < 0.93 {
		t.Errorf("RFF-SVM accuracy = %v on rings", acc)
	}
}

func TestRFFValidation(t *testing.T) {
	if _, err := NewRFF(0, 10, 1, 0); err == nil {
		t.Error("zero input dim must fail")
	}
	if _, err := NewRFF(2, 0, 1, 0); err == nil {
		t.Error("zero D must fail")
	}
	if _, err := NewRFF(2, 10, -1, 0); err == nil {
		t.Error("negative gamma must fail")
	}
	m := &RFFSVM{}
	if _, err := m.Predict([]float64{1}); err == nil {
		t.Error("predict before fit must fail")
	}
}

func TestKernels(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, -1}
	if got := (Linear{}).Eval(a, b); got != 1 {
		t.Errorf("linear = %v, want 1", got)
	}
	if got := (RBF{Gamma: 0.5}).Eval(a, a); got != 1 {
		t.Errorf("rbf self = %v, want 1", got)
	}
	if got := (RBF{Gamma: 0.5}).Eval(a, b); got >= 1 || got <= 0 {
		t.Errorf("rbf cross = %v, want in (0,1)", got)
	}
	if got := (Poly{Degree: 2, Coef: 1}).Eval(a, b); got != 4 {
		t.Errorf("poly = %v, want 4", got)
	}

	for _, tc := range []struct {
		name  string
		gamma float64
		deg   int
		ok    bool
	}{
		{"linear", 0, 0, true},
		{"rbf", 1, 0, true},
		{"rbf", 0, 0, false},
		{"poly", 0, 2, true},
		{"poly", 0, 0, false},
		{"nope", 0, 0, false},
	} {
		_, err := KernelByName(tc.name, tc.gamma, tc.deg, 1)
		if tc.ok && err != nil {
			t.Errorf("KernelByName(%s): %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("KernelByName(%s): expected error", tc.name)
		}
	}
}
