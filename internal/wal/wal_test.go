package wal

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/features"
	"github.com/wsdetect/waldo/internal/geo"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
	"github.com/wsdetect/waldo/internal/telemetry"
)

const (
	testCh   = rfenv.Channel(47)
	testKind = sensor.KindRTLSDR
)

// testReading builds a valid reading distinguishable by seq.
func testReading(seq int) dataset.Reading {
	return dataset.Reading{
		Seq:     seq,
		Loc:     geo.Point{Lat: 40.0 + float64(seq)*1e-4, Lon: -75.0 - float64(seq)*1e-4},
		Channel: testCh,
		Sensor:  testKind,
		Signal:  features.Signal{RSSdBm: -90 + float64(seq%30), CFTdB: 3.5, AFTdB: 1.25},
		AltM:    float64(seq % 4),
		TrueDBm: -88.5,
	}
}

func testReadings(from, n int) []dataset.Reading {
	rs := make([]dataset.Reading, n)
	for i := range rs {
		rs[i] = testReading(from + i)
	}
	return rs
}

func openTestStore(t *testing.T, dir string, reg *telemetry.Registry) (*Store, *Recovered) {
	t.Helper()
	s, rec, err := OpenStore(dir, testCh, testKind, StoreOptions{Metrics: reg})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	return s, rec
}

func TestSegNameRoundTrip(t *testing.T) {
	for _, epoch := range []uint64{1, 42, 9999999999} {
		name := segName(epoch)
		got, ok := parseSegName(name)
		if !ok || got != epoch {
			t.Errorf("parseSegName(%q) = %d, %v; want %d, true", name, got, ok, epoch)
		}
	}
	for _, bad := range []string{"wal.log", "wal.123.log", "wal.00000000ab.log", "snapshot.bin", "wal.0000000001.log.tmp"} {
		if _, ok := parseSegName(bad); ok {
			t.Errorf("parseSegName(%q) accepted", bad)
		}
	}
}

func TestStoreDirNameRoundTrip(t *testing.T) {
	name := StoreDirName(testCh, testKind)
	ch, kind, ok := ParseStoreDirName(name)
	if !ok || ch != testCh || kind != testKind {
		t.Fatalf("ParseStoreDirName(%q) = %v, %v, %v", name, ch, kind, ok)
	}
	for _, bad := range []string{"", "foo", "ch47", "ch47-s", "ch47-s1x", "ch047-s1", "ch47-s1 "} {
		if _, _, ok := ParseStoreDirName(bad); ok {
			t.Errorf("ParseStoreDirName(%q) accepted", bad)
		}
	}
}

func TestStoreRecoverAfterClose(t *testing.T) {
	dir := t.TempDir()
	s, rec := openTestStore(t, dir, nil)
	if len(rec.Readings) != 0 || rec.ModelVersion != 0 {
		t.Fatalf("fresh store recovered state: %+v", rec)
	}
	s.AppendReadings(context.Background(), testReadings(0, 3))
	s.RecordRetrain(context.Background(), 1, 3)
	s.AppendReadings(context.Background(), testReadings(3, 2))
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, rec2 := openTestStore(t, dir, nil)
	defer s2.Close()
	if !reflect.DeepEqual(rec2.Readings, testReadings(0, 5)) {
		t.Errorf("recovered readings mismatch: got %d readings", len(rec2.Readings))
	}
	if rec2.ModelVersion != 1 || rec2.TrainedCount != 3 {
		t.Errorf("recovered model = v%d/%d, want v1/3", rec2.ModelVersion, rec2.TrainedCount)
	}
	if rec2.Stats.Records != 3 || rec2.Stats.TornTail {
		t.Errorf("replay stats = %+v", rec2.Stats)
	}
}

func TestStoreRecoverWithoutClose(t *testing.T) {
	// Sync makes data durable even if the process then dies without
	// Close — simulated by simply abandoning the store.
	dir := t.TempDir()
	s, _ := openTestStore(t, dir, nil)
	s.AppendReadings(context.Background(), testReadings(0, 4))
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	// no Close: crash.

	s2, rec := openTestStore(t, dir, nil)
	defer s2.Close()
	if !reflect.DeepEqual(rec.Readings, testReadings(0, 4)) {
		t.Errorf("recovered %d readings, want 4", len(rec.Readings))
	}
}

func TestCheckpointCompactsSegments(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTestStore(t, dir, nil)
	s.AppendReadings(context.Background(), testReadings(0, 5))
	s.RecordRetrain(context.Background(), 1, 5)
	epoch, err := s.BeginCheckpoint()
	if err != nil {
		t.Fatalf("BeginCheckpoint: %v", err)
	}
	// Appends after the cut belong to the new segment, not the snapshot.
	s.AppendReadings(context.Background(), testReadings(5, 2))
	if err := s.CompleteCheckpoint(epoch, testReadings(0, 5), 1, 5); err != nil {
		t.Fatalf("CompleteCheckpoint: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Old segments below the snapshot epoch must be gone.
	names, err := (OSFS{}).ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if e, ok := parseSegName(name); ok && e < epoch {
			t.Errorf("stale segment %s survived compaction", name)
		}
	}

	s2, rec := openTestStore(t, dir, nil)
	defer s2.Close()
	if !reflect.DeepEqual(rec.Readings, testReadings(0, 7)) {
		t.Errorf("recovered %d readings, want 7 (5 snapshot + 2 tail)", len(rec.Readings))
	}
	if rec.ModelVersion != 1 || rec.TrainedCount != 5 {
		t.Errorf("recovered model = v%d/%d, want v1/5", rec.ModelVersion, rec.TrainedCount)
	}
}

func TestCrashBetweenRotateAndSnapshot(t *testing.T) {
	// A crash after the segment cut but before the snapshot file lands
	// must recover everything from the log alone.
	dir := t.TempDir()
	s, _ := openTestStore(t, dir, nil)
	s.AppendReadings(context.Background(), testReadings(0, 3))
	if _, err := s.BeginCheckpoint(); err != nil {
		t.Fatal(err)
	}
	s.AppendReadings(context.Background(), testReadings(3, 2))
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	// crash: CompleteCheckpoint never runs.

	s2, rec := openTestStore(t, dir, nil)
	defer s2.Close()
	if !reflect.DeepEqual(rec.Readings, testReadings(0, 5)) {
		t.Errorf("recovered %d readings, want 5", len(rec.Readings))
	}
	if rec.Stats.Segments != 2 {
		t.Errorf("replayed %d segments, want 2", rec.Stats.Segments)
	}
}

func TestTornTailTruncatedAndCounted(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.New()
	s, _ := openTestStore(t, dir, nil)
	s.AppendReadings(context.Background(), testReadings(0, 3))
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Simulate an append torn mid-write: a partial frame at EOF.
	seg := filepath.Join(dir, segName(1))
	full := frame([]byte{recAppend, 9, 9, 9})
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(full[:len(full)-2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, rec := openTestStore(t, dir, reg)
	if !rec.Stats.TornTail {
		t.Error("torn tail not reported")
	}
	if !reflect.DeepEqual(rec.Readings, testReadings(0, 3)) {
		t.Errorf("recovered %d readings, want 3", len(rec.Readings))
	}
	scope := fmt.Sprintf("%d/%d", int(testCh), int(testKind))
	if v := reg.Counter("waldo_wal_replay_torn_total", "", "store", scope).Value(); v != 1 {
		t.Errorf("waldo_wal_replay_torn_total = %d, want 1", v)
	}
	s2.Close()

	// The torn bytes were truncated away: a second recovery is clean.
	s3, rec3 := openTestStore(t, dir, nil)
	defer s3.Close()
	if rec3.Stats.TornTail {
		t.Error("torn tail reported again after truncation")
	}
}

func TestCorruptSnapshotRefusesToOpen(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTestStore(t, dir, nil)
	s.AppendReadings(context.Background(), testReadings(0, 3))
	epoch, err := s.BeginCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CompleteCheckpoint(epoch, testReadings(0, 3), 0, 0); err != nil {
		t.Fatal(err)
	}
	s.Close()

	path := filepath.Join(dir, snapshotName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, err = OpenStore(dir, testCh, testKind, StoreOptions{})
	if err == nil {
		t.Fatal("OpenStore accepted a corrupt snapshot")
	}
	if !strings.Contains(err.Error(), "OPERATIONS.md") {
		t.Errorf("error does not point at the runbook: %v", err)
	}
}

func TestSnapshotIdentityChecked(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTestStore(t, dir, nil)
	epoch, err := s.BeginCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CompleteCheckpoint(epoch, testReadings(0, 1), 0, 0); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// The same directory opened under a different store identity must be
	// rejected, not silently merged.
	if _, _, err := OpenStore(dir, testCh+1, testKind, StoreOptions{}); err == nil {
		t.Fatal("OpenStore accepted a snapshot for another channel")
	}
}

func TestWedgedLogFailStop(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.New()
	fs := &flakyFS{FS: OSFS{}}
	s, _, err := OpenStore(dir, testCh, testKind, StoreOptions{FS: fs, Metrics: reg})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	defer s.Close()

	fs.failSyncs.Store(true)
	s.AppendReadings(context.Background(), testReadings(0, 1))
	if err := s.Sync(); err == nil {
		t.Fatal("Sync succeeded through a failing fsync")
	}
	// The log is now wedged: further journal records are dropped and
	// counted, never silently lost.
	s.AppendReadings(context.Background(), testReadings(1, 1))
	s.RecordRetrain(context.Background(), 1, 1)
	scope := fmt.Sprintf("%d/%d", int(testCh), int(testKind))
	if v := reg.Counter("waldo_wal_dropped_records_total", "", "store", scope).Value(); v != 2 {
		t.Errorf("waldo_wal_dropped_records_total = %d, want 2", v)
	}
	if v := reg.Gauge("waldo_wal_failed", "", "store", scope).Value(); v != 1 {
		t.Errorf("waldo_wal_failed = %v, want 1", v)
	}
	if v := reg.Counter("waldo_wal_fsync_errors_total", "", "store", scope).Value(); v == 0 {
		t.Error("waldo_wal_fsync_errors_total not incremented")
	}
}

func TestRetrainRecordRoundTrip(t *testing.T) {
	payload := make([]byte, 9)
	payload[0] = recRetrain
	payload[1] = 7 // version 7 little-endian
	payload[5] = 3 // trained 3
	version, trained, err := DecodeRetrainRecord(payload)
	if err != nil || version != 7 || trained != 3 {
		t.Fatalf("DecodeRetrainRecord = %d, %d, %v", version, trained, err)
	}
	if _, _, err := DecodeRetrainRecord(payload[:8]); err == nil {
		t.Error("short retrain record accepted")
	}
}
