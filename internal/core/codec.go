package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/features"
	"github.com/wsdetect/waldo/internal/geo"
	"github.com/wsdetect/waldo/internal/ml"
	"github.com/wsdetect/waldo/internal/ml/bayes"
	"github.com/wsdetect/waldo/internal/ml/svm"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
)

// Model descriptor wire format (little-endian). The descriptor is what a
// WSD downloads per channel per area (§5 measures NB ≈ 4 kB vs SVM ≈ 40 kB
// with OpenCV's text serialization; this binary codec is denser but keeps
// the same NB ≪ SVM ordering because SVM descriptors carry the feature map
// or support vectors).
var modelMagic = [4]byte{'W', 'L', 'D', 'M'}

const codecVersion uint16 = 1

// kernel tags for KindSVMExact serialization.
const (
	kernelTagLinear uint8 = 1
	kernelTagRBF    uint8 = 2
	kernelTagPoly   uint8 = 3
)

// EncodeModel serializes a trained model to w.
func EncodeModel(w io.Writer, m *Model) error {
	if m == nil || len(m.locals) == 0 {
		return fmt.Errorf("core: cannot encode an empty model")
	}
	var buf bytes.Buffer
	buf.Write(modelMagic[:])
	writeU16(&buf, codecVersion)
	writeU16(&buf, uint16(m.Channel))
	buf.WriteByte(byte(m.Sensor))
	buf.WriteByte(byte(m.Features))
	buf.WriteByte(byte(m.Kind))
	writeU16(&buf, uint16(len(m.locals)))
	writeF64(&buf, m.Origin.Lat)
	writeF64(&buf, m.Origin.Lon)
	writeF64(&buf, m.margin)

	for i := range m.locals {
		writeF64(&buf, m.centers[i][0])
		writeF64(&buf, m.centers[i][1])
		lm := &m.locals[i]
		if lm.constant {
			buf.WriteByte(0)
			buf.WriteByte(byte(lm.constantLabel))
			continue
		}
		buf.WriteByte(1)
		mean, scale := lm.std.Params()
		writeU16(&buf, uint16(len(mean)))
		writeF64s(&buf, mean)
		writeF64s(&buf, scale)
		if err := encodeClassifier(&buf, m.Kind, lm.clf); err != nil {
			return fmt.Errorf("core: locality %d: %w", i, err)
		}
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// EncodedSize returns the descriptor size in bytes.
func EncodedSize(m *Model) (int, error) {
	var buf bytes.Buffer
	if err := EncodeModel(&buf, m); err != nil {
		return 0, err
	}
	return buf.Len(), nil
}

func encodeClassifier(buf *bytes.Buffer, kind ClassifierKind, clf ml.Classifier) error {
	switch kind {
	case KindNB:
		nb, ok := clf.(*bayes.GaussianNB)
		if !ok {
			return fmt.Errorf("classifier kind/type mismatch: %T", clf)
		}
		prior, mean, variance, err := nb.Model()
		if err != nil {
			return err
		}
		writeF64(buf, prior[0])
		writeF64(buf, prior[1])
		writeU32(buf, uint32(len(mean[0])))
		for c := 0; c < 2; c++ {
			writeF64s(buf, mean[c])
			writeF64s(buf, variance[c])
		}
		return nil

	case KindLinearSVM:
		lin, ok := clf.(*svm.Pegasos)
		if !ok {
			return fmt.Errorf("classifier kind/type mismatch: %T", clf)
		}
		w, b, err := lin.Model()
		if err != nil {
			return err
		}
		writeU32(buf, uint32(len(w)))
		writeF64s(buf, w)
		writeF64(buf, b)
		return nil

	case KindSVM:
		rsvm, ok := clf.(*svm.RFFSVM)
		if !ok {
			return fmt.Errorf("classifier kind/type mismatch: %T", clf)
		}
		rff, w, b, err := rsvm.Model()
		if err != nil {
			return err
		}
		rw, rb := rff.Params()
		writeU32(buf, uint32(len(rw)))
		writeU32(buf, uint32(len(rw[0])))
		for _, row := range rw {
			writeF64s(buf, row)
		}
		writeF64s(buf, rb)
		writeF64s(buf, w)
		writeF64(buf, b)
		return nil

	case KindSVMExact:
		s, ok := clf.(*svm.SMO)
		if !ok {
			return fmt.Errorf("classifier kind/type mismatch: %T", clf)
		}
		if err := encodeKernel(buf, s.Kernel); err != nil {
			return err
		}
		sv, coef, b, err := s.Model()
		if err != nil {
			return err
		}
		writeU32(buf, uint32(len(sv)))
		writeU32(buf, uint32(len(sv[0])))
		for _, row := range sv {
			writeF64s(buf, row)
		}
		writeF64s(buf, coef)
		writeF64(buf, b)
		return nil

	default:
		return fmt.Errorf("unsupported classifier kind %v", kind)
	}
}

func encodeKernel(buf *bytes.Buffer, k svm.Kernel) error {
	switch kk := k.(type) {
	case svm.Linear:
		buf.WriteByte(kernelTagLinear)
		writeF64(buf, 0)
		writeU16(buf, 0)
		writeF64(buf, 0)
	case svm.RBF:
		buf.WriteByte(kernelTagRBF)
		writeF64(buf, kk.Gamma)
		writeU16(buf, 0)
		writeF64(buf, 0)
	case svm.Poly:
		buf.WriteByte(kernelTagPoly)
		writeF64(buf, 0)
		writeU16(buf, uint16(kk.Degree))
		writeF64(buf, kk.Coef)
	default:
		return fmt.Errorf("unsupported kernel %T", k)
	}
	return nil
}

// DecodeModel reads a model descriptor.
func DecodeModel(r io.Reader) (*Model, error) {
	d := &decoder{r: r}
	var magic [4]byte
	d.bytes(magic[:])
	if d.err != nil || magic != modelMagic {
		return nil, fmt.Errorf("core: bad model magic %v", magic)
	}
	if v := d.u16(); v != codecVersion {
		return nil, fmt.Errorf("core: unsupported descriptor version %d", v)
	}
	ch := rfenv.Channel(d.u16())
	sens := sensor.Kind(d.byte())
	fset := features.Set(d.byte())
	kind := ClassifierKind(d.byte())
	k := int(d.u16())
	origin := geo.Point{Lat: d.f64(), Lon: d.f64()}
	margin := d.f64()
	if d.err != nil {
		return nil, fmt.Errorf("core: decode header: %w", d.err)
	}
	if !ch.Valid() || !fset.Valid() || !kind.Valid() || k < 1 || !origin.Valid() || margin < 0 || math.IsNaN(margin) {
		return nil, fmt.Errorf("core: invalid descriptor header (ch=%d features=%d kind=%d k=%d margin=%v)",
			ch, fset, kind, k, margin)
	}
	if _, err := sensor.SpecFor(sens); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	m := &Model{
		Channel:  ch,
		Sensor:   sens,
		Features: fset,
		Kind:     kind,
		Origin:   origin,
		margin:   margin,
		proj:     geo.NewProjector(origin),
	}
	for i := 0; i < k; i++ {
		center := []float64{d.f64(), d.f64()}
		flag := d.byte()
		if d.err != nil {
			return nil, fmt.Errorf("core: locality %d: %w", i, d.err)
		}
		m.centers = append(m.centers, center)
		if flag == 0 {
			label := dataset.Label(d.byte())
			if label != dataset.LabelSafe && label != dataset.LabelNotSafe {
				return nil, fmt.Errorf("core: locality %d: invalid constant label %d", i, label)
			}
			m.locals = append(m.locals, localModel{constant: true, constantLabel: label})
			continue
		}
		dim := int(d.u16())
		mean := d.f64s(dim)
		scale := d.f64s(dim)
		if d.err != nil {
			return nil, fmt.Errorf("core: locality %d standardizer: %w", i, d.err)
		}
		std, err := ml.NewStandardizerFromParams(mean, scale)
		if err != nil {
			return nil, fmt.Errorf("core: locality %d: %w", i, err)
		}
		clf, err := decodeClassifier(d, kind)
		if err != nil {
			return nil, fmt.Errorf("core: locality %d classifier: %w", i, err)
		}
		m.locals = append(m.locals, localModel{std: std, clf: clf})
	}
	return m, nil
}

func decodeClassifier(d *decoder, kind ClassifierKind) (ml.Classifier, error) {
	switch kind {
	case KindNB:
		var prior [2]float64
		prior[0] = d.f64()
		prior[1] = d.f64()
		dim := int(d.u32())
		if d.err != nil || dim < 1 || dim > 1<<16 {
			return nil, fmt.Errorf("bad NB dim %d: %w", dim, d.err)
		}
		var mean, variance [2][]float64
		for c := 0; c < 2; c++ {
			mean[c] = d.f64s(dim)
			variance[c] = d.f64s(dim)
		}
		if d.err != nil {
			return nil, d.err
		}
		nb := &bayes.GaussianNB{}
		if err := nb.SetModel(prior, mean, variance); err != nil {
			return nil, err
		}
		return nb, nil

	case KindLinearSVM:
		n := int(d.u32())
		if d.err != nil || n < 1 || n > 1<<20 {
			return nil, fmt.Errorf("bad weight count %d: %w", n, d.err)
		}
		w := d.f64s(n)
		b := d.f64()
		if d.err != nil {
			return nil, d.err
		}
		lin := &svm.Pegasos{}
		if err := lin.SetModel(w, b); err != nil {
			return nil, err
		}
		return lin, nil

	case KindSVM:
		rows := int(d.u32())
		cols := int(d.u32())
		if d.err != nil || rows < 1 || cols < 1 || rows > 1<<16 || cols > 1<<12 {
			return nil, fmt.Errorf("bad RFF shape %dx%d: %w", rows, cols, d.err)
		}
		rw := make([][]float64, rows)
		for i := range rw {
			rw[i] = d.f64s(cols)
		}
		rb := d.f64s(rows)
		w := d.f64s(rows)
		b := d.f64()
		if d.err != nil {
			return nil, d.err
		}
		rff, err := svm.NewRFFFromParams(rw, rb)
		if err != nil {
			return nil, err
		}
		rsvm := &svm.RFFSVM{}
		if err := rsvm.SetModel(rff, w, b); err != nil {
			return nil, err
		}
		return rsvm, nil

	case KindSVMExact:
		tag := d.byte()
		gamma := d.f64()
		degree := int(d.u16())
		coef := d.f64()
		var name string
		switch tag {
		case kernelTagLinear:
			name = "linear"
		case kernelTagRBF:
			name = "rbf"
		case kernelTagPoly:
			name = "poly"
		default:
			return nil, fmt.Errorf("bad kernel tag %d", tag)
		}
		kern, err := svm.KernelByName(name, gamma, degree, coef)
		if err != nil {
			return nil, err
		}
		nsv := int(d.u32())
		dim := int(d.u32())
		if d.err != nil || nsv < 1 || dim < 1 || nsv > 1<<20 || dim > 1<<12 {
			return nil, fmt.Errorf("bad SV shape %dx%d: %w", nsv, dim, d.err)
		}
		sv := make([][]float64, nsv)
		for i := range sv {
			sv[i] = d.f64s(dim)
		}
		coefs := d.f64s(nsv)
		b := d.f64()
		if d.err != nil {
			return nil, d.err
		}
		s := &svm.SMO{Kernel: kern}
		if err := s.SetModel(sv, coefs, b); err != nil {
			return nil, err
		}
		return s, nil

	default:
		return nil, fmt.Errorf("unsupported classifier kind %v", kind)
	}
}

// --- primitive helpers ---

func writeU16(buf *bytes.Buffer, v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	buf.Write(b[:])
}

func writeU32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	buf.Write(b[:])
}

func writeF64(buf *bytes.Buffer, v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	buf.Write(b[:])
}

func writeF64s(buf *bytes.Buffer, vs []float64) {
	for _, v := range vs {
		writeF64(buf, v)
	}
}

// decoder wraps sticky-error reads.
type decoder struct {
	r   io.Reader
	err error
}

func (d *decoder) bytes(p []byte) {
	if d.err != nil {
		return
	}
	_, d.err = io.ReadFull(d.r, p)
}

func (d *decoder) byte() byte {
	var b [1]byte
	d.bytes(b[:])
	return b[0]
}

func (d *decoder) u16() uint16 {
	var b [2]byte
	d.bytes(b[:])
	return binary.LittleEndian.Uint16(b[:])
}

func (d *decoder) u32() uint32 {
	var b [4]byte
	d.bytes(b[:])
	return binary.LittleEndian.Uint32(b[:])
}

func (d *decoder) f64() float64 {
	var b [8]byte
	d.bytes(b[:])
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
}

func (d *decoder) f64s(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	return out
}
