// Package kriging implements ordinary kriging interpolation of RSS fields,
// the geostatistical member of the measurement-augmented database family
// the paper cites as prior work ([49]: "Revisiting TV coverage estimation
// with measurement-based statistical interpolation", and [10]). Where
// V-Scope fits a radial propagation law, kriging interpolates the field
// directly from nearby measurements weighted by a fitted spatial
// covariance (variogram) — strictly more expressive than a distance law,
// but still location-only: at query time it cannot see the device's own
// spectrum view, which is Waldo's edge.
package kriging

import (
	"fmt"
	"math"
	"sort"

	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/geo"
)

// Config parameterizes model fitting and prediction.
type Config struct {
	// Neighbors is the number of nearest measurements used per
	// prediction (local kriging); default 16.
	Neighbors int
	// MaxLagM is the maximum separation used when fitting the
	// variogram; default 8000 m.
	MaxLagM float64
	// LagBins is the number of variogram bins; default 20.
	LagBins int
	// VariogramPairs caps the random pair sample used for the empirical
	// variogram; default 200000.
	VariogramPairs int
	// ThresholdDBm is the white-space decision level; 0 means −84.
	ThresholdDBm float64
	// ProtectRadiusM is the protection dilation; 0 means 6000.
	ProtectRadiusM float64
}

func (c *Config) defaults() error {
	if c.Neighbors == 0 {
		c.Neighbors = 16
	}
	if c.MaxLagM == 0 {
		c.MaxLagM = 8000
	}
	if c.LagBins == 0 {
		c.LagBins = 20
	}
	if c.VariogramPairs == 0 {
		c.VariogramPairs = 200000
	}
	if c.ThresholdDBm == 0 {
		c.ThresholdDBm = -84
	}
	if c.ProtectRadiusM == 0 {
		c.ProtectRadiusM = 6000
	}
	if c.Neighbors < 3 || c.MaxLagM <= 0 || c.LagBins < 4 || c.VariogramPairs < 100 {
		return fmt.Errorf("kriging: invalid config %+v", *c)
	}
	return nil
}

// Variogram is a fitted exponential variogram
// γ(h) = nugget + sill·(1 − e^{−h/range}).
type Variogram struct {
	Nugget float64
	Sill   float64
	RangeM float64
}

// At evaluates the variogram at separation h meters.
func (v Variogram) At(h float64) float64 {
	if h <= 0 {
		return 0
	}
	return v.Nugget + v.Sill*(1-math.Exp(-h/v.RangeM))
}

// Model is a fitted kriging interpolator for one channel.
type Model struct {
	cfg   Config
	vario Variogram
	proj  *geo.Projector
	xs    []geo.XY
	rss   []float64
	grid  *geo.GridIndex
}

// Fit builds the interpolator from one channel's readings.
func Fit(readings []dataset.Reading, cfg Config) (*Model, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	if len(readings) < cfg.Neighbors+1 {
		return nil, fmt.Errorf("kriging: %d readings, need more than %d", len(readings), cfg.Neighbors)
	}
	ch := readings[0].Channel
	for i := range readings {
		if readings[i].Channel != ch {
			return nil, fmt.Errorf("kriging: mixed channels")
		}
	}

	m := &Model{cfg: cfg, proj: geo.NewProjector(readings[0].Loc)}
	grid, err := geo.NewGridIndex(readings[0].Loc, cfg.MaxLagM/2)
	if err != nil {
		return nil, err
	}
	m.grid = grid
	m.xs = make([]geo.XY, len(readings))
	m.rss = make([]float64, len(readings))
	for i := range readings {
		m.xs[i] = m.proj.ToXY(readings[i].Loc)
		m.rss[i] = readings[i].Signal.RSSdBm
		grid.Insert(i, readings[i].Loc)
	}

	vario, err := fitVariogram(m.xs, m.rss, cfg)
	if err != nil {
		return nil, err
	}
	m.vario = vario
	return m, nil
}

// Variogram exposes the fitted spatial covariance (for reports).
func (m *Model) Variogram() Variogram { return m.vario }

// fitVariogram computes the empirical semivariogram on a deterministic
// pair sample and fits the exponential model by coarse grid search.
func fitVariogram(xs []geo.XY, rss []float64, cfg Config) (Variogram, error) {
	binW := cfg.MaxLagM / float64(cfg.LagBins)
	sum := make([]float64, cfg.LagBins)
	cnt := make([]int, cfg.LagBins)

	n := len(xs)
	// Deterministic strided pair sample.
	stride := n*n/cfg.VariogramPairs + 1
	pair := 0
	for idx := 0; idx < n*n; idx += stride {
		i := idx / n
		j := idx % n
		if i >= j {
			continue
		}
		d := xs[i].DistanceM(xs[j])
		if d >= cfg.MaxLagM {
			continue
		}
		bin := int(d / binW)
		diff := rss[i] - rss[j]
		sum[bin] += diff * diff / 2
		cnt[bin]++
		pair++
	}
	if pair < 50 {
		return Variogram{}, fmt.Errorf("kriging: only %d usable pairs for the variogram", pair)
	}

	lag := make([]float64, 0, cfg.LagBins)
	gamma := make([]float64, 0, cfg.LagBins)
	for b := 0; b < cfg.LagBins; b++ {
		if cnt[b] < 5 {
			continue
		}
		lag = append(lag, (float64(b)+0.5)*binW)
		gamma = append(gamma, sum[b]/float64(cnt[b]))
	}
	if len(lag) < 4 {
		return Variogram{}, fmt.Errorf("kriging: too few populated variogram bins")
	}

	// Grid-search the exponential fit.
	sorted := append([]float64(nil), gamma...)
	sort.Float64s(sorted)
	maxGamma := sorted[len(sorted)-1]
	best := Variogram{}
	bestErr := math.Inf(1)
	for _, nug := range []float64{0, maxGamma * 0.1, maxGamma * 0.25} {
		for fs := 0.5; fs <= 1.5; fs += 0.125 {
			sill := maxGamma * fs
			for rge := binW; rge <= cfg.MaxLagM; rge += binW {
				cand := Variogram{Nugget: nug, Sill: sill, RangeM: rge}
				var ss float64
				for k := range lag {
					r := gamma[k] - cand.At(lag[k])
					ss += r * r
				}
				if ss < bestErr {
					bestErr = ss
					best = cand
				}
			}
		}
	}
	if best.RangeM == 0 {
		return Variogram{}, fmt.Errorf("kriging: variogram fit failed")
	}
	return best, nil
}

// PredictRSS interpolates the field at p with local ordinary kriging.
func (m *Model) PredictRSS(p geo.Point) (float64, error) {
	ids := m.nearest(p, m.cfg.Neighbors)
	if len(ids) < 3 {
		return 0, fmt.Errorf("kriging: only %d neighbors near %v", len(ids), p)
	}
	q := m.proj.ToXY(p)
	k := len(ids)

	// Ordinary kriging system: [Γ 1; 1ᵀ 0] [w; μ] = [γ; 1].
	dim := k + 1
	a := make([][]float64, dim)
	for i := range a {
		a[i] = make([]float64, dim+1)
	}
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			a[i][j] = m.vario.At(m.xs[ids[i]].DistanceM(m.xs[ids[j]]))
		}
		a[i][k] = 1
		a[i][dim] = m.vario.At(m.xs[ids[i]].DistanceM(q))
	}
	for j := 0; j < k; j++ {
		a[k][j] = 1
	}
	a[k][k] = 0
	a[k][dim] = 1

	w, err := solve(a)
	if err != nil {
		return 0, fmt.Errorf("kriging: singular system at %v: %w", p, err)
	}
	var est float64
	for i := 0; i < k; i++ {
		est += w[i] * m.rss[ids[i]]
	}
	return est, nil
}

// Available answers the white-space query: the predicted field must stay
// under the threshold everywhere within the protection radius, probed at
// the point and at ring samples.
func (m *Model) Available(p geo.Point) (bool, error) {
	// Probe the whole protection disk: concentric rings out to the
	// protection radius, so decodable regions anywhere within it deny
	// the query.
	probes := []geo.Point{p}
	for _, frac := range []float64{1.0 / 3, 2.0 / 3, 1} {
		r := m.cfg.ProtectRadiusM * frac
		for bearing := 0.0; bearing < 360; bearing += 30 {
			probes = append(probes, p.Offset(bearing, r))
		}
	}
	for _, probe := range probes {
		est, err := m.PredictRSS(probe)
		if err != nil {
			// Outside measured coverage: no corroboration, stay safe
			// for incumbents.
			return false, nil
		}
		if est > m.cfg.ThresholdDBm {
			return false, nil
		}
	}
	return true, nil
}

// nearest collects the ids of the closest stored readings, widening the
// search ring until enough are found.
func (m *Model) nearest(p geo.Point, k int) []int {
	type cand struct {
		id int
		d  float64
	}
	q := m.proj.ToXY(p)
	for radius := m.cfg.MaxLagM / 4; radius <= m.cfg.MaxLagM*4; radius *= 2 {
		var cands []cand
		m.grid.WithinRadius(p, radius, func(id int) bool {
			cands = append(cands, cand{id: id, d: m.xs[id].DistanceM(q)})
			return true
		})
		if len(cands) >= k {
			sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
			ids := make([]int, k)
			for i := 0; i < k; i++ {
				ids[i] = cands[i].id
			}
			return ids
		}
	}
	return nil
}

// solve performs Gaussian elimination with partial pivoting on the
// augmented matrix a (n rows, n+1 columns), returning the solution.
func solve(a [][]float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("singular at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		// Eliminate.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for c := col; c <= n; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = a[i][n] / a[i][i]
	}
	return x, nil
}
