package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkBuildModelParallel measures the Model Constructor on a
// campaign-scale store (5,000 readings, K=12) with the training fan-out
// disabled and enabled. On a multi-core host workers=auto should build the
// same (bit-identical) model several times faster; on a single-core host
// the two are equivalent by construction.
func BenchmarkBuildModelParallel(b *testing.B) {
	readings, labels := synthReadings(5000, 31)
	for _, bench := range []struct {
		name    string
		workers int
	}{{"workers=1", 1}, {"workers=auto", 0}} {
		b.Run(bench.name, func(b *testing.B) {
			cfg := ConstructorConfig{ClusterK: 12, Workers: bench.workers}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := BuildModel(readings, labels, cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
		})
	}
}

// BenchmarkRetrainConcurrentSubmit measures the upload path with and
// without a model rebuild in flight: the snapshot-retrain design means
// Submit+Model latency must not inflate while training runs, so the two
// sub-benchmarks should report near-identical ns/op.
//
// The store is bootstrapped large enough (50k readings) that one rebuild
// outlasts the measured window, and the rebuild sub-benchmark handshakes
// with the retrainer goroutine before starting the clock so a rebuild is
// provably in flight while Submit is timed (the rebuilds metric counts
// background rebuilds that completed during the run). Submitted batches
// rotate through a pre-generated pool so the store keeps realistic
// location diversity — repeating identical locations degrades
// Algorithm 1's hot-reading index into pile scans.
func BenchmarkRetrainConcurrentSubmit(b *testing.B) {
	const bootN = 50_000
	pool, _ := synthReadings(bootN+2000, 33)
	newUpdater := func(b *testing.B) (*Updater, []UploadBatch) {
		u, err := NewUpdater(UpdaterConfig{Constructor: ConstructorConfig{ClusterK: 8}})
		if err != nil {
			b.Fatal(err)
		}
		u.Bootstrap(pool[:bootN])
		if _, err := u.Retrain(); err != nil {
			b.Fatal(err)
		}
		batches := make([]UploadBatch, (len(pool)-bootN)/4)
		for i := range batches {
			lo := bootN + i*4
			batches[i] = UploadBatch{Readings: pool[lo : lo+4], CISpanDB: 0.5}
		}
		return u, batches
	}
	submitLoop := func(b *testing.B, u *Updater, batches []UploadBatch) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := u.Submit(batches[i%len(batches)]); err != nil {
				b.Fatal(err)
			}
			u.Model()
		}
		b.StopTimer()
	}

	b.Run("idle", func(b *testing.B) {
		u, batches := newUpdater(b)
		submitLoop(b, u, batches)
	})
	b.Run("during-rebuild", func(b *testing.B) {
		u, batches := newUpdater(b)
		started := make(chan struct{})
		stop := make(chan struct{})
		var rebuilds atomic.Int64
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for first := true; ; first = false {
				select {
				case <-stop:
					return
				default:
				}
				if first {
					close(started)
				}
				if _, err := u.Retrain(); err != nil {
					b.Error(err)
					return
				}
				rebuilds.Add(1)
				// Safety bound: stop relaunching once submits have grown
				// the store well past the bootstrap, so the final rebuild
				// the deferred Wait drains stays tractable.
				if u.Size() > 8*bootN {
					return
				}
			}
		}()
		<-started
		// Yield so the retrainer snapshots and enters the rebuild before
		// the clock starts.
		time.Sleep(20 * time.Millisecond)
		submitLoop(b, u, batches)
		close(stop)
		wg.Wait()
		b.ReportMetric(float64(rebuilds.Load()), "rebuilds")
	})
}

// BenchmarkRetrainStoreScale charts one full relabel+rebuild against store
// size, the §3 Algorithm 1 pipeline cost the dbserver pays per version.
func BenchmarkRetrainStoreScale(b *testing.B) {
	for _, n := range []int{1000, 5000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			readings, _ := synthReadings(n, 37)
			u, err := NewUpdater(UpdaterConfig{Constructor: ConstructorConfig{ClusterK: 12}})
			if err != nil {
				b.Fatal(err)
			}
			u.Bootstrap(readings)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := u.Retrain(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
