// Command waldo-loadgen is the repo's end-to-end performance harness: it
// bootstraps a central spectrum database from a simulated war-driving
// campaign, drives N concurrent White Space Device clients through
// scan/upload cycles against the server's real HTTP API, and prints a
// throughput and latency report sourced from the internal/telemetry
// registries on both sides of the wire.
//
// Usage:
//
//	waldo-loadgen -clients 16 -duration 10s -channels 46,47
//
// The server runs in-process (an httptest listener on a real socket), so
// a single run measures the full stack — HTTP routing, model descriptor
// encoding/decoding, α′ upload gating, updater ingestion — without any
// external setup. Add -metrics to dump the raw Prometheus exposition
// after the report.
//
// The default drive mode is closed-loop: each client starts its next
// cycle only when the previous one finishes, so a slowing server quietly
// lowers the offered load and hides its own queueing delay (coordinated
// omission). -rate switches to an open-loop schedule: cycles are planned
// at the fixed offered rate, latency is measured from each cycle's
// scheduled start, and sends the client pool cannot absorb are reported
// as dropped/late instead of silently stretching the plan:
//
//	waldo-loadgen -clients 16 -rate 500 -duration 10s
//
// -faults replays a seeded fault schedule (internal/faultinject) on
// every client's transport, exercising the resilience layer under load:
//
//	waldo-loadgen -clients 8 -duration 5s -faults 'drop=0.05,error=0.05,delay=0.1,latency=2ms'
//
// Recognized keys: drop, error, corrupt, truncate, delay, hang
// (per-request probabilities), latency (duration for delay faults),
// status (code for error faults), window (requests before the schedule
// clears; 0 = never), and seed (defaults to -seed). The report then
// includes injected-fault counts next to the client retry/stale/breaker
// metrics.
//
// -trajectory switches the drive loop from scan/upload cycles to the
// spatiotemporal query surface: each client follows a drifting
// trajectory through the metro, querying GET /v1/availability at its
// position and POST /v1/route for its look-ahead polyline every cycle.
// This is the load shape behind `make bench-geo`:
//
//	waldo-loadgen -clients 16 -trajectory -rate 500 -duration 10s
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/wsdetect/waldo/internal/adminhttp"
	"github.com/wsdetect/waldo/internal/benchharness"
	"github.com/wsdetect/waldo/internal/client"
	"github.com/wsdetect/waldo/internal/cluster"
	"github.com/wsdetect/waldo/internal/core"
	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/dbserver"
	"github.com/wsdetect/waldo/internal/faultinject"
	"github.com/wsdetect/waldo/internal/geo"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
	"github.com/wsdetect/waldo/internal/telemetry"
	"github.com/wsdetect/waldo/internal/wardrive"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "waldo-loadgen:", err)
		os.Exit(1)
	}
}

type config struct {
	clients     int
	rate        float64
	duration    time.Duration
	channels    []rfenv.Channel
	samples     int
	clusterK    int
	alphaDB     float64
	alphaPrime  float64
	uploadBatch int
	batch       int
	seed        int64
	dumpMetrics bool
	jsonPath    string
	faults      *faultinject.Schedule
	gateway     string
	cellDeg     float64
	adminAddr   string
	trajectory  bool
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("waldo-loadgen", flag.ContinueOnError)
	clients := fs.Int("clients", 8, "concurrent WSD clients")
	rate := fs.Float64("rate", 0, "open-loop offered scan-cycle rate per second across all clients (0 = closed loop)")
	duration := fs.Duration("duration", 5*time.Second, "load duration")
	channelsStr := fs.String("channels", "46,47", "comma-separated TV channels")
	samples := fs.Int("samples", 600, "bootstrap campaign size per channel")
	clusterK := fs.Int("clusters", 3, "localities per model")
	alpha := fs.Float64("alpha", 0.5, "detector sensitivity α (dB)")
	alphaPrime := fs.Float64("alpha-prime", 1.0, "upload acceptance CI span α′ (dB)")
	uploadBatch := fs.Int("upload-batch", 4, "readings per upload")
	batch := fs.Int("batch", 0, "buffer readings client-side and ship binary batch frames of this size (0 = per-scan JSON uploads)")
	seed := fs.Int64("seed", 42, "simulation seed")
	dump := fs.Bool("metrics", false, "dump the server's Prometheus exposition after the report")
	jsonPath := fs.String("json", "", "also write the report as JSON to this path ('-' for stdout)")
	faults := fs.String("faults", "", "seeded fault schedule on the client transport, e.g. 'drop=0.05,error=0.05,delay=0.1,latency=2ms' (see package doc)")
	gateway := fs.String("gateway", "", "drive an external cluster gateway at this base URL instead of the in-process server (see waldo-gateway)")
	cellDeg := fs.Float64("cell-deg", cluster.DefaultCellDeg, "geo-cell quantum for grouping -gateway bootstrap uploads (match the gateway's -cell-deg)")
	adminAddr := fs.String("admin-addr", "", "opt-in admin listener for the loadgen process (pprof, /metrics, /debug/traces); empty = disabled")
	trajectory := fs.Bool("trajectory", false, "drive availability/route queries along per-client trajectories instead of scan/upload cycles")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	cfg := config{
		clients:     *clients,
		rate:        *rate,
		duration:    *duration,
		samples:     *samples,
		clusterK:    *clusterK,
		alphaDB:     *alpha,
		alphaPrime:  *alphaPrime,
		uploadBatch: *uploadBatch,
		batch:       *batch,
		seed:        *seed,
		dumpMetrics: *dump,
		jsonPath:    *jsonPath,
		gateway:     strings.TrimRight(*gateway, "/"),
		cellDeg:     *cellDeg,
		adminAddr:   *adminAddr,
		trajectory:  *trajectory,
	}
	if cfg.clients < 1 {
		return config{}, fmt.Errorf("-clients must be ≥ 1")
	}
	for _, part := range strings.Split(*channelsStr, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return config{}, fmt.Errorf("bad channel %q", part)
		}
		ch := rfenv.Channel(n)
		if !ch.Valid() {
			return config{}, fmt.Errorf("channel %d outside TV band", n)
		}
		cfg.channels = append(cfg.channels, ch)
	}
	if len(cfg.channels) == 0 {
		return config{}, fmt.Errorf("no channels")
	}
	if *faults != "" {
		sched, err := parseFaults(*faults, uint64(cfg.seed))
		if err != nil {
			return config{}, err
		}
		cfg.faults = sched
	}
	return cfg, nil
}

// parseFaults builds a faultinject.Schedule from "key=value,..." pairs.
func parseFaults(spec string, defaultSeed uint64) (*faultinject.Schedule, error) {
	s := &faultinject.Schedule{Seed: defaultSeed}
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad -faults entry %q (want key=value)", part)
		}
		prob := func(dst *float64) error {
			p, err := strconv.ParseFloat(v, 64)
			if err != nil || p < 0 || p > 1 {
				return fmt.Errorf("bad -faults probability %q=%q", k, v)
			}
			*dst = p
			return nil
		}
		var err error
		switch k {
		case "drop":
			err = prob(&s.DropP)
		case "error":
			err = prob(&s.ErrorP)
		case "corrupt":
			err = prob(&s.CorruptP)
		case "truncate":
			err = prob(&s.TruncateP)
		case "delay":
			err = prob(&s.DelayP)
		case "hang":
			err = prob(&s.HangP)
		case "latency":
			s.Latency, err = time.ParseDuration(v)
		case "status":
			s.Status, err = strconv.Atoi(v)
		case "window":
			s.Window, err = strconv.ParseUint(v, 10, 64)
		case "seed":
			s.Seed, err = strconv.ParseUint(v, 10, 64)
		default:
			return nil, fmt.Errorf("unknown -faults key %q", k)
		}
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

func run(args []string) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}

	// --- Bootstrap: simulated campaign → trained spectrum database. ---
	start := time.Now()
	env, err := rfenv.BuildMetro(uint64(cfg.seed))
	if err != nil {
		return err
	}
	route, err := wardrive.GenerateRoute(wardrive.RouteConfig{
		Area: env.Area, Samples: cfg.samples, Seed: cfg.seed,
	})
	if err != nil {
		return err
	}
	rtl, err := sensor.SpecFor(sensor.KindRTLSDR)
	if err != nil {
		return err
	}
	campaign, err := wardrive.Run(wardrive.CampaignConfig{
		Env: env, Route: route,
		Sensors:  []sensor.Spec{rtl},
		Channels: cfg.channels,
		Seed:     cfg.seed,
	})
	if err != nil {
		return err
	}
	var all []dataset.Reading
	for _, ch := range cfg.channels {
		all = append(all, campaign.Readings(ch, sensor.KindRTLSDR)...)
	}
	// In gateway mode the cluster is external: bootstrap travels through
	// the gateway's routed upload path so each (channel, cell) group lands
	// on its owning shard, and models come from a broadcast retrain.
	var srv *dbserver.Server
	var baseURL string
	if cfg.gateway != "" {
		if err := bootstrapGateway(cfg, all); err != nil {
			return fmt.Errorf("gateway bootstrap: %w", err)
		}
		baseURL = cfg.gateway
	} else {
		srv = dbserver.New(dbserver.Config{
			Constructor:  core.ConstructorConfig{ClusterK: cfg.clusterK, Seed: cfg.seed},
			AlphaPrimeDB: cfg.alphaPrime,
		})
		if err := srv.Bootstrap(all); err != nil {
			return err
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		baseURL = ts.URL
	}
	// Seed locations give gateway-mode clients a routing hint whose shard
	// is guaranteed to hold data for the channel.
	seedLocs := map[rfenv.Channel]geo.Point{}
	for _, r := range all {
		if _, ok := seedLocs[r.Channel]; !ok {
			seedLocs[r.Channel] = r.Loc
		}
	}
	fmt.Printf("bootstrap: %d readings across %d channels, models trained in %v\n",
		len(all), len(cfg.channels), time.Since(start).Round(time.Millisecond))
	if cfg.gateway != "" {
		fmt.Printf("server:    %s (external gateway)\n", baseURL)
	} else {
		fmt.Printf("server:    %s (in-process)\n", baseURL)
	}
	if cfg.rate > 0 {
		fmt.Printf("load:      open-loop %.1f cycles/s over %d clients × %v, α=%.2f dB, α′=%.2f dB\n",
			cfg.rate, cfg.clients, cfg.duration, cfg.alphaDB, cfg.alphaPrime)
	} else {
		fmt.Printf("load:      %d clients × %v, α=%.2f dB, α′=%.2f dB\n",
			cfg.clients, cfg.duration, cfg.alphaDB, cfg.alphaPrime)
	}
	if cfg.batch > 0 {
		fmt.Printf("batching:  binary frames, flush at %d readings\n", cfg.batch)
	}
	if cfg.trajectory {
		fmt.Println("mode:      trajectory (availability + route queries)")
	}
	// One shared transport replays the seeded schedule across all
	// clients: request sequence numbers form a single stream, so the
	// same -faults spec injects the same pattern run over run.
	var faultTR *faultinject.Transport
	if cfg.faults != nil {
		faultTR = &faultinject.Transport{Plan: *cfg.faults}
		fmt.Printf("faults:    drop=%.2f error=%.2f corrupt=%.2f truncate=%.2f delay=%.2f hang=%.2f seed=%d window=%d\n",
			cfg.faults.DropP, cfg.faults.ErrorP, cfg.faults.CorruptP, cfg.faults.TruncateP,
			cfg.faults.DelayP, cfg.faults.HangP, cfg.faults.Seed, cfg.faults.Window)
	}
	fmt.Println()

	// --- Load: N concurrent WSD clients, closed- or open-loop. ---
	clientReg := telemetry.New()
	if cfg.adminAddr != "" {
		// pprof here profiles the loadgen process itself; the registry
		// served is the in-process server's when one exists (it carries
		// the flight recorder), the client-side one in gateway mode.
		adminReg := clientReg
		if srv != nil {
			adminReg = srv.Metrics()
		}
		if admin := adminhttp.Serve(cfg.adminAddr, adminReg, func(err error) {
			fmt.Fprintf(os.Stderr, "admin listener: %v\n", err)
		}); admin != nil {
			defer admin.Close()
			fmt.Printf("admin:     pprof on %s\n", cfg.adminAddr)
		}
	}
	scansTotal := clientReg.Counter("loadgen_scans_total", "Completed channel scans.")
	var workerErr atomic.Value // first fatal worker error
	deadline := time.Now().Add(cfg.duration)
	var olStats *benchharness.OpenLoopStats
	if cfg.rate > 0 {
		stats, err := runOpenLoop(cfg, env, baseURL, faultTR, clientReg, scansTotal, seedLocs, deadline, &workerErr)
		if err != nil {
			return err
		}
		olStats = &stats
	} else {
		var wg sync.WaitGroup
		for w := 0; w < cfg.clients; w++ {
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				if err := driveClient(cfg, env, baseURL, faultTR, clientReg, scansTotal, seedLocs, deadline, worker); err != nil {
					workerErr.CompareAndSwap(nil, err)
				}
			}(w)
		}
		wg.Wait()
	}
	if err, ok := workerErr.Load().(error); ok && err != nil {
		return err
	}

	var serverReg *telemetry.Registry
	if srv != nil {
		serverReg = srv.Metrics()
	}
	if err := report(cfg, serverReg, clientReg, olStats); err != nil {
		return err
	}
	if faultTR != nil {
		fmt.Printf("\nfault injection: %d requests, %d faulted (%v)\n",
			faultTR.Requests(), faultTR.Injected(), faultCountString(faultTR.Counts()))
		fmt.Printf("resilience:      %d retries, %d stale serves, %d breaker rejections\n",
			clientReg.Counter("waldo_client_retries_total", "").Value(),
			clientReg.Counter("waldo_client_stale_served_total", "").Value(),
			clientReg.Counter("waldo_client_breaker_rejected_total", "").Value())
	}
	if cfg.dumpMetrics {
		fmt.Println("\n--- /metrics ---")
		if srv != nil {
			if err := srv.Metrics().WritePrometheus(os.Stdout); err != nil {
				return err
			}
		} else if err := dumpURL(cfg.gateway + "/metrics"); err != nil {
			return err
		}
	}
	return nil
}

// bootstrapGateway pushes the campaign through the gateway's routed
// upload path, one batch per (channel, cell) so every batch lands whole
// on its owning shard, then broadcast-retrains each channel.
func bootstrapGateway(cfg config, all []dataset.Reading) error {
	groups := map[cluster.RouteKey][]dataset.Reading{}
	for _, r := range all {
		k := cluster.RouteKey{Channel: r.Channel, Cell: cluster.CellOf(r.Loc, cfg.cellDeg)}
		groups[k] = append(groups[k], r)
	}
	httpc := &http.Client{Timeout: 30 * time.Second}
	for _, rs := range groups {
		up := dbserver.UploadJSON{CISpanDB: 0.2}
		for _, r := range rs {
			up.Readings = append(up.Readings, dbserver.FromReading(r))
		}
		body, err := json.Marshal(up)
		if err != nil {
			return err
		}
		resp, err := httpc.Post(cfg.gateway+"/v1/readings", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			return fmt.Errorf("bootstrap upload = %s", resp.Status)
		}
	}
	for _, ch := range cfg.channels {
		url := fmt.Sprintf("%s/v1/retrain?channel=%d&sensor=%d", cfg.gateway, int(ch), int(sensor.KindRTLSDR))
		resp, err := httpc.Post(url, "", nil)
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("broadcast retrain ch%d = %s", int(ch), resp.Status)
		}
	}
	fmt.Printf("bootstrap: %d routed batches uploaded via gateway\n", len(groups))
	return nil
}

// dumpURL copies a GET response body to stdout.
func dumpURL(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

// wsdWorker is one simulated WSD: its radio, client, detector, and
// optional upload buffer, with the per-cycle scan/upload loop factored
// out so both drive modes (closed-loop driveClient, open-loop
// runOpenLoop) share it.
type wsdWorker struct {
	cfg         config
	rng         *rand.Rand
	radio       *client.SimRadio
	c           *client.Client
	wsd         *client.WSD
	buf         *client.UploadBuffer
	scans       *telemetry.Counter
	faulty      bool
	gatewayMode bool
	center      geo.Point

	// Trajectory mode (-trajectory): the client's current position and
	// heading, plus the query-latency histograms the report reads.
	pos       geo.Point
	heading   float64
	availHist *telemetry.Histogram
	routeHist *telemetry.Histogram
}

// newWSDWorker calibrates a simulated radio and downloads the initial
// models. deadline bounds the fault-mode retry of the initial fetch.
func newWSDWorker(cfg config, env *rfenv.Environment, baseURL string, faultTR *faultinject.Transport,
	reg *telemetry.Registry, scans *telemetry.Counter, seedLocs map[rfenv.Channel]geo.Point,
	deadline time.Time, worker int) (*wsdWorker, error) {
	rng := rand.New(rand.NewSource(cfg.seed + int64(worker)*7919))
	spec, err := sensor.SpecFor(sensor.KindRTLSDR)
	if err != nil {
		return nil, err
	}
	dev := sensor.NewDevice(spec)
	if err := sensor.CalibrateAndInstall(dev, rng, sensor.CalibrationConfig{}); err != nil {
		return nil, err
	}
	radio := &client.SimRadio{Env: env, Device: dev, Rng: rng}

	var httpc *http.Client
	if faultTR != nil {
		httpc = &http.Client{Transport: faultTR}
	}
	c, err := client.NewWithConfig(baseURL, client.Config{
		HTTPClient: httpc,
		Retry:      client.RetryPolicy{BaseDelay: 5 * time.Millisecond, MaxDelay: 100 * time.Millisecond, Seed: uint64(cfg.seed) + uint64(worker)},
		Breaker:    client.BreakerPolicy{Cooldown: 100 * time.Millisecond},
	})
	if err != nil {
		return nil, err
	}
	c.SetMetrics(reg)
	gatewayMode := cfg.gateway != ""
	models := make(map[rfenv.Channel]*core.Model, len(cfg.channels))
	// Trajectory mode never senses, so it needs no models — its load is
	// pure availability-grid queries.
	if !cfg.trajectory {
		for _, ch := range cfg.channels {
			if gatewayMode {
				// Hint at a location that bootstrapped this channel, so the
				// gateway routes the first fetch to a shard that has a model.
				c.SetLocationHint(seedLocs[ch])
			}
			m, _, err := c.Model(ch, sensor.KindRTLSDR)
			for err != nil && faultTR != nil && time.Now().Before(deadline) {
				m, _, err = c.Model(ch, sensor.KindRTLSDR)
			}
			if err != nil {
				return nil, err
			}
			models[ch] = m
		}
	}
	w := &wsdWorker{
		cfg:   cfg,
		rng:   rng,
		radio: radio,
		c:     c,
		wsd: &client.WSD{
			Radio:    radio,
			Models:   models,
			Detector: core.DetectorConfig{AlphaDB: cfg.alphaDB, Metrics: reg},
		},
		scans:       scans,
		faulty:      faultTR != nil,
		gatewayMode: gatewayMode,
		center:      env.Area.Center(),
	}
	if cfg.trajectory {
		w.pos = w.center.Offset(rng.Float64()*360, rng.Float64()*8000)
		w.heading = rng.Float64() * 360
		w.availHist = reg.Histogram("loadgen_availability_seconds",
			"GET /v1/availability round-trip latency (trajectory mode).", nil)
		w.routeHist = reg.Histogram("loadgen_route_seconds",
			"POST /v1/route round-trip latency (trajectory mode).", nil)
	}
	// -batch mode: readings accumulate client-side and ship as binary
	// frames — the tentpole ingest path. The buffer's own flush metrics
	// land in the shared client registry for the report.
	if cfg.batch > 0 {
		w.buf = c.NewUploadBuffer(client.BufferConfig{FlushSize: cfg.batch})
	}
	return w, nil
}

// close releases the upload buffer (final flush; late failures are
// expected traffic).
func (w *wsdWorker) close() {
	if w.buf != nil {
		w.buf.Close() //nolint:errcheck // late flush failures are expected traffic
	}
}

// cycle runs one load round: a scan/upload cycle by default, a
// trajectory availability/route query round under -trajectory.
func (w *wsdWorker) cycle() error {
	if w.cfg.trajectory {
		return w.trajectoryCycle()
	}
	return w.scanCycle()
}

// trajectoryCycle is one -trajectory round: query availability at the
// current position, plan the look-ahead route, then advance along a
// drifting heading. A trajectory straying past the metro's edge turns
// back toward the center, so the fleet keeps querying surveyed cells.
func (w *wsdWorker) trajectoryCycle() error {
	ch := w.cfg.channels[w.rng.Intn(len(w.cfg.channels))]
	start := time.Now()
	if _, err := w.c.Availability(client.AvailabilityQuery{Loc: w.pos, Channels: []rfenv.Channel{ch}}); err != nil {
		if w.faulty {
			return nil // outage past the retry budget
		}
		return err
	}
	w.availHist.Observe(time.Since(start).Seconds())

	lookahead := []geo.Point{
		w.pos,
		w.pos.Offset(w.heading, 2000),
		w.pos.Offset(w.heading+30*(w.rng.Float64()-0.5), 4000),
	}
	start = time.Now()
	if _, err := w.c.PlanRoute(lookahead, client.RouteOptions{HorizonS: 600, StepM: 500}); err != nil {
		if w.faulty {
			return nil
		}
		return err
	}
	w.routeHist.Observe(time.Since(start).Seconds())
	w.scans.Inc() // one completed query round, for the throughput report

	w.heading += 20 * (w.rng.Float64() - 0.5)
	w.pos = w.pos.Offset(w.heading, 1000)
	if w.pos.DistanceM(w.center) > 12000 {
		w.heading = w.pos.BearingDeg(w.center)
	}
	return nil
}

// scanCycle runs one scan/upload round: re-fetch the model through the
// cache, sense a random metro location, upload the decision's readings.
// Transient outages (faults, unowned cells) return nil — the resilience
// layer absorbs them; only simulation failures are fatal.
func (w *wsdWorker) scanCycle() error {
	// Re-fetch through the cache each cycle: this is the Local Model
	// Parameters Updater path, and it keeps /v1/model load realistic
	// (cache hits locally, occasional misses after invalidation).
	ch := w.cfg.channels[w.rng.Intn(len(w.cfg.channels))]
	loc := w.center.Offset(w.rng.Float64()*360, w.rng.Float64()*12000)
	if w.gatewayMode {
		// The hint routes model fetches to the shard owning this
		// position's cell — the same shard the upload below hits.
		w.c.SetLocationHint(loc)
	}
	if w.rng.Float64() < 0.02 {
		w.c.Invalidate(ch, sensor.KindRTLSDR)
	}
	if _, _, err := w.c.Model(ch, sensor.KindRTLSDR); err != nil {
		if w.faulty || w.gatewayMode {
			return nil // outage or unowned cell past the retry budget
		}
		return err
	}

	w.radio.SetPosition(loc)
	cs, err := w.wsd.SenseChannel(ch, loc)
	if err != nil {
		return err
	}
	w.scans.Inc()

	// Upload the decision's readings; the server's α′ gate decides.
	batch := core.UploadBatch{CISpanDB: cs.Decision.CISpanDB}
	for i := 0; i < w.cfg.uploadBatch; i++ {
		batch.Readings = append(batch.Readings, dataset.Reading{
			Seq: i, Loc: loc, Channel: ch, Sensor: sensor.KindRTLSDR,
			Signal: cs.Decision.Signal,
		})
	}
	// Rejections (non-converged scans above α′) are expected traffic.
	if w.buf != nil {
		// A buffered frame is judged by its widest contributor's CI
		// span, so pre-filter what a lone upload would have let the
		// server reject — one bad scan must not poison a whole frame.
		if batch.CISpanDB <= w.cfg.alphaPrime {
			_ = w.buf.Add(batch)
		}
	} else {
		_ = w.c.Upload(batch)
	}
	return nil
}

// driveClient runs one WSD's closed loop until the deadline. Closed
// loop means the offered load tracks the server's speed — fine for
// soak/fault runs; use -rate for latency measurements.
func driveClient(cfg config, env *rfenv.Environment, baseURL string, faultTR *faultinject.Transport,
	reg *telemetry.Registry, scans *telemetry.Counter, seedLocs map[rfenv.Channel]geo.Point,
	deadline time.Time, worker int) error {
	w, err := newWSDWorker(cfg, env, baseURL, faultTR, reg, scans, seedLocs, deadline, worker)
	if err != nil {
		return err
	}
	defer w.close()
	for time.Now().Before(deadline) {
		if err := w.cycle(); err != nil {
			return err
		}
	}
	return nil
}

// runOpenLoop drives the worker pool at a fixed offered cycle rate
// through the coordinated-omission-safe scheduler: send times are
// planned in advance, cycle latency is measured from the *scheduled*
// send, and sends the pool cannot absorb are counted (dropped/late)
// instead of silently stretching the schedule — the closed-loop mode's
// bias. Each worker index owns one wsdWorker, so worker state needs no
// locking.
func runOpenLoop(cfg config, env *rfenv.Environment, baseURL string, faultTR *faultinject.Transport,
	reg *telemetry.Registry, scans *telemetry.Counter, seedLocs map[rfenv.Channel]geo.Point,
	deadline time.Time, workerErr *atomic.Value) (benchharness.OpenLoopStats, error) {
	workers := make([]*wsdWorker, cfg.clients)
	for i := range workers {
		w, err := newWSDWorker(cfg, env, baseURL, faultTR, reg, scans, seedLocs, deadline, i)
		if err != nil {
			return benchharness.OpenLoopStats{}, err
		}
		workers[i] = w
		defer w.close()
	}
	cycleHist := reg.Histogram("loadgen_cycle_seconds",
		"Scan/upload cycle latency measured from the scheduled send (open-loop mode).", nil)
	stats := benchharness.RunOpenLoop(context.Background(), benchharness.OpenLoopConfig{
		Rate: cfg.rate, Workers: cfg.clients, Duration: cfg.duration,
	}, func(worker int, scheduled time.Time) {
		if err := workers[worker].cycle(); err != nil {
			workerErr.CompareAndSwap(nil, err)
			return
		}
		cycleHist.Observe(time.Since(scheduled).Seconds())
	})
	return stats, nil
}

// latencyJSON is one histogram's quantile row in the -json report.
type latencyJSON struct {
	Name  string  `json:"name"`
	Count uint64  `json:"count"`
	P50   float64 `json:"p50_seconds"`
	P95   float64 `json:"p95_seconds"`
	P99   float64 `json:"p99_seconds"`
	P999  float64 `json:"p999_seconds"`
	Max   float64 `json:"max_seconds"`
}

func latencyRow(name string, s telemetry.HistogramSnapshot) latencyJSON {
	return latencyJSON{
		Name: name, Count: s.Count,
		P50: s.Quantile(0.50), P95: s.Quantile(0.95),
		P99: s.Quantile(0.99), P999: s.Quantile(0.999), Max: s.Max,
	}
}

// reportJSON is the machine-readable run summary (-json).
type reportJSON struct {
	Clients         int     `json:"clients"`
	DurationSeconds float64 `json:"duration_seconds"`
	BatchSize       int     `json:"batch_size,omitempty"`
	// Open-loop (-rate) schedule accounting: dropped sends never
	// reached the server; late sends started behind schedule (their
	// latency still includes the wait).
	OfferedCyclesPerSec float64       `json:"offered_cycles_per_sec,omitempty"`
	ScheduledSends      uint64        `json:"scheduled_sends,omitempty"`
	DroppedSends        uint64        `json:"dropped_sends,omitempty"`
	LateSends           uint64        `json:"late_sends,omitempty"`
	Scans               uint64        `json:"scans"`
	ScansPerSec         float64       `json:"scans_per_sec"`
	UploadsAccepted     uint64        `json:"uploads_accepted"`
	UploadsRejected     uint64        `json:"uploads_rejected"`
	FlushOK             uint64        `json:"flush_ok,omitempty"`
	FlushFailed         uint64        `json:"flush_failed,omitempty"`
	FlushReadings       uint64        `json:"flush_readings,omitempty"`
	ClientLatency       []latencyJSON `json:"client_latency"`
	ServerLatency       []latencyJSON `json:"server_latency,omitempty"`
}

// report prints throughput and latency quantiles from both registries,
// and mirrors them to -json when asked. ol carries the open-loop
// schedule accounting (nil in closed-loop mode).
func report(cfg config, server, clients *telemetry.Registry, ol *benchharness.OpenLoopStats) error {
	scans := clients.Counter("loadgen_scans_total", "").Value()
	secs := cfg.duration.Seconds()
	out := reportJSON{
		Clients: cfg.clients, DurationSeconds: secs, BatchSize: cfg.batch,
		Scans: scans, ScansPerSec: float64(scans) / secs,
	}

	fmt.Printf("=== load report (%d clients, %v) ===\n", cfg.clients, cfg.duration)
	fmt.Printf("scans:     %d total, %.1f scans/s\n", scans, float64(scans)/secs)
	if ol != nil {
		out.OfferedCyclesPerSec = cfg.rate
		out.ScheduledSends, out.DroppedSends, out.LateSends = ol.Scheduled, ol.Dropped, ol.Late
		fmt.Printf("open-loop: %d sends scheduled at %.1f/s, %d dropped (backlog full), %d late starts\n",
			ol.Scheduled, cfg.rate, ol.Dropped, ol.Late)
	}

	decTotal := uint64(0)
	for _, label := range []string{"safe", "not-safe"} {
		for _, conv := range []string{"true", "false"} {
			decTotal += clients.Counter("waldo_detector_decisions_total", "",
				"label", label, "converged", conv).Value()
		}
	}
	conv := clients.Counter("waldo_detector_decisions_total", "", "label", "safe", "converged", "true").Value() +
		clients.Counter("waldo_detector_decisions_total", "", "label", "not-safe", "converged", "true").Value()
	if decTotal > 0 {
		fmt.Printf("decisions: %d (%.1f%% converged)\n", decTotal, 100*float64(conv)/float64(decTotal))
	}
	acc := clients.Counter("waldo_client_uploads_total", "", "outcome", "accepted").Value()
	rej := clients.Counter("waldo_client_uploads_total", "", "outcome", "failed").Value()
	fmt.Printf("uploads:   %d accepted, %d rejected (α′ gate)\n", acc, rej)
	out.UploadsAccepted, out.UploadsRejected = acc, rej
	if cfg.batch > 0 {
		out.FlushOK = clients.Counter("waldo_client_flush_total", "", "outcome", "ok").Value()
		out.FlushFailed = clients.Counter("waldo_client_flush_total", "", "outcome", "failed").Value()
		out.FlushReadings = clients.Counter("waldo_client_flush_readings_total", "").Value()
		fmt.Printf("flushes:   %d ok, %d failed, %d readings shipped in binary frames\n",
			out.FlushOK, out.FlushFailed, out.FlushReadings)
	}
	hits := clients.Counter("waldo_client_model_cache_total", "", "result", "hit").Value()
	misses := clients.Counter("waldo_client_model_cache_total", "", "result", "miss").Value()
	if hits+misses > 0 {
		fmt.Printf("cache:     %.1f%% model-cache hit rate (%d lookups)\n",
			100*float64(hits)/float64(hits+misses), hits+misses)
	}

	fmt.Println("\nclient-side latency:")
	clientRow := func(display, name string, s telemetry.HistogramSnapshot) {
		printLatency(display, s)
		if s.Count > 0 {
			out.ClientLatency = append(out.ClientLatency, latencyRow(name, s))
		}
	}
	clientRow("model fetch (miss)", "model_fetch", clients.Histogram("waldo_client_model_fetch_seconds", "", nil).Snapshot())
	clientRow("upload round-trip ", "upload", clients.Histogram("waldo_client_upload_seconds", "", nil).Snapshot())
	if cfg.trajectory {
		clientRow("availability query", "availability", clients.Histogram("loadgen_availability_seconds", "", nil).Snapshot())
		clientRow("route plan        ", "route", clients.Histogram("loadgen_route_seconds", "", nil).Snapshot())
	}
	if cfg.batch > 0 {
		clientRow("buffer flush      ", "flush", clients.Histogram("waldo_client_flush_seconds", "", nil).Snapshot())
	}
	if ol != nil {
		clientRow("cycle (from sched)", "cycle", clients.Histogram("loadgen_cycle_seconds", "", nil).Snapshot())
	}

	if server == nil {
		fmt.Println("\n(server-side registries live in the external cluster; scrape the gateway and shards' /metrics)")
		return writeReportJSON(cfg.jsonPath, out)
	}
	fmt.Println("\nserver-side latency (per route):")
	serverRow := func(display, name string, s telemetry.HistogramSnapshot) {
		printLatency(display, s)
		if s.Count > 0 {
			out.ServerLatency = append(out.ServerLatency, latencyRow(name, s))
		}
	}
	routes := collectRoutes(server)
	for _, route := range routes {
		serverRow(route, route, server.Histogram("waldo_http_request_seconds", "", nil, "route", route).Snapshot())
	}
	fmt.Println("\nserver work:")
	for _, scope := range collectStores(server) {
		serverRow("rebuild "+scope, "rebuild "+scope, server.Histogram("waldo_updater_rebuild_seconds", "", nil, "store", scope).Snapshot())
	}
	return writeReportJSON(cfg.jsonPath, out)
}

// writeReportJSON emits the machine-readable report ('-' = stdout).
func writeReportJSON(path string, out reportJSON) error {
	if path == "" {
		return nil
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func printLatency(name string, s telemetry.HistogramSnapshot) {
	if s.Count == 0 {
		return
	}
	fmt.Printf("  %-22s n=%-7d p50=%-9s p95=%-9s p99=%-9s p999=%-9s max=%s\n",
		name, s.Count,
		fmtSeconds(s.Quantile(0.50)), fmtSeconds(s.Quantile(0.95)),
		fmtSeconds(s.Quantile(0.99)), fmtSeconds(s.Quantile(0.999)), fmtSeconds(s.Max))
}

func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}

// faultCountString renders injected-fault counts in a stable kind order.
func faultCountString(counts map[faultinject.Kind]uint64) string {
	var parts []string
	for k := faultinject.Drop; k <= faultinject.Truncate; k++ {
		if n, ok := counts[k]; ok {
			parts = append(parts, fmt.Sprintf("%v=%d", k, n))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}

// collectRoutes lists the routes the server actually served.
func collectRoutes(reg *telemetry.Registry) []string {
	seen := map[string]bool{}
	reg.Each(func(name string, labels [][2]string, _ any) {
		if name != "waldo_http_request_seconds" {
			return
		}
		for _, kv := range labels {
			if kv[0] == "route" {
				seen[kv[1]] = true
			}
		}
	})
	routes := make([]string, 0, len(seen))
	for r := range seen {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	return routes
}

// collectStores lists the updater scopes with recorded rebuilds.
func collectStores(reg *telemetry.Registry) []string {
	seen := map[string]bool{}
	reg.Each(func(name string, labels [][2]string, _ any) {
		if name != "waldo_updater_rebuild_seconds" {
			return
		}
		for _, kv := range labels {
			if kv[0] == "store" {
				seen[kv[1]] = true
			}
		}
	})
	stores := make([]string, 0, len(seen))
	for s := range seen {
		stores = append(stores, s)
	}
	sort.Strings(stores)
	return stores
}
