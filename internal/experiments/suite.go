// Package experiments regenerates every table and figure of the paper's
// evaluation (§2, §4, §5) on the simulated metro campaign. Each experiment
// is a function on a Suite — the shared environment + war-driving dataset —
// returning a typed result with a Render method that prints the same rows
// or series the paper reports.
package experiments

import (
	"fmt"
	"sync"

	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
	"github.com/wsdetect/waldo/internal/wardrive"
)

// Config sizes a suite.
type Config struct {
	// Seed drives the environment realization and all measurement noise.
	Seed int64
	// Samples is the number of readings per channel per sensor; 0 means
	// the paper's 5,282.
	Samples int
}

func (c *Config) defaults() {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Samples == 0 {
		c.Samples = 5282
	}
}

// Suite owns the shared campaign. Building it is expensive (hundreds of
// thousands of I/Q captures), so experiments share one lazily-built
// instance. Suite is safe for concurrent use after the first Campaign call.
type Suite struct {
	cfg Config

	once    sync.Once
	onceErr error
	env     *rfenv.Environment
	camp    *wardrive.Campaign

	labelMu sync.Mutex
	labels  map[labelKey][]dataset.Label
}

type labelKey struct {
	ch   rfenv.Channel
	kind sensor.Kind
	corr float64
}

// NewSuite returns a suite; the campaign is generated on first use.
func NewSuite(cfg Config) *Suite {
	cfg.defaults()
	return &Suite{cfg: cfg, labels: make(map[labelKey][]dataset.Label)}
}

// Config returns the effective configuration.
func (s *Suite) Config() Config { return s.cfg }

func (s *Suite) build() {
	env, err := rfenv.BuildMetro(uint64(s.cfg.Seed))
	if err != nil {
		s.onceErr = fmt.Errorf("experiments: build environment: %w", err)
		return
	}
	route, err := wardrive.GenerateRoute(wardrive.RouteConfig{
		Area:    env.Area,
		Samples: s.cfg.Samples,
		Seed:    s.cfg.Seed + 1,
	})
	if err != nil {
		s.onceErr = fmt.Errorf("experiments: generate route: %w", err)
		return
	}
	camp, err := wardrive.Run(wardrive.CampaignConfig{
		Env:   env,
		Route: route,
		Seed:  s.cfg.Seed + 2,
	})
	if err != nil {
		s.onceErr = fmt.Errorf("experiments: run campaign: %w", err)
		return
	}
	s.env = env
	s.camp = camp
}

// Env returns the RF environment.
func (s *Suite) Env() (*rfenv.Environment, error) {
	s.once.Do(s.build)
	return s.env, s.onceErr
}

// Campaign returns the shared measurement campaign.
func (s *Suite) Campaign() (*wardrive.Campaign, error) {
	s.once.Do(s.build)
	return s.camp, s.onceErr
}

// Labels returns (cached) Algorithm 1 labels for one channel/sensor with
// an optional antenna correction.
func (s *Suite) Labels(ch rfenv.Channel, kind sensor.Kind, corrDB float64) ([]dataset.Label, error) {
	camp, err := s.Campaign()
	if err != nil {
		return nil, err
	}
	key := labelKey{ch, kind, corrDB}
	s.labelMu.Lock()
	defer s.labelMu.Unlock()
	if ls, ok := s.labels[key]; ok {
		return ls, nil
	}
	ls, err := camp.Labels(ch, kind, dataset.LabelConfig{CorrectionDB: corrDB})
	if err != nil {
		return nil, err
	}
	s.labels[key] = ls
	return ls, nil
}

// GroundTruth returns the spectrum analyzer's labels — the evaluation
// ground truth throughout the paper (§2.2 footnote: analyzer data is used
// for validation, never for training).
func (s *Suite) GroundTruth(ch rfenv.Channel, corrDB float64) ([]dataset.Label, error) {
	return s.Labels(ch, sensor.KindSpectrumAnalyzer, corrDB)
}
