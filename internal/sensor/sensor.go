// Package sensor models the three radios of the paper's measurement study —
// the $15 RTL-SDR dongle, the $686 USRP B200, and the FieldFox spectrum
// analyzer used as ground truth — as imperfect front ends observing the
// same physical field.
//
// Each device is characterized by the mechanisms that, in the paper's data,
// separate the sensors' detection behaviour:
//
//   - noise floor: the effective input-referred floor within the capture
//     bandwidth (−102 dBm RTL-SDR, −103 dBm USRP, −114 dBm analyzer; the
//     paper quotes −98/−103/−114 dBm CW sensitivities, §2.2). Near the
//     −84 dBm decodability threshold the floor adds power and biases weak
//     readings upward, which inflates not-safe labels (part of the
//     low-cost sensors' misdetection of white space).
//   - gain jitter: per-reading gain instability. The USRP's readings show
//     visibly more spread than the RTL-SDR's (Fig. 5), which is what makes
//     it occasionally under-read a truly decodable signal (false alarms in
//     the safety sense).
//   - adjacent-channel leakage: limited dynamic range (the RTL-SDR has an
//     8-bit ADC) lets a fraction of the strongest co-located TV signal leak
//     into the measured channel. With in-town megawatt stations present on
//     channels 27/39, rare leakage excursions cross −84 dBm and poison the
//     6 km protection disk around them.
//   - tuner frequency error: shifts the pilot off the capture center,
//     degrading the central-bin (CFT) feature more than the band-average
//     (AFT) feature.
package sensor

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/wsdetect/waldo/internal/iq"
)

// Kind enumerates the modelled devices.
type Kind int

// Device kinds. Enums start at 1 so the zero value is invalid.
const (
	KindRTLSDR Kind = iota + 1
	KindUSRPB200
	KindSpectrumAnalyzer
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindRTLSDR:
		return "rtl-sdr"
	case KindUSRPB200:
		return "usrp-b200"
	case KindSpectrumAnalyzer:
		return "spectrum-analyzer"
	default:
		return fmt.Sprintf("sensor.Kind(%d)", int(k))
	}
}

// Spec is the full front-end characterization of a device model.
type Spec struct {
	// Kind identifies the device model.
	Kind Kind
	// CostUSD is the unit cost, for the cost analysis in reports.
	CostUSD float64
	// NoiseFloorDBm is the input-referred noise power within the capture
	// bandwidth.
	NoiseFloorDBm float64
	// GainJitterDB is the standard deviation of per-reading gain error.
	GainJitterDB float64
	// FrontEndGainDB maps input dBm to the device's raw (uncalibrated)
	// reading scale, as in Fig. 5 where raw readings are offset from
	// input levels.
	FrontEndGainDB float64
	// LeakRejectionDB is the rejection of the strongest co-located
	// out-of-channel signal (dynamic range); leakage power is
	// strongest − rejection + N(0, LeakSigmaDB).
	LeakRejectionDB float64
	// LeakSigmaDB is the spread of the leakage level between readings
	// (frequency-dependent images, AGC state).
	LeakSigmaDB float64
	// TunerOffsetSigmaBins is the std-dev of the pilot's offset from the
	// capture center, in FFT bins.
	TunerOffsetSigmaBins float64
	// ImpulseProb adds, with this probability, an impulsive broadband
	// interference burst of mean ImpulseMeanDB (exponential) above the
	// noise floor — front-end overload events. Zero disables.
	ImpulseProb   float64
	ImpulseMeanDB float64
	// DropoutProb under-reads a capture with this probability by an
	// exponential amount of mean DropoutDepthDB — AGC mis-settling and
	// transient desense. This is what makes a sensor occasionally miss a
	// genuinely decodable signal (false alarms in the safety sense, the
	// USRP's 5.2% in §2.2). Zero disables.
	DropoutProb    float64
	DropoutDepthDB float64
}

// RTLSDR returns the specification of the low-end sensor: the paper's $15
// dongle — very stable readings, poor dynamic range (8-bit ADC), modest
// sensitivity, occasional urban impulse pickup and AGC dropouts.
func RTLSDR() Spec {
	return Spec{
		Kind:                 KindRTLSDR,
		CostUSD:              15,
		NoiseFloorDBm:        -102,
		GainJitterDB:         0.08,
		FrontEndGainDB:       53,
		LeakRejectionDB:      64,
		LeakSigmaDB:          5,
		TunerOffsetSigmaBins: 2.0,
		ImpulseProb:          0.0005,
		ImpulseMeanDB:        12,
		DropoutProb:          0.002,
		DropoutDepthDB:       8,
	}
}

// USRPB200 returns the specification of the high-end low-cost sensor
// (paper: $686, detects down to ≈−103 dBm, visibly noisier readings).
func USRPB200() Spec {
	return Spec{
		Kind:                 KindUSRPB200,
		CostUSD:              686,
		NoiseFloorDBm:        -103,
		GainJitterDB:         0.7,
		FrontEndGainDB:       21,
		LeakRejectionDB:      72,
		LeakSigmaDB:          5,
		TunerOffsetSigmaBins: 0.5,
		DropoutProb:          0.08,
		DropoutDepthDB:       12,
	}
}

// SpectrumAnalyzer returns the specification of the FieldFox-class
// reference instrument (paper: $10–40K, −114 dBm sensing floor, used as
// ground truth).
func SpectrumAnalyzer() Spec {
	return Spec{
		Kind:                 KindSpectrumAnalyzer,
		CostUSD:              25000,
		NoiseFloorDBm:        -114,
		GainJitterDB:         0.02,
		FrontEndGainDB:       0,
		LeakRejectionDB:      110,
		LeakSigmaDB:          1,
		TunerOffsetSigmaBins: 0,
	}
}

// SpecFor returns the spec for a device kind.
func SpecFor(k Kind) (Spec, error) {
	switch k {
	case KindRTLSDR:
		return RTLSDR(), nil
	case KindUSRPB200:
		return USRPB200(), nil
	case KindSpectrumAnalyzer:
		return SpectrumAnalyzer(), nil
	default:
		return Spec{}, fmt.Errorf("sensor: unknown kind %d", int(k))
	}
}

// Observation is one raw capture from a device.
type Observation struct {
	// IQ holds the capture samples in the device's raw amplitude units
	// (input-referred sqrt(mW) scaled by front-end gain).
	IQ []complex128
	// RawDB is the energy-detector output over IQ, in raw dB units.
	RawDB float64
}

// Device is an instance of a sensor model. Observe and ObserveWired only
// read the spec and calibration, so concurrent captures are safe provided
// each call supplies its own *rand.Rand and no goroutine calls
// SetCalibration concurrently.
type Device struct {
	spec Spec
	cal  Calibration
}

// NewDevice returns an uncalibrated device of the given spec.
func NewDevice(spec Spec) *Device { return &Device{spec: spec, cal: IdentityCalibration()} }

// Spec returns the device's specification.
func (d *Device) Spec() Spec { return d.spec }

// Calibration returns the device's current calibration.
func (d *Device) Calibration() Calibration { return d.cal }

// SetCalibration installs a calibration (e.g. one shared across devices of
// the same model, as the paper does to demonstrate calibration robustness).
func (d *Device) SetCalibration(c Calibration) { d.cal = c }

// fieldComponents converts the scene into input-referred capture powers.
func (d *Device) fieldComponents(rng *rand.Rand, signalDBm, strongestOtherDBm float64) (pilotMW, bodyMW, noiseMW float64) {
	// Fraction of ATSC channel power landing in the capture bandwidth
	// besides the pilot: (capture BW / 6 MHz) of the noise-like body.
	const bodyFrac = iq.DefaultBandwidthHz / 6e6
	pilotShare := math.Pow(10, -iq.PilotBelowChannelDB/10)

	sigMW := 0.0
	if !math.IsInf(signalDBm, -1) {
		sigMW = iq.DBmToMW(signalDBm)
	}
	pilotMW = sigMW * pilotShare
	bodyMW = sigMW * (1 - pilotShare) * bodyFrac

	noiseMW = iq.DBmToMW(d.spec.NoiseFloorDBm)

	// Adjacent-channel leakage of the strongest co-located signal.
	if !math.IsInf(strongestOtherDBm, -1) && d.spec.LeakRejectionDB > 0 {
		leakDBm := strongestOtherDBm - d.spec.LeakRejectionDB + rng.NormFloat64()*d.spec.LeakSigmaDB
		bodyMW += iq.DBmToMW(leakDBm)
	}

	// Impulsive overload events.
	if d.spec.ImpulseProb > 0 && rng.Float64() < d.spec.ImpulseProb {
		burst := d.spec.NoiseFloorDBm + rng.ExpFloat64()*d.spec.ImpulseMeanDB
		bodyMW += iq.DBmToMW(burst)
	}
	return pilotMW, bodyMW, noiseMW
}

// Observe captures the channel once. signalDBm is the true received TV
// power on the measured channel; strongestOtherDBm is the strongest true
// power on any other co-located channel (drives leakage); math.Inf(-1)
// means absent for either.
func (d *Device) Observe(rng *rand.Rand, signalDBm, strongestOtherDBm float64) (Observation, error) {
	pilotMW, bodyMW, noiseMW := d.fieldComponents(rng, signalDBm, strongestOtherDBm)

	offset := 0.0
	if d.spec.TunerOffsetSigmaBins > 0 {
		offset = rng.NormFloat64() * d.spec.TunerOffsetSigmaBins
	}
	samples, err := iq.Synthesize(rng, iq.CaptureConfig{
		PilotMW:         pilotMW,
		BodyMW:          bodyMW,
		NoiseMW:         noiseMW,
		PilotOffsetBins: offset,
	})
	if err != nil {
		return Observation{}, fmt.Errorf("sensor %s: %w", d.spec.Kind, err)
	}

	// Front-end gain with per-reading jitter and occasional AGC dropout,
	// applied in amplitude.
	gainDB := d.spec.FrontEndGainDB + rng.NormFloat64()*d.spec.GainJitterDB
	if d.spec.DropoutProb > 0 && rng.Float64() < d.spec.DropoutProb {
		gainDB -= rng.ExpFloat64() * d.spec.DropoutDepthDB
	}
	scale := complex(math.Pow(10, gainDB/20), 0)
	for i := range samples {
		samples[i] *= scale
	}

	return Observation{
		IQ:    samples,
		RawDB: iq.MWToDBm(iq.EnergyMW(samples)),
	}, nil
}

// ObserveWired captures a signal-generator CW tone injected directly into
// the front end (no TV body, no leakage): the calibration path of §2.1.
// toneDBm may be math.Inf(-1) for a terminated input (no-signal runs of
// Fig. 5).
func (d *Device) ObserveWired(rng *rand.Rand, toneDBm float64) (Observation, error) {
	toneMW := 0.0
	if !math.IsInf(toneDBm, -1) {
		toneMW = iq.DBmToMW(toneDBm)
	}
	samples, err := iq.Synthesize(rng, iq.CaptureConfig{
		PilotMW: toneMW,
		NoiseMW: iq.DBmToMW(d.spec.NoiseFloorDBm),
	})
	if err != nil {
		return Observation{}, fmt.Errorf("sensor %s: %w", d.spec.Kind, err)
	}
	gainDB := d.spec.FrontEndGainDB + rng.NormFloat64()*d.spec.GainJitterDB
	scale := complex(math.Pow(10, gainDB/20), 0)
	for i := range samples {
		samples[i] *= scale
	}
	return Observation{
		IQ:    samples,
		RawDB: iq.MWToDBm(iq.EnergyMW(samples)),
	}, nil
}
