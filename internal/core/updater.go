package core

import (
	"context"
	"fmt"
	"sync"

	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
	"github.com/wsdetect/waldo/internal/telemetry"
)

// UploadBatch is a set of readings a WSD submits after a local detection,
// together with the noise level the detector achieved. The Global Model
// Updater only accepts batches whose confidence-interval span meets the
// acceptance criterion α′ (§3.4).
type UploadBatch struct {
	// Readings are the location-tagged measurements used for the local
	// decision.
	Readings []dataset.Reading
	// CISpanDB is the detector's final 90 % CI span for the batch.
	CISpanDB float64
}

// Updater is the Global Model Updater for one channel/sensor model: it
// accumulates trusted readings (bootstrap war-driving plus accepted WSD
// uploads), relabels with Algorithm 1, and retrains the model. It is safe
// for concurrent use.
//
// Retrain is non-blocking with respect to the rest of the API: it
// snapshots the store under the lock, relabels and trains with the lock
// released, and swaps the model pointer in at the end, so Submit, Model,
// and Readings never stall behind a rebuild. Concurrent Retrain callers
// coalesce onto the single in-flight rebuild (a single-flight latch) and
// share its result; the collisions are counted in telemetry.
type Updater struct {
	mu sync.Mutex

	cfg      ConstructorConfig
	labelCfg dataset.LabelConfig
	// alphaPrime is the maximum accepted upload CI span (dB).
	alphaPrime float64
	// expectCh/expectKind, when non-zero, pin the store's scope so a
	// mismatched batch is rejected even while the store is empty.
	expectCh   rfenv.Channel
	expectKind sensor.Kind

	readings []dataset.Reading
	model    *Model
	version  int
	// trainedCount is the number of store readings the current model was
	// trained on (the snapshot length of the Retrain that produced it).
	trainedCount int
	// journal, when set, receives every store mutation under mu (see
	// Journal).
	journal Journal
	// inflight is the single-flight latch: non-nil while a rebuild is
	// running outside the lock.
	inflight *retrainCall

	// Telemetry handles (nil-safe no-ops when UpdaterConfig.Metrics is
	// unset): upload accept/reject counts, rebuild cost, store size.
	metrics         *telemetry.Registry
	scope           string
	acceptedTotal   *telemetry.Counter
	rejectedTotal   *telemetry.Counter
	rebuildSeconds  *telemetry.Histogram
	storeReadings   *telemetry.Gauge
	retrainCollided *telemetry.Counter
}

// retrainCall is one in-flight rebuild; waiters block on done and then
// read the shared result.
type retrainCall struct {
	done  chan struct{}
	model *Model
	err   error
}

// Journal receives every durable store mutation, in exactly the order it
// was applied to the in-memory store: both methods are invoked while the
// updater's lock is held, so a write-ahead log fed by a Journal replays
// to a byte-identical store. Implementations must be fast — enqueue the
// mutation and return; flushing happens off this path (internal/wal's
// group commit).
type Journal interface {
	// AppendReadings records readings accepted into the trusted store
	// (Bootstrap seeds and accepted Submit batches). ctx carries the
	// request-scoped trace of the mutation being journaled (or
	// context.Background() for recovery/startup paths) so persistence
	// layers can attribute their cost — e.g. internal/wal records a
	// wal/append span into the upload's trace. Implementations must not
	// block on ctx; it is attribution, not cancellation.
	AppendReadings(ctx context.Context, rs []dataset.Reading)
	// RecordRetrain records a completed rebuild: the new model version
	// and the number of store readings (a stable prefix) it was trained
	// on. ctx carries the trace of the request that triggered the
	// rebuild.
	RecordRetrain(ctx context.Context, version, trainedCount int)
}

// UpdaterConfig assembles an Updater.
type UpdaterConfig struct {
	// Constructor configures model building.
	Constructor ConstructorConfig
	// Labeling configures Algorithm 1.
	Labeling dataset.LabelConfig
	// AlphaPrimeDB is the upload acceptance criterion; default 1.0 dB.
	AlphaPrimeDB float64
	// Metrics, when set, receives updater telemetry (upload outcomes,
	// rebuild duration, store size) labeled with MetricsScope.
	Metrics *telemetry.Registry
	// MetricsScope labels this updater's metrics, conventionally
	// "ch47/rtl-sdr"; empty means "default".
	MetricsScope string
	// Channel and Sensor, when set, pin the updater's scope: Submit
	// rejects batches for any other channel/sensor even while the store
	// is empty. Left zero, the first accepted batch defines the store
	// identity (the historical behaviour).
	Channel rfenv.Channel
	Sensor  sensor.Kind
}

// NewUpdater builds an updater with no data; call Submit or Bootstrap
// before Retrain.
func NewUpdater(cfg UpdaterConfig) (*Updater, error) {
	if cfg.AlphaPrimeDB == 0 {
		cfg.AlphaPrimeDB = 1.0
	}
	if cfg.AlphaPrimeDB < 0 {
		return nil, fmt.Errorf("core: negative alpha' %v", cfg.AlphaPrimeDB)
	}
	if err := cfg.Constructor.defaults(); err != nil {
		return nil, err
	}
	scope := cfg.MetricsScope
	if scope == "" {
		scope = "default"
	}
	u := &Updater{
		cfg:        cfg.Constructor,
		labelCfg:   cfg.Labeling,
		alphaPrime: cfg.AlphaPrimeDB,
		expectCh:   cfg.Channel,
		expectKind: cfg.Sensor,
		metrics:    cfg.Metrics,
		scope:      scope,
	}
	// Handles resolve to nil-safe no-ops when cfg.Metrics is nil.
	u.acceptedTotal = cfg.Metrics.Counter("waldo_updater_uploads_total",
		"WSD upload batches by acceptance outcome.", "store", scope, "outcome", "accepted")
	u.rejectedTotal = cfg.Metrics.Counter("waldo_updater_uploads_total",
		"WSD upload batches by acceptance outcome.", "store", scope, "outcome", "rejected")
	u.rebuildSeconds = cfg.Metrics.Histogram("waldo_updater_rebuild_seconds",
		"Model rebuild (relabel + retrain) duration.", nil, "store", scope)
	u.storeReadings = cfg.Metrics.Gauge("waldo_updater_store_readings",
		"Trusted readings currently stored.", "store", scope)
	u.retrainCollided = cfg.Metrics.Counter("waldo_updater_retrain_contention_total",
		"Retrain calls that coalesced onto an already in-flight rebuild.", "store", scope)
	return u, nil
}

// SetJournal wires a persistence journal into the updater. Every later
// store mutation is reported to j in apply order. Call it right after
// NewUpdater (or after Restore during recovery), before any traffic.
func (u *Updater) SetJournal(j Journal) {
	u.mu.Lock()
	u.journal = j
	u.mu.Unlock()
}

// Bootstrap seeds the store with trusted measurements. See BootstrapCtx.
func (u *Updater) Bootstrap(readings []dataset.Reading) {
	u.BootstrapCtx(context.Background(), readings)
}

// BootstrapCtx seeds the store with trusted measurements (war driving or
// dedicated infrastructure, §6) without the α′ check. ctx carries the
// causing request's trace to the journal chain — the replica apply path
// threads the shipped exchange's trace through here.
func (u *Updater) BootstrapCtx(ctx context.Context, readings []dataset.Reading) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.readings = append(u.readings, readings...)
	u.storeReadings.Set(float64(len(u.readings)))
	if u.journal != nil && len(readings) > 0 {
		u.journal.AppendReadings(ctx, readings)
	}
}

// Submit offers a WSD upload. See SubmitCtx.
func (u *Updater) Submit(batch UploadBatch) error {
	return u.SubmitCtx(context.Background(), batch)
}

// SubmitCtx offers a WSD upload. Batches that fail the α′ noise criterion
// are rejected — noisy contributions would poison Algorithm 1's labels.
// ctx carries the request trace through to the journal chain (WAL,
// replication tap), and is attribution only: an accepted batch is applied
// even if ctx is already cancelled.
func (u *Updater) SubmitCtx(ctx context.Context, batch UploadBatch) error {
	if len(batch.Readings) == 0 {
		u.rejectedTotal.Inc()
		return fmt.Errorf("core: empty upload")
	}
	if batch.CISpanDB > u.alphaPrime {
		u.rejectedTotal.Inc()
		return fmt.Errorf("core: upload CI span %.2f dB exceeds acceptance criterion %.2f dB",
			batch.CISpanDB, u.alphaPrime)
	}
	ch, sens := batch.Readings[0].Channel, batch.Readings[0].Sensor
	for i := range batch.Readings {
		if batch.Readings[i].Channel != ch || batch.Readings[i].Sensor != sens {
			u.rejectedTotal.Inc()
			return fmt.Errorf("core: mixed channels/sensors in upload")
		}
	}
	// The configured scope applies even to an empty store: without it,
	// the first accepted upload would silently define the store identity.
	if (u.expectCh != 0 && ch != u.expectCh) || (u.expectKind != 0 && sens != u.expectKind) {
		u.rejectedTotal.Inc()
		return fmt.Errorf("core: upload is %v/%v, updater scope is %v/%v",
			ch, sens, u.expectCh, u.expectKind)
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	if len(u.readings) > 0 {
		if u.readings[0].Channel != ch || u.readings[0].Sensor != sens {
			u.rejectedTotal.Inc()
			return fmt.Errorf("core: upload is %v/%v, store is %v/%v",
				ch, sens, u.readings[0].Channel, u.readings[0].Sensor)
		}
	}
	u.readings = append(u.readings, batch.Readings...)
	u.acceptedTotal.Inc()
	u.storeReadings.Set(float64(len(u.readings)))
	if u.journal != nil {
		u.journal.AppendReadings(ctx, batch.Readings)
	}
	return nil
}

// Size returns the number of stored readings.
func (u *Updater) Size() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return len(u.readings)
}

// Readings returns a copy of the stored readings (for export and
// persistence).
func (u *Updater) Readings() []dataset.Reading {
	u.mu.Lock()
	defer u.mu.Unlock()
	return append([]dataset.Reading(nil), u.readings...)
}

// Retrain relabels the store with Algorithm 1 and rebuilds the model,
// bumping the version. The store is snapshotted under the lock and the
// relabel+train runs with the lock released, so concurrent Submit and
// Model calls proceed during the rebuild (readings accepted after the
// snapshot are picked up by the next Retrain). If a rebuild is already in
// flight the call waits for it and returns its result instead of starting
// a second one.
func (u *Updater) Retrain() (*Model, error) {
	return u.RetrainCtx(context.Background())
}

// RetrainCtx is Retrain carrying a request trace: the rebuild spans
// (retrain, retrain/relabel, retrain/build) and the journal notifications
// (WAL retrain marker, replication tap, watch bump) are attributed to the
// trace in ctx.
func (u *Updater) RetrainCtx(ctx context.Context) (*Model, error) {
	u.mu.Lock()
	if call := u.inflight; call != nil {
		u.mu.Unlock()
		u.retrainCollided.Inc()
		<-call.done
		return call.model, call.err
	}
	if len(u.readings) == 0 {
		u.mu.Unlock()
		return nil, fmt.Errorf("core: no readings to train on")
	}
	call := &retrainCall{done: make(chan struct{})}
	u.inflight = call
	// Snapshot: the store is append-only under mu and the full slice
	// expression caps capacity, so the rebuild reads a stable prefix
	// while Submit keeps appending.
	snap := u.readings[:len(u.readings):len(u.readings)]
	u.mu.Unlock()

	model, err := u.rebuild(ctx, snap)

	u.mu.Lock()
	u.inflight = nil
	if err == nil {
		u.model = model
		u.version++
		u.trainedCount = len(snap)
		if u.journal != nil {
			u.journal.RecordRetrain(ctx, u.version, len(snap))
		}
	}
	u.mu.Unlock()
	call.model, call.err = model, err
	close(call.done)
	return model, err
}

// rebuild runs the relabel+train pipeline over a store snapshot. It holds
// no locks: this is the expensive phase Retrain keeps off the Submit and
// Model paths.
func (u *Updater) rebuild(ctx context.Context, snap []dataset.Reading) (*Model, error) {
	span := u.metrics.StartSpanCtx(ctx, "retrain")
	relabel := span.Child("relabel")
	labels, err := dataset.LabelReadings(snap, u.labelCfg)
	relabel.End()
	if err != nil {
		span.End()
		return nil, fmt.Errorf("core: relabel: %w", err)
	}
	build := span.Child("build")
	model, err := BuildModel(snap, labels, u.cfg)
	build.End()
	d := span.End()
	if err != nil {
		return nil, fmt.Errorf("core: rebuild: %w", err)
	}
	u.rebuildSeconds.Observe(d.Seconds())
	return model, nil
}

// Model returns the current model and its version (nil, 0 before the first
// Retrain).
func (u *Updater) Model() (*Model, int) {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.model, u.version
}

// TrainedCount returns the number of store readings the current model was
// trained on (0 before the first Retrain).
func (u *Updater) TrainedCount() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.trainedCount
}

// RetrainAt rebuilds the model from the store's first trainedCount
// readings and installs it at exactly the given version — the replication
// apply path. A primary journals (version, trainedCount) retrain markers;
// a replica that applies the same mutation stream in order reaches the
// same store prefix, and model construction is deterministic for a fixed
// constructor config (DESIGN.md §8), so the model installed here is
// byte-identical to the one the primary serves at that version. The
// version must advance and the prefix must exist; a violation means the
// stream was applied out of order and the replica must resync.
func (u *Updater) RetrainAt(version, trainedCount int) error {
	return u.RetrainAtCtx(context.Background(), version, trainedCount)
}

// RetrainAtCtx is RetrainAt carrying the replication-apply request trace.
func (u *Updater) RetrainAtCtx(ctx context.Context, version, trainedCount int) error {
	u.mu.Lock()
	if trainedCount <= 0 || trainedCount > len(u.readings) {
		n := len(u.readings)
		u.mu.Unlock()
		return fmt.Errorf("core: retrain-at: trained prefix %d outside store of %d readings", trainedCount, n)
	}
	if version <= u.version {
		v := u.version
		u.mu.Unlock()
		return fmt.Errorf("core: retrain-at: version %d does not advance current %d", version, v)
	}
	snap := u.readings[:trainedCount:trainedCount]
	u.mu.Unlock()

	model, err := u.rebuild(ctx, snap)
	if err != nil {
		return err
	}
	u.mu.Lock()
	u.model = model
	u.version = version
	u.trainedCount = trainedCount
	if u.journal != nil {
		u.journal.RecordRetrain(ctx, version, trainedCount)
	}
	u.mu.Unlock()
	return nil
}

// Restore rehydrates an updater from persisted state: the full trusted
// store, the version of the last trained model, and the store prefix
// length it was trained on. The model is rebuilt from that prefix — model
// construction is deterministic for a fixed constructor config and input
// (DESIGN.md §8), so the restored model is byte-identical to the one that
// was serving when the state was persisted. Call on a fresh updater
// before SetJournal, so recovery itself is not re-journaled.
func (u *Updater) Restore(readings []dataset.Reading, version, trainedCount int) error {
	if trainedCount < 0 || trainedCount > len(readings) {
		return fmt.Errorf("core: restore: trained count %d outside store of %d readings",
			trainedCount, len(readings))
	}
	if version < 0 || (version == 0) != (trainedCount == 0) {
		return fmt.Errorf("core: restore: inconsistent version %d for trained count %d",
			version, trainedCount)
	}
	var model *Model
	if trainedCount > 0 {
		var err error
		if model, err = u.rebuild(context.Background(), readings[:trainedCount]); err != nil {
			return fmt.Errorf("core: restore: %w", err)
		}
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	if len(u.readings) != 0 || u.version != 0 {
		return fmt.Errorf("core: restore into a non-empty updater (%d readings, version %d)",
			len(u.readings), u.version)
	}
	u.readings = append([]dataset.Reading(nil), readings...)
	u.model = model
	u.version = version
	u.trainedCount = trainedCount
	u.storeReadings.Set(float64(len(u.readings)))
	return nil
}

// IndexSnapshot returns a consistent view for availability indexing:
// the current model, its version, and up to maxRecent of the most
// recently accepted readings. The store is append-only, so the tail is
// the store's recency window — the occupancy evidence freshest in time
// without any per-reading timestamp bookkeeping. maxRecent ≤ 0 means
// the whole store. The readings slice is a copy safe to read after the
// lock is released; (nil, 0, evidence) before the first Retrain.
func (u *Updater) IndexSnapshot(maxRecent int) (*Model, int, []dataset.Reading) {
	u.mu.Lock()
	defer u.mu.Unlock()
	rs := u.readings
	if maxRecent > 0 && len(rs) > maxRecent {
		rs = rs[len(rs)-maxRecent:]
	}
	return u.model, u.version, append([]dataset.Reading(nil), rs...)
}

// Checkpoint calls fn with a consistent view of the store — the readings
// (a stable append-only prefix; fn must not mutate it), the model
// version, and the trained prefix length — while the store lock is held.
// Because the Journal hooks run under the same lock, everything fn sees
// is exactly the journal stream so far: internal/wal rotates its log
// segment inside fn, making the snapshot/log cut exact. Keep fn short
// (Submit and Model block for its duration); do slow I/O on the captured
// state after Checkpoint returns.
func (u *Updater) Checkpoint(fn func(readings []dataset.Reading, version, trainedCount int)) {
	u.mu.Lock()
	defer u.mu.Unlock()
	fn(u.readings[:len(u.readings):len(u.readings)], u.version, u.trainedCount)
}
