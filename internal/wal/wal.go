// Package wal is the durable persistence layer of the Waldo spectrum
// database: a write-ahead log plus snapshot compaction for the trusted
// reading stores, so a crash or deploy no longer discards the measurement
// campaign (the evolving-database requirement of arXiv:1303.3962, applied
// to the central store of ICDCS 2017 §IV).
//
// # Layout
//
// Each (channel, sensor) store gets its own directory under the server's
// data dir, holding one snapshot file and one or more append-only log
// segments named by a monotonically increasing epoch:
//
//	<dataDir>/ch47-s1/
//	    snapshot.bin        full store + model version, written atomically
//	    wal.0000000003.log  segment: records appended since epoch 3 began
//
// A log record is length-prefixed and CRC-checksummed:
//
//	uint32 payload length | uint32 CRC-32 (IEEE) of payload | payload
//
// (little-endian). Two payload kinds exist at the [Store] level: an
// accepted reading batch, and a retrain marker (new model version + the
// store prefix length it was trained on). Readings use the fixed-size
// binary codec of internal/core (core.ReadingWireSize bytes each).
//
// # Group commit
//
// [Log.Append] only frames the record into an in-memory batch — no
// syscall, no wakeup. A single flusher goroutine drains the batch with
// one write and one fsync when a durability barrier ([Log.Sync]) arrives
// or the coalescing window (StoreOptions.FlushInterval) elapses, so the
// upload request path never waits on the disk and a whole window of
// appends shares one fsync (classic group commit with a commit delay, as
// in PostgreSQL's commit_delay). The delay only spans records that were
// never acknowledged as durable: Sync still forces an immediate flush.
// If a write or fsync fails the log becomes wedged (fail-stop): later
// appends return the sticky error and waldo_wal_failed reads 1, but
// already-acknowledged data is never silently dropped.
//
// # Snapshots and recovery
//
// A snapshot is written in two steps that bracket the caller-supplied
// store lock (core.Updater.Checkpoint): inside the lock the log rotates
// to a fresh segment epoch, so the snapshot state and the segment cut are
// exact — every record in epochs below the snapshot's is contained in the
// snapshot, every record at or above it is not. Outside the lock the
// snapshot file is written to a temp name, fsynced, renamed over
// snapshot.bin, and the covered segments are deleted. Recovery
// ([OpenStore]) loads the snapshot, replays every surviving segment at or
// above its epoch in order, tolerates a torn final record (truncated and
// counted in waldo_wal_replay_torn_total — an in-flight append that was
// never acknowledged), rejects corrupt-CRC records without panicking
// (waldo_wal_replay_corrupt_total), and leaves the log open for
// appending. A crash at any point between the two snapshot steps recovers
// to the same state: the old snapshot plus the old segments are still
// consistent, and stale segments below a newer snapshot are deleted on
// the next open.
package wal

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sync"
	"time"

	"github.com/wsdetect/waldo/internal/telemetry"
	"github.com/wsdetect/waldo/internal/wlog"
)

const (
	// recordHeader is the length-prefix plus CRC framing overhead.
	recordHeader = 8
	// maxRecord bounds a single record payload; anything larger in a
	// length prefix is corruption, not data.
	maxRecord = 64 << 20

	segPrefix = "wal."
	segSuffix = ".log"
)

// segName renders the file name of the segment with the given epoch.
func segName(epoch uint64) string {
	return fmt.Sprintf("%s%010d%s", segPrefix, epoch, segSuffix)
}

// parseSegName extracts the epoch from a segment file name.
func parseSegName(name string) (uint64, bool) {
	if len(name) != len(segPrefix)+10+len(segSuffix) ||
		name[:len(segPrefix)] != segPrefix || name[len(name)-len(segSuffix):] != segSuffix {
		return 0, false
	}
	var epoch uint64
	for _, c := range name[len(segPrefix) : len(segPrefix)+10] {
		if c < '0' || c > '9' {
			return 0, false
		}
		epoch = epoch*10 + uint64(c-'0')
	}
	return epoch, true
}

// frame renders one record: header (length + CRC) and payload.
func frame(payload []byte) []byte {
	return appendFrame(make([]byte, 0, recordHeader+len(payload)), payload)
}

// appendFrame appends one framed record to dst — the no-extra-copy path
// Append uses to build the pending batch in place.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}

// logMetrics are the telemetry handles shared by a store's log; all are
// nil-safe no-ops when no registry is configured.
type logMetrics struct {
	appends       *telemetry.Counter
	appendedBytes *telemetry.Counter
	fsyncSeconds  *telemetry.Histogram
	fsyncErrors   *telemetry.Counter
	failed        *telemetry.Gauge
	replayRecords *telemetry.Counter
	replayTorn    *telemetry.Counter
	replayCorrupt *telemetry.Counter
	replaySeconds *telemetry.Histogram
	snapshots     *telemetry.Counter
	snapshotErrs  *telemetry.Counter
	dropped       *telemetry.Counter
}

func newLogMetrics(reg *telemetry.Registry, scope string) logMetrics {
	return logMetrics{
		appends: reg.Counter("waldo_wal_appends_total",
			"Records appended to the write-ahead log.", "store", scope),
		appendedBytes: reg.Counter("waldo_wal_appended_bytes_total",
			"Bytes appended to the write-ahead log (framing included).", "store", scope),
		fsyncSeconds: reg.Histogram("waldo_wal_fsync_seconds",
			"Group-commit flush duration (one write + one fsync per batch).", nil, "store", scope),
		fsyncErrors: reg.Counter("waldo_wal_fsync_errors_total",
			"Write or fsync failures; the first one wedges the log (fail-stop).", "store", scope),
		failed: reg.Gauge("waldo_wal_failed",
			"1 when the log is wedged by a write/fsync error, else 0.", "store", scope),
		replayRecords: reg.Counter("waldo_wal_replay_records_total",
			"Records applied during crash recovery.", "store", scope),
		replayTorn: reg.Counter("waldo_wal_replay_torn_total",
			"Torn final records truncated during recovery (unacknowledged tail writes).", "store", scope),
		replayCorrupt: reg.Counter("waldo_wal_replay_corrupt_total",
			"Corrupt records (bad CRC or framing) rejected during recovery.", "store", scope),
		replaySeconds: reg.Histogram("waldo_wal_replay_seconds",
			"Crash-recovery duration: snapshot load plus segment replay.", nil, "store", scope),
		snapshots: reg.Counter("waldo_wal_snapshots_total",
			"Snapshot compactions completed.", "store", scope),
		snapshotErrs: reg.Counter("waldo_wal_snapshot_errors_total",
			"Snapshot compactions that failed (log keeps growing until one succeeds).", "store", scope),
		dropped: reg.Counter("waldo_wal_dropped_records_total",
			"Journal records dropped because the log was wedged.", "store", scope),
	}
}

// Log is one store's segmented append-only record log with group-commit
// batching. Append and Sync are safe for concurrent use; Rotate must not
// race Append (the store guarantees this by rotating under the same lock
// that orders appends).
type Log struct {
	dir      string
	fs       FS
	m        logMetrics
	lg       *wlog.Logger
	interval time.Duration // fsync coalescing window

	mu       sync.Mutex
	cond     *sync.Cond
	pending  []byte       // framed records awaiting the flusher
	spare    []byte       // recycled batch buffer (swap, don't realloc)
	waiters  []chan error // Sync barriers for the next flush
	epoch    uint64       // epoch of the active segment
	f        File         // active segment, append position at EOF
	writing  bool         // flusher is mid write+fsync
	dirty    bool         // bytes written since the last fsync
	syncDue  bool         // the coalescing timer fired (or a drain forces a sync)
	timerSet bool         // a coalescing timer is pending
	err      error        // sticky fail-stop error
	closed   bool
}

// defaultFlushInterval bounds how long appended-but-unflushed records may
// sit in memory with no Sync barrier waiting. Batching the write+fsync
// over this window (instead of one per append) is what keeps the durable
// upload path within a few percent of the in-memory one; the window only
// spans records that were never acknowledged as durable, so no Sync
// caller can observe it.
const defaultFlushInterval = 5 * time.Millisecond

// openLog opens (creating if needed) the log in dir for appending,
// resuming at the highest existing segment epoch. Call replaySegments
// before the first Append.
func openLog(dir string, fs FS, m logMetrics, lg *wlog.Logger, epoch uint64, interval time.Duration) (*Log, error) {
	if interval <= 0 {
		interval = defaultFlushInterval
	}
	l := &Log{dir: dir, fs: fs, m: m, lg: lg, epoch: epoch, interval: interval}
	l.cond = sync.NewCond(&l.mu)
	f, err := fs.OpenAppend(filepath.Join(dir, segName(epoch)))
	if err != nil {
		return nil, fmt.Errorf("wal: open segment %d: %w", epoch, err)
	}
	if err := fs.SyncDir(dir); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: sync dir: %w", err)
	}
	l.f = f
	go l.flusher()
	return l, nil
}

// maxPendingBytes bounds the in-memory group-commit batch. Without a
// bound, appenders outrunning the disk grow the pending buffer without
// limit, and — worse for the hot path — a buffer that never stops
// growing pays a growslice copy of roughly its own size on every
// append (the allocator can never settle on a high-water capacity).
// Profiles of the batch ingest path showed that copy storm dominating
// the durable variant. Past the bound, Append blocks until the flusher
// drains: brief backpressure against a device that genuinely can't keep
// up, instead of unbounded memory and quadratic copying.
const maxPendingBytes = 1 << 20

// Append frames payload and queues it for the next group commit. It
// normally returns immediately — durability lags by at most the
// coalescing window (use Sync to wait for it) — but blocks while the
// pending batch is at maxPendingBytes. The only error is the sticky
// fail-stop state of a wedged log.
func (l *Log) Append(payload []byte) error {
	if len(payload) > maxRecord {
		return fmt.Errorf("wal: record of %d bytes exceeds limit %d", len(payload), maxRecord)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.pending) >= maxPendingBytes && l.err == nil && !l.closed {
		if !l.syncDue {
			l.syncDue = true
			l.cond.Broadcast()
		}
		l.cond.Wait()
	}
	if l.err != nil {
		return l.err
	}
	if l.closed {
		return fmt.Errorf("wal: append to closed log")
	}
	l.pending = appendFrame(l.pending, payload)
	l.m.appends.Inc()
	l.m.appendedBytes.Add(uint64(recordHeader + len(payload)))
	// No wakeup: the request path only frames into the pending buffer.
	// The flusher runs when the coalescing timer fires, a Sync barrier
	// arrives, or the log closes — so a burst of appends costs zero
	// syscalls and zero context switches until the window elapses.
	l.armTimerLocked()
	return nil
}

// Sync blocks until every previously appended record is on stable
// storage, returning the flush error if the log wedged.
func (l *Log) Sync() error {
	done := make(chan error, 1)
	l.mu.Lock()
	if l.err != nil {
		l.mu.Unlock()
		return l.err
	}
	if l.closed {
		l.mu.Unlock()
		return fmt.Errorf("wal: sync on closed log")
	}
	l.waiters = append(l.waiters, done)
	l.cond.Broadcast()
	l.mu.Unlock()
	return <-done
}

// flusher is the single background goroutine implementing group commit:
// it sleeps until a Sync barrier arrives, the coalescing timer fires, or
// the log closes, then drains everything that accumulated since the last
// flush in one write. The fsync piggybacks on the same cycle when a
// barrier waits (or on close); a timer-driven cycle syncs too, so dirty
// bytes never outlive one window. A steady stream of fire-and-forget
// appends thus costs one write + one fsync per window, not per record.
// While a flush is in flight new appends pile into the next batch.
func (l *Log) flusher() {
	for {
		l.mu.Lock()
		for len(l.waiters) == 0 && !l.syncDue && !l.closed {
			l.cond.Wait()
		}
		if l.closed && len(l.pending) == 0 && len(l.waiters) == 0 && !l.dirty {
			l.mu.Unlock()
			return
		}
		batch := l.pending
		waiters := l.waiters
		syncDue := l.syncDue
		l.pending = l.spare[:0]
		l.spare = nil
		l.waiters = nil
		l.syncDue = false
		f := l.f
		wasDirty := l.dirty
		l.writing = true
		l.mu.Unlock()

		var err error
		wrote := false
		if len(batch) > 0 && l.err == nil {
			_, err = f.Write(batch)
			wrote = err == nil
		}
		synced := false
		needSync := (wrote || wasDirty) && err == nil && l.err == nil &&
			(len(waiters) > 0 || syncDue || l.closed)
		if needSync {
			start := time.Now()
			err = f.Sync()
			l.m.fsyncSeconds.Observe(time.Since(start).Seconds())
			synced = err == nil
		}
		if err != nil {
			l.m.fsyncErrors.Inc()
		}

		l.mu.Lock()
		l.writing = false
		if l.spare == nil && batch != nil {
			l.spare = batch[:0]
		}
		if err != nil && l.err == nil {
			l.err = fmt.Errorf("wal: flush: %w", err)
			l.m.failed.Set(1)
			// Fail-stop is deliberate; make it loud. Every subsequent
			// append drops, so this line is the root cause of the
			// wal_record_dropped stream that follows.
			l.lg.Error(context.Background(), "wal_wedged", "dir", l.dir, "err", err)
		}
		if l.err != nil {
			l.dirty = false // wedged: nothing further to sync
		} else if synced {
			l.dirty = false
		} else if wrote || wasDirty {
			l.dirty = true
			l.armTimerLocked()
		}
		sticky := l.err
		l.cond.Broadcast() // wake rotate/close drains
		l.mu.Unlock()
		for _, w := range waiters {
			w <- sticky
		}
	}
}

// armTimerLocked schedules the deferred flush for pending or dirty bytes
// with no barrier waiting. Called with l.mu held.
func (l *Log) armTimerLocked() {
	if l.timerSet || l.closed {
		return
	}
	l.timerSet = true
	time.AfterFunc(l.interval, func() {
		l.mu.Lock()
		l.timerSet = false
		if (len(l.pending) > 0 || l.dirty) && l.err == nil {
			l.syncDue = true
			l.cond.Broadcast()
		}
		l.mu.Unlock()
	})
}

// drainLocked waits (with l.mu held) until the flusher has written and
// fsynced everything queued so far, forcing the flush through rather than
// waiting out the coalescing window.
func (l *Log) drainLocked() {
	for len(l.pending) > 0 || l.writing || l.dirty {
		if !l.syncDue {
			l.syncDue = true
			l.cond.Broadcast()
		}
		l.cond.Wait()
	}
}

// rotate drains the queue, closes the active segment, and starts a fresh
// one under the next epoch, returning the new epoch. The caller must
// prevent concurrent Appends (the store rotates inside the updater's
// checkpoint lock, which also orders appends).
func (l *Log) rotate() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: rotate on closed log")
	}
	l.drainLocked()
	if l.err != nil {
		return 0, l.err
	}
	next := l.epoch + 1
	f, err := l.fs.OpenAppend(filepath.Join(l.dir, segName(next)))
	if err != nil {
		return 0, fmt.Errorf("wal: open segment %d: %w", next, err)
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		f.Close()
		return 0, fmt.Errorf("wal: sync dir: %w", err)
	}
	if err := l.f.Close(); err != nil {
		f.Close()
		return 0, fmt.Errorf("wal: close segment %d: %w", l.epoch, err)
	}
	l.f = f
	l.epoch = next
	return next, nil
}

// removeBelow deletes every segment with an epoch below keep.
func (l *Log) removeBelow(keep uint64) error {
	names, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: list segments: %w", err)
	}
	removed := false
	for _, name := range names {
		if epoch, ok := parseSegName(name); ok && epoch < keep {
			if err := l.fs.Remove(filepath.Join(l.dir, name)); err != nil {
				return fmt.Errorf("wal: remove %s: %w", name, err)
			}
			removed = true
		}
	}
	if removed {
		return l.fs.SyncDir(l.dir)
	}
	return nil
}

// Close drains pending appends, stops the flusher, and closes the active
// segment. It does not snapshot: the on-disk state stays crash-shaped
// and recovery replays it identically.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.drainLocked()
	l.closed = true
	l.cond.Broadcast()
	err := l.err
	f := l.f
	l.mu.Unlock()
	if cerr := f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	return err
}

// ReplayStats summarizes one recovery pass over the log segments.
type ReplayStats struct {
	// Segments is the number of segment files visited.
	Segments int
	// Records is the number of intact records applied.
	Records int
	// TornTail is true when the final segment ended in a partial record
	// that was truncated away (an append in flight at crash time, never
	// acknowledged as durable).
	TornTail bool
	// CorruptAt, when non-nil, reports the segment epoch and byte offset
	// of a corrupt (bad CRC / bad framing) record. Replay stops there.
	CorruptAt *CorruptRecord
}

// CorruptRecord locates a rejected record.
type CorruptRecord struct {
	Epoch  uint64
	Offset int64
}

// replaySegments replays every segment with epoch >= minEpoch in epoch
// order, calling apply for each intact record payload. A short record at
// the end of the last segment is a torn tail: it is counted, the file is
// truncated back to the last intact record, and recovery succeeds. A bad
// CRC, an impossible length prefix, or a short record anywhere else is
// corruption: it is counted, replay stops, and the error tells the
// operator where (OPERATIONS.md documents the recovery procedure).
func replaySegments(dir string, fs FS, m logMetrics, minEpoch uint64, apply func(payload []byte) error) (uint64, ReplayStats, error) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return 0, ReplayStats{}, fmt.Errorf("wal: list segments: %w", err)
	}
	var epochs []uint64
	for _, name := range names {
		if epoch, ok := parseSegName(name); ok {
			if epoch < minEpoch {
				// Compaction leftovers from a crash between snapshot
				// rename and segment removal: fully covered by the
				// snapshot, safe to drop.
				if err := fs.Remove(filepath.Join(dir, name)); err != nil {
					return 0, ReplayStats{}, fmt.Errorf("wal: remove stale %s: %w", name, err)
				}
				continue
			}
			epochs = append(epochs, epoch)
		}
	}
	var stats ReplayStats
	top := minEpoch
	for i, epoch := range epochs {
		if epoch > top {
			top = epoch
		}
		last := i == len(epochs)-1
		path := filepath.Join(dir, segName(epoch))
		data, err := fs.ReadFile(path)
		if err != nil {
			return 0, stats, fmt.Errorf("wal: read segment %d: %w", epoch, err)
		}
		stats.Segments++
		valid, torn, err := replayOne(data, last, apply, &stats, m)
		if err != nil {
			stats.CorruptAt = &CorruptRecord{Epoch: epoch, Offset: valid}
			m.replayCorrupt.Inc()
			return 0, stats, fmt.Errorf("wal: segment %d corrupt at offset %d: %w", epoch, valid, err)
		}
		if torn {
			stats.TornTail = true
			m.replayTorn.Inc()
			if err := fs.Truncate(path, valid); err != nil {
				return 0, stats, fmt.Errorf("wal: truncate torn tail of segment %d: %w", epoch, err)
			}
		}
	}
	return top, stats, nil
}

// replayOne walks one segment's records. It returns the byte offset of
// the last intact record boundary and whether a torn tail follows it; a
// non-nil error means corruption (only tolerated as torn when it runs to
// the end of the final segment).
func replayOne(data []byte, lastSegment bool, apply func([]byte) error, stats *ReplayStats, m logMetrics) (int64, bool, error) {
	off := 0
	for off < len(data) {
		rem := len(data) - off
		if rem < recordHeader {
			if lastSegment {
				return int64(off), true, nil
			}
			return int64(off), false, fmt.Errorf("short record header (%d bytes)", rem)
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if n > maxRecord {
			return int64(off), false, fmt.Errorf("impossible record length %d", n)
		}
		if rem < recordHeader+n {
			if lastSegment {
				return int64(off), true, nil
			}
			return int64(off), false, fmt.Errorf("short record payload (%d of %d bytes)", rem-recordHeader, n)
		}
		payload := data[off+recordHeader : off+recordHeader+n]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[off+4:]) {
			return int64(off), false, fmt.Errorf("CRC mismatch on %d-byte record", n)
		}
		if err := apply(payload); err != nil {
			return int64(off), false, err
		}
		stats.Records++
		m.replayRecords.Inc()
		off += recordHeader + n
	}
	return int64(off), false, nil
}
