# Build, test, and verification entry points. `make check` is the CI
# gate: vet + build + full test suite under the race detector.

GO ?= go

.PHONY: check verify build test race vet fmt-check bench bench-telemetry bench-wal bench-cluster bench-ingest bench-e2e bench-e2e-smoke bench-geo crash-test doccheck loadgen chaos cluster-test trace-smoke clean

check: vet build race

# Full pre-merge verification: formatting, vet, build, tests, the
# sharded-cluster suite (in-process chaos harness + real-process smoke),
# a seconds-long smoke tier of the latency-SLO harness under the race
# detector, the end-to-end trace smoke (one traced upload must cross
# gateway -> shard -> WAL under a single trace ID), and the godoc
# coverage gate on contract-surface packages.
verify: fmt-check vet build test doccheck cluster-test bench-e2e-smoke trace-smoke

# Godoc coverage on contract-surface packages: every exported
# identifier (funcs, methods, types, consts, vars, struct fields) must
# carry a doc comment. The package list lives in scripts/doccheck.sh.
doccheck:
	scripts/doccheck.sh

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Performance suite for the parallel pipeline PR: model construction
# fan-out, non-blocking retrain, cached model serving, k-means worker
# pool, FFT hot path, and the telemetry budget. Results land in
# BENCH_2.json (machine-readable, via cmd/waldo-benchjson) with the raw
# text kept alongside in BENCH_2.txt.
BENCH_PATTERN ?= BuildModelParallel|RetrainConcurrentSubmit|RetrainStoreScale|ModelEndpointCached|KMeansAssign|FFT256|PowerSpectrum256
BENCH_PKGS ?= ./internal/core/ ./internal/dbserver/ ./internal/ml/kmeans/ ./internal/dsp/

bench: bench-ingest
	$(GO) test -bench '$(BENCH_PATTERN)' -benchmem -run XXX $(BENCH_PKGS) | tee BENCH_2.txt
	$(GO) run ./cmd/waldo-benchjson < BENCH_2.txt > BENCH_2.json

# Telemetry hot-path budget (< ~100 ns/op for counter inc / histogram
# observe).
bench-telemetry:
	$(GO) test -bench . -benchmem -run XXX ./internal/telemetry/

# Durability suite for the WAL PR: group-commit append cost, the full
# durable round trip, recovery replay speed, and the upload path with and
# without a WAL (the acceptance criterion: durable within ~10% of
# in-memory). Fixed iteration counts keep the memory/WAL comparison fair —
# per-op cost grows with store size, so time-based -benchtime would hand
# the two variants different workloads. Results land in BENCH_5.json with
# the raw text in BENCH_5.txt.
WAL_BENCH_PATTERN ?= BenchmarkAppendGroupCommit|BenchmarkAppendDurable|BenchmarkReplay
UPLOAD_BENCH_PATTERN ?= BenchmarkUploadPath

bench-wal:
	$(GO) test -bench '$(WAL_BENCH_PATTERN)' -benchmem -run XXX ./internal/wal/ | tee BENCH_5.txt
	$(GO) test -bench '$(UPLOAD_BENCH_PATTERN)' -benchmem -benchtime 30000x -run XXX ./internal/dbserver/ | tee -a BENCH_5.txt
	$(GO) run ./cmd/waldo-benchjson < BENCH_5.txt > BENCH_5.json

# The crash-recovery acceptance test under the race detector: a server
# killed mid-campaign (clean kill and torn-tail variants, plus a run under
# client-side network chaos) must recover from disk to byte-identical
# decisions, store exports, and model versions.
crash-test:
	$(GO) test -race ./internal/e2e/ -run 'TestCrashRecovery|TestRunCrashValidation' -count 1 -v

# End-to-end performance harness against an in-process spectrum database.
loadgen:
	$(GO) run ./cmd/waldo-loadgen -clients 8 -duration 5s -channels 46,47

# Deterministic chaos suite: the fault-injection layer, the client/server
# resilience tests, and the end-to-end byte-identity harness, all under
# the race detector (DESIGN.md §9).
chaos:
	$(GO) test -race ./internal/faultinject/ ./internal/e2e/ -count 1
	$(GO) test -race ./internal/client/ -run 'TestRetry|TestBackoff|TestBreaker|TestStaleServe|TestConcurrentRefreshUploadUnderFaults' -count 1
	$(GO) test -race ./internal/dbserver/ -run 'TestLoadShedding|TestRequestTimeout|TestMaxBody' -count 1

# Sharded-cluster acceptance: the ring/replication/gateway unit tests and
# the kill-a-primary e2e chaos harness under the race detector, then a
# real-process smoke — three waldo-server shards plus a waldo-gateway on
# loopback, loadgen driving the gateway (DESIGN.md §12).
cluster-test:
	$(GO) test -race ./internal/cluster/ -count 1
	$(GO) test -race ./internal/e2e/ -run TestCluster -count 1
	mkdir -p bin
	$(GO) build -o bin ./cmd/waldo-server ./cmd/waldo-gateway ./cmd/waldo-loadgen
	scripts/cluster_smoke.sh bin

# End-to-end trace smoke: real-process 3-shard cluster plus gateway, one
# traced upload, then assert the response-header trace ID is retained by
# both the gateway's and the owning shard's /debug/traces with the
# fan-out leg and WAL append spans (DESIGN.md §14).
trace-smoke:
	mkdir -p bin
	$(GO) build -o bin ./cmd/waldo-server ./cmd/waldo-gateway
	scripts/trace_smoke.sh bin

# Cluster tier benchmarks: gateway routing overhead vs a direct shard
# upload (the acceptance bar: < 2× per op), plus ring lookup and
# replication frame encode costs. Fixed iteration counts keep the
# direct/gateway comparison fair. Results land in BENCH_6.json with the
# raw text in BENCH_6.txt.
CLUSTER_BENCH_PATTERN ?= BenchmarkUploadDirect|BenchmarkUploadViaGateway|BenchmarkRingOwner|BenchmarkFrameEncode

bench-cluster:
	$(GO) test -bench '$(CLUSTER_BENCH_PATTERN)' -benchmem -benchtime 3000x -run XXX ./internal/cluster/ | tee BENCH_6.txt
	$(GO) run ./cmd/waldo-benchjson < BENCH_6.txt > BENCH_6.json

# Ingest suite for the binary-batching PR: the same 256-reading stream
# ingested as 64 per-scan JSON uploads vs one binary batch frame, memory
# and WAL variants (acceptance: batch ≥ 10× single-JSON readings/s), plus
# the watch-hub bump cost with 0 and 4096 idle watchers parked
# (acceptance: flat — the retrain path does O(1) work however many WSDs
# wait). Fixed iteration counts keep the comparisons on equal store
# sizes. Results land in BENCH_7.json with the raw text in BENCH_7.txt.
# Gate changes against a saved baseline with scripts/bench_regress.sh.
INGEST_BENCH_PATTERN ?= BenchmarkIngest
WATCH_BENCH_PATTERN ?= BenchmarkWatchBump

bench-ingest:
	$(GO) test -bench '$(INGEST_BENCH_PATTERN)' -benchmem -benchtime 500x -run XXX ./internal/dbserver/ | tee BENCH_7.txt
	$(GO) test -bench '$(WATCH_BENCH_PATTERN)' -benchtime 100000x -run XXX ./internal/dbserver/ | tee -a BENCH_7.txt
	$(GO) run ./cmd/waldo-benchjson < BENCH_7.txt > BENCH_7.json

# End-to-end latency-SLO harness (DESIGN.md / OPERATIONS.md §SLO): boots
# a real in-process server (single-node and 3-shard gateway topologies),
# drives open-loop load tiers, and APPENDS per-endpoint p50/p95/p99/p999
# plus GC-pause percentiles to the BENCH_E2E.json trajectory. Gate the
# last two runs with scripts/bench_regress.sh BENCH_E2E.json.
E2E_TIERS ?= 1k=1000,10k=10000,50k=50000
E2E_TIER_DURATION ?= 5s

bench-e2e:
	$(GO) run ./cmd/waldo-bench-e2e -out BENCH_E2E.json -tiers '$(E2E_TIERS)' -tier-duration $(E2E_TIER_DURATION)

# The verify-time slice: the harness's own test suite under -race (smoke
# tiers on both topologies, the geo-query tiers with the
# rebuild-off-the-request-path check, plus the shutdown goroutine-leak
# checks).
bench-e2e-smoke:
	$(GO) test -race ./internal/benchharness/ -count 1

# Spatiotemporal query harness (DESIGN.md §15): boots the single and
# 3-shard gateway topologies and drives GET /v1/availability + POST
# /v1/route open-loop at fixed tiers while periodic retrains keep the
# availability grid rebuilding underneath. APPENDS per-endpoint
# p50/p95/p99/p999 plus published-rebuild counts to the BENCH_10.json
# trajectory (bench_e2e/v1 schema); once two runs exist,
# scripts/bench_regress.sh gates route/availability p99 between the last
# two runs. The threshold is looser than the microbench default: these
# are ms-scale p99s from seconds-long tiers on whatever box CI hands us,
# where ±40% scheduler noise is routine — the gate exists to catch the
# order-of-magnitude blowup of rebuild work landing on the request path,
# not to relitigate jitter.
GEO_TIERS ?= 500=500,2k=2000,5k=5000
GEO_TIER_DURATION ?= 5s
GEO_REGRESS_PCT ?= 50

bench-geo:
	$(GO) run ./cmd/waldo-bench-geo -out BENCH_10.json -tiers '$(GEO_TIERS)' -tier-duration $(GEO_TIER_DURATION)
	@if [ "$$(grep -c '"time":' BENCH_10.json)" -ge 2 ]; then \
		scripts/bench_regress.sh BENCH_10.json $(GEO_REGRESS_PCT); \
	else \
		echo "bench-geo: first run recorded; the regression gate engages from the second run"; \
	fi

clean:
	$(GO) clean ./...
