package main

import (
	"testing"
	"time"
)

func TestParseTiers(t *testing.T) {
	tiers, err := parseTiers("1k=1000, 50k=50000", 2*time.Second, 16, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(tiers) != 2 {
		t.Fatalf("got %d tiers, want 2", len(tiers))
	}
	if tiers[0].Name != "1k" || tiers[0].Rate != 1000 {
		t.Errorf("tier 0 = %+v", tiers[0])
	}
	if tiers[1].Name != "50k" || tiers[1].Rate != 50000 {
		t.Errorf("tier 1 = %+v", tiers[1])
	}
	for _, tier := range tiers {
		if tier.Duration != 2*time.Second || tier.BatchSize != 16 || tier.JSONFraction != 0.25 {
			t.Errorf("tier options not threaded through: %+v", tier)
		}
	}
}

func TestParseTiersRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{"", "noequals", "x=", "x=-5", "x=abc"} {
		if _, err := parseTiers(spec, time.Second, 16, 0); err == nil {
			t.Errorf("parseTiers(%q) accepted a bad spec", spec)
		}
	}
}
