package experiments

import (
	"fmt"
	"strings"

	"github.com/wsdetect/waldo/internal/baseline/kriging"
	"github.com/wsdetect/waldo/internal/core"
	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/features"
	"github.com/wsdetect/waldo/internal/ml/validate"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
)

// InterpolationResult extends the §4.4 comparison across the whole
// measurement-augmented family the paper cites ([10], [49], [52]):
// kriging and inverse-distance interpolation alongside V-Scope's fitted
// propagation law and Waldo. All location-only systems predict the RSS
// field and answer availability from it; Waldo additionally sees the
// device's own spectrum view.
type InterpolationResult struct {
	Rows []AblationClassifierRow
}

// AblationInterpolation trains each interpolator on 90 % of the analyzer
// readings per channel and scores availability answers on the held-out
// 10 % against ground-truth labels.
func (s *Suite) AblationInterpolation() (*InterpolationResult, error) {
	camp, err := s.Campaign()
	if err != nil {
		return nil, err
	}
	res := &InterpolationResult{}
	var krigTotal, idwTotal, waldoTotal validate.Metrics

	for _, ch := range rfenv.EvalChannels {
		readings := camp.Readings(ch, sensor.KindSpectrumAnalyzer)
		truth, err := s.GroundTruth(ch, 0)
		if err != nil {
			return nil, err
		}
		folds, err := validate.KFold(len(readings), 10, s.cfg.Seed+800+int64(ch))
		if err != nil {
			return nil, err
		}
		test := folds[0]
		inTest := make(map[int]bool, len(test))
		for _, i := range test {
			inTest[i] = true
		}
		var train []dataset.Reading
		for i := range readings {
			if !inTest[i] {
				train = append(train, readings[i])
			}
		}

		km, err := kriging.Fit(train, kriging.Config{})
		if err != nil {
			return nil, fmt.Errorf("interp %v kriging: %w", ch, err)
		}
		idw, err := kriging.FitIDW(train, kriging.Config{}, 0)
		if err != nil {
			return nil, fmt.Errorf("interp %v idw: %w", ch, err)
		}
		for _, i := range test {
			kOK, err := km.Available(readings[i].Loc)
			if err != nil {
				return nil, err
			}
			iOK, err := idw.Available(readings[i].Loc)
			if err != nil {
				return nil, err
			}
			krigTotal.Count(boolClass(kOK), labelClass(truth[i]))
			idwTotal.Count(boolClass(iOK), labelClass(truth[i]))
		}

		// Waldo on the analyzer data for a like-for-like comparison.
		wm, err := s.cvWithLabels(ch, sensor.KindSpectrumAnalyzer, truth, core.ConstructorConfig{
			ClusterK:   1,
			Classifier: core.KindSVM,
			Features:   features.SetLocationRSSCFT,
			Seed:       s.cfg.Seed + 801,
		})
		if err != nil {
			return nil, err
		}
		waldoTotal.Add(wm)
	}

	res.Rows = append(res.Rows,
		AblationClassifierRow{Name: "kriging", Metrics: krigTotal},
		AblationClassifierRow{Name: "idw", Metrics: idwTotal},
		AblationClassifierRow{Name: "waldo", Metrics: waldoTotal},
	)
	return res, nil
}

// Render implements the experiment report.
func (r *InterpolationResult) Render() string {
	var b strings.Builder
	b.WriteString("§4.4 extension: measurement-interpolation family vs Waldo (analyzer data)\n")
	fmt.Fprintf(&b, "%-10s %8s %8s %8s\n", "system", "err", "FP", "FN")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %8.4f %8.4f %8.4f\n",
			row.Name, row.Metrics.ErrorRate(), row.Metrics.FPRate(), row.Metrics.FNRate())
	}
	b.WriteString("(interpolators see only location at query time; Waldo also sees the device's spectrum view)\n")
	return b.String()
}
