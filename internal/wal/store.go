package wal

import (
	"context"
	"encoding/binary"
	"fmt"
	"path/filepath"
	"time"

	"github.com/wsdetect/waldo/internal/core"
	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
	"github.com/wsdetect/waldo/internal/telemetry"
	"github.com/wsdetect/waldo/internal/wlog"
)

// Store record payload kinds.
const (
	recAppend  byte = 1 // accepted reading batch
	recRetrain byte = 2 // model version bump + trained prefix length
)

// StoreDirName renders the on-disk directory name for a store key, e.g.
// "ch47-s1" for channel 47, sensor kind 1.
func StoreDirName(ch rfenv.Channel, kind sensor.Kind) string {
	return fmt.Sprintf("ch%d-s%d", int(ch), int(kind))
}

// ParseStoreDirName inverts StoreDirName, rejecting names that are not a
// store directory (so unrelated files in a data dir are ignored).
func ParseStoreDirName(name string) (rfenv.Channel, sensor.Kind, bool) {
	var ch, s int
	if n, err := fmt.Sscanf(name, "ch%d-s%d", &ch, &s); n != 2 || err != nil {
		return 0, 0, false
	}
	if name != StoreDirName(rfenv.Channel(ch), sensor.Kind(s)) {
		return 0, 0, false
	}
	return rfenv.Channel(ch), sensor.Kind(s), true
}

// StoreOptions parameterizes OpenStore.
type StoreOptions struct {
	// FS is the filesystem to persist through; nil means the real one
	// (OSFS). Tests and the chaos layer inject fault-carrying FS values.
	FS FS
	// Metrics receives the waldo_wal_* series, labeled with the store
	// identity; nil leaves the store uninstrumented.
	Metrics *telemetry.Registry
	// FlushInterval bounds how long an unsynced append may sit before the
	// flusher forces an fsync (the group-commit coalescing window). Zero
	// means the default; Sync always forces an immediate fsync regardless.
	FlushInterval time.Duration
	// Log, when set, receives structured events for the paths that used
	// to fail silently into counters: replay truncation/corruption, a
	// wedged log, dropped journal records, snapshot failures. nil
	// disables logging (every wlog method is nil-safe).
	Log *wlog.Logger
}

// Recovered is the state OpenStore rebuilt from disk, to be fed into
// core.Updater.Restore.
type Recovered struct {
	// Readings is the full trusted store in original append order.
	Readings []dataset.Reading
	// ModelVersion and TrainedCount describe the last completed retrain
	// (0, 0 when the store crashed before its first).
	ModelVersion int
	TrainedCount int
	// Stats summarizes the replay (segments visited, records applied,
	// torn-tail truncation).
	Stats ReplayStats
}

// Store is the durable persistence of one (channel, sensor) reading
// store: a write-ahead log of accepted batches and retrain markers, plus
// snapshot compaction. It implements core.Journal, so wiring it into an
// updater via SetJournal journals every accepted mutation in apply order.
type Store struct {
	dir  string
	fs   FS
	ch   rfenv.Channel
	kind sensor.Kind
	m    logMetrics
	// reg mints wal/append spans into request traces (nil-safe).
	reg *telemetry.Registry
	lg  *wlog.Logger
	log *Log
	// scratch is the reusable record-payload buffer for the journal
	// methods. Safe without a lock: core.Journal calls are serialized by
	// the updater's store lock, and Log.Append copies the payload into
	// the pending batch before returning.
	scratch []byte
}

// OpenStore opens (creating if needed) the durable store rooted at dir
// and recovers its persisted state: snapshot first, then every log
// segment at or above the snapshot's epoch, tolerating a torn final
// record. The returned log is open for appending.
func OpenStore(dir string, ch rfenv.Channel, kind sensor.Kind, opts StoreOptions) (*Store, *Recovered, error) {
	fs := opts.FS
	if fs == nil {
		fs = OSFS{}
	}
	scope := fmt.Sprintf("%d/%d", int(ch), int(kind))
	m := newLogMetrics(opts.Metrics, scope)
	lg := opts.Log.Named("wal")
	if err := fs.MkdirAll(dir); err != nil {
		return nil, nil, fmt.Errorf("wal: create store dir: %w", err)
	}

	start := time.Now()
	rec := &Recovered{}
	minEpoch := uint64(1)
	if data, err := fs.ReadFile(filepath.Join(dir, snapshotName)); err == nil {
		st, err := decodeSnapshot(data, ch, kind)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: %s: %w (see OPERATIONS.md, recovering from corruption)", dir, err)
		}
		rec.Readings = st.readings
		rec.ModelVersion = st.modelVersion
		rec.TrainedCount = st.trainedCount
		minEpoch = st.epoch
	}
	top, stats, err := replaySegments(dir, fs, m, minEpoch, func(payload []byte) error {
		return applyRecord(rec, payload)
	})
	rec.Stats = stats
	if err != nil {
		return nil, nil, err
	}
	m.replaySeconds.Observe(time.Since(start).Seconds())
	if stats.TornTail {
		lg.Warn(context.Background(), "wal_torn_tail_truncated", "dir", dir)
	}
	if stats.CorruptAt != nil {
		lg.Error(context.Background(), "wal_corrupt_record",
			"dir", dir, "epoch", stats.CorruptAt.Epoch, "offset", stats.CorruptAt.Offset)
	}
	lg.Info(context.Background(), "wal_recovered", "dir", dir,
		"segments", stats.Segments, "records", stats.Records,
		"readings", len(rec.Readings), "model_version", rec.ModelVersion)

	log, err := openLog(dir, fs, m, lg, top, opts.FlushInterval)
	if err != nil {
		return nil, nil, err
	}
	return &Store{dir: dir, fs: fs, ch: ch, kind: kind, m: m,
		reg: opts.Metrics, lg: lg, log: log}, rec, nil
}

// applyRecord folds one replayed record into the recovered state.
func applyRecord(rec *Recovered, payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("empty record")
	}
	switch payload[0] {
	case recAppend:
		// Decode straight into the recovered slice: replay's hot loop
		// costs amortized slice growth only, never a per-record
		// intermediate batch (see BenchmarkReplay's allocs assertion).
		rs, rest, err := core.DecodeReadingsWireInto(rec.Readings, payload[1:])
		if err != nil {
			return err
		}
		if len(rest) != 0 {
			return fmt.Errorf("append record has %d trailing bytes", len(rest))
		}
		rec.Readings = rs
		return nil
	case recRetrain:
		version, trained, err := DecodeRetrainRecord(payload)
		if err != nil {
			return err
		}
		if trained > len(rec.Readings) {
			return fmt.Errorf("retrain record trained on %d of %d readings", trained, len(rec.Readings))
		}
		rec.ModelVersion = version
		rec.TrainedCount = trained
		return nil
	default:
		return fmt.Errorf("unknown record kind %d", payload[0])
	}
}

// DecodeAppendRecord parses a reading-batch record payload (exported for
// the property tests and offline inspection tools).
func DecodeAppendRecord(payload []byte) ([]dataset.Reading, []byte, error) {
	if len(payload) == 0 || payload[0] != recAppend {
		return nil, nil, fmt.Errorf("not an append record")
	}
	return core.DecodeReadingsWire(payload[1:])
}

// DecodeRetrainRecord parses a retrain-marker record payload.
func DecodeRetrainRecord(payload []byte) (version, trainedCount int, err error) {
	if len(payload) != 9 || payload[0] != recRetrain {
		return 0, 0, fmt.Errorf("malformed retrain record (%d bytes)", len(payload))
	}
	return int(binary.LittleEndian.Uint32(payload[1:])), int(binary.LittleEndian.Uint32(payload[5:])), nil
}

// AppendReadings implements core.Journal: it queues an accepted batch for
// the next group commit. Called under the updater's store lock, so the
// journal order is the store order. A wedged log counts the drop instead
// of blocking ingest (waldo_wal_dropped_records_total; alert on
// waldo_wal_failed). The group-commit enqueue (encode + Append,
// including any backpressure wait against a saturated disk) is
// attributed to the request trace in ctx as a wal/append span.
func (s *Store) AppendReadings(ctx context.Context, rs []dataset.Reading) {
	sp := s.reg.StartSpanCtx(ctx, "wal/append")
	sp.SetAttr("store", StoreDirName(s.ch, s.kind))
	s.scratch = append(s.scratch[:0], recAppend)
	s.scratch = core.AppendReadingsWire(s.scratch, rs)
	if err := s.log.Append(s.scratch); err != nil {
		s.m.dropped.Inc()
		sp.Fail(err.Error())
		s.lg.Error(ctx, "wal_record_dropped",
			"store", StoreDirName(s.ch, s.kind), "kind", "append",
			"readings", len(rs), "err", err)
	}
	sp.End()
}

// buildAppendPayload renders a reading-batch record payload.
func buildAppendPayload(rs []dataset.Reading) []byte {
	payload := make([]byte, 1, 1+4+len(rs)*core.ReadingWireSize)
	payload[0] = recAppend
	return core.AppendReadingsWire(payload, rs)
}

// RecordRetrain implements core.Journal: it queues a retrain marker.
func (s *Store) RecordRetrain(ctx context.Context, version, trainedCount int) {
	payload := make([]byte, 9)
	payload[0] = recRetrain
	binary.LittleEndian.PutUint32(payload[1:], uint32(version))
	binary.LittleEndian.PutUint32(payload[5:], uint32(trainedCount))
	if err := s.log.Append(payload); err != nil {
		s.m.dropped.Inc()
		s.lg.Error(ctx, "wal_record_dropped",
			"store", StoreDirName(s.ch, s.kind), "kind", "retrain",
			"version", version, "err", err)
	}
}

// Sync blocks until every queued record is on stable storage.
func (s *Store) Sync() error { return s.log.Sync() }

// BeginCheckpoint rotates the log to a fresh segment and returns its
// epoch. Call it inside core.Updater.Checkpoint, so the state captured
// there aligns exactly with the segment cut: every journaled record
// below the returned epoch is contained in that state.
func (s *Store) BeginCheckpoint() (uint64, error) {
	return s.log.rotate()
}

// CompleteCheckpoint writes the snapshot captured at epoch (atomically:
// temp file, fsync, rename, dir fsync) and deletes the log segments it
// covers. Call it after Checkpoint returns, off the store lock — the
// readings slice is a stable append-only prefix, so concurrent ingest is
// safe while the snapshot writes.
func (s *Store) CompleteCheckpoint(epoch uint64, readings []dataset.Reading, modelVersion, trainedCount int) error {
	err := writeSnapshot(s.dir, s.fs, s.ch, s.kind, snapshotState{
		epoch:        epoch,
		modelVersion: modelVersion,
		trainedCount: trainedCount,
		readings:     readings,
	})
	if err == nil {
		err = s.log.removeBelow(epoch)
	}
	if err != nil {
		s.m.snapshotErrs.Inc()
		s.lg.Error(context.Background(), "wal_snapshot_failed",
			"store", StoreDirName(s.ch, s.kind), "epoch", epoch, "err", err)
		return err
	}
	s.m.snapshots.Inc()
	return nil
}

// Close drains and closes the log. No snapshot is taken: the directory
// stays crash-shaped and OpenStore replays it identically, which is the
// point — a clean shutdown and a kill -9 recover through the same path.
func (s *Store) Close() error { return s.log.Close() }
