package client

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"

	"github.com/wsdetect/waldo/internal/geo"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
)

// recordingProxy forwards to a backend while remembering every request
// URL it saw, so tests can assert what the client put on the wire.
type recordingProxy struct {
	mu      sync.Mutex
	seen    []*url.URL
	backend http.Handler
}

func (p *recordingProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	u := *r.URL
	p.seen = append(p.seen, &u)
	p.mu.Unlock()
	p.backend.ServeHTTP(w, r)
}

func (p *recordingProxy) last(t *testing.T) *url.URL {
	t.Helper()
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.seen) == 0 {
		t.Fatal("proxy saw no requests")
	}
	return p.seen[len(p.seen)-1]
}

// TestResolverSelectsBaseURL: a client with only a resolver follows it
// per request, and an empty resolver answer falls back to baseURL.
func TestResolverSelectsBaseURL(t *testing.T) {
	w := newTestWorld(t, []rfenv.Channel{47})
	proxy := &recordingProxy{backend: w.server.Handler()}
	proxyTS := httptest.NewServer(proxy)
	t.Cleanup(proxyTS.Close)

	target := proxyTS.URL
	var mu sync.Mutex
	c, err := NewWithConfig(w.ts.URL, Config{
		HTTPClient: w.ts.Client(),
		Resolver: func() string {
			mu.Lock()
			defer mu.Unlock()
			return target
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Model(47, sensor.KindRTLSDR); err != nil {
		t.Fatal(err)
	}
	if len(proxy.seen) != 1 {
		t.Fatalf("resolver target saw %d requests, want 1", len(proxy.seen))
	}
	// Point the resolver away ("" → constructor baseURL): the next
	// fresh fetch must bypass the proxy.
	mu.Lock()
	target = ""
	mu.Unlock()
	c.Invalidate(47, sensor.KindRTLSDR)
	if _, _, err := c.Model(47, sensor.KindRTLSDR); err != nil {
		t.Fatal(err)
	}
	if len(proxy.seen) != 1 {
		t.Errorf("fallback fetch still hit the resolver target (%d requests)", len(proxy.seen))
	}
}

// TestResolverOnlyClient: baseURL may be empty when a resolver is given.
func TestResolverOnlyClient(t *testing.T) {
	w := newTestWorld(t, []rfenv.Channel{47})
	c, err := NewWithConfig("", Config{
		HTTPClient: w.ts.Client(),
		Resolver:   func() string { return w.ts.URL },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Model(47, sensor.KindRTLSDR); err != nil {
		t.Fatal(err)
	}
}

// TestLocationHintOnWire: SetLocationHint adds lat/lon to model and
// retrain requests (the gateway's routing inputs), ClearLocationHint
// removes them, and a plain dbserver ignores them — the request still
// succeeds.
func TestLocationHintOnWire(t *testing.T) {
	w := newTestWorld(t, []rfenv.Channel{47})
	proxy := &recordingProxy{backend: w.server.Handler()}
	proxyTS := httptest.NewServer(proxy)
	t.Cleanup(proxyTS.Close)
	c, err := NewWithConfig(proxyTS.URL, Config{HTTPClient: proxyTS.Client()})
	if err != nil {
		t.Fatal(err)
	}

	c.SetLocationHint(geo.Point{Lat: 33.749, Lon: -84.388})
	if _, _, err := c.Model(47, sensor.KindRTLSDR); err != nil {
		t.Fatal(err)
	}
	q := proxy.last(t).Query()
	if q.Get("lat") != "33.749" || q.Get("lon") != "-84.388" {
		t.Errorf("model query = %q, want lat/lon hint", proxy.last(t).RawQuery)
	}
	if err := c.RequestRetrain(47, sensor.KindRTLSDR); err != nil {
		t.Fatal(err)
	}
	if q := proxy.last(t).Query(); q.Get("lat") != "33.749" {
		t.Errorf("retrain query = %q, want lat/lon hint", proxy.last(t).RawQuery)
	}

	c.ClearLocationHint()
	c.Invalidate(47, sensor.KindRTLSDR)
	if _, _, err := c.Model(47, sensor.KindRTLSDR); err != nil {
		t.Fatal(err)
	}
	if q := proxy.last(t).Query(); q.Get("lat") != "" {
		t.Errorf("cleared hint still on the wire: %q", proxy.last(t).RawQuery)
	}
}

// TestCachedClusterVersion: the gateway's cluster-version header rides
// along into the model cache; absent (plain dbserver), it stays "".
func TestCachedClusterVersion(t *testing.T) {
	w := newTestWorld(t, []rfenv.Channel{47})
	const fp = "00c0ffee00c0ffee"
	stamping := http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set(clusterVersionHeader, fp)
		w.server.Handler().ServeHTTP(rw, r)
	})
	ts := httptest.NewServer(stamping)
	t.Cleanup(ts.Close)
	c, err := New(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	if got := c.CachedClusterVersion(47, sensor.KindRTLSDR); got != "" {
		t.Errorf("cluster version before any fetch = %q", got)
	}
	if _, _, err := c.Model(47, sensor.KindRTLSDR); err != nil {
		t.Fatal(err)
	}
	if got := c.CachedClusterVersion(47, sensor.KindRTLSDR); got != fp {
		t.Errorf("cached cluster version = %q, want %q", got, fp)
	}
	// Against the plain (unstamped) dbserver the field stays empty.
	if _, _, err := w.client.Model(47, sensor.KindRTLSDR); err != nil {
		t.Fatal(err)
	}
	if got := w.client.CachedClusterVersion(47, sensor.KindRTLSDR); got != "" {
		t.Errorf("standalone server produced cluster version %q", got)
	}
}
