package e2e

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// CrashConfig shapes a RunCrash scenario.
type CrashConfig struct {
	// DataDir is the durable store directory shared by both server
	// incarnations (required).
	DataDir string
	// AfterCycle is the duty cycle count the first incarnation completes
	// before it is killed; the survivor runs the rest. Must be in
	// [1, Cycles-1] to exercise both sides of the crash.
	AfterCycle int
	// TornTail, when set, appends a partial record frame to every
	// store's newest WAL segment after the kill — the disk image of an
	// append that was in flight (and never acknowledged) when the
	// process died. Recovery must truncate it away.
	TornTail bool
}

// RunCrash executes a harness run with a mid-campaign server crash: the
// first server incarnation bootstraps the database on a durable data
// dir, serves AfterCycle duty cycles, and is killed without any clean
// shutdown (its WAL is flushed first — the durability point; everything
// past it was never acknowledged). A second incarnation recovers from
// disk alone and serves the remaining cycles plus the epilogue.
//
// The returned Result is byte-comparable with Run(cfg) on the same
// Config: recovery rebuilds the store in original order and the model at
// the persisted version, and model rebuilds are deterministic, so the
// decision log, store CSVs, and served versions must all be identical to
// the uninterrupted run. The crash-recovery e2e test asserts exactly
// that.
func RunCrash(cfg Config, crash CrashConfig) (*Result, error) {
	cfg.defaults()
	if crash.DataDir == "" {
		return nil, fmt.Errorf("e2e: RunCrash needs a data dir")
	}
	if crash.AfterCycle < 1 || crash.AfterCycle >= cfg.Cycles {
		return nil, fmt.Errorf("e2e: crash after cycle %d outside (0, %d)", crash.AfterCycle, cfg.Cycles)
	}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.MaxWall)
	defer cancel()

	env, bootstrap, err := buildWorld(cfg)
	if err != nil {
		return nil, err
	}
	var log strings.Builder
	res := &Result{}

	// --- Incarnation A: bootstrap, serve the first cycles, die. ---
	sessA, err := newSession(cfg, env, &log, crash.DataDir)
	if err != nil {
		return nil, err
	}
	if err := sessA.srv.Bootstrap(bootstrap); err != nil {
		sessA.ts.Close()
		return nil, err
	}
	if err := sessA.runCycles(ctx, 0, crash.AfterCycle); err != nil {
		sessA.ts.Close()
		return nil, err
	}
	// The durability point: everything acknowledged so far reaches disk.
	// Past here the process is gone — no Close, no snapshot, the data
	// dir stays exactly as the crash left it.
	if err := sessA.srv.FlushWAL(); err != nil {
		sessA.ts.Close()
		return nil, err
	}
	sessA.ts.Close()
	sessA.addCounters(res)

	if crash.TornTail {
		if err := tearSegmentTails(crash.DataDir); err != nil {
			return nil, err
		}
	}

	// --- Incarnation B: recover from disk, finish the run. ---
	sessB, err := newSession(cfg, env, &log, crash.DataDir)
	if err != nil {
		return nil, fmt.Errorf("e2e: recovery: %w", err)
	}
	defer sessB.ts.Close()
	if err := sessB.runCycles(ctx, crash.AfterCycle, cfg.Cycles); err != nil {
		return nil, err
	}
	versions, err := sessB.epilogue(ctx)
	if err != nil {
		return nil, err
	}
	stores, err := sessB.exportStores()
	if err != nil {
		return nil, err
	}
	sessB.addCounters(res)
	res.DecisionLog = []byte(log.String())
	res.StoreCSV = stores
	res.ModelVersion = versions
	return res, nil
}

// tearSegmentTails appends a short garbage fragment — less than a full
// record header — to the newest WAL segment of every store under
// dataDir, simulating an append torn mid-write by the crash.
func tearSegmentTails(dataDir string) error {
	stores, err := os.ReadDir(dataDir)
	if err != nil {
		return err
	}
	for _, st := range stores {
		if !st.IsDir() {
			continue
		}
		dir := filepath.Join(dataDir, st.Name())
		segs, err := filepath.Glob(filepath.Join(dir, "wal.*.log"))
		if err != nil {
			return err
		}
		if len(segs) == 0 {
			continue
		}
		// Glob sorts lexically and epochs are zero-padded: last is newest.
		f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			return err
		}
		if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
