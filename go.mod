module github.com/wsdetect/waldo

go 1.22
