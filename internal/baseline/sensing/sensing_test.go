package sensing

import (
	"testing"

	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/features"
)

func TestDecide(t *testing.T) {
	d := NewFCC()
	if d.ThresholdDBm != -114 {
		t.Fatalf("FCC threshold = %v", d.ThresholdDBm)
	}
	if d.Decide(-100) != dataset.LabelNotSafe {
		t.Error("−100 ≥ −114 must be NotSafe")
	}
	if d.Decide(-120) != dataset.LabelSafe {
		t.Error("−120 < −114 must be Safe")
	}
	if d.Decide(-114) != dataset.LabelNotSafe {
		t.Error("boundary reading must be NotSafe (inclusive)")
	}
}

func TestDecideAll(t *testing.T) {
	d := &Detector{ThresholdDBm: -84}
	readings := []dataset.Reading{
		{Signal: features.Signal{RSSdBm: -70}},
		{Signal: features.Signal{RSSdBm: -90}},
	}
	labels, err := d.DecideAll(readings)
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] != dataset.LabelNotSafe || labels[1] != dataset.LabelSafe {
		t.Errorf("labels = %v", labels)
	}
	if _, err := d.DecideAll(nil); err == nil {
		t.Error("empty batch must fail")
	}
}

// TestSensingOverprotection: with any realistic low-cost sensor the −114
// dBm rule marks even pure noise-floor readings occupied, reproducing the
// paper's point that sensing-only detection is infeasible on cheap
// hardware.
func TestSensingOverprotection(t *testing.T) {
	d := NewFCC()
	rtlNoiseFloorReading := -88.5 // quiet-channel RSS of the RTL front end
	if d.Decide(rtlNoiseFloorReading) != dataset.LabelNotSafe {
		t.Error("RTL noise floor must trip the −114 rule")
	}
}
