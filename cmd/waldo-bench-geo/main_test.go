package main

import (
	"testing"
	"time"
)

func TestParseTiers(t *testing.T) {
	tiers, err := parseTiers("500=500, 5k=5000", 2*time.Second, 250*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(tiers) != 2 {
		t.Fatalf("got %d tiers, want 2", len(tiers))
	}
	if tiers[0].Name != "500" || tiers[0].Rate != 500 {
		t.Errorf("tier 0 = %+v", tiers[0])
	}
	if tiers[1].Name != "5k" || tiers[1].Rate != 5000 {
		t.Errorf("tier 1 = %+v", tiers[1])
	}
	for _, tier := range tiers {
		if tier.Duration != 2*time.Second || tier.RetrainEvery != 250*time.Millisecond {
			t.Errorf("tier options not threaded through: %+v", tier)
		}
	}
}

func TestParseTiersRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{"", "noequals", "x=", "x=-5", "x=abc"} {
		if _, err := parseTiers(spec, time.Second, 0); err == nil {
			t.Errorf("parseTiers(%q) accepted a bad spec", spec)
		}
	}
}
