package dbserver

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"testing"
	"time"

	"github.com/wsdetect/waldo/internal/core"
)

// postBatch uploads rs as one binary batch frame and returns the response.
func postBatch(t *testing.T, ts *httptest.Server, frame []byte, ciSpan float64) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/upload/batch", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if ciSpan != 0 {
		req.Header.Set(CISpanHeader, strconv.FormatFloat(ciSpan, 'g', -1, 64))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestBatchUpload(t *testing.T) {
	s, ts := bootedServer(t)
	before := s.StoreSize(47, 1)
	rs := synthReadings(128, 47, 7)
	frame, err := core.EncodeBatchFrame(rs)
	if err != nil {
		t.Fatal(err)
	}
	resp := postBatch(t, ts, frame, 0.5)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("batch upload = %s", resp.Status)
	}
	if got := s.StoreSize(47, 1); got != before+128 {
		t.Errorf("store grew %d → %d, want +128", before, got)
	}
	reg := s.Metrics()
	if got := reg.Counter("waldo_dbserver_batch_uploads_total", "").Value(); got != 1 {
		t.Errorf("batch_uploads_total = %d, want 1", got)
	}
	if got := reg.Counter("waldo_dbserver_batch_readings_total", "").Value(); got != 128 {
		t.Errorf("batch_readings_total = %d, want 128", got)
	}
}

// TestBatchUploadMatchesJSON uploads the same readings through both paths
// on two identically-bootstrapped servers and requires identical store
// and model state — the binary path is an encoding, not a semantic fork.
func TestBatchUploadMatchesJSON(t *testing.T) {
	sBin, tsBin := bootedServer(t)
	sJSON, tsJSON := bootedServer(t)
	rs := synthReadings(200, 47, 11)

	frame, err := core.EncodeBatchFrame(rs)
	if err != nil {
		t.Fatal(err)
	}
	if resp := postBatch(t, tsBin, frame, 0.5); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("batch upload = %s", resp.Status)
	}

	up := UploadJSON{CISpanDB: 0.5}
	for _, r := range rs {
		up.Readings = append(up.Readings, FromReading(r))
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(up); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(tsJSON.URL+"/v1/readings", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("json upload = %s", resp.Status)
	}

	for _, ts := range []*httptest.Server{tsBin, tsJSON} {
		r2, err := http.Post(ts.URL+"/v1/retrain?channel=47&sensor=1", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
	}
	if a, b := sBin.StoreSize(47, 1), sJSON.StoreSize(47, 1); a != b {
		t.Fatalf("store sizes diverge: batch %d vs json %d", a, b)
	}
	if a, b := sBin.ModelVersion(47, 1), sJSON.ModelVersion(47, 1); a != b {
		t.Fatalf("model versions diverge: batch %d vs json %d", a, b)
	}
	csvA := exportCSV(t, tsBin, 47, 1)
	csvB := exportCSV(t, tsJSON, 47, 1)
	if csvA != csvB {
		t.Error("exported stores differ between batch and JSON ingestion")
	}
}

func TestBatchUploadRejects(t *testing.T) {
	s, ts := bootedServer(t)
	rs := synthReadings(8, 47, 3)
	frame, err := core.EncodeBatchFrame(rs)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := append([]byte(nil), frame...)
	corrupt[len(corrupt)-1] ^= 0xFF
	if resp := postBatch(t, ts, corrupt, 0); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("corrupt CRC = %s, want 400", resp.Status)
	}

	trailing := append(append([]byte(nil), frame...), 0x00)
	if resp := postBatch(t, ts, trailing, 0); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("trailing bytes = %s, want 400", resp.Status)
	}

	if resp := postBatch(t, ts, nil, 0); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty body = %s, want 400", resp.Status)
	}

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/upload/batch", bytes.NewReader(frame))
	req.Header.Set(CISpanHeader, "not-a-float")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad CI span header = %s, want 400", resp.Status)
	}

	// α′ gate still applies: a huge CI span is a 422, same as JSON.
	if resp := postBatch(t, ts, frame, 50); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("wide CI span = %s, want 422", resp.Status)
	}

	if got := s.Metrics().Counter("waldo_dbserver_batch_rejected_total", "").Value(); got != 5 {
		t.Errorf("batch_rejected_total = %d, want 5", got)
	}
	if got := s.Metrics().Counter("waldo_dbserver_batch_uploads_total", "").Value(); got != 0 {
		t.Errorf("batch_uploads_total = %d, want 0 after rejects", got)
	}
}

func TestBatchUploadBodyCap(t *testing.T) {
	s := New(Config{Constructor: core.ConstructorConfig{Classifier: core.KindNB}, MaxBodyBytes: 256})
	if err := s.Bootstrap(synthReadings(600, 47, 1)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	frame, err := core.EncodeBatchFrame(synthReadings(16, 47, 3)) // >1KB
	if err != nil {
		t.Fatal(err)
	}
	if resp := postBatch(t, ts, frame, 0); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversize batch = %s, want 413", resp.Status)
	}
}

func watchURL(ts *httptest.Server, version int) string {
	return fmt.Sprintf("%s/v1/model/watch?channel=47&sensor=1&version=%d", ts.URL, version)
}

func TestWatchImmediateDelivery(t *testing.T) {
	s, ts := bootedServer(t)
	resp, err := http.Get(watchURL(ts, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch from version 0 = %s, want immediate 200", resp.Status)
	}
	if v := resp.Header.Get("X-Waldo-Model-Version"); v != "1" {
		t.Errorf("delivered version = %q, want 1", v)
	}
	if _, err := core.DecodeModel(resp.Body); err != nil {
		t.Fatalf("delivered model does not decode: %v", err)
	}
	if got := s.Metrics().Counter("waldo_dbserver_watch_total", "", "outcome", "delivered").Value(); got != 1 {
		t.Errorf("watch delivered = %d, want 1", got)
	}
}

// TestWatchDeliversOnRetrain parks a watcher at the current version and
// proves a retrain pushes the new model to it without any client polling.
func TestWatchDeliversOnRetrain(t *testing.T) {
	s, ts := bootedServer(t)
	got := make(chan *http.Response, 1)
	errc := make(chan error, 1)
	go func() {
		resp, err := http.Get(watchURL(ts, 1))
		if err != nil {
			errc <- err
			return
		}
		got <- resp
	}()

	// Wait until the watcher is parked, then trigger the retrain.
	waitForGauge(t, s, "waldo_dbserver_watch_active", 1)
	frame, err := core.EncodeBatchFrame(synthReadings(64, 47, 5))
	if err != nil {
		t.Fatal(err)
	}
	if resp := postBatch(t, ts, frame, 0.5); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("upload = %s", resp.Status)
	}
	rt, err := http.Post(ts.URL+"/v1/retrain?channel=47&sensor=1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	rt.Body.Close()

	select {
	case resp := <-got:
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("pushed watch = %s", resp.Status)
		}
		if v := resp.Header.Get("X-Waldo-Model-Version"); v != "2" {
			t.Errorf("pushed version = %q, want 2", v)
		}
		if _, err := core.DecodeModel(resp.Body); err != nil {
			t.Fatalf("pushed model does not decode: %v", err)
		}
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(10 * time.Second):
		t.Fatal("watch never fired after retrain")
	}
}

func TestWatchTimeout(t *testing.T) {
	s := New(Config{
		Constructor:  core.ConstructorConfig{Classifier: core.KindNB},
		WatchTimeout: 30 * time.Millisecond,
	})
	if err := s.Bootstrap(synthReadings(600, 47, 1)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	resp, err := http.Get(watchURL(ts, 1))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("expired watch = %s, want 304", resp.Status)
	}
	if v := resp.Header.Get("X-Waldo-Model-Version"); v != "1" {
		t.Errorf("304 version header = %q, want 1", v)
	}
	if got := s.Metrics().Counter("waldo_dbserver_watch_total", "", "outcome", "timeout").Value(); got != 1 {
		t.Errorf("watch timeout count = %d, want 1", got)
	}
}

func TestWatchErrors(t *testing.T) {
	_, ts := bootedServer(t)
	cases := map[string]int{
		"/v1/model/watch?channel=47&sensor=1&version=x":  http.StatusBadRequest,
		"/v1/model/watch?channel=47&sensor=1&version=-1": http.StatusBadRequest,
		"/v1/model/watch?channel=xx&sensor=1":            http.StatusBadRequest,
		"/v1/model/watch?channel=30&sensor=1":            http.StatusNotFound,
	}
	for path, want := range cases {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s = %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestWatchCancelReleasesWatcher is the goleak-style leak check: client
// disconnects must unpark the handler goroutine and drop the active
// gauge back to zero, with the process goroutine count returning to its
// pre-watch baseline.
func TestWatchCancelReleasesWatcher(t *testing.T) {
	s, ts := bootedServer(t)
	baseline := runtime.NumGoroutine()

	const n = 8
	cancels := make([]func(), 0, n)
	for i := 0; i < n; i++ {
		req, err := http.NewRequest(http.MethodGet, watchURL(ts, 1), nil)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancels = append(cancels, cancel)
		go http.DefaultClient.Do(req.WithContext(ctx)) //nolint:errcheck // error is the cancellation
	}
	waitForGauge(t, s, "waldo_dbserver_watch_active", n)

	for _, cancel := range cancels {
		cancel()
	}
	waitForGauge(t, s, "waldo_dbserver_watch_active", 0)
	if got := s.Metrics().Counter("waldo_dbserver_watch_total", "", "outcome", "disconnect").Value(); got != n {
		t.Errorf("watch disconnect count = %d, want %d", got, n)
	}

	// Goroutine count settles back to (about) the baseline — parked
	// watchers must not survive their clients. Allow slack for the HTTP
	// server's transient per-connection goroutines winding down.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestWatchManyWatchersOneBump parks several watchers on one store and
// proves a single retrain wakes them all with the same pushed version.
func TestWatchManyWatchersOneBump(t *testing.T) {
	s, ts := bootedServer(t)
	const n = 16
	versions := make(chan string, n)
	for i := 0; i < n; i++ {
		go func() {
			resp, err := http.Get(watchURL(ts, 1))
			if err != nil {
				versions <- "err:" + err.Error()
				return
			}
			defer resp.Body.Close()
			versions <- resp.Header.Get("X-Waldo-Model-Version")
		}()
	}
	waitForGauge(t, s, "waldo_dbserver_watch_active", n)
	frame, err := core.EncodeBatchFrame(synthReadings(32, 47, 9))
	if err != nil {
		t.Fatal(err)
	}
	if resp := postBatch(t, ts, frame, 0.5); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("upload = %s", resp.Status)
	}
	rt, err := http.Post(ts.URL+"/v1/retrain?channel=47&sensor=1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	rt.Body.Close()
	for i := 0; i < n; i++ {
		select {
		case v := <-versions:
			if v != "2" {
				t.Errorf("watcher %d got version %q, want 2", i, v)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("watcher %d never woke", i)
		}
	}
}

// waitForGauge polls a registry gauge until it reaches want.
func waitForGauge(t *testing.T, s *Server, name string, want float64) {
	t.Helper()
	g := s.Metrics().Gauge(name, "")
	deadline := time.Now().Add(5 * time.Second)
	for g.Value() != want {
		if time.Now().After(deadline) {
			t.Fatalf("%s = %v, want %v", name, g.Value(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
