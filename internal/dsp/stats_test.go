package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almostEq(m, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); !almostEq(v, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", v, 32.0/7.0)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of single sample should be NaN")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {75, 40},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); !almostEq(got, tt.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) || !math.IsNaN(Percentile(xs, -1)) || !math.IsNaN(Percentile(xs, 101)) {
		t.Error("invalid percentile inputs should yield NaN")
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 50)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(xs, p)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{7, 15, 36, 39, 40, 41}
	s := Summarize(xs)
	if s.Min != 7 || s.Max != 41 {
		t.Errorf("extrema: %+v", s)
	}
	if !almostEq(s.Median, 37.5, 1e-9) {
		t.Errorf("median = %v, want 37.5", s.Median)
	}
	if s.Q1 > s.Median || s.Median > s.Q3 {
		t.Errorf("quartiles out of order: %+v", s)
	}
	if s.IQR() <= 0 {
		t.Errorf("IQR = %v, want > 0", s.IQR())
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if r := Pearson(xs, ys); !almostEq(r, 1, 1e-12) {
		t.Errorf("perfect positive correlation = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(xs, neg); !almostEq(r, -1, 1e-12) {
		t.Errorf("perfect negative correlation = %v, want -1", r)
	}
	if !math.IsNaN(Pearson(xs, []float64{1, 1, 1, 1, 1})) {
		t.Error("constant series should yield NaN")
	}
	if !math.IsNaN(Pearson(xs, xs[:3])) {
		t.Error("length mismatch should yield NaN")
	}
}

func TestMovingAverage(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	got := MovingAverage(xs, 3)
	want := []float64{1, 1.5, 2, 3, 4}
	for i := range want {
		if !almostEq(got[i], want[i], 1e-12) {
			t.Fatalf("MovingAverage = %v, want %v", got, want)
		}
	}
	// Window 1 is the identity.
	id := MovingAverage(xs, 1)
	for i := range xs {
		if id[i] != xs[i] {
			t.Fatal("window 1 should be identity")
		}
	}
	// Degenerate window is clamped.
	if out := MovingAverage(xs, 0); out[0] != 1 {
		t.Error("window 0 should be clamped to 1")
	}
}

func TestTrimOutliers(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	trimmed := TrimOutliers(xs, 5, 95)
	lo, hi := MinMax(trimmed)
	if lo < Percentile(xs, 5) || hi > Percentile(xs, 95) {
		t.Errorf("trim bounds violated: [%v, %v]", lo, hi)
	}
	if len(trimmed) < 85 || len(trimmed) > 95 {
		t.Errorf("trimmed length = %d, want ~91", len(trimmed))
	}
	if TrimOutliers(nil, 5, 95) != nil {
		t.Error("empty input should return nil")
	}
}

func TestMeanCI(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = 10 + rng.NormFloat64()
	}
	ci := MeanCI(xs, 0.90)
	if ci.Lo >= ci.Hi {
		t.Fatalf("degenerate interval %+v", ci)
	}
	if ci.Mean < 9.8 || ci.Mean > 10.2 {
		t.Errorf("mean = %v, want ~10", ci.Mean)
	}
	// 90% CI for n=1000, σ=1: half-width ≈ 1.645/sqrt(1000) ≈ 0.052.
	if !almostEq(ci.Span(), 2*1.645/math.Sqrt(1000), 0.02) {
		t.Errorf("span = %v, want ~%v", ci.Span(), 2*1.645/math.Sqrt(1000))
	}
	// More samples tighten the interval.
	half := MeanCI(xs[:100], 0.90)
	if half.Span() <= ci.Span() {
		t.Error("CI should shrink with more samples")
	}
	single := MeanCI(xs[:1], 0.90)
	if !math.IsInf(single.Span(), 1) {
		t.Error("single-sample CI should be unbounded")
	}
}

func TestNormalQuantile(t *testing.T) {
	tests := []struct {
		p, want float64
	}{
		{0.5, 0},
		{0.95, 1.6449},
		{0.975, 1.9600},
		{0.05, -1.6449},
		{0.001, -3.0902},
	}
	for _, tt := range tests {
		if got := NormalQuantile(tt.p); !almostEq(got, tt.want, 1e-3) {
			t.Errorf("NormalQuantile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("boundary quantiles should be infinite")
	}
}

func TestNormalQuantileCDFInverse(t *testing.T) {
	for p := 0.01; p < 1; p += 0.01 {
		if got := NormalCDF(NormalQuantile(p)); !almostEq(got, p, 1e-6) {
			t.Fatalf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}
