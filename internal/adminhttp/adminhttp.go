// Package adminhttp assembles the opt-in operator/admin HTTP surface:
// net/http/pprof profiling endpoints next to the same /metrics and
// /debug/traces views the serving mux exposes.
//
// It exists so the pprof handlers are linked only into binaries that ask
// for them (library packages never import net/http/pprof) and are bound
// to a separate listener: the admin mux is meant for a loopback or
// otherwise operator-only address, never the client-facing one, because
// profile endpoints can stall a process for seconds at a time. Handlers
// are registered explicitly on a private mux — nothing touches
// http.DefaultServeMux, so a binary that also uses the default mux
// leaks no profiling surface by accident.
package adminhttp

import (
	"net/http"
	"net/http/pprof"
	"time"

	"github.com/wsdetect/waldo/internal/telemetry"
)

// Handler builds the admin mux for one registry: pprof under
// /debug/pprof/, the Prometheus exposition at /metrics, and the flight
// recorder (when one is attached to the registry) at /debug/traces.
func Handler(reg *telemetry.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("GET /metrics", reg.Handler())
	mux.Handle("GET /debug/traces", reg.FlightRecorder().Handler())
	return mux
}

// Serve starts the admin surface on addr in a background goroutine and
// returns the server for shutdown. An empty addr disables it and
// returns nil — callers gate on their -admin-addr flag being set.
// Listener errors are reported through errf (nil means ignore): the
// admin surface failing to bind must not take down the serving process.
func Serve(addr string, reg *telemetry.Registry, errf func(error)) *http.Server {
	if addr == "" {
		return nil
	}
	srv := &http.Server{
		Addr:              addr,
		Handler:           Handler(reg),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed && errf != nil {
			errf(err)
		}
	}()
	return srv
}
