package core

import (
	"fmt"

	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/dsp"
	"github.com/wsdetect/waldo/internal/geo"
)

// UploadValidator screens crowd-sourced uploads before they reach the
// Global Model Updater. Paper §3.4 points at the approach of Fatemieh et
// al. [26]: correlate a contribution with trusted readings nearby and with
// signal-propagation physics to detect malicious or broken contributors.
//
// The validator implements both checks against the trusted store:
//
//   - neighborhood consistency: an uploaded RSS must agree with the
//     trusted readings within the shadowing-correlation neighborhood, up
//     to a tolerance (log-normal shadowing bounds how different two
//     nearby readings can plausibly be);
//   - isolation: contributions claiming locations with no trusted
//     coverage at all cannot be corroborated and are rejected — a Sybil
//     attacker cannot invent coverage in unmeasured areas.
//
// It is not safe for concurrent use; guard it externally or use one per
// goroutine over a shared store snapshot.
type UploadValidator struct {
	cfg   ValidatorConfig
	index *geo.GridIndex
	store []dataset.Reading
}

// ValidatorConfig parameterizes screening.
type ValidatorConfig struct {
	// NeighborhoodM is the radius within which trusted readings must
	// corroborate an upload. Default 500 m (several shadowing
	// decorrelation lengths).
	NeighborhoodM float64
	// ToleranceDB is the maximum allowed |uploaded − trusted median| RSS
	// gap within the neighborhood. Default 15 dB (≈3σ of urban
	// shadowing plus sensor error).
	ToleranceDB float64
	// MinNeighbors is the number of trusted readings required to
	// corroborate; uploads in unmeasured areas are rejected. Default 3.
	MinNeighbors int
	// MaxSuspectFrac is the fraction of a batch allowed to fail checks
	// before the whole batch is rejected. Default 0.1.
	MaxSuspectFrac float64
}

func (c *ValidatorConfig) defaults() error {
	if c.NeighborhoodM == 0 {
		c.NeighborhoodM = 500
	}
	if c.ToleranceDB == 0 {
		c.ToleranceDB = 15
	}
	if c.MinNeighbors == 0 {
		c.MinNeighbors = 3
	}
	if c.MaxSuspectFrac == 0 {
		c.MaxSuspectFrac = 0.1
	}
	if c.NeighborhoodM < 0 || c.ToleranceDB <= 0 || c.MinNeighbors < 1 ||
		c.MaxSuspectFrac < 0 || c.MaxSuspectFrac > 1 {
		return fmt.Errorf("core: invalid validator config %+v", *c)
	}
	return nil
}

// NewUploadValidator indexes the trusted store (war-driving data or
// previously accepted uploads) for one channel.
func NewUploadValidator(trusted []dataset.Reading, cfg ValidatorConfig) (*UploadValidator, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	if len(trusted) == 0 {
		return nil, fmt.Errorf("core: validator needs a trusted store")
	}
	idx, err := geo.NewGridIndex(trusted[0].Loc, cfg.NeighborhoodM)
	if err != nil {
		return nil, err
	}
	for i := range trusted {
		idx.Insert(i, trusted[i].Loc)
	}
	return &UploadValidator{cfg: cfg, index: idx, store: trusted}, nil
}

// CheckReading screens one uploaded reading. A nil error means the reading
// is corroborated by the trusted store.
func (v *UploadValidator) CheckReading(r dataset.Reading) error {
	var neighbors []float64
	v.index.WithinRadius(r.Loc, v.cfg.NeighborhoodM, func(id int) bool {
		if v.store[id].Channel == r.Channel {
			neighbors = append(neighbors, v.store[id].Signal.RSSdBm)
		}
		return true
	})
	if len(neighbors) < v.cfg.MinNeighbors {
		return fmt.Errorf("core: reading at %v has %d trusted neighbors within %.0f m, need %d",
			r.Loc, len(neighbors), v.cfg.NeighborhoodM, v.cfg.MinNeighbors)
	}
	med := dsp.Median(neighbors)
	if diff := r.Signal.RSSdBm - med; diff > v.cfg.ToleranceDB || diff < -v.cfg.ToleranceDB {
		return fmt.Errorf("core: reading RSS %.1f dBm deviates %.1f dB from the trusted neighborhood median %.1f",
			r.Signal.RSSdBm, diff, med)
	}
	return nil
}

// CheckBatch screens a whole upload. It returns the indices of suspect
// readings; the error is non-nil when the suspect fraction exceeds the
// configured bound (reject the contributor) or the batch is empty.
func (v *UploadValidator) CheckBatch(batch UploadBatch) (suspects []int, err error) {
	if len(batch.Readings) == 0 {
		return nil, fmt.Errorf("core: empty upload")
	}
	for i := range batch.Readings {
		if cerr := v.CheckReading(batch.Readings[i]); cerr != nil {
			suspects = append(suspects, i)
		}
	}
	frac := float64(len(suspects)) / float64(len(batch.Readings))
	if frac > v.cfg.MaxSuspectFrac {
		return suspects, fmt.Errorf("core: %.0f%% of the upload (%d/%d readings) failed corroboration",
			frac*100, len(suspects), len(batch.Readings))
	}
	return suspects, nil
}

// FilterBatch returns a copy of the batch with suspect readings removed,
// or an error when the batch as a whole fails screening.
func (v *UploadValidator) FilterBatch(batch UploadBatch) (UploadBatch, error) {
	suspects, err := v.CheckBatch(batch)
	if err != nil {
		return UploadBatch{}, err
	}
	if len(suspects) == 0 {
		return batch, nil
	}
	bad := make(map[int]bool, len(suspects))
	for _, i := range suspects {
		bad[i] = true
	}
	out := UploadBatch{CISpanDB: batch.CISpanDB}
	for i := range batch.Readings {
		if !bad[i] {
			out.Readings = append(out.Readings, batch.Readings[i])
		}
	}
	return out, nil
}
