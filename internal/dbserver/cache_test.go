package dbserver

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/wsdetect/waldo/internal/core"
)

// metricValue scrapes one sample line out of /metrics exposition text.
func metricValue(t *testing.T, ts *httptest.Server, line string) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(l, line+" ") {
			return strings.TrimPrefix(l, line+" ")
		}
	}
	return ""
}

// TestModelCacheAndConditionalGet walks the fleet-poll lifecycle: first
// download encodes (miss), repeats serve the cached blob (hit), a
// revalidation with the returned ETag answers 304 with no body
// (not_modified), and a retrain invalidates — the old ETag mismatches and
// the next download re-encodes the new version.
func TestModelCacheAndConditionalGet(t *testing.T) {
	_, ts := bootedServer(t)
	url := ts.URL + "/v1/model?channel=47&sensor=1"

	get := func(etag string) *http.Response {
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			t.Fatal(err)
		}
		if etag != "" {
			req.Header.Set("If-None-Match", etag)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// First download: encode + cache fill.
	resp := get("")
	body1, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body1) == 0 {
		t.Fatalf("first download = %s, %d bytes", resp.Status, len(body1))
	}
	etag := resp.Header.Get("ETag")
	if etag == "" || !strings.HasPrefix(etag, `"`) {
		t.Fatalf("ETag = %q, want a strong quoted validator", etag)
	}

	// Second download: cache hit, identical bytes.
	resp = get("")
	body2, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body2) != string(body1) {
		t.Fatal("cached blob differs from first encode")
	}

	// Conditional revalidation: 304, empty body, same validator.
	resp = get(etag)
	notMod, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match revalidation = %s, want 304", resp.Status)
	}
	if len(notMod) != 0 {
		t.Fatalf("304 carried %d body bytes", len(notMod))
	}
	if got := resp.Header.Get("ETag"); got != etag {
		t.Errorf("304 ETag = %q, want %q", got, etag)
	}
	// Weak-comparison and list forms must also match.
	for _, header := range []string{"W/" + etag, `"zzz", ` + etag, "*"} {
		resp = get(header)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotModified {
			t.Errorf("If-None-Match %q = %s, want 304", header, resp.Status)
		}
	}

	const sample = `waldo_dbserver_model_cache_total{outcome=%q}`
	if got := metricValue(t, ts, fmt.Sprintf(sample, "miss")); got != "1" {
		t.Errorf("cache miss count = %s, want 1", got)
	}
	if got := metricValue(t, ts, fmt.Sprintf(sample, "hit")); got != "1" {
		t.Errorf("cache hit count = %s, want 1", got)
	}
	if got := metricValue(t, ts, fmt.Sprintf(sample, "not_modified")); got != "4" {
		t.Errorf("cache not_modified count = %s, want 4", got)
	}

	// Retrain bumps the version: the stale validator no longer matches and
	// the download is a fresh encode with a new ETag.
	post, err := http.Post(ts.URL+"/v1/retrain?channel=47&sensor=1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	resp = get(etag)
	body3, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body3) == 0 {
		t.Fatalf("post-retrain conditional download = %s, %d bytes", resp.Status, len(body3))
	}
	if got := resp.Header.Get("ETag"); got == etag {
		t.Errorf("ETag unchanged across retrain: %q", got)
	}
	if got := metricValue(t, ts, fmt.Sprintf(sample, "miss")); got != "2" {
		t.Errorf("cache miss count after retrain = %s, want 2", got)
	}
}

func TestETagMatches(t *testing.T) {
	const etag = `"47-1-v3"`
	for header, want := range map[string]bool{
		etag:                 true,
		"W/" + etag:          true,
		`"other", ` + etag:   true,
		`"other", W/` + etag: true,
		"*":                  true,
		`"47-1-v2"`:          false,
		"":                   false,
		"47-1-v3":            false, // unquoted is not the same validator
	} {
		if got := etagMatches(header, etag); got != want {
			t.Errorf("etagMatches(%q) = %v, want %v", header, got, want)
		}
	}
}

// BenchmarkModelEndpointCached measures the steady-state fleet-poll cost:
// repeat downloads of an unchanged model (cache hits) and conditional
// revalidations (304, no body).
func BenchmarkModelEndpointCached(b *testing.B) {
	s := New(Config{Constructor: core.ConstructorConfig{Classifier: core.KindNB}})
	if err := s.Bootstrap(synthReadings(600, 47, 1)); err != nil {
		b.Fatal(err)
	}
	h := s.Handler()
	const target = "/v1/model?channel=47&sensor=1"

	// Prime the blob cache.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
	if rec.Code != http.StatusOK {
		b.Fatalf("prime = %d", rec.Code)
	}
	etag := rec.Header().Get("ETag")

	b.Run("full-body", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
			if rec.Code != http.StatusOK {
				b.Fatalf("status = %d", rec.Code)
			}
		}
	})
	b.Run("if-none-match", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest(http.MethodGet, target, nil)
			req.Header.Set("If-None-Match", etag)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusNotModified {
				b.Fatalf("status = %d", rec.Code)
			}
		}
	})
}
