package benchharness

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/wsdetect/waldo/internal/dbserver"
	"github.com/wsdetect/waldo/internal/geo"
	"github.com/wsdetect/waldo/internal/telemetry"
)

// GeoTier is one fixed offered load level against the spatiotemporal
// query surface (GET /v1/availability, POST /v1/route). Its point is
// the tentpole claim of the geo-index design: grid rebuilds happen off
// the request path, so route-query latency must not spike while
// RetrainEvery keeps the rebuild machinery churning.
type GeoTier struct {
	// Name labels the tier in the trajectory (e.g. "geo-1k").
	Name string
	// Rate is the offered route-query rate in queries per second; the
	// availability stream runs at the same rate.
	Rate float64
	// Duration is how long the tier's streams run. 0 means 5s.
	Duration time.Duration
	// RetrainEvery is the watch channel's retrain period; every retrain
	// schedules an availability-grid rebuild on the serving nodes. 0
	// means 500ms; negative means never (the no-churn baseline).
	RetrainEvery time.Duration
	// StepM is the route queries' sampling interval in meters. 0 means
	// 500.
	StepM float64
	// Workers bounds each stream's operation concurrency. 0 means 32.
	Workers int
}

func (t *GeoTier) defaults() {
	if t.Duration <= 0 {
		t.Duration = 5 * time.Second
	}
	if t.RetrainEvery == 0 {
		t.RetrainEvery = 500 * time.Millisecond
	}
	if t.StepM <= 0 {
		t.StepM = 500
	}
	if t.Workers <= 0 {
		t.Workers = 32
	}
}

// geoPayload is one pre-encoded query pair: an availability URL and a
// route request body, both anchored in the bootstrap campaign's
// surveyed area so queries hit populated cells.
type geoPayload struct {
	availURL  string
	routeBody []byte
}

// buildGeoPayloads pre-encodes a pool of availability/route queries:
// look-ahead polylines fanning out from each channel's seed location on
// varied bearings, like a fleet of route planners crossing the metro.
func (h *Harness) buildGeoPayloads(stepM float64) ([]geoPayload, error) {
	const poolSize = 16
	pool := make([]geoPayload, 0, poolSize)
	for i := 0; len(pool) < poolSize; i++ {
		ch := h.cfg.Channels[i%len(h.cfg.Channels)]
		start := h.seedLoc[ch]
		bearing := float64((i * 53) % 360)
		points := []geo.Point{
			start,
			start.Offset(bearing, 2500),
			start.Offset(bearing+30, 5000),
		}
		req := dbserver.RouteRequestJSON{StepM: stepM, HorizonS: 300}
		for _, p := range points {
			req.Points = append(req.Points, dbserver.RoutePointJSON{Lat: p.Lat, Lon: p.Lon})
		}
		body, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		pool = append(pool, geoPayload{
			availURL: fmt.Sprintf("%s/v1/availability?lat=%.6f&lon=%.6f",
				h.BaseURL, start.Lat, start.Lon),
			routeBody: body,
		})
	}
	return pool, nil
}

// gridGeneration sums the availability-grid generation across every
// serving node (one dbserver in single topology, every shard node in
// cluster). The delta across a tier counts rebuilds that actually
// published.
func (h *Harness) gridGeneration() uint64 {
	var gen uint64
	if h.srv != nil {
		gen += h.srv.GeoIndex().Snapshot().Generation
	}
	for _, n := range h.nodes {
		gen += n.DB.GeoIndex().Snapshot().Generation
	}
	return gen
}

// RunGeoTier drives one spatiotemporal query tier: an open-loop route
// stream and an open-loop availability stream, both at tier.Rate, with
// a periodic retrain churning grid rebuilds underneath. Latency is
// measured from each operation's scheduled start; TierResult carries
// the route/availability endpoint distributions, the loops' schedule
// accounting, and the number of grid rebuilds that published during the
// tier.
func (h *Harness) RunGeoTier(ctx context.Context, tier GeoTier) TierResult {
	tier.defaults()
	pool, err := h.buildGeoPayloads(tier.StepM)
	if err != nil {
		return TierResult{Name: tier.Name}
	}

	reg := telemetry.New()
	buckets := telemetry.ExpBuckets(20e-6, math.Pow(10, 0.125), 48)
	track := func(name string) *endpointTrack {
		return &endpointTrack{
			name: name,
			hist: reg.Histogram("bench_e2e_latency_seconds",
				"End-to-end operation latency from scheduled start.", buckets, "endpoint", name),
		}
	}
	avail := track("availability")
	routes := track("route")
	retrain := track("retrain")

	tierCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var lastRetrain atomic.Int64
	var bg sync.WaitGroup
	if tier.RetrainEvery > 0 {
		bg.Add(1)
		go func() {
			defer bg.Done()
			h.runRetrains(tierCtx, tier.RetrainEvery, &lastRetrain, retrain)
		}()
	}

	genBefore := h.gridGeneration()
	before := telemetry.ReadRuntime()
	start := time.Now()

	var availSeq, routeSeq atomic.Uint64
	availOp := func(_ int, scheduled time.Time) {
		p := pool[availSeq.Add(1)%uint64(len(pool))]
		req, err := http.NewRequestWithContext(tierCtx, http.MethodGet, p.availURL, nil)
		if err != nil {
			avail.errs.Add(1)
			return
		}
		resp, err := h.httpc.Do(req)
		if err != nil {
			avail.errs.Add(1)
			return
		}
		drain(resp)
		if resp.StatusCode != http.StatusOK {
			avail.errs.Add(1)
			return
		}
		avail.hist.Observe(time.Since(scheduled).Seconds())
	}
	routeOp := func(_ int, scheduled time.Time) {
		p := pool[routeSeq.Add(1)%uint64(len(pool))]
		req, err := http.NewRequestWithContext(tierCtx, http.MethodPost,
			h.BaseURL+"/v1/route", bytes.NewReader(p.routeBody))
		if err != nil {
			routes.errs.Add(1)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := h.httpc.Do(req)
		if err != nil {
			routes.errs.Add(1)
			return
		}
		drain(resp)
		if resp.StatusCode != http.StatusOK {
			routes.errs.Add(1)
			return
		}
		routes.hist.Observe(time.Since(scheduled).Seconds())
	}

	loopCfg := OpenLoopConfig{Rate: tier.Rate, Workers: tier.Workers, Duration: tier.Duration}
	var loops sync.WaitGroup
	var availStats, routeStats OpenLoopStats
	loops.Add(2)
	go func() {
		defer loops.Done()
		availStats = RunOpenLoop(tierCtx, loopCfg, availOp)
	}()
	go func() {
		defer loops.Done()
		routeStats = RunOpenLoop(tierCtx, loopCfg, routeOp)
	}()
	loops.Wait()
	elapsed := time.Since(start)
	delta := telemetry.ReadRuntime().DeltaSince(before)
	cancel()
	bg.Wait()

	routeLoop := loopStats(loopCfg.Rate, routeStats)
	availLoop := loopStats(loopCfg.Rate, availStats)
	res := TierResult{
		Name:             tier.Name,
		DurationSeconds:  elapsed.Seconds(),
		RouteLoop:        &routeLoop,
		AvailabilityLoop: &availLoop,
		GridRebuilds:     h.gridGeneration() - genBefore,
	}
	for _, tk := range []*endpointTrack{avail, routes, retrain} {
		if ep, ok := tk.result(); ok {
			res.Endpoints = append(res.Endpoints, ep)
		}
	}
	ops := availStats.Completed + routeStats.Completed
	res.GC = GCStats{
		Cycles:           delta.GCCycles,
		PauseCount:       delta.Pauses.Count(),
		PauseP50:         delta.Pauses.Quantile(0.50),
		PauseP95:         delta.Pauses.Quantile(0.95),
		PauseP99:         delta.Pauses.Quantile(0.99),
		PauseP999:        delta.Pauses.Quantile(0.999),
		PauseMax:         delta.Pauses.Max(),
		PauseTotalApprox: delta.Pauses.Sum(),
	}
	if ops > 0 {
		res.GC.AllocBytesPerOp = float64(delta.AllocBytes) / float64(ops)
		res.GC.AllocObjectsPerOp = float64(delta.AllocObjects) / float64(ops)
	}
	return res
}
