// Package geo provides the geodesic primitives used throughout the Waldo
// system: WGS-84 points, great-circle distance, local planar projection,
// bounding boxes, and a spatial grid index for radius queries.
//
// Waldo's protection rule (FCC Algorithm 1) is defined in terms of metric
// distance between measurement locations, so distance computations are the
// hot path of data labeling. All distances are in meters.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusM is the mean Earth radius in meters (IUGG).
const EarthRadiusM = 6371008.8

// Point is a WGS-84 coordinate in decimal degrees.
type Point struct {
	Lat float64
	Lon float64
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.6f, %.6f)", p.Lat, p.Lon)
}

// Valid reports whether the point lies within the WGS-84 coordinate domain.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

// DistanceM returns the great-circle (haversine) distance to q in meters.
func (p Point) DistanceM(q Point) float64 {
	const degToRad = math.Pi / 180
	lat1 := p.Lat * degToRad
	lat2 := q.Lat * degToRad
	dLat := (q.Lat - p.Lat) * degToRad
	dLon := (q.Lon - p.Lon) * degToRad

	sinLat := math.Sin(dLat / 2)
	sinLon := math.Sin(dLon / 2)
	h := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLon*sinLon
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusM * math.Asin(math.Sqrt(h))
}

// BearingDeg returns the initial great-circle bearing from p to q in degrees
// clockwise from true north, in [0, 360).
func (p Point) BearingDeg(q Point) float64 {
	const degToRad = math.Pi / 180
	lat1 := p.Lat * degToRad
	lat2 := q.Lat * degToRad
	dLon := (q.Lon - p.Lon) * degToRad

	y := math.Sin(dLon) * math.Cos(lat2)
	x := math.Cos(lat1)*math.Sin(lat2) - math.Sin(lat1)*math.Cos(lat2)*math.Cos(dLon)
	b := math.Atan2(y, x) / degToRad
	if b < 0 {
		b += 360
	}
	return b
}

// Offset returns the point reached by traveling distM meters from p along
// the given bearing (degrees clockwise from north).
func (p Point) Offset(bearingDeg, distM float64) Point {
	const degToRad = math.Pi / 180
	lat1 := p.Lat * degToRad
	lon1 := p.Lon * degToRad
	brng := bearingDeg * degToRad
	ad := distM / EarthRadiusM

	lat2 := math.Asin(math.Sin(lat1)*math.Cos(ad) + math.Cos(lat1)*math.Sin(ad)*math.Cos(brng))
	lon2 := lon1 + math.Atan2(
		math.Sin(brng)*math.Sin(ad)*math.Cos(lat1),
		math.Cos(ad)-math.Sin(lat1)*math.Sin(lat2),
	)
	// Normalize longitude to [-180, 180).
	lon2 = math.Mod(lon2+3*math.Pi, 2*math.Pi) - math.Pi
	return Point{Lat: lat2 / degToRad, Lon: lon2 / degToRad}
}

// Midpoint returns the great-circle midpoint between p and q.
func (p Point) Midpoint(q Point) Point {
	return p.Offset(p.BearingDeg(q), p.DistanceM(q)/2)
}
