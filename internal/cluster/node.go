package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/wsdetect/waldo/internal/dbserver"
	"github.com/wsdetect/waldo/internal/telemetry"
)

// NodeConfig configures one shard process.
type NodeConfig struct {
	// ID names the shard (matches the gateway's ShardSpec.ID). Used in
	// status output only; routing never depends on it at the node.
	ID string

	// DB is the embedded spectrum DB configuration, passed to
	// dbserver.Open unchanged except for the replication tap. Set DataDir
	// there for WAL durability exactly as on a standalone server.
	DB dbserver.Config

	// ReplicaURLs lists this node's replicas (base URLs). Empty means the
	// node is a replica itself, or an unreplicated primary: either way no
	// shipper runs.
	ReplicaURLs []string

	// ShipInterval is the replication shipping tick. 0 means 3ms — small
	// enough that steady-state lag is a handful of batches.
	ShipInterval time.Duration

	// MaxShipRecords caps journal records per replication exchange.
	// 0 means 256.
	MaxShipRecords int

	// HTTPClient ships replication traffic. nil means a dedicated client
	// with a 10s timeout.
	HTTPClient *http.Client
}

// Node is one shard: the full dbserver API plus the replication surface
// (/v1/repl/apply for its primary's stream, /v1/repl/status for
// operators) and, when it has replicas, a background log shipper.
type Node struct {
	cfg  NodeConfig
	DB   *dbserver.Server
	repl *Replicator // nil when no replicas

	// applyMu serializes replicated-frame application; applied is the
	// contiguous high-water mark of the primary's sequence numbers.
	applyMu      sync.Mutex
	applied      uint64
	appliedTotal *telemetry.Counter

	closeOnce sync.Once
	handler   http.Handler
}

// OpenNode opens the embedded DB (recovering from its data dir like
// dbserver.Open) and starts the replication shipper if replicas are
// configured.
func OpenNode(cfg NodeConfig) (*Node, error) {
	if cfg.ShipInterval <= 0 {
		cfg.ShipInterval = 3 * time.Millisecond
	}
	if cfg.MaxShipRecords <= 0 {
		cfg.MaxShipRecords = 256
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Timeout: 10 * time.Second}
	}
	if cfg.DB.Metrics == nil {
		cfg.DB.Metrics = telemetry.New()
	}
	n := &Node{cfg: cfg}
	n.appliedTotal = cfg.DB.Metrics.Counter("waldo_cluster_replication_applied_total",
		"Replicated journal records applied by this node (replica role).")
	if len(cfg.ReplicaURLs) > 0 {
		n.repl = newReplicator(cfg.ReplicaURLs, cfg.HTTPClient, cfg.ShipInterval,
			cfg.MaxShipRecords, cfg.DB.Metrics)
		if cfg.DB.Tap != nil {
			return nil, fmt.Errorf("cluster: NodeConfig.DB.Tap is owned by the replicator")
		}
		cfg.DB.Tap = n.repl
	}
	db, err := dbserver.Open(cfg.DB)
	if err != nil {
		return nil, err
	}
	n.DB = db
	if n.repl != nil {
		n.repl.start()
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/repl/apply", n.handleApply)
	mux.HandleFunc("GET /v1/repl/status", n.handleStatus)
	mux.Handle("/", db.Handler())
	n.handler = mux
	return n, nil
}

// Handler serves the shard's full HTTP surface.
func (n *Node) Handler() http.Handler { return n.handler }

// ReplicationLag returns the worst-case number of journal records not
// yet confirmed by a replica (0 when the node ships nothing).
func (n *Node) ReplicationLag() int {
	if n.repl == nil {
		return 0
	}
	return int(n.repl.Lag())
}

// Drain blocks until all replicas have confirmed the full journal.
func (n *Node) Drain(ctx context.Context) error {
	if n.repl == nil {
		return nil
	}
	return n.repl.Drain(ctx)
}

// Close stops the shipper (unshipped tail stays in the primary's WAL —
// see DESIGN.md §12 on the failover model) and closes the embedded DB.
// Safe to call more than once: crash harnesses kill nodes mid-run and
// their cleanup paths close everything again.
func (n *Node) Close() error {
	var err error
	n.closeOnce.Do(func() {
		if n.repl != nil {
			n.repl.stop()
		}
		err = n.DB.Close()
	})
	return err
}

// handleApply folds a batch of replication frames from this node's
// primary into the local stores. Frames at or below the applied mark are
// skipped (retry idempotency); a gap above it means the primary and
// replica disagree about history, answered with 409 and the replica's
// mark so the primary can re-ship from there.
func (n *Node) handleApply(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	n.applyMu.Lock()
	defer n.applyMu.Unlock()
	status := http.StatusOK
	var applyErr string
	for len(body) > 0 {
		seq, rec, rest, err := decodeFrame(body)
		if err != nil {
			status, applyErr = http.StatusBadRequest, err.Error()
			break
		}
		body = rest
		if seq <= n.applied {
			continue
		}
		if seq != n.applied+1 {
			status = http.StatusConflict
			applyErr = fmt.Sprintf("sequence gap: applied %d, got %d", n.applied, seq)
			break
		}
		switch rec.kind {
		case frameAppend:
			err = n.DB.ApplyReplicatedReadings(rec.ch, rec.sensor, rec.readings)
		case frameRetrain:
			err = n.DB.ApplyReplicatedRetrain(rec.ch, rec.sensor, rec.version, rec.trained)
		}
		if err != nil {
			status, applyErr = http.StatusInternalServerError, err.Error()
			break
		}
		n.applied = seq
		n.appliedTotal.Inc()
	}
	w.Header().Set("Content-Type", "application/json")
	if status != http.StatusOK {
		w.Header().Set("X-Waldo-Repl-Error", applyErr)
		w.WriteHeader(status)
	}
	json.NewEncoder(w).Encode(applyStatus{Applied: n.applied}) //nolint:errcheck // client went away
}

// nodeStatus is the /v1/repl/status payload.
type nodeStatus struct {
	ID      string `json:"id"`
	Applied uint64 `json:"applied"` // frames folded in as a replica
	Lag     int    `json:"lag"`     // records unconfirmed by own replicas
}

func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	n.applyMu.Lock()
	applied := n.applied
	n.applyMu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(nodeStatus{ //nolint:errcheck // client went away
		ID:      n.cfg.ID,
		Applied: applied,
		Lag:     n.ReplicationLag(),
	})
}
