// Package dsp implements the signal-processing primitives the Waldo
// pipeline needs: a radix-2 FFT, window functions, summary statistics,
// percentile and confidence-interval machinery, empirical CDFs, and the
// special functions backing ANOVA p-values.
//
// Everything is deterministic and allocation-conscious: feature extraction
// runs once per I/Q capture on the mobile white-space device, so the FFT and
// statistics here are the per-reading hot path (paper §5 measures this cost
// as CPU overhead).
package dsp

import (
	"fmt"
	"math"
	"math/bits"
)

// FFT computes the in-place radix-2 decimation-in-time FFT of x.
// len(x) must be a power of two. The transform is unnormalized
// (X[k] = Σ x[n]·e^{-2πi kn/N}).
func FFT(x []complex128) error {
	return fft(x, false)
}

// IFFT computes the in-place inverse FFT of x, normalized by 1/N so that
// IFFT(FFT(x)) == x. len(x) must be a power of two.
func IFFT(x []complex128) error {
	if err := fft(x, true); err != nil {
		return err
	}
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
	return nil
}

func fft(x []complex128, inverse bool) error {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) != 0 {
		return fmt.Errorf("dsp: FFT length %d is not a power of two", n)
	}

	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}

	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		ang := sign * 2 * math.Pi / float64(size)
		wStep := complex(math.Cos(ang), math.Sin(ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := start; k < start+half; k++ {
				u := x[k]
				v := x[k+half] * w
				x[k] = u + v
				x[k+half] = u - v
				w *= wStep
			}
		}
	}
	return nil
}

// PowerSpectrum returns the per-bin power |X[k]|²/N² of the FFT of x,
// leaving x untouched. Bins are returned in standard FFT order (DC first).
func PowerSpectrum(x []complex128) ([]float64, error) {
	buf := make([]complex128, len(x))
	copy(buf, x)
	if err := FFT(buf); err != nil {
		return nil, err
	}
	n := float64(len(x))
	ps := make([]float64, len(buf))
	for i, c := range buf {
		re, im := real(c), imag(c)
		ps[i] = (re*re + im*im) / (n * n)
	}
	return ps, nil
}

// FFTShift reorders a spectrum so that DC sits at the center bin, the usual
// presentation for baseband captures where the channel center (and the ATSC
// pilot offset) is referenced to the middle of the band.
func FFTShift(ps []float64) []float64 {
	n := len(ps)
	out := make([]float64, n)
	half := (n + 1) / 2
	copy(out, ps[half:])
	copy(out[n-half:], ps[:half])
	return out
}
