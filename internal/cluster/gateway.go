package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/wsdetect/waldo/internal/dbserver"
	"github.com/wsdetect/waldo/internal/geo"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/telemetry"
)

// ClusterVersionHeader carries the gateway's routing-configuration
// fingerprint (see ConfigVersion) on every proxied response. Clients
// cache it next to model descriptors to notice a re-ringed cluster.
const ClusterVersionHeader = "X-Waldo-Cluster-Version"

// ShardSpec names one shard and its endpoints, primary first, replicas
// after. The gateway sends traffic to the first endpoint it believes is
// alive, in list order.
type ShardSpec struct {
	ID   string
	URLs []string
}

// GatewayConfig configures the client-facing routing tier.
type GatewayConfig struct {
	// Shards is the cluster membership. Ring placement is keyed by
	// ShardSpec.ID, so IDs — not URLs — decide data ownership, and an
	// endpoint can move without migrating data.
	Shards []ShardSpec

	// Ring parameterizes placement. Every gateway for a cluster must use
	// the same RingConfig or they will disagree about ownership.
	Ring RingConfig

	// CellDeg is the geo-cell quantum for routing. 0 means DefaultCellDeg.
	CellDeg float64

	// HTTPClient carries gateway→shard traffic. nil means a dedicated
	// keep-alive client with a 10s timeout.
	HTTPClient *http.Client

	// Metrics receives the waldo_cluster_* gateway series. nil means a
	// private registry.
	Metrics *telemetry.Registry

	// ProbeInterval enables a background health prober that advances a
	// shard's active endpoint when it stops answering, so failover does
	// not wait for live traffic to trip over the corpse. 0 disables it;
	// per-request failover still applies.
	ProbeInterval time.Duration

	// MaxBodyBytes caps buffered upload bodies. 0 means 8 MiB.
	MaxBodyBytes int64
}

// shardState is one shard's routing state: its spec plus the index of
// the endpoint currently receiving traffic. Failover is sticky — the
// active index only ever advances (mod len) when the current endpoint
// fails, never snaps back on its own — so a flapping primary cannot
// ping-pong writes between endpoints.
type shardState struct {
	spec ShardSpec

	mu     sync.Mutex
	active int

	requests *telemetry.Counter
	errs     *telemetry.Counter
}

// currentURL returns the endpoint receiving this shard's traffic.
func (s *shardState) currentURL() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spec.URLs[s.active]
}

// markFailed advances past url if it is still the active endpoint
// (concurrent failures of the same endpoint coalesce to one advance).
// Reports whether it advanced.
func (s *shardState) markFailed(url string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.spec.URLs[s.active] != url {
		return false
	}
	s.active = (s.active + 1) % len(s.spec.URLs)
	return true
}

// Gateway terminates the WSD client API and routes every request to the
// shard owning its (channel, geo-cell) key, failing over to replicas
// when a primary stops answering. Cross-shard reads (/v1/stats) and
// cluster-wide commands (hintless /v1/retrain, /v1/admin/snapshot) fan
// out to every shard and merge.
type Gateway struct {
	cfg     GatewayConfig
	ring    *Ring
	shards  map[string]*shardState
	version string
	httpc   *http.Client

	metrics   *telemetry.Registry
	failovers *telemetry.Counter

	handler http.Handler
	stopc   chan struct{}
	wg      sync.WaitGroup
}

// NewGateway validates the topology, builds the ring, and starts the
// optional health prober. Call Close to stop it.
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: gateway needs at least one shard")
	}
	if cfg.CellDeg <= 0 {
		cfg.CellDeg = DefaultCellDeg
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Timeout: 10 * time.Second}
	}
	if cfg.Metrics == nil {
		cfg.Metrics = telemetry.New()
	}
	ids := make([]string, 0, len(cfg.Shards))
	shards := make(map[string]*shardState, len(cfg.Shards))
	for _, spec := range cfg.Shards {
		if spec.ID == "" || len(spec.URLs) == 0 {
			return nil, fmt.Errorf("cluster: shard spec needs an ID and at least one URL")
		}
		if _, dup := shards[spec.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate shard ID %q", spec.ID)
		}
		ids = append(ids, spec.ID)
		shards[spec.ID] = &shardState{
			spec: spec,
			requests: cfg.Metrics.Counter("waldo_cluster_requests_total",
				"Client requests routed to this shard (fan-out legs count once per shard).",
				"shard", spec.ID),
			errs: cfg.Metrics.Counter("waldo_cluster_proxy_errors_total",
				"Transport-level failures talking to this shard's endpoints.", "shard", spec.ID),
		}
	}
	ring, err := NewRing(cfg.Ring, ids)
	if err != nil {
		return nil, err
	}
	g := &Gateway{
		cfg:     cfg,
		ring:    ring,
		shards:  shards,
		version: ConfigVersion(cfg.Ring.Seed, ring.VNodes(), cfg.CellDeg, cfg.Shards),
		httpc:   cfg.HTTPClient,
		metrics: cfg.Metrics,
		failovers: cfg.Metrics.Counter("waldo_cluster_failover_total",
			"Times the gateway advanced a shard's active endpoint after failures."),
		stopc: make(chan struct{}),
	}
	cfg.Metrics.Gauge("waldo_cluster_ring_nodes",
		"Shards on the consistent-hash ring.").Set(float64(len(ids)))
	cfg.Metrics.Gauge("waldo_cluster_ring_vnodes",
		"Virtual nodes per shard on the ring.").Set(float64(ring.VNodes()))
	g.handler = g.buildHandler()
	if cfg.ProbeInterval > 0 {
		g.wg.Add(1)
		go g.probeLoop()
	}
	return g, nil
}

// Close stops the background prober (if any).
func (g *Gateway) Close() error {
	close(g.stopc)
	g.wg.Wait()
	return nil
}

// ConfigVersion returns the routing-configuration fingerprint stamped on
// proxied responses.
func (g *Gateway) ConfigVersion() string { return g.version }

// Ring exposes the placement ring (for tests and operator tooling).
func (g *Gateway) Ring() *Ring { return g.ring }

// Failovers reports how many times the gateway advanced a shard's active
// endpoint away from a failed one.
func (g *Gateway) Failovers() uint64 { return g.failovers.Value() }

// Handler serves the gateway HTTP surface.
func (g *Gateway) Handler() http.Handler { return g.handler }

func (g *Gateway) buildHandler() http.Handler {
	m := g.metrics
	mux := http.NewServeMux()
	route := func(pattern, label string, h http.HandlerFunc) {
		mux.Handle(pattern, m.WrapRoute(label, h))
	}
	route("GET /v1/health", "/v1/health", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	route("GET /healthz", "/healthz", g.handleHealthz)
	route("GET /v1/model", "/v1/model", g.handleKeyed)
	route("GET /v1/export", "/v1/export", g.handleKeyed)
	route("POST /v1/readings", "/v1/readings", g.handleReadings)
	route("POST /v1/retrain", "/v1/retrain", g.handleRetrain)
	route("GET /v1/stats", "/v1/stats", g.handleStats)
	route("POST /v1/admin/snapshot", "/v1/admin/snapshot", g.handleBroadcastAdmin)
	mux.Handle("GET /metrics", m.Handler())
	return mux
}

// routeKey derives the placement key from a request's channel and
// optional lat/lon routing hints. Requests without a location hint fall
// into the channel's origin cell — legal, but they only see that one
// shard's slice of the channel, so clients that care attach hints (see
// client.SetLocationHint).
func (g *Gateway) routeKey(q map[string][]string) (RouteKey, error) {
	get := func(k string) string {
		if v := q[k]; len(v) > 0 {
			return v[0]
		}
		return ""
	}
	ch, err := strconv.Atoi(get("channel"))
	if err != nil {
		return RouteKey{}, fmt.Errorf("bad channel: %q", get("channel"))
	}
	key := RouteKey{Channel: rfenv.Channel(ch)}
	if latS, lonS := get("lat"), get("lon"); latS != "" || lonS != "" {
		lat, errLat := strconv.ParseFloat(latS, 64)
		lon, errLon := strconv.ParseFloat(lonS, 64)
		if errLat != nil || errLon != nil {
			return RouteKey{}, fmt.Errorf("bad lat/lon hint: %q,%q", latS, lonS)
		}
		key.Cell = CellOf(geo.Point{Lat: lat, Lon: lon}, g.cfg.CellDeg)
	}
	return key, nil
}

// shardFor returns the owning shard's state.
func (g *Gateway) shardFor(key RouteKey) *shardState {
	return g.shards[g.ring.Owner(key)]
}

// handleKeyed proxies a single-key GET (model, export) to the owning
// shard.
func (g *Gateway) handleKeyed(w http.ResponseWriter, r *http.Request) {
	key, err := g.routeKey(r.URL.Query())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	g.forward(w, r, g.shardFor(key), nil)
}

// handleReadings routes an upload by peeking at the first reading's
// channel and location, then forwards the raw body untouched. Only
// readings[0] is decoded: the dbserver already rejects mixed-key
// batches, so the first reading determines the whole batch's shard.
func (g *Gateway) handleReadings(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	first, err := peekFirstReading(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	key := RouteKey{
		Channel: rfenv.Channel(first.Channel),
		Cell:    CellOf(geo.Point{Lat: first.Lat, Lon: first.Lon}, g.cfg.CellDeg),
	}
	g.forward(w, r, g.shardFor(key), body)
}

// peekReading is the slice of an uploaded reading the router cares about.
type peekReading struct {
	Channel int     `json:"channel"`
	Lat     float64 `json:"lat"`
	Lon     float64 `json:"lon"`
}

// peekFirstReading streams JSON tokens just far enough to pull readings[0]
// out of an upload body, without materializing the rest of the batch.
func peekFirstReading(body []byte) (peekReading, error) {
	var first peekReading
	dec := json.NewDecoder(bytes.NewReader(body))
	if tok, err := dec.Token(); err != nil || tok != json.Delim('{') {
		return first, errors.New("upload is not a JSON object")
	}
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return first, err
		}
		if key, _ := keyTok.(string); key == "readings" {
			if tok, err := dec.Token(); err != nil || tok != json.Delim('[') {
				return first, errors.New("readings is not an array")
			}
			if !dec.More() {
				return first, errors.New("upload holds no readings")
			}
			if err := dec.Decode(&first); err != nil {
				return first, fmt.Errorf("bad reading: %w", err)
			}
			return first, nil
		}
		var skip json.RawMessage
		if err := dec.Decode(&skip); err != nil {
			return first, err
		}
	}
	return first, errors.New("upload holds no readings")
}

// handleRetrain routes to one shard when the request carries a location
// hint; without one it broadcasts, because the channel's readings are
// spread across the ring and "retrain channel N" means everywhere.
func (g *Gateway) handleRetrain(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if len(q["lat"]) > 0 || len(q["lon"]) > 0 {
		key, err := g.routeKey(q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		g.forward(w, r, g.shardFor(key), nil)
		return
	}
	// Broadcast: a shard with no data for this channel answers 404, which
	// is a normal outcome of partitioning, not a fan-out failure.
	results := g.fanout(r, nil)
	ok := 0
	for _, res := range results {
		if res.Status/100 == 2 {
			ok++
		} else if res.Status != http.StatusNotFound {
			ok = -len(results) // force failure below
		}
	}
	w.Header().Set(ClusterVersionHeader, g.version)
	w.Header().Set("Content-Type", "application/json")
	if ok <= 0 {
		w.WriteHeader(http.StatusBadGateway)
	}
	json.NewEncoder(w).Encode(results) //nolint:errcheck // client went away
}

// handleBroadcastAdmin fans an admin command (snapshot) to every shard.
func (g *Gateway) handleBroadcastAdmin(w http.ResponseWriter, r *http.Request) {
	results := g.fanout(r, nil)
	allOK := true
	for _, res := range results {
		if res.Status/100 != 2 {
			allOK = false
		}
	}
	w.Header().Set(ClusterVersionHeader, g.version)
	w.Header().Set("Content-Type", "application/json")
	if !allOK {
		w.WriteHeader(http.StatusBadGateway)
	}
	json.NewEncoder(w).Encode(results) //nolint:errcheck // client went away
}

// handleStats fans /v1/stats to every shard and merges the per-store
// entries: reading counts and model bytes sum across shards, the model
// version reported is the maximum (shards train independently, so
// versions are per-shard; the max is the freshest anywhere).
func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	results := g.fanout(r, nil)
	type statKey struct{ ch, sensor int }
	merged := make(map[statKey]*dbserver.StatsJSON)
	for _, res := range results {
		if res.Status/100 != 2 {
			http.Error(w, fmt.Sprintf("shard %s: status %d", res.Shard, res.Status), http.StatusBadGateway)
			return
		}
		var entries []dbserver.StatsJSON
		if err := json.Unmarshal(res.Body, &entries); err != nil {
			http.Error(w, fmt.Sprintf("shard %s: %v", res.Shard, err), http.StatusBadGateway)
			return
		}
		for _, e := range entries {
			k := statKey{e.Channel, e.Sensor}
			m := merged[k]
			if m == nil {
				e := e
				merged[k] = &e
				continue
			}
			m.Readings += e.Readings
			m.ModelBytes += e.ModelBytes
			if e.ModelVersion > m.ModelVersion {
				m.ModelVersion = e.ModelVersion
			}
		}
	}
	keys := make([]statKey, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].ch != keys[j].ch {
			return keys[i].ch < keys[j].ch
		}
		return keys[i].sensor < keys[j].sensor
	})
	out := make([]dbserver.StatsJSON, 0, len(keys))
	for _, k := range keys {
		out = append(out, *merged[k])
	}
	w.Header().Set(ClusterVersionHeader, g.version)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out) //nolint:errcheck // client went away
}

// FanoutResult is one shard's leg of a broadcast, as reported to the
// client.
type FanoutResult struct {
	Shard  string          `json:"shard"`
	Status int             `json:"status"`
	Body   json.RawMessage `json:"body,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// fanout sends the request to every shard in parallel (with the same
// per-shard failover as single-key routing) and collects the legs in
// shard-ID order.
func (g *Gateway) fanout(r *http.Request, body []byte) []FanoutResult {
	ids := g.ring.Nodes()
	results := make([]FanoutResult, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, sh *shardState) {
			defer wg.Done()
			results[i] = g.tryShard(r, sh, body)
		}(i, g.shards[id])
	}
	wg.Wait()
	return results
}

// tryShard runs one shard leg of a fan-out, with endpoint failover, and
// buffers the response.
func (g *Gateway) tryShard(r *http.Request, sh *shardState, body []byte) FanoutResult {
	sh.requests.Inc()
	res := FanoutResult{Shard: sh.spec.ID}
	for attempt := 0; attempt < len(sh.spec.URLs); attempt++ {
		url := sh.currentURL()
		resp, err := g.shardDo(r, url, body)
		if err != nil {
			sh.errs.Inc()
			res.Error = err.Error()
			if sh.markFailed(url) {
				g.failovers.Inc()
			}
			continue
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, g.cfg.MaxBodyBytes))
		resp.Body.Close()
		if err != nil {
			sh.errs.Inc()
			res.Error = err.Error()
			if sh.markFailed(url) {
				g.failovers.Inc()
			}
			continue
		}
		res.Status = resp.StatusCode
		res.Error = ""
		if json.Valid(data) {
			res.Body = data
		} else if len(data) > 0 {
			quoted, _ := json.Marshal(string(data))
			res.Body = quoted
		}
		return res
	}
	res.Status = http.StatusBadGateway
	return res
}

// shardDo issues the proxied request to one endpoint.
func (g *Gateway) shardDo(r *http.Request, url string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url+r.URL.Path, rd)
	if err != nil {
		return nil, err
	}
	req.URL.RawQuery = r.URL.RawQuery
	for _, h := range []string{"Content-Type", "If-None-Match", "Accept"} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	return g.httpc.Do(req)
}

// forward proxies a single-key request to a shard, streaming the
// response through. On a transport failure it advances the shard's
// active endpoint and retries the next one in the same request, so a
// client upload racing a primary kill lands on the replica instead of
// erroring — the zero-lost-acks path the chaos harness exercises.
func (g *Gateway) forward(w http.ResponseWriter, r *http.Request, sh *shardState, body []byte) {
	sh.requests.Inc()
	if body == nil && r.Method != http.MethodGet && r.Method != http.MethodHead && r.Body != nil {
		// Buffer mutation bodies so a failover retry can resend them.
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
		if err != nil {
			http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
			return
		}
		body = data
	}
	var lastErr error
	for attempt := 0; attempt < len(sh.spec.URLs); attempt++ {
		url := sh.currentURL()
		resp, err := g.shardDo(r, url, body)
		if err != nil {
			sh.errs.Inc()
			lastErr = err
			if sh.markFailed(url) {
				g.failovers.Inc()
			}
			continue
		}
		defer resp.Body.Close()
		for _, h := range []string{"Content-Type", "ETag", "X-Waldo-Model-Version", "Retry-After"} {
			if v := resp.Header.Get(h); v != "" {
				w.Header().Set(h, v)
			}
		}
		w.Header().Set(ClusterVersionHeader, g.version)
		w.Header().Set("X-Waldo-Shard", sh.spec.ID)
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body) //nolint:errcheck // client went away
		return
	}
	w.Header().Set(ClusterVersionHeader, g.version)
	http.Error(w, fmt.Sprintf("shard %s unavailable: %v", sh.spec.ID, lastErr), http.StatusBadGateway)
}

// healthzShard is one shard's row in the gateway's /healthz payload.
type healthzShard struct {
	ID     string   `json:"id"`
	URLs   []string `json:"urls"`
	Active string   `json:"active"`
}

// handleHealthz reports the gateway's own topology view: ring shape,
// config version, and which endpoint each shard's traffic currently
// targets — the first place to look when failover fired.
func (g *Gateway) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	ids := g.ring.Nodes()
	out := struct {
		ClusterVersion string         `json:"cluster_version"`
		RingNodes      int            `json:"ring_nodes"`
		RingVNodes     int            `json:"ring_vnodes"`
		CellDeg        float64        `json:"cell_deg"`
		Shards         []healthzShard `json:"shards"`
	}{
		ClusterVersion: g.version,
		RingNodes:      len(ids),
		RingVNodes:     g.ring.VNodes(),
		CellDeg:        g.cfg.CellDeg,
	}
	for _, id := range ids {
		sh := g.shards[id]
		out.Shards = append(out.Shards, healthzShard{
			ID:     id,
			URLs:   sh.spec.URLs,
			Active: sh.currentURL(),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out) //nolint:errcheck // client went away
}

// probeLoop periodically hits each shard's active endpoint's health
// probe and advances past endpoints that stop answering, so failover
// happens even on an idle gateway.
func (g *Gateway) probeLoop() {
	defer g.wg.Done()
	t := time.NewTicker(g.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-g.stopc:
			return
		case <-t.C:
			for _, id := range g.ring.Nodes() {
				sh := g.shards[id]
				url := sh.currentURL()
				resp, err := g.httpc.Get(url + "/v1/health")
				if err != nil {
					sh.errs.Inc()
					if sh.markFailed(url) {
						g.failovers.Inc()
					}
					continue
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck // drained for keep-alive
				resp.Body.Close()
			}
		}
	}
}
