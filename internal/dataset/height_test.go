package dataset

import (
	"bytes"
	"math"
	"testing"

	"github.com/wsdetect/waldo/internal/rfenv"
)

func TestAntennaHeightDefault(t *testing.T) {
	r := mkReading(0, testOrigin, -90)
	if h := r.AntennaHeightM(); h != DefaultAntennaHeightM {
		t.Errorf("default height = %v", h)
	}
	r.AltM = 30
	if h := r.AntennaHeightM(); h != 30 {
		t.Errorf("explicit height = %v", h)
	}
	r.AltM = -5
	if h := r.AntennaHeightM(); h != DefaultAntennaHeightM {
		t.Errorf("negative height should fall back: %v", h)
	}
}

// TestHeightNormalizationReconcilesFloors is the §6 scenario: two
// measurements of the same TV field, one at street level and one on a
// tenth floor. The elevated reading is stronger by Hata's height gain; raw
// labeling flags it hot while the street reading stays cold. With
// NormalizeHeight both agree.
func TestHeightNormalizationReconcilesFloors(t *testing.T) {
	const fieldAt10m = -82.0 // regulatory-height field: decodable
	gain := rfenv.MobileAntennaCorrectionDB(10) - rfenv.MobileAntennaCorrectionDB(2)
	street := mkReading(0, testOrigin, fieldAt10m-gain) // what a 2 m antenna sees
	street.AltM = 2
	tower := mkReading(1, testOrigin.Offset(0, 100000), fieldAt10m) // 10 m antenna, far away
	tower.AltM = 10

	// Raw labeling: the street reading (−89.4) looks Safe, the elevated
	// one (−82) looks NotSafe — same field, contradictory labels.
	raw, err := LabelReadings([]Reading{street, tower}, LabelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if raw[0] != LabelSafe || raw[1] != LabelNotSafe {
		t.Fatalf("raw labels = %v, expected the height contradiction", raw)
	}

	// Height-normalized labeling maps both to the 10 m reference: both
	// read ≈−82 → both NotSafe.
	norm, err := LabelReadings([]Reading{street, tower}, LabelConfig{NormalizeHeight: true})
	if err != nil {
		t.Fatal(err)
	}
	if norm[0] != LabelNotSafe || norm[1] != LabelNotSafe {
		t.Errorf("normalized labels = %v, want both not-safe", norm)
	}
}

func TestEffectiveRSSComposition(t *testing.T) {
	cfg := LabelConfig{CorrectionDB: 3, NormalizeHeight: true}.withDefaults()
	r := mkReading(0, testOrigin, -90)
	r.AltM = 10 // already at reference: normalization adds nothing
	got := cfg.effectiveRSS(&r)
	if math.Abs(got-(-87)) > 1e-9 {
		t.Errorf("effective RSS = %v, want −87 (correction only)", got)
	}
	r.AltM = 2
	got = cfg.effectiveRSS(&r)
	want := -87 + rfenv.MobileAntennaCorrectionDB(10) - rfenv.MobileAntennaCorrectionDB(2)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("effective RSS = %v, want %v", got, want)
	}
}

func TestCSVCarriesAltitude(t *testing.T) {
	r := mkReading(0, testOrigin, -90)
	r.AltM = 27.5
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []Reading{r}); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back[0].AltM != 27.5 {
		t.Errorf("alt round trip = %v", back[0].AltM)
	}
}
