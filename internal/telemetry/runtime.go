package telemetry

import (
	"math"
	"runtime"
	"runtime/metrics"
)

// Runtime capture: the e2e latency harness (internal/benchharness) needs
// the GC-pause distribution and allocation counters over a bounded load
// window, not since process start. RuntimeSnapshot reads the runtime's
// own cumulative counters via runtime/metrics (cheap: no stop-the-world,
// unlike runtime.ReadMemStats), and DeltaSince subtracts two snapshots
// into a window-scoped view with quantile accessors over the GC pause
// histogram. That is what lets a load tier report "p99 GC pause while
// serving 50k readings/s" instead of a lifetime blur.

// Sample names read by RuntimeSnapshot. /gc/pauses:seconds is the
// distribution of individual stop-the-world pause latencies, exactly the
// series a latency SLO cares about.
const (
	samplePauses       = "/gc/pauses:seconds"
	sampleGCCycles     = "/gc/cycles/total:gc-cycles"
	sampleAllocBytes   = "/gc/heap/allocs:bytes"
	sampleAllocObjects = "/gc/heap/allocs:objects"
)

// RuntimeSnapshot is a point-in-time copy of the process's cumulative GC
// and allocation counters.
type RuntimeSnapshot struct {
	// PauseBuckets/PauseCounts mirror the runtime's cumulative
	// Float64Histogram of stop-the-world pause durations:
	// len(PauseBuckets) == len(PauseCounts)+1, PauseCounts[i] counting
	// pauses in (PauseBuckets[i], PauseBuckets[i+1]]. The boundary slices
	// may include ±Inf at the ends.
	PauseBuckets []float64
	PauseCounts  []uint64
	// GCCycles is the completed GC cycle count.
	GCCycles uint64
	// AllocBytes / AllocObjects are the cumulative heap allocation
	// totals.
	AllocBytes   uint64
	AllocObjects uint64
	// Goroutines is the live goroutine count at snapshot time (a level,
	// not a counter; DeltaSince keeps the newer value).
	Goroutines int
}

// ReadRuntime captures the current runtime counters.
func ReadRuntime() RuntimeSnapshot {
	samples := []metrics.Sample{
		{Name: samplePauses},
		{Name: sampleGCCycles},
		{Name: sampleAllocBytes},
		{Name: sampleAllocObjects},
	}
	metrics.Read(samples)
	var s RuntimeSnapshot
	if h := samples[0].Value; h.Kind() == metrics.KindFloat64Histogram {
		fh := h.Float64Histogram()
		s.PauseBuckets = append([]float64(nil), fh.Buckets...)
		s.PauseCounts = append([]uint64(nil), fh.Counts...)
	}
	if v := samples[1].Value; v.Kind() == metrics.KindUint64 {
		s.GCCycles = v.Uint64()
	}
	if v := samples[2].Value; v.Kind() == metrics.KindUint64 {
		s.AllocBytes = v.Uint64()
	}
	if v := samples[3].Value; v.Kind() == metrics.KindUint64 {
		s.AllocObjects = v.Uint64()
	}
	s.Goroutines = runtime.NumGoroutine()
	return s
}

// RuntimeDelta is the runtime activity between two snapshots.
type RuntimeDelta struct {
	// Pauses is the GC pause distribution within the window.
	Pauses PauseHistogram
	// GCCycles, AllocBytes, AllocObjects are window totals.
	GCCycles     uint64
	AllocBytes   uint64
	AllocObjects uint64
	// Goroutines is the level at the end of the window.
	Goroutines int
}

// DeltaSince returns the runtime activity since prev. The runtime's
// pause bucket layout is fixed for the life of the process; if it ever
// differs between the snapshots (e.g. a zero-value prev), the newer
// histogram is returned whole.
func (s RuntimeSnapshot) DeltaSince(prev RuntimeSnapshot) RuntimeDelta {
	d := RuntimeDelta{
		GCCycles:     s.GCCycles - prev.GCCycles,
		AllocBytes:   s.AllocBytes - prev.AllocBytes,
		AllocObjects: s.AllocObjects - prev.AllocObjects,
		Goroutines:   s.Goroutines,
	}
	d.Pauses.Buckets = s.PauseBuckets
	d.Pauses.Counts = append([]uint64(nil), s.PauseCounts...)
	if len(prev.PauseCounts) == len(s.PauseCounts) && len(prev.PauseBuckets) == len(s.PauseBuckets) {
		for i, c := range prev.PauseCounts {
			d.Pauses.Counts[i] -= c
		}
	}
	return d
}

// PauseHistogram is a GC pause distribution in runtime/metrics layout:
// len(Buckets) == len(Counts)+1, with possibly infinite boundary buckets.
type PauseHistogram struct {
	Buckets []float64
	Counts  []uint64
}

// Count returns the number of pauses recorded.
func (h PauseHistogram) Count() uint64 {
	var n uint64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Sum approximates the total pause time by bucket midpoints (the runtime
// does not expose per-pause durations). Infinite boundaries fall back to
// the finite neighbor.
func (h PauseHistogram) Sum() float64 {
	var total float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		lo, hi := h.bounds(i)
		total += float64(c) * (lo + hi) / 2
	}
	return total
}

// Max returns the upper bound of the highest non-empty bucket — the
// worst pause's bucket ceiling, the conservative read for an SLO.
func (h PauseHistogram) Max() float64 {
	for i := len(h.Counts) - 1; i >= 0; i-- {
		if h.Counts[i] > 0 {
			_, hi := h.bounds(i)
			return hi
		}
	}
	return 0
}

// Quantile estimates the q-quantile pause duration (upper bound of the
// containing bucket — conservative, like Prometheus histogram_quantile
// without interpolation across the runtime's fine-grained buckets).
func (h PauseHistogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 || math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range h.Counts {
		cum += float64(c)
		if cum >= rank && c > 0 {
			_, hi := h.bounds(i)
			return hi
		}
	}
	return h.Max()
}

// bounds returns finite (lo, hi] boundaries for bucket i: infinite edges
// collapse onto their finite neighbor so callers never see ±Inf.
func (h PauseHistogram) bounds(i int) (lo, hi float64) {
	lo, hi = h.Buckets[i], h.Buckets[i+1]
	if math.IsInf(lo, -1) {
		lo = 0
	}
	if math.IsInf(hi, 1) {
		hi = lo
	}
	return lo, hi
}
