package svm

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/wsdetect/waldo/internal/ml"
)

// SMO is a binary SVM trained with the sequential-minimal-optimization
// algorithm (simplified Platt variant with an error cache). It is the
// exact reference trainer; use RFFSVM for large training sets.
type SMO struct {
	// Kernel defaults to RBF{Gamma: 0.5}.
	Kernel Kernel
	// C is the soft-margin penalty; default 10.
	C float64
	// Tol is the KKT violation tolerance; default 1e-3.
	Tol float64
	// MaxPasses is the number of consecutive all-clean sweeps required
	// to declare convergence; default 3.
	MaxPasses int
	// Seed drives the working-pair randomization.
	Seed int64

	// fitted state
	svX   [][]float64 // support vectors
	svAY  []float64   // alpha_i * y_i for each support vector
	b     float64
	dim   int
	iters int
}

var _ ml.Classifier = (*SMO)(nil)
var _ ml.DecisionScorer = (*SMO)(nil)

func (s *SMO) defaults() {
	if s.Kernel == nil {
		s.Kernel = RBF{Gamma: 0.5}
	}
	if s.C == 0 {
		s.C = 10
	}
	if s.Tol == 0 {
		s.Tol = 1e-3
	}
	if s.MaxPasses == 0 {
		s.MaxPasses = 3
	}
}

// Fit implements ml.Classifier.
func (s *SMO) Fit(x [][]float64, y []int) error {
	s.defaults()
	dim, err := ml.CheckTrainingSet(x, y)
	if err != nil {
		return fmt.Errorf("svm: %w", err)
	}
	if s.C < 0 || s.Tol <= 0 || s.MaxPasses < 1 {
		return fmt.Errorf("svm: invalid hyperparameters C=%v tol=%v passes=%d", s.C, s.Tol, s.MaxPasses)
	}
	n := len(x)
	yf := make([]float64, n)
	for i, yi := range y {
		yf[i] = float64(yi)
	}

	// Kernel matrix cache for moderate n (float32 keeps it ~16 MB at
	// n=2048); beyond that, rows are computed on demand.
	var kmat []float32
	cached := n <= 2048
	kern := func(i, j int) float64 {
		if cached {
			return float64(kmat[i*n+j])
		}
		return s.Kernel.Eval(x[i], x[j])
	}
	if cached {
		kmat = make([]float32, n*n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := float32(s.Kernel.Eval(x[i], x[j]))
				kmat[i*n+j] = v
				kmat[j*n+i] = v
			}
		}
	}

	alpha := make([]float64, n)
	errs := make([]float64, n) // E_i = f(x_i) − y_i; with all-zero alphas f = b = 0
	for i := range errs {
		errs[i] = -yf[i]
	}
	var b float64
	rng := rand.New(rand.NewSource(s.Seed))

	maxIters := 400 * n
	passes := 0
	for passes < s.MaxPasses && s.iters < maxIters {
		changed := 0
		for i := 0; i < n && s.iters < maxIters; i++ {
			s.iters++
			ei := errs[i]
			if !((yf[i]*ei < -s.Tol && alpha[i] < s.C) || (yf[i]*ei > s.Tol && alpha[i] > 0)) {
				continue
			}
			j := rng.Intn(n - 1)
			if j >= i {
				j++
			}
			ej := errs[j]

			ai, aj := alpha[i], alpha[j]
			var lo, hi float64
			if yf[i] != yf[j] {
				lo = math.Max(0, aj-ai)
				hi = math.Min(s.C, s.C+aj-ai)
			} else {
				lo = math.Max(0, ai+aj-s.C)
				hi = math.Min(s.C, ai+aj)
			}
			if lo == hi {
				continue
			}
			eta := 2*kern(i, j) - kern(i, i) - kern(j, j)
			if eta >= 0 {
				continue
			}
			ajNew := aj - yf[j]*(ei-ej)/eta
			ajNew = math.Min(hi, math.Max(lo, ajNew))
			if math.Abs(ajNew-aj) < 1e-7 {
				continue
			}
			aiNew := ai + yf[i]*yf[j]*(aj-ajNew)

			b1 := b - ei - yf[i]*(aiNew-ai)*kern(i, i) - yf[j]*(ajNew-aj)*kern(i, j)
			b2 := b - ej - yf[i]*(aiNew-ai)*kern(i, j) - yf[j]*(ajNew-aj)*kern(j, j)
			var bNew float64
			switch {
			case aiNew > 0 && aiNew < s.C:
				bNew = b1
			case ajNew > 0 && ajNew < s.C:
				bNew = b2
			default:
				bNew = (b1 + b2) / 2
			}

			dai := (aiNew - ai) * yf[i]
			daj := (ajNew - aj) * yf[j]
			db := bNew - b
			for k := 0; k < n; k++ {
				errs[k] += dai*kern(i, k) + daj*kern(j, k) + db
			}
			alpha[i], alpha[j], b = aiNew, ajNew, bNew
			changed++
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}

	// Retain support vectors only.
	s.svX = s.svX[:0]
	s.svAY = s.svAY[:0]
	for i := range alpha {
		if alpha[i] > 1e-8 {
			v := make([]float64, dim)
			copy(v, x[i])
			s.svX = append(s.svX, v)
			s.svAY = append(s.svAY, alpha[i]*yf[i])
		}
	}
	s.b = b
	s.dim = dim
	if len(s.svX) == 0 {
		return fmt.Errorf("svm: training produced no support vectors")
	}
	return nil
}

// DecisionValue implements ml.DecisionScorer.
func (s *SMO) DecisionValue(x []float64) (float64, error) {
	if s.dim == 0 {
		return 0, fmt.Errorf("svm: model not fitted")
	}
	if len(x) != s.dim {
		return 0, fmt.Errorf("svm: input dim %d, model dim %d", len(x), s.dim)
	}
	f := s.b
	for i, sv := range s.svX {
		f += s.svAY[i] * s.Kernel.Eval(sv, x)
	}
	return f, nil
}

// Predict implements ml.Classifier.
func (s *SMO) Predict(x []float64) (int, error) {
	f, err := s.DecisionValue(x)
	if err != nil {
		return 0, err
	}
	if f >= 0 {
		return ml.Positive, nil
	}
	return ml.Negative, nil
}

// NumSupportVectors returns the size of the fitted model.
func (s *SMO) NumSupportVectors() int { return len(s.svX) }

// Model exposes the fitted parameters for serialization: support vectors,
// their alpha·y coefficients, and the bias.
func (s *SMO) Model() (sv [][]float64, coef []float64, bias float64, err error) {
	if s.dim == 0 {
		return nil, nil, 0, fmt.Errorf("svm: model not fitted")
	}
	sv = make([][]float64, len(s.svX))
	for i := range s.svX {
		sv[i] = append([]float64(nil), s.svX[i]...)
	}
	return sv, append([]float64(nil), s.svAY...), s.b, nil
}

// SetModel installs previously serialized parameters.
func (s *SMO) SetModel(sv [][]float64, coef []float64, bias float64) error {
	s.defaults()
	if len(sv) == 0 || len(sv) != len(coef) {
		return fmt.Errorf("svm: bad model (%d vectors, %d coefs)", len(sv), len(coef))
	}
	dim := len(sv[0])
	for i := range sv {
		if len(sv[i]) != dim {
			return fmt.Errorf("svm: ragged support vectors at %d", i)
		}
	}
	s.svX = make([][]float64, len(sv))
	for i := range sv {
		s.svX[i] = append([]float64(nil), sv[i]...)
	}
	s.svAY = append([]float64(nil), coef...)
	s.b = bias
	s.dim = dim
	return nil
}
