package monitor

import (
	"testing"

	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
	"github.com/wsdetect/waldo/internal/wardrive"
)

func campaignFor(t *testing.T, channels []rfenv.Channel) (*rfenv.Environment, *wardrive.Campaign) {
	t.Helper()
	env, err := rfenv.BuildMetro(42)
	if err != nil {
		t.Fatal(err)
	}
	route, err := wardrive.GenerateRoute(wardrive.RouteConfig{Area: env.Area, Samples: 1200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	camp, err := wardrive.Run(wardrive.CampaignConfig{
		Env: env, Route: route, Channels: channels,
		Sensors: []sensor.Spec{sensor.SpectrumAnalyzer()},
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return env, camp
}

// TestLocalizeNearbyTower: channel 47's tower sits 9 km from the metro
// center; localization from in-area readings should land within a few km.
func TestLocalizeNearbyTower(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign")
	}
	env, camp := campaignFor(t, []rfenv.Channel{47})
	est, err := LocalizeTransmitter(camp.Readings(47, sensor.KindSpectrumAnalyzer), LocalizeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var truth rfenv.Transmitter
	for _, tx := range env.Transmitters() {
		if tx.Channel == 47 {
			truth = tx
		}
	}
	if d := est.Loc.DistanceM(truth.Loc); d > 5000 {
		t.Errorf("localized %v m from the true tower", d)
	}
	if est.ExponentN < 1.5 || est.ExponentN > 6 {
		t.Errorf("fitted exponent %v implausible", est.ExponentN)
	}
}

// TestLocalizeBearingOfDistantTower: channel 30's tower is 25 km out —
// beyond exact trilateration from a 26 km drive, but the estimate must at
// least point the right way (bearing error small, distance order right).
func TestLocalizeBearingOfDistantTower(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign")
	}
	env, camp := campaignFor(t, []rfenv.Channel{30})
	est, err := LocalizeTransmitter(camp.Readings(30, sensor.KindSpectrumAnalyzer), LocalizeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var truth rfenv.Transmitter
	for _, tx := range env.Transmitters() {
		if tx.Channel == 30 {
			truth = tx
		}
	}
	center := rfenv.MetroCenter
	wantBearing := center.BearingDeg(truth.Loc)
	gotBearing := center.BearingDeg(est.Loc)
	diff := wantBearing - gotBearing
	for diff > 180 {
		diff -= 360
	}
	for diff < -180 {
		diff += 360
	}
	if diff > 40 || diff < -40 {
		t.Errorf("bearing error %v° (want %v°, got %v°)", diff, wantBearing, gotBearing)
	}
}

func TestLocalizeValidation(t *testing.T) {
	if _, err := LocalizeTransmitter(nil, LocalizeConfig{}); err == nil {
		t.Error("empty readings must fail")
	}
	if testing.Short() {
		t.Skip("campaign")
	}
	_, camp := campaignFor(t, []rfenv.Channel{47})
	readings := camp.Readings(47, sensor.KindSpectrumAnalyzer)
	bad := append(readings[:0:0], readings[:100]...)
	bad[50].Channel = 30
	if _, err := LocalizeTransmitter(bad, LocalizeConfig{}); err == nil {
		t.Error("mixed channels must fail")
	}
	if _, err := LocalizeTransmitter(readings, LocalizeConfig{GridN: 1}); err == nil {
		t.Error("bad grid must fail")
	}
}
