package faultinject

import (
	"context"
	"net/http"
	"sync/atomic"
	"time"
)

// Middleware injects faults on the server side of the wire, in front of
// an [http.Handler]. It mirrors [Transport]'s state-safety: Drop, Error,
// and Hang fire before the wrapped handler runs (Drop and Hang abort the
// connection via http.ErrAbortHandler, which the client sees as a
// transport error), and Corrupt/Truncate buffer the handler's output and
// mangle it on the way out. Delay sleeps before the handler.
type Middleware struct {
	// Plan decides per-request faults; nil injects nothing.
	Plan Plan
	// Sleep implements Delay faults; nil means a context-aware
	// real-time sleep.
	Sleep func(ctx context.Context, d time.Duration) error

	seq    atomic.Uint64
	counts [numKinds]atomic.Uint64
}

func (m *Middleware) sleep(ctx context.Context, d time.Duration) error {
	if m.Sleep != nil {
		return m.Sleep(ctx, d)
	}
	return sleep(ctx, d)
}

// Requests returns the number of requests seen so far.
func (m *Middleware) Requests() uint64 { return m.seq.Load() }

// Counts returns the number of injected faults by kind.
func (m *Middleware) Counts() map[Kind]uint64 {
	out := make(map[Kind]uint64, int(numKinds))
	for k := Kind(0); k < numKinds; k++ {
		if n := m.counts[k].Load(); n > 0 {
			out[k] = n
		}
	}
	return out
}

// Injected returns the total number of non-None faults injected.
func (m *Middleware) Injected() uint64 {
	var n uint64
	for k := None + 1; k < numKinds; k++ {
		n += m.counts[k].Load()
	}
	return n
}

// Wrap returns next behind the fault layer.
func (m *Middleware) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seq := m.seq.Add(1) - 1
		var f Fault
		if m.Plan != nil {
			f = m.Plan.Decide(seq)
		}
		m.counts[f.Kind].Add(1)
		switch f.Kind {
		case Drop:
			panic(http.ErrAbortHandler)
		case Hang:
			<-r.Context().Done()
			panic(http.ErrAbortHandler)
		case Error:
			http.Error(w, "faultinject: injected server error", f.status())
			return
		case Delay:
			if err := m.sleep(r.Context(), f.latency()); err != nil {
				panic(http.ErrAbortHandler)
			}
		case Corrupt, Truncate:
			rec := &bufferingWriter{header: make(http.Header)}
			next.ServeHTTP(rec, r)
			body := rec.body
			if f.Kind == Corrupt {
				mangle(body, seq)
			} else {
				body = truncate(body)
			}
			h := w.Header()
			for k, vs := range rec.header {
				h[k] = vs
			}
			h.Del("Content-Length")
			w.WriteHeader(rec.status())
			w.Write(body)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// bufferingWriter captures a handler's full response so the body can be
// rewritten before anything reaches the wire.
type bufferingWriter struct {
	header http.Header
	code   int
	body   []byte
}

func (b *bufferingWriter) Header() http.Header { return b.header }

func (b *bufferingWriter) WriteHeader(code int) {
	if b.code == 0 {
		b.code = code
	}
}

func (b *bufferingWriter) Write(p []byte) (int, error) {
	if b.code == 0 {
		b.code = http.StatusOK
	}
	b.body = append(b.body, p...)
	return len(p), nil
}

func (b *bufferingWriter) status() int {
	if b.code == 0 {
		return http.StatusOK
	}
	return b.code
}
