package telemetry

import (
	"net/http"
	"strconv"
	"time"
)

// HTTP middleware metric names. One family each for request counts,
// latency, and concurrency, labeled by route (and status code for the
// counter), matching the flat-family convention Prometheus expects.
const (
	metricHTTPRequests = "waldo_http_requests_total"
	metricHTTPLatency  = "waldo_http_request_seconds"
	metricHTTPInFlight = "waldo_http_in_flight_requests"
)

// statusRecorder captures the response code written by a handler.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.code == 0 {
		sr.code = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.code == 0 {
		sr.code = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

// Flush passes through so streaming handlers keep working instrumented.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// WrapRoute instruments a handler under a fixed route label: request
// count by status code, latency histogram, and a process-wide in-flight
// gauge. The route label is explicit (not taken from the URL) so
// high-cardinality paths can't blow up the metric space. On a nil
// registry the handler is returned unwrapped.
//
// Every wrapped request also runs under a trace: an incoming
// X-Waldo-Trace header joins the caller's trace (the gateway fan-out /
// replication-ship path), a missing or malformed one mints a fresh
// trace, and the response always carries the root span's context in
// X-Waldo-Trace so callers can pull the trace from /debug/traces.
// Handlers reach the root span via telemetry.SpanFromContext on the
// request context; 5xx responses mark the trace errored, which pins it
// in the flight recorder's error ring. The route latency histogram
// receives the trace as an exemplar, linking /metrics tail buckets to
// retained traces.
func (r *Registry) WrapRoute(route string, next http.Handler) http.Handler {
	if r == nil {
		return next
	}
	latency := r.Histogram(metricHTTPLatency,
		"HTTP request latency by route.", nil, "route", route)
	inFlight := r.Gauge(metricHTTPInFlight,
		"Requests currently being served.")
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		inFlight.Inc()
		parent, _ := ParseTraceHeader(req.Header.Get(TraceHeader))
		sp := r.StartTrace(route, parent)
		sc := sp.Context()
		w.Header().Set(TraceHeader, sc.Header())
		req = req.WithContext(ContextWithSpan(req.Context(), sp))
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(sr, req)
		if sr.code == 0 {
			sr.code = http.StatusOK
		}
		end := time.Now()
		sp.SetAttr("code", strconv.Itoa(sr.code))
		if sr.code >= http.StatusInternalServerError {
			sp.Fail("HTTP " + strconv.Itoa(sr.code))
		}
		if sc.Sampled {
			latency.ObserveWithExemplar(end.Sub(start).Seconds(), sc.Trace, end)
		} else {
			latency.Observe(end.Sub(start).Seconds())
		}
		sp.End()
		inFlight.Dec()
		// Counter instances are per status code; look up after serving.
		r.Counter(metricHTTPRequests, "HTTP requests by route and status code.",
			"route", route, "code", strconv.Itoa(sr.code)).Inc()
	})
}

// WrapRouteFunc is WrapRoute for plain handler functions.
func (r *Registry) WrapRouteFunc(route string, next http.HandlerFunc) http.Handler {
	return r.WrapRoute(route, next)
}
