// Command waldo-map renders an ASCII white-space availability map for one
// channel: the simulated ground truth next to a trained Waldo model's
// predictions, with the per-cell disagreement rate. It is the quickest way
// to see the coverage geometry (towers, pockets, protection rings) the
// evaluation numbers summarize.
//
// Usage:
//
//	waldo-map [-channel 47] [-samples 2000] [-cols 64] [-seed 42]
//
// Legend: '#' not safe (protected), '.' white space, 'T' tower, '!' cells
// where Waldo disagrees with ground truth.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"github.com/wsdetect/waldo/internal/core"
	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/features"
	"github.com/wsdetect/waldo/internal/geo"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
	"github.com/wsdetect/waldo/internal/wardrive"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "waldo-map:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("waldo-map", flag.ContinueOnError)
	channel := fs.Int("channel", 47, "TV channel to map")
	samples := fs.Int("samples", 2000, "campaign readings")
	cols := fs.Int("cols", 64, "map width in cells")
	seed := fs.Int64("seed", 42, "environment seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ch := rfenv.Channel(*channel)
	if !ch.Valid() {
		return fmt.Errorf("channel %d outside the TV band", *channel)
	}

	env, err := rfenv.BuildMetro(uint64(*seed))
	if err != nil {
		return err
	}
	found := false
	for _, c := range env.Channels() {
		if c == ch {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("no transmitter on %v; channels: %v", ch, env.Channels())
	}

	route, err := wardrive.GenerateRoute(wardrive.RouteConfig{
		Area: env.Area, Samples: *samples, Seed: *seed + 1,
	})
	if err != nil {
		return err
	}
	camp, err := wardrive.Run(wardrive.CampaignConfig{
		Env: env, Route: route, Channels: []rfenv.Channel{ch},
		Sensors: []sensor.Spec{sensor.RTLSDR()}, Seed: *seed + 2,
	})
	if err != nil {
		return err
	}
	readings := camp.Readings(ch, sensor.KindRTLSDR)
	labels, err := dataset.LabelReadings(readings, dataset.LabelConfig{})
	if err != nil {
		return err
	}
	model, err := core.BuildModel(readings, labels, core.ConstructorConfig{ClusterK: 3, Seed: *seed + 3})
	if err != nil {
		return err
	}

	// Grid over the area. Rows keep cells roughly square in meters.
	rows := *cols * 10 / 16 / 2 * 2 // terminal cells are ~2x taller than wide
	if rows < 8 {
		rows = 8
	}
	grid, err := buildGrid(env, ch, *cols, rows)
	if err != nil {
		return err
	}
	truth := truthLabels(grid, env, ch)
	pred, err := waldoLabels(grid, env, ch, model, *seed+4)
	if err != nil {
		return err
	}

	towers := towerCells(grid, env, ch)
	fmt.Printf("%v over %.0f km² — '#': protected, '.': white space, 'T': tower, '!': Waldo ≠ truth\n\n",
		ch, rfenv.MetroAreaKM2)
	renderSideBySide(grid, truth, pred, towers)

	var wrong int
	for i := range truth {
		if truth[i] != pred[i] {
			wrong++
		}
	}
	fmt.Printf("\ncell disagreement: %.1f%% (%d of %d cells)\n",
		100*float64(wrong)/float64(len(truth)), wrong, len(truth))
	return nil
}

// cellGrid is a row-major lattice over the area.
type cellGrid struct {
	cols, rows int
	pts        []geo.Point
}

func buildGrid(env *rfenv.Environment, ch rfenv.Channel, cols, rows int) (*cellGrid, error) {
	sw, ne := env.Area.Corners()
	g := &cellGrid{cols: cols, rows: rows}
	for iy := 0; iy < rows; iy++ {
		lat := ne.Lat + (sw.Lat-ne.Lat)*(float64(iy)+0.5)/float64(rows)
		for ix := 0; ix < cols; ix++ {
			lon := sw.Lon + (ne.Lon-sw.Lon)*(float64(ix)+0.5)/float64(cols)
			g.pts = append(g.pts, geo.Point{Lat: lat, Lon: lon})
		}
	}
	return g, nil
}

// truthLabels applies Algorithm 1's geometry to the true field on the grid.
func truthLabels(g *cellGrid, env *rfenv.Environment, ch rfenv.Channel) []dataset.Label {
	hot := make([]bool, len(g.pts))
	for i, p := range g.pts {
		hot[i] = env.RSSDBm(ch, p) > core.ThresholdDBm
	}
	out := make([]dataset.Label, len(g.pts))
	for i, p := range g.pts {
		out[i] = dataset.LabelSafe
		for j, q := range g.pts {
			if hot[j] && p.DistanceM(q) <= core.ProtectRadiusM {
				out[i] = dataset.LabelNotSafe
				break
			}
		}
	}
	return out
}

// waldoLabels classifies each cell with a fresh device observation.
func waldoLabels(g *cellGrid, env *rfenv.Environment, ch rfenv.Channel, model *core.Model, seed int64) ([]dataset.Label, error) {
	rng := rand.New(rand.NewSource(seed))
	dev := sensor.NewDevice(sensor.RTLSDR())
	if err := sensor.CalibrateAndInstall(dev, rng, sensor.CalibrationConfig{}); err != nil {
		return nil, err
	}
	out := make([]dataset.Label, len(g.pts))
	for i, p := range g.pts {
		obs, err := dev.Observe(rng, env.RSSDBm(ch, p), env.StrongestDBm(p, ch))
		if err != nil {
			return nil, err
		}
		sig, err := features.FromObservation(obs, dev.Calibration())
		if err != nil {
			return nil, err
		}
		label, err := model.Classify(p, sig)
		if err != nil {
			return nil, err
		}
		out[i] = label
	}
	return out, nil
}

func towerCells(g *cellGrid, env *rfenv.Environment, ch rfenv.Channel) map[int]bool {
	cells := make(map[int]bool)
	for _, tx := range env.TransmittersOn(ch) {
		best, bestD := -1, 1e18
		for i, p := range g.pts {
			if d := p.DistanceM(tx.Loc); d < bestD {
				bestD = d
				best = i
			}
		}
		// Mark only towers within (or near) the mapped area.
		if best >= 0 && bestD < 3000 {
			cells[best] = true
		}
	}
	return cells
}

func renderSideBySide(g *cellGrid, truth, pred []dataset.Label, towers map[int]bool) {
	var b strings.Builder
	header := func(title string) string {
		pad := g.cols - len(title)
		if pad < 0 {
			pad = 0
		}
		return title + strings.Repeat(" ", pad)
	}
	fmt.Fprintf(&b, "%s   %s\n", header("GROUND TRUTH"), header("WALDO"))
	for iy := 0; iy < g.rows; iy++ {
		for ix := 0; ix < g.cols; ix++ {
			b.WriteByte(cellChar(truth[iy*g.cols+ix], false, towers[iy*g.cols+ix]))
		}
		b.WriteString("   ")
		for ix := 0; ix < g.cols; ix++ {
			i := iy*g.cols + ix
			b.WriteByte(cellChar(pred[i], pred[i] != truth[i], towers[i]))
		}
		b.WriteByte('\n')
	}
	fmt.Print(b.String())
}

func cellChar(l dataset.Label, mismatch, tower bool) byte {
	switch {
	case tower:
		return 'T'
	case mismatch:
		return '!'
	case l == dataset.LabelSafe:
		return '.'
	default:
		return '#'
	}
}
