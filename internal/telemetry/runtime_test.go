package telemetry

import (
	"math"
	"runtime"
	"testing"
)

// TestRuntimeDeltaCapturesGC forces garbage-collection cycles between two
// snapshots and asserts the delta sees them: cycle count, pause samples,
// allocation totals, and sane quantiles.
func TestRuntimeDeltaCapturesGC(t *testing.T) {
	before := ReadRuntime()
	sink := make([][]byte, 0, 64)
	for i := 0; i < 4; i++ {
		for j := 0; j < 16; j++ {
			sink = append(sink, make([]byte, 64<<10))
		}
		runtime.GC()
	}
	_ = sink
	after := ReadRuntime()
	d := after.DeltaSince(before)

	if d.GCCycles == 0 {
		t.Fatal("forced runtime.GC cycles not visible in delta")
	}
	if d.Pauses.Count() == 0 {
		t.Fatal("GC cycles recorded but no pause samples in delta")
	}
	if d.AllocBytes < 4*16*(64<<10) {
		t.Errorf("AllocBytes = %d, want at least the %d explicitly allocated", d.AllocBytes, 4*16*(64<<10))
	}
	if d.AllocObjects == 0 {
		t.Error("AllocObjects = 0 over an allocating window")
	}

	p50 := d.Pauses.Quantile(0.50)
	p99 := d.Pauses.Quantile(0.99)
	max := d.Pauses.Max()
	if p50 <= 0 || math.IsInf(p50, 0) {
		t.Errorf("p50 pause = %v, want finite positive", p50)
	}
	if p99 < p50 {
		t.Errorf("p99 (%v) < p50 (%v)", p99, p50)
	}
	if max < p99 {
		t.Errorf("max (%v) < p99 (%v)", max, p99)
	}
	if sum := d.Pauses.Sum(); sum <= 0 {
		t.Errorf("pause Sum = %v, want positive", sum)
	}
}

// TestRuntimeDeltaZeroWindow asserts a delta over an idle window is
// well-formed: zero quantiles, no panics on empty histograms.
func TestRuntimeDeltaZeroWindow(t *testing.T) {
	s := ReadRuntime()
	d := s.DeltaSince(s)
	if d.GCCycles != 0 || d.AllocBytes != 0 {
		// Not an error: another goroutine may allocate between the two
		// copies inside this test binary — but with the SAME snapshot on
		// both sides the delta must be exactly zero.
		t.Errorf("self-delta not zero: %+v", d)
	}
	if d.Pauses.Count() != 0 {
		t.Errorf("self-delta pause count = %d", d.Pauses.Count())
	}
	if q := d.Pauses.Quantile(0.99); q != 0 {
		t.Errorf("empty histogram quantile = %v", q)
	}
	if m := d.Pauses.Max(); m != 0 {
		t.Errorf("empty histogram max = %v", m)
	}
}

// TestRuntimeDeltaAgainstZeroSnapshot guards the mismatched-shape path: a
// zero-value prev must yield the whole current histogram, not panic.
func TestRuntimeDeltaAgainstZeroSnapshot(t *testing.T) {
	runtime.GC()
	s := ReadRuntime()
	d := s.DeltaSince(RuntimeSnapshot{})
	if d.Pauses.Count() == 0 {
		t.Error("delta against zero snapshot lost the cumulative pause history")
	}
}
