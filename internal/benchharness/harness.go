package benchharness

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/wsdetect/waldo/internal/cluster"
	"github.com/wsdetect/waldo/internal/core"
	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/dbserver"
	"github.com/wsdetect/waldo/internal/geo"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
	"github.com/wsdetect/waldo/internal/telemetry"
	"github.com/wsdetect/waldo/internal/wardrive"
)

// Topology names for Config.Topology.
const (
	TopologySingle  = "single"
	TopologyCluster = "cluster"
)

// Config parameterizes the system under test. The zero value is a
// usable single-server setup.
type Config struct {
	// Topology selects the system under test: TopologySingle boots one
	// dbserver; TopologyCluster boots Shards shard nodes (each with
	// ReplicasPerShard replicas) behind a routing gateway, all
	// in-process on real sockets. Empty means single.
	Topology string
	// Seed drives the bootstrap campaign simulation. 0 means 42.
	Seed int64
	// Channels are the TV channels carrying upload and model-fetch
	// traffic. Empty means {46, 47}.
	Channels []rfenv.Channel
	// WatchChannel carries the retrain + long-poll watch traffic. It is
	// deliberately separate from Channels: its store stays at bootstrap
	// size, so periodic retrains cost the same in every tier instead of
	// growing with the readings the upload stream has landed so far.
	// 0 means 48.
	WatchChannel rfenv.Channel
	// Samples sizes the bootstrap campaign per channel. 0 means 300.
	Samples int
	// ClusterK is the model's locality count. 0 means 3.
	ClusterK int
	// AlphaPrimeDB is the upload acceptance CI span. 0 means 1 dB.
	AlphaPrimeDB float64
	// Shards is the cluster topology's shard count. 0 means 3.
	Shards int
	// ReplicasPerShard adds replicas (and live replication shipping)
	// behind each shard. 0 means none.
	ReplicasPerShard int
	// CellDeg is the gateway's geo-cell routing quantum. 0 means
	// cluster.DefaultCellDeg.
	CellDeg float64
	// DataDir, when set, gives every server a WAL under a subdirectory
	// so tiers measure the group-commit persistence path too. Empty
	// means in-memory stores.
	DataDir string
}

func (c *Config) defaults() {
	if c.Topology == "" {
		c.Topology = TopologySingle
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if len(c.Channels) == 0 {
		c.Channels = []rfenv.Channel{46, 47}
	}
	if c.WatchChannel == 0 {
		c.WatchChannel = 48
	}
	if c.Samples <= 0 {
		c.Samples = 300
	}
	if c.ClusterK <= 0 {
		c.ClusterK = 3
	}
	if c.AlphaPrimeDB <= 0 {
		c.AlphaPrimeDB = 1.0
	}
	if c.Shards <= 0 {
		c.Shards = 3
	}
	if c.CellDeg <= 0 {
		c.CellDeg = cluster.DefaultCellDeg
	}
}

// Tier is one fixed offered load level.
type Tier struct {
	// Name labels the tier in the trajectory (e.g. "1k").
	Name string
	// Rate is the offered upload throughput in readings per second; the
	// upload stream runs at Rate/BatchSize operations per second.
	Rate float64
	// Duration is how long the tier's streams run. 0 means 5s.
	Duration time.Duration
	// BatchSize is readings per upload operation. 0 means 32.
	BatchSize int
	// JSONFraction routes this fraction of upload operations through
	// the JSON /v1/readings path instead of binary /v1/upload/batch.
	JSONFraction float64
	// ModelRate is the concurrent model-fetch stream's rate in
	// operations per second. 0 means max(10, Rate/500).
	ModelRate float64
	// Watchers is how many long-poll /v1/model/watch clients stay
	// parked on WatchChannel through the tier. 0 means 8; negative
	// means none.
	Watchers int
	// RetrainEvery is the watch channel's retrain period (each retrain
	// wakes every watcher). 0 means 1s; negative means never.
	RetrainEvery time.Duration
	// Workers bounds each stream's operation concurrency. 0 means 32.
	Workers int
}

func (t *Tier) defaults() {
	if t.Duration <= 0 {
		t.Duration = 5 * time.Second
	}
	if t.BatchSize <= 0 {
		t.BatchSize = 32
	}
	if t.ModelRate <= 0 {
		t.ModelRate = math.Max(10, t.Rate/500)
	}
	if t.Watchers == 0 {
		t.Watchers = 8
	}
	if t.Watchers < 0 {
		t.Watchers = 0
	}
	if t.RetrainEvery == 0 {
		t.RetrainEvery = time.Second
	}
	if t.Workers <= 0 {
		t.Workers = 32
	}
}

// payload is one pre-encoded upload, confined to a single (channel,
// geo-cell) key like a real WSD's locally-buffered batch — so the
// gateway's fast path (no split) carries it, and the harness's hot loop
// does zero encoding work.
type payload struct {
	ch    rfenv.Channel
	loc   geo.Point
	frame []byte // binary batch frame for POST /v1/upload/batch
	json  []byte // UploadJSON body for POST /v1/readings
}

// Harness is a booted system under test plus the campaign data to load
// it with. Start it once, run any number of tiers, Close it.
type Harness struct {
	cfg     Config
	BaseURL string

	// httpc carries the bounded-latency load streams; watchc shares its
	// transport but has no overall timeout, because a parked long-poll
	// outliving a request budget is the watch route's point.
	httpc  *http.Client
	watchc *http.Client

	srv       *dbserver.Server   // single topology
	singleTS  *httptest.Server   // single topology
	nodes     []*cluster.Node    // cluster topology, primaries then replicas
	shardTS   []*httptest.Server // cluster topology
	gw        *cluster.Gateway
	gatewayTS *httptest.Server

	// groups holds the campaign readings per upload channel, split by
	// geo cell; seedLoc is a routing hint per channel whose owning
	// shard is guaranteed to hold that channel's data.
	groups  map[rfenv.Channel][][]dataset.Reading
	seedLoc map[rfenv.Channel]geo.Point

	closeOnce sync.Once
	closeErr  error
}

// Start simulates the bootstrap campaign, boots the configured
// topology on real sockets, and seeds it with trained models on every
// channel (including the watch channel).
func Start(cfg Config) (*Harness, error) {
	cfg.defaults()
	h := &Harness{cfg: cfg}
	tr := &http.Transport{
		MaxIdleConns:        512,
		MaxIdleConnsPerHost: 256,
		IdleConnTimeout:     30 * time.Second,
	}
	h.httpc = &http.Client{Transport: tr, Timeout: 10 * time.Second}
	h.watchc = &http.Client{Transport: tr}

	all, err := h.campaign()
	if err != nil {
		return nil, err
	}
	switch cfg.Topology {
	case TopologySingle:
		err = h.startSingle(all)
	case TopologyCluster:
		err = h.startCluster(all)
	default:
		err = fmt.Errorf("benchharness: unknown topology %q", cfg.Topology)
	}
	if err != nil {
		h.Close() //nolint:errcheck // surfacing the boot error
		return nil, err
	}
	return h, nil
}

// campaign simulates the war-driving bootstrap and indexes its readings
// by (channel, cell) for the payload pools.
func (h *Harness) campaign() ([]dataset.Reading, error) {
	channels := append(append([]rfenv.Channel(nil), h.cfg.Channels...), h.cfg.WatchChannel)
	env, err := rfenv.BuildMetro(uint64(h.cfg.Seed))
	if err != nil {
		return nil, err
	}
	route, err := wardrive.GenerateRoute(wardrive.RouteConfig{
		Area: env.Area, Samples: h.cfg.Samples, Seed: h.cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	rtl, err := sensor.SpecFor(sensor.KindRTLSDR)
	if err != nil {
		return nil, err
	}
	camp, err := wardrive.Run(wardrive.CampaignConfig{
		Env: env, Route: route,
		Sensors:  []sensor.Spec{rtl},
		Channels: channels,
		Seed:     h.cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	var all []dataset.Reading
	h.groups = make(map[rfenv.Channel][][]dataset.Reading)
	h.seedLoc = make(map[rfenv.Channel]geo.Point)
	for _, ch := range channels {
		rs := camp.Readings(ch, sensor.KindRTLSDR)
		if len(rs) == 0 {
			return nil, fmt.Errorf("benchharness: campaign produced no readings for channel %d", int(ch))
		}
		all = append(all, rs...)
		h.seedLoc[ch] = rs[0].Loc
		byCell := make(map[cluster.Cell][]dataset.Reading)
		for _, r := range rs {
			cell := cluster.CellOf(r.Loc, h.cfg.CellDeg)
			byCell[cell] = append(byCell[cell], r)
		}
		for _, group := range byCell {
			h.groups[ch] = append(h.groups[ch], group)
		}
	}
	return all, nil
}

// dbConfig is the per-server dbserver configuration; name scopes the
// optional WAL directory.
func (h *Harness) dbConfig(name string) dbserver.Config {
	cfg := dbserver.Config{
		Constructor:  core.ConstructorConfig{ClusterK: h.cfg.ClusterK, Seed: h.cfg.Seed},
		AlphaPrimeDB: h.cfg.AlphaPrimeDB,
	}
	if h.cfg.DataDir != "" {
		cfg.DataDir = h.cfg.DataDir + "/" + name
	}
	return cfg
}

// startSingle boots one dbserver and bootstraps it directly.
func (h *Harness) startSingle(all []dataset.Reading) error {
	srv, err := dbserver.Open(h.dbConfig("single"))
	if err != nil {
		return err
	}
	h.srv = srv
	if err := srv.Bootstrap(all); err != nil {
		return err
	}
	h.singleTS = httptest.NewServer(srv.Handler())
	h.BaseURL = h.singleTS.URL
	return nil
}

// startCluster boots replicas first (their apply endpoints must exist
// before a primary's shipper starts), then primaries, then the gateway,
// and bootstraps through the gateway's routed upload path so each
// (channel, cell) group lands on its owning shard.
func (h *Harness) startCluster(all []dataset.Reading) error {
	var specs []cluster.ShardSpec
	for i := 0; i < h.cfg.Shards; i++ {
		var replicaURLs []string
		for r := 0; r < h.cfg.ReplicasPerShard; r++ {
			name := fmt.Sprintf("shard%d-replica%d", i, r)
			rep, err := cluster.OpenNode(cluster.NodeConfig{ID: name, DB: h.dbConfig(name)})
			if err != nil {
				return err
			}
			h.nodes = append(h.nodes, rep)
			ts := httptest.NewServer(rep.Handler())
			h.shardTS = append(h.shardTS, ts)
			replicaURLs = append(replicaURLs, ts.URL)
		}
		name := fmt.Sprintf("shard%d", i)
		prim, err := cluster.OpenNode(cluster.NodeConfig{
			ID: name, DB: h.dbConfig(name), ReplicaURLs: replicaURLs,
		})
		if err != nil {
			return err
		}
		h.nodes = append(h.nodes, prim)
		ts := httptest.NewServer(prim.Handler())
		h.shardTS = append(h.shardTS, ts)
		specs = append(specs, cluster.ShardSpec{
			ID: name, URLs: append([]string{ts.URL}, replicaURLs...),
		})
	}
	gw, err := cluster.NewGateway(cluster.GatewayConfig{
		Shards:  specs,
		CellDeg: h.cfg.CellDeg,
	})
	if err != nil {
		return err
	}
	h.gw = gw
	h.gatewayTS = httptest.NewServer(gw.Handler())
	h.BaseURL = h.gatewayTS.URL

	// Routed bootstrap: one JSON upload per (channel, cell) so every
	// batch lands whole on its owning shard, then a broadcast retrain
	// per channel trains whatever slice each shard holds.
	for ch, groups := range h.groups {
		for _, rs := range groups {
			up := dbserver.UploadJSON{CISpanDB: 0.2}
			for _, r := range rs {
				up.Readings = append(up.Readings, dbserver.FromReading(r))
			}
			body, err := json.Marshal(up)
			if err != nil {
				return err
			}
			resp, err := h.httpc.Post(h.BaseURL+"/v1/readings", "application/json", bytes.NewReader(body))
			if err != nil {
				return err
			}
			drain(resp)
			if resp.StatusCode != http.StatusNoContent {
				return fmt.Errorf("bootstrap upload ch%d = %s", int(ch), resp.Status)
			}
		}
	}
	for ch := range h.groups {
		url := fmt.Sprintf("%s/v1/retrain?channel=%d&sensor=%d", h.BaseURL, int(ch), int(sensor.KindRTLSDR))
		resp, err := h.httpc.Post(url, "", nil)
		if err != nil {
			return err
		}
		drain(resp)
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("broadcast retrain ch%d = %s", int(ch), resp.Status)
		}
	}
	return nil
}

// Gateway returns the cluster topology's gateway (nil for single).
func (h *Harness) Gateway() *cluster.Gateway { return h.gw }

// Server returns the single topology's dbserver (nil for cluster).
func (h *Harness) Server() *dbserver.Server { return h.srv }

// Close tears the whole system down: servers first (dbserver.Close
// wakes every parked watcher, so listener drains cannot stall on a
// long-poll horizon), then listeners, then idle connections. Idempotent.
func (h *Harness) Close() error {
	h.closeOnce.Do(func() {
		var first error
		keep := func(err error) {
			if err != nil && first == nil {
				first = err
			}
		}
		if h.srv != nil {
			keep(h.srv.Close())
		}
		for _, n := range h.nodes {
			keep(n.Close())
		}
		if h.gw != nil {
			keep(h.gw.Close())
		}
		if h.gatewayTS != nil {
			h.gatewayTS.Close()
		}
		for _, ts := range h.shardTS {
			ts.Close()
		}
		if h.singleTS != nil {
			h.singleTS.Close()
		}
		if tr, ok := h.httpc.Transport.(*http.Transport); ok {
			tr.CloseIdleConnections()
		}
		h.closeErr = first
	})
	return h.closeErr
}

// buildPayloads pre-encodes a pool of upload payloads of the given
// batch size, cycling channels and cell groups so the pool exercises
// every shard.
func (h *Harness) buildPayloads(batch int) ([]payload, error) {
	const poolSize = 16
	pool := make([]payload, 0, poolSize)
	for i := 0; len(pool) < poolSize; i++ {
		ch := h.cfg.Channels[i%len(h.cfg.Channels)]
		groups := h.groups[ch]
		group := groups[i%len(groups)]
		rs := make([]dataset.Reading, batch)
		for j := range rs {
			rs[j] = group[(i*batch+j)%len(group)]
		}
		frame, err := core.EncodeBatchFrame(rs)
		if err != nil {
			return nil, err
		}
		up := dbserver.UploadJSON{CISpanDB: 0.2, Readings: make([]dbserver.ReadingJSON, 0, batch)}
		for _, r := range rs {
			up.Readings = append(up.Readings, dbserver.FromReading(r))
		}
		jsonBody, err := json.Marshal(up)
		if err != nil {
			return nil, err
		}
		pool = append(pool, payload{ch: ch, loc: rs[0].Loc, frame: frame, json: jsonBody})
	}
	return pool, nil
}

// endpointTrack pairs one endpoint's latency histogram with its error
// count. Latency is observed only for successful operations; failures
// (transport errors, unexpected statuses) are counted, never hidden in
// the distribution.
type endpointTrack struct {
	name string
	hist *telemetry.Histogram
	errs atomic.Uint64
}

func (t *endpointTrack) result() (EndpointLatency, bool) {
	s := t.hist.Snapshot()
	if s.Count == 0 && t.errs.Load() == 0 {
		return EndpointLatency{}, false
	}
	return EndpointLatency{
		Endpoint: t.name,
		Count:    s.Count,
		Errors:   t.errs.Load(),
		P50:      s.Quantile(0.50),
		P95:      s.Quantile(0.95),
		P99:      s.Quantile(0.99),
		P999:     s.Quantile(0.999),
		Max:      s.Max,
	}, true
}

// RunTier drives one load tier against the booted system: an open-loop
// upload stream at tier.Rate readings/s (binary frames with a JSON
// fraction), a concurrent open-loop model-fetch stream (ETag
// revalidations mixed with full fetches), parked watch long-polls on
// the watch channel, and a periodic retrain that wakes them. It
// reports per-endpoint latency measured from each operation's
// scheduled start, the tier's GC pause distribution, and achieved
// versus offered throughput.
func (h *Harness) RunTier(ctx context.Context, tier Tier) TierResult {
	tier.defaults()
	pool, err := h.buildPayloads(tier.BatchSize)
	if err != nil {
		// Payload encoding can only fail on an invalid campaign; report
		// it as a tier with nothing achieved rather than panicking.
		return TierResult{Name: tier.Name, OfferedReadingsPerSec: tier.Rate, BatchSize: tier.BatchSize}
	}

	// Fine-grained buckets (20µs … ~18s, ×10^⅛ steps) so p999 in the
	// hundreds of microseconds is resolved, unlike DefLatencyBuckets.
	reg := telemetry.New()
	buckets := telemetry.ExpBuckets(20e-6, math.Pow(10, 0.125), 48)
	track := func(name string) *endpointTrack {
		return &endpointTrack{
			name: name,
			hist: reg.Histogram("bench_e2e_latency_seconds",
				"End-to-end operation latency from scheduled start.", buckets, "endpoint", name),
		}
	}
	upBatch := track("upload_batch")
	upJSON := track("readings_json")
	model := track("model")
	retrain := track("retrain")
	watch := track("model_watch")

	tierCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var acceptedReadings atomic.Uint64
	var lastRetrain atomic.Int64

	// Parked watchers + the retrain loop that wakes them.
	var bg sync.WaitGroup
	for i := 0; i < tier.Watchers; i++ {
		bg.Add(1)
		go func() {
			defer bg.Done()
			h.runWatcher(tierCtx, &lastRetrain, watch)
		}()
	}
	if tier.RetrainEvery > 0 {
		bg.Add(1)
		go func() {
			defer bg.Done()
			h.runRetrains(tierCtx, tier.RetrainEvery, &lastRetrain, retrain)
		}()
	}

	before := telemetry.ReadRuntime()
	start := time.Now()

	var seq atomic.Uint64
	uploadOp := func(_ int, scheduled time.Time) {
		n := seq.Add(1)
		p := pool[n%uint64(len(pool))]
		// Bresenham interleave: exactly JSONFraction of operations take
		// the JSON path, evenly spread rather than in blocks, so even a
		// short tier exercises both ingest paths.
		useJSON := tier.JSONFraction > 0 &&
			uint64(float64(n)*tier.JSONFraction) != uint64(float64(n-1)*tier.JSONFraction)
		var req *http.Request
		var err error
		if useJSON {
			req, err = http.NewRequestWithContext(tierCtx, http.MethodPost,
				h.BaseURL+"/v1/readings", bytes.NewReader(p.json))
			if err == nil {
				req.Header.Set("Content-Type", "application/json")
			}
		} else {
			req, err = http.NewRequestWithContext(tierCtx, http.MethodPost,
				h.BaseURL+"/v1/upload/batch", bytes.NewReader(p.frame))
			if err == nil {
				req.Header.Set(dbserver.CISpanHeader, "0.2")
			}
		}
		tk := upBatch
		if useJSON {
			tk = upJSON
		}
		if err != nil {
			tk.errs.Add(1)
			return
		}
		resp, err := h.httpc.Do(req)
		if err != nil {
			tk.errs.Add(1)
			return
		}
		drain(resp)
		if resp.StatusCode != http.StatusNoContent {
			tk.errs.Add(1)
			return
		}
		acceptedReadings.Add(uint64(tier.BatchSize))
		tk.hist.Observe(time.Since(scheduled).Seconds())
	}

	var modelSeq atomic.Uint64
	var etags sync.Map // rfenv.Channel → ETag string
	modelOp := func(_ int, scheduled time.Time) {
		n := modelSeq.Add(1)
		ch := h.cfg.Channels[n%uint64(len(h.cfg.Channels))]
		req, err := http.NewRequestWithContext(tierCtx, http.MethodGet, h.modelURL(ch), nil)
		if err != nil {
			model.errs.Add(1)
			return
		}
		// 3 of 4 fetches revalidate with the last seen ETag — the fleet
		// polling pattern — and every 4th forces a full body.
		if etag, ok := etags.Load(ch); ok && n%4 != 0 {
			req.Header.Set("If-None-Match", etag.(string))
		}
		resp, err := h.httpc.Do(req)
		if err != nil {
			model.errs.Add(1)
			return
		}
		drain(resp)
		switch resp.StatusCode {
		case http.StatusOK:
			if etag := resp.Header.Get("ETag"); etag != "" {
				etags.Store(ch, etag)
			}
		case http.StatusNotModified:
		default:
			model.errs.Add(1)
			return
		}
		model.hist.Observe(time.Since(scheduled).Seconds())
	}

	uploadCfg := OpenLoopConfig{
		Rate:     tier.Rate / float64(tier.BatchSize),
		Workers:  tier.Workers,
		Duration: tier.Duration,
	}
	modelCfg := OpenLoopConfig{
		Rate:     tier.ModelRate,
		Workers:  tier.Workers / 2,
		Duration: tier.Duration,
	}
	var loops sync.WaitGroup
	var upStats, modelStats OpenLoopStats
	loops.Add(2)
	go func() {
		defer loops.Done()
		upStats = RunOpenLoop(tierCtx, uploadCfg, uploadOp)
	}()
	go func() {
		defer loops.Done()
		modelStats = RunOpenLoop(tierCtx, modelCfg, modelOp)
	}()
	loops.Wait()
	elapsed := time.Since(start)
	delta := telemetry.ReadRuntime().DeltaSince(before)
	cancel()
	bg.Wait()

	res := TierResult{
		Name:                  tier.Name,
		DurationSeconds:       elapsed.Seconds(),
		OfferedReadingsPerSec: tier.Rate,
		BatchSize:             tier.BatchSize,
		UploadLoop:            loopStats(uploadCfg.Rate, upStats),
		ModelLoop:             loopStats(modelCfg.Rate, modelStats),
	}
	if elapsed > 0 {
		res.AchievedReadingsPerSec = float64(acceptedReadings.Load()) / elapsed.Seconds()
	}
	for _, tk := range []*endpointTrack{upBatch, upJSON, model, retrain, watch} {
		if ep, ok := tk.result(); ok {
			res.Endpoints = append(res.Endpoints, ep)
		}
	}
	ops := upStats.Completed + modelStats.Completed
	res.GC = GCStats{
		Cycles:           delta.GCCycles,
		PauseCount:       delta.Pauses.Count(),
		PauseP50:         delta.Pauses.Quantile(0.50),
		PauseP95:         delta.Pauses.Quantile(0.95),
		PauseP99:         delta.Pauses.Quantile(0.99),
		PauseP999:        delta.Pauses.Quantile(0.999),
		PauseMax:         delta.Pauses.Max(),
		PauseTotalApprox: delta.Pauses.Sum(),
	}
	if ops > 0 {
		res.GC.AllocBytesPerOp = float64(delta.AllocBytes) / float64(ops)
		res.GC.AllocObjectsPerOp = float64(delta.AllocObjects) / float64(ops)
	}
	return res
}

func loopStats(rate float64, s OpenLoopStats) LoopStats {
	return LoopStats{
		OfferedOpsPerSec: rate,
		Scheduled:        s.Scheduled,
		Completed:        s.Completed,
		Dropped:          s.Dropped,
		Late:             s.Late,
	}
}

// modelURL builds the model-fetch URL; in cluster topology it attaches
// the channel's seed location as a routing hint so the gateway forwards
// to a shard that actually holds the channel's model.
func (h *Harness) modelURL(ch rfenv.Channel) string {
	url := fmt.Sprintf("%s/v1/model?channel=%d&sensor=%d", h.BaseURL, int(ch), int(sensor.KindRTLSDR))
	if h.gw != nil {
		loc := h.seedLoc[ch]
		url += fmt.Sprintf("&lat=%.6f&lon=%.6f", loc.Lat, loc.Lon)
	}
	return url
}

// runWatcher keeps one long-poll parked on the watch channel, re-arming
// after every answer. A delivered model records the wake latency —
// measured from the retrain that caused it, so it includes the rebuild
// time the fleet actually waits through, not just the final hop.
func (h *Harness) runWatcher(ctx context.Context, lastRetrain *atomic.Int64, watch *endpointTrack) {
	ch := h.cfg.WatchChannel
	version := 0
	for ctx.Err() == nil {
		url := fmt.Sprintf("%s/v1/model/watch?channel=%d&sensor=%d&version=%d",
			h.BaseURL, int(ch), int(sensor.KindRTLSDR), version)
		if h.gw != nil {
			loc := h.seedLoc[ch]
			url += fmt.Sprintf("&lat=%.6f&lon=%.6f", loc.Lat, loc.Lon)
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return
		}
		resp, err := h.watchc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			watch.errs.Add(1)
			time.Sleep(10 * time.Millisecond)
			continue
		}
		drain(resp)
		if v, err := strconv.Atoi(resp.Header.Get("X-Waldo-Model-Version")); err == nil && v > version {
			version = v
		}
		switch resp.StatusCode {
		case http.StatusOK:
			if at := lastRetrain.Load(); at > 0 {
				watch.hist.Observe(time.Since(time.Unix(0, at)).Seconds())
			}
		case http.StatusNotModified:
			// Horizon expiry: normal re-arm, not an error, not a sample.
		default:
			if ctx.Err() != nil {
				return
			}
			watch.errs.Add(1)
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// runRetrains periodically retrains the watch channel. In cluster
// topology the hintless POST broadcasts to every shard — "retrain
// channel N" means everywhere the channel's readings live.
func (h *Harness) runRetrains(ctx context.Context, every time.Duration, lastRetrain *atomic.Int64, retrain *endpointTrack) {
	url := fmt.Sprintf("%s/v1/retrain?channel=%d&sensor=%d",
		h.BaseURL, int(h.cfg.WatchChannel), int(sensor.KindRTLSDR))
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		start := time.Now()
		lastRetrain.Store(start.UnixNano())
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, nil)
		if err != nil {
			return
		}
		resp, err := h.httpc.Do(req)
		if err != nil {
			if ctx.Err() == nil {
				retrain.errs.Add(1)
			}
			continue
		}
		drain(resp)
		if resp.StatusCode != http.StatusOK {
			retrain.errs.Add(1)
			continue
		}
		retrain.hist.Observe(time.Since(start).Seconds())
	}
}

// drain consumes and closes a response body so the keep-alive
// connection returns to the pool.
func drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining for reuse
	resp.Body.Close()
}
