// Package core implements Waldo itself — the paper's primary contribution:
// a white-space detection system that fuses location with signal features
// (RSS, CFT, AFT) from low-cost sensors.
//
// The package follows the architecture of paper §3 (Fig. 8):
//
//   - ModelConstructor (§3.2) runs at the central spectrum database: it
//     clusters labeled readings into localities (k-means on location) and
//     trains one compact binary classifier per locality — SVM or Naive
//     Bayes — on location + signal features.
//   - Model is the downloadable White Space Detection Model: cluster
//     centers plus per-locality classifiers, serialized by the codec in
//     codec.go into the small descriptor files whose size §5 measures.
//   - Detector (§3.3) runs on the mobile WSD: it smooths a stream of noisy
//     captures, rejects 5th/95th-percentile outliers, declares convergence
//     when the 90% confidence interval is narrower than the sensitivity
//     parameter α, and only then classifies.
//   - Updater (§3.4) closes the loop: WSDs upload converged reading
//     batches, and the database retrains.
package core

import (
	"fmt"

	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/ml"
)

// FCC-derived constants (paper §2.1).
const (
	// ThresholdDBm is the TV-signal decodability threshold defining
	// protected contours.
	ThresholdDBm = -84.0
	// ProtectRadiusM is the separation distance required of portable
	// white-space devices.
	ProtectRadiusM = 6000.0
	// SensingThresholdDBm is the FCC's sensing-only detection threshold,
	// the level that forces $10-40K analyzers (Waldo's approach avoids
	// it).
	SensingThresholdDBm = -114.0
)

// ClassifierKind selects the per-locality model family.
type ClassifierKind int

// Supported classifier families. KindSVM (random-Fourier-feature RBF SVM)
// and KindNB are the two families the paper evaluates; KindSVMExact is the
// SMO reference solver; KindLinearSVM is a Pegasos ablation.
const (
	KindSVM ClassifierKind = iota + 1
	KindNB
	KindSVMExact
	KindLinearSVM
)

// String implements fmt.Stringer.
func (k ClassifierKind) String() string {
	switch k {
	case KindSVM:
		return "svm"
	case KindNB:
		return "nb"
	case KindSVMExact:
		return "svm-exact"
	case KindLinearSVM:
		return "svm-linear"
	default:
		return fmt.Sprintf("core.ClassifierKind(%d)", int(k))
	}
}

// Valid reports whether k is a defined kind.
func (k ClassifierKind) Valid() bool { return k >= KindSVM && k <= KindLinearSVM }

// labelToClass converts a dataset label to the ml convention
// (Safe = Positive).
func labelToClass(l dataset.Label) (int, error) {
	switch l {
	case dataset.LabelSafe:
		return ml.Positive, nil
	case dataset.LabelNotSafe:
		return ml.Negative, nil
	default:
		return 0, fmt.Errorf("core: unknown label %v", l)
	}
}

// classToLabel converts an ml class back to a dataset label.
func classToLabel(c int) dataset.Label {
	if c == ml.Positive {
		return dataset.LabelSafe
	}
	return dataset.LabelNotSafe
}
