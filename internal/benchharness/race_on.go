//go:build race

package benchharness

// raceEnabled reports whether this binary was built with the race
// detector. Latency-regime assertions consult it: the detector's ~10×
// CPU multiplier turns benign background work into physical contention
// on small machines, which is not the signal those tests gate on.
const raceEnabled = true
