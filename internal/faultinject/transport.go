package faultinject

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// Transport is a fault-injecting [http.RoundTripper]. Wrap a client's
// transport with one to subject every outgoing request to the Plan:
//
//	httpc := &http.Client{Transport: &faultinject.Transport{Plan: plan}}
//
// Requests are numbered in the order RoundTrip is entered; with a
// deterministic Plan and a sequential caller the injected fault pattern
// is fully reproducible from the seed.
//
// Drop, Error, and Hang are injected without forwarding, so the server
// never observes the request; Corrupt and Truncate forward and mangle
// only the received response body. Injected faults therefore never
// mutate server state (see the package comment).
type Transport struct {
	// Base performs real round trips; nil means http.DefaultTransport.
	Base http.RoundTripper
	// Plan decides per-request faults; nil injects nothing.
	Plan Plan
	// Sleep implements Delay faults; nil means a context-aware
	// real-time sleep. Injectable for fast tests.
	Sleep func(ctx context.Context, d time.Duration) error

	seq    atomic.Uint64
	counts [numKinds]atomic.Uint64
}

func (t *Transport) base() http.RoundTripper {
	if t.Base == nil {
		return http.DefaultTransport
	}
	return t.Base
}

func (t *Transport) sleep(ctx context.Context, d time.Duration) error {
	if t.Sleep != nil {
		return t.Sleep(ctx, d)
	}
	return sleep(ctx, d)
}

// Requests returns the number of round trips attempted so far.
func (t *Transport) Requests() uint64 { return t.seq.Load() }

// Counts returns the number of injected faults by kind (None counts the
// untouched requests).
func (t *Transport) Counts() map[Kind]uint64 {
	m := make(map[Kind]uint64, int(numKinds))
	for k := Kind(0); k < numKinds; k++ {
		if n := t.counts[k].Load(); n > 0 {
			m[k] = n
		}
	}
	return m
}

// Injected returns the total number of non-None faults injected.
func (t *Transport) Injected() uint64 {
	var n uint64
	for k := None + 1; k < numKinds; k++ {
		n += t.counts[k].Load()
	}
	return n
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	seq := t.seq.Add(1) - 1
	var f Fault
	if t.Plan != nil {
		f = t.Plan.Decide(seq)
	}
	t.counts[f.Kind].Add(1)
	switch f.Kind {
	case Drop:
		return nil, &FaultError{Kind: Drop, Seq: seq}
	case Hang:
		<-req.Context().Done()
		return nil, fmt.Errorf("faultinject: hang request %d: %w", seq, req.Context().Err())
	case Error:
		return syntheticResponse(req, f.status()), nil
	case Delay:
		if err := t.sleep(req.Context(), f.latency()); err != nil {
			return nil, fmt.Errorf("faultinject: delay request %d: %w", seq, err)
		}
	}
	resp, err := t.base().RoundTrip(req)
	if err != nil {
		return resp, err
	}
	switch f.Kind {
	case Corrupt, Truncate:
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, fmt.Errorf("faultinject: rewrite response %d: %w", seq, rerr)
		}
		if f.Kind == Corrupt {
			mangle(body, seq)
		} else {
			body = truncate(body)
		}
		resp.Body = io.NopCloser(bytes.NewReader(body))
		resp.ContentLength = int64(len(body))
	}
	return resp, nil
}

// syntheticResponse fabricates a plain-text error response without
// touching the network.
func syntheticResponse(req *http.Request, status int) *http.Response {
	body := fmt.Sprintf("faultinject: injected %d\n", status)
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		StatusCode:    status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"text/plain; charset=utf-8"}},
		Body:          io.NopCloser(bytes.NewReader([]byte(body))),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}
