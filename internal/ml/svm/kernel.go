// Package svm provides two support-vector-machine trainers: an exact SMO
// solver with pluggable kernels (the reference implementation, suited to
// per-cluster datasets), and a Pegasos stochastic sub-gradient linear SVM
// that — composed with random Fourier features — approximates the RBF
// kernel at a small fraction of the training cost, which is what lets the
// full 5,282-readings-per-channel campaigns cross-validate quickly.
package svm

import (
	"fmt"
	"math"
)

// Kernel is a positive-definite similarity function.
type Kernel interface {
	// Eval computes k(a, b). Implementations may assume equal lengths.
	Eval(a, b []float64) float64
	// Name identifies the kernel in model descriptors.
	Name() string
}

// Linear is the dot-product kernel.
type Linear struct{}

// Name implements Kernel.
func (Linear) Name() string { return "linear" }

// Eval implements Kernel.
func (Linear) Eval(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// RBF is the Gaussian kernel exp(−γ‖a−b‖²).
type RBF struct {
	// Gamma is the inverse squared length scale; must be positive.
	Gamma float64
}

// Name implements Kernel.
func (RBF) Name() string { return "rbf" }

// Eval implements Kernel.
func (k RBF) Eval(a, b []float64) float64 {
	var d2 float64
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return math.Exp(-k.Gamma * d2)
}

// Poly is the polynomial kernel (a·b + coef)^degree.
type Poly struct {
	Degree int
	Coef   float64
}

// Name implements Kernel.
func (Poly) Name() string { return "poly" }

// Eval implements Kernel.
func (k Poly) Eval(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return math.Pow(s+k.Coef, float64(k.Degree))
}

// KernelByName reconstructs a kernel from its descriptor name and
// parameters (used by the model codec).
func KernelByName(name string, gamma float64, degree int, coef float64) (Kernel, error) {
	switch name {
	case "linear":
		return Linear{}, nil
	case "rbf":
		if gamma <= 0 {
			return nil, fmt.Errorf("svm: rbf gamma must be positive, got %v", gamma)
		}
		return RBF{Gamma: gamma}, nil
	case "poly":
		if degree < 1 {
			return nil, fmt.Errorf("svm: poly degree must be ≥1, got %d", degree)
		}
		return Poly{Degree: degree, Coef: coef}, nil
	default:
		return nil, fmt.Errorf("svm: unknown kernel %q", name)
	}
}
