package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: github.com/wsdetect/waldo/internal/dsp
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFFT256-8           	  299611	      3672 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	github.com/wsdetect/waldo/internal/dsp	2.465s
pkg: github.com/wsdetect/waldo/internal/core
BenchmarkBuildModelParallel/workers=auto-8 	      10	 104000000 ns/op	       8.00 gomaxprocs
PASS
ok  	github.com/wsdetect/waldo/internal/core	3.1s
`

func TestRunParsesBenchOutput(t *testing.T) {
	var buf bytes.Buffer
	sc := bufio.NewScanner(strings.NewReader(sampleOutput))
	if err := run(sc, json.NewEncoder(&buf)); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("header = %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %d, want 2", len(rep.Benchmarks))
	}
	fft := rep.Benchmarks[0]
	if fft.Name != "BenchmarkFFT256" || fft.Procs != 8 || fft.Iters != 299611 ||
		fft.NsPerOp != 3672 || fft.Metrics["allocs/op"] != 0 || fft.Metrics["B/op"] != 0 {
		t.Errorf("fft entry = %+v", fft)
	}
	if fft.Package != "github.com/wsdetect/waldo/internal/dsp" {
		t.Errorf("fft package = %q", fft.Package)
	}
	build := rep.Benchmarks[1]
	if build.Name != "BenchmarkBuildModelParallel/workers=auto" ||
		build.Metrics["gomaxprocs"] != 8 ||
		build.Package != "github.com/wsdetect/waldo/internal/core" {
		t.Errorf("build entry = %+v", build)
	}
}

func TestRunPropagatesFailure(t *testing.T) {
	sc := bufio.NewScanner(strings.NewReader("--- FAIL: BenchmarkX\nFAIL\n"))
	if err := run(sc, json.NewEncoder(&bytes.Buffer{})); err == nil {
		t.Error("FAIL in input must surface as an error")
	}
}

func TestRunParsesFractionalNsAndCustomMetrics(t *testing.T) {
	// Fast benchmarks report fractional ns/op, and harness benchmarks
	// attach custom b.ReportMetric units like readings/s; both must
	// survive the round-trip exactly.
	const input = `pkg: github.com/wsdetect/waldo/internal/wal
BenchmarkAppend-8   	 8213988	       0.8457 ns/op	  118236 readings/s	       3 B/op
PASS
`
	var buf bytes.Buffer
	sc := bufio.NewScanner(strings.NewReader(input))
	if err := run(sc, json.NewEncoder(&buf)); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 {
		t.Fatalf("benchmarks = %d, want 1", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.NsPerOp != 0.8457 {
		t.Errorf("ns/op = %v, want fractional 0.8457", b.NsPerOp)
	}
	if b.Metrics["readings/s"] != 118236 {
		t.Errorf("custom metric readings/s = %v, want 118236", b.Metrics["readings/s"])
	}
	if b.Metrics["B/op"] != 3 {
		t.Errorf("B/op = %v, want 3", b.Metrics["B/op"])
	}
}

func TestRunTracksPackagePerBenchmark(t *testing.T) {
	// Multi-package output: each benchmark must carry the pkg: line it
	// appeared under, not the last one seen overall.
	const input = `pkg: example.com/a
BenchmarkOne-4 	 100	 10.0 ns/op
pkg: example.com/b
BenchmarkTwo-4 	 100	 20.0 ns/op
`
	var buf bytes.Buffer
	sc := bufio.NewScanner(strings.NewReader(input))
	if err := run(sc, json.NewEncoder(&buf)); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %d, want 2", len(rep.Benchmarks))
	}
	if rep.Benchmarks[0].Package != "example.com/a" || rep.Benchmarks[1].Package != "example.com/b" {
		t.Errorf("packages = %q, %q", rep.Benchmarks[0].Package, rep.Benchmarks[1].Package)
	}
}

func TestRunRejectsMalformedBenchmarkLines(t *testing.T) {
	// A line that names a benchmark but doesn't parse is corrupt
	// output; the tool must exit non-zero, not skip the measurement.
	for _, input := range []string{
		"BenchmarkX notanint 5 ns/op\n",
		"BenchmarkY 100 garbage ns/op\n",
		"BenchmarkZ 100\n",
	} {
		sc := bufio.NewScanner(strings.NewReader(input))
		if err := run(sc, json.NewEncoder(&bytes.Buffer{})); err == nil {
			t.Errorf("run accepted malformed input %q", input)
		}
	}
}

func TestExtractE2EFlattensLatestRun(t *testing.T) {
	const traj = `{
	  "format": "bench_e2e/v1",
	  "runs": [
	    {"time": "old", "topologies": [{"topology": "single", "tiers": [
	      {"name": "1k", "endpoints": [{"endpoint": "model", "count": 10, "p99_seconds": 0.001}],
	       "gc": {"pause_count": 2, "pause_p99_seconds": 0.0001}}]}]},
	    {"time": "new", "topologies": [{"topology": "single", "tiers": [
	      {"name": "1k", "endpoints": [{"endpoint": "model", "count": 10, "p99_seconds": 0.002}],
	       "gc": {"pause_count": 2, "pause_p99_seconds": 0.0002}}]}]}
	  ]
	}`
	var out bytes.Buffer
	if err := extractE2E(strings.NewReader(traj), &out, -1); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	want := "e2e/single/1k/gc_pause/p99 200000\ne2e/single/1k/model/p99 2000000\n"
	if got != want {
		t.Errorf("latest run flatten:\ngot  %q\nwant %q", got, want)
	}
	out.Reset()
	if err := extractE2E(strings.NewReader(traj), &out, -2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "e2e/single/1k/model/p99 1000000") {
		t.Errorf("run -2 flatten = %q", out.String())
	}
	if err := extractE2E(strings.NewReader(traj), &bytes.Buffer{}, -3); err == nil {
		t.Error("out-of-range run index must error")
	}
	if err := extractE2E(strings.NewReader(`{"format":"bench/v0"}`), &bytes.Buffer{}, -1); err == nil {
		t.Error("wrong format must error")
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"",
		"random text",
		"Benchmark short",
		"BenchmarkX notanint 5 ns/op",
	} {
		if _, ok := parseLine(line, ""); ok {
			t.Errorf("parseLine(%q) accepted", line)
		}
	}
}
