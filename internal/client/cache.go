package client

import (
	"fmt"
	"time"

	"github.com/wsdetect/waldo/internal/core"
	"github.com/wsdetect/waldo/internal/geo"
	"github.com/wsdetect/waldo/internal/rfenv"
)

// DecisionCache implements the §5 scan-time optimization: "clearly vacant
// channels, with no operational station anywhere in the area, can be
// cached and not scanned by Waldo". A converged decision stays valid for a
// TTL and within a spatial radius; cached channels are skipped on the next
// duty cycle, cutting both air time and the 2-second 802.22 budget
// pressure.
type DecisionCache struct {
	// TTL is the maximum decision age; 0 means 10 minutes.
	TTL time.Duration
	// RadiusM is the maximum distance from the decision's location;
	// 0 means 1000 m (well within a locality).
	RadiusM float64
	// Now is the clock; nil means time.Now (injectable for tests).
	Now func() time.Time

	entries map[rfenv.Channel]cachedDecision
}

type cachedDecision struct {
	loc geo.Point
	dec core.Decision
	at  time.Time
}

func (c *DecisionCache) defaults() {
	if c.TTL == 0 {
		c.TTL = 10 * time.Minute
	}
	if c.RadiusM == 0 {
		c.RadiusM = 1000
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.entries == nil {
		c.entries = make(map[rfenv.Channel]cachedDecision)
	}
}

// Put stores a decision for reuse. Only converged decisions are cached:
// non-converged fallbacks are conservative guesses, not facts worth
// remembering.
func (c *DecisionCache) Put(ch rfenv.Channel, loc geo.Point, dec core.Decision) {
	c.defaults()
	if !dec.Converged {
		return
	}
	c.entries[ch] = cachedDecision{loc: loc, dec: dec, at: c.Now()}
}

// Get returns a still-valid cached decision for ch at loc.
func (c *DecisionCache) Get(ch rfenv.Channel, loc geo.Point) (core.Decision, bool) {
	c.defaults()
	e, ok := c.entries[ch]
	if !ok {
		return core.Decision{}, false
	}
	if c.Now().Sub(e.at) > c.TTL {
		delete(c.entries, ch)
		return core.Decision{}, false
	}
	if e.loc.DistanceM(loc) > c.RadiusM {
		return core.Decision{}, false
	}
	return e.dec, true
}

// Len returns the number of cached channels (including possibly expired
// entries not yet evicted).
func (c *DecisionCache) Len() int { return len(c.entries) }

// Invalidate drops one channel's entry.
func (c *DecisionCache) Invalidate(ch rfenv.Channel) {
	if c.entries != nil {
		delete(c.entries, ch)
	}
}

// ScanCached behaves like Scan but serves fresh nearby decisions from the
// cache, sensing only the channels that need it, and caches the new
// converged decisions.
func (w *WSD) ScanCached(loc geo.Point, cache *DecisionCache) (ScanResult, error) {
	if cache == nil {
		return ScanResult{}, fmt.Errorf("client: nil decision cache")
	}
	cache.defaults()
	var res ScanResult
	chs := make([]rfenv.Channel, 0, len(w.Models))
	for ch := range w.Models {
		chs = append(chs, ch)
	}
	for i := 1; i < len(chs); i++ {
		for j := i; j > 0 && chs[j] < chs[j-1]; j-- {
			chs[j], chs[j-1] = chs[j-1], chs[j]
		}
	}
	for _, ch := range chs {
		if dec, ok := cache.Get(ch, loc); ok {
			res.Channels = append(res.Channels, ChannelScan{Channel: ch, Decision: dec})
			continue
		}
		cs, err := w.SenseChannel(ch, loc)
		if err != nil {
			return ScanResult{}, err
		}
		cache.Put(ch, loc, cs.Decision)
		res.Channels = append(res.Channels, cs)
		res.AirTime += cs.AirTime
		res.CPUTime += cs.CPUTime
	}
	return res, nil
}
