package wal

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/telemetry"
)

// copyStoreDir clones a store directory so destructive mutations (torn
// tails, bit flips) run against a scratch copy.
func copyStoreDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	names, err := (OSFS{}).ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(src, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// buildStore writes nBatches single-reading batches and syncs, returning
// the store directory (closed, crash-shaped).
func buildStore(t *testing.T, nBatches int) string {
	t.Helper()
	dir := t.TempDir()
	s, _ := openTestStore(t, dir, nil)
	for i := 0; i < nBatches; i++ {
		s.AppendReadings(context.Background(), testReadings(i, 1))
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestTornWriteEveryOffset is the exhaustive torn-tail property: cutting
// the segment at EVERY byte offset inside the final record must recover
// all earlier records, report (and truncate) the torn tail, and never
// error. Cutting exactly at the record boundary is a clean log.
func TestTornWriteEveryOffset(t *testing.T) {
	const nBatches = 4
	src := buildStore(t, nBatches)
	seg := filepath.Join(src, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	recSize := len(data) / nBatches
	if len(data)%nBatches != 0 {
		t.Fatalf("segment %d bytes not divisible into %d equal records", len(data), nBatches)
	}
	boundary := len(data) - recSize // last intact boundary once torn

	for cut := boundary; cut <= len(data); cut++ {
		dir := copyStoreDir(t, src)
		path := filepath.Join(dir, segName(1))
		if err := os.Truncate(path, int64(cut)); err != nil {
			t.Fatal(err)
		}
		s, rec, err := OpenStore(dir, testCh, testKind, StoreOptions{})
		if err != nil {
			t.Fatalf("cut=%d: OpenStore: %v", cut, err)
		}
		wantTorn := cut != boundary && cut != len(data)
		wantReadings := nBatches - 1
		if cut == len(data) {
			wantReadings = nBatches
		}
		if rec.Stats.TornTail != wantTorn {
			t.Errorf("cut=%d: TornTail=%v, want %v", cut, rec.Stats.TornTail, wantTorn)
		}
		if len(rec.Readings) != wantReadings {
			t.Errorf("cut=%d: recovered %d readings, want %d", cut, len(rec.Readings), wantReadings)
		}
		if !reflect.DeepEqual(rec.Readings, testReadings(0, wantReadings)) {
			t.Errorf("cut=%d: recovered readings differ from the intact prefix", cut)
		}
		s.Close()

		// Truncation must have restored the boundary: reopening is clean.
		if wantTorn {
			st, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if st.Size() != int64(boundary) {
				t.Errorf("cut=%d: file is %d bytes after recovery, want %d", cut, st.Size(), boundary)
			}
			s2, rec2, err := OpenStore(dir, testCh, testKind, StoreOptions{})
			if err != nil {
				t.Fatalf("cut=%d: second OpenStore: %v", cut, err)
			}
			if rec2.Stats.TornTail {
				t.Errorf("cut=%d: torn tail reported again on a truncated log", cut)
			}
			s2.Close()
		}
	}
}

// TestCorruptCRCEveryRecord flips one payload byte in each record in
// turn: recovery must reject the record (counted, no panic) and stop
// with an error locating it — even in the final segment, because a
// complete record with a bad CRC is corruption, not a torn write.
func TestCorruptCRCEveryRecord(t *testing.T) {
	const nBatches = 4
	src := buildStore(t, nBatches)
	data, err := os.ReadFile(filepath.Join(src, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	recSize := len(data) / nBatches

	for i := 0; i < nBatches; i++ {
		dir := copyStoreDir(t, src)
		path := filepath.Join(dir, segName(1))
		mut := append([]byte(nil), data...)
		mut[i*recSize+recordHeader] ^= 0x01 // first payload byte of record i
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		reg := telemetry.New()
		_, _, err := OpenStore(dir, testCh, testKind, StoreOptions{Metrics: reg})
		if err == nil {
			t.Fatalf("record %d: corrupt CRC accepted", i)
		}
		scope := fmt.Sprintf("%d/%d", int(testCh), int(testKind))
		if v := reg.Counter("waldo_wal_replay_corrupt_total", "", "store", scope).Value(); v != 1 {
			t.Errorf("record %d: waldo_wal_replay_corrupt_total = %d, want 1", i, v)
		}
	}
}

// TestRandomAppendCrashReplay drives a store through seeded random
// sequences of appends, retrains, and checkpoints, then crashes it with
// a random torn in-flight frame appended past the durable tail. Recovery
// must reproduce exactly the synced state, every time.
func TestRandomAppendCrashReplay(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			s, _ := openTestStore(t, dir, nil)

			var (
				want        []dataset.Reading
				wantVersion int
				wantTrained int
				seq         int
			)
			ops := 10 + rng.Intn(20)
			for i := 0; i < ops; i++ {
				switch rng.Intn(5) {
				case 0, 1, 2: // append a batch
					n := 1 + rng.Intn(5)
					rs := testReadings(seq, n)
					seq += n
					s.AppendReadings(context.Background(), rs)
					want = append(want, rs...)
				case 3: // retrain marker over the current store
					wantVersion++
					wantTrained = len(want)
					s.RecordRetrain(context.Background(), wantVersion, wantTrained)
				case 4: // snapshot compaction
					epoch, err := s.BeginCheckpoint()
					if err != nil {
						t.Fatal(err)
					}
					if err := s.CompleteCheckpoint(epoch, append([]dataset.Reading(nil), want...), wantVersion, wantTrained); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := s.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			// Crash with a torn in-flight record: a random prefix of a
			// valid frame lands after the durable tail.
			var topSeg string
			names, err := (OSFS{}).ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			var topEpoch uint64
			for _, name := range names {
				if e, ok := parseSegName(name); ok && e >= topEpoch {
					topEpoch, topSeg = e, name
				}
			}
			torn := false
			if rng.Intn(2) == 0 {
				full := frame(buildAppendPayload(testReadings(seq, 1+rng.Intn(3))))
				cut := 1 + rng.Intn(len(full)-1)
				f, err := os.OpenFile(filepath.Join(dir, topSeg), os.O_WRONLY|os.O_APPEND, 0)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.Write(full[:cut]); err != nil {
					t.Fatal(err)
				}
				f.Close()
				torn = true
			}

			s2, rec, err := OpenStore(dir, testCh, testKind, StoreOptions{})
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			defer s2.Close()
			if len(rec.Readings) != len(want) || (len(want) > 0 && !reflect.DeepEqual(rec.Readings, want)) {
				t.Errorf("recovered %d readings, want %d", len(rec.Readings), len(want))
			}
			if rec.ModelVersion != wantVersion || rec.TrainedCount != wantTrained {
				t.Errorf("recovered model v%d/%d, want v%d/%d",
					rec.ModelVersion, rec.TrainedCount, wantVersion, wantTrained)
			}
			if rec.Stats.TornTail != torn {
				t.Errorf("TornTail=%v, want %v", rec.Stats.TornTail, torn)
			}
		})
	}
}
