// Package dsp implements the signal-processing primitives the Waldo
// pipeline needs: a radix-2 FFT, window functions, summary statistics,
// percentile and confidence-interval machinery, empirical CDFs, and the
// special functions backing ANOVA p-values.
//
// Everything is deterministic and allocation-conscious: feature extraction
// runs once per I/Q capture on the mobile white-space device, so the FFT and
// statistics here are the per-reading hot path (paper §5 measures this cost
// as CPU overhead).
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
)

// FFT computes the in-place radix-2 decimation-in-time FFT of x.
// len(x) must be a power of two. The transform is unnormalized
// (X[k] = Σ x[n]·e^{-2πi kn/N}).
func FFT(x []complex128) error {
	return fft(x, false)
}

// IFFT computes the in-place inverse FFT of x, normalized by 1/N so that
// IFFT(FFT(x)) == x. len(x) must be a power of two.
func IFFT(x []complex128) error {
	if err := fft(x, true); err != nil {
		return err
	}
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
	return nil
}

// twiddleTables caches the forward twiddle factors e^{-2πi k/n} for
// k < n/2, one table per power-of-two size, indexed by log2(n). Feature
// extraction runs one FFT per capture on the mobile hot path, so the
// tables are computed once per process and looked up lock- and
// allocation-free afterwards (the inverse transform conjugates on the
// fly). Direct evaluation per index is also more accurate than the
// historical incremental w *= wStep recurrence, which accumulated
// rounding error across each butterfly group.
var twiddleTables [64]atomic.Pointer[[]complex128]

func twiddles(n int) []complex128 {
	idx := bits.TrailingZeros(uint(n))
	if p := twiddleTables[idx].Load(); p != nil {
		return *p
	}
	t := make([]complex128, n/2)
	for k := range t {
		ang := -2 * math.Pi * float64(k) / float64(n)
		t[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	twiddleTables[idx].Store(&t)
	return t
}

func fft(x []complex128, inverse bool) error {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) != 0 {
		return fmt.Errorf("dsp: FFT length %d is not a power of two", n)
	}

	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}

	tw := twiddles(n)
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		stride := n / size
		for start := 0; start < n; start += size {
			for j := 0; j < half; j++ {
				w := tw[j*stride]
				if inverse {
					w = complex(real(w), -imag(w))
				}
				k := start + j
				u := x[k]
				v := x[k+half] * w
				x[k] = u + v
				x[k+half] = u - v
			}
		}
	}
	return nil
}

// fftScratch pools FFT work buffers for PowerSpectrumInto: feature
// extraction runs once per capture, and without the pool every capture
// paid a []complex128 allocation.
var fftScratch = sync.Pool{New: func() any { return new([]complex128) }}

// PowerSpectrum returns the per-bin power |X[k]|²/N² of the FFT of x,
// leaving x untouched. Bins are returned in standard FFT order (DC first).
func PowerSpectrum(x []complex128) ([]float64, error) {
	ps := make([]float64, len(x))
	if err := PowerSpectrumInto(ps, x); err != nil {
		return nil, err
	}
	return ps, nil
}

// PowerSpectrumInto computes the power spectrum of x into dst, which must
// have the same length, leaving x untouched. It allocates nothing in
// steady state: the FFT work buffer comes from a pool and the twiddle
// factors from the per-size cache.
func PowerSpectrumInto(dst []float64, x []complex128) error {
	if len(dst) != len(x) {
		return fmt.Errorf("dsp: power spectrum into %d bins for %d samples", len(dst), len(x))
	}
	bufp := fftScratch.Get().(*[]complex128)
	if cap(*bufp) < len(x) {
		*bufp = make([]complex128, len(x))
	}
	buf := (*bufp)[:len(x)]
	copy(buf, x)
	err := FFT(buf)
	if err == nil {
		n := float64(len(x))
		for i, c := range buf {
			re, im := real(c), imag(c)
			dst[i] = (re*re + im*im) / (n * n)
		}
	}
	fftScratch.Put(bufp)
	return err
}

// FFTShift reorders a spectrum so that DC sits at the center bin, the usual
// presentation for baseband captures where the channel center (and the ATSC
// pilot offset) is referenced to the middle of the band.
func FFTShift(ps []float64) []float64 {
	n := len(ps)
	out := make([]float64, n)
	half := (n + 1) / 2
	copy(out, ps[half:])
	copy(out[n-half:], ps[:half])
	return out
}
