package telemetry

import (
	"testing"
)

// The instrumentation budget: counters and histograms stay on by default
// in the dbserver request path and the detector loop, so the per-op cost
// must stay well under ~100 ns (see package comment). Run with:
//
//	go test -bench . -benchmem ./internal/telemetry/
func BenchmarkCounterInc(b *testing.B) {
	r := New()
	c := r.Counter("bench_ops_total", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	r := New()
	c := r.Counter("bench_ops_total", "")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkGaugeSet(b *testing.B) {
	r := New()
	g := r.Gauge("bench_level", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := New()
	h := r.Histogram("bench_lat_seconds", "", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-4)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	r := New()
	h := r.Histogram("bench_lat_seconds", "", nil)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.Observe(float64(i%1000) * 1e-4)
			i++
		}
	})
}

// BenchmarkCounterLookup measures the anti-pattern (per-op registry
// lookup) to document why handles should be held.
func BenchmarkCounterLookup(b *testing.B) {
	r := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Counter("bench_ops_total", "", "route", "/v1/model").Inc()
	}
}

func BenchmarkNilCounterInc(b *testing.B) {
	var c *Counter
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
