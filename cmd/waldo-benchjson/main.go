// Command waldo-benchjson converts `go test -bench` text output on stdin
// into a JSON benchmark report on stdout, so `make bench` can publish a
// machine-readable BENCH_<n>.json artifact without external tooling.
//
// Usage:
//
//	go test -bench . -benchmem ./... | waldo-benchjson > BENCH_2.json
//
// Each benchmark result line
//
//	BenchmarkFoo/sub-8   1000  1234 ns/op  56 B/op  7 allocs/op  9.0 extra/unit
//
// becomes one entry carrying the name (GOMAXPROCS suffix stripped),
// iteration count, ns/op, and any further metric pairs keyed by unit
// (bytes/op and allocs/op from -benchmem, plus custom b.ReportMetric
// units). Context lines (goos, goarch, pkg, cpu) are captured into the
// report header; non-benchmark lines are passed through untouched to
// stderr so failures stay visible. A line that looks like a benchmark
// result but does not parse fails the run — a silently skipped
// measurement would let a regression gate pass vacuously.
//
// -extract-e2e switches input format: stdin is a BENCH_E2E.json
// trajectory (internal/benchharness) and stdout gets flattened
// "key value-in-ns" lines for one run (-run selects which; negative
// counts from the latest), the surface scripts/bench_regress.sh diffs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/wsdetect/waldo/internal/benchharness"
)

// Result is one benchmark measurement.
type Result struct {
	Name string `json:"name"`
	// Package is the most recent "pkg:" context line.
	Package string  `json:"package,omitempty"`
	Procs   int     `json:"procs,omitempty"`
	Iters   int64   `json:"iterations"`
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds the remaining value/unit pairs (e.g. "B/op",
	// "allocs/op", "retrains/s").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the full run.
type Report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// parseLine parses one "Benchmark..." result line; ok is false for
// context and failure lines.
func parseLine(line, pkg string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	name := fields[0]
	procs := 0
	// Strip the trailing -GOMAXPROCS suffix go test appends.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			name, procs = name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Package: pkg, Procs: procs, Iters: iters}
	// The rest are value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			r.NsPerOp = v
			continue
		}
		if r.Metrics == nil {
			r.Metrics = make(map[string]float64)
		}
		r.Metrics[unit] = v
	}
	return r, true
}

func run(in *bufio.Scanner, out *json.Encoder) error {
	var rep Report
	var pkg string
	failed := false
	for in.Scan() {
		line := in.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "FAIL"):
			failed = true
			fmt.Fprintln(os.Stderr, line)
		default:
			if r, ok := parseLine(line, pkg); ok {
				rep.Benchmarks = append(rep.Benchmarks, r)
				continue
			}
			// A multi-field line named Benchmark* is a result line that
			// failed to parse — corrupt output, never a context line.
			// Erroring here keeps a truncated bench run from publishing
			// a report that silently misses the mangled measurements.
			if fields := strings.Fields(line); len(fields) >= 2 && strings.HasPrefix(fields[0], "Benchmark") {
				return fmt.Errorf("malformed benchmark line: %q", line)
			}
			if strings.TrimSpace(line) != "" &&
				!strings.HasPrefix(line, "PASS") && !strings.HasPrefix(line, "ok") {
				fmt.Fprintln(os.Stderr, line)
			}
		}
	}
	if err := in.Err(); err != nil {
		return err
	}
	if err := out.Encode(rep); err != nil {
		return err
	}
	if failed {
		return fmt.Errorf("benchmark run reported FAIL")
	}
	return nil
}

// extractE2E flattens one run of a BENCH_E2E.json trajectory into the
// sorted "key value-in-ns" lines the regression gate diffs.
func extractE2E(in io.Reader, out io.Writer, runIdx int) error {
	data, err := io.ReadAll(in)
	if err != nil {
		return err
	}
	var traj benchharness.Trajectory
	if err := json.Unmarshal(data, &traj); err != nil {
		return fmt.Errorf("parse trajectory: %w", err)
	}
	if traj.Format != benchharness.TrajectoryFormat {
		return fmt.Errorf("input format %q is not %q", traj.Format, benchharness.TrajectoryFormat)
	}
	flat, err := traj.Flatten(runIdx)
	if err != nil {
		return err
	}
	_, err = io.WriteString(out, flat)
	return err
}

func main() {
	extract := flag.Bool("extract-e2e", false,
		"treat stdin as a BENCH_E2E.json trajectory and emit one run's flattened gate keys")
	runIdx := flag.Int("run", -1,
		"with -extract-e2e: the trajectory run to flatten (negative counts from the latest)")
	flag.Parse()
	if *extract {
		if err := extractE2E(os.Stdin, os.Stdout, *runIdx); err != nil {
			fmt.Fprintln(os.Stderr, "waldo-benchjson:", err)
			os.Exit(1)
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := run(sc, enc); err != nil {
		fmt.Fprintln(os.Stderr, "waldo-benchjson:", err)
		os.Exit(1)
	}
}
