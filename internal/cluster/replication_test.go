package cluster

import (
	"bytes"
	"context"
	"encoding/json"

	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/wsdetect/waldo/internal/core"
	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/dbserver"
	"github.com/wsdetect/waldo/internal/features"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
)

// synthReadings generates a classifiable corpus: strong signal east of
// the metro center, noise west, like the dbserver tests.
func synthReadings(n int, ch rfenv.Channel, seed int64) []dataset.Reading {
	rng := rand.New(rand.NewSource(seed))
	origin := rfenv.MetroCenter
	out := make([]dataset.Reading, 0, n)
	for i := 0; i < n; i++ {
		loc := origin.Offset(rng.Float64()*360, rng.Float64()*10000)
		rss := -100.0
		if loc.Lon > origin.Lon {
			rss = -70
		}
		out = append(out, dataset.Reading{
			Seq: i, Loc: loc, Channel: ch, Sensor: sensor.KindRTLSDR,
			Signal: features.Signal{RSSdBm: rss, CFTdB: rss - 11.3, AFTdB: rss - 13},
		})
	}
	return out
}

func uploadBody(t testing.TB, rs []dataset.Reading) []byte {
	t.Helper()
	up := dbserver.UploadJSON{CISpanDB: 0.4}
	for _, r := range rs {
		up.Readings = append(up.Readings, dbserver.FromReading(r))
	}
	body, err := json.Marshal(up)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func mustPost(t testing.TB, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func mustGetBody(t testing.TB, url string, wantStatus int) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d (%s)", url, resp.StatusCode, wantStatus, data)
	}
	return data
}

// newTestNode opens a Node around a fresh in-memory dbserver and serves
// it.
func newTestNode(t testing.TB, id string, replicaURLs []string) (*Node, *httptest.Server) {
	t.Helper()
	n, err := OpenNode(NodeConfig{
		ID: id,
		DB: dbserver.Config{
			Constructor: core.ConstructorConfig{Classifier: core.KindNB},
		},
		ReplicaURLs:  replicaURLs,
		ShipInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(n.Handler())
	t.Cleanup(func() {
		ts.Close()
		n.Close()
	})
	return n, ts
}

// TestFrameRoundTrip pins the replication wire format: append and
// retrain frames survive encode→decode bit-exactly, including when
// concatenated in one exchange body.
func TestFrameRoundTrip(t *testing.T) {
	rs := synthReadings(7, 47, 3)
	recs := []replRecord{
		{kind: frameAppend, ch: 47, sensor: sensor.KindRTLSDR, readings: rs},
		{kind: frameRetrain, ch: 47, sensor: sensor.KindRTLSDR, version: 9, trained: 607},
	}
	var body []byte
	for i := range recs {
		body = appendFrame(body, uint64(i)+1, &recs[i])
	}
	for i := range recs {
		seq, got, rest, err := decodeFrame(body)
		if err != nil {
			t.Fatal(err)
		}
		body = rest
		if seq != uint64(i)+1 {
			t.Errorf("frame %d: seq %d", i, seq)
		}
		if !reflect.DeepEqual(got, recs[i]) {
			t.Errorf("frame %d: decoded %+v, want %+v", i, got, recs[i])
		}
	}
	if len(body) != 0 {
		t.Errorf("%d bytes left after decoding all frames", len(body))
	}
	if _, _, _, err := decodeFrame([]byte{1, 2, 3}); err == nil {
		t.Error("truncated frame decoded without error")
	}
}

// TestReplicationPair is the core byte-identity claim: drive a primary
// through its public HTTP API (uploads + retrain), drain the shipper,
// and the replica must serve the byte-identical model descriptor and the
// identical reading corpus.
func TestReplicationPair(t *testing.T) {
	_, replicaTS := newTestNode(t, "s0-replica", nil)
	primary, primaryTS := newTestNode(t, "s0", []string{replicaTS.URL})

	for i := 0; i < 4; i++ {
		resp := mustPost(t, primaryTS.URL+"/v1/readings", uploadBody(t, synthReadings(200, 47, int64(i))))
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("upload %d = %s", i, resp.Status)
		}
	}
	resp := mustPost(t, primaryTS.URL+"/v1/retrain?channel=47&sensor=1", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retrain = %s", resp.Status)
	}
	// One more batch after the retrain: the replica must land it after
	// the version bump, exactly like the primary did.
	resp = mustPost(t, primaryTS.URL+"/v1/readings", uploadBody(t, synthReadings(50, 47, 99)))
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("post-retrain upload = %s", resp.Status)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := primary.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{"/v1/model?channel=47&sensor=1", "/v1/export?channel=47&sensor=1"} {
		p := mustGetBody(t, primaryTS.URL+path, http.StatusOK)
		r := mustGetBody(t, replicaTS.URL+path, http.StatusOK)
		if !bytes.Equal(p, r) {
			t.Errorf("%s: primary (%d bytes) and replica (%d bytes) differ", path, len(p), len(r))
		}
	}
	var st nodeStatus
	if err := json.Unmarshal(mustGetBody(t, replicaTS.URL+"/v1/repl/status", http.StatusOK), &st); err != nil {
		t.Fatal(err)
	}
	if st.Applied != 6 { // 5 uploads + 1 retrain
		t.Errorf("replica applied %d frames, want 6", st.Applied)
	}
	if lag := primary.ReplicationLag(); lag != 0 {
		t.Errorf("lag after drain = %d", lag)
	}
}

// TestApplyIdempotencyAndGap pins the replica apply contract: re-sent
// frames are skipped without effect, and a sequence gap is refused with
// 409 plus the replica's high-water mark so the primary can re-ship.
func TestApplyIdempotencyAndGap(t *testing.T) {
	_, ts := newTestNode(t, "solo", nil)
	rs := synthReadings(10, 47, 5)
	var body []byte
	body = appendFrame(body, 1, &replRecord{kind: frameAppend, ch: 47, sensor: sensor.KindRTLSDR, readings: rs[:5]})
	body = appendFrame(body, 2, &replRecord{kind: frameAppend, ch: 47, sensor: sensor.KindRTLSDR, readings: rs[5:]})

	apply := func(b []byte) (int, applyStatus) {
		resp := mustPost(t, ts.URL+"/v1/repl/apply", b)
		defer resp.Body.Close()
		var st applyStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, st
	}

	if code, st := apply(body); code != http.StatusOK || st.Applied != 2 {
		t.Fatalf("first apply: %d, applied %d", code, st.Applied)
	}
	if code, st := apply(body); code != http.StatusOK || st.Applied != 2 {
		t.Fatalf("replayed apply: %d, applied %d (want idempotent skip)", code, st.Applied)
	}
	if got := len(bytes.Split(bytes.TrimSpace(mustGetBody(t, ts.URL+"/v1/export?channel=47&sensor=1", http.StatusOK)), []byte("\n"))); got != len(rs)+1 {
		t.Errorf("store holds %d CSV lines, want %d readings + header", got, len(rs))
	}

	gap := appendFrame(nil, 9, &replRecord{kind: frameAppend, ch: 47, sensor: sensor.KindRTLSDR, readings: rs[:1]})
	if code, st := apply(gap); code != http.StatusConflict || st.Applied != 2 {
		t.Fatalf("gap apply: %d, applied %d (want 409 with mark 2)", code, st.Applied)
	}
}

// TestReplicatorCatchesUpAfterOutage: a replica that comes back after
// refusing traffic receives the backlog from its last confirmed mark.
func TestReplicatorCatchesUpAfterOutage(t *testing.T) {
	replicaNode, replicaTS := newTestNode(t, "r", nil)
	gate := &gatedHandler{next: replicaNode.Handler()}
	gatedTS := httptest.NewServer(gate)
	defer gatedTS.Close()
	_ = replicaTS

	primary, primaryTS := newTestNode(t, "p", []string{gatedTS.URL})

	gate.setDown(true)
	resp := mustPost(t, primaryTS.URL+"/v1/readings", uploadBody(t, synthReadings(100, 47, 1)))
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("upload = %s", resp.Status)
	}
	// The replica is down; the primary must keep serving and accrue lag.
	deadline := time.Now().Add(5 * time.Second)
	for primary.ReplicationLag() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if primary.ReplicationLag() == 0 {
		t.Fatal("no replication lag while replica is down")
	}
	gate.setDown(false)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := primary.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	p := mustGetBody(t, primaryTS.URL+"/v1/export?channel=47&sensor=1", http.StatusOK)
	r := mustGetBody(t, replicaTS.URL+"/v1/export?channel=47&sensor=1", http.StatusOK)
	if !bytes.Equal(p, r) {
		t.Error("replica did not catch up to primary after outage")
	}
}

// gatedHandler simulates a replica outage by refusing requests at the
// HTTP layer.
type gatedHandler struct {
	mu   sync.Mutex
	down bool
	next http.Handler
}

func (g *gatedHandler) setDown(v bool) {
	g.mu.Lock()
	g.down = v
	g.mu.Unlock()
}

func (g *gatedHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mu.Lock()
	down := g.down
	g.mu.Unlock()
	if down {
		http.Error(w, "gate closed", http.StatusServiceUnavailable)
		return
	}
	g.next.ServeHTTP(w, r)
}
