// Package telemetry is Waldo's dependency-free metrics and tracing
// subsystem. The ROADMAP's production-scale spectrum database is an
// always-on service (paper §6 frames Waldo as a "continuous realtime
// stream of spectrum scans"), so its ingest and query paths must be
// observable before they can be scaled: this package provides a
// concurrent registry of counters, gauges, and histograms, Prometheus
// text exposition, and a lightweight span hook for timing nested
// operations (model build, clustering, classification, upload screening).
//
// Design constraints:
//
//   - Stdlib only — the repo bakes in no third-party modules.
//   - Cheap enough to stay on by default: counters and gauges are a
//     single atomic op, histograms take one short mutex-protected pass
//     (see bench_test.go; the budget is < ~100 ns/op).
//   - Nil-safe: every method on a nil *Registry, *Counter, *Gauge,
//     *Histogram, or *Span is a no-op, so instrumented code never
//     branches on "is telemetry enabled".
//
// Handles are meant to be looked up once and held: Registry lookups take
// a lock and build label keys; Inc/Set/Observe on the returned handle is
// the hot path.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric (requests served, uploads
// rejected). The zero value is ready to use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down (in-flight requests, store
// size). The zero value is ready to use and reads 0.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add applies a delta (negative to decrement).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram records a distribution into fixed cumulative buckets
// (Prometheus semantics: bucket i counts observations ≤ Bounds[i], with a
// final +Inf bucket). One mutex per histogram keeps Observe short and
// uncontended across distinct metrics.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; last is +Inf
	count  uint64
	sum    float64
	min    float64
	max    float64
	// exemplars holds the most recent traced observation per bucket
	// (lazily allocated on the first ObserveWithExemplar), linking
	// /metrics latency buckets to trace IDs in the flight recorder.
	exemplars []Exemplar
}

// Exemplar links one bucket of a histogram to a recently observed traced
// request: its value, the trace ID to look up in /debug/traces, and the
// observation time.
type Exemplar struct {
	Value   float64
	TraceID TraceID
	When    time.Time
}

// DefLatencyBuckets covers 100 µs – ~100 s in quarter-decade steps, wide
// enough for both HTTP round trips and multi-second model rebuilds.
var DefLatencyBuckets = ExpBuckets(100e-6, math.Sqrt(math.Sqrt(10)), 24)

// DefCountBuckets covers 1 – 4096 in powers of two (stream lengths,
// batch sizes).
var DefCountBuckets = ExpBuckets(1, 2, 13)

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start and growing by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		return nil
	}
	bs := make([]float64, n)
	v := start
	for i := range bs {
		bs[i] = v
		v *= factor
	}
	return bs
}

// LinearBuckets returns n linearly spaced bucket bounds.
func LinearBuckets(start, width float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	bs := make([]float64, n)
	for i := range bs {
		bs[i] = start + float64(i)*width
	}
	return bs
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]uint64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search outside the lock: bounds are immutable.
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if h.count == 1 || v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// ObserveWithExemplar records one value and remembers (value, trace,
// when) as the containing bucket's exemplar, so a p99 bucket in /metrics
// names a concrete trace to pull from the flight recorder. Same single
// short critical section as Observe.
func (h *Histogram) ObserveWithExemplar(v float64, trace TraceID, when time.Time) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if h.count == 1 || v > h.max {
		h.max = v
	}
	if h.exemplars == nil {
		h.exemplars = make([]Exemplar, len(h.counts))
	}
	h.exemplars[i] = Exemplar{Value: v, TraceID: trace, When: when}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Snapshot returns a consistent copy of the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Bounds:    h.bounds, // immutable after construction
		Counts:    append([]uint64(nil), h.counts...),
		Count:     h.count,
		Sum:       h.sum,
		Min:       h.min,
		Max:       h.max,
		Exemplars: append([]Exemplar(nil), h.exemplars...),
	}
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts[i] is the number of
	// observations in (Bounds[i-1], Bounds[i]], with Counts[len(Bounds)]
	// the +Inf bucket.
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
	Min    float64
	Max    float64
	// Exemplars, when non-empty, holds one exemplar per bucket (zero
	// entries for buckets that never saw a traced observation).
	Exemplars []Exemplar
}

// Mean returns the average observation (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the containing bucket, clamped to the observed min/max so thin
// tails don't report a bucket bound nothing reached.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || math.IsNaN(q) {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		next := cum + float64(c)
		if next >= rank && c > 0 {
			var lo, hi float64
			if i == 0 {
				lo, hi = s.Min, s.Bounds[0]
			} else if i == len(s.Bounds) {
				lo, hi = s.Bounds[len(s.Bounds)-1], s.Max
			} else {
				lo, hi = s.Bounds[i-1], s.Bounds[i]
			}
			lo = math.Max(lo, s.Min)
			hi = math.Min(hi, s.Max)
			if hi <= lo {
				return hi
			}
			frac := (rank - cum) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return s.Max
}

type metricType int

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	case typeHistogram:
		return "histogram"
	}
	return "untyped"
}

// family is all instances of one metric name across label values.
type family struct {
	name       string
	help       string
	typ        metricType
	labelNames []string
	bounds     []float64 // histograms only

	mu        sync.Mutex
	instances map[string]any // label-value key → *Counter | *Gauge | *Histogram
}

// Registry is a concurrent collection of metric families. The zero value
// is not usable; call New. All methods are safe for concurrent use, and
// all methods on a nil *Registry are no-ops returning nil handles (whose
// methods are in turn no-ops).
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family

	spanHook atomic.Value // func(name string, seconds float64)

	// spanRoots interns root span paths → *spanNode (see trace.go), so
	// the span hot path never rebuilds strings or re-walks families.
	spanRoots sync.Map

	// recorder is the flight recorder traces started through this
	// registry report to (see recorder.go); nil disables retention
	// without disabling trace propagation.
	recorder atomic.Pointer[Recorder]
}

// SetFlightRecorder attaches a flight recorder: every trace started via
// StartTrace on this registry is offered to it on completion. Pass nil
// to detach.
func (r *Registry) SetFlightRecorder(rec *Recorder) {
	if r == nil {
		return
	}
	r.recorder.Store(rec)
}

// FlightRecorder returns the attached flight recorder, or nil.
func (r *Registry) FlightRecorder() *Recorder {
	if r == nil {
		return nil
	}
	return r.recorder.Load()
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = New()

// Default returns the process-wide registry used when instrumented
// components are not handed an explicit one.
func Default() *Registry { return defaultRegistry }

// labels must be alternating name, value pairs; returns names, values.
func splitLabels(labels []string) ([]string, []string) {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("telemetry: odd label list %q", labels))
	}
	n := len(labels) / 2
	names := make([]string, n)
	values := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = labels[2*i]
		values[i] = labels[2*i+1]
	}
	return names, values
}

func instanceKey(values []string) string {
	return strings.Join(values, "\x00")
}

// lookup finds or creates a family, checking type/label consistency.
func (r *Registry) lookup(name, help string, typ metricType, labelNames []string, bounds []float64) *family {
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		f, ok = r.families[name]
		if !ok {
			f = &family{
				name:       name,
				help:       help,
				typ:        typ,
				labelNames: append([]string(nil), labelNames...),
				bounds:     append([]float64(nil), bounds...),
				instances:  make(map[string]any),
			}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: %s registered as %v, requested as %v", name, f.typ, typ))
	}
	if len(f.labelNames) != len(labelNames) {
		panic(fmt.Sprintf("telemetry: %s registered with labels %v, requested with %v",
			name, f.labelNames, labelNames))
	}
	for i := range labelNames {
		if f.labelNames[i] != labelNames[i] {
			panic(fmt.Sprintf("telemetry: %s registered with labels %v, requested with %v",
				name, f.labelNames, labelNames))
		}
	}
	return f
}

// Counter returns (creating on first use) the counter for name and the
// given alternating label name/value pairs. Hold the returned handle;
// don't re-look it up per increment.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	names, values := splitLabels(labels)
	f := r.lookup(name, help, typeCounter, names, nil)
	key := instanceKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.instances[key]; ok {
		return m.(*Counter)
	}
	c := &Counter{}
	f.instances[key] = c
	return c
}

// Gauge returns (creating on first use) the gauge for name and labels.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	names, values := splitLabels(labels)
	f := r.lookup(name, help, typeGauge, names, nil)
	key := instanceKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.instances[key]; ok {
		return m.(*Gauge)
	}
	g := &Gauge{}
	f.instances[key] = g
	return g
}

// Histogram returns (creating on first use) the histogram for name and
// labels. bounds applies on first registration of the family (nil means
// DefLatencyBuckets); later calls reuse the registered bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	names, values := splitLabels(labels)
	f := r.lookup(name, help, typeHistogram, names, bounds)
	key := instanceKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.instances[key]; ok {
		return m.(*Histogram)
	}
	h := newHistogram(f.bounds)
	f.instances[key] = h
	return h
}

// Each calls fn for every metric instance, sorted by family name then
// label values. The values passed are live handles; read them with
// Value/Snapshot.
func (r *Registry) Each(fn func(name string, labels [][2]string, m any)) {
	if r == nil {
		return
	}
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.instances))
		for k := range f.instances {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		insts := make([]any, len(keys))
		for i, k := range keys {
			insts[i] = f.instances[k]
		}
		f.mu.Unlock()
		for i, k := range keys {
			var labels [][2]string
			if len(f.labelNames) > 0 {
				values := strings.Split(k, "\x00")
				labels = make([][2]string, len(f.labelNames))
				for j, n := range f.labelNames {
					labels[j] = [2]string{n, values[j]}
				}
			}
			fn(f.name, labels, insts[i])
		}
	}
}
