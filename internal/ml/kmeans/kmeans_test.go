package kmeans

import (
	"math"
	"math/rand"
	"testing"
)

func clusters3(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	var x [][]float64
	var truth []int
	for i := 0; i < n; i++ {
		c := i % 3
		x = append(x, []float64{
			centers[c][0] + rng.NormFloat64(),
			centers[c][1] + rng.NormFloat64(),
		})
		truth = append(truth, c)
	}
	return x, truth
}

func TestRunRecoversClusters(t *testing.T) {
	x, truth := clusters3(600, 1)
	res, err := Run(x, Config{K: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 3 || len(res.Assignments) != len(x) {
		t.Fatalf("shape: %d centers, %d assignments", len(res.Centers), len(res.Assignments))
	}
	// Purity: each true cluster should map overwhelmingly to one found
	// cluster.
	for trueC := 0; trueC < 3; trueC++ {
		counts := map[int]int{}
		total := 0
		for i, tc := range truth {
			if tc == trueC {
				counts[res.Assignments[i]]++
				total++
			}
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		if purity := float64(best) / float64(total); purity < 0.98 {
			t.Errorf("cluster %d purity = %v", trueC, purity)
		}
	}
	// Each center should sit near a true center.
	wants := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	for _, c := range res.Centers {
		bestDist := math.Inf(1)
		for _, w := range wants {
			d := math.Hypot(c[0]-w[0], c[1]-w[1])
			if d < bestDist {
				bestDist = d
			}
		}
		if bestDist > 0.5 {
			t.Errorf("center %v is %v from any true center", c, bestDist)
		}
	}
}

func TestRunK1(t *testing.T) {
	x, _ := clusters3(90, 3)
	res, err := Run(x, Config{K: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Single center = centroid of all points.
	var mx, my float64
	for _, p := range x {
		mx += p[0]
		my += p[1]
	}
	mx /= float64(len(x))
	my /= float64(len(x))
	if math.Hypot(res.Centers[0][0]-mx, res.Centers[0][1]-my) > 1e-9 {
		t.Errorf("k=1 center %v, want centroid (%v,%v)", res.Centers[0], mx, my)
	}
}

func TestInertiaDecreasesWithK(t *testing.T) {
	x, _ := clusters3(300, 5)
	var prev float64 = math.Inf(1)
	for _, k := range []int{1, 3, 5} {
		res, err := Run(x, Config{K: k, Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		if res.Inertia > prev {
			t.Errorf("inertia should not increase with k: k=%d inertia=%v prev=%v", k, res.Inertia, prev)
		}
		prev = res.Inertia
	}
}

func TestRunValidation(t *testing.T) {
	x, _ := clusters3(9, 7)
	if _, err := Run(x, Config{K: 0}); err == nil {
		t.Error("k=0 must fail")
	}
	if _, err := Run(x, Config{K: 100}); err == nil {
		t.Error("k > n must fail")
	}
	if _, err := Run([][]float64{{1, 2}, {3}}, Config{K: 1}); err == nil {
		t.Error("ragged input must fail")
	}
}

func TestRunDeterminism(t *testing.T) {
	x, _ := clusters3(300, 8)
	a, err := Run(x, Config{K: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(x, Config{K: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatal("same seed must give identical clustering")
		}
	}
}

func TestNearest(t *testing.T) {
	centers := [][]float64{{0, 0}, {5, 5}}
	idx, d2 := Nearest(centers, []float64{4, 4})
	if idx != 1 || d2 != 2 {
		t.Errorf("Nearest = %d, %v", idx, d2)
	}
}

func TestRunIdenticalPoints(t *testing.T) {
	// All points identical: k-means++ must not loop forever.
	x := make([][]float64, 10)
	for i := range x {
		x[i] = []float64{1, 1}
	}
	res, err := Run(x, Config{K: 3, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 3 {
		t.Fatalf("got %d centers", len(res.Centers))
	}
	if res.Inertia != 0 {
		t.Errorf("inertia = %v, want 0", res.Inertia)
	}
}
