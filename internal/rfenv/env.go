package rfenv

import (
	"fmt"
	"math"
	"sort"

	"github.com/wsdetect/waldo/internal/geo"
	"github.com/wsdetect/waldo/internal/iq"
)

// Transmitter is a licensed TV station (a spectrum incumbent).
type Transmitter struct {
	// Callsign identifies the station in reports.
	Callsign string
	// Loc is the tower location.
	Loc geo.Point
	// Channel is the licensed channel.
	Channel Channel
	// ERPdBm is the effective radiated power in dBm.
	ERPdBm float64
	// HeightM is the antenna height above average terrain.
	HeightM float64
}

// Environment is the composite ground-truth RF field: transmitters seen
// through a median propagation model, correlated shadowing, and terrain
// obstructions. It answers "what is the true received TV signal power at
// this point on this channel", which is the quantity every sensor then
// observes through its own imperfect front end.
type Environment struct {
	// Area is the region of interest (the paper's 700 km² metro area).
	Area geo.BBox
	// RxHeightM is the receiver antenna height the field is evaluated at
	// (the paper's war-driving antennas sit at ~2 m).
	RxHeightM float64

	model        PathLossModel
	txs          []Transmitter
	txByChannel  map[Channel][]Transmitter
	shadows      map[Channel]*ShadowField
	shadowCfg    ShadowConfig
	obstructions []Obstruction
	channels     []Channel
}

// EnvConfig assembles an Environment.
type EnvConfig struct {
	// Area is the region of interest; required.
	Area geo.BBox
	// Transmitters registers the incumbents; required (may be empty only
	// for tests).
	Transmitters []Transmitter
	// Model is the ground-truth median propagation model; nil means
	// HataUrban{LargeCity: true}.
	Model PathLossModel
	// Shadow configures the per-channel shadowing fields. Seed is
	// combined with the channel number so each channel gets an
	// independent realization.
	Shadow ShadowConfig
	// Obstructions lists terrain features.
	Obstructions []Obstruction
	// RxHeightM defaults to 2 m.
	RxHeightM float64
}

// NewEnvironment validates cfg and builds the environment.
func NewEnvironment(cfg EnvConfig) (*Environment, error) {
	if cfg.Area.MinLat >= cfg.Area.MaxLat || cfg.Area.MinLon >= cfg.Area.MaxLon {
		return nil, fmt.Errorf("rfenv: degenerate area %+v", cfg.Area)
	}
	model := cfg.Model
	if model == nil {
		model = HataUrban{LargeCity: true}
	}
	rx := cfg.RxHeightM
	if rx == 0 {
		rx = 2
	}

	env := &Environment{
		Area:         cfg.Area,
		RxHeightM:    rx,
		model:        model,
		txs:          append([]Transmitter(nil), cfg.Transmitters...),
		txByChannel:  make(map[Channel][]Transmitter),
		shadows:      make(map[Channel]*ShadowField),
		shadowCfg:    cfg.Shadow,
		obstructions: append([]Obstruction(nil), cfg.Obstructions...),
	}
	center := cfg.Area.Center()
	seen := make(map[Channel]bool)
	for _, tx := range env.txs {
		if !tx.Channel.Valid() {
			return nil, fmt.Errorf("rfenv: transmitter %s on invalid channel %d", tx.Callsign, tx.Channel)
		}
		env.txByChannel[tx.Channel] = append(env.txByChannel[tx.Channel], tx)
		if !seen[tx.Channel] {
			seen[tx.Channel] = true
			env.channels = append(env.channels, tx.Channel)
			sc := cfg.Shadow
			sc.Seed = cfg.Shadow.Seed*1000003 + uint64(tx.Channel)
			env.shadows[tx.Channel] = NewShadowField(center, sc)
		}
	}
	sort.Slice(env.channels, func(i, j int) bool { return env.channels[i] < env.channels[j] })
	return env, nil
}

// Channels returns the channels with at least one registered transmitter,
// in ascending order.
func (e *Environment) Channels() []Channel {
	return append([]Channel(nil), e.channels...)
}

// Transmitters returns all registered transmitters.
func (e *Environment) Transmitters() []Transmitter {
	return append([]Transmitter(nil), e.txs...)
}

// TransmittersOn returns the transmitters licensed on ch.
func (e *Environment) TransmittersOn(ch Channel) []Transmitter {
	return append([]Transmitter(nil), e.txByChannel[ch]...)
}

// Model returns the ground-truth median propagation model.
func (e *Environment) Model() PathLossModel { return e.model }

// RSSDBm returns the true received TV signal power (dBm) on channel ch at
// point p and the environment's receiver height: the power sum over all
// co-channel transmitters of ERP − pathloss − shadowing − obstruction.
// Returns -inf if no transmitter operates on ch.
func (e *Environment) RSSDBm(ch Channel, p geo.Point) float64 {
	return e.RSSDBmAtHeight(ch, p, e.RxHeightM)
}

// RSSDBmAtHeight evaluates the field with an explicit receiver antenna
// height (meters) — the §6 altitude-reporting extension: a WSD on the
// tenth floor of a building sees a stronger field than one at street
// level, and its uploads should say so.
func (e *Environment) RSSDBmAtHeight(ch Channel, p geo.Point, hRxM float64) float64 {
	txs := e.txByChannel[ch]
	if len(txs) == 0 {
		return math.Inf(-1)
	}
	fMHz, err := ch.CenterFreqMHz()
	if err != nil {
		return math.Inf(-1)
	}
	shadow := 0.0
	if sf := e.shadows[ch]; sf != nil {
		shadow = sf.AtPoint(p)
	}
	var obst float64
	for i := range e.obstructions {
		obst += e.obstructions[i].AttenuationDB(ch, p)
	}

	var totalMW float64
	for _, tx := range txs {
		d := tx.Loc.DistanceM(p)
		pl := e.model.PathLossDB(d, fMHz, tx.HeightM, hRxM)
		totalMW += iq.DBmToMW(tx.ERPdBm - pl - shadow - obst)
	}
	return iq.MWToDBm(totalMW)
}

// StrongestDBm returns the strongest true received power across all
// channels except skip at point p. Low-cost front ends leak a fraction of
// this into every measured channel (limited dynamic range), which the
// sensor layer models.
func (e *Environment) StrongestDBm(p geo.Point, skip Channel) float64 {
	strongest := math.Inf(-1)
	for _, ch := range e.channels {
		if ch == skip {
			continue
		}
		if v := e.RSSDBm(ch, p); v > strongest {
			strongest = v
		}
	}
	return strongest
}

// DecodableAt reports whether the TV signal on ch is decodable at p under
// the FCC −84 dBm criterion (paper §2.1), judged on the true field.
func (e *Environment) DecodableAt(ch Channel, p geo.Point) bool {
	return e.RSSDBm(ch, p) >= -84
}

// TemporalVariant derives the environment as it looks some months later:
// same incumbents, terrain and median propagation, but shadowing that is
// only rho-correlated with today's (foliage, construction, weather —
// §3.4's "changes in the environment that affect signal propagation", and
// the reason the paper collected two measurement sets months apart). seed
// selects the fresh component's realization.
func (e *Environment) TemporalVariant(seed uint64, rho float64) (*Environment, error) {
	out := &Environment{
		Area:         e.Area,
		RxHeightM:    e.RxHeightM,
		model:        e.model,
		txs:          append([]Transmitter(nil), e.txs...),
		txByChannel:  make(map[Channel][]Transmitter, len(e.txByChannel)),
		shadows:      make(map[Channel]*ShadowField, len(e.shadows)),
		shadowCfg:    e.shadowCfg,
		obstructions: append([]Obstruction(nil), e.obstructions...),
		channels:     append([]Channel(nil), e.channels...),
	}
	for ch, txs := range e.txByChannel {
		out.txByChannel[ch] = txs
	}
	center := e.Area.Center()
	for ch, base := range e.shadows {
		sc := e.shadowCfg
		sc.Seed = seed*1000003 + uint64(ch)
		fresh := NewShadowField(center, sc)
		blended, err := NewBlendedShadowField(base, fresh, rho)
		if err != nil {
			return nil, err
		}
		out.shadows[ch] = blended
	}
	return out, nil
}
