package iq

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDBmConversions(t *testing.T) {
	tests := []struct {
		dbm, mw float64
	}{
		{0, 1},
		{10, 10},
		{-30, 0.001},
		{-84, math.Pow(10, -8.4)},
	}
	for _, tt := range tests {
		if got := DBmToMW(tt.dbm); math.Abs(got-tt.mw) > 1e-12*tt.mw {
			t.Errorf("DBmToMW(%v) = %v, want %v", tt.dbm, got, tt.mw)
		}
		if got := MWToDBm(tt.mw); math.Abs(got-tt.dbm) > 1e-9 {
			t.Errorf("MWToDBm(%v) = %v, want %v", tt.mw, got, tt.dbm)
		}
	}
	if !math.IsInf(MWToDBm(0), -1) {
		t.Error("MWToDBm(0) should be -inf")
	}
}

func TestDBmRoundTrip(t *testing.T) {
	f := func(dbm float64) bool {
		d := math.Mod(dbm, 200) // keep in a sane range
		return math.Abs(MWToDBm(DBmToMW(d))-d) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSynthesizeValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Synthesize(rng, CaptureConfig{Samples: 100}); err == nil {
		t.Error("non-power-of-two length should fail")
	}
	if _, err := Synthesize(rng, CaptureConfig{PilotMW: -1}); err == nil {
		t.Error("negative power should fail")
	}
	s, err := Synthesize(rng, CaptureConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != DefaultSamples {
		t.Errorf("default length = %d, want %d", len(s), DefaultSamples)
	}
}

func TestEnergyDetectorRecoversPower(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Noise-only capture: energy ≈ noise power.
	const noiseMW = 1e-9
	var sum float64
	const trials = 200
	for i := 0; i < trials; i++ {
		s, err := Synthesize(rng, CaptureConfig{NoiseMW: noiseMW})
		if err != nil {
			t.Fatal(err)
		}
		sum += EnergyMW(s)
	}
	mean := sum / trials
	if math.Abs(mean-noiseMW) > 0.02*noiseMW {
		t.Errorf("mean noise energy = %v, want %v ± 2%%", mean, noiseMW)
	}
}

func TestEnergyDetectorPilotPlusNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := CaptureConfig{PilotMW: 4e-9, BodyMW: 1e-9, NoiseMW: 1e-9}
	var sum float64
	const trials = 300
	for i := 0; i < trials; i++ {
		s, err := Synthesize(rng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sum += EnergyMW(s)
	}
	want := cfg.PilotMW + cfg.BodyMW + cfg.NoiseMW
	mean := sum / trials
	if math.Abs(mean-want) > 0.03*want {
		t.Errorf("mean energy = %v, want %v", mean, want)
	}
}

func TestSpectrumPilotProcessingGain(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Pilot 6 dB below the noise floor: invisible to wideband energy
	// detection, but the center bin should still stand far above the
	// per-bin noise thanks to FFT processing gain (~24 dB at N=256).
	cfg := CaptureConfig{PilotMW: 0.25e-9, NoiseMW: 1e-9}
	var center, offBin float64
	const trials = 100
	for i := 0; i < trials; i++ {
		s, err := Synthesize(rng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := NewSpectrum(s)
		if err != nil {
			t.Fatal(err)
		}
		center += sp.CenterBinMW()
		offBin += sp.Bins[10] // far from pilot
	}
	gainDB := 10 * math.Log10(center/offBin)
	if gainDB < 12 {
		t.Errorf("center-bin advantage = %.1f dB, want > 12 dB for a pilot 6 dB under the floor", gainDB)
	}
}

func TestSpectrumParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s, err := Synthesize(rng, CaptureConfig{PilotMW: 2e-9, BodyMW: 1e-9, NoiseMW: 0.5e-9})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewSpectrum(s)
	if err != nil {
		t.Fatal(err)
	}
	te := EnergyMW(s)
	fe := sp.TotalMW()
	if math.Abs(te-fe) > 1e-9*te {
		t.Errorf("time energy %v vs spectrum total %v", te, fe)
	}
}

func TestCenterBandMeanMW(t *testing.T) {
	sp := &Spectrum{Bins: make([]float64, 100)}
	for i := range sp.Bins {
		sp.Bins[i] = 1
	}
	sp.Bins[50] = 101 // center spike
	// 15% of 100 bins = 15 bins around center: mean = (14*1 + 101)/15.
	got := sp.CenterBandMeanMW(0.15)
	want := (14.0 + 101.0) / 15.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("CenterBandMeanMW = %v, want %v", got, want)
	}
	if sp.CenterBandMeanMW(0) != 0 {
		t.Error("frac 0 should return 0")
	}
	if got := sp.CenterBandMeanMW(5); math.Abs(got-2.0) > 1e-9 { // clamped to all bins
		t.Errorf("frac > 1 should clamp to all bins: %v", got)
	}
}

func TestPilotOffsetMovesEnergyOffCenter(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	centered, err := Synthesize(rng, CaptureConfig{PilotMW: 1e-9, PilotOffsetBins: 0})
	if err != nil {
		t.Fatal(err)
	}
	offset, err := Synthesize(rng, CaptureConfig{PilotMW: 1e-9, PilotOffsetBins: 8})
	if err != nil {
		t.Fatal(err)
	}
	spC, _ := NewSpectrum(centered)
	spO, _ := NewSpectrum(offset)
	if spC.CenterBinMW() < 100*spO.CenterBinMW() {
		t.Errorf("pilot offset should drain the center bin: centered=%v offset=%v",
			spC.CenterBinMW(), spO.CenterBinMW())
	}
	// The offset pilot's energy should appear 8 bins above center.
	idx := len(spO.Bins)/2 + 8
	if spO.Bins[idx] < 0.5e-9 {
		t.Errorf("offset pilot bin power = %v, want ~1e-9", spO.Bins[idx])
	}
}
