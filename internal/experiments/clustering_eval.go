package experiments

import (
	"fmt"
	"strings"

	"github.com/wsdetect/waldo/internal/core"
	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/dsp"
	"github.com/wsdetect/waldo/internal/features"
	"github.com/wsdetect/waldo/internal/ml/validate"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
)

// --- Fig. 13: effect of local models (clustering) ---

// Fig13Cell is one (sensor, k, feature set) channel-averaged outcome.
type Fig13Cell struct {
	Kind sensor.Kind
	// K is the number of localities (1 = no clustering).
	K   int
	Set features.Set
	// MeanFP and MeanFN average over the evaluation channels.
	MeanFP float64
	MeanFN float64
}

// Fig13Result reproduces Fig. 13: FP/FN for k ∈ {1, 3, 5} local models
// across feature counts (paper: k = 1→3 clearly improves FP at a slight
// FN cost).
type Fig13Result struct {
	Cells []Fig13Cell
}

// Fig13Ks are the clustering arities the paper sweeps.
var Fig13Ks = []int{1, 3, 5}

// Fig13LocalModels sweeps the clustering arity with the SVM model.
func (s *Suite) Fig13LocalModels() (*Fig13Result, error) {
	res := &Fig13Result{}
	for _, kind := range []sensor.Kind{sensor.KindUSRPB200, sensor.KindRTLSDR} {
		for _, k := range Fig13Ks {
			for _, set := range features.AllSets {
				var sumFP, sumFN float64
				for _, ch := range rfenv.EvalChannels {
					m, err := s.channelCV(ch, kind, 0, core.ConstructorConfig{
						ClusterK:   k,
						Classifier: core.KindSVM,
						Features:   set,
						Seed:       s.cfg.Seed + 200,
					})
					if err != nil {
						return nil, fmt.Errorf("fig13 %v/k=%d/%v/%v: %w", kind, k, set, ch, err)
					}
					sumFP += m.FPRate()
					sumFN += m.FNRate()
				}
				n := float64(len(rfenv.EvalChannels))
				res.Cells = append(res.Cells, Fig13Cell{
					Kind: kind, K: k, Set: set,
					MeanFP: sumFP / n, MeanFN: sumFN / n,
				})
			}
		}
	}
	return res, nil
}

// Rate returns one cell's FP or FN.
func (r *Fig13Result) Rate(kind sensor.Kind, k int, set features.Set, fn bool) (float64, bool) {
	for _, c := range r.Cells {
		if c.Kind == kind && c.K == k && c.Set == set {
			if fn {
				return c.MeanFN, true
			}
			return c.MeanFP, true
		}
	}
	return 0, false
}

// Render implements the experiment report.
func (r *Fig13Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 13: FP/FN vs clustering arity k (SVM, channel means)\n")
	for _, panel := range []struct {
		title string
		fn    bool
	}{
		{"FP rate", false}, {"FN rate", true},
	} {
		fmt.Fprintf(&b, "%s:\n%-22s %8s %8s %8s %8s\n", panel.title, "series", "1", "2", "3", "4")
		for _, kind := range []sensor.Kind{sensor.KindRTLSDR, sensor.KindUSRPB200} {
			for _, k := range Fig13Ks {
				fmt.Fprintf(&b, "%-22s", fmt.Sprintf("%v k=%d", kind, k))
				for _, set := range features.AllSets {
					v, _ := r.Rate(kind, k, set, panel.fn)
					fmt.Fprintf(&b, " %8.4f", v)
				}
				b.WriteString("\n")
			}
		}
	}
	return b.String()
}

// --- Fig. 14: effect of updating the training dataset ---

// Fig14Step is one training-fraction step of one configuration.
type Fig14Step struct {
	Channel rfenv.Channel
	Kind    sensor.Kind
	Model   core.ClassifierKind
	// Fraction is the share of the available training data used.
	Fraction float64
	Metrics  validate.Metrics
}

// Fig14Result reproduces Fig. 14: error rate as the training set grows
// (fixed random 10 % test split; the remaining 90 % added in 11.11 %
// steps; k = 5 localities, two signal features).
type Fig14Result struct {
	Steps []Fig14Step
}

// Fig14Fractions are the cumulative training shares (9 steps of 1/9).
func fig14Fractions() []float64 {
	out := make([]float64, 9)
	for i := range out {
		out[i] = float64(i+1) / 9
	}
	return out
}

// Fig14TrainingSize sweeps training-set size per channel and sensor.
func (s *Suite) Fig14TrainingSize() (*Fig14Result, error) {
	camp, err := s.Campaign()
	if err != nil {
		return nil, err
	}
	res := &Fig14Result{}
	for _, kind := range []sensor.Kind{sensor.KindUSRPB200, sensor.KindRTLSDR} {
		for _, model := range []core.ClassifierKind{core.KindNB, core.KindSVM} {
			for _, ch := range rfenv.EvalChannels {
				readings := camp.Readings(ch, kind)
				labels, err := s.Labels(ch, kind, 0)
				if err != nil {
					return nil, err
				}
				// Fixed shuffled split: last tenth is the test set.
				folds, err := validate.KFold(len(readings), 10, s.cfg.Seed+300+int64(ch))
				if err != nil {
					return nil, err
				}
				test := folds[9]
				var pool []int
				for f := 0; f < 9; f++ {
					pool = append(pool, folds[f]...)
				}
				for _, frac := range fig14Fractions() {
					n := int(frac * float64(len(pool)))
					if n < 50 {
						n = 50
					}
					trainIdx := pool[:n]
					trainR := make([]dataset.Reading, len(trainIdx))
					trainL := make([]dataset.Label, len(trainIdx))
					for i, idx := range trainIdx {
						trainR[i] = readings[idx]
						trainL[i] = labels[idx]
					}
					m, err := core.BuildModel(trainR, trainL, core.ConstructorConfig{
						ClusterK:   5,
						Classifier: model,
						Features:   features.SetLocationRSSCFT,
						Seed:       s.cfg.Seed + 301,
					})
					if err != nil {
						return nil, fmt.Errorf("fig14 %v/%v/%v@%.2f: %w", ch, kind, model, frac, err)
					}
					var met validate.Metrics
					for _, idx := range test {
						pred, err := m.ClassifyReading(readings[idx])
						if err != nil {
							return nil, err
						}
						met.Count(labelClass(pred), labelClass(labels[idx]))
					}
					res.Steps = append(res.Steps, Fig14Step{
						Channel: ch, Kind: kind, Model: model, Fraction: frac, Metrics: met,
					})
				}
			}
		}
	}
	return res, nil
}

// ErrorCurve returns error rate vs fraction for one configuration.
func (r *Fig14Result) ErrorCurve(ch rfenv.Channel, kind sensor.Kind, model core.ClassifierKind) (fracs, errs []float64) {
	for _, st := range r.Steps {
		if st.Channel == ch && st.Kind == kind && st.Model == model {
			fracs = append(fracs, st.Fraction)
			errs = append(errs, st.Metrics.ErrorRate())
		}
	}
	return fracs, errs
}

// ErrorCDFAt pools the error rates of all configurations at the given
// fractions (Fig. 14c's CDFs at 25/50/75/100 %).
func (r *Fig14Result) ErrorCDFAt(frac float64) *dsp.ECDF {
	var vals []float64
	for _, st := range r.Steps {
		if st.Fraction >= frac-0.06 && st.Fraction <= frac+0.06 {
			vals = append(vals, st.Metrics.ErrorRate())
		}
	}
	return dsp.NewECDF(vals)
}

// MeanErrorAt averages error over all configurations at a fraction.
func (r *Fig14Result) MeanErrorAt(frac float64) float64 {
	e := r.ErrorCDFAt(frac)
	return e.Mean()
}

// Render implements the experiment report.
func (r *Fig14Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 14: error vs training-set size (k=5, location+RSS+CFT)\n")
	for _, ch := range []rfenv.Channel{15, 30} {
		fmt.Fprintf(&b, "%v:\n", ch)
		for _, kind := range []sensor.Kind{sensor.KindRTLSDR, sensor.KindUSRPB200} {
			for _, model := range []core.ClassifierKind{core.KindNB, core.KindSVM} {
				fracs, errs := r.ErrorCurve(ch, kind, model)
				fmt.Fprintf(&b, "  %-18s", fmt.Sprintf("%v %v", kind, model))
				for i := range fracs {
					fmt.Fprintf(&b, " %.3f", errs[i])
				}
				b.WriteString("\n")
			}
		}
	}
	b.WriteString("Fig. 14c: error CDF quantiles as training grows\n")
	for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
		e := r.ErrorCDFAt(frac)
		fmt.Fprintf(&b, "  %3.0f%%: mean=%.4f %s\n", frac*100, e.Mean(), e.RenderQuantiles(""))
	}
	return b.String()
}

// --- Fig. 15: effect of the antenna correction factor ---

// Fig15Cell is one (sensor, model, set) channel-averaged outcome under
// corrected labels.
type Fig15Cell struct {
	Kind   sensor.Kind
	Model  core.ClassifierKind
	Set    features.Set
	MeanFP float64
	MeanFN float64
}

// Fig15Result reproduces Fig. 15: FP/FN versus feature count when labels
// include the +7.5 dB antenna correction. Channels 21/30/46 become all
// not-safe and are excluded, as in the paper.
type Fig15Result struct {
	// CorrectionDB is the applied correction.
	CorrectionDB float64
	// SurvivingChannels kept both classes under correction.
	SurvivingChannels []rfenv.Channel
	Cells             []Fig15Cell
}

// Fig15AntennaCorrection re-runs the feature sweep under corrected labels.
func (s *Suite) Fig15AntennaCorrection() (*Fig15Result, error) {
	corr := AntennaCorrectionDB()
	res := &Fig15Result{CorrectionDB: corr}

	// Identify channels that keep both classes under correction.
	for _, ch := range rfenv.EvalChannels {
		labels, err := s.Labels(ch, sensor.KindSpectrumAnalyzer, corr)
		if err != nil {
			return nil, err
		}
		safe, notSafe := dataset.CountLabels(labels)
		if safe > 0 && notSafe > 0 {
			res.SurvivingChannels = append(res.SurvivingChannels, ch)
		}
	}
	if len(res.SurvivingChannels) == 0 {
		return nil, fmt.Errorf("fig15: no channel survives the correction")
	}

	for _, kind := range []sensor.Kind{sensor.KindUSRPB200, sensor.KindRTLSDR} {
		for _, model := range []core.ClassifierKind{core.KindNB, core.KindSVM} {
			for _, set := range features.AllSets {
				var sumFP, sumFN float64
				n := 0
				for _, ch := range res.SurvivingChannels {
					// Corrected labels come from the central (trusted)
					// labeling path (§3.2): the low-cost sensors' own
					// corrected labels degenerate to all-not-safe (see
					// EXPERIMENTS.md).
					labels, err := s.Labels(ch, sensor.KindSpectrumAnalyzer, corr)
					if err != nil {
						return nil, err
					}
					m, err := s.cvWithLabels(ch, kind, labels, core.ConstructorConfig{
						ClusterK:   1,
						Classifier: model,
						Features:   set,
						Seed:       s.cfg.Seed + 400,
					})
					if err != nil {
						return nil, fmt.Errorf("fig15 %v/%v/%v/%v: %w", ch, kind, model, set, err)
					}
					sumFP += m.FPRate()
					sumFN += m.FNRate()
					n++
				}
				res.Cells = append(res.Cells, Fig15Cell{
					Kind: kind, Model: model, Set: set,
					MeanFP: sumFP / float64(n), MeanFN: sumFN / float64(n),
				})
			}
		}
	}
	return res, nil
}

// Render implements the experiment report.
func (r *Fig15Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 15: FP/FN vs features with +%.1f dB antenna correction\n", r.CorrectionDB)
	fmt.Fprintf(&b, "surviving channels: %v (paper: 15, 17, 22, 47)\n", r.SurvivingChannels)
	fmt.Fprintf(&b, "%-22s %8s %8s %8s %8s   %8s %8s %8s %8s\n",
		"series", "FP@1", "FP@2", "FP@3", "FP@4", "FN@1", "FN@2", "FN@3", "FN@4")
	for _, kind := range []sensor.Kind{sensor.KindRTLSDR, sensor.KindUSRPB200} {
		for _, model := range []core.ClassifierKind{core.KindNB, core.KindSVM} {
			fmt.Fprintf(&b, "%-22s", fmt.Sprintf("%v %v", kind, model))
			for _, wantFN := range []bool{false, true} {
				for _, set := range features.AllSets {
					for _, c := range r.Cells {
						if c.Kind == kind && c.Model == model && c.Set == set {
							v := c.MeanFP
							if wantFN {
								v = c.MeanFN
							}
							fmt.Fprintf(&b, " %8.4f", v)
						}
					}
				}
				if !wantFN {
					b.WriteString("  ")
				}
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
