package core

import (
	"fmt"
	"sync"

	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/telemetry"
)

// UploadBatch is a set of readings a WSD submits after a local detection,
// together with the noise level the detector achieved. The Global Model
// Updater only accepts batches whose confidence-interval span meets the
// acceptance criterion α′ (§3.4).
type UploadBatch struct {
	// Readings are the location-tagged measurements used for the local
	// decision.
	Readings []dataset.Reading
	// CISpanDB is the detector's final 90 % CI span for the batch.
	CISpanDB float64
}

// Updater is the Global Model Updater for one channel/sensor model: it
// accumulates trusted readings (bootstrap war-driving plus accepted WSD
// uploads), relabels with Algorithm 1, and retrains the model. It is safe
// for concurrent use.
type Updater struct {
	mu sync.Mutex

	cfg      ConstructorConfig
	labelCfg dataset.LabelConfig
	// alphaPrime is the maximum accepted upload CI span (dB).
	alphaPrime float64

	readings []dataset.Reading
	model    *Model
	version  int

	// Telemetry handles (nil-safe no-ops when UpdaterConfig.Metrics is
	// unset): upload accept/reject counts, rebuild cost, store size.
	metrics        *telemetry.Registry
	scope          string
	acceptedTotal  *telemetry.Counter
	rejectedTotal  *telemetry.Counter
	rebuildSeconds *telemetry.Histogram
	storeReadings  *telemetry.Gauge
}

// UpdaterConfig assembles an Updater.
type UpdaterConfig struct {
	// Constructor configures model building.
	Constructor ConstructorConfig
	// Labeling configures Algorithm 1.
	Labeling dataset.LabelConfig
	// AlphaPrimeDB is the upload acceptance criterion; default 1.0 dB.
	AlphaPrimeDB float64
	// Metrics, when set, receives updater telemetry (upload outcomes,
	// rebuild duration, store size) labeled with MetricsScope.
	Metrics *telemetry.Registry
	// MetricsScope labels this updater's metrics, conventionally
	// "ch47/rtl-sdr"; empty means "default".
	MetricsScope string
}

// NewUpdater builds an updater with no data; call Submit or Bootstrap
// before Retrain.
func NewUpdater(cfg UpdaterConfig) (*Updater, error) {
	if cfg.AlphaPrimeDB == 0 {
		cfg.AlphaPrimeDB = 1.0
	}
	if cfg.AlphaPrimeDB < 0 {
		return nil, fmt.Errorf("core: negative alpha' %v", cfg.AlphaPrimeDB)
	}
	if err := cfg.Constructor.defaults(); err != nil {
		return nil, err
	}
	scope := cfg.MetricsScope
	if scope == "" {
		scope = "default"
	}
	u := &Updater{
		cfg:        cfg.Constructor,
		labelCfg:   cfg.Labeling,
		alphaPrime: cfg.AlphaPrimeDB,
		metrics:    cfg.Metrics,
		scope:      scope,
	}
	// Handles resolve to nil-safe no-ops when cfg.Metrics is nil.
	u.acceptedTotal = cfg.Metrics.Counter("waldo_updater_uploads_total",
		"WSD upload batches by acceptance outcome.", "store", scope, "outcome", "accepted")
	u.rejectedTotal = cfg.Metrics.Counter("waldo_updater_uploads_total",
		"WSD upload batches by acceptance outcome.", "store", scope, "outcome", "rejected")
	u.rebuildSeconds = cfg.Metrics.Histogram("waldo_updater_rebuild_seconds",
		"Model rebuild (relabel + retrain) duration.", nil, "store", scope)
	u.storeReadings = cfg.Metrics.Gauge("waldo_updater_store_readings",
		"Trusted readings currently stored.", "store", scope)
	return u, nil
}

// Bootstrap seeds the store with trusted measurements (war driving or
// dedicated infrastructure, §6) without the α′ check.
func (u *Updater) Bootstrap(readings []dataset.Reading) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.readings = append(u.readings, readings...)
	u.storeReadings.Set(float64(len(u.readings)))
}

// Submit offers a WSD upload. Batches that fail the α′ noise criterion are
// rejected — noisy contributions would poison Algorithm 1's labels.
func (u *Updater) Submit(batch UploadBatch) error {
	if len(batch.Readings) == 0 {
		u.rejectedTotal.Inc()
		return fmt.Errorf("core: empty upload")
	}
	if batch.CISpanDB > u.alphaPrime {
		u.rejectedTotal.Inc()
		return fmt.Errorf("core: upload CI span %.2f dB exceeds acceptance criterion %.2f dB",
			batch.CISpanDB, u.alphaPrime)
	}
	ch, sens := batch.Readings[0].Channel, batch.Readings[0].Sensor
	for i := range batch.Readings {
		if batch.Readings[i].Channel != ch || batch.Readings[i].Sensor != sens {
			u.rejectedTotal.Inc()
			return fmt.Errorf("core: mixed channels/sensors in upload")
		}
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	if len(u.readings) > 0 {
		if u.readings[0].Channel != ch || u.readings[0].Sensor != sens {
			u.rejectedTotal.Inc()
			return fmt.Errorf("core: upload is %v/%v, store is %v/%v",
				ch, sens, u.readings[0].Channel, u.readings[0].Sensor)
		}
	}
	u.readings = append(u.readings, batch.Readings...)
	u.acceptedTotal.Inc()
	u.storeReadings.Set(float64(len(u.readings)))
	return nil
}

// Size returns the number of stored readings.
func (u *Updater) Size() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return len(u.readings)
}

// Readings returns a copy of the stored readings (for export and
// persistence).
func (u *Updater) Readings() []dataset.Reading {
	u.mu.Lock()
	defer u.mu.Unlock()
	return append([]dataset.Reading(nil), u.readings...)
}

// Retrain relabels the full store with Algorithm 1 and rebuilds the model,
// bumping the version.
func (u *Updater) Retrain() (*Model, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if len(u.readings) == 0 {
		return nil, fmt.Errorf("core: no readings to train on")
	}
	span := u.metrics.StartSpan("retrain")
	relabel := span.Child("relabel")
	labels, err := dataset.LabelReadings(u.readings, u.labelCfg)
	relabel.End()
	if err != nil {
		span.End()
		return nil, fmt.Errorf("core: relabel: %w", err)
	}
	build := span.Child("build")
	model, err := BuildModel(u.readings, labels, u.cfg)
	build.End()
	d := span.End()
	if err != nil {
		return nil, fmt.Errorf("core: rebuild: %w", err)
	}
	u.rebuildSeconds.Observe(d.Seconds())
	u.model = model
	u.version++
	return model, nil
}

// Model returns the current model and its version (nil, 0 before the first
// Retrain).
func (u *Updater) Model() (*Model, int) {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.model, u.version
}
