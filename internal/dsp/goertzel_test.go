package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestGoertzelMatchesFFT: the Goertzel bin power must equal the FFT's for
// every bin of random signals.
func TestGoertzelMatchesFFT(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 64
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		ps, err := PowerSpectrum(x)
		if err != nil {
			return false
		}
		for bin := 0; bin < n; bin++ {
			g, err := Goertzel(x, bin)
			if err != nil {
				return false
			}
			if math.Abs(g-ps[bin]) > 1e-9*(1+ps[bin]) {
				t.Logf("seed %d bin %d: goertzel %v vs fft %v", seed, bin, g, ps[bin])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestGoertzelCenteredMatchesSpectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := make([]complex128, 256)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	sp, err := NewSpectrumLike(x)
	if err != nil {
		t.Fatal(err)
	}
	g, err := GoertzelCentered(x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-sp) > 1e-9*(1+sp) {
		t.Errorf("centered goertzel %v vs spectrum center %v", g, sp)
	}
}

// NewSpectrumLike mirrors iq.NewSpectrum's center-bin read without the
// import cycle: shifted center = FFT bin n/2.
func NewSpectrumLike(x []complex128) (float64, error) {
	ps, err := PowerSpectrum(x)
	if err != nil {
		return 0, err
	}
	return FFTShift(ps)[len(ps)/2], nil
}

func TestGoertzelValidation(t *testing.T) {
	if _, err := Goertzel(nil, 0); err == nil {
		t.Error("empty input must fail")
	}
	x := make([]complex128, 8)
	if _, err := Goertzel(x, -1); err == nil {
		t.Error("negative bin must fail")
	}
	if _, err := Goertzel(x, 8); err == nil {
		t.Error("out-of-range bin must fail")
	}
	// Goertzel works on non-power-of-two lengths, unlike the FFT.
	y := make([]complex128, 100)
	y[0] = 1
	if _, err := Goertzel(y, 3); err != nil {
		t.Errorf("length-100 goertzel: %v", err)
	}
}

// BenchmarkGoertzelVsFFT quantifies the §5 hardware-offload argument: one
// bin via Goertzel vs the full 256-point FFT.
func BenchmarkGoertzelCenter256(b *testing.B) {
	x := benchSignal(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := GoertzelCentered(x); err != nil {
			b.Fatal(err)
		}
	}
}
