// Package client implements the mobile White Space Device side of Waldo
// (paper §3.1 right half of Fig. 8, and the Android prototype of §5): the
// Local Model Parameters Updater that downloads and caches per-channel
// model descriptors, the detection loop that streams captures through the
// White Space Detector, and the Global Model Updater upload path.
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/wsdetect/waldo/internal/core"
	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/dbserver"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
	"github.com/wsdetect/waldo/internal/telemetry"
)

// Client talks to a Waldo spectrum database. It caches model descriptors:
// one download covers a large area, which is the protocol advantage over
// per-location spectrum-database queries (§5).
type Client struct {
	baseURL string
	httpc   *http.Client

	mu    sync.Mutex
	cache map[cacheKey]cached

	// Telemetry handles (nil-safe no-ops until SetMetrics): model
	// download/upload latency, cache hit ratio, upload outcomes.
	fetchSeconds  *telemetry.Histogram
	uploadSeconds *telemetry.Histogram
	cacheHits     *telemetry.Counter
	cacheMisses   *telemetry.Counter
	uploadsOK     *telemetry.Counter
	uploadsFailed *telemetry.Counter
}

type cacheKey struct {
	ch   rfenv.Channel
	kind sensor.Kind
}

type cached struct {
	model   *core.Model
	version string
	etag    string
	bytes   int
}

// New returns a client for the database at baseURL (e.g.
// "http://localhost:8473"). httpc may be nil for http.DefaultClient.
func New(baseURL string, httpc *http.Client) (*Client, error) {
	if baseURL == "" {
		return nil, fmt.Errorf("client: empty base URL")
	}
	if httpc == nil {
		httpc = http.DefaultClient
	}
	return &Client{baseURL: baseURL, httpc: httpc, cache: make(map[cacheKey]cached)}, nil
}

// SetMetrics wires the client's telemetry into reg: download and upload
// latency histograms, cache hit/miss counters, and upload outcomes. Call
// before issuing requests; a nil registry leaves the client
// uninstrumented.
func (c *Client) SetMetrics(reg *telemetry.Registry) {
	c.fetchSeconds = reg.Histogram("waldo_client_model_fetch_seconds",
		"Model descriptor download latency (cache misses only).", nil)
	c.uploadSeconds = reg.Histogram("waldo_client_upload_seconds",
		"Reading upload round-trip latency.", nil)
	c.cacheHits = reg.Counter("waldo_client_model_cache_total",
		"Model cache lookups by result.", "result", "hit")
	c.cacheMisses = reg.Counter("waldo_client_model_cache_total",
		"Model cache lookups by result.", "result", "miss")
	c.uploadsOK = reg.Counter("waldo_client_uploads_total",
		"Upload attempts by outcome.", "outcome", "accepted")
	c.uploadsFailed = reg.Counter("waldo_client_uploads_total",
		"Upload attempts by outcome.", "outcome", "failed")
}

// Model returns the detection model for a channel/sensor, downloading it
// on first use. The returned byte count is the descriptor size (0 on cache
// hits), feeding the §5 download-overhead analysis.
func (c *Client) Model(ch rfenv.Channel, kind sensor.Kind) (*core.Model, int, error) {
	key := cacheKey{ch, kind}
	c.mu.Lock()
	if hit, ok := c.cache[key]; ok {
		c.mu.Unlock()
		c.cacheHits.Inc()
		return hit.model, 0, nil
	}
	c.mu.Unlock()
	c.cacheMisses.Inc()
	return c.fetch(key, "")
}

// Refresh revalidates the cached model for a channel/sensor against the
// database using If-None-Match. An unchanged model costs the server no
// encode and the wire no body (304); a changed one is downloaded and
// replaces the cache entry. With nothing cached it behaves like Model.
// The byte count is the transferred descriptor size (0 when the cached
// copy was still current).
func (c *Client) Refresh(ch rfenv.Channel, kind sensor.Kind) (*core.Model, int, error) {
	key := cacheKey{ch, kind}
	c.mu.Lock()
	hit, ok := c.cache[key]
	c.mu.Unlock()
	if !ok || hit.etag == "" {
		return c.fetch(key, "")
	}
	return c.fetch(key, hit.etag)
}

// fetch downloads (or, with a non-empty etag, revalidates) one model
// descriptor and installs it in the cache.
func (c *Client) fetch(key cacheKey, etag string) (*core.Model, int, error) {
	url := fmt.Sprintf("%s/v1/model?channel=%d&sensor=%d", c.baseURL, int(key.ch), int(key.kind))
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, 0, fmt.Errorf("client: fetch model: %w", err)
	}
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	start := time.Now()
	resp, err := c.httpc.Do(req)
	if err != nil {
		return nil, 0, fmt.Errorf("client: fetch model: %w", err)
	}
	defer resp.Body.Close()
	if etag != "" && resp.StatusCode == http.StatusNotModified {
		c.mu.Lock()
		hit, ok := c.cache[key]
		c.mu.Unlock()
		if ok {
			c.cacheHits.Inc()
			return hit.model, 0, nil
		}
		// Invalidated while revalidating; fall back to a full fetch.
		return c.fetch(key, "")
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, 0, fmt.Errorf("client: fetch model: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, 0, fmt.Errorf("client: read model: %w", err)
	}
	c.fetchSeconds.Observe(time.Since(start).Seconds())
	model, err := core.DecodeModel(bytes.NewReader(raw))
	if err != nil {
		return nil, 0, fmt.Errorf("client: decode model: %w", err)
	}
	entry := cached{
		model:   model,
		version: resp.Header.Get("X-Waldo-Model-Version"),
		etag:    resp.Header.Get("ETag"),
		bytes:   len(raw),
	}
	c.mu.Lock()
	c.cache[key] = entry
	c.mu.Unlock()
	return model, len(raw), nil
}

// Invalidate drops a cached model (e.g. after leaving the area).
func (c *Client) Invalidate(ch rfenv.Channel, kind sensor.Kind) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.cache, cacheKey{ch, kind})
}

// Upload submits a reading batch to the Global Model Updater.
func (c *Client) Upload(batch core.UploadBatch) error {
	if len(batch.Readings) == 0 {
		return fmt.Errorf("client: empty upload")
	}
	payload := dbserver.UploadJSON{CISpanDB: batch.CISpanDB}
	for _, r := range batch.Readings {
		payload.Readings = append(payload.Readings, dbserver.FromReading(r))
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("client: marshal upload: %w", err)
	}
	start := time.Now()
	resp, err := c.httpc.Post(c.baseURL+"/v1/readings", "application/json", bytes.NewReader(body))
	if err != nil {
		c.uploadsFailed.Inc()
		return fmt.Errorf("client: upload: %w", err)
	}
	defer resp.Body.Close()
	c.uploadSeconds.Observe(time.Since(start).Seconds())
	if resp.StatusCode != http.StatusNoContent {
		c.uploadsFailed.Inc()
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("client: upload rejected: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	c.uploadsOK.Inc()
	return nil
}

// RequestRetrain asks the database to rebuild one model.
func (c *Client) RequestRetrain(ch rfenv.Channel, kind sensor.Kind) error {
	url := fmt.Sprintf("%s/v1/retrain?channel=%d&sensor=%d", c.baseURL, int(ch), int(kind))
	resp, err := c.httpc.Post(url, "", nil)
	if err != nil {
		return fmt.Errorf("client: retrain: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("client: retrain failed: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}

// UploadFromDecision packages a detection's readings into an upload batch.
func UploadFromDecision(readings []dataset.Reading, dec core.Decision) core.UploadBatch {
	return core.UploadBatch{Readings: readings, CISpanDB: dec.CISpanDB}
}
