package dataset

import (
	"testing"
)

// BenchmarkLabelReadings measures Algorithm 1 at full campaign scale
// (5,282 readings, 6 km neighborhoods via the spatial grid).
func BenchmarkLabelReadings(b *testing.B) {
	readings := randomSet(1, 5282)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LabelReadings(readings, LabelConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}
