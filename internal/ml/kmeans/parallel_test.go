package kmeans

import (
	"math/rand"
	"testing"
)

// TestRunWorkerCountInvariance is the determinism contract of the worker
// pool: the fitted clustering must be byte-identical for any Workers
// setting, including above the host's GOMAXPROCS. The input is large
// enough (≥ minParallelPoints) that the fan-out actually engages.
func TestRunWorkerCountInvariance(t *testing.T) {
	x, _ := clusters3(2000, 7)
	base, err := Run(x, Config{K: 5, Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 8, 16} {
		res, err := Run(x, Config{K: 5, Seed: 3, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Iterations != base.Iterations || res.Inertia != base.Inertia {
			t.Fatalf("workers=%d: iterations/inertia %d/%v, want %d/%v",
				workers, res.Iterations, res.Inertia, base.Iterations, base.Inertia)
		}
		for i := range base.Assignments {
			if res.Assignments[i] != base.Assignments[i] {
				t.Fatalf("workers=%d: assignment %d = %d, want %d",
					workers, i, res.Assignments[i], base.Assignments[i])
			}
		}
		for c := range base.Centers {
			for j := range base.Centers[c] {
				if res.Centers[c][j] != base.Centers[c][j] {
					t.Fatalf("workers=%d: center %d dim %d = %v, want %v",
						workers, c, j, res.Centers[c][j], base.Centers[c][j])
				}
			}
		}
	}
}

// BenchmarkKMeansAssign measures the Lloyd loop at campaign scale (5,000
// points, K=12) for the serial and auto worker settings.
func BenchmarkKMeansAssign(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x := make([][]float64, 5000)
	for i := range x {
		x[i] = []float64{rng.Float64() * 30, rng.Float64() * 30}
	}
	for _, bench := range []struct {
		name    string
		workers int
	}{{"workers=1", 1}, {"workers=auto", 0}} {
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run(x, Config{K: 12, Seed: 3, Workers: bench.workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
