package features

import (
	"math"
	"testing"
)

func sigs(vals ...float64) []Signal {
	out := make([]Signal, len(vals))
	for i, v := range vals {
		out[i] = Signal{RSSdBm: v, CFTdB: v, AFTdB: v}
	}
	return out
}

// constSigs returns n identical signals.
func constSigs(n int, v float64) []Signal {
	out := make([]Signal, n)
	for i := range out {
		out[i] = Signal{RSSdBm: v, CFTdB: v, AFTdB: v}
	}
	return out
}

// TestScoreANOVADegenerate pins the feature-selection math on the inputs
// a real campaign can produce before enough data exists: a missing
// class, single observations, and constant columns (e.g. a sensor whose
// CFT rails at the noise floor). The scores must stay well-defined —
// NaN for "not computable", +Inf/0 for zero within-class variance —
// rather than panicking or returning garbage finite values.
func TestScoreANOVADegenerate(t *testing.T) {
	tests := []struct {
		name          string
		safe, notSafe []Signal
		wantF         func(f float64) bool
		wantP         func(p float64) bool
	}{
		{
			// One class only: F is undefined (k < 2).
			name: "single class", safe: sigs(1, 2, 3), notSafe: nil,
			wantF: math.IsNaN, wantP: math.IsNaN,
		},
		{
			name: "both classes empty", safe: nil, notSafe: nil,
			wantF: math.IsNaN, wantP: math.IsNaN,
		},
		{
			// One observation per class: no residual degrees of freedom
			// (n <= k).
			name: "single observation per class", safe: sigs(1), notSafe: sigs(2),
			wantF: math.IsNaN, wantP: math.IsNaN,
		},
		{
			// Zero within-class variance with separated means: perfect
			// discriminability, reported as F=+Inf with p=0.
			name: "constant separated columns", safe: constSigs(5, -90), notSafe: constSigs(5, -60),
			wantF: func(f float64) bool { return math.IsInf(f, 1) },
			wantP: func(p float64) bool { return p == 0 },
		},
		{
			// A column that is the same constant in both classes also has
			// zero within-class variance; the implementation reports it
			// the same way rather than 0/0.
			name: "constant identical columns", safe: constSigs(4, -75), notSafe: constSigs(6, -75),
			wantF: func(f float64) bool { return math.IsInf(f, 1) },
			wantP: func(p float64) bool { return p == 0 },
		},
		{
			// Sanity: well-separated noisy classes give a large finite F
			// and a tiny p.
			name: "separated with variance", safe: sigs(-90, -91, -89, -90.5), notSafe: sigs(-60, -61, -59, -60.5),
			wantF: func(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) && f > 100 },
			wantP: func(p float64) bool { return p >= 0 && p < 0.001 },
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			scores := ScoreANOVA(tt.safe, tt.notSafe)
			if len(scores) != 3 {
				t.Fatalf("got %d scores, want 3 (RSS, CFT, AFT)", len(scores))
			}
			for _, s := range scores {
				if !tt.wantF(s.F) {
					t.Errorf("%s: F = %v fails predicate", s.Name, s.F)
				}
				if !tt.wantP(s.PValue) {
					t.Errorf("%s: p = %v fails predicate", s.Name, s.PValue)
				}
			}
		})
	}
}
