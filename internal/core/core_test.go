package core

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/features"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
)

// synthReadings builds a labeled synthetic channel: the east half of a
// 20 km box is occupied (high RSS, NotSafe), the west half is vacant, with
// a "pocket" of weak signal inside the occupied side that is still labeled
// NotSafe (the hidden-node geometry Waldo must learn).
func synthReadings(n int, seed int64) ([]dataset.Reading, []dataset.Label) {
	rng := rand.New(rand.NewSource(seed))
	origin := rfenv.MetroCenter
	var readings []dataset.Reading
	var labels []dataset.Label
	for i := 0; i < n; i++ {
		bearing := rng.Float64() * 360
		dist := rng.Float64() * 10000
		loc := origin.Offset(bearing, dist)
		east := loc.Lon > origin.Lon
		pocket := east && loc.DistanceM(origin.Offset(90, 5000)) < 2000

		var rss float64
		var label dataset.Label
		switch {
		case pocket:
			rss = -95 + rng.NormFloat64()
			label = dataset.LabelNotSafe // hidden node: weak RSS, protected area
		case east:
			rss = -70 + 4*rng.NormFloat64()
			label = dataset.LabelNotSafe
		default:
			rss = -102 + 2*rng.NormFloat64()
			label = dataset.LabelSafe
		}
		readings = append(readings, dataset.Reading{
			Seq:     i,
			Loc:     loc,
			Channel: 47,
			Sensor:  sensor.KindRTLSDR,
			Signal:  features.Signal{RSSdBm: rss, CFTdB: rss - 11.3, AFTdB: rss - 13},
			TrueDBm: rss,
		})
		labels = append(labels, label)
	}
	return readings, labels
}

func trainedModel(t *testing.T, cfg ConstructorConfig) (*Model, []dataset.Reading, []dataset.Label) {
	t.Helper()
	readings, labels := synthReadings(1200, 1)
	m, err := BuildModel(readings, labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, readings, labels
}

func modelAccuracy(t *testing.T, m *Model, readings []dataset.Reading, labels []dataset.Label) float64 {
	t.Helper()
	correct := 0
	for i := range readings {
		got, err := m.ClassifyReading(readings[i])
		if err != nil {
			t.Fatal(err)
		}
		if got == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(readings))
}

func TestBuildModelAndClassify(t *testing.T) {
	for _, kind := range []ClassifierKind{KindSVM, KindNB, KindLinearSVM} {
		cfg := ConstructorConfig{Classifier: kind, Features: features.SetLocationRSSCFT, Seed: 2}
		m, readings, labels := trainedModel(t, cfg)
		if m.NumLocalities() != 1 {
			t.Fatalf("%v: localities = %d, want 1", kind, m.NumLocalities())
		}
		if acc := modelAccuracy(t, m, readings, labels); acc < 0.9 {
			t.Errorf("%v: training accuracy = %v", kind, acc)
		}
	}
}

func TestLocationPlusSignalBeatsLocationOnlyOnPocket(t *testing.T) {
	// The pocket inside coverage has Safe-looking RSS but NotSafe labels;
	// pure-location models can learn it spatially, but a signal-only
	// intuition ("weak RSS ⇒ safe") would get it wrong. Verify the full
	// model classifies pocket points NotSafe.
	cfg := ConstructorConfig{Classifier: KindSVM, Features: features.SetLocationRSSCFT, Seed: 3}
	m, _, _ := trainedModel(t, cfg)
	origin := rfenv.MetroCenter
	pocketCenter := origin.Offset(90, 5000)
	sig := features.Signal{RSSdBm: -95, CFTdB: -106, AFTdB: -108}
	got, err := m.Classify(pocketCenter, sig)
	if err != nil {
		t.Fatal(err)
	}
	if got != dataset.LabelNotSafe {
		t.Error("pocket point with weak RSS must classify NotSafe (hidden-node protection)")
	}
	// A weak signal on the far west side is genuinely safe.
	west := origin.Offset(270, 8000)
	got, err = m.Classify(west, features.Signal{RSSdBm: -102, CFTdB: -113, AFTdB: -115})
	if err != nil {
		t.Fatal(err)
	}
	if got != dataset.LabelSafe {
		t.Error("far vacant point must classify Safe")
	}
}

func TestClusteredModel(t *testing.T) {
	cfg := ConstructorConfig{ClusterK: 3, Classifier: KindNB, Features: features.SetLocationRSS, Seed: 4}
	m, readings, labels := trainedModel(t, cfg)
	if m.NumLocalities() != 3 {
		t.Fatalf("localities = %d, want 3", m.NumLocalities())
	}
	if acc := modelAccuracy(t, m, readings, labels); acc < 0.88 {
		t.Errorf("clustered accuracy = %v", acc)
	}
}

func TestConstantLocality(t *testing.T) {
	// All-NotSafe data: the model must degrade to a constant predictor.
	readings, _ := synthReadings(300, 5)
	labels := make([]dataset.Label, len(readings))
	for i := range labels {
		labels[i] = dataset.LabelNotSafe
	}
	m, err := BuildModel(readings, labels, ConstructorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.ClassifyReading(readings[0])
	if err != nil {
		t.Fatal(err)
	}
	if got != dataset.LabelNotSafe {
		t.Error("constant model must predict the constant class")
	}
}

func TestBuildModelValidation(t *testing.T) {
	readings, labels := synthReadings(50, 6)
	if _, err := BuildModel(nil, nil, ConstructorConfig{}); err == nil {
		t.Error("empty input must fail")
	}
	if _, err := BuildModel(readings, labels[:10], ConstructorConfig{}); err == nil {
		t.Error("length mismatch must fail")
	}
	if _, err := BuildModel(readings, labels, ConstructorConfig{ClusterK: 100}); err == nil {
		t.Error("k > n must fail")
	}
	if _, err := BuildModel(readings, labels, ConstructorConfig{Classifier: 99}); err == nil {
		t.Error("bad classifier kind must fail")
	}
	if _, err := BuildModel(readings, labels, ConstructorConfig{Features: 99}); err == nil {
		t.Error("bad feature set must fail")
	}
	mixed := append([]dataset.Reading(nil), readings...)
	mixed[3].Channel = 22
	if _, err := BuildModel(mixed, labels, ConstructorConfig{}); err == nil {
		t.Error("mixed channels must fail")
	}
}

func TestModelCodecRoundTrip(t *testing.T) {
	for _, kind := range []ClassifierKind{KindSVM, KindNB, KindLinearSVM, KindSVMExact} {
		n := 1200
		if kind == KindSVMExact {
			n = 300 // keep SMO training quick
		}
		readings, labels := synthReadings(n, 7)
		m, err := BuildModel(readings, labels, ConstructorConfig{
			ClusterK: 2, Classifier: kind, Features: features.SetLocationRSSCFTAFT, Seed: 8,
		})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		var buf bytes.Buffer
		if err := EncodeModel(&buf, m); err != nil {
			t.Fatalf("%v: encode: %v", kind, err)
		}
		clone, err := DecodeModel(&buf)
		if err != nil {
			t.Fatalf("%v: decode: %v", kind, err)
		}
		if clone.Channel != m.Channel || clone.Sensor != m.Sensor ||
			clone.Features != m.Features || clone.Kind != m.Kind {
			t.Fatalf("%v: header mismatch", kind)
		}
		for i := 0; i < 100; i++ {
			a, err := m.ClassifyReading(readings[i])
			if err != nil {
				t.Fatal(err)
			}
			b, err := clone.ClassifyReading(readings[i])
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("%v: clone disagrees at reading %d", kind, i)
			}
		}
	}
}

func TestModelCodecSizes(t *testing.T) {
	// §5: the NB descriptor must be much smaller than the SVM descriptor
	// (paper: ~4 kB vs ~40 kB with OpenCV serialization).
	readings, labels := synthReadings(600, 9)
	sizes := map[ClassifierKind]int{}
	for _, kind := range []ClassifierKind{KindSVM, KindNB, KindSVMExact} {
		m, err := BuildModel(readings, labels, ConstructorConfig{Classifier: kind, Seed: 10})
		if err != nil {
			t.Fatal(err)
		}
		size, err := EncodedSize(m)
		if err != nil {
			t.Fatal(err)
		}
		sizes[kind] = size
	}
	if sizes[KindNB] >= sizes[KindSVM] {
		t.Errorf("NB descriptor (%d B) should be smaller than SVM (%d B)", sizes[KindNB], sizes[KindSVM])
	}
	if sizes[KindNB] >= sizes[KindSVMExact] {
		t.Errorf("NB descriptor (%d B) should be smaller than exact SVM (%d B)", sizes[KindNB], sizes[KindSVMExact])
	}
	if sizes[KindNB] > 4096 {
		t.Errorf("NB descriptor = %d B, want ≤ 4 kB", sizes[KindNB])
	}
}

func TestDecodeModelRejectsGarbage(t *testing.T) {
	if _, err := DecodeModel(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Error("garbage must be rejected")
	}
	if _, err := DecodeModel(bytes.NewReader(nil)); err == nil {
		t.Error("empty input must be rejected")
	}
	// Truncated valid prefix.
	readings, labels := synthReadings(200, 11)
	m, err := BuildModel(readings, labels, ConstructorConfig{Classifier: KindNB})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeModel(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Error("truncated descriptor must be rejected")
	}
}

func TestClassifierKindStrings(t *testing.T) {
	for _, k := range []ClassifierKind{KindSVM, KindNB, KindSVMExact, KindLinearSVM} {
		if !k.Valid() || k.String() == "" {
			t.Errorf("kind %d misbehaves", int(k))
		}
	}
	if ClassifierKind(0).Valid() || ClassifierKind(9).Valid() {
		t.Error("out-of-range kinds must be invalid")
	}
}

func TestLabelClassConversion(t *testing.T) {
	c, err := labelToClass(dataset.LabelSafe)
	if err != nil || c != 1 {
		t.Errorf("safe → %d, %v", c, err)
	}
	c, err = labelToClass(dataset.LabelNotSafe)
	if err != nil || c != -1 {
		t.Errorf("not-safe → %d, %v", c, err)
	}
	if _, err := labelToClass(dataset.Label(9)); err == nil {
		t.Error("bad label must fail")
	}
	if classToLabel(1) != dataset.LabelSafe || classToLabel(-1) != dataset.LabelNotSafe {
		t.Error("class → label broken")
	}
}

func TestSafetyMarginTradesFNForFP(t *testing.T) {
	readings, labels := synthReadings(1200, 13)
	rates := func(margin float64) (fp, fn float64) {
		m, err := BuildModel(readings, labels, ConstructorConfig{
			Classifier: KindSVM, SafetyMargin: margin, Seed: 14,
		})
		if err != nil {
			t.Fatal(err)
		}
		var fpN, fnN, safe, notSafe int
		for i := range readings {
			got, err := m.ClassifyReading(readings[i])
			if err != nil {
				t.Fatal(err)
			}
			switch labels[i] {
			case dataset.LabelSafe:
				safe++
				if got == dataset.LabelNotSafe {
					fnN++
				}
			default:
				notSafe++
				if got == dataset.LabelSafe {
					fpN++
				}
			}
		}
		return float64(fpN) / float64(notSafe), float64(fnN) / float64(safe)
	}
	fp0, fn0 := rates(0)
	fp2, fn2 := rates(2)
	if fp2 > fp0 {
		t.Errorf("margin must not raise FP: %v -> %v", fp0, fp2)
	}
	if fn2 < fn0 {
		t.Errorf("margin should cost FN: %v -> %v", fn0, fn2)
	}
	if fp2 == fp0 && fn2 == fn0 {
		t.Error("margin had no effect at all")
	}
	if _, err := BuildModel(readings, labels, ConstructorConfig{SafetyMargin: -1}); err == nil {
		t.Error("negative margin must be rejected")
	}
}

func TestCodecCarriesSafetyMargin(t *testing.T) {
	readings, labels := synthReadings(400, 15)
	m, err := BuildModel(readings, labels, ConstructorConfig{SafetyMargin: 1.5, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	clone, err := DecodeModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		a, err := m.ClassifyReading(readings[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := clone.ClassifyReading(readings[i])
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("margin lost in codec: disagreement at %d", i)
		}
	}
}
