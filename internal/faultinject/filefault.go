package faultinject

import (
	"fmt"
	"sync/atomic"

	"github.com/wsdetect/waldo/internal/wal"
)

// FaultFS is the storage-side counterpart of Transport: a [wal.FS]
// wrapper that injects FsyncErr and PartialWrite faults into the files it
// opens, deciding per file operation from a deterministic [Plan] exactly
// like the network injectors decide per request. Operations are numbered
// globally across all files in the order they happen; only Write and
// Sync calls consume a sequence number (and only those two kinds apply —
// any other Kind a plan returns is treated as None).
//
// A PartialWrite writes a prefix of the buffer and fails the call; an
// FsyncErr fails the Sync outright. Both leave the underlying file in
// exactly the state a kernel crash or full disk would: the WAL's
// fail-stop and torn-tail recovery paths are the code under test.
type FaultFS struct {
	// FS is the real filesystem; nil means wal.OSFS.
	FS wal.FS
	// Plan decides the fault for each numbered file operation. Nil
	// injects nothing.
	Plan Plan

	seq    atomic.Uint64
	counts [numKinds]atomic.Uint64
}

// Count reports how many operations were decided as kind so far.
func (f *FaultFS) Count(kind Kind) uint64 {
	if kind < 0 || kind >= numKinds {
		return 0
	}
	return f.counts[kind].Load()
}

func (f *FaultFS) inner() wal.FS {
	if f.FS == nil {
		return wal.OSFS{}
	}
	return f.FS
}

// decide numbers one file operation and returns its fault.
func (f *FaultFS) decide() Fault {
	seq := f.seq.Add(1) - 1
	var fault Fault
	if f.Plan != nil {
		fault = f.Plan.Decide(seq)
	}
	if fault.Kind != FsyncErr && fault.Kind != PartialWrite {
		fault = Fault{}
	}
	f.counts[fault.Kind].Add(1)
	return fault
}

// MkdirAll implements wal.FS.
func (f *FaultFS) MkdirAll(dir string) error { return f.inner().MkdirAll(dir) }

// OpenAppend implements wal.FS.
func (f *FaultFS) OpenAppend(path string) (wal.File, error) {
	file, err := f.inner().OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

// Create implements wal.FS.
func (f *FaultFS) Create(path string) (wal.File, error) {
	file, err := f.inner().Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

// ReadFile implements wal.FS.
func (f *FaultFS) ReadFile(path string) ([]byte, error) { return f.inner().ReadFile(path) }

// ReadDir implements wal.FS.
func (f *FaultFS) ReadDir(dir string) ([]string, error) { return f.inner().ReadDir(dir) }

// Rename implements wal.FS.
func (f *FaultFS) Rename(oldpath, newpath string) error { return f.inner().Rename(oldpath, newpath) }

// Remove implements wal.FS.
func (f *FaultFS) Remove(path string) error { return f.inner().Remove(path) }

// Truncate implements wal.FS.
func (f *FaultFS) Truncate(path string, size int64) error { return f.inner().Truncate(path, size) }

// SyncDir implements wal.FS.
func (f *FaultFS) SyncDir(dir string) error { return f.inner().SyncDir(dir) }

// faultFile interposes on the two durability-relevant calls.
type faultFile struct {
	wal.File
	fs *FaultFS
}

// Write implements wal.File, honoring PartialWrite faults.
func (f *faultFile) Write(p []byte) (int, error) {
	fault := f.fs.decide()
	if fault.Kind == PartialWrite {
		n, err := f.File.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("faultinject: partial write (%d of %d bytes)", n, len(p))
	}
	return f.File.Write(p)
}

// Sync implements wal.File, honoring FsyncErr faults.
func (f *faultFile) Sync() error {
	fault := f.fs.decide()
	if fault.Kind == FsyncErr {
		return fmt.Errorf("faultinject: fsync error")
	}
	return f.File.Sync()
}
