package dbserver

import (
	"context"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/telemetry"
)

// Push-based model delivery (GET /v1/model/watch): instead of fleets
// polling /v1/model on a timer — which costs one request per device per
// poll interval whether or not anything changed — a WSD parks a single
// long-poll request naming the version it already has. The server answers
// the instant a retrain bumps past that version, or with 304 after
// Config.WatchTimeout so intermediaries never see an immortal request.
//
// The cost model is the point: an idle watcher is one blocked goroutine
// holding no locks, and a retrain does O(1) work to wake every watcher of
// that store (one channel close, handed to the scheduler off the store
// lock) — so a million idle WSDs cost approximately zero server CPU
// between retrains.

// watchHub fans "model version bumped" events out to long-poll waiters,
// one notification channel per store. Waiters never receive values; they
// wait for the current channel to be closed and then re-check the
// version, so a bump between registration and the version check can never
// be missed.
type watchHub struct {
	mu     sync.Mutex
	points map[storeKey]chan struct{}
}

func newWatchHub() *watchHub {
	return &watchHub{points: make(map[storeKey]chan struct{})}
}

// watch returns the current notification channel for key, creating it on
// first use. The channel is closed (and replaced) on the next bump.
func (h *watchHub) watch(key storeKey) <-chan struct{} {
	h.mu.Lock()
	defer h.mu.Unlock()
	ch, ok := h.points[key]
	if !ok {
		ch = make(chan struct{})
		h.points[key] = ch
	}
	return ch
}

// bump wakes every watcher of key. Called from the journal under the
// store lock, so it only swaps a map entry; the close — which makes the
// scheduler wake N goroutines — runs on its own goroutine to keep the
// retrain path O(1) regardless of watcher count.
func (h *watchHub) bump(key storeKey) {
	h.mu.Lock()
	old, ok := h.points[key]
	if ok {
		h.points[key] = make(chan struct{})
	}
	h.mu.Unlock()
	if ok {
		go close(old)
	}
}

// watchJournal adapts the hub to core.Journal for one store: every
// recorded retrain (local or replication-applied — both journal) wakes
// that store's watchers. Appends are ignored; watchers care about model
// versions, not store growth.
type watchJournal struct {
	hub *watchHub
	key storeKey
	reg *telemetry.Registry
}

func (j watchJournal) AppendReadings(context.Context, []dataset.Reading) {}

func (j watchJournal) RecordRetrain(ctx context.Context, _, _ int) {
	// The bump is O(1), but span it anyway: a retrain trace then shows
	// watcher wakeup ordered after the WAL and replication journals.
	sp := j.reg.StartSpanCtx(ctx, "watch/bump")
	j.hub.bump(j.key)
	sp.End()
}

// watchState carries the watch endpoint's telemetry.
type watchState struct {
	active     *telemetry.Gauge
	delivered  *telemetry.Counter
	timeout    *telemetry.Counter
	disconnect *telemetry.Counter
	shutdown   *telemetry.Counter
}

func newWatchState(m *telemetry.Registry) watchState {
	const help = "Model watch long-polls resolved, by outcome (delivered, timeout, disconnect, shutdown)."
	return watchState{
		active: m.Gauge("waldo_dbserver_watch_active",
			"Model watch long-polls currently parked."),
		delivered:  m.Counter("waldo_dbserver_watch_total", help, "outcome", "delivered"),
		timeout:    m.Counter("waldo_dbserver_watch_total", help, "outcome", "timeout"),
		disconnect: m.Counter("waldo_dbserver_watch_total", help, "outcome", "disconnect"),
		shutdown:   m.Counter("waldo_dbserver_watch_total", help, "outcome", "shutdown"),
	}
}

// watchTimeout is the long-poll horizon: how long a watch may park before
// the server answers 304 and the client re-arms.
func (s *Server) watchTimeout() time.Duration {
	if s.cfg.WatchTimeout > 0 {
		return s.cfg.WatchTimeout
	}
	return 55 * time.Second
}

// handleModelWatch serves GET /v1/model/watch?channel=C&sensor=K&version=V.
// It answers immediately with the model descriptor when the store's
// version already exceeds V (V defaults to 0, so a fresh client gets the
// current model at once); otherwise the request parks until a retrain
// bumps the version (200 + descriptor), the watch horizon expires (304,
// X-Waldo-Model-Version carries the unchanged version), or the client
// disconnects. The route is deliberately registered outside the
// shed/timeout gate: a parked watcher is idle by design and must not
// consume MaxInFlight slots or be killed by RequestTimeout.
func (s *Server) handleModelWatch(w http.ResponseWriter, r *http.Request) {
	ch, kind, err := parseKey(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	since := 0
	if v := r.URL.Query().Get("version"); v != "" {
		since, err = strconv.Atoi(v)
		if err != nil || since < 0 {
			http.Error(w, "bad version "+strconv.Quote(v), http.StatusBadRequest)
			return
		}
	}
	u, ok := s.lookup(ch, kind)
	if !ok {
		http.Error(w, "no model for this channel/sensor", http.StatusNotFound)
		return
	}
	key := storeKey{ch, kind}
	s.watch.active.Add(1)
	defer s.watch.active.Add(-1)
	horizon := time.NewTimer(s.watchTimeout())
	defer horizon.Stop()
	for {
		// Register before checking: a bump that lands between the check
		// and the select closes the channel we already hold, so the wait
		// below returns instantly instead of sleeping through the event.
		bumped := s.hub.watch(key)
		model, version := u.Model()
		if model != nil && version > since {
			etag := modelETag(ch, kind, version)
			data, err := s.encodedModel(key, model, version)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			s.watch.delivered.Inc()
			w.Header().Set("ETag", etag)
			w.Header().Set("X-Waldo-Model-Version", strconv.Itoa(version))
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(data) //nolint:errcheck // client went away
			return
		}
		select {
		case <-bumped:
		case <-horizon.C:
			s.watch.timeout.Inc()
			w.Header().Set("X-Waldo-Model-Version", strconv.Itoa(version))
			w.WriteHeader(http.StatusNotModified)
			return
		case <-r.Context().Done():
			s.watch.disconnect.Inc()
			return
		case <-s.closed:
			// Server shutting down: answer instead of pinning the
			// listener's drain until the horizon. 503 sends resilient
			// clients into their backoff-and-re-arm path.
			s.watch.shutdown.Inc()
			w.Header().Set("X-Waldo-Model-Version", strconv.Itoa(version))
			http.Error(w, "server shutting down", http.StatusServiceUnavailable)
			return
		}
	}
}
