package wal

import "sync/atomic"

// flakyFS wraps a real FS and, when armed, fails every file fsync — the
// minimal failure the log must turn into fail-stop wedging.
type flakyFS struct {
	FS
	failSyncs atomic.Bool
}

func (f *flakyFS) OpenAppend(path string) (File, error) {
	file, err := f.FS.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &flakyFile{File: file, fs: f}, nil
}

func (f *flakyFS) Create(path string) (File, error) {
	file, err := f.FS.Create(path)
	if err != nil {
		return nil, err
	}
	return &flakyFile{File: file, fs: f}, nil
}

type flakyFile struct {
	File
	fs *flakyFS
}

func (f *flakyFile) Sync() error {
	if f.fs.failSyncs.Load() {
		return errInjected
	}
	return f.File.Sync()
}

type injectedError struct{}

func (injectedError) Error() string { return "injected fsync failure" }

var errInjected = injectedError{}
