// Command waldo-server runs the central Waldo spectrum database: it
// bootstraps from a readings CSV (as produced by waldo-wardrive), trains
// the White Space Detection Models, and serves the model-download and
// reading-upload API that mobile WSDs use.
//
// Usage:
//
//	waldo-wardrive -out campaign.csv
//	waldo-server -data campaign.csv -addr :8473
//
// Endpoints (see the dbserver package comment for the full API):
//
//	GET  /v1/health                      → liveness
//	GET  /healthz                        → readiness + per-store counts (JSON)
//	GET  /metrics                        → Prometheus text exposition
//	GET  /v1/model?channel=47&sensor=1   → binary model descriptor
//	POST /v1/readings                    → JSON reading upload (α′ gated)
//	POST /v1/retrain?channel=47&sensor=1 → rebuild one model
//	GET  /v1/export?channel=47&sensor=1  → trusted store as CSV
//	GET  /v1/stats                       → per-store stats (JSON)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/wsdetect/waldo/internal/core"
	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/dbserver"
	"github.com/wsdetect/waldo/internal/features"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "waldo-server:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("waldo-server", flag.ContinueOnError)
	addr := fs.String("addr", ":8473", "listen address")
	data := fs.String("data", "", "bootstrap readings CSV (required unless -data-dir has recovered state)")
	clusterK := fs.Int("clusters", 3, "localities per model")
	classifier := fs.String("classifier", "svm", "per-locality classifier: svm|nb|svm-linear")
	alphaPrime := fs.Float64("alpha-prime", 1.0, "upload acceptance CI span (dB)")
	dataDir := fs.String("data-dir", "", "durable store directory (WAL + snapshots); empty = in-memory only")
	snapshotEvery := fs.Int("snapshot-every", 10000, "compact a store's WAL into a snapshot after this many journaled readings (0 = only via /v1/admin/snapshot)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" && *dataDir == "" {
		return fmt.Errorf("-data is required (generate one with waldo-wardrive) unless -data-dir is set")
	}

	var kind core.ClassifierKind
	switch *classifier {
	case "svm":
		kind = core.KindSVM
	case "nb":
		kind = core.KindNB
	case "svm-linear":
		kind = core.KindLinearSVM
	default:
		return fmt.Errorf("unknown classifier %q", *classifier)
	}

	var readings []dataset.Reading
	if *data != "" {
		f, err := os.Open(*data)
		if err != nil {
			return err
		}
		if strings.HasSuffix(*data, ".gob") {
			readings, err = dataset.ReadGob(f)
		} else {
			readings, err = dataset.ReadCSV(f)
		}
		f.Close()
		if err != nil {
			return fmt.Errorf("load %s: %w", *data, err)
		}
		log.Printf("loaded %d readings from %s", len(readings), *data)
	}

	srv, err := dbserver.Open(dbserver.Config{
		Constructor: core.ConstructorConfig{
			ClusterK:   *clusterK,
			Classifier: kind,
			Features:   features.SetLocationRSSCFT,
		},
		AlphaPrimeDB:  *alphaPrime,
		DataDir:       *dataDir,
		SnapshotEvery: *snapshotEvery,
	})
	if err != nil {
		return fmt.Errorf("open store: %w", err)
	}
	defer srv.Close()
	if len(readings) > 0 {
		start := time.Now()
		if err := srv.Bootstrap(readings); err != nil {
			return fmt.Errorf("bootstrap: %w", err)
		}
		log.Printf("trained models in %.1fs", time.Since(start).Seconds())
	}
	log.Printf("serving on %s (metrics at /metrics, readiness at /healthz)", *addr)

	server := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	// On SIGINT/SIGTERM: stop accepting requests, then flush and close
	// the WAL so no acknowledged upload is lost to a clean shutdown.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- server.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := server.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return srv.Close()
	}
}
