// Package vscope reimplements the two modules of V-Scope (Zhang et al.,
// MobiCom'14) that the paper implements for its comparison (§4.4):
// measurement clustering and per-cluster propagation-model fitting.
// V-Scope improves on generic spectrum databases by learning log-distance
// path-loss parameters from locally collected measurements, then
// predicting white-space availability from location alone — which is
// precisely why Waldo beats it: a fitted distance law still cannot express
// terrain pockets or any non-radial coverage structure.
package vscope

import (
	"fmt"
	"math"

	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/geo"
	"github.com/wsdetect/waldo/internal/ml/kmeans"
	"github.com/wsdetect/waldo/internal/rfenv"
)

// Fitted path-loss exponents are clamped to a physical range: fits on
// noisy fringe data can otherwise go negative or explode.
const (
	minExponent = 1.5
	maxExponent = 6.0
)

// Config parameterizes training.
type Config struct {
	// Transmitters is the incumbent registry (V-Scope, like any
	// measurement-augmented database, starts from the public database).
	Transmitters []rfenv.Transmitter
	// ClusterK is the number of measurement clusters; default 3.
	ClusterK int
	// ThresholdDBm is the protected-contour level; 0 means −84.
	ThresholdDBm float64
	// ProtectRadiusM is the portable separation; 0 means 6000.
	ProtectRadiusM float64
	// Seed drives clustering.
	Seed int64
}

// clusterFit is one cluster's fitted log-distance model for one channel:
// RSS(d) = A − 10·n·log10(d/km).
type clusterFit struct {
	a float64 // intercept at 1 km, dBm
	n float64 // path-loss exponent
	// contourM is the fitted decodability radius for the dominant
	// transmitter, precomputed for queries.
	contourM float64
}

type channelModel struct {
	tx       rfenv.Transmitter // dominant (strongest-at-centroid) station
	centers  [][]float64
	clusters []clusterFit
}

// Model is a trained V-Scope instance covering one campaign area.
type Model struct {
	cfg    Config
	proj   *geo.Projector
	models map[rfenv.Channel]*channelModel
}

// Train fits per-cluster propagation models from the readings of each
// channel. readings maps channel → that channel's readings (one sensor).
func Train(readings map[rfenv.Channel][]dataset.Reading, cfg Config) (*Model, error) {
	if len(readings) == 0 {
		return nil, fmt.Errorf("vscope: no readings")
	}
	if len(cfg.Transmitters) == 0 {
		return nil, fmt.Errorf("vscope: no transmitter registry")
	}
	if cfg.ClusterK == 0 {
		cfg.ClusterK = 3
	}
	if cfg.ClusterK < 1 {
		return nil, fmt.Errorf("vscope: bad cluster count %d", cfg.ClusterK)
	}
	if cfg.ThresholdDBm == 0 {
		cfg.ThresholdDBm = -84
	}
	if cfg.ProtectRadiusM == 0 {
		cfg.ProtectRadiusM = 6000
	}

	var origin geo.Point
	for _, rs := range readings {
		if len(rs) == 0 {
			return nil, fmt.Errorf("vscope: empty channel set")
		}
		origin = rs[0].Loc
		break
	}
	m := &Model{
		cfg:    cfg,
		proj:   geo.NewProjector(origin),
		models: make(map[rfenv.Channel]*channelModel),
	}

	for ch, rs := range readings {
		tx, err := dominantTransmitter(cfg.Transmitters, ch, rs)
		if err != nil {
			return nil, fmt.Errorf("vscope: %v: %w", ch, err)
		}
		locs := make([][]float64, len(rs))
		for i := range rs {
			xy := m.proj.ToXY(rs[i].Loc)
			locs[i] = []float64{xy.X / 1000, xy.Y / 1000}
		}
		k := cfg.ClusterK
		if k > len(rs) {
			k = len(rs)
		}
		clu, err := kmeans.Run(locs, kmeans.Config{K: k, Seed: cfg.Seed + int64(ch)})
		if err != nil {
			return nil, fmt.Errorf("vscope: %v: %w", ch, err)
		}
		cm := &channelModel{tx: tx, centers: clu.Centers, clusters: make([]clusterFit, k)}
		for c := 0; c < k; c++ {
			var dists, rsses []float64
			for i := range rs {
				if clu.Assignments[i] != c {
					continue
				}
				dKM := tx.Loc.DistanceM(rs[i].Loc) / 1000
				if dKM < 0.05 {
					dKM = 0.05
				}
				dists = append(dists, math.Log10(dKM))
				rsses = append(rsses, rs[i].Signal.RSSdBm)
			}
			fit, err := fitLogDistance(dists, rsses, cfg.ThresholdDBm)
			if err != nil {
				return nil, fmt.Errorf("vscope: %v cluster %d: %w", ch, c, err)
			}
			cm.clusters[c] = fit
		}
		m.models[ch] = cm
	}
	return m, nil
}

// dominantTransmitter picks the station with the strongest mean signal
// implied by the readings: in practice the closest one on the channel.
func dominantTransmitter(txs []rfenv.Transmitter, ch rfenv.Channel, rs []dataset.Reading) (rfenv.Transmitter, error) {
	centroid := rs[len(rs)/2].Loc
	best := -1
	bestD := math.Inf(1)
	for i, tx := range txs {
		if tx.Channel != ch {
			continue
		}
		if d := tx.Loc.DistanceM(centroid); d < bestD {
			bestD = d
			best = i
		}
	}
	if best < 0 {
		return rfenv.Transmitter{}, fmt.Errorf("no transmitter on channel")
	}
	return txs[best], nil
}

// fitLogDistance least-squares fits RSS = a − 10·n·log10(d) and derives
// the decodability contour radius.
func fitLogDistance(logD, rss []float64, thresholdDBm float64) (clusterFit, error) {
	if len(logD) < 2 {
		// Too few points to fit: fall back to a generic urban exponent
		// anchored at the sample mean.
		n := 3.5
		a := thresholdDBm
		if len(rss) == 1 {
			a = rss[0] + 10*n*logD[0]
		}
		return newFit(a, n, thresholdDBm), nil
	}
	var sx, sy, sxx, sxy float64
	nPts := float64(len(logD))
	for i := range logD {
		sx += logD[i]
		sy += rss[i]
		sxx += logD[i] * logD[i]
		sxy += logD[i] * rss[i]
	}
	den := nPts*sxx - sx*sx
	var slope, a float64
	if math.Abs(den) < 1e-9 {
		// All readings at one distance ring: anchor a generic exponent.
		slope = -35
		a = sy/nPts - slope*(sx/nPts)
	} else {
		slope = (nPts*sxy - sx*sy) / den
		a = (sy - slope*sx) / nPts
	}
	n := -slope / 10
	if n < minExponent {
		n = minExponent
	}
	if n > maxExponent {
		n = maxExponent
	}
	return newFit(a, n, thresholdDBm), nil
}

func newFit(a, n, thresholdDBm float64) clusterFit {
	// Contour: a − 10·n·log10(d_km) = threshold ⇒ d = 10^((a−threshold)/(10n)).
	d := math.Pow(10, (a-thresholdDBm)/(10*n)) * 1000
	if d > 1.5e6 {
		d = 1.5e6
	}
	return clusterFit{a: a, n: n, contourM: d}
}

// PredictRSS returns the fitted field estimate at p (used for diagnostics
// and the error analysis of §4.4).
func (m *Model) PredictRSS(ch rfenv.Channel, p geo.Point) (float64, error) {
	cm, ok := m.models[ch]
	if !ok {
		return 0, fmt.Errorf("vscope: no model for %v", ch)
	}
	fit := cm.clusterAt(m.proj, p)
	dKM := cm.tx.Loc.DistanceM(p) / 1000
	if dKM < 0.05 {
		dKM = 0.05
	}
	return fit.a - 10*fit.n*math.Log10(dKM), nil
}

// Available reports V-Scope's white-space answer: outside the fitted
// contour plus the protection radius of the dominant station.
func (m *Model) Available(ch rfenv.Channel, p geo.Point) (bool, error) {
	cm, ok := m.models[ch]
	if !ok {
		return false, fmt.Errorf("vscope: no model for %v", ch)
	}
	fit := cm.clusterAt(m.proj, p)
	return cm.tx.Loc.DistanceM(p) > fit.contourM+m.cfg.ProtectRadiusM, nil
}

// clusterAt picks the fitted cluster covering p.
func (cm *channelModel) clusterAt(proj *geo.Projector, p geo.Point) clusterFit {
	xy := proj.ToXY(p)
	idx, _ := kmeans.Nearest(cm.centers, []float64{xy.X / 1000, xy.Y / 1000})
	return cm.clusters[idx]
}

// FittedExponent exposes a cluster's fitted path-loss exponent (reports).
func (m *Model) FittedExponent(ch rfenv.Channel, cluster int) (float64, error) {
	cm, ok := m.models[ch]
	if !ok {
		return 0, fmt.Errorf("vscope: no model for %v", ch)
	}
	if cluster < 0 || cluster >= len(cm.clusters) {
		return 0, fmt.Errorf("vscope: no cluster %d on %v", cluster, ch)
	}
	return cm.clusters[cluster].n, nil
}
