// Package benchharness is the end-to-end latency-SLO harness: it boots a
// real spectrum database (a single waldo-server, or the 3-shard gateway
// topology) in-process, drives it with open-loop load at fixed offered
// rates, and reports per-endpoint tail latency, GC pause distribution,
// and achieved-vs-offered throughput per tier into the BENCH_E2E.json
// trajectory (see report.go and cmd/waldo-bench-e2e).
//
// # Why open-loop
//
// A closed-loop client (cmd/waldo-loadgen's historical mode) issues the
// next request only after the previous one returns, so when the server
// slows down the client slows its own offered load and the measured
// latency distribution silently sheds exactly the samples that matter —
// the coordinated-omission trap. The open-loop scheduler here fixes the
// send times in advance at the offered rate and measures every
// operation's latency from its *scheduled* start, so queueing delay at
// saturation lands in the histogram instead of vanishing. Sends the
// harness cannot even start on time are counted (late) and sends past
// the backlog bound are counted and skipped (dropped), never hidden.
package benchharness

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// OpenLoopConfig parameterizes one fixed-rate operation stream.
type OpenLoopConfig struct {
	// Rate is the offered operation rate per second (> 0).
	Rate float64
	// Workers bounds operation concurrency. 0 means 32.
	Workers int
	// Duration is how long the stream runs.
	Duration time.Duration
	// MaxBacklog bounds scheduled-but-not-started operations; a send
	// arriving at a full backlog is dropped (and counted) instead of
	// queueing without bound. 0 means 4× Workers.
	MaxBacklog int
	// LateThreshold classifies a send as late when it leaves the backlog
	// more than this long after its scheduled time. 0 means 2ms.
	LateThreshold time.Duration
}

func (c *OpenLoopConfig) defaults() {
	if c.Workers <= 0 {
		c.Workers = 32
	}
	if c.MaxBacklog <= 0 {
		c.MaxBacklog = 4 * c.Workers
	}
	if c.LateThreshold <= 0 {
		c.LateThreshold = 2 * time.Millisecond
	}
}

// OpenLoopStats reports what the scheduler managed against its offer.
type OpenLoopStats struct {
	// Scheduled is how many sends the fixed-rate plan called for.
	Scheduled uint64
	// Completed is how many operations ran to completion.
	Completed uint64
	// Dropped counts sends skipped because the backlog was full — offered
	// load the system under test never even saw.
	Dropped uint64
	// Late counts operations that started more than LateThreshold after
	// their scheduled time (their latency still includes that delay).
	Late uint64
	// Elapsed is the wall time of the whole stream, including the drain
	// of in-flight operations after the last send.
	Elapsed time.Duration
}

// RunOpenLoop drives op at cfg.Rate for cfg.Duration from a bounded
// worker pool. op receives its worker index and scheduled start time and
// MUST measure its own latency from that scheduled time — that is the
// coordinated-omission contract. Cancel ctx to stop early; in-flight
// operations finish either way.
func RunOpenLoop(ctx context.Context, cfg OpenLoopConfig, op func(worker int, scheduled time.Time)) OpenLoopStats {
	cfg.defaults()
	var stats OpenLoopStats
	var late, completed atomic.Uint64

	backlog := make(chan time.Time, cfg.MaxBacklog)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for sched := range backlog {
				if time.Since(sched) > cfg.LateThreshold {
					late.Add(1)
				}
				op(worker, sched)
				completed.Add(1)
			}
		}(w)
	}

	interval := time.Duration(float64(time.Second) / cfg.Rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	start := time.Now()
	end := start.Add(cfg.Duration)
	next := start
dispatch:
	for next.Before(end) {
		// Catch up in a burst: at high rates the sleep below overshoots
		// several intervals, so every wake flushes the whole overdue plan
		// rather than sliding the schedule (which would understate the
		// offered rate).
		now := time.Now()
		for !next.After(now) && next.Before(end) {
			stats.Scheduled++
			select {
			case backlog <- next:
			default:
				stats.Dropped++
			}
			next = next.Add(interval)
		}
		if !next.Before(end) {
			break
		}
		select {
		case <-ctx.Done():
			break dispatch
		case <-time.After(time.Until(next)):
		}
	}
	close(backlog)
	wg.Wait()
	stats.Late = late.Load()
	stats.Completed = completed.Load()
	stats.Elapsed = time.Since(start)
	return stats
}
