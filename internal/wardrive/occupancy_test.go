package wardrive

import (
	"testing"

	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
)

// TestMetroOccupancySpectrum checks (and logs) the ground-truth white-space
// availability per channel under Algorithm 1, which must reproduce the
// paper's structure: 27/39 fully occupied, a spread of partial channels,
// and weak channels that are mostly white space.
func TestMetroOccupancySpectrum(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	env, err := rfenv.BuildMetro(11)
	if err != nil {
		t.Fatal(err)
	}
	route, err := GenerateRoute(RouteConfig{Area: env.Area, Samples: 1500, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	camp, err := Run(CampaignConfig{Env: env, Route: route, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}

	fracs := make(map[rfenv.Channel]float64)
	for _, ch := range camp.Channels {
		labels, err := camp.Labels(ch, sensor.KindSpectrumAnalyzer, dataset.LabelConfig{})
		if err != nil {
			t.Fatal(err)
		}
		fracs[ch] = dataset.SafeFraction(labels)
		t.Logf("%v: safe fraction %.3f", ch, fracs[ch])
	}

	for _, ch := range []rfenv.Channel{27, 39} {
		if fracs[ch] > 0.01 {
			t.Errorf("%v safe fraction = %.3f, want ≈0 (fully occupied)", ch, fracs[ch])
		}
	}
	// Channel 21's white space hovers near the RTL-SDR floor but the
	// channel still has both classes (the Fig. 7 anomaly channel).
	if fracs[21] < 0.05 || fracs[21] > 0.7 {
		t.Errorf("ch21 safe fraction = %.3f, want mixed occupancy", fracs[21])
	}
	// The seven evaluation channels must span a range of occupancy, not
	// collapse to one regime.
	var lo, hi int
	for _, ch := range rfenv.EvalChannels {
		if fracs[ch] < 0.3 {
			lo++
		}
		if fracs[ch] > 0.4 {
			hi++
		}
	}
	if lo == 0 || hi == 0 {
		t.Errorf("occupancy spread too flat: %v", fracs)
	}

	// Fig. 15 structure: the +7.5 dB antenna correction makes channels
	// 21, 30 and 46 entirely not-safe, while 15/17/22/47 keep some white
	// space.
	corr := rfenv.AntennaHeightGapCorrectionDB()
	for _, ch := range rfenv.EvalChannels {
		labels, err := camp.Labels(ch, sensor.KindSpectrumAnalyzer, dataset.LabelConfig{CorrectionDB: corr})
		if err != nil {
			t.Fatal(err)
		}
		f := dataset.SafeFraction(labels)
		t.Logf("%v corrected: safe fraction %.3f", ch, f)
		switch ch {
		case 21, 30, 46:
			if f > 0.02 {
				t.Errorf("%v corrected safe fraction = %.3f, want ≈0", ch, f)
			}
		default:
			if f < 0.01 {
				t.Errorf("%v corrected safe fraction = %.3f, want some white space to survive", ch, f)
			}
		}
	}
}
