package geo

import (
	"fmt"
	"math"
)

// GridIndex is a uniform spatial hash over a local tangent plane that
// answers "which stored items lie within R meters of this point" queries.
// It backs the Algorithm 1 labeler, whose 6 km protection radius makes
// naive O(n²) neighborhood scans the bottleneck of dataset construction.
//
// Items are stored by integer ID (typically an index into a reading slice).
// The zero value is not usable; construct with NewGridIndex.
type GridIndex struct {
	proj  *Projector
	cellM float64
	cells map[cellKey][]gridItem
	n     int
}

type cellKey struct{ cx, cy int32 }

type gridItem struct {
	id int
	xy XY
}

// NewGridIndex returns an index whose cells are cellM meters on a side,
// projected around origin. cellM should be on the order of the query radius
// for best performance.
func NewGridIndex(origin Point, cellM float64) (*GridIndex, error) {
	if cellM <= 0 || math.IsNaN(cellM) {
		return nil, fmt.Errorf("geo: cell size must be positive, got %v", cellM)
	}
	return &GridIndex{
		proj:  NewProjector(origin),
		cellM: cellM,
		cells: make(map[cellKey][]gridItem),
	}, nil
}

// Len returns the number of stored items.
func (g *GridIndex) Len() int { return g.n }

func (g *GridIndex) keyFor(xy XY) cellKey {
	return cellKey{
		cx: int32(math.Floor(xy.X / g.cellM)),
		cy: int32(math.Floor(xy.Y / g.cellM)),
	}
}

// Insert stores id at point p.
func (g *GridIndex) Insert(id int, p Point) {
	xy := g.proj.ToXY(p)
	k := g.keyFor(xy)
	g.cells[k] = append(g.cells[k], gridItem{id: id, xy: xy})
	g.n++
}

// WithinRadius calls fn for every stored item within radiusM meters of p
// (planar distance). Iteration stops early if fn returns false.
func (g *GridIndex) WithinRadius(p Point, radiusM float64, fn func(id int) bool) {
	if radiusM < 0 {
		return
	}
	xy := g.proj.ToXY(p)
	span := int32(math.Ceil(radiusM / g.cellM))
	center := g.keyFor(xy)
	r2 := radiusM * radiusM
	for cy := center.cy - span; cy <= center.cy+span; cy++ {
		for cx := center.cx - span; cx <= center.cx+span; cx++ {
			for _, it := range g.cells[cellKey{cx: cx, cy: cy}] {
				dx := it.xy.X - xy.X
				dy := it.xy.Y - xy.Y
				if dx*dx+dy*dy <= r2 {
					if !fn(it.id) {
						return
					}
				}
			}
		}
	}
}

// IDsWithinRadius collects the IDs of all items within radiusM of p.
func (g *GridIndex) IDsWithinRadius(p Point, radiusM float64) []int {
	var ids []int
	g.WithinRadius(p, radiusM, func(id int) bool {
		ids = append(ids, id)
		return true
	})
	return ids
}

// AnyWithinRadius reports whether at least one item lies within radiusM of p.
func (g *GridIndex) AnyWithinRadius(p Point, radiusM float64) bool {
	found := false
	g.WithinRadius(p, radiusM, func(int) bool {
		found = true
		return false
	})
	return found
}
