// Command waldo-server runs the central Waldo spectrum database: it
// bootstraps from a readings CSV (as produced by waldo-wardrive), trains
// the White Space Detection Models, and serves the model-download and
// reading-upload API that mobile WSDs use.
//
// Usage:
//
//	waldo-wardrive -out campaign.csv
//	waldo-server -data campaign.csv -addr :8473
//
// Endpoints (see the dbserver package comment for the full API):
//
//	GET  /v1/health                      → liveness
//	GET  /healthz                        → readiness + per-store counts (JSON)
//	GET  /metrics                        → Prometheus text exposition
//	GET  /v1/model?channel=47&sensor=1   → binary model descriptor
//	POST /v1/readings                    → JSON reading upload (α′ gated)
//	POST /v1/retrain?channel=47&sensor=1 → rebuild one model
//	GET  /v1/export?channel=47&sensor=1  → trusted store as CSV
//	GET  /v1/stats                       → per-store stats (JSON)
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/wsdetect/waldo/internal/core"
	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/dbserver"
	"github.com/wsdetect/waldo/internal/features"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "waldo-server:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("waldo-server", flag.ContinueOnError)
	addr := fs.String("addr", ":8473", "listen address")
	data := fs.String("data", "", "bootstrap readings CSV (required)")
	clusterK := fs.Int("clusters", 3, "localities per model")
	classifier := fs.String("classifier", "svm", "per-locality classifier: svm|nb|svm-linear")
	alphaPrime := fs.Float64("alpha-prime", 1.0, "upload acceptance CI span (dB)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("-data is required (generate one with waldo-wardrive)")
	}

	var kind core.ClassifierKind
	switch *classifier {
	case "svm":
		kind = core.KindSVM
	case "nb":
		kind = core.KindNB
	case "svm-linear":
		kind = core.KindLinearSVM
	default:
		return fmt.Errorf("unknown classifier %q", *classifier)
	}

	f, err := os.Open(*data)
	if err != nil {
		return err
	}
	var readings []dataset.Reading
	if strings.HasSuffix(*data, ".gob") {
		readings, err = dataset.ReadGob(f)
	} else {
		readings, err = dataset.ReadCSV(f)
	}
	f.Close()
	if err != nil {
		return fmt.Errorf("load %s: %w", *data, err)
	}
	log.Printf("loaded %d readings from %s", len(readings), *data)

	srv := dbserver.New(dbserver.Config{
		Constructor: core.ConstructorConfig{
			ClusterK:   *clusterK,
			Classifier: kind,
			Features:   features.SetLocationRSSCFT,
		},
		AlphaPrimeDB: *alphaPrime,
	})
	start := time.Now()
	if err := srv.Bootstrap(readings); err != nil {
		return fmt.Errorf("bootstrap: %w", err)
	}
	log.Printf("trained models in %.1fs; serving on %s (metrics at /metrics, readiness at /healthz)",
		time.Since(start).Seconds(), *addr)

	server := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return server.ListenAndServe()
}
