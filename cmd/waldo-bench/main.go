// Command waldo-bench regenerates the paper's tables and figures on the
// simulated metro campaign and prints them as text reports.
//
// Usage:
//
//	waldo-bench [-seed N] [-samples N] [-run regexp-free-name-list]
//
// With no -run filter every experiment runs in paper order.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/wsdetect/waldo/internal/experiments"
)

// renderer is any experiment result.
type renderer interface{ Render() string }

type experiment struct {
	name string
	run  func(s *experiments.Suite) (renderer, error)
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "waldo-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("waldo-bench", flag.ContinueOnError)
	seed := fs.Int64("seed", 42, "campaign seed")
	samples := fs.Int("samples", 5282, "readings per channel per sensor")
	filter := fs.String("run", "", "comma-separated experiment names (default: all)")
	list := fs.Bool("list", false, "list experiment names and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	exps := registry()
	if *list {
		for _, e := range exps {
			fmt.Println(e.name)
		}
		return nil
	}

	wanted := map[string]bool{}
	if *filter != "" {
		for _, name := range strings.Split(*filter, ",") {
			wanted[strings.TrimSpace(name)] = true
		}
	}

	suite := experiments.NewSuite(experiments.Config{Seed: *seed, Samples: *samples})
	for _, e := range exps {
		if len(wanted) > 0 && !wanted[e.name] {
			continue
		}
		start := time.Now()
		res, err := e.run(suite)
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Printf("==== %s (%.1fs) ====\n%s\n", e.name, time.Since(start).Seconds(), res.Render())
	}
	return nil
}

func registry() []experiment {
	return []experiment{
		{"fig4", func(s *experiments.Suite) (renderer, error) { return s.Fig4() }},
		{"fig5", func(s *experiments.Suite) (renderer, error) { return s.Fig5SensorSensitivity() }},
		{"fig6", func(s *experiments.Suite) (renderer, error) { return s.Fig6DetectionTraces(0) }},
		{"fig7", func(s *experiments.Suite) (renderer, error) { return s.Fig7LabelCorrelation() }},
		{"sec22", func(s *experiments.Suite) (renderer, error) { return s.Sec22SafetyEfficiency() }},
		{"fig10-11", func(s *experiments.Suite) (renderer, error) { return s.Fig10and11FeatureBoxplots() }},
		{"fig12", func(s *experiments.Suite) (renderer, error) { return s.Fig12FeatureEffect() }},
		{"fig13", func(s *experiments.Suite) (renderer, error) { return s.Fig13LocalModels() }},
		{"fig14", func(s *experiments.Suite) (renderer, error) { return s.Fig14TrainingSize() }},
		{"fig15", func(s *experiments.Suite) (renderer, error) { return s.Fig15AntennaCorrection() }},
		{"table1-fig16", func(s *experiments.Suite) (renderer, error) { return s.Table1VScopeComparison() }},
		{"fig17", func(s *experiments.Suite) (renderer, error) { return s.Fig17Convergence() }},
		{"fig18", func(s *experiments.Suite) (renderer, error) { return s.Fig18CPUOverhead() }},
		{"sec5", func(s *experiments.Suite) (renderer, error) { return s.Sec5ModelSize() }},
		{"table2", func(s *experiments.Suite) (renderer, error) { return s.Table2Qualitative() }},
		{"ablation-classifiers", func(s *experiments.Suite) (renderer, error) { return s.AblationClassifiers() }},
		{"ablation-labeling", func(s *experiments.Suite) (renderer, error) { return s.AblationLabeling() }},
		{"ablation-features", func(s *experiments.Suite) (renderer, error) { return s.AblationFeatureOrder() }},
		{"ablation-interpolation", func(s *experiments.Suite) (renderer, error) { return s.AblationInterpolation() }},
		{"ablation-margin", func(s *experiments.Suite) (renderer, error) { return s.AblationSafetyMargin() }},
		{"ablation-temporal", func(s *experiments.Suite) (renderer, error) { return s.AblationTemporalDrift() }},
	}
}
