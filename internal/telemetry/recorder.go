package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Trace is one in-flight request's trace: an ID shared across processes
// plus the spans this process recorded for it. Spans append themselves
// on End; when the root span ends the trace is offered to the flight
// recorder. A Trace is created via Registry.StartTrace and never reused.
type Trace struct {
	id       TraceID
	root     SpanID
	endpoint string
	start    time.Time
	sampled  bool
	rec      *Recorder

	mu       sync.Mutex
	spans    []SpanData
	errored  bool
	finished bool
}

func (t *Trace) setErrored() {
	t.mu.Lock()
	t.errored = true
	t.mu.Unlock()
}

func (t *Trace) addSpan(rec SpanData) {
	t.mu.Lock()
	if !t.finished {
		t.spans = append(t.spans, rec)
	}
	t.mu.Unlock()
}

// finish seals the trace and hands it to the recorder. Called exactly
// once, when the root span ends; spans ending after that (a leaked
// goroutine outliving its request) are dropped rather than mutating a
// retained trace.
func (t *Trace) finish(end time.Time) {
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return
	}
	t.finished = true
	spans, errored := t.spans, t.errored
	t.mu.Unlock()
	if t.rec == nil || !t.sampled {
		return
	}
	t.rec.record(&TraceData{
		TraceID:  t.id.String(),
		Endpoint: t.endpoint,
		Start:    t.start,
		Duration: end.Sub(t.start),
		Errored:  errored,
		Spans:    spans,
	})
}

// StartTrace begins a request-scoped trace rooted at a span named name
// (conventionally the route). parent, when valid, supplies the trace ID
// and the remote parent span (the X-Waldo-Trace header of an incoming
// request); otherwise a fresh sampled trace is minted. The returned root
// span's Context() is what goes back out in response headers and onward
// in fan-out requests. Completion is reported to the registry's flight
// recorder, if one is attached.
func (r *Registry) StartTrace(name string, parent SpanContext) *Span {
	if r == nil {
		return nil
	}
	tr := &Trace{
		id:       parent.Trace,
		endpoint: name,
		start:    time.Now(),
		sampled:  parent.Sampled,
		rec:      r.FlightRecorder(),
	}
	if !parent.Valid() {
		tr.id = NewTraceID()
		tr.sampled = true
	}
	sp := newSpan(r, r.spanNodeFor(name), tr, parent.Span)
	tr.root = sp.id
	return sp
}

// TraceData is one completed, retained trace as served by /debug/traces.
type TraceData struct {
	TraceID  string        `json:"trace_id"`
	Endpoint string        `json:"endpoint"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Errored  bool          `json:"errored,omitempty"`
	// Class is how the recorder retained the trace: "error", "slow", or
	// "recent".
	Class string     `json:"class"`
	Spans []SpanData `json:"spans"`
}

// SpanData is one completed span within a retained trace.
type SpanData struct {
	Name     string        `json:"name"`
	SpanID   string        `json:"span_id"`
	ParentID string        `json:"parent_id,omitempty"`
	Offset   time.Duration `json:"offset_ns"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
	Error    string        `json:"error,omitempty"`
}

// Retention classes. Separate fixed-size rings per class are the whole
// tail-sampling policy: healthy high-rate traffic can only ever evict
// other healthy traces, so errored traces and slow-percentile traces
// survive any amount of sampling pressure until that class's own ring
// wraps.
const (
	classError = iota
	classSlow
	classRecent
	numClasses
)

var classNames = [numClasses]string{"error", "slow", "recent"}

// slowWindowSize is how many recent durations per endpoint feed the
// slow-percentile threshold.
const slowWindowSize = 256

// RecorderOptions parameterizes NewRecorder. The zero value is ready:
// 256 traces per class, slow = p95 per endpoint, thresholds recomputed
// every second.
type RecorderOptions struct {
	// Capacity is the per-class ring size; default 256.
	Capacity int
	// SlowQuantile is the per-endpoint duration quantile at or above
	// which a trace is classified slow; default 0.95.
	SlowQuantile float64
	// MinSamples is how many durations an endpoint must have produced
	// before slow classification kicks in (a cold endpoint has no
	// meaningful percentile); default 32.
	MinSamples int
	// RecomputeInterval is how often the background goroutine refreshes
	// the per-endpoint slow thresholds; default 1s.
	RecomputeInterval time.Duration
	// Metrics, when set, receives the waldo_trace_* series.
	Metrics *Registry
}

// endpointWindow is a fixed ring of one endpoint's recent durations in
// seconds.
type endpointWindow struct {
	durs []float64
	next int
	full bool
}

func (w *endpointWindow) add(v float64) {
	if len(w.durs) < slowWindowSize {
		w.durs = append(w.durs, v)
		return
	}
	w.durs[w.next] = v
	w.next = (w.next + 1) % slowWindowSize
	w.full = true
}

// Recorder is the in-memory flight recorder: fixed-size rings of recent
// traces, tail-sampled so errored and slow traces always survive
// healthy-traffic pressure. The record path is one short mutex-protected
// section (classification + ring slot write); rendering happens only on
// /debug/traces reads. Close stops the threshold-recompute goroutine;
// records after Close are dropped. Nil-safe like the rest of the
// package: every method on a nil *Recorder no-ops.
type Recorder struct {
	opts RecorderOptions

	mu         sync.Mutex
	rings      [numClasses][]*TraceData
	next       [numClasses]int
	windows    map[string]*endpointWindow
	thresholds map[string]time.Duration
	closed     bool

	done      chan struct{}
	loopWG    sync.WaitGroup
	closeOnce sync.Once

	recorded [numClasses]*Counter
	evicted  [numClasses]*Counter
}

// NewRecorder builds and starts a flight recorder (including its
// background threshold-recompute goroutine — pair with Close).
func NewRecorder(opts RecorderOptions) *Recorder {
	if opts.Capacity <= 0 {
		opts.Capacity = 256
	}
	if opts.SlowQuantile <= 0 || opts.SlowQuantile >= 1 {
		opts.SlowQuantile = 0.95
	}
	if opts.MinSamples <= 0 {
		opts.MinSamples = 32
	}
	if opts.RecomputeInterval <= 0 {
		opts.RecomputeInterval = time.Second
	}
	rec := &Recorder{
		opts:       opts,
		windows:    make(map[string]*endpointWindow),
		thresholds: make(map[string]time.Duration),
		done:       make(chan struct{}),
	}
	for c := 0; c < numClasses; c++ {
		rec.rings[c] = make([]*TraceData, opts.Capacity)
		rec.recorded[c] = opts.Metrics.Counter("waldo_trace_recorded_total",
			"Traces retained by the flight recorder, by retention class.", "class", classNames[c])
		rec.evicted[c] = opts.Metrics.Counter("waldo_trace_evicted_total",
			"Retained traces overwritten by newer ones of the same class.", "class", classNames[c])
	}
	rec.loopWG.Add(1)
	go rec.loop()
	return rec
}

// Close stops the recorder's background goroutine and drops subsequent
// records. Retained traces stay readable. Safe to call more than once
// and from any goroutine.
func (rec *Recorder) Close() {
	if rec == nil {
		return
	}
	rec.closeOnce.Do(func() {
		rec.mu.Lock()
		rec.closed = true
		rec.mu.Unlock()
		close(rec.done)
	})
	rec.loopWG.Wait()
}

func (rec *Recorder) loop() {
	defer rec.loopWG.Done()
	t := time.NewTicker(rec.opts.RecomputeInterval)
	defer t.Stop()
	for {
		select {
		case <-rec.done:
			return
		case <-t.C:
			rec.recompute()
		}
	}
}

// recompute refreshes the per-endpoint slow thresholds from the duration
// windows. Sorting happens on copies outside the lock.
func (rec *Recorder) recompute() {
	rec.mu.Lock()
	copies := make(map[string][]float64, len(rec.windows))
	for ep, w := range rec.windows {
		if len(w.durs) < rec.opts.MinSamples {
			continue
		}
		copies[ep] = append([]float64(nil), w.durs...)
	}
	rec.mu.Unlock()

	fresh := make(map[string]time.Duration, len(copies))
	for ep, durs := range copies {
		sort.Float64s(durs)
		idx := int(rec.opts.SlowQuantile * float64(len(durs)))
		if idx >= len(durs) {
			idx = len(durs) - 1
		}
		fresh[ep] = time.Duration(durs[idx] * float64(time.Second))
	}

	rec.mu.Lock()
	for ep, th := range fresh {
		rec.thresholds[ep] = th
	}
	rec.mu.Unlock()
}

// record classifies and retains one completed trace.
func (rec *Recorder) record(t *TraceData) {
	if rec == nil {
		return
	}
	secs := t.Duration.Seconds()
	rec.mu.Lock()
	if rec.closed {
		rec.mu.Unlock()
		return
	}
	w := rec.windows[t.Endpoint]
	if w == nil {
		w = &endpointWindow{}
		rec.windows[t.Endpoint] = w
	}
	w.add(secs)
	class := classRecent
	if t.Errored {
		class = classError
	} else if th, ok := rec.thresholds[t.Endpoint]; ok && t.Duration >= th {
		class = classSlow
	}
	t.Class = classNames[class]
	slot := rec.next[class]
	evicting := rec.rings[class][slot] != nil
	rec.rings[class][slot] = t
	rec.next[class] = (slot + 1) % len(rec.rings[class])
	rec.mu.Unlock()
	rec.recorded[class].Inc()
	if evicting {
		rec.evicted[class].Inc()
	}
}

// TraceFilter selects traces from Snapshot/the HTTP handler.
type TraceFilter struct {
	// Endpoint, when non-empty, keeps only traces whose root route
	// matches exactly.
	Endpoint string
	// MinDuration, when positive, keeps only traces at least this slow.
	MinDuration time.Duration
	// Class, when non-empty, keeps only one retention class
	// ("error", "slow", "recent").
	Class string
	// TraceID, when non-empty, keeps only the trace with this ID.
	TraceID string
}

func (f TraceFilter) match(t *TraceData) bool {
	if f.Endpoint != "" && t.Endpoint != f.Endpoint {
		return false
	}
	if f.MinDuration > 0 && t.Duration < f.MinDuration {
		return false
	}
	if f.Class != "" && t.Class != f.Class {
		return false
	}
	if f.TraceID != "" && t.TraceID != f.TraceID {
		return false
	}
	return true
}

// Snapshot returns the retained traces matching f, newest first. The
// returned TraceData values are retained by the recorder — treat them
// as read-only.
func (rec *Recorder) Snapshot(f TraceFilter) []*TraceData {
	if rec == nil {
		return nil
	}
	rec.mu.Lock()
	var out []*TraceData
	for c := 0; c < numClasses; c++ {
		for _, t := range rec.rings[c] {
			if t != nil && f.match(t) {
				out = append(out, t)
			}
		}
	}
	rec.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	return out
}

// Handler serves the recorder at GET /debug/traces.
//
// Query parameters: endpoint= (exact route), min_ms= (minimum duration,
// float milliseconds), class= (error|slow|recent), trace= (exact trace
// ID), limit= (default 50), format=json|text (default json; text is the
// human tree rendering).
func (rec *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if rec == nil {
			http.Error(w, "flight recorder disabled", http.StatusNotFound)
			return
		}
		q := r.URL.Query()
		f := TraceFilter{
			Endpoint: q.Get("endpoint"),
			Class:    q.Get("class"),
			TraceID:  q.Get("trace"),
		}
		if v := q.Get("min_ms"); v != "" {
			ms, err := strconv.ParseFloat(v, 64)
			if err != nil || ms < 0 {
				http.Error(w, "bad min_ms "+strconv.Quote(v), http.StatusBadRequest)
				return
			}
			f.MinDuration = time.Duration(ms * float64(time.Millisecond))
		}
		limit := 50
		if v := q.Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				http.Error(w, "bad limit "+strconv.Quote(v), http.StatusBadRequest)
				return
			}
			limit = n
		}
		traces := rec.Snapshot(f)
		if len(traces) > limit {
			traces = traces[:limit]
		}
		if q.Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, t := range traces {
				writeTraceText(w, t)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Count  int          `json:"count"`
			Traces []*TraceData `json:"traces"`
		}{len(traces), traces})
	})
}

// writeTraceText renders one trace as an indented span tree.
func writeTraceText(w http.ResponseWriter, t *TraceData) {
	status := "ok"
	if t.Errored {
		status = "ERROR"
	}
	fmt.Fprintf(w, "trace %s  %s  %s  %s  class=%s  %s\n",
		t.TraceID, t.Endpoint, t.Start.Format(time.RFC3339Nano),
		t.Duration, t.Class, status)
	children := make(map[string][]SpanData, len(t.Spans))
	local := make(map[string]bool, len(t.Spans))
	for _, s := range t.Spans {
		local[s.SpanID] = true
	}
	var roots []SpanData
	for _, s := range t.Spans {
		if s.ParentID != "" && local[s.ParentID] {
			children[s.ParentID] = append(children[s.ParentID], s)
		} else {
			roots = append(roots, s)
		}
	}
	var render func(s SpanData, depth int)
	render = func(s SpanData, depth int) {
		fmt.Fprintf(w, "  %*s%s  +%s  %s", depth*2, "", s.Name, s.Offset, s.Duration)
		for _, a := range s.Attrs {
			fmt.Fprintf(w, "  %s=%s", a.Key, a.Value)
		}
		if s.Error != "" {
			fmt.Fprintf(w, "  error=%q", s.Error)
		}
		fmt.Fprintln(w)
		kids := children[s.SpanID]
		sort.Slice(kids, func(i, j int) bool { return kids[i].Offset < kids[j].Offset })
		for _, k := range kids {
			render(k, depth+1)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Offset < roots[j].Offset })
	for _, s := range roots {
		render(s, 1)
	}
}
