package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{3, 5, 6, 7, 100} {
		x := make([]complex128, n)
		if err := FFT(x); err == nil {
			t.Errorf("FFT(len=%d) should fail", n)
		}
	}
}

func TestFFTEmptyAndSingle(t *testing.T) {
	if err := FFT(nil); err != nil {
		t.Errorf("FFT(nil) = %v", err)
	}
	x := []complex128{3 + 4i}
	if err := FFT(x); err != nil || x[0] != 3+4i {
		t.Errorf("FFT single = %v, %v", x, err)
	}
}

func TestFFTImpulse(t *testing.T) {
	// FFT of unit impulse is all ones.
	x := make([]complex128, 16)
	x[0] = 1
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for k, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("bin %d = %v, want 1", k, v)
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	// A complex exponential at bin k concentrates all energy in that bin.
	const n, k = 64, 5
	x := make([]complex128, n)
	for i := range x {
		ang := 2 * math.Pi * float64(k) * float64(i) / float64(n)
		x[i] = cmplx.Exp(complex(0, ang))
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for bin, v := range x {
		mag := cmplx.Abs(v)
		if bin == k {
			if math.Abs(mag-float64(n)) > 1e-9 {
				t.Errorf("bin %d magnitude = %v, want %v", bin, mag, n)
			}
		} else if mag > 1e-9 {
			t.Errorf("bin %d magnitude = %v, want ~0", bin, mag)
		}
	}
}

func TestFFTIFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 8, 64, 256, 1024} {
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		if err := FFT(x); err != nil {
			t.Fatal(err)
		}
		if err := IFFT(x); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-10 {
				t.Fatalf("n=%d round trip failed at %d: %v vs %v", n, i, x[i], orig[i])
			}
		}
	}
}

// TestFFTParseval checks energy conservation: Σ|x|² == Σ|X|²/N.
func TestFFTParseval(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 256
		x := make([]complex128, n)
		var timeEnergy float64
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			timeEnergy += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		if err := FFT(x); err != nil {
			return false
		}
		var freqEnergy float64
		for _, v := range x {
			freqEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		freqEnergy /= n
		return math.Abs(timeEnergy-freqEnergy) < 1e-8*(1+timeEnergy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPowerSpectrumDC(t *testing.T) {
	// Constant signal: all power in the DC bin, equal to amplitude².
	x := make([]complex128, 32)
	for i := range x {
		x[i] = 2
	}
	ps, err := PowerSpectrum(x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ps[0]-4) > 1e-12 {
		t.Errorf("DC power = %v, want 4", ps[0])
	}
	for k := 1; k < len(ps); k++ {
		if ps[k] > 1e-12 {
			t.Errorf("bin %d power = %v, want 0", k, ps[k])
		}
	}
	// Input must be untouched.
	for i := range x {
		if x[i] != 2 {
			t.Fatal("PowerSpectrum mutated its input")
		}
	}
}

// TestFFTZeroAlloc pins the hot-path allocation contract: once the
// twiddle table for a size exists and the scratch pool is warm, neither
// FFT nor PowerSpectrumInto allocates. This is what BenchmarkFFT256's
// 0 allocs/op measures; the test makes it a hard failure instead of a
// benchmark regression.
func TestFFTZeroAlloc(t *testing.T) {
	x := make([]complex128, 256)
	for i := range x {
		x[i] = complex(float64(i%7), float64(i%3))
	}
	buf := make([]complex128, 256)
	dst := make([]float64, 256)
	// Warm the twiddle cache and scratch pool.
	if err := PowerSpectrumInto(dst, x); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		copy(buf, x)
		if err := FFT(buf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("FFT allocs/op = %v, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := PowerSpectrumInto(dst, x); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("PowerSpectrumInto allocs/op = %v, want 0", n)
	}
}

func TestPowerSpectrumIntoValidation(t *testing.T) {
	if err := PowerSpectrumInto(make([]float64, 8), make([]complex128, 16)); err == nil {
		t.Error("length mismatch must fail")
	}
	if err := PowerSpectrumInto(nil, nil); err != nil {
		t.Errorf("empty input: %v", err)
	}
}

func TestFFTShift(t *testing.T) {
	ps := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	shifted := FFTShift(ps)
	want := []float64{4, 5, 6, 7, 0, 1, 2, 3}
	for i := range want {
		if shifted[i] != want[i] {
			t.Fatalf("FFTShift = %v, want %v", shifted, want)
		}
	}
	// DC (index 0) must land at the center bin n/2.
	if shifted[4] != 0 {
		t.Errorf("DC bin not centered: %v", shifted)
	}
}
