package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/features"
	"github.com/wsdetect/waldo/internal/geo"
	"github.com/wsdetect/waldo/internal/ml"
	"github.com/wsdetect/waldo/internal/ml/bayes"
	"github.com/wsdetect/waldo/internal/ml/kmeans"
	"github.com/wsdetect/waldo/internal/ml/svm"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
)

// ConstructorConfig parameterizes the Model Constructor (§3.2).
type ConstructorConfig struct {
	// ClusterK is the number of localities; 1 disables clustering.
	// Default 1 (the paper's best FP/overhead balance for 700 km² is 3).
	ClusterK int
	// Classifier selects the per-locality model family; default KindSVM.
	Classifier ClassifierKind
	// Features selects the classifier inputs; default
	// SetLocationRSSCFT, the "location + two signal features"
	// configuration of Table 1 / Fig. 16.
	Features features.Set
	// SafetyMargin biases classification toward NotSafe: a point is
	// declared Safe only when the classifier's decision value exceeds
	// this margin. Zero reproduces the paper; §2.1 notes that
	// "the conservativeness of this approach can be controlled", and
	// this is the control (trades FN for FP). Negative margins are
	// rejected — never bias toward endangering incumbents.
	SafetyMargin float64
	// Seed drives clustering and SVM randomization.
	Seed int64
	// Workers caps the construction worker pool: the k-means scans and
	// the per-locality training fan-out (each locality trains with an
	// independent salt, so the result is bit-identical to a serial
	// build). 0 means runtime.GOMAXPROCS, 1 forces serial; negative is
	// rejected.
	Workers int
}

func (c *ConstructorConfig) defaults() error {
	if c.ClusterK == 0 {
		c.ClusterK = 1
	}
	if c.ClusterK < 0 {
		return fmt.Errorf("core: negative cluster count %d", c.ClusterK)
	}
	if c.Classifier == 0 {
		c.Classifier = KindSVM
	}
	if !c.Classifier.Valid() {
		return fmt.Errorf("core: invalid classifier kind %d", int(c.Classifier))
	}
	if c.Features == 0 {
		c.Features = features.SetLocationRSSCFT
	}
	if !c.Features.Valid() {
		return fmt.Errorf("core: invalid feature set %d", int(c.Features))
	}
	if c.SafetyMargin < 0 {
		return fmt.Errorf("core: negative safety margin %v", c.SafetyMargin)
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: negative worker count %d", c.Workers)
	}
	return nil
}

// workerCount resolves the Workers knob against the host.
func (c *ConstructorConfig) workerCount() int {
	if c.Workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

// localModel is one locality's trained classifier.
type localModel struct {
	// constant marks all-safe or all-not-safe localities: the "binary"
	// clusters of §3.2 that need no classifier at all.
	constant      bool
	constantLabel dataset.Label
	std           *ml.Standardizer
	clf           ml.Classifier
}

// Model is the downloadable White Space Detection Model for one channel as
// seen by one sensor type.
type Model struct {
	// Channel is the TV channel the model covers.
	Channel rfenv.Channel
	// Sensor is the device family the training readings came from.
	Sensor sensor.Kind
	// Features is the classifier input set.
	Features features.Set
	// Kind is the classifier family.
	Kind ClassifierKind
	// Origin anchors the location-feature projection.
	Origin geo.Point

	centers [][]float64 // locality centers in location-feature space (km)
	locals  []localModel
	margin  float64
	proj    *geo.Projector
}

// NumLocalities returns the number of per-locality models.
func (m *Model) NumLocalities() int { return len(m.locals) }

// newClassifier builds an untrained classifier for the configured family.
func newClassifier(kind ClassifierKind, seed int64) (ml.Classifier, error) {
	switch kind {
	case KindSVM:
		// The descriptor-compactness requirement of §3.2 (WSDs download
		// the model) bounds the feature budget: D=48 random Fourier
		// features keeps SVM descriptors in the tens of kilobytes and,
		// as in the paper, limits how much pure spatial structure the
		// model can memorize — signal features carry the rest.
		return &svm.RFFSVM{Seed: seed, D: 48, Gamma: 0.35, Linear: svm.Pegasos{ClassBalance: true}}, nil
	case KindNB:
		return &bayes.GaussianNB{}, nil
	case KindSVMExact:
		return &svm.SMO{Kernel: svm.RBF{Gamma: 0.5}, Seed: seed}, nil
	case KindLinearSVM:
		return &svm.Pegasos{Seed: seed, ClassBalance: true}, nil
	default:
		return nil, fmt.Errorf("core: invalid classifier kind %d", int(kind))
	}
}

// BuildModel trains a White Space Detection Model from labeled readings of
// one channel/sensor. readings and labels must be parallel; all readings
// must share the same channel and sensor.
func BuildModel(readings []dataset.Reading, labels []dataset.Label, cfg ConstructorConfig) (*Model, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	if len(readings) == 0 {
		return nil, fmt.Errorf("core: no readings")
	}
	if len(readings) != len(labels) {
		return nil, fmt.Errorf("core: %d readings but %d labels", len(readings), len(labels))
	}
	ch, kind := readings[0].Channel, readings[0].Sensor
	for i := range readings {
		if readings[i].Channel != ch || readings[i].Sensor != kind {
			return nil, fmt.Errorf("core: reading %d is %v/%v, model is %v/%v",
				i, readings[i].Channel, readings[i].Sensor, ch, kind)
		}
	}
	if cfg.ClusterK > len(readings) {
		return nil, fmt.Errorf("core: %d clusters for %d readings", cfg.ClusterK, len(readings))
	}

	origin := readings[0].Loc
	proj := geo.NewProjector(origin)

	// Localities identification: cluster on location only (km).
	locs := make([][]float64, len(readings))
	for i := range readings {
		xy := proj.ToXY(readings[i].Loc)
		locs[i] = []float64{xy.X / 1000, xy.Y / 1000}
	}
	clu, err := kmeans.Run(locs, kmeans.Config{K: cfg.ClusterK, Seed: cfg.Seed, Workers: cfg.Workers})
	if err != nil {
		return nil, fmt.Errorf("core: localities identification: %w", err)
	}

	model := &Model{
		Channel:  ch,
		Sensor:   kind,
		Features: cfg.Features,
		Kind:     cfg.Classifier,
		Origin:   origin,
		centers:  clu.Centers,
		locals:   make([]localModel, cfg.ClusterK),
		margin:   cfg.SafetyMargin,
		proj:     proj,
	}

	// Group member indices per locality (in reading order), then fan the
	// per-locality feature extraction and training out across workers.
	// Each locality's training depends only on its own members and a
	// salt derived from its index, so the built model is bit-identical
	// to a serial build regardless of worker count.
	members := make([][]int, cfg.ClusterK)
	for i, c := range clu.Assignments {
		members[c] = append(members[c], i)
	}
	buildLocal := func(c int) (localModel, error) {
		idxs := members[c]
		x := make([][]float64, 0, len(idxs))
		y := make([]int, 0, len(idxs))
		for _, i := range idxs {
			vec, err := cfg.Features.Vector(proj.ToXY(readings[i].Loc), readings[i].Signal)
			if err != nil {
				return localModel{}, fmt.Errorf("core: feature vector: %w", err)
			}
			cls, err := labelToClass(labels[i])
			if err != nil {
				return localModel{}, err
			}
			x = append(x, vec)
			y = append(y, cls)
		}
		lm, err := trainLocal(x, y, cfg, int64(c))
		if err != nil {
			return localModel{}, fmt.Errorf("core: locality %d: %w", c, err)
		}
		return lm, nil
	}

	workers := cfg.workerCount()
	if workers > cfg.ClusterK {
		workers = cfg.ClusterK
	}
	errs := make([]error, cfg.ClusterK)
	if workers <= 1 {
		for c := 0; c < cfg.ClusterK; c++ {
			model.locals[c], errs[c] = buildLocal(c)
		}
	} else {
		var next atomic.Int64
		next.Store(-1)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					c := int(next.Add(1))
					if c >= cfg.ClusterK {
						return
					}
					model.locals[c], errs[c] = buildLocal(c)
				}
			}()
		}
		wg.Wait()
	}
	// Report the lowest-index failure so error messages do not depend on
	// goroutine scheduling.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return model, nil
}

// trainLocal fits one locality. Single-class localities become constant
// ("binary") models.
func trainLocal(x [][]float64, y []int, cfg ConstructorConfig, salt int64) (localModel, error) {
	if len(x) == 0 {
		// An empty locality can only arise from k-means re-seeding
		// pathologies; be conservative.
		return localModel{constant: true, constantLabel: dataset.LabelNotSafe}, nil
	}
	first, constant := y[0], true
	for _, v := range y[1:] {
		if v != first {
			constant = false
			break
		}
	}
	if constant {
		return localModel{constant: true, constantLabel: classToLabel(first)}, nil
	}

	std, err := ml.FitStandardizer(x)
	if err != nil {
		return localModel{}, err
	}
	z, err := std.TransformAll(x)
	if err != nil {
		return localModel{}, err
	}
	clf, err := newClassifier(cfg.Classifier, cfg.Seed+salt*7919)
	if err != nil {
		return localModel{}, err
	}
	if err := clf.Fit(z, y); err != nil {
		return localModel{}, err
	}
	return localModel{std: std, clf: clf}, nil
}

// Classify predicts white-space availability for a reading taken at loc
// with the given signal features.
func (m *Model) Classify(loc geo.Point, sig features.Signal) (dataset.Label, error) {
	if len(m.locals) == 0 {
		return 0, fmt.Errorf("core: empty model")
	}
	if m.proj == nil {
		m.proj = geo.NewProjector(m.Origin)
	}
	xy := m.proj.ToXY(loc)
	idx, _ := kmeans.Nearest(m.centers, []float64{xy.X / 1000, xy.Y / 1000})
	lm := &m.locals[idx]
	if lm.constant {
		return lm.constantLabel, nil
	}
	vec, err := m.Features.Vector(xy, sig)
	if err != nil {
		return 0, err
	}
	z, err := lm.std.Transform(vec)
	if err != nil {
		return 0, err
	}
	if m.margin > 0 {
		if scorer, ok := lm.clf.(ml.DecisionScorer); ok {
			score, err := scorer.DecisionValue(z)
			if err != nil {
				return 0, err
			}
			if score >= m.margin {
				return dataset.LabelSafe, nil
			}
			return dataset.LabelNotSafe, nil
		}
	}
	cls, err := lm.clf.Predict(z)
	if err != nil {
		return 0, err
	}
	return classToLabel(cls), nil
}

// ClassifyReading is a convenience wrapper over Classify.
func (m *Model) ClassifyReading(r dataset.Reading) (dataset.Label, error) {
	return m.Classify(r.Loc, r.Signal)
}
