package knn

import (
	"math/rand"
	"testing"

	"github.com/wsdetect/waldo/internal/ml"
)

func TestKNNBasics(t *testing.T) {
	x := [][]float64{{0, 0}, {0, 1}, {1, 0}, {10, 10}, {10, 11}, {11, 10}}
	y := []int{ml.Negative, ml.Negative, ml.Negative, ml.Positive, ml.Positive, ml.Positive}
	k := &KNN{K: 3}
	if err := k.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if pred, err := k.Predict([]float64{0.5, 0.5}); err != nil || pred != ml.Negative {
		t.Errorf("near origin: %v, %v", pred, err)
	}
	if pred, err := k.Predict([]float64{10.5, 10.5}); err != nil || pred != ml.Positive {
		t.Errorf("near far blob: %v, %v", pred, err)
	}
}

func TestKNNTieBreaksSafe(t *testing.T) {
	// k=2 with one neighbor of each class: the tie must resolve Negative
	// (occupied), protecting incumbents.
	x := [][]float64{{-1, 0}, {1, 0}}
	y := []int{ml.Negative, ml.Positive}
	k := &KNN{K: 2}
	if err := k.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if pred, _ := k.Predict([]float64{0, 0}); pred != ml.Negative {
		t.Error("tie should break to Negative")
	}
}

func TestKNNNoisyAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var x [][]float64
	var y []int
	for i := 0; i < 500; i++ {
		if i%2 == 0 {
			x = append(x, []float64{2 + rng.NormFloat64(), rng.NormFloat64()})
			y = append(y, ml.Positive)
		} else {
			x = append(x, []float64{-2 + rng.NormFloat64(), rng.NormFloat64()})
			y = append(y, ml.Negative)
		}
	}
	k := &KNN{K: 7}
	if err := k.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range x {
		if pred, _ := k.Predict(x[i]); pred == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(x)); acc < 0.95 {
		t.Errorf("knn accuracy = %v", acc)
	}
}

func TestKNNValidation(t *testing.T) {
	k := &KNN{}
	if err := k.Fit(nil, nil); err == nil {
		t.Error("empty fit must fail")
	}
	if _, err := k.Predict([]float64{1}); err == nil {
		t.Error("predict before fit must fail")
	}
	if err := (&KNN{K: -1}).Fit([][]float64{{1}, {2}}, []int{1, -1}); err == nil {
		t.Error("negative k must fail")
	}
	if err := k.Fit([][]float64{{1}, {2}}, []int{ml.Positive, ml.Negative}); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Predict([]float64{1, 2}); err == nil {
		t.Error("dim mismatch must fail")
	}
	// K larger than dataset clamps gracefully.
	if pred, err := k.Predict([]float64{1.4}); err != nil || pred == 0 {
		t.Errorf("k>n: %v %v", pred, err)
	}
}

func TestKNNDoesNotAliasInput(t *testing.T) {
	x := [][]float64{{0}, {10}}
	y := []int{ml.Negative, ml.Positive}
	k := &KNN{K: 1}
	if err := k.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	x[0][0] = 100 // mutate caller data
	if pred, _ := k.Predict([]float64{1}); pred != ml.Negative {
		t.Error("classifier must have copied training data")
	}
}
