// Package features turns raw sensor captures into the classifier inputs
// Waldo uses: the received signal strength (RSS), the central DFT bin
// (CFT), and the average of the central 15 % of DFT bins (AFT) — the three
// signal features the paper selects by ANOVA (§3.2) — combined with
// location coordinates.
package features

import (
	"fmt"

	"github.com/wsdetect/waldo/internal/dsp"
	"github.com/wsdetect/waldo/internal/geo"
	"github.com/wsdetect/waldo/internal/iq"
	"github.com/wsdetect/waldo/internal/sensor"
)

// CenterBandFrac is the fraction of DFT bins averaged by the AFT feature
// (paper §3.2: "the average of the central 15% of the DFT bins").
const CenterBandFrac = 0.15

// Signal holds the three signal features of one reading, calibrated to
// input-referred dB quantities.
type Signal struct {
	// RSSdBm is the calibrated energy-detector output plus the capture
	// correction, an estimate of total channel power.
	RSSdBm float64
	// CFTdB is the calibrated power of the central DFT bin (pilot
	// region). Narrow integration gives it ~24 dB of processing gain at
	// N=256, so it responds to pilots far below the RSS noise floor.
	CFTdB float64
	// AFTdB is the calibrated mean power of the central 15 % of bins —
	// less processing gain than CFT but robust to tuner frequency error.
	AFTdB float64
}

// FromObservation extracts the signal features from a raw capture using
// the device's calibration and a rectangular analysis window (the paper's
// configuration).
func FromObservation(obs sensor.Observation, cal sensor.Calibration) (Signal, error) {
	return FromObservationWindowed(obs, cal, dsp.WindowRect)
}

// FromObservationWindowed extracts features with an explicit analysis
// window. A Hann window reduces the CFT scalloping caused by tuner
// frequency error (up to 3.9 dB rectangular vs ≈1.4 dB Hann) at the cost
// of a wider main lobe; RSS always comes from the unwindowed samples so
// energy-detector calibration stays exact.
func FromObservationWindowed(obs sensor.Observation, cal sensor.Calibration, win dsp.Window) (Signal, error) {
	if len(obs.IQ) == 0 {
		return Signal{}, fmt.Errorf("features: empty capture")
	}
	samples := obs.IQ
	if win != dsp.WindowRect {
		samples = append([]complex128(nil), obs.IQ...)
		if err := win.Apply(samples); err != nil {
			return Signal{}, fmt.Errorf("features: %w", err)
		}
	}
	spec, err := iq.NewSpectrum(samples)
	if err != nil {
		return Signal{}, fmt.Errorf("features: %w", err)
	}
	return Signal{
		RSSdBm: cal.Apply(iq.MWToDBm(iq.EnergyMW(obs.IQ))) + iq.CaptureCorrectionDB(),
		CFTdB:  cal.Apply(iq.MWToDBm(spec.CenterBinMW())),
		AFTdB:  cal.Apply(iq.MWToDBm(spec.CenterBandMeanMW(CenterBandFrac))),
	}, nil
}

// Set selects which features feed the classifier. The paper counts
// "number of features" with location as the first: 1 = location only, then
// RSS, CFT, and AFT are added in that order (Fig. 12b/c).
type Set int

// Feature sets in the paper's addition order.
const (
	SetLocation Set = iota + 1
	SetLocationRSS
	SetLocationRSSCFT
	SetLocationRSSCFTAFT
)

// AllSets lists the sets in paper order, for sweeps over "number of
// features".
var AllSets = []Set{SetLocation, SetLocationRSS, SetLocationRSSCFT, SetLocationRSSCFTAFT}

// Count returns the paper's "number of features" for the set.
func (s Set) Count() int { return int(s) }

// Dim returns the classifier input dimensionality (location contributes
// two coordinates).
func (s Set) Dim() int { return int(s) + 1 }

// Valid reports whether s is a defined set.
func (s Set) Valid() bool { return s >= SetLocation && s <= SetLocationRSSCFTAFT }

// String implements fmt.Stringer.
func (s Set) String() string {
	switch s {
	case SetLocation:
		return "location"
	case SetLocationRSS:
		return "location+RSS"
	case SetLocationRSSCFT:
		return "location+RSS+CFT"
	case SetLocationRSSCFTAFT:
		return "location+RSS+CFT+AFT"
	default:
		return fmt.Sprintf("features.Set(%d)", int(s))
	}
}

// Vector builds the classifier input for a reading at planar position xy
// (meters; scaled to kilometers internally so raw magnitudes are
// comparable with the dB features before standardization).
func (s Set) Vector(xy geo.XY, sig Signal) ([]float64, error) {
	if !s.Valid() {
		return nil, fmt.Errorf("features: invalid set %d", int(s))
	}
	v := make([]float64, 0, s.Dim())
	v = append(v, xy.X/1000, xy.Y/1000)
	if s >= SetLocationRSS {
		v = append(v, sig.RSSdBm)
	}
	if s >= SetLocationRSSCFT {
		v = append(v, sig.CFTdB)
	}
	if s >= SetLocationRSSCFTAFT {
		v = append(v, sig.AFTdB)
	}
	return v, nil
}

// Score is an ANOVA discriminability score for one feature.
type Score struct {
	Name   string
	F      float64
	PValue float64
}

// ScoreANOVA computes per-feature one-way ANOVA F statistics and p-values
// between the two occupancy classes, reproducing the paper's feature
// selection analysis (features with P ≈ 0 on all channels were kept).
func ScoreANOVA(safe, notSafe []Signal) []Score {
	extract := func(sigs []Signal, f func(Signal) float64) []float64 {
		out := make([]float64, len(sigs))
		for i, s := range sigs {
			out[i] = f(s)
		}
		return out
	}
	type field struct {
		name string
		fn   func(Signal) float64
	}
	fields := []field{
		{"RSS", func(s Signal) float64 { return s.RSSdBm }},
		{"CFT", func(s Signal) float64 { return s.CFTdB }},
		{"AFT", func(s Signal) float64 { return s.AFTdB }},
	}
	scores := make([]Score, 0, len(fields))
	for _, fl := range fields {
		f, p := dsp.OneWayANOVA(extract(safe, fl.fn), extract(notSafe, fl.fn))
		scores = append(scores, Score{Name: fl.name, F: f, PValue: p})
	}
	return scores
}
