package kriging

import (
	"fmt"
	"math"
	"sort"

	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/geo"
)

// IDW is inverse-distance-weighted interpolation — the "linear
// interpolation" member of the measurement-augmented family ([10], [49]):
// the simplest possible field estimator, kept as the floor of the
// interpolation baselines.
type IDW struct {
	cfg   Config
	power float64
	proj  *geo.Projector
	xs    []geo.XY
	rss   []float64
	grid  *geo.GridIndex
}

// FitIDW builds the interpolator. power controls the distance weighting
// (0 means 2, the classic inverse-square).
func FitIDW(readings []dataset.Reading, cfg Config, power float64) (*IDW, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	if power == 0 {
		power = 2
	}
	if power < 0 {
		return nil, fmt.Errorf("kriging: negative IDW power %v", power)
	}
	if len(readings) < cfg.Neighbors {
		return nil, fmt.Errorf("kriging: %d readings, need ≥%d", len(readings), cfg.Neighbors)
	}
	m := &IDW{cfg: cfg, power: power, proj: geo.NewProjector(readings[0].Loc)}
	grid, err := geo.NewGridIndex(readings[0].Loc, cfg.MaxLagM/2)
	if err != nil {
		return nil, err
	}
	m.grid = grid
	m.xs = make([]geo.XY, len(readings))
	m.rss = make([]float64, len(readings))
	for i := range readings {
		m.xs[i] = m.proj.ToXY(readings[i].Loc)
		m.rss[i] = readings[i].Signal.RSSdBm
		grid.Insert(i, readings[i].Loc)
	}
	return m, nil
}

// PredictRSS interpolates the field at p.
func (m *IDW) PredictRSS(p geo.Point) (float64, error) {
	q := m.proj.ToXY(p)
	type cand struct {
		id int
		d  float64
	}
	var cands []cand
	for radius := m.cfg.MaxLagM / 4; radius <= m.cfg.MaxLagM*4; radius *= 2 {
		cands = cands[:0]
		m.grid.WithinRadius(p, radius, func(id int) bool {
			cands = append(cands, cand{id: id, d: m.xs[id].DistanceM(q)})
			return true
		})
		if len(cands) >= m.cfg.Neighbors {
			break
		}
	}
	if len(cands) < 3 {
		return 0, fmt.Errorf("kriging: only %d neighbors near %v", len(cands), p)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
	if len(cands) > m.cfg.Neighbors {
		cands = cands[:m.cfg.Neighbors]
	}

	var num, den float64
	for _, c := range cands {
		if c.d < 1 {
			return m.rss[c.id], nil // on top of a measurement
		}
		w := 1 / math.Pow(c.d, m.power)
		num += w * m.rss[c.id]
		den += w
	}
	return num / den, nil
}

// Available answers the white-space query with the same probe geometry as
// the kriging model.
func (m *IDW) Available(p geo.Point) (bool, error) {
	// Probe the whole protection disk: concentric rings out to the
	// protection radius, so decodable regions anywhere within it deny
	// the query.
	probes := []geo.Point{p}
	for _, frac := range []float64{1.0 / 3, 2.0 / 3, 1} {
		r := m.cfg.ProtectRadiusM * frac
		for bearing := 0.0; bearing < 360; bearing += 30 {
			probes = append(probes, p.Offset(bearing, r))
		}
	}
	for _, probe := range probes {
		est, err := m.PredictRSS(probe)
		if err != nil {
			return false, nil
		}
		if est > m.cfg.ThresholdDBm {
			return false, nil
		}
	}
	return true, nil
}
