package dataset

import (
	"bytes"
	"testing"
)

func TestGobRoundTrip(t *testing.T) {
	readings := randomSet(1, 300)
	var buf bytes.Buffer
	if err := WriteGob(&buf, readings); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGob(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(readings) {
		t.Fatalf("round trip count = %d, want %d", len(back), len(readings))
	}
	for i := range back {
		if back[i] != readings[i] {
			t.Fatalf("reading %d differs: %+v vs %+v", i, back[i], readings[i])
		}
	}
}

func TestGobRejectsGarbage(t *testing.T) {
	if _, err := ReadGob(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Error("garbage must fail")
	}
	// A snapshot with an invalid reading inside must fail validation.
	bad := randomSet(2, 5)
	bad[3].Channel = 99
	var buf bytes.Buffer
	if err := WriteGob(&buf, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadGob(&buf); err == nil {
		t.Error("invalid channel must fail validation")
	}
}
