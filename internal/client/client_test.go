package client

import (
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/wsdetect/waldo/internal/core"
	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/dbserver"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
	"github.com/wsdetect/waldo/internal/wardrive"
)

// testWorld boots an environment, runs a small campaign, and serves it.
type testWorld struct {
	env    *rfenv.Environment
	camp   *wardrive.Campaign
	server *dbserver.Server
	ts     *httptest.Server
	client *Client
}

func newTestWorld(t *testing.T, channels []rfenv.Channel) *testWorld {
	t.Helper()
	env, err := rfenv.BuildMetro(21)
	if err != nil {
		t.Fatal(err)
	}
	route, err := wardrive.GenerateRoute(wardrive.RouteConfig{Area: env.Area, Samples: 700, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	camp, err := wardrive.Run(wardrive.CampaignConfig{
		Env: env, Route: route, Channels: channels,
		Sensors: []sensor.Spec{sensor.RTLSDR()},
		Seed:    23,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := dbserver.New(dbserver.Config{Constructor: core.ConstructorConfig{Classifier: core.KindNB}})
	var all []dataset.Reading
	for _, ch := range channels {
		all = append(all, camp.Readings(ch, sensor.KindRTLSDR)...)
	}
	if err := srv.Bootstrap(all); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c, err := New(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	return &testWorld{env: env, camp: camp, server: srv, ts: ts, client: c}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("", nil); err == nil {
		t.Error("empty URL must fail")
	}
}

func TestModelFetchAndCache(t *testing.T) {
	w := newTestWorld(t, []rfenv.Channel{47})
	m, size, err := w.client.Model(47, sensor.KindRTLSDR)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || size == 0 {
		t.Fatalf("model=%v size=%d", m, size)
	}
	// Second fetch: cache hit, zero bytes transferred.
	m2, size2, err := w.client.Model(47, sensor.KindRTLSDR)
	if err != nil {
		t.Fatal(err)
	}
	if m2 != m || size2 != 0 {
		t.Errorf("cache miss on second fetch (size=%d)", size2)
	}
	w.client.Invalidate(47, sensor.KindRTLSDR)
	_, size3, err := w.client.Model(47, sensor.KindRTLSDR)
	if err != nil {
		t.Fatal(err)
	}
	if size3 == 0 {
		t.Error("invalidate should force a re-download")
	}
	// Missing model.
	if _, _, err := w.client.Model(30, sensor.KindRTLSDR); err == nil {
		t.Error("fetch of unknown channel must fail")
	}
}

func TestRefreshRevalidates(t *testing.T) {
	w := newTestWorld(t, []rfenv.Channel{47})
	m, size, err := w.client.Model(47, sensor.KindRTLSDR)
	if err != nil {
		t.Fatal(err)
	}
	if size == 0 {
		t.Fatal("first fetch should transfer the descriptor")
	}
	// Unchanged model: revalidation is a 304, no bytes on the wire.
	m2, size2, err := w.client.Refresh(47, sensor.KindRTLSDR)
	if err != nil {
		t.Fatal(err)
	}
	if m2 != m || size2 != 0 {
		t.Errorf("revalidation of unchanged model transferred %d bytes", size2)
	}
	// A retrain changes the version; Refresh must download the new model.
	if err := w.client.RequestRetrain(47, sensor.KindRTLSDR); err != nil {
		t.Fatal(err)
	}
	m3, size3, err := w.client.Refresh(47, sensor.KindRTLSDR)
	if err != nil {
		t.Fatal(err)
	}
	if size3 == 0 {
		t.Error("refresh after retrain should transfer the new descriptor")
	}
	if m3 == nil {
		t.Fatal("refresh returned nil model")
	}
	// Refresh with nothing cached degrades to a plain fetch.
	w.client.Invalidate(47, sensor.KindRTLSDR)
	if _, size4, err := w.client.Refresh(47, sensor.KindRTLSDR); err != nil || size4 == 0 {
		t.Errorf("cold refresh: size=%d err=%v", size4, err)
	}
}

func TestUploadPath(t *testing.T) {
	w := newTestWorld(t, []rfenv.Channel{47})
	readings := w.camp.Readings(47, sensor.KindRTLSDR)[:20]
	batch := UploadFromDecision(readings, core.Decision{CISpanDB: 0.3})
	if err := w.client.Upload(batch); err != nil {
		t.Fatal(err)
	}
	if got := w.server.StoreSize(47, sensor.KindRTLSDR); got != 720 {
		t.Errorf("store size = %d, want 720", got)
	}
	if err := w.client.RequestRetrain(47, sensor.KindRTLSDR); err != nil {
		t.Fatal(err)
	}
	// Rejected noisy upload surfaces as an error.
	noisy := UploadFromDecision(readings, core.Decision{CISpanDB: 9})
	if err := w.client.Upload(noisy); err == nil {
		t.Error("noisy upload should be rejected")
	}
	if err := w.client.Upload(core.UploadBatch{}); err == nil {
		t.Error("empty upload should fail client-side")
	}
}

func calibratedDevice(t *testing.T, spec sensor.Spec, rng *rand.Rand) *sensor.Device {
	t.Helper()
	d := sensor.NewDevice(spec)
	if err := sensor.CalibrateAndInstall(d, rng, sensor.CalibrationConfig{}); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSimRadioAndWSDScan(t *testing.T) {
	w := newTestWorld(t, []rfenv.Channel{27, 47})
	rng := rand.New(rand.NewSource(24))
	radio := &SimRadio{
		Env:    w.env,
		Device: calibratedDevice(t, sensor.RTLSDR(), rng),
		Rng:    rng,
	}
	loc := rfenv.MetroCenter.Offset(45, 4000)
	radio.SetPosition(loc)

	models := make(map[rfenv.Channel]*core.Model)
	for _, ch := range []rfenv.Channel{27, 47} {
		m, _, err := w.client.Model(ch, sensor.KindRTLSDR)
		if err != nil {
			t.Fatal(err)
		}
		models[ch] = m
	}
	wsd := &WSD{Radio: radio, Models: models, Detector: core.DetectorConfig{AlphaDB: 0.5}}
	res, err := wsd.Scan(loc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Channels) != 2 {
		t.Fatalf("scanned %d channels", len(res.Channels))
	}
	for _, cs := range res.Channels {
		if !cs.Decision.Converged {
			t.Errorf("%v: stationary scan did not converge", cs.Channel)
		}
		if cs.AirTime <= 0 || cs.CPUTime < 0 {
			t.Errorf("%v: airtime=%v cpu=%v", cs.Channel, cs.AirTime, cs.CPUTime)
		}
	}
	// Channel 27 is the strong in-town station: must be NotSafe.
	for _, cs := range res.Channels {
		if cs.Channel == 27 && cs.Decision.Label != dataset.LabelNotSafe {
			t.Error("ch27 should be detected occupied")
		}
	}
	// CPU utilization over a 60 s duty cycle should be a small fraction.
	if pct := res.CPUUtilizationPct(60 * time.Second); pct <= 0 || pct > 50 {
		t.Errorf("CPU utilization = %v%%", pct)
	}
}

func TestMobileConvergenceDegrades(t *testing.T) {
	w := newTestWorld(t, []rfenv.Channel{47})
	m, _, err := w.client.Model(47, sensor.KindRTLSDR)
	if err != nil {
		t.Fatal(err)
	}
	attempts := 30
	converged := func(speed float64) int {
		rng := rand.New(rand.NewSource(25))
		radio := &SimRadio{
			Env:    w.env,
			Device: calibratedDevice(t, sensor.RTLSDR(), rng),
			Rng:    rng, SpeedMPS: speed, HeadingDeg: 45,
		}
		wsd := &WSD{
			Radio:  radio,
			Models: map[rfenv.Channel]*core.Model{47: m},
			Detector: core.DetectorConfig{
				AlphaDB: 0.5, MaxReadings: 64,
			},
			MaxReadingsPerChannel: 64,
		}
		count := 0
		for i := 0; i < attempts; i++ {
			loc := rfenv.MetroCenter.Offset(float64(i*12), 3000)
			radio.SetPosition(loc)
			cs, err := wsd.SenseChannel(47, loc)
			if err != nil {
				t.Fatal(err)
			}
			if cs.Decision.Converged {
				count++
			}
		}
		return count
	}
	still := converged(0)
	moving := converged(15)
	if still < attempts*8/10 {
		t.Errorf("stationary convergence %d/%d, want nearly all", still, attempts)
	}
	if moving >= still {
		t.Errorf("mobile convergence (%d) should degrade vs stationary (%d)", moving, still)
	}
}

func TestSimRadioValidation(t *testing.T) {
	r := &SimRadio{}
	if _, err := r.Capture(47); err == nil {
		t.Error("unconfigured radio must fail")
	}
	rng := rand.New(rand.NewSource(1))
	env, err := rfenv.BuildMetro(1)
	if err != nil {
		t.Fatal(err)
	}
	r = &SimRadio{Env: env, Device: calibratedDevice(t, sensor.RTLSDR(), rng), Rng: rng}
	if _, err := r.Capture(47); err == nil {
		t.Error("capture before SetPosition must fail")
	}
	if r.DwellTime() != 20*time.Millisecond {
		t.Errorf("default dwell = %v", r.DwellTime())
	}
}

func TestWSDScanUnknownChannel(t *testing.T) {
	w := newTestWorld(t, []rfenv.Channel{47})
	m, _, err := w.client.Model(47, sensor.KindRTLSDR)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	radio := &SimRadio{Env: w.env, Device: calibratedDevice(t, sensor.RTLSDR(), rng), Rng: rng}
	radio.SetPosition(rfenv.MetroCenter)
	wsd := &WSD{Radio: radio, Models: map[rfenv.Channel]*core.Model{47: m}}
	if _, err := wsd.SenseChannel(30, rfenv.MetroCenter); err == nil {
		t.Error("sensing a channel without a model must fail")
	}
}
