package sensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Calibration is the linear map from a device's raw dB readings to input
// dBm, fitted against a signal generator exactly as the paper calibrates
// its RTL-SDR and USRP against an Agilent E4422B (§2.1).
type Calibration struct {
	// Slope and InterceptDBm define inputDBm = Slope·rawDB + InterceptDBm.
	Slope        float64
	InterceptDBm float64
}

// IdentityCalibration maps raw readings through unchanged.
func IdentityCalibration() Calibration { return Calibration{Slope: 1} }

// Apply converts a raw dB reading to calibrated dBm.
func (c Calibration) Apply(rawDB float64) float64 {
	return c.Slope*rawDB + c.InterceptDBm
}

// CalibrationConfig controls a calibration run.
type CalibrationConfig struct {
	// LevelsDBm are the generator levels swept; defaults to −90…−50 dBm
	// in 5 dB steps (well above every modelled floor, so the fit is not
	// bent by floor compression).
	LevelsDBm []float64
	// ReadingsPerLevel defaults to 50.
	ReadingsPerLevel int
}

func (c *CalibrationConfig) defaults() {
	if len(c.LevelsDBm) == 0 {
		for l := -90.0; l <= -50; l += 5 {
			c.LevelsDBm = append(c.LevelsDBm, l)
		}
	}
	if c.ReadingsPerLevel <= 0 {
		c.ReadingsPerLevel = 50
	}
}

// Calibrate sweeps the signal generator across cfg.LevelsDBm, records raw
// readings, and least-squares fits the raw→dBm line. Levels within 6 dB of
// the device's noise floor are excluded from the fit: there the energy
// detector reads floor-plus-signal and the relationship is no longer
// linear.
func Calibrate(d *Device, rng *rand.Rand, cfg CalibrationConfig) (Calibration, error) {
	cfg.defaults()

	var xs, ys []float64 // x: raw dB, y: input dBm
	for _, level := range cfg.LevelsDBm {
		if level < d.spec.NoiseFloorDBm+6 {
			continue
		}
		for i := 0; i < cfg.ReadingsPerLevel; i++ {
			obs, err := d.ObserveWired(rng, level)
			if err != nil {
				return Calibration{}, err
			}
			xs = append(xs, obs.RawDB)
			ys = append(ys, level)
		}
	}
	if len(xs) < 2 {
		return Calibration{}, fmt.Errorf("sensor: calibration needs ≥2 usable levels above the %.0f dBm floor",
			d.spec.NoiseFloorDBm)
	}

	slope, intercept, err := linearFit(xs, ys)
	if err != nil {
		return Calibration{}, fmt.Errorf("sensor: calibration fit: %w", err)
	}
	return Calibration{Slope: slope, InterceptDBm: intercept}, nil
}

// CalibrateAndInstall calibrates d and installs the result.
func CalibrateAndInstall(d *Device, rng *rand.Rand, cfg CalibrationConfig) error {
	cal, err := Calibrate(d, rng, cfg)
	if err != nil {
		return err
	}
	d.SetCalibration(cal)
	return nil
}

// linearFit returns the least-squares line y = slope·x + intercept.
func linearFit(xs, ys []float64) (slope, intercept float64, err error) {
	n := float64(len(xs))
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, fmt.Errorf("need ≥2 paired samples, got %d/%d", len(xs), len(ys))
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if math.Abs(den) < 1e-12 {
		return 0, 0, fmt.Errorf("degenerate fit: raw readings are constant")
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept, nil
}
