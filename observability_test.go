package waldo

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestObservabilityFacade exercises the telemetry surface through the
// public API: registry, middleware, exposition, spans, quantiles.
func TestObservabilityFacade(t *testing.T) {
	reg := NewMetricsRegistry()
	reg.Counter("waldo_test_total", "test counter").Add(2)
	h := reg.Histogram("waldo_test_seconds", "test latency", DefLatencyBuckets)
	for i := 0; i < 100; i++ {
		h.Observe(0.001 * float64(i+1))
	}
	snap := h.Snapshot()
	if snap.Count != 100 {
		t.Fatalf("count = %d", snap.Count)
	}
	p95 := snap.Quantile(0.95)
	if p95 < 0.05 || p95 > 0.11 {
		t.Errorf("p95 = %v, want ≈ 0.095", p95)
	}

	sp := reg.StartSpan("op")
	sp.Child("phase").End()
	sp.End()

	wrapped := InstrumentRoute(reg, "/x", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusAccepted)
	}))
	rec := httptest.NewRecorder()
	wrapped.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("wrapped handler = %d", rec.Code)
	}

	var sb strings.Builder
	if err := WriteMetrics(&sb, reg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"waldo_test_total 2",
		"waldo_test_seconds_count 100",
		`waldo_span_seconds_count{span="op/phase"} 1`,
		`waldo_http_requests_total{route="/x",code="202"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestDatabaseServerMetricsFacade checks the server-side wiring: a façade
// database server carries a registry and serves /metrics.
func TestDatabaseServerMetricsFacade(t *testing.T) {
	reg := NewMetricsRegistry()
	srv := NewDatabaseServer(DatabaseConfig{Metrics: reg})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %s", resp.Status)
	}
	if srv.Metrics() != reg {
		t.Error("server did not adopt the provided registry")
	}
}
