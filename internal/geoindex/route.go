package geoindex

import (
	"math"

	"github.com/wsdetect/waldo/internal/geo"
)

// DefaultStepM is the default trajectory sampling interval: ~1/5 of a
// default cell's latitude extent, so a route cannot skip a cell it
// crosses near-perpendicularly.
const DefaultStepM = 1000

// Route size bounds, enforced by the serving layer: a polyline is
// capped at MaxRoutePoints waypoints and its sampled form at
// MaxRouteSamples points, bounding the work one /v1/route request can
// demand to a few milliseconds of map lookups.
const (
	// MaxRoutePoints caps the waypoints in one route request.
	MaxRoutePoints = 256
	// MaxRouteSamples caps the interpolated samples along a route.
	MaxRouteSamples = 8192
)

// DefaultHorizonTauS is the default e-folding time (seconds) of the
// horizon confidence decay: without timestamped readings the index
// cannot model per-channel churn, so a requested validity horizon
// discounts every confidence by exp(-horizon/τ) — an availability
// claimed for "the next hour" with τ = 1 h keeps ~37 % of its
// confidence. The temporal workload (ROADMAP: time-varying spectrum)
// will replace this with measured per-channel occupancy dynamics.
const DefaultHorizonTauS = 3600

// ConfidenceDecay returns the multiplicative confidence discount for a
// validity horizon of horizonS seconds. tauS ≤ 0 means
// DefaultHorizonTauS; horizonS ≤ 0 means no decay (1.0).
func ConfidenceDecay(horizonS, tauS float64) float64 {
	if horizonS <= 0 {
		return 1
	}
	if tauS <= 0 {
		tauS = DefaultHorizonTauS
	}
	return math.Exp(-horizonS / tauS)
}

// RouteSegment is one cell-constant stretch of a sampled trajectory:
// every interpolated point between EnterM and ExitM meters along the
// route falls in Cell.
type RouteSegment struct {
	// Cell is the grid cell the segment traverses.
	Cell Cell
	// From and To are the first and last sampled points inside the
	// cell (To is the entry point of the next cell for all but the
	// final segment).
	From, To geo.Point
	// EnterM and ExitM are the segment's span in meters along the
	// route, measured from its first waypoint.
	EnterM, ExitM float64
}

// SampleRoute interpolates a polyline at stepM-meter intervals
// (great-circle interpolation within each leg), quantizes every sample
// with [CellOf], and coalesces consecutive same-cell samples into
// [RouteSegment]s. The result is a pure function of (points, stepM,
// cellDeg) — every gateway and every shard sampling the same request
// produces identical segment geometry, which is what makes the
// cross-shard merge a per-segment union. stepM ≤ 0 means DefaultStepM;
// cellDeg ≤ 0 means DefaultCellDeg. Fewer than two waypoints yield a
// single zero-length segment (one waypoint) or nil (none).
func SampleRoute(points []geo.Point, stepM, cellDeg float64) []RouteSegment {
	if len(points) == 0 {
		return nil
	}
	if stepM <= 0 {
		stepM = DefaultStepM
	}
	if len(points) == 1 {
		c := CellOf(points[0], cellDeg)
		return []RouteSegment{{Cell: c, From: points[0], To: points[0]}}
	}

	var segs []RouteSegment
	cur := RouteSegment{Cell: CellOf(points[0], cellDeg), From: points[0], To: points[0]}
	distM := 0.0
	visit := func(p geo.Point, atM float64) {
		c := CellOf(p, cellDeg)
		if c == cur.Cell {
			cur.To, cur.ExitM = p, atM
			return
		}
		// The boundary is approximated by the first sample past it:
		// the closed segment ends where the new one begins.
		cur.To, cur.ExitM = p, atM
		segs = append(segs, cur)
		cur = RouteSegment{Cell: c, From: p, To: p, EnterM: atM, ExitM: atM}
	}
	for i := 1; i < len(points); i++ {
		a, b := points[i-1], points[i]
		legM := a.DistanceM(b)
		if legM == 0 {
			continue
		}
		brg := a.BearingDeg(b)
		steps := int(math.Ceil(legM / stepM))
		for s := 1; s <= steps; s++ {
			var p geo.Point
			var at float64
			if s == steps {
				// Land exactly on the waypoint: interpolation error must
				// not leak into the next leg's geometry.
				p, at = b, distM+legM
			} else {
				p, at = a.Offset(brg, float64(s)*stepM), distM+float64(s)*stepM
			}
			visit(p, at)
		}
		distM += legM
	}
	return append(segs, cur)
}

// SampleCount reports how many interpolated samples SampleRoute will
// visit for a polyline, so the serving layer can reject oversized
// requests before doing the work.
func SampleCount(points []geo.Point, stepM float64) int {
	if stepM <= 0 {
		stepM = DefaultStepM
	}
	n := 1
	for i := 1; i < len(points); i++ {
		legM := points[i-1].DistanceM(points[i])
		if legM == 0 {
			continue
		}
		n += int(math.Ceil(legM / stepM))
	}
	return n
}
