package cluster

import (
	"bytes"
	"context"
	"encoding/json"

	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/wsdetect/waldo/internal/core"
	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/dbserver"
	"github.com/wsdetect/waldo/internal/features"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
)

// synthReadings generates a classifiable corpus: strong signal east of
// the metro center, noise west, like the dbserver tests.
func synthReadings(n int, ch rfenv.Channel, seed int64) []dataset.Reading {
	rng := rand.New(rand.NewSource(seed))
	origin := rfenv.MetroCenter
	out := make([]dataset.Reading, 0, n)
	for i := 0; i < n; i++ {
		loc := origin.Offset(rng.Float64()*360, rng.Float64()*10000)
		rss := -100.0
		if loc.Lon > origin.Lon {
			rss = -70
		}
		out = append(out, dataset.Reading{
			Seq: i, Loc: loc, Channel: ch, Sensor: sensor.KindRTLSDR,
			Signal: features.Signal{RSSdBm: rss, CFTdB: rss - 11.3, AFTdB: rss - 13},
		})
	}
	return out
}

func uploadBody(t testing.TB, rs []dataset.Reading) []byte {
	t.Helper()
	up := dbserver.UploadJSON{CISpanDB: 0.4}
	for _, r := range rs {
		up.Readings = append(up.Readings, dbserver.FromReading(r))
	}
	body, err := json.Marshal(up)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func mustPost(t testing.TB, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func mustGetBody(t testing.TB, url string, wantStatus int) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d (%s)", url, resp.StatusCode, wantStatus, data)
	}
	return data
}

// newTestNode opens a Node around a fresh in-memory dbserver and serves
// it.
func newTestNode(t testing.TB, id string, replicaURLs []string) (*Node, *httptest.Server) {
	t.Helper()
	n, err := OpenNode(NodeConfig{
		ID: id,
		DB: dbserver.Config{
			Constructor: core.ConstructorConfig{Classifier: core.KindNB},
		},
		ReplicaURLs:  replicaURLs,
		ShipInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(n.Handler())
	t.Cleanup(func() {
		ts.Close()
		n.Close()
	})
	return n, ts
}

// TestFrameRoundTrip pins the replication wire format: append and
// retrain frames survive encode→decode bit-exactly, including when
// concatenated in one exchange body.
func TestFrameRoundTrip(t *testing.T) {
	rs := synthReadings(7, 47, 3)
	recs := []replRecord{
		{kind: frameAppend, ch: 47, sensor: sensor.KindRTLSDR, readings: rs},
		{kind: frameRetrain, ch: 47, sensor: sensor.KindRTLSDR, version: 9, trained: 607},
	}
	var body []byte
	for i := range recs {
		body = appendFrame(body, uint64(i)+1, &recs[i])
	}
	for i := range recs {
		seq, got, rest, err := decodeFrame(body)
		if err != nil {
			t.Fatal(err)
		}
		body = rest
		if seq != uint64(i)+1 {
			t.Errorf("frame %d: seq %d", i, seq)
		}
		if !reflect.DeepEqual(got, recs[i]) {
			t.Errorf("frame %d: decoded %+v, want %+v", i, got, recs[i])
		}
	}
	if len(body) != 0 {
		t.Errorf("%d bytes left after decoding all frames", len(body))
	}
	if _, _, _, err := decodeFrame([]byte{1, 2, 3}); err == nil {
		t.Error("truncated frame decoded without error")
	}
}

// TestReplicationPair is the core byte-identity claim: drive a primary
// through its public HTTP API (uploads + retrain), drain the shipper,
// and the replica must serve the byte-identical model descriptor and the
// identical reading corpus.
func TestReplicationPair(t *testing.T) {
	_, replicaTS := newTestNode(t, "s0-replica", nil)
	primary, primaryTS := newTestNode(t, "s0", []string{replicaTS.URL})

	for i := 0; i < 4; i++ {
		resp := mustPost(t, primaryTS.URL+"/v1/readings", uploadBody(t, synthReadings(200, 47, int64(i))))
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("upload %d = %s", i, resp.Status)
		}
	}
	resp := mustPost(t, primaryTS.URL+"/v1/retrain?channel=47&sensor=1", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retrain = %s", resp.Status)
	}
	// One more batch after the retrain: the replica must land it after
	// the version bump, exactly like the primary did.
	resp = mustPost(t, primaryTS.URL+"/v1/readings", uploadBody(t, synthReadings(50, 47, 99)))
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("post-retrain upload = %s", resp.Status)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := primary.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{"/v1/model?channel=47&sensor=1", "/v1/export?channel=47&sensor=1"} {
		p := mustGetBody(t, primaryTS.URL+path, http.StatusOK)
		r := mustGetBody(t, replicaTS.URL+path, http.StatusOK)
		if !bytes.Equal(p, r) {
			t.Errorf("%s: primary (%d bytes) and replica (%d bytes) differ", path, len(p), len(r))
		}
	}
	var st nodeStatus
	if err := json.Unmarshal(mustGetBody(t, replicaTS.URL+"/v1/repl/status", http.StatusOK), &st); err != nil {
		t.Fatal(err)
	}
	if st.Applied != 6 { // 5 uploads + 1 retrain
		t.Errorf("replica applied %d frames, want 6", st.Applied)
	}
	if st.Follows != primary.repl.incarnation {
		t.Errorf("replica follows %016x, want the primary's incarnation %016x", st.Follows, primary.repl.incarnation)
	}
	if lag := primary.ReplicationLag(); lag != 0 {
		t.Errorf("lag after drain = %d", lag)
	}
}

// testIncarnation stamps hand-crafted exchanges in apply-contract tests.
const testIncarnation uint64 = 0x1122334455667701

// exchange wraps raw frames in an exchange body under one incarnation.
func exchange(inc uint64, frames []byte) []byte {
	return append(appendExchangeHeader(nil, inc), frames...)
}

// applyTo posts a raw exchange body to a node's apply endpoint and
// decodes the status reply.
func applyTo(t testing.TB, url string, body []byte) (int, applyStatus) {
	t.Helper()
	resp := mustPost(t, url+"/v1/repl/apply", body)
	defer resp.Body.Close()
	var st applyStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, st
}

// TestApplyIdempotencyAndGap pins the replica apply contract: re-sent
// frames are skipped without effect, a sequence gap is refused with 409
// plus the replica's high-water mark so the primary can re-ship, and an
// exchange from a different incarnation is refused outright rather than
// misread as a retry.
func TestApplyIdempotencyAndGap(t *testing.T) {
	_, ts := newTestNode(t, "solo", nil)
	rs := synthReadings(10, 47, 5)
	var body []byte
	body = appendFrame(body, 1, &replRecord{kind: frameAppend, ch: 47, sensor: sensor.KindRTLSDR, readings: rs[:5]})
	body = appendFrame(body, 2, &replRecord{kind: frameAppend, ch: 47, sensor: sensor.KindRTLSDR, readings: rs[5:]})

	if code, st := applyTo(t, ts.URL, exchange(testIncarnation, body)); code != http.StatusOK || st.Applied != 2 {
		t.Fatalf("first apply: %d, applied %d", code, st.Applied)
	}
	if code, st := applyTo(t, ts.URL, exchange(testIncarnation, body)); code != http.StatusOK || st.Applied != 2 {
		t.Fatalf("replayed apply: %d, applied %d (want idempotent skip)", code, st.Applied)
	}
	if got := len(bytes.Split(bytes.TrimSpace(mustGetBody(t, ts.URL+"/v1/export?channel=47&sensor=1", http.StatusOK)), []byte("\n"))); got != len(rs)+1 {
		t.Errorf("store holds %d CSV lines, want %d readings + header", got, len(rs))
	}

	gap := appendFrame(nil, 9, &replRecord{kind: frameAppend, ch: 47, sensor: sensor.KindRTLSDR, readings: rs[:1]})
	if code, st := applyTo(t, ts.URL, exchange(testIncarnation, gap)); code != http.StatusConflict || st.Applied != 2 || st.Reason != reasonGap {
		t.Fatalf("gap apply: %d, applied %d, reason %q (want 409, mark 2, %q)", code, st.Applied, st.Reason, reasonGap)
	}

	// A different primary incarnation — a restarted process whose journal
	// restarts at 1 — must be refused, never skipped as idempotent.
	next := appendFrame(nil, 1, &replRecord{kind: frameAppend, ch: 47, sensor: sensor.KindRTLSDR, readings: rs[:1]})
	code, st := applyTo(t, ts.URL, exchange(testIncarnation+2, next))
	if code != http.StatusConflict || st.Reason != reasonMismatch {
		t.Fatalf("foreign incarnation: %d, reason %q (want 409 %q)", code, st.Reason, reasonMismatch)
	}
	if st.Applied != 2 || st.Incarnation != testIncarnation {
		t.Fatalf("refusal reported mark %d / incarnation %016x, want 2 / %016x", st.Applied, st.Incarnation, testIncarnation)
	}
	// Malformed exchanges (truncated header, zero incarnation) are plain
	// 400s, answered before any stream-state decision.
	for _, bad := range [][]byte{{1, 2, 3}, exchange(0, nil)} {
		resp := mustPost(t, ts.URL+"/v1/repl/apply", bad)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("malformed exchange %v: %s (want 400)", bad, resp.Status)
		}
	}
}

// TestApplyRefusesRecoveredNode: a node that recovered pre-existing data
// from its WAL has history no replication stream accounts for, so it
// must refuse to adopt one until rebuilt empty.
func TestApplyRefusesRecoveredNode(t *testing.T) {
	dir := t.TempDir()
	open := func() (*Node, *httptest.Server) {
		n, err := OpenNode(NodeConfig{
			ID: "r",
			DB: dbserver.Config{
				Constructor: core.ConstructorConfig{Classifier: core.KindNB},
				DataDir:     dir,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(n.Handler())
		return n, ts
	}
	n, ts := open()
	resp := mustPost(t, ts.URL+"/v1/readings", uploadBody(t, synthReadings(20, 47, 1)))
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("upload = %s", resp.Status)
	}
	ts.Close()
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}

	n, ts = open()
	defer func() { ts.Close(); n.Close() }()
	frames := appendFrame(nil, 1, &replRecord{kind: frameAppend, ch: 47, sensor: sensor.KindRTLSDR, readings: synthReadings(1, 47, 2)})
	code, st := applyTo(t, ts.URL, exchange(testIncarnation, frames))
	if code != http.StatusConflict || st.Reason != reasonResync {
		t.Fatalf("apply to recovered node: %d, reason %q (want 409 %q)", code, st.Reason, reasonResync)
	}
	if st.Incarnation != 0 {
		t.Errorf("recovered node adopted incarnation %016x, want none", st.Incarnation)
	}
}

// TestApplyRefusedAfterPromotion: once a node accepts a direct client
// write (gateway failover made it the de-facto primary), replication
// frames from the old primary must be refused — interleaving them with
// the direct writes would silently fork the store history.
func TestApplyRefusedAfterPromotion(t *testing.T) {
	_, ts := newTestNode(t, "r", nil)
	frames := appendFrame(nil, 1, &replRecord{kind: frameAppend, ch: 47, sensor: sensor.KindRTLSDR, readings: synthReadings(5, 47, 1)})
	if code, _ := applyTo(t, ts.URL, exchange(testIncarnation, frames)); code != http.StatusOK {
		t.Fatalf("pre-promotion apply: %d", code)
	}

	resp := mustPost(t, ts.URL+"/v1/readings", uploadBody(t, synthReadings(20, 47, 2)))
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("direct upload = %s", resp.Status)
	}

	more := appendFrame(nil, 2, &replRecord{kind: frameAppend, ch: 47, sensor: sensor.KindRTLSDR, readings: synthReadings(5, 47, 3)})
	code, st := applyTo(t, ts.URL, exchange(testIncarnation, more))
	if code != http.StatusConflict || st.Reason != reasonPromoted {
		t.Fatalf("post-promotion apply: %d, reason %q (want 409 %q)", code, st.Reason, reasonPromoted)
	}
	if st.Applied != 1 {
		t.Errorf("promoted node reported mark %d, want 1", st.Applied)
	}
}

// TestReplicatorTruncatesAfterDrain: once every replica confirms the
// journal, the in-memory log is dropped — steady-state memory is bounded
// by replica lag, not the primary's lifetime.
func TestReplicatorTruncatesAfterDrain(t *testing.T) {
	_, replicaTS := newTestNode(t, "r", nil)
	primary, primaryTS := newTestNode(t, "p", []string{replicaTS.URL})

	for i := 0; i < 3; i++ {
		resp := mustPost(t, primaryTS.URL+"/v1/readings", uploadBody(t, synthReadings(100, 47, int64(i))))
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("upload %d = %s", i, resp.Status)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := primary.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	// Truncation runs just after the ack that completes the drain; give
	// the shipping goroutine a moment to get there.
	deadline := time.Now().Add(5 * time.Second)
	for {
		primary.repl.mu.Lock()
		held, base := len(primary.repl.log), primary.repl.base
		primary.repl.mu.Unlock()
		if held == 0 {
			if base != 3 {
				t.Fatalf("truncation base = %d, want 3", base)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("log still holds %d records after drain", held)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRestartedPrimaryFencesReplica: a replica following incarnation A
// refuses a restarted primary's incarnation B, and the new primary
// fences the link (resync flagged) instead of silently dropping writes.
func TestRestartedPrimaryFencesReplica(t *testing.T) {
	replicaNode, replicaTS := newTestNode(t, "r", nil)
	frames := appendFrame(nil, 1, &replRecord{kind: frameAppend, ch: 47, sensor: sensor.KindRTLSDR, readings: synthReadings(5, 47, 1)})
	if code, _ := applyTo(t, replicaTS.URL, exchange(testIncarnation, frames)); code != http.StatusOK {
		t.Fatalf("seeding apply: %d", code)
	}

	// "Restarted" primary: a fresh process with a new incarnation shipping
	// to the same replica.
	primary, primaryTS := newTestNode(t, "p", []string{replicaTS.URL})
	resp := mustPost(t, primaryTS.URL+"/v1/readings", uploadBody(t, synthReadings(50, 47, 2)))
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("upload = %s", resp.Status)
	}

	link := primary.repl.links[0]
	deadline := time.Now().Add(5 * time.Second)
	for {
		link.mu.Lock()
		fenced := link.fenced
		link.mu.Unlock()
		if fenced {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("link never fenced against a replica following another incarnation")
		}
		time.Sleep(time.Millisecond)
	}
	replicaNode.applyMu.Lock()
	applied, follows := replicaNode.applied, replicaNode.follows
	replicaNode.applyMu.Unlock()
	if applied != 1 || follows != testIncarnation {
		t.Errorf("replica moved to applied %d / follows %016x; fencing should have frozen it at 1 / %016x",
			applied, follows, testIncarnation)
	}
}

// TestRecoveredPrimarySeedsEmptyReplica: a primary restarted over an
// existing data dir seeds its journal with the recovered state, so a
// fresh empty replica converges to byte-identical descriptors — the
// documented resync path.
func TestRecoveredPrimarySeedsEmptyReplica(t *testing.T) {
	dir := t.TempDir()
	open := func(replicas []string) (*Node, *httptest.Server) {
		n, err := OpenNode(NodeConfig{
			ID: "p",
			DB: dbserver.Config{
				Constructor: core.ConstructorConfig{Classifier: core.KindNB},
				DataDir:     dir,
			},
			ReplicaURLs:  replicas,
			ShipInterval: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(n.Handler())
		return n, ts
	}
	n, ts := open(nil)
	resp := mustPost(t, ts.URL+"/v1/readings", uploadBody(t, synthReadings(200, 47, 1)))
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("upload = %s", resp.Status)
	}
	resp = mustPost(t, ts.URL+"/v1/retrain?channel=47&sensor=1", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retrain = %s", resp.Status)
	}
	ts.Close()
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}

	_, replicaTS := newTestNode(t, "r", nil)
	primary, primaryTS := open([]string{replicaTS.URL})
	defer func() { primaryTS.Close(); primary.Close() }()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := primary.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/v1/model?channel=47&sensor=1", "/v1/export?channel=47&sensor=1"} {
		p := mustGetBody(t, primaryTS.URL+path, http.StatusOK)
		r := mustGetBody(t, replicaTS.URL+path, http.StatusOK)
		if !bytes.Equal(p, r) {
			t.Errorf("%s: recovered primary (%d bytes) and seeded replica (%d bytes) differ", path, len(p), len(r))
		}
	}
}

// TestReplicatorCatchesUpAfterOutage: a replica that comes back after
// refusing traffic receives the backlog from its last confirmed mark.
func TestReplicatorCatchesUpAfterOutage(t *testing.T) {
	replicaNode, replicaTS := newTestNode(t, "r", nil)
	gate := &gatedHandler{next: replicaNode.Handler()}
	gatedTS := httptest.NewServer(gate)
	defer gatedTS.Close()
	_ = replicaTS

	primary, primaryTS := newTestNode(t, "p", []string{gatedTS.URL})

	gate.setDown(true)
	resp := mustPost(t, primaryTS.URL+"/v1/readings", uploadBody(t, synthReadings(100, 47, 1)))
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("upload = %s", resp.Status)
	}
	// The replica is down; the primary must keep serving and accrue lag.
	deadline := time.Now().Add(5 * time.Second)
	for primary.ReplicationLag() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if primary.ReplicationLag() == 0 {
		t.Fatal("no replication lag while replica is down")
	}
	gate.setDown(false)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := primary.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	p := mustGetBody(t, primaryTS.URL+"/v1/export?channel=47&sensor=1", http.StatusOK)
	r := mustGetBody(t, replicaTS.URL+"/v1/export?channel=47&sensor=1", http.StatusOK)
	if !bytes.Equal(p, r) {
		t.Error("replica did not catch up to primary after outage")
	}
}

// gatedHandler simulates a replica outage by refusing requests at the
// HTTP layer.
type gatedHandler struct {
	mu   sync.Mutex
	down bool
	next http.Handler
}

func (g *gatedHandler) setDown(v bool) {
	g.mu.Lock()
	g.down = v
	g.mu.Unlock()
}

func (g *gatedHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mu.Lock()
	down := g.down
	g.mu.Unlock()
	if down {
		http.Error(w, "gate closed", http.StatusServiceUnavailable)
		return
	}
	g.next.ServeHTTP(w, r)
}
