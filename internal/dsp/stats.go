package dsp

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (NaN if len < 2).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the extrema of xs (NaNs for an empty slice).
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. xs need not be sorted. Returns NaN
// for empty input or p outside [0, 100].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 || p < 0 || p > 100 || math.IsNaN(p) {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// FiveNumber is the boxplot summary of a sample: minimum, lower quartile,
// median, upper quartile, maximum (paper Figs. 10–11 report these per
// feature per occupancy class).
type FiveNumber struct {
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
}

// Summarize returns the five-number summary of xs.
func Summarize(xs []float64) FiveNumber {
	if len(xs) == 0 {
		nan := math.NaN()
		return FiveNumber{nan, nan, nan, nan, nan}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return FiveNumber{
		Min:    sorted[0],
		Q1:     percentileSorted(sorted, 25),
		Median: percentileSorted(sorted, 50),
		Q3:     percentileSorted(sorted, 75),
		Max:    sorted[len(sorted)-1],
	}
}

// IQR returns the interquartile range Q3−Q1.
func (f FiveNumber) IQR() float64 { return f.Q3 - f.Q1 }

// Pearson returns the Pearson correlation coefficient between xs and ys.
// Returns NaN if the lengths differ, fewer than two samples are given, or
// either series is constant.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// MovingAverage returns the trailing moving average of xs with the given
// window (window ≥ 1). Element i averages xs[max(0,i-window+1) .. i], so the
// output has the same length as the input and warms up from the first value.
func MovingAverage(xs []float64, window int) []float64 {
	if window < 1 {
		window = 1
	}
	out := make([]float64, len(xs))
	var sum float64
	for i, x := range xs {
		sum += x
		if i >= window {
			sum -= xs[i-window]
			out[i] = sum / float64(window)
		} else {
			out[i] = sum / float64(i+1)
		}
	}
	return out
}

// TrimOutliers returns the elements of xs within the [loPct, hiPct]
// percentile band, preserving order. This is the detector's 5th–95th
// percentile outlier rejection step (paper §3.3).
func TrimOutliers(xs []float64, loPct, hiPct float64) []float64 {
	if len(xs) == 0 {
		return nil
	}
	lo := Percentile(xs, loPct)
	hi := Percentile(xs, hiPct)
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x >= lo && x <= hi {
			out = append(out, x)
		}
	}
	return out
}
