package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/wsdetect/waldo/internal/core"
	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/dbserver"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
	"github.com/wsdetect/waldo/internal/telemetry"
)

func campaignBatch(w *testWorld, ch rfenv.Channel, n int) core.UploadBatch {
	rs := w.camp.Readings(ch, sensor.KindRTLSDR)
	if len(rs) > n {
		rs = rs[:n]
	}
	return core.UploadBatch{CISpanDB: 0.5, Readings: rs}
}

func TestUploadBinary(t *testing.T) {
	w := newTestWorld(t, []rfenv.Channel{47})
	before := w.server.StoreSize(47, sensor.KindRTLSDR)
	batch := campaignBatch(w, 47, 32)
	if err := w.client.UploadBinary(batch); err != nil {
		t.Fatal(err)
	}
	if got := w.server.StoreSize(47, sensor.KindRTLSDR); got != before+len(batch.Readings) {
		t.Errorf("store %d → %d, want +%d", before, got, len(batch.Readings))
	}
}

func TestUploadBinaryRejected(t *testing.T) {
	w := newTestWorld(t, []rfenv.Channel{47})
	batch := campaignBatch(w, 47, 8)
	batch.CISpanDB = 99 // fails the α′ gate → 422, terminal
	if err := w.client.UploadBinary(batch); err == nil {
		t.Fatal("wide-span batch accepted")
	}
	if err := w.client.UploadBinaryCtx(context.Background(), core.UploadBatch{}); err == nil {
		t.Fatal("empty batch accepted")
	}
}

func TestUploadBufferSizeFlush(t *testing.T) {
	w := newTestWorld(t, []rfenv.Channel{47})
	reg := telemetry.New()
	w.client.SetMetrics(reg)
	before := w.server.StoreSize(47, sensor.KindRTLSDR)
	buf := w.client.NewUploadBuffer(BufferConfig{FlushSize: 10})
	rs := w.camp.Readings(47, sensor.KindRTLSDR)[:25]
	for i := 0; i < len(rs); i++ {
		if err := buf.Add(core.UploadBatch{CISpanDB: 0.5, Readings: rs[i : i+1]}); err != nil {
			t.Fatal(err)
		}
	}
	// 25 adds at FlushSize 10 → two size-triggered flushes, 5 pending.
	if got := w.server.StoreSize(47, sensor.KindRTLSDR); got != before+20 {
		t.Errorf("after size flushes store grew %d, want 20", got-before)
	}
	if got := buf.Pending(); got != 5 {
		t.Errorf("pending = %d, want 5", got)
	}
	if err := buf.Close(); err != nil {
		t.Fatal(err)
	}
	if got := w.server.StoreSize(47, sensor.KindRTLSDR); got != before+25 {
		t.Errorf("after close store grew %d, want 25", got-before)
	}
	if got := buf.Pending(); got != 0 {
		t.Errorf("pending after close = %d, want 0", got)
	}
	if err := buf.Add(campaignBatch(w, 47, 1)); err == nil {
		t.Error("add after close accepted")
	}
	if got := reg.Counter("waldo_client_flush_total", "", "outcome", "ok").Value(); got != 3 {
		t.Errorf("flush ok = %d, want 3", got)
	}
	if got := reg.Counter("waldo_client_flush_readings_total", "").Value(); got != 25 {
		t.Errorf("flush readings = %d, want 25", got)
	}
}

func TestUploadBufferIntervalFlush(t *testing.T) {
	w := newTestWorld(t, []rfenv.Channel{47})
	before := w.server.StoreSize(47, sensor.KindRTLSDR)
	buf := w.client.NewUploadBuffer(BufferConfig{FlushSize: 1000, FlushInterval: 10 * time.Millisecond})
	defer buf.Close()
	if err := buf.Add(campaignBatch(w, 47, 7)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for w.server.StoreSize(47, sensor.KindRTLSDR) != before+7 {
		if time.Now().After(deadline) {
			t.Fatalf("interval flush never shipped: store grew %d",
				w.server.StoreSize(47, sensor.KindRTLSDR)-before)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestUploadBufferGroupsByStore proves a mixed-channel batch splits into
// per-store frames (the server rejects mixed batches).
func TestUploadBufferGroupsByStore(t *testing.T) {
	w := newTestWorld(t, []rfenv.Channel{47, 51})
	buf := w.client.NewUploadBuffer(BufferConfig{FlushSize: 1000})
	mixed := core.UploadBatch{CISpanDB: 0.5}
	mixed.Readings = append(mixed.Readings, w.camp.Readings(47, sensor.KindRTLSDR)[:6]...)
	mixed.Readings = append(mixed.Readings, w.camp.Readings(51, sensor.KindRTLSDR)[:4]...)
	before47 := w.server.StoreSize(47, sensor.KindRTLSDR)
	before51 := w.server.StoreSize(51, sensor.KindRTLSDR)
	if err := buf.Add(mixed); err != nil {
		t.Fatal(err)
	}
	if err := buf.Close(); err != nil {
		t.Fatal(err)
	}
	if got := w.server.StoreSize(47, sensor.KindRTLSDR) - before47; got != 6 {
		t.Errorf("ch47 grew %d, want 6", got)
	}
	if got := w.server.StoreSize(51, sensor.KindRTLSDR) - before51; got != 4 {
		t.Errorf("ch51 grew %d, want 4", got)
	}
}

// TestUploadBufferRequeueNoDuplicates drives flushes through a server
// that fails the first attempt of every frame: each flush re-queues, the
// retry ships exactly once, and the store ends with no duplicates.
func TestUploadBufferRequeueNoDuplicates(t *testing.T) {
	w := newTestWorld(t, []rfenv.Channel{47})
	reg := telemetry.New()

	var fail atomic.Bool
	proxy := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/upload/batch" && fail.CompareAndSwap(true, false) {
			http.Error(rw, "injected", http.StatusInternalServerError)
			return
		}
		w.server.Handler().ServeHTTP(rw, r)
	}))
	defer proxy.Close()

	c, err := NewWithConfig(proxy.URL, Config{
		HTTPClient: proxy.Client(),
		Retry:      RetryPolicy{MaxAttempts: 1}, // no transparent retry: the buffer must requeue
	})
	if err != nil {
		t.Fatal(err)
	}
	c.SetMetrics(reg)
	buf := c.NewUploadBuffer(BufferConfig{FlushSize: 1000})
	before := w.server.StoreSize(47, sensor.KindRTLSDR)
	rs := w.camp.Readings(47, sensor.KindRTLSDR)[:12]

	fail.Store(true)
	if err := buf.Add(core.UploadBatch{CISpanDB: 0.5, Readings: rs}); err != nil {
		t.Fatal(err)
	}
	if err := buf.Flush(context.Background()); err == nil {
		t.Fatal("flush through failing server succeeded")
	}
	if got := buf.Pending(); got != 12 {
		t.Fatalf("failed flush left %d pending, want 12 requeued", got)
	}
	if got := w.server.StoreSize(47, sensor.KindRTLSDR); got != before {
		t.Fatalf("failed flush leaked %d readings into the store", got-before)
	}
	// More readings arrive while the link is down; the retry ships both
	// the requeued frame and the new ones, once each.
	more := w.camp.Readings(47, sensor.KindRTLSDR)[12:20]
	if err := buf.Add(core.UploadBatch{CISpanDB: 0.5, Readings: more}); err != nil {
		t.Fatal(err)
	}
	if err := buf.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := w.server.StoreSize(47, sensor.KindRTLSDR); got != before+20 {
		t.Errorf("store grew %d, want exactly 20 (no duplicates, no losses)", got-before)
	}
	if got := buf.Pending(); got != 0 {
		t.Errorf("pending = %d, want 0", got)
	}
	if got := reg.Counter("waldo_client_flush_total", "", "outcome", "failed").Value(); got != 1 {
		t.Errorf("flush failed = %d, want 1", got)
	}
	if got := reg.Counter("waldo_client_flush_readings_total", "").Value(); got != 20 {
		t.Errorf("acked flush readings = %d, want 20", got)
	}
}

func TestWatchModelDelivers(t *testing.T) {
	w := newTestWorld(t, []rfenv.Channel{47})
	reg := telemetry.New()
	w.client.SetMetrics(reg)

	// First watch with an empty cache returns the current model at once.
	m, n, err := w.client.WatchModel(47, sensor.KindRTLSDR)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || n == 0 {
		t.Fatalf("watch returned model=%v bytes=%d", m, n)
	}
	if v := w.client.CachedModelVersion(47, sensor.KindRTLSDR); v != "1" {
		t.Fatalf("cached version = %q, want 1", v)
	}

	// A second watch parks; a server-side retrain pushes version 2.
	type result struct {
		m   *core.Model
		err error
	}
	got := make(chan result, 1)
	go func() {
		m, _, err := w.client.WatchModel(47, sensor.KindRTLSDR)
		got <- result{m, err}
	}()
	time.Sleep(50 * time.Millisecond) // let the watch park
	if err := w.client.Upload(core.UploadBatch{CISpanDB: 0.5,
		Readings: w.camp.Readings(47, sensor.KindRTLSDR)[:16]}); err != nil {
		t.Fatal(err)
	}
	if err := w.client.RequestRetrain(47, sensor.KindRTLSDR); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-got:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if v := w.client.CachedModelVersion(47, sensor.KindRTLSDR); v != "2" {
			t.Errorf("cached version after push = %q, want 2", v)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("watch never returned after retrain")
	}
	if got := reg.Counter("waldo_client_watch_total", "", "outcome", "delivered").Value(); got != 2 {
		t.Errorf("watch delivered = %d, want 2", got)
	}
}

// TestWatchModelRearms proves a server horizon expiry (304) re-arms the
// same WatchModelCtx call instead of erroring out.
func TestWatchModelRearms(t *testing.T) {
	env := newTestWorld(t, []rfenv.Channel{47})
	srv := dbserverWithWatchTimeout(t, env, 20*time.Millisecond)
	c, err := New(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	c.SetMetrics(reg)
	if _, _, err := c.Model(47, sensor.KindRTLSDR); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.WatchModelCtx(ctx, 47, sensor.KindRTLSDR)
		done <- err
	}()
	// Let at least two horizons expire, then cancel.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter("waldo_client_watch_total", "", "outcome", "rearm").Value() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("watch never re-armed through a 304")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Error("canceled watch returned nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled watch never returned")
	}
}

// dbserverWithWatchTimeout spins a second server over the same campaign
// with a short watch horizon.
func dbserverWithWatchTimeout(t *testing.T, w *testWorld, horizon time.Duration) *httptest.Server {
	t.Helper()
	srv := dbserver.New(dbserver.Config{
		Constructor:  core.ConstructorConfig{Classifier: core.KindNB},
		WatchTimeout: horizon,
	})
	var rs []dataset.Reading
	rs = append(rs, w.camp.Readings(47, sensor.KindRTLSDR)...)
	if err := srv.Bootstrap(rs); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}
