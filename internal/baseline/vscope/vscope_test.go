package vscope

import (
	"math"
	"math/rand"
	"testing"

	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/features"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
)

// synthChannel generates readings following an exact log-distance law
// RSS = A − 10·n·log10(d_km) + noise around one transmitter.
func synthChannel(tx rfenv.Transmitter, a, n float64, count int, seed int64) []dataset.Reading {
	rng := rand.New(rand.NewSource(seed))
	var out []dataset.Reading
	for i := 0; i < count; i++ {
		loc := tx.Loc.Offset(rng.Float64()*360, 1000+rng.Float64()*24000)
		dKM := tx.Loc.DistanceM(loc) / 1000
		rss := a - 10*n*math.Log10(dKM) + rng.NormFloat64()
		out = append(out, dataset.Reading{
			Seq: i, Loc: loc, Channel: tx.Channel, Sensor: sensor.KindRTLSDR,
			Signal: features.Signal{RSSdBm: rss, CFTdB: rss - 11.3, AFTdB: rss - 13},
		})
	}
	return out
}

func TestTrainRecoversExponent(t *testing.T) {
	tx := rfenv.Transmitter{Callsign: "T", Loc: rfenv.MetroCenter, Channel: 30, ERPdBm: 80, HeightM: 300}
	readings := map[rfenv.Channel][]dataset.Reading{
		30: synthChannel(tx, -40, 3.2, 800, 1),
	}
	m, err := Train(readings, Config{Transmitters: []rfenv.Transmitter{tx}, ClusterK: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	n, err := m.FittedExponent(30, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(n-3.2) > 0.2 {
		t.Errorf("fitted exponent = %v, want ≈3.2", n)
	}
	// Prediction at a fresh point should be close to the law.
	p := rfenv.MetroCenter.Offset(10, 9000)
	want := -40 - 32*math.Log10(9)
	got, err := m.PredictRSS(30, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1.5 {
		t.Errorf("predicted %v, want ≈%v", got, want)
	}
}

func TestAvailabilityContour(t *testing.T) {
	tx := rfenv.Transmitter{Callsign: "T", Loc: rfenv.MetroCenter, Channel: 30, ERPdBm: 80, HeightM: 300}
	// A = −40, n = 3.5: contour at 10^((−40+84)/35) = 10^1.257 ≈ 18.1 km.
	readings := map[rfenv.Channel][]dataset.Reading{
		30: synthChannel(tx, -40, 3.5, 800, 3),
	}
	m, err := Train(readings, Config{Transmitters: []rfenv.Transmitter{tx}, ClusterK: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	inside, err := m.Available(30, rfenv.MetroCenter.Offset(0, 10000))
	if err != nil {
		t.Fatal(err)
	}
	if inside {
		t.Error("10 km (inside contour) should be denied")
	}
	buffer, err := m.Available(30, rfenv.MetroCenter.Offset(0, 22000))
	if err != nil {
		t.Fatal(err)
	}
	if buffer {
		t.Error("contour + <6 km buffer should be denied")
	}
	outside, err := m.Available(30, rfenv.MetroCenter.Offset(0, 30000))
	if err != nil {
		t.Fatal(err)
	}
	if !outside {
		t.Error("far outside should be allowed")
	}
}

// TestVScopeBlindToPockets captures the structural weakness Waldo
// exploits: a deep obstruction pocket inside the fitted contour is still
// denied, and an obstructed region's labels cannot be expressed radially.
func TestVScopeBlindToPockets(t *testing.T) {
	tx := rfenv.Transmitter{Callsign: "T", Loc: rfenv.MetroCenter, Channel: 47, ERPdBm: 80, HeightM: 300}
	readings := synthChannel(tx, -40, 3.5, 800, 5)
	// Carve a pocket at 8 km north: readings there are 25 dB down.
	pocket := rfenv.MetroCenter.Offset(0, 8000)
	for i := range readings {
		if readings[i].Loc.DistanceM(pocket) < 2000 {
			readings[i].Signal.RSSdBm -= 25
		}
	}
	m, err := Train(map[rfenv.Channel][]dataset.Reading{47: readings},
		Config{Transmitters: []rfenv.Transmitter{tx}, ClusterK: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	avail, err := m.Available(47, pocket)
	if err != nil {
		t.Fatal(err)
	}
	if avail {
		t.Error("V-Scope should deny the pocket — it models distance, not terrain")
	}
}

func TestTrainValidation(t *testing.T) {
	tx := rfenv.Transmitter{Callsign: "T", Loc: rfenv.MetroCenter, Channel: 30, ERPdBm: 80, HeightM: 300}
	if _, err := Train(nil, Config{Transmitters: []rfenv.Transmitter{tx}}); err == nil {
		t.Error("no readings must fail")
	}
	readings := map[rfenv.Channel][]dataset.Reading{30: synthChannel(tx, -40, 3, 50, 7)}
	if _, err := Train(readings, Config{}); err == nil {
		t.Error("no registry must fail")
	}
	// Channel without a transmitter on it.
	bad := map[rfenv.Channel][]dataset.Reading{15: synthChannel(tx, -40, 3, 50, 8)}
	for i := range bad[15] {
		bad[15][i].Channel = 15
	}
	if _, err := Train(bad, Config{Transmitters: []rfenv.Transmitter{tx}}); err == nil {
		t.Error("channel without incumbents must fail")
	}
	m, err := Train(readings, Config{Transmitters: []rfenv.Transmitter{tx}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Available(22, rfenv.MetroCenter); err == nil {
		t.Error("query for untrained channel must fail")
	}
	if _, err := m.PredictRSS(22, rfenv.MetroCenter); err == nil {
		t.Error("prediction for untrained channel must fail")
	}
	if _, err := m.FittedExponent(30, 99); err == nil {
		t.Error("bad cluster index must fail")
	}
}

func TestExponentClamping(t *testing.T) {
	tx := rfenv.Transmitter{Callsign: "T", Loc: rfenv.MetroCenter, Channel: 30, ERPdBm: 80, HeightM: 300}
	// Pure noise readings: slope fit is garbage; exponent must clamp.
	rng := rand.New(rand.NewSource(9))
	var readings []dataset.Reading
	for i := 0; i < 200; i++ {
		loc := tx.Loc.Offset(rng.Float64()*360, 1000+rng.Float64()*20000)
		readings = append(readings, dataset.Reading{
			Seq: i, Loc: loc, Channel: 30, Sensor: sensor.KindRTLSDR,
			Signal: features.Signal{RSSdBm: -90 + rng.NormFloat64()*15},
		})
	}
	m, err := Train(map[rfenv.Channel][]dataset.Reading{30: readings},
		Config{Transmitters: []rfenv.Transmitter{tx}, ClusterK: 1, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	n, err := m.FittedExponent(30, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n < minExponent || n > maxExponent {
		t.Errorf("exponent %v outside clamp range", n)
	}
}
