package cluster

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// benchUpload measures one upload round-trip per iteration against url,
// reusing one keep-alive client so both variants pay identical transport
// setup.
func benchUpload(b *testing.B, httpc *http.Client, url string, body []byte) {
	b.Helper()
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := httpc.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			b.Fatalf("upload = %s", resp.Status)
		}
	}
}

// BenchmarkUploadDirect is the baseline: a 50-reading batch POSTed
// straight at a single shard node.
func BenchmarkUploadDirect(b *testing.B) {
	_, ts := newTestNode(b, "direct", nil)
	body := uploadBody(b, synthReadings(50, 47, 1))
	benchUpload(b, ts.Client(), ts.URL+"/v1/readings", body)
}

// BenchmarkUploadViaGateway is the same batch through the gateway's
// decode-first-reading → route → forward path. The acceptance bar for
// the cluster tier is < 2× BenchmarkUploadDirect per op.
func BenchmarkUploadViaGateway(b *testing.B) {
	_, ts := newTestNode(b, "s0", nil)
	gw, err := NewGateway(GatewayConfig{
		Shards: []ShardSpec{{ID: "s0", URLs: []string{ts.URL}}},
		Ring:   RingConfig{Seed: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer gw.Close()
	gwTS := httptest.NewServer(gw.Handler())
	defer gwTS.Close()
	body := uploadBody(b, synthReadings(50, 47, 1))
	benchUpload(b, gwTS.Client(), gwTS.URL+"/v1/readings", body)
}

// BenchmarkRingOwner prices one routing decision (the per-request cost
// the gateway adds before any I/O).
func BenchmarkRingOwner(b *testing.B) {
	nodes := make([]string, 8)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("shard-%d", i)
	}
	ring, err := NewRing(RingConfig{Seed: 1}, nodes)
	if err != nil {
		b.Fatal(err)
	}
	keys := testKeys(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ring.Owner(keys[i%len(keys)]) == "" {
			b.Fatal("no owner")
		}
	}
}

// BenchmarkFrameEncode prices serializing a 256-reading append frame for
// the replication shipper.
func BenchmarkFrameEncode(b *testing.B) {
	rec := replRecord{kind: frameAppend, ch: 47, sensor: 1, readings: synthReadings(256, 47, 1)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := appendFrame(nil, uint64(i)+1, &rec)
		if len(buf) == 0 {
			b.Fatal("empty frame")
		}
	}
}
