package dsp

import (
	"fmt"
	"math"
)

// Goertzel computes the power of a single DFT bin in O(n) time and O(1)
// space — the classic tone detector. It matters here because the CFT
// feature needs exactly one bin: §5 observes that Waldo's per-capture
// processing exceeds the IEEE 802.22 sensing budget on 2015 phone hardware
// and points at hardware-level spectral processing as the fix; Goertzel is
// the software form of that fix, replacing the 256-point FFT when only the
// pilot bin is needed (see BenchmarkGoertzelVsFFT).
//
// The returned value matches PowerSpectrum's normalization (|X[k]|²/n²),
// so it is drop-in comparable with Spectrum bin powers. bin is an FFT-order
// index in [0, n).
func Goertzel(samples []complex128, bin int) (float64, error) {
	n := len(samples)
	if n == 0 {
		return 0, fmt.Errorf("dsp: goertzel on empty input")
	}
	if bin < 0 || bin >= n {
		return 0, fmt.Errorf("dsp: goertzel bin %d outside [0, %d)", bin, n)
	}
	// Complex-input Goertzel: run the recurrence on the complex samples.
	w := 2 * math.Pi * float64(bin) / float64(n)
	coef := complex(2*math.Cos(w), 0)
	rot := complex(math.Cos(w), math.Sin(w))

	var s1, s2 complex128
	for _, x := range samples {
		s0 := x + coef*s1 - s2
		s2 = s1
		s1 = s0
	}
	// X[k] = e^{jw}·s1 − s2 (up to a phase factor irrelevant for power).
	xk := rot*s1 - s2
	re, im := real(xk), imag(xk)
	nn := float64(n)
	return (re*re + im*im) / (nn * nn), nil
}

// GoertzelCentered returns the power of the FFT-shifted center bin — the
// pilot-region bin the CFT feature reads. The shifted center is the DC
// bin (FFT bin 0): captures are tuned so the pilot sits at baseband DC.
func GoertzelCentered(samples []complex128) (float64, error) {
	return Goertzel(samples, 0)
}
