package geo

import (
	"math"
	"testing"
	"testing/quick"
)

// atlanta is used as a realistic metro anchor in tests.
var atlanta = Point{Lat: 33.749, Lon: -84.388}

func TestDistanceMZero(t *testing.T) {
	if d := atlanta.DistanceM(atlanta); d != 0 {
		t.Fatalf("distance to self = %v, want 0", d)
	}
}

func TestDistanceMKnownPairs(t *testing.T) {
	tests := []struct {
		name  string
		a, b  Point
		wantM float64
		tolM  float64
	}{
		{
			name:  "atlanta to athens GA",
			a:     atlanta,
			b:     Point{Lat: 33.951, Lon: -83.357},
			wantM: 97500,
			tolM:  2500,
		},
		{
			name:  "one degree of latitude",
			a:     Point{Lat: 33, Lon: -84},
			b:     Point{Lat: 34, Lon: -84},
			wantM: 111195,
			tolM:  200,
		},
		{
			name:  "equator one degree longitude",
			a:     Point{Lat: 0, Lon: 0},
			b:     Point{Lat: 0, Lon: 1},
			wantM: 111195,
			tolM:  200,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.a.DistanceM(tt.b)
			if math.Abs(got-tt.wantM) > tt.tolM {
				t.Errorf("DistanceM = %.0f, want %.0f ± %.0f", got, tt.wantM, tt.tolM)
			}
		})
	}
}

func TestDistanceSymmetry(t *testing.T) {
	f := func(aLat, aLon, bLat, bLon float64) bool {
		a := Point{Lat: clampLat(aLat), Lon: clampLon(aLon)}
		b := Point{Lat: clampLat(bLat), Lon: clampLon(bLon)}
		d1 := a.DistanceM(b)
		d2 := b.DistanceM(a)
		return math.Abs(d1-d2) < 1e-6*(1+d1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOffsetRoundTrip(t *testing.T) {
	f := func(bearing, dist float64) bool {
		b := math.Mod(math.Abs(bearing), 360)
		d := math.Mod(math.Abs(dist), 50000) // metro scale
		q := atlanta.Offset(b, d)
		back := q.DistanceM(atlanta)
		return math.Abs(back-d) < 1.0 // sub-meter at 50 km scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOffsetBearing(t *testing.T) {
	north := atlanta.Offset(0, 10000)
	if north.Lat <= atlanta.Lat {
		t.Errorf("north offset should increase latitude: %v -> %v", atlanta, north)
	}
	east := atlanta.Offset(90, 10000)
	if east.Lon <= atlanta.Lon {
		t.Errorf("east offset should increase longitude: %v -> %v", atlanta, east)
	}
	if b := atlanta.BearingDeg(north); math.Abs(b) > 0.5 && math.Abs(b-360) > 0.5 {
		t.Errorf("bearing to north point = %v, want ~0", b)
	}
}

func TestMidpoint(t *testing.T) {
	q := atlanta.Offset(45, 20000)
	m := atlanta.Midpoint(q)
	d1 := atlanta.DistanceM(m)
	d2 := m.DistanceM(q)
	if math.Abs(d1-d2) > 1 {
		t.Errorf("midpoint not equidistant: %v vs %v", d1, d2)
	}
}

func TestPointValid(t *testing.T) {
	tests := []struct {
		p    Point
		want bool
	}{
		{Point{0, 0}, true},
		{Point{90, 180}, true},
		{Point{-90, -180}, true},
		{Point{91, 0}, false},
		{Point{0, 181}, false},
		{Point{math.NaN(), 0}, false},
	}
	for _, tt := range tests {
		if got := tt.p.Valid(); got != tt.want {
			t.Errorf("Valid(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func clampLat(v float64) float64 { return math.Mod(math.Abs(v), 80) }
func clampLon(v float64) float64 { return math.Mod(math.Abs(v), 170) }
