package telemetry

import (
	"context"
	"sync"
	"time"
)

// Span times one operation, optionally nested under a parent. Durations
// land in the registry's waldo_span_seconds histogram, labeled with the
// slash-joined span path ("retrain/build"), so nested phase costs (model
// build, clustering, classification, upload screening) show up in
// /metrics without a tracing backend. A SpanHook, when set, additionally
// receives every completed span for custom exporters.
//
// Beyond the histogram, a span may belong to a request-scoped trace
// (StartTrace / StartSpanCtx): it then carries a span ID and parent,
// accepts attributes and an error status, and its completion is recorded
// into the trace's span list for the flight recorder (see recorder.go).
//
// Spans are nil-safe: StartSpan on a nil registry returns a nil *Span
// whose Child, SetAttr, Fail, and End are no-ops.
//
// Hot path: span paths and their histogram handles are interned in a
// tree of spanNodes, so steady-state StartSpan and Child do lock-free
// sync.Map loads instead of building slash-joined strings and re-walking
// the registry per call, and completed spans return to a pool. End
// invalidates the span: don't retain or reuse it afterwards.
type Span struct {
	reg   *Registry
	node  *spanNode
	start time.Time

	// Trace attachment (nil/zero for metric-only spans).
	tr     *Trace
	id     SpanID
	parent SpanID
	attrs  []Attr
	errMsg string
	ended  bool
}

// Attr is one key/value annotation on a traced span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// spanNode is one interned span path: the slash-joined path string, its
// histogram handle (resolved once), and the children discovered so far.
type spanNode struct {
	path     string
	hist     *Histogram
	children sync.Map // child name → *spanNode
}

var spanPool = sync.Pool{New: func() any { return new(Span) }}

// SpanHook receives every completed span: its slash-joined path and
// duration in seconds.
type SpanHook func(path string, seconds float64)

// SetSpanHook installs fn as the registry's span exporter (nil to clear).
// Safe for concurrent use with StartSpan/End.
func (r *Registry) SetSpanHook(fn SpanHook) {
	if r == nil {
		return
	}
	r.spanHook.Store(fn)
}

const spanMetric = "waldo_span_seconds"
const spanHelp = "Duration of traced operations, labeled by span path."

// spanNodeFor interns a root-level span path.
func (r *Registry) spanNodeFor(name string) *spanNode {
	if v, ok := r.spanRoots.Load(name); ok {
		return v.(*spanNode)
	}
	n := &spanNode{path: name, hist: r.Histogram(spanMetric, spanHelp, nil, "span", name)}
	v, _ := r.spanRoots.LoadOrStore(name, n)
	return v.(*spanNode)
}

// child interns a nested span path under n.
func (n *spanNode) child(r *Registry, name string) *spanNode {
	if v, ok := n.children.Load(name); ok {
		return v.(*spanNode)
	}
	path := n.path + "/" + name
	c := &spanNode{path: path, hist: r.Histogram(spanMetric, spanHelp, nil, "span", path)}
	v, _ := n.children.LoadOrStore(name, c)
	return v.(*spanNode)
}

func newSpan(r *Registry, node *spanNode, tr *Trace, parent SpanID) *Span {
	s := spanPool.Get().(*Span)
	s.reg = r
	s.node = node
	s.tr = tr
	s.parent = parent
	s.errMsg = ""
	s.ended = false
	if tr != nil {
		s.id = NewSpanID()
	} else {
		s.id = SpanID{}
	}
	s.start = time.Now()
	return s
}

// StartSpan begins timing an operation (metric-only: no trace
// attachment).
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return newSpan(r, r.spanNodeFor(name), nil, SpanID{})
}

// StartSpanCtx begins timing an operation, attaching it to the trace
// carried by ctx (if any) as a child of the context's current span. The
// metric path is name alone — trace parentage does not change the
// waldo_span_seconds label, so metric cardinality stays bounded no
// matter which routes an operation runs under.
func (r *Registry) StartSpanCtx(ctx context.Context, name string) *Span {
	if r == nil {
		return nil
	}
	var tr *Trace
	var parent SpanID
	if p := SpanFromContext(ctx); p != nil && p.tr != nil {
		tr, parent = p.tr, p.id
	}
	return newSpan(r, r.spanNodeFor(name), tr, parent)
}

// Child begins a nested span; its metric path is parent/name, and when
// the parent belongs to a trace the child joins it.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return newSpan(s.reg, s.node.child(s.reg, name), s.tr, s.id)
}

// SetAttr annotates a traced span (no-op on metric-only spans, so hot
// paths pay nothing when no trace is in flight).
func (s *Span) SetAttr(key, value string) {
	if s == nil || s.tr == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// Fail marks the span (and its trace) as errored. The flight recorder
// never evicts errored traces in favor of healthy ones.
func (s *Span) Fail(msg string) {
	if s == nil {
		return
	}
	s.errMsg = msg
	if s.tr != nil {
		s.tr.setErrored()
	}
}

// Context returns the span's propagation context for outgoing requests
// and response headers. Zero when the span is metric-only.
func (s *Span) Context() SpanContext {
	if s == nil || s.tr == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.tr.id, Span: s.id, Sampled: s.tr.sampled}
}

// TraceID returns the trace the span belongs to (zero when metric-only).
func (s *Span) TraceID() TraceID {
	if s == nil || s.tr == nil {
		return TraceID{}
	}
	return s.tr.id
}

// End stops the span, records its duration (into the histogram, the
// span hook, and the trace when attached), and returns the duration.
// The span must not be used after End.
func (s *Span) End() time.Duration {
	if s == nil || s.ended {
		return 0
	}
	s.ended = true
	end := time.Now()
	d := end.Sub(s.start)
	secs := d.Seconds()
	if s.tr != nil && s.tr.sampled {
		s.node.hist.ObserveWithExemplar(secs, s.tr.id, end)
	} else {
		s.node.hist.Observe(secs)
	}
	if fn, ok := s.reg.spanHook.Load().(SpanHook); ok && fn != nil {
		fn(s.node.path, secs)
	}
	tr := s.tr
	if tr != nil {
		rec := SpanData{
			Name:     s.node.path,
			SpanID:   s.id.String(),
			ParentID: "",
			Offset:   s.start.Sub(tr.start),
			Duration: d,
			Attrs:    s.attrs,
			Error:    s.errMsg,
		}
		if !s.parent.IsZero() {
			rec.ParentID = s.parent.String()
		}
		root := s.id == tr.root
		s.attrs = nil // handed to the trace; don't reuse from the pool
		tr.addSpan(rec)
		if root {
			tr.finish(end)
		}
	}
	// Scrub and recycle. Attrs of untraced spans are always nil, so the
	// pooled object carries no stale references.
	s.reg, s.node, s.tr = nil, nil, nil
	s.attrs = nil
	spanPool.Put(s)
	return d
}

// Time runs fn under a span — the one-liner for leaf operations.
func (r *Registry) Time(name string, fn func()) time.Duration {
	if r == nil {
		fn()
		return 0
	}
	sp := r.StartSpan(name)
	fn()
	return sp.End()
}
