package e2e

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"time"

	"github.com/wsdetect/waldo/internal/client"
	"github.com/wsdetect/waldo/internal/cluster"
	"github.com/wsdetect/waldo/internal/core"
	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/dbserver"
	"github.com/wsdetect/waldo/internal/faultinject"
	"github.com/wsdetect/waldo/internal/features"
	"github.com/wsdetect/waldo/internal/geo"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
	"github.com/wsdetect/waldo/internal/telemetry"
)

// ClusterConfig shapes a RunClusterCrash scenario: a sharded topology
// (every shard a primary+replica pair behind one gateway) driven by a
// WSD client through an optionally faulty transport, with one primary
// killed mid-load.
type ClusterConfig struct {
	// Seed drives every derived RNG (batch contents, cell choice).
	Seed int64
	// Shards is the number of primary+replica pairs; 0 means 3.
	Shards int
	// Channels carry the load; nil means {46, 47}.
	Channels []rfenv.Channel
	// CellDeg is the routing cell quantum; 0 means 0.02° (~2.2 km), so
	// the batch locations spread over a handful of cells per shard.
	CellDeg float64
	// Cells is how many distinct geo-cells the load walks; 0 means 12.
	Cells int
	// Batches is the phase-A (pre-kill, quiesced) batch count; 0 means 24.
	Batches int
	// BatchSize is readings per batch; 0 means 40.
	BatchSize int
	// LagBatches are uploaded immediately before the kill with no drain,
	// so the victim dies with its replication log possibly ahead of the
	// replica; 0 means 6.
	LagBatches int
	// PostBatches are uploaded after the kill, aimed at the victim's
	// cells, so they must land via gateway failover; 0 means 8.
	PostBatches int
	// DataDir is the root for every node's WAL directory (required).
	DataDir string
	// ClientPlan injects faults into the client→gateway transport.
	ClientPlan faultinject.Plan
	// Client overrides the WSD client's resilience parameters (harness
	// defaults are the fast chaos-friendly ones, as in Config).
	Client client.Config
	// MaxWall bounds the whole run; 0 means 2 minutes.
	MaxWall time.Duration
}

func (c *ClusterConfig) defaults() {
	if c.Shards == 0 {
		c.Shards = 3
	}
	if len(c.Channels) == 0 {
		c.Channels = []rfenv.Channel{46, 47}
	}
	if c.CellDeg == 0 {
		c.CellDeg = 0.02
	}
	if c.Cells == 0 {
		c.Cells = 12
	}
	if c.Batches == 0 {
		c.Batches = 24
	}
	if c.BatchSize == 0 {
		c.BatchSize = 40
	}
	if c.LagBatches == 0 {
		c.LagBatches = 6
	}
	if c.PostBatches == 0 {
		c.PostBatches = 8
	}
	if c.Client.Timeout == 0 {
		c.Client.Timeout = 250 * time.Millisecond
	}
	if c.Client.Retry.BaseDelay == 0 {
		c.Client.Retry.BaseDelay = time.Millisecond
	}
	if c.Client.Retry.MaxDelay == 0 {
		c.Client.Retry.MaxDelay = 10 * time.Millisecond
	}
	if c.Client.Retry.Seed == 0 {
		c.Client.Retry.Seed = uint64(c.Seed)
	}
	if c.Client.Breaker.Cooldown == 0 {
		c.Client.Breaker.Cooldown = 25 * time.Millisecond
	}
	if c.MaxWall == 0 {
		c.MaxWall = 2 * time.Minute
	}
}

// ClusterResult is what the cluster chaos tests assert on.
type ClusterResult struct {
	// Victim is the shard whose primary was killed.
	Victim string
	// AckedTotal counts readings the client got an ack for across all
	// phases; Acked* split them by durability obligation.
	AckedTotal int
	// Failovers is the gateway's failover counter at the end of the run
	// (≥ 1: the kill must have forced at least one advance).
	Failovers uint64

	// LostAfterRestart counts acked pre-kill readings of the victim
	// missing from its restarted primary — WAL replay failures.
	LostAfterRestart int
	// LostOnReplica counts acked readings owed to the victim's replica
	// (quiesced pre-kill phase plus the post-kill failover phase)
	// missing from it.
	LostOnReplica int
	// LostOnSurvivors counts acked readings missing from the unkilled
	// shards' primaries.
	LostOnSurvivors int

	// ModelMismatches counts (shard, channel) models whose encoded
	// descriptors differed between primary and replica at the pre-kill
	// quiesce point.
	ModelMismatches int
	// RestartModelMismatches counts victim channels whose descriptor
	// bytes changed across the WAL restart.
	RestartModelMismatches int
}

// clusterNode is one running node plus its HTTP front.
type clusterNode struct {
	node *cluster.Node
	ts   *httptest.Server
	dir  string
}

func (n *clusterNode) kill(flush bool) {
	if flush {
		n.node.DB.FlushWAL() //nolint:errcheck // crash simulation: best effort
	}
	n.ts.Close()
	n.node.Close()
}

// clusterBatch is one upload's bookkeeping: which seqs were acknowledged
// on which shard. The gateway splits batches per (channel, cell) owner,
// so the audit attributes every reading to the shard its own key routes
// to — reading by reading, exactly as the routing does.
type clusterBatch struct {
	// seqsByOwner maps shard ID → acknowledged reading seqs it owns.
	seqsByOwner map[string][]int
	total       int
}

// RunClusterCrash boots a Shards-way primary+replica topology behind a
// gateway, drives phased load through a (possibly fault-injected) WSD
// client, kills one primary mid-load, finishes the load through gateway
// failover, and audits every acknowledgment:
//
//	phase A  uploads, then broadcast retrain + replication drain — the
//	         quiesce point where primary and replica descriptors must be
//	         byte-identical;
//	phase B  uploads with no drain — the kill window; acks are owed to
//	         the victim's own WAL, not its replica;
//	phase C  uploads aimed at the victim's cells after the kill — acks
//	         are owed to the replica via failover.
//
// The zero-lost claim audited here is the division of durability labor:
// WAL replay must surface A∪B on a restarted victim, failover must have
// landed A∪C on the replica, and the survivors must hold everything they
// acked. Location-keyed routing, batch contents, and cell choice are all
// seed-derived, so a failure reproduces.
func RunClusterCrash(cfg ClusterConfig) (*ClusterResult, error) {
	cfg.defaults()
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("e2e: RunClusterCrash needs a data dir")
	}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.MaxWall)
	defer cancel()

	// --- Topology: Shards × (primary, replica) + gateway. ---
	openNode := func(id, dir string, replicaURLs []string) (*clusterNode, error) {
		n, err := cluster.OpenNode(cluster.NodeConfig{
			ID: id,
			DB: dbserver.Config{
				Constructor: core.ConstructorConfig{Classifier: core.KindNB, Seed: cfg.Seed},
				DataDir:     dir,
				Metrics:     telemetry.New(),
			},
			ReplicaURLs: replicaURLs,
		})
		if err != nil {
			return nil, err
		}
		return &clusterNode{node: n, ts: httptest.NewServer(n.Handler()), dir: dir}, nil
	}

	primaries := make(map[string]*clusterNode, cfg.Shards)
	replicas := make(map[string]*clusterNode, cfg.Shards)
	var specs []cluster.ShardSpec
	defer func() {
		for _, n := range primaries {
			n.ts.Close()
			n.node.Close()
		}
		for _, n := range replicas {
			n.ts.Close()
			n.node.Close()
		}
	}()
	for i := 0; i < cfg.Shards; i++ {
		id := fmt.Sprintf("shard-%d", i)
		rep, err := openNode(id+"-replica", filepath.Join(cfg.DataDir, id+"-replica"), nil)
		if err != nil {
			return nil, err
		}
		replicas[id] = rep
		prim, err := openNode(id, filepath.Join(cfg.DataDir, id+"-primary"), []string{rep.ts.URL})
		if err != nil {
			return nil, err
		}
		primaries[id] = prim
		specs = append(specs, cluster.ShardSpec{ID: id, URLs: []string{prim.ts.URL, rep.ts.URL}})
	}
	gw, err := cluster.NewGateway(cluster.GatewayConfig{
		Shards:  specs,
		Ring:    cluster.RingConfig{Seed: uint64(cfg.Seed)},
		CellDeg: cfg.CellDeg,
	})
	if err != nil {
		return nil, err
	}
	defer gw.Close()
	gwTS := httptest.NewServer(gw.Handler())
	defer gwTS.Close()

	// --- Client: resolver-targeted at the gateway, chaos on its wire. ---
	ccfg := cfg.Client
	ccfg.Resolver = func() string { return gwTS.URL }
	if cfg.ClientPlan != nil {
		ccfg.HTTPClient = &http.Client{Transport: &faultinject.Transport{Plan: cfg.ClientPlan}}
	}
	cl, err := client.NewWithConfig("", ccfg)
	if err != nil {
		return nil, err
	}

	// --- Load geometry: Cells cell centers east of the metro center,
	// and each cell's ring owner (the gateway's routing is recomputed
	// here from the same inputs, so the audit is independent of it). ---
	cells := make([]geo.Point, cfg.Cells)
	cellOwner := make([]string, cfg.Cells)
	ownerCells := map[string][]int{}
	for i := range cells {
		cells[i] = rfenv.MetroCenter.Offset(90, 400+float64(i)*2500)
		// Owner is channel-dependent; use the first channel for victim
		// selection geometry (audits track per-batch owners exactly).
		k := cluster.RouteKey{Channel: cfg.Channels[0], Cell: cluster.CellOf(cells[i], cfg.CellDeg)}
		cellOwner[i] = gw.Ring().Owner(k)
		ownerCells[cellOwner[i]] = append(ownerCells[cellOwner[i]], i)
	}

	seq := 0
	makeBatch := func(phase, i int) (core.UploadBatch, geo.Point, rfenv.Channel) {
		ch := cfg.Channels[i%len(cfg.Channels)]
		center := cells[i%len(cells)]
		rng := rand.New(rand.NewSource(cycleSeed(cfg.Seed, phase*100003+i, ch)))
		rs := make([]dataset.Reading, 0, cfg.BatchSize)
		for j := 0; j < cfg.BatchSize; j++ {
			loc := center.Offset(rng.Float64()*360, rng.Float64()*300)
			rss := -100 + rng.Float64()
			if loc.Lon > center.Lon {
				rss = -70 + rng.Float64()
			}
			rs = append(rs, dataset.Reading{
				Seq: seq, Loc: loc, Channel: ch, Sensor: sensor.KindRTLSDR,
				Signal: features.Signal{RSSdBm: rss, CFTdB: rss - 11.3, AFTdB: rss - 13},
			})
			seq++
		}
		return core.UploadBatch{Readings: rs, CISpanDB: 0.4}, center, ch
	}
	auditBatch := func(batch core.UploadBatch) *clusterBatch {
		cb := &clusterBatch{seqsByOwner: map[string][]int{}, total: len(batch.Readings)}
		for _, r := range batch.Readings {
			k := cluster.RouteKey{Channel: r.Channel, Cell: cluster.CellOf(r.Loc, cfg.CellDeg)}
			owner := gw.Ring().Owner(k)
			cb.seqsByOwner[owner] = append(cb.seqsByOwner[owner], r.Seq)
		}
		return cb
	}
	upload := func(phase, i int) (*clusterBatch, error) {
		batch, _, _ := makeBatch(phase, i)
		if err := untilOK(ctx, fmt.Sprintf("cluster upload p%d #%d", phase, i), func() error {
			return cl.UploadCtx(ctx, batch)
		}); err != nil {
			return nil, err
		}
		return auditBatch(batch), nil
	}

	ackedA := map[string][]int{} // quiesced: owed to primary AND replica
	ackedB := map[string][]int{} // kill window: owed to the primary's WAL
	ackedC := map[string][]int{} // post-kill: owed to the replica
	res := &ClusterResult{}
	fold := func(into map[string][]int, cb *clusterBatch) {
		for owner, seqs := range cb.seqsByOwner {
			into[owner] = append(into[owner], seqs...)
		}
		res.AckedTotal += cb.total
	}

	// --- Phase A: load, broadcast retrain, drain, byte-compare. ---
	for i := 0; i < cfg.Batches; i++ {
		cb, err := upload(0, i)
		if err != nil {
			return nil, err
		}
		fold(ackedA, cb)
	}
	for _, ch := range cfg.Channels {
		url := fmt.Sprintf("%s/v1/retrain?channel=%d&sensor=%d", gwTS.URL, int(ch), int(sensor.KindRTLSDR))
		if err := untilOK(ctx, "broadcast retrain", func() error {
			resp, err := http.Post(url, "", nil)
			if err != nil {
				return err
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck // drained for keep-alive
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("retrain = %d", resp.StatusCode)
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}
	for id, prim := range primaries {
		if err := prim.node.Drain(ctx); err != nil {
			return nil, fmt.Errorf("drain %s: %w", id, err)
		}
	}
	victimModels := map[rfenv.Channel][]byte{} // victim's descriptors at the quiesce point
	victim := pickVictim(ownerCells, ackedA)
	res.Victim = victim
	for id := range primaries {
		for _, ch := range cfg.Channels {
			p, pOK := fetchModel(primaries[id].ts.URL, ch)
			r, rOK := fetchModel(replicas[id].ts.URL, ch)
			if pOK != rOK || !bytes.Equal(p, r) {
				res.ModelMismatches++
			}
			if id == victim && pOK {
				victimModels[ch] = p
			}
		}
	}

	// --- Phase B: the kill window — no drain, then the primary dies.
	// FlushWAL marks the durability point (an ack without a WAL flush
	// would be the bug this harness exists to catch); the replica keeps
	// whatever the shipper managed to push, no more. ---
	for i := 0; i < cfg.LagBatches; i++ {
		cb, err := upload(1, i)
		if err != nil {
			return nil, err
		}
		fold(ackedB, cb)
	}
	primaries[victim].kill(true)

	// --- Phase C: post-kill load aimed at the victim's cells; every
	// ack must come via gateway failover to the replica. ---
	vcells := ownerCells[victim]
	if len(vcells) == 0 {
		return nil, fmt.Errorf("e2e: victim %s owns no cells (seed geometry too small)", victim)
	}
	for i := 0; i < cfg.PostBatches; i++ {
		batch, _, _ := makeBatch(2, vcells[i%len(vcells)])
		if err := untilOK(ctx, fmt.Sprintf("post-kill upload #%d", i), func() error {
			return cl.UploadCtx(ctx, batch)
		}); err != nil {
			return nil, err
		}
		fold(ackedC, auditBatch(batch))
	}
	// A model read for the victim's key must also survive via failover.
	for _, ch := range cfg.Channels {
		if _, ok := victimModels[ch]; !ok {
			continue
		}
		got, ok := fetchModel(gwTS.URL, ch)
		if !ok || !bytes.Equal(got, victimModels[ch]) {
			res.ModelMismatches++
		}
		break // one read exercises the path; the byte check is per-pair above
	}
	res.Failovers = gw.Failovers()

	// --- Audit: exports vs acked sets. ---
	for id, prim := range primaries {
		if id == victim {
			continue
		}
		if err := prim.node.Drain(ctx); err != nil {
			return nil, fmt.Errorf("drain survivor %s: %w", id, err)
		}
		have, err := exportSeqs(prim.ts.URL, cfg.Channels)
		if err != nil {
			return nil, err
		}
		res.LostOnSurvivors += countMissing(have, ackedA[id], ackedB[id], ackedC[id])
	}
	haveReplica, err := exportSeqs(replicas[victim].ts.URL, cfg.Channels)
	if err != nil {
		return nil, err
	}
	res.LostOnReplica = countMissing(haveReplica, ackedA[victim], ackedC[victim])

	// Restart the victim's primary from its data dir alone: WAL replay
	// must surface every pre-kill ack, and rebuild the descriptors at
	// the persisted versions byte-identically.
	restarted, err := openNode(victim+"-restarted", primaries[victim].dir, nil)
	if err != nil {
		return nil, fmt.Errorf("restart victim: %w", err)
	}
	defer func() {
		restarted.ts.Close()
		restarted.node.Close()
	}()
	havePrimary, err := exportSeqs(restarted.ts.URL, cfg.Channels)
	if err != nil {
		return nil, err
	}
	res.LostAfterRestart = countMissing(havePrimary, ackedA[victim], ackedB[victim])
	for ch, want := range victimModels {
		got, ok := fetchModel(restarted.ts.URL, ch)
		if !ok || !bytes.Equal(got, want) {
			res.RestartModelMismatches++
		}
	}
	return res, nil
}

// pickVictim chooses the shard owning the most quiesced acks, favoring
// one that also owns cells (so phase C has somewhere to aim).
func pickVictim(ownerCells map[string][]int, ackedA map[string][]int) string {
	best, bestN := "", -1
	ids := make([]string, 0, len(ownerCells))
	for id := range ownerCells {
		ids = append(ids, id)
	}
	sort.Strings(ids) // deterministic tie-break
	for _, id := range ids {
		if n := len(ackedA[id]); n > bestN {
			best, bestN = id, n
		}
	}
	return best
}

// fetchModel downloads one encoded descriptor directly from a node (or
// the gateway); ok is false when the node has no model for the channel.
func fetchModel(baseURL string, ch rfenv.Channel) ([]byte, bool) {
	resp, err := http.Get(fmt.Sprintf("%s/v1/model?channel=%d&sensor=%d", baseURL, int(ch), int(sensor.KindRTLSDR)))
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return nil, false
	}
	return body, true
}

// exportSeqs pulls every store export off a node and returns the set of
// reading sequence numbers it holds.
func exportSeqs(baseURL string, channels []rfenv.Channel) (map[int]bool, error) {
	have := map[int]bool{}
	for _, ch := range channels {
		resp, err := http.Get(fmt.Sprintf("%s/v1/export?channel=%d&sensor=%d", baseURL, int(ch), int(sensor.KindRTLSDR)))
		if err != nil {
			return nil, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			continue // this node never saw the channel
		}
		if err != nil || resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("export ch%d from %s: status %d, err %v", int(ch), baseURL, resp.StatusCode, err)
		}
		rs, err := dataset.ReadCSV(bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		for _, r := range rs {
			have[r.Seq] = true
		}
	}
	return have, nil
}

// countMissing counts acked seqs absent from have.
func countMissing(have map[int]bool, ackedSets ...[]int) int {
	missing := 0
	for _, set := range ackedSets {
		for _, s := range set {
			if !have[s] {
				missing++
			}
		}
	}
	return missing
}
