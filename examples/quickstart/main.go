// Quickstart: build the metro RF world, run a small war-driving campaign,
// label it with the FCC rule, train a Waldo model, and classify a few
// locations — the whole §3 pipeline in one file.
package main

import (
	"fmt"
	"log"

	waldo "github.com/wsdetect/waldo"
)

func main() {
	// 1. The RF world: nine TV channels over a 700 km² metro area.
	env, err := waldo.BuildMetroEnvironment(42)
	if err != nil {
		log.Fatal(err)
	}

	// 2. A measurement campaign: a war-driving route sampled by the $15
	// RTL-SDR (plus USRP and spectrum analyzer by default).
	campaign, err := waldo.RunCampaign(waldo.CampaignSpec{
		Env:      env,
		Samples:  1200,
		Channels: []waldo.Channel{47},
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	readings := campaign.Readings(47, waldo.SensorRTLSDR)
	fmt.Printf("campaign: %d RTL-SDR readings on channel 47\n", len(readings))

	// 3. Algorithm 1: −84 dBm decodability + 6 km protection.
	labels, err := waldo.LabelReadings(readings, waldo.LabelConfig{})
	if err != nil {
		log.Fatal(err)
	}
	safe := 0
	for _, l := range labels {
		if l == waldo.LabelSafe {
			safe++
		}
	}
	fmt.Printf("labels: %.1f%% of locations are white space\n", 100*float64(safe)/float64(len(labels)))

	// 4. The Model Constructor: three localities, SVM on location + RSS
	// + CFT.
	model, err := waldo.BuildModel(readings, labels, waldo.ConstructorConfig{
		ClusterK:   3,
		Classifier: waldo.ClassifierSVM,
		Features:   waldo.FeaturesLocationRSSCFT,
		Seed:       2,
	})
	if err != nil {
		log.Fatal(err)
	}
	size, err := waldo.EncodedModelSize(model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %d localities, %d-byte descriptor\n", model.NumLocalities(), size)

	// 5. Classify: a point deep in channel 47's coverage (northeast) and
	// one on the quiet far side (southwest).
	correct := 0
	for i, r := range readings {
		got, err := model.ClassifyReading(r)
		if err != nil {
			log.Fatal(err)
		}
		if got == labels[i] {
			correct++
		}
	}
	fmt.Printf("training-set agreement: %.1f%%\n", 100*float64(correct)/float64(len(readings)))

	ne := readings[0].Loc.Offset(45, 100)
	label, err := model.Classify(ne, waldo.Signal{RSSdBm: -70, CFTdB: -81, AFTdB: -83})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("strong signal near the tower → %v\n", label)
}
