package ml

import (
	"math"
	"testing"
)

func TestCheckTrainingSet(t *testing.T) {
	good := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	labels := []int{Positive, Negative, Positive}
	dim, err := CheckTrainingSet(good, labels)
	if err != nil || dim != 2 {
		t.Fatalf("valid set rejected: dim=%d err=%v", dim, err)
	}

	cases := []struct {
		name string
		x    [][]float64
		y    []int
	}{
		{"empty", nil, nil},
		{"length mismatch", good, []int{1, -1}},
		{"zero dim", [][]float64{{}, {}}, []int{1, -1}},
		{"ragged", [][]float64{{1, 2}, {3}}, []int{1, -1}},
		{"nan", [][]float64{{1, math.NaN()}, {3, 4}}, []int{1, -1}},
		{"inf", [][]float64{{1, math.Inf(1)}, {3, 4}}, []int{1, -1}},
		{"bad label", good, []int{1, 2, -1}},
		{"single class", good, []int{1, 1, 1}},
	}
	for _, tt := range cases {
		if _, err := CheckTrainingSet(tt.x, tt.y); err == nil {
			t.Errorf("%s: expected error", tt.name)
		}
	}
}

func TestStandardizer(t *testing.T) {
	x := [][]float64{{0, 10}, {2, 10}, {4, 10}}
	std, err := FitStandardizer(x)
	if err != nil {
		t.Fatal(err)
	}
	if std.Dim() != 2 {
		t.Fatalf("dim = %d", std.Dim())
	}
	z, err := std.Transform([]float64{2, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(z[0]) > 1e-12 {
		t.Errorf("mean point should transform to 0, got %v", z[0])
	}
	// Constant feature: centered, unit scale.
	if z[1] != 0 {
		t.Errorf("constant feature should center to 0, got %v", z[1])
	}
	zAll, err := std.TransformAll(x)
	if err != nil {
		t.Fatal(err)
	}
	// Column 0 must have zero mean and (population) unit variance.
	var mean, ss float64
	for _, row := range zAll {
		mean += row[0]
	}
	mean /= 3
	for _, row := range zAll {
		ss += (row[0] - mean) * (row[0] - mean)
	}
	if math.Abs(mean) > 1e-12 || math.Abs(ss/3-1) > 1e-12 {
		t.Errorf("standardized column: mean=%v var=%v", mean, ss/3)
	}
	if _, err := std.Transform([]float64{1}); err == nil {
		t.Error("dim mismatch should fail")
	}
}

func TestStandardizerRoundTripParams(t *testing.T) {
	x := [][]float64{{1, -5}, {3, 5}, {5, 15}}
	std, err := FitStandardizer(x)
	if err != nil {
		t.Fatal(err)
	}
	mean, scale := std.Params()
	clone, err := NewStandardizerFromParams(mean, scale)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := std.Transform([]float64{2, 0})
	b, _ := clone.Transform([]float64{2, 0})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("clone differs: %v vs %v", a, b)
		}
	}
	if _, err := NewStandardizerFromParams([]float64{1}, []float64{0}); err == nil {
		t.Error("zero scale should be rejected")
	}
	if _, err := NewStandardizerFromParams([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should be rejected")
	}
}

func TestStandardizerErrors(t *testing.T) {
	if _, err := FitStandardizer(nil); err == nil {
		t.Error("empty matrix should fail")
	}
	if _, err := FitStandardizer([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix should fail")
	}
}
