package cluster

import (
	"fmt"
	"testing"

	"github.com/wsdetect/waldo/internal/rfenv"
)

// testKeys spreads n route keys over the TV band and a metro-scale cell
// grid, deterministically.
func testKeys(n int) []RouteKey {
	keys := make([]RouteKey, n)
	for i := range keys {
		keys[i] = RouteKey{
			Channel: rfenv.Channel(21 + i%30),
			Cell:    Cell{X: int32(i / 97), Y: int32(i % 97)},
		}
	}
	return keys
}

// TestRingDistribution checks the load-balance claim the vnode count is
// chosen for: across 10k keys on a 4-shard ring at the default 128
// vnodes, no shard's share deviates from the mean by 10% or more.
func TestRingDistribution(t *testing.T) {
	nodes := []string{"s0", "s1", "s2", "s3"}
	ring, err := NewRing(RingConfig{Seed: 1}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	keys := testKeys(10000)
	for _, k := range keys {
		counts[ring.Owner(k)]++
	}
	mean := float64(len(keys)) / float64(len(nodes))
	for _, n := range nodes {
		dev := float64(counts[n]) - mean
		if dev < 0 {
			dev = -dev
		}
		t.Logf("%s: %d keys (dev %.1f%%)", n, counts[n], 100*dev/mean)
		if dev >= 0.10*mean {
			t.Errorf("node %s owns %d keys, deviates %.1f%% from mean %.0f (want <10%%)",
				n, counts[n], 100*dev/mean, mean)
		}
	}
}

// TestRingDeterminism checks that placement is a pure function of
// (config, member set): rebuilding the ring — also from a permuted
// member list, as after a process restart with a reordered flag — yields
// identical owners, and specific golden keys stay pinned to the owners
// every deployed gateway must agree on.
func TestRingDeterminism(t *testing.T) {
	cfg := RingConfig{Seed: 42}
	a, err := NewRing(cfg, []string{"s0", "s1", "s2", "s3", "s4"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(cfg, []string{"s3", "s1", "s4", "s0", "s2"})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(10000) {
		if ao, bo := a.Owner(k), b.Owner(k); ao != bo {
			t.Fatalf("key %v: owner %q on ring A, %q on rebuilt ring B", k, ao, bo)
		}
	}
	// Golden pins: if these move, placement changed and every deployed
	// cluster re-rings (a full data migration). Do not update casually.
	golden := []struct {
		key  RouteKey
		want string
	}{
		{RouteKey{Channel: 21, Cell: Cell{X: 0, Y: 0}}, "s0"},
		{RouteKey{Channel: 39, Cell: Cell{X: 674, Y: -1688}}, "s3"},
		{RouteKey{Channel: 51, Cell: Cell{X: -3, Y: 7}}, "s3"},
	}
	for _, g := range golden {
		if got := a.Owner(g.key); got != g.want {
			t.Errorf("golden key %v: owner %q, want %q", g.key, got, g.want)
		}
	}
	if got := a.OwnerN(golden[0].key, 2); len(got) != 2 || got[0] != a.Owner(golden[0].key) || got[1] == got[0] {
		t.Errorf("OwnerN(2) = %v: want owner first, then a distinct member", got)
	}
}

// TestRingMovement checks the consistent-hashing contract on membership
// change: adding or removing one of N shards moves roughly 1/N of keys,
// and every moved key moves to (join) or from (leave) the changed shard
// — never between surviving shards.
func TestRingMovement(t *testing.T) {
	cfg := RingConfig{Seed: 7}
	var nodes []string
	for i := 0; i < 8; i++ {
		nodes = append(nodes, fmt.Sprintf("shard-%d", i))
	}
	base, err := NewRing(cfg, nodes)
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(10000)

	t.Run("join", func(t *testing.T) {
		grown, err := NewRing(cfg, append(append([]string(nil), nodes...), "shard-8"))
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, k := range keys {
			was, now := base.Owner(k), grown.Owner(k)
			if was == now {
				continue
			}
			moved++
			if now != "shard-8" {
				t.Fatalf("key %v moved %q→%q: joins must only move keys to the new shard", k, was, now)
			}
		}
		checkMovedFraction(t, moved, len(keys), len(nodes)+1)
	})

	t.Run("leave", func(t *testing.T) {
		shrunk, err := NewRing(cfg, nodes[:len(nodes)-1])
		if err != nil {
			t.Fatal(err)
		}
		gone := nodes[len(nodes)-1]
		moved := 0
		for _, k := range keys {
			was, now := base.Owner(k), shrunk.Owner(k)
			if was == now {
				continue
			}
			moved++
			if was != gone {
				t.Fatalf("key %v moved %q→%q: leaves must only move the departed shard's keys", k, was, now)
			}
		}
		checkMovedFraction(t, moved, len(keys), len(nodes))
	})
}

// checkMovedFraction asserts moved ≈ total/n: more than zero (the change
// did something) and at most twice the ideal share (consistent hashing,
// not rehash-the-world).
func checkMovedFraction(t *testing.T, moved, total, n int) {
	t.Helper()
	ideal := total / n
	t.Logf("moved %d of %d keys (ideal %d)", moved, total, ideal)
	if moved == 0 {
		t.Fatal("no keys moved on membership change")
	}
	if moved > 2*ideal {
		t.Errorf("moved %d keys, want ≤ %d (2× the ideal 1/%d share)", moved, 2*ideal, n)
	}
}
