#!/usr/bin/env bash
# Compares two benchmark reports and fails when any measurement present
# in both regressed by more than the threshold (default 15%).
#
# Two input formats are understood, detected per file:
#
#   - waldo-benchjson reports (BENCH_<n>.json): compared on ns/op per
#     benchmark name.
#   - bench_e2e/v1 trajectories (BENCH_E2E.json from waldo-bench-e2e):
#     flattened via `waldo-benchjson -extract-e2e` into per-endpoint p99
#     and GC-pause-p99 keys (values in ns) and compared on those.
#
# With two files, each contributes its latest run. With ONE file that is
# an e2e trajectory, the previous run (-run -2) is the baseline and the
# latest (-run -1) is the candidate — the `make bench-e2e` append-only
# workflow needs no separate baseline file:
#
#   scripts/bench_regress.sh BENCH_7.baseline.json BENCH_7.json
#   scripts/bench_regress.sh BENCH_E2E.json            # last two runs
#
# The gate fails loudly (exit 2) rather than passing vacuously when a
# baseline is missing, unreadable, or contains no measurements, and
# (exit 1) when a baseline measurement disappears from the candidate —
# a deleted benchmark silently shrinks coverage. Set
# BENCH_REGRESS_ALLOW_MISSING=1 to permit intentional removals.
#
# Usage: scripts/bench_regress.sh BASELINE.json [CURRENT.json] [threshold-pct]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"

if [ $# -lt 1 ]; then
    echo "usage: $0 BASELINE.json [CURRENT.json] [threshold-pct]" >&2
    exit 2
fi

is_e2e() {
    grep -q '"format": *"bench_e2e' "$1"
}

BASE=$1
if [ $# -ge 2 ] && [[ ! $2 =~ ^[0-9]+$ ]]; then
    CURR=$2
    THRESH=${3:-15}
    SINGLE=0
else
    # Single-file mode (a bare numeric second arg is the threshold):
    # baseline and candidate are consecutive runs of one e2e trajectory.
    CURR=$1
    THRESH=${2:-15}
    SINGLE=1
fi

for f in "$BASE" "$CURR"; do
    if [ ! -r "$f" ]; then
        echo "bench_regress: cannot read $f — no baseline means no gate; refusing to pass vacuously" >&2
        exit 2
    fi
done

if [ "$SINGLE" -eq 1 ] && ! is_e2e "$BASE"; then
    echo "bench_regress: single-file mode needs a bench_e2e trajectory, got $BASE" >&2
    exit 2
fi

# extract FILE RUNIDX: emit "key value-in-ns" pairs. RUNIDX only applies
# to e2e trajectories (negative counts back from the latest run). For
# waldo-benchjson reports the format is our own tool's stable
# MarshalIndent output, so line-oriented parsing is safe here.
extract() {
    if is_e2e "$1"; then
        go run "$ROOT/cmd/waldo-benchjson" -extract-e2e -run "$2" < "$1"
    else
        awk '
            /"name":/ {
                gsub(/.*"name": *"|",?$/, "")
                name = $0
            }
            /"ns_per_op":/ {
                gsub(/.*"ns_per_op": *|,?$/, "")
                if (name != "") { print name, $0; name = "" }
            }
        ' "$1"
    fi
}

BASE_RUN=-1
[ "$SINGLE" -eq 1 ] && BASE_RUN=-2

TMP_BASE=/tmp/bench_regress_base.$$
TMP_CURR=/tmp/bench_regress_curr.$$
trap 'rm -f "$TMP_BASE" "$TMP_CURR"' EXIT

extract "$BASE" "$BASE_RUN" | sort > "$TMP_BASE"
extract "$CURR" -1 | sort > "$TMP_CURR"

if [ ! -s "$TMP_BASE" ]; then
    echo "bench_regress: baseline $BASE yielded no measurements — refusing to pass vacuously" >&2
    exit 2
fi
if [ ! -s "$TMP_CURR" ]; then
    echo "bench_regress: candidate $CURR yielded no measurements" >&2
    exit 2
fi

MISSING=$(join -v1 <(cut -d' ' -f1 "$TMP_BASE") <(cut -d' ' -f1 "$TMP_CURR") || true)
if [ -n "$MISSING" ] && [ "${BENCH_REGRESS_ALLOW_MISSING:-0}" != "1" ]; then
    echo "bench_regress: measurements in baseline but missing from candidate:" >&2
    echo "$MISSING" | sed 's/^/  /' >&2
    echo "bench_regress: a disappearing benchmark shrinks gate coverage; set BENCH_REGRESS_ALLOW_MISSING=1 if intentional" >&2
    exit 1
fi

FAILED=$(join "$TMP_BASE" "$TMP_CURR" | awk -v t="$THRESH" '
    {
        base = $2; curr = $3
        if (base > 0) {
            pct = (curr - base) * 100.0 / base
            printf "  %-50s %12.0f -> %12.0f ns  (%+.1f%%)%s\n",
                $1, base, curr, pct, (pct > t ? "  REGRESSED" : "")
            if (pct > t) bad++
        }
    }
    END { exit bad > 0 ? 1 : 0 }
') && STATUS=0 || STATUS=1
echo "$FAILED"

if [ "$STATUS" -ne 0 ]; then
    echo "bench_regress: regression beyond ${THRESH}% detected" >&2
    exit 1
fi
echo "bench_regress: OK (threshold ${THRESH}%)"
