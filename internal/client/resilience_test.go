package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/wsdetect/waldo/internal/core"
	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/faultinject"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
	"github.com/wsdetect/waldo/internal/telemetry"
)

// noSleep records requested backoff waits without actually waiting, so
// retry tests run in microseconds and can assert the exact schedule.
func noSleep() (func(context.Context, time.Duration) error, *[]time.Duration) {
	var mu sync.Mutex
	var waits []time.Duration
	return func(_ context.Context, d time.Duration) error {
		mu.Lock()
		waits = append(waits, d)
		mu.Unlock()
		return nil
	}, &waits
}

// flakyUploads serves POST /v1/readings: the first fail requests get
// status, the rest succeed with 204. headers are added to every failure.
func flakyUploads(t *testing.T, fail int, status int, headers map[string]string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := hits.Add(1)
		if int(n) <= fail {
			for k, v := range headers {
				w.Header().Set(k, v)
			}
			w.WriteHeader(status)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

// uploadOnce sends a minimal syntactically-valid batch; the stub servers
// in these tests never validate the payload.
func uploadOnce(t *testing.T, c *Client) error {
	t.Helper()
	batch := core.UploadBatch{
		CISpanDB: 0.1,
		Readings: []dataset.Reading{{Seq: 1, Channel: 47, Sensor: sensor.KindRTLSDR}},
	}
	return c.UploadCtx(context.Background(), batch)
}

func TestNewAvoidsDefaultClient(t *testing.T) {
	c, err := New("http://localhost:1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.httpc == http.DefaultClient {
		t.Fatal("New fell back to http.DefaultClient")
	}
	if c.httpc.Timeout != 10*time.Second {
		t.Errorf("default client timeout = %v, want 10s", c.httpc.Timeout)
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	ts, hits := flakyUploads(t, 2, http.StatusInternalServerError, nil)
	sleep, waits := noSleep()
	reg := telemetry.New()
	c, err := NewWithConfig(ts.URL, Config{
		Retry: RetryPolicy{MaxAttempts: 4, BaseDelay: 8 * time.Millisecond, MaxDelay: 64 * time.Millisecond, Seed: 1},
		Sleep: sleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.SetMetrics(reg)
	if err := uploadOnce(t, c); err != nil {
		t.Fatalf("upload after transient failures: %v", err)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3", got)
	}
	if got := reg.Counter("waldo_client_retries_total", "").Value(); got != 2 {
		t.Errorf("retries metric = %d, want 2", got)
	}
	// Backoff schedule: retry r waits in [0.5, 1.0] × BaseDelay·2^r.
	if len(*waits) != 2 {
		t.Fatalf("recorded %d waits, want 2: %v", len(*waits), *waits)
	}
	for r, d := range *waits {
		step := 8 * time.Millisecond << r
		if d < step/2 || d > step {
			t.Errorf("retry %d waited %v, want in [%v, %v]", r, d, step/2, step)
		}
	}
}

func TestRetryExhaustion(t *testing.T) {
	ts, hits := flakyUploads(t, 1<<30, http.StatusInternalServerError, nil)
	sleep, _ := noSleep()
	c, err := NewWithConfig(ts.URL, Config{
		Retry: RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond},
		Sleep: sleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = uploadOnce(t, c)
	if err == nil {
		t.Fatal("persistent 500s did not surface an error")
	}
	if !strings.Contains(err.Error(), "retries exhausted") {
		t.Errorf("error = %v, want retries-exhausted", err)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want exactly MaxAttempts=3", got)
	}
}

func TestRetryAfterFloorsBackoff(t *testing.T) {
	tests := []struct {
		name     string
		maxDelay time.Duration
		want     time.Duration
	}{
		{"floors to hint", 2 * time.Second, time.Second},
		{"capped by MaxDelay", 400 * time.Millisecond, 400 * time.Millisecond},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ts, _ := flakyUploads(t, 1, http.StatusTooManyRequests, map[string]string{"Retry-After": "1"})
			sleep, waits := noSleep()
			c, err := NewWithConfig(ts.URL, Config{
				Retry: RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: tt.maxDelay},
				Sleep: sleep,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := uploadOnce(t, c); err != nil {
				t.Fatal(err)
			}
			if len(*waits) != 1 || (*waits)[0] != tt.want {
				t.Errorf("waits = %v, want exactly [%v]", *waits, tt.want)
			}
		})
	}
}

func TestBackoffJitterDeterministic(t *testing.T) {
	schedule := func(seed uint64) []time.Duration {
		ts, _ := flakyUploads(t, 1<<30, http.StatusInternalServerError, nil)
		sleep, waits := noSleep()
		c, err := NewWithConfig(ts.URL, Config{
			Retry: RetryPolicy{MaxAttempts: 6, BaseDelay: time.Millisecond, Seed: seed},
			Sleep: sleep,
		})
		if err != nil {
			t.Fatal(err)
		}
		uploadOnce(t, c) // exhausts retries; error expected
		return *waits
	}
	a, b, other := schedule(7), schedule(7), schedule(8)
	if len(a) != 5 {
		t.Fatalf("recorded %d waits, want 5", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at retry %d: %v vs %v", i, a[i], b[i])
		}
	}
	same := true
	for i := range a {
		if a[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical jitter schedules")
	}
}

func TestBreakerStateTransitions(t *testing.T) {
	now := time.Unix(1700000000, 0)
	clock := func() time.Time { return now }
	var failing atomic.Bool
	failing.Store(true)
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if failing.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	t.Cleanup(ts.Close)

	sleep, _ := noSleep()
	reg := telemetry.New()
	c, err := NewWithConfig(ts.URL, Config{
		Retry:   RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond},
		Breaker: BreakerPolicy{Threshold: 3, Cooldown: time.Minute},
		Sleep:   sleep,
		Now:     clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.SetMetrics(reg)

	// Three consecutive failures trip the breaker.
	for i := 0; i < 3; i++ {
		if err := uploadOnce(t, c); err == nil {
			t.Fatal("failing server returned no error")
		}
	}
	if got := c.BreakerState(); got != "open" {
		t.Fatalf("state after %d failures = %q, want open", 3, got)
	}

	// Open: fail fast without touching the network.
	before := hits.Load()
	err = uploadOnce(t, c)
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker error = %v, want ErrBreakerOpen", err)
	}
	if hits.Load() != before {
		t.Error("open breaker let a request through")
	}
	if got := reg.Counter("waldo_client_breaker_rejected_total", "").Value(); got == 0 {
		t.Error("rejected counter not incremented")
	}

	// Cooldown elapsed, server still down: the half-open probe fails and
	// re-opens the circuit.
	now = now.Add(2 * time.Minute)
	if err := uploadOnce(t, c); err == nil {
		t.Fatal("probe against failing server returned no error")
	}
	if got := c.BreakerState(); got != "open" {
		t.Fatalf("state after failed probe = %q, want open", got)
	}

	// Cooldown elapsed, server recovered: the probe closes the circuit.
	now = now.Add(2 * time.Minute)
	failing.Store(false)
	if err := uploadOnce(t, c); err != nil {
		t.Fatalf("probe against recovered server: %v", err)
	}
	if got := c.BreakerState(); got != "closed" {
		t.Fatalf("state after successful probe = %q, want closed", got)
	}
	if got := reg.Counter("waldo_client_breaker_transitions_total", "", "to", "open").Value(); got != 2 {
		t.Errorf("transitions to open = %d, want 2", got)
	}
	if got := reg.Counter("waldo_client_breaker_transitions_total", "", "to", "closed").Value(); got != 1 {
		t.Errorf("transitions to closed = %d, want 1", got)
	}
	if got := reg.Gauge("waldo_client_breaker_state", "").Value(); got != 0 {
		t.Errorf("breaker state gauge = %v, want 0 (closed)", got)
	}
}

// TestStaleServeDuringOutage: after one successful download, a total
// outage must degrade Model/Refresh to the cached descriptor instead of
// an error — the §5 offline-operation argument.
func TestStaleServeDuringOutage(t *testing.T) {
	w := newTestWorld(t, []rfenv.Channel{47})
	// First request (the initial download) clean, everything after
	// dropped.
	script := make(faultinject.Script, 1, 1)
	tr := &faultinject.Transport{Plan: append(script, faultinject.Repeat(faultinject.Fault{Kind: faultinject.Drop}, 1<<20)...)}
	reg := telemetry.New()
	c, err := NewWithConfig(w.ts.URL, Config{
		HTTPClient: &http.Client{Transport: tr},
		Retry:      RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
		Breaker:    BreakerPolicy{Threshold: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.SetMetrics(reg)

	fresh, size, err := c.Model(47, sensor.KindRTLSDR)
	if err != nil || size == 0 {
		t.Fatalf("initial download: model=%v size=%d err=%v", fresh, size, err)
	}
	// The wire is now dead; both lookup paths must serve the cache.
	m, _, err := c.Refresh(47, sensor.KindRTLSDR)
	if err != nil {
		t.Fatalf("Refresh during outage: %v", err)
	}
	if m != fresh {
		t.Error("Refresh served a different model than the cached one")
	}
	if m2, _, err := c.Model(47, sensor.KindRTLSDR); err != nil || m2 != fresh {
		t.Errorf("Model during outage: m=%v err=%v", m2, err)
	}
	if got := reg.Counter("waldo_client_stale_served_total", "").Value(); got == 0 {
		t.Error("stale-serve not counted")
	}
	// Opting out surfaces the error instead.
	strict, err := NewWithConfig(w.ts.URL, Config{
		HTTPClient:        &http.Client{Transport: &faultinject.Transport{Plan: faultinject.Schedule{DropP: 1}}},
		Retry:             RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond},
		Breaker:           BreakerPolicy{Threshold: -1},
		DisableStaleServe: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := strict.Refresh(47, sensor.KindRTLSDR); err == nil {
		t.Error("DisableStaleServe must surface the outage")
	}
}

// TestConcurrentRefreshUploadUnderFaults hammers one client from many
// goroutines through a fault-heavy transport. Run under -race (the
// Makefile chaos target does), it checks the resilience layer's shared
// state — breaker, cache, jitter sequence, metrics — for data races;
// functionally it checks the client still converges once the fault
// window clears.
func TestConcurrentRefreshUploadUnderFaults(t *testing.T) {
	w := newTestWorld(t, []rfenv.Channel{47})
	readings := w.camp.Readings(47, sensor.KindRTLSDR)[:4]
	tr := &faultinject.Transport{Plan: faultinject.Schedule{
		Seed: 99, DropP: 0.2, ErrorP: 0.2, CorruptP: 0.1, TruncateP: 0.1,
		Window: 400,
	}}
	reg := telemetry.New()
	c, err := NewWithConfig(w.ts.URL, Config{
		HTTPClient: &http.Client{Transport: tr},
		Timeout:    2 * time.Second,
		Retry:      RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond, Seed: 5},
		Breaker:    BreakerPolicy{Threshold: 5, Cooldown: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.SetMetrics(reg)

	const workers, iters = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < iters; i++ {
				if (g+i)%2 == 0 {
					c.RefreshCtx(ctx, 47, sensor.KindRTLSDR) // errors expected under faults
				} else {
					batch := UploadFromDecision(readings, core.Decision{CISpanDB: 0.3})
					c.UploadCtx(ctx, batch)
				}
			}
		}(g)
	}
	wg.Wait()

	// The schedule has cleared (or will within a few more requests);
	// the client must converge to a working state.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, _, err := c.Refresh(47, sensor.KindRTLSDR); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered after the fault window cleared")
		}
	}
	if m, _, err := c.Model(47, sensor.KindRTLSDR); err != nil || m == nil {
		t.Fatalf("post-chaos model lookup: %v", err)
	}
}
