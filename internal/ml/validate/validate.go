// Package validate provides the evaluation harness of paper §4: k-fold
// cross-validation and the FP/FN/error metrics, with the paper's safety
// and efficiency semantics (positive class = channel vacant).
package validate

import (
	"fmt"
	"math/rand"

	"github.com/wsdetect/waldo/internal/ml"
)

// Metrics is a confusion-matrix summary. Positive = Safe (vacant).
type Metrics struct {
	// TP: predicted vacant, actually vacant.
	TP int
	// TN: predicted occupied, actually occupied.
	TN int
	// FP: predicted vacant while occupied — endangers incumbents
	// (safety; keep near zero).
	FP int
	// FN: predicted occupied while vacant — wasted white space
	// (efficiency; the metric to minimize).
	FN int
}

// Add accumulates o into m.
func (m *Metrics) Add(o Metrics) {
	m.TP += o.TP
	m.TN += o.TN
	m.FP += o.FP
	m.FN += o.FN
}

// Count records one (predicted, actual) pair.
func (m *Metrics) Count(predicted, actual int) {
	switch {
	case predicted == ml.Positive && actual == ml.Positive:
		m.TP++
	case predicted == ml.Positive && actual == ml.Negative:
		m.FP++
	case predicted == ml.Negative && actual == ml.Positive:
		m.FN++
	default:
		m.TN++
	}
}

// Total returns the number of counted samples.
func (m Metrics) Total() int { return m.TP + m.TN + m.FP + m.FN }

// FPRate is FP over actually-occupied samples (safety; paper §4.2).
func (m Metrics) FPRate() float64 {
	if m.FP+m.TN == 0 {
		return 0
	}
	return float64(m.FP) / float64(m.FP+m.TN)
}

// FNRate is FN over actually-vacant samples (efficiency; paper §4.2).
func (m Metrics) FNRate() float64 {
	if m.FN+m.TP == 0 {
		return 0
	}
	return float64(m.FN) / float64(m.FN+m.TP)
}

// ErrorRate is total misclassifications over all samples.
func (m Metrics) ErrorRate() float64 {
	if m.Total() == 0 {
		return 0
	}
	return float64(m.FP+m.FN) / float64(m.Total())
}

// String implements fmt.Stringer.
func (m Metrics) String() string {
	return fmt.Sprintf("err=%.4f fp=%.4f fn=%.4f (n=%d)", m.ErrorRate(), m.FPRate(), m.FNRate(), m.Total())
}

// KFold returns k disjoint test-index folds over n samples, shuffled with
// the given seed. Every sample appears in exactly one fold.
func KFold(n, k int, seed int64) ([][]int, error) {
	if k < 2 || n < k {
		return nil, fmt.Errorf("validate: cannot split %d samples into %d folds", n, k)
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	folds := make([][]int, k)
	for i, idx := range perm {
		f := i % k
		folds[f] = append(folds[f], idx)
	}
	return folds, nil
}

// Factory constructs a fresh untrained classifier for each fold.
type Factory func() ml.Classifier

// CrossValidate runs k-fold cross-validation: for each fold it fits a
// fresh classifier (with a standardizer fitted only on that fold's
// training data) and accumulates test metrics. This is the 10-fold
// procedure of paper §4.1.
func CrossValidate(factory Factory, x [][]float64, y []int, k int, seed int64) (Metrics, error) {
	var total Metrics
	folds, err := KFold(len(x), k, seed)
	if err != nil {
		return total, err
	}
	inTest := make([]bool, len(x))
	for f, test := range folds {
		for i := range inTest {
			inTest[i] = false
		}
		for _, i := range test {
			inTest[i] = true
		}
		var trainX [][]float64
		var trainY []int
		for i := range x {
			if !inTest[i] {
				trainX = append(trainX, x[i])
				trainY = append(trainY, y[i])
			}
		}
		m, err := TrainAndTest(factory(), trainX, trainY, pick(x, test), pick2(y, test))
		if err != nil {
			return total, fmt.Errorf("validate: fold %d: %w", f, err)
		}
		total.Add(m)
	}
	return total, nil
}

// TrainAndTest standardizes on the training set, fits cls, and evaluates
// on the test set. Single-class training sets degrade to a constant
// predictor of the training class (the correct behaviour for all-occupied
// or all-vacant localities — the "binary" clusters of §3.2).
func TrainAndTest(cls ml.Classifier, trainX [][]float64, trainY []int, testX [][]float64, testY []int) (Metrics, error) {
	var m Metrics
	if len(trainX) == 0 {
		return m, fmt.Errorf("validate: empty training set")
	}
	if len(testX) != len(testY) {
		return m, fmt.Errorf("validate: %d test rows, %d labels", len(testX), len(testY))
	}

	constLabel, isConst := constantClass(trainY)
	if isConst {
		for i := range testX {
			m.Count(constLabel, testY[i])
		}
		return m, nil
	}

	std, err := ml.FitStandardizer(trainX)
	if err != nil {
		return m, err
	}
	zTrain, err := std.TransformAll(trainX)
	if err != nil {
		return m, err
	}
	if err := cls.Fit(zTrain, trainY); err != nil {
		return m, err
	}
	for i := range testX {
		z, err := std.Transform(testX[i])
		if err != nil {
			return m, err
		}
		pred, err := cls.Predict(z)
		if err != nil {
			return m, err
		}
		m.Count(pred, testY[i])
	}
	return m, nil
}

func constantClass(y []int) (int, bool) {
	if len(y) == 0 {
		return 0, false
	}
	first := y[0]
	for _, v := range y[1:] {
		if v != first {
			return 0, false
		}
	}
	return first, true
}

func pick(x [][]float64, idx []int) [][]float64 {
	out := make([][]float64, len(idx))
	for i, j := range idx {
		out[i] = x[j]
	}
	return out
}

func pick2(y []int, idx []int) []int {
	out := make([]int, len(idx))
	for i, j := range idx {
		out[i] = y[j]
	}
	return out
}
