// Package waldo is a from-scratch Go implementation of Waldo, the local,
// low-cost TV white-space detection system of "Local and Low-Cost White
// Space Detection" (ICDCS 2017), together with every substrate the paper's
// evaluation depends on: a metro-scale RF environment simulator, models of
// the RTL-SDR / USRP B200 / spectrum-analyzer sensor hierarchy, the FCC
// Algorithm 1 labeling rule, a compact ML stack (SVM, Naive Bayes,
// k-means, KNN, CART), the central spectrum database with its HTTP model
// distribution protocol, the mobile White Space Device, and the baselines
// Waldo is compared against (conventional spectrum databases, V-Scope,
// sensing-only detection).
//
// # Quick start
//
//	env, _ := waldo.BuildMetroEnvironment(42)
//	campaign, _ := waldo.RunCampaign(waldo.CampaignSpec{Env: env, Samples: 2000, Seed: 1})
//	readings := campaign.Readings(47, waldo.SensorRTLSDR)
//	labels, _ := waldo.LabelReadings(readings, waldo.LabelConfig{})
//	model, _ := waldo.BuildModel(readings, labels, waldo.ConstructorConfig{ClusterK: 3})
//	label, _ := model.Classify(loc, signal)
//
// The exported surface is a façade over the internal packages; everything
// here is usable by downstream modules. The experiment harness that
// regenerates the paper's tables and figures lives in cmd/waldo-bench and
// the root benchmark suite (bench_test.go).
package waldo

import (
	"fmt"

	"github.com/wsdetect/waldo/internal/core"
	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/features"
	"github.com/wsdetect/waldo/internal/geo"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
	"github.com/wsdetect/waldo/internal/wardrive"
)

// Geodesy.
type (
	// Point is a WGS-84 coordinate.
	Point = geo.Point
	// BBox is a lat/lon bounding box.
	BBox = geo.BBox
)

// RF environment.
type (
	// Channel is a US UHF TV channel number (14–51).
	Channel = rfenv.Channel
	// Transmitter is a licensed TV station.
	Transmitter = rfenv.Transmitter
	// Environment is the simulated ground-truth RF field.
	Environment = rfenv.Environment
	// PathLossModel predicts median propagation loss.
	PathLossModel = rfenv.PathLossModel
)

// Sensors.
type (
	// SensorKind identifies a device model.
	SensorKind = sensor.Kind
	// SensorSpec characterizes a device front end.
	SensorSpec = sensor.Spec
	// Device is a sensor instance.
	Device = sensor.Device
	// Calibration maps raw readings to dBm.
	Calibration = sensor.Calibration
)

// Sensor kinds.
const (
	SensorRTLSDR           = sensor.KindRTLSDR
	SensorUSRPB200         = sensor.KindUSRPB200
	SensorSpectrumAnalyzer = sensor.KindSpectrumAnalyzer
)

// Data model.
type (
	// Reading is one feature-extracted spectrum measurement.
	Reading = dataset.Reading
	// Label is a white-space availability class.
	Label = dataset.Label
	// LabelConfig parameterizes Algorithm 1.
	LabelConfig = dataset.LabelConfig
	// Signal holds the RSS/CFT/AFT features of one reading.
	Signal = features.Signal
	// FeatureSet selects classifier inputs.
	FeatureSet = features.Set
)

// Labels and feature sets.
const (
	LabelSafe    = dataset.LabelSafe
	LabelNotSafe = dataset.LabelNotSafe

	FeaturesLocation          = features.SetLocation
	FeaturesLocationRSS       = features.SetLocationRSS
	FeaturesLocationRSSCFT    = features.SetLocationRSSCFT
	FeaturesLocationRSSCFTAFT = features.SetLocationRSSCFTAFT
)

// Core system.
type (
	// Model is a downloadable White Space Detection Model.
	Model = core.Model
	// ConstructorConfig parameterizes the Model Constructor.
	ConstructorConfig = core.ConstructorConfig
	// ClassifierKind selects the per-locality model family.
	ClassifierKind = core.ClassifierKind
	// Detector is the streaming White Space Detector.
	Detector = core.Detector
	// DetectorConfig parameterizes it.
	DetectorConfig = core.DetectorConfig
	// Decision is a detection outcome.
	Decision = core.Decision
	// Updater is the Global Model Updater.
	Updater = core.Updater
	// UpdaterConfig parameterizes it.
	UpdaterConfig = core.UpdaterConfig
	// UploadBatch is a WSD measurement upload.
	UploadBatch = core.UploadBatch
)

// Classifier kinds and FCC constants.
const (
	ClassifierSVM       = core.KindSVM
	ClassifierNB        = core.KindNB
	ClassifierSVMExact  = core.KindSVMExact
	ClassifierLinearSVM = core.KindLinearSVM

	// ThresholdDBm is the FCC decodability threshold (−84 dBm).
	ThresholdDBm = core.ThresholdDBm
	// ProtectRadiusM is the portable-device separation (6 km).
	ProtectRadiusM = core.ProtectRadiusM
)

// Campaigns.
type (
	// Route is an ordered war-driving sample path.
	Route = wardrive.Route
	// Campaign is a collected multi-sensor dataset.
	Campaign = wardrive.Campaign
)

// Channel sets from the paper.
var (
	// MeasuredChannels are the nine campaign channels.
	MeasuredChannels = rfenv.MeasuredChannels
	// EvalChannels are the seven system-evaluation channels.
	EvalChannels = rfenv.EvalChannels
)

// BuildMetroEnvironment constructs the default 700 km² synthetic metro
// environment whose occupancy structure mirrors the paper's Atlanta
// campaign. The seed selects the shadowing realization.
func BuildMetroEnvironment(seed uint64) (*Environment, error) {
	return rfenv.BuildMetro(seed)
}

// CampaignSpec sizes a measurement campaign.
type CampaignSpec struct {
	// Env is the RF world; required.
	Env *Environment
	// Samples is the number of readings per channel per sensor; 0 means
	// the paper's 5,282.
	Samples int
	// Sensors defaults to the paper's rig (RTL-SDR, USRP, analyzer).
	Sensors []SensorSpec
	// Channels defaults to every channel with a transmitter.
	Channels []Channel
	// Seed drives the route and all measurement noise.
	Seed int64
}

// RunCampaign generates a war-driving route over the environment and
// collects readings with every sensor.
func RunCampaign(spec CampaignSpec) (*Campaign, error) {
	if spec.Env == nil {
		return nil, fmt.Errorf("waldo: nil environment")
	}
	route, err := wardrive.GenerateRoute(wardrive.RouteConfig{
		Area:    spec.Env.Area,
		Samples: spec.Samples,
		Seed:    spec.Seed,
	})
	if err != nil {
		return nil, err
	}
	return wardrive.Run(wardrive.CampaignConfig{
		Env:      spec.Env,
		Route:    route,
		Sensors:  spec.Sensors,
		Channels: spec.Channels,
		Seed:     spec.Seed + 1,
	})
}

// LabelReadings applies the FCC-derived Algorithm 1: a reading is NotSafe
// if any reading within the protection radius exceeds the decodability
// threshold.
func LabelReadings(readings []Reading, cfg LabelConfig) ([]Label, error) {
	return dataset.LabelReadings(readings, cfg)
}

// BuildModel trains a White Space Detection Model (localities
// identification + per-locality classifiers) from labeled readings of one
// channel and sensor family.
func BuildModel(readings []Reading, labels []Label, cfg ConstructorConfig) (*Model, error) {
	return core.BuildModel(readings, labels, cfg)
}

// NewDetector wraps a model with the §3.3 streaming detector (smoothing,
// outlier rejection, α-convergence).
func NewDetector(model *Model, cfg DetectorConfig) (*Detector, error) {
	return core.NewDetector(model, cfg)
}

// NewUpdater builds a Global Model Updater for one channel/sensor store.
func NewUpdater(cfg UpdaterConfig) (*Updater, error) {
	return core.NewUpdater(cfg)
}

// NewSensor returns a device of the given kind, uncalibrated.
func NewSensor(kind SensorKind) (*Device, error) {
	spec, err := sensor.SpecFor(kind)
	if err != nil {
		return nil, err
	}
	return sensor.NewDevice(spec), nil
}

// AntennaCorrectionDB is the paper's uniform +7.5 dB antenna-height
// correction factor (Hata a(h_m) across the 2 m → 10 m gap).
func AntennaCorrectionDB() float64 { return rfenv.AntennaHeightGapCorrectionDB() }
