// Package e2e is Waldo's deterministic end-to-end chaos harness. It runs
// the full pipeline in one process — war-driving campaign → central
// spectrum database → WSD client refresh/upload cycles → White Space
// Detector decisions — with fault-injection hooks on both sides of the
// HTTP wire (internal/faultinject), and renders the outcome in two
// byte-comparable artifacts: a decision log and the database's store
// contents.
//
// The harness's central claim, asserted by its tests, is the paper's §5
// resilience argument made executable: for any seeded fault schedule
// that eventually clears, the final detector decisions and the server's
// trusted stores are byte-identical to a fault-free run, and the client
// never surfaces an error while it holds a cached model. Determinism
// comes from three properties:
//
//   - every simulation RNG is derived from (Seed, cycle, channel), never
//     from a shared stream a retry could perturb;
//   - injected faults are state-safe (see faultinject): a faulted
//     request either never reaches the server or only mangles the
//     response body, so retries have exactly-once effect;
//   - the model is only retrained at the end of the run, after faults
//     have cleared, so stale-served descriptors are bit-equal to fresh
//     ones.
//
// [RunCrash] extends the same byte-identity claim to durability: it
// kills the server mid-campaign (optionally leaving a torn record at
// the tail of every WAL segment), restarts it from the data dir alone,
// and finishes the run — the decision log, store exports, and served
// model versions must still match the uninterrupted [Run]. That works
// because recovery (internal/wal) rebuilds each store in original
// append order and model rebuilds are deterministic.
package e2e

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"time"

	"github.com/wsdetect/waldo/internal/client"
	"github.com/wsdetect/waldo/internal/core"
	"github.com/wsdetect/waldo/internal/dataset"
	"github.com/wsdetect/waldo/internal/dbserver"
	"github.com/wsdetect/waldo/internal/faultinject"
	"github.com/wsdetect/waldo/internal/rfenv"
	"github.com/wsdetect/waldo/internal/sensor"
	"github.com/wsdetect/waldo/internal/telemetry"
	"github.com/wsdetect/waldo/internal/wardrive"
)

// Config parameterizes one harness run. The zero value (plus a Seed) is
// a small fault-free run on channel 47.
type Config struct {
	// Seed drives every simulation RNG in the run.
	Seed int64
	// Channels to bootstrap, serve, and scan; nil means {47}.
	Channels []rfenv.Channel
	// Samples is the bootstrap campaign size; 0 means 500.
	Samples int
	// Cycles is the number of refresh → scan → upload duty cycles;
	// 0 means 6.
	Cycles int
	// AlphaDB is the detector sensitivity; 0 means 0.5 dB.
	AlphaDB float64
	// AlphaPrimeDB is the server's upload acceptance criterion;
	// 0 means 1 dB.
	AlphaPrimeDB float64
	// ClientPlan injects faults into the client's transport; nil for a
	// clean client path.
	ClientPlan faultinject.Plan
	// ServerPlan injects faults in front of the server's handler; nil
	// for a clean server path.
	ServerPlan faultinject.Plan
	// Client overrides the WSD client's resilience parameters. The
	// harness defaults to fast chaos-friendly values (250 ms attempt
	// timeout, 1–10 ms backoff, 25 ms breaker cooldown) so fault-heavy
	// runs stay quick.
	Client client.Config
	// Server carries the database's resilience knobs (RequestTimeout,
	// MaxBodyBytes, MaxInFlight, RetryAfter); constructor, labeling,
	// and metrics fields are managed by the harness.
	Server dbserver.Config
	// MaxWall bounds the whole run; 0 means 2 minutes. A fault
	// schedule that never clears fails the run at this deadline
	// instead of hanging.
	MaxWall time.Duration
}

func (c *Config) defaults() {
	if len(c.Channels) == 0 {
		c.Channels = []rfenv.Channel{47}
	}
	if c.Samples == 0 {
		c.Samples = 500
	}
	if c.Cycles == 0 {
		c.Cycles = 6
	}
	if c.AlphaDB == 0 {
		c.AlphaDB = 0.5
	}
	if c.AlphaPrimeDB == 0 {
		c.AlphaPrimeDB = 1.0
	}
	if c.Client.Timeout == 0 {
		c.Client.Timeout = 250 * time.Millisecond
	}
	if c.Client.Retry.BaseDelay == 0 {
		c.Client.Retry.BaseDelay = time.Millisecond
	}
	if c.Client.Retry.MaxDelay == 0 {
		c.Client.Retry.MaxDelay = 10 * time.Millisecond
	}
	if c.Client.Retry.Seed == 0 {
		c.Client.Retry.Seed = uint64(c.Seed)
	}
	if c.Client.Breaker.Cooldown == 0 {
		c.Client.Breaker.Cooldown = 25 * time.Millisecond
	}
	if c.MaxWall == 0 {
		c.MaxWall = 2 * time.Minute
	}
}

// Result is one run's byte-comparable outcome plus resilience counters.
type Result struct {
	// DecisionLog is a deterministic text rendering of every detector
	// decision in the run (per-cycle and final post-retrain): two runs
	// with equal Seed and equal eventual state are byte-identical.
	DecisionLog []byte
	// StoreCSV is the concatenated per-store CSV export of the
	// database's trusted readings after the run.
	StoreCSV []byte
	// ModelVersion is the final served model version per channel
	// (post-retrain; rendered into DecisionLog too).
	ModelVersion map[rfenv.Channel]int

	// Resilience counters for assertions: client retries, stale cache
	// serves, server load sheds, and injected fault tallies.
	Retries      uint64
	StaleServed  uint64
	Shed         uint64
	ClientFaults map[faultinject.Kind]uint64
	ServerFaults map[faultinject.Kind]uint64
	// UploadsAccepted counts batches the database ingested.
	UploadsAccepted uint64
	// RefreshErrorsWhileCached counts refresh calls that surfaced an
	// error after the channel's model had already been downloaded once.
	// The client's stale-serve contract makes this always 0; the chaos
	// tests assert it.
	RefreshErrorsWhileCached uint64
}

// cycleSeed derives an independent RNG seed for one (cycle, channel)
// pair, so retries and fault timing can never perturb the simulation
// stream — the backbone of the byte-identical guarantee.
func cycleSeed(seed int64, cycle int, ch rfenv.Channel) int64 {
	x := uint64(seed)
	x = splitmix64(x ^ uint64(cycle+1)*0x9e3779b97f4a7c15)
	x = splitmix64(x ^ uint64(int(ch)+1)*0xbf58476d1ce4e5b9)
	return int64(x >> 1)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// buildWorld constructs the simulated world shared by every harness
// phase: the RF environment and the bootstrap campaign readings.
func buildWorld(cfg Config) (*rfenv.Environment, []dataset.Reading, error) {
	env, err := rfenv.BuildMetro(uint64(cfg.Seed))
	if err != nil {
		return nil, nil, err
	}
	route, err := wardrive.GenerateRoute(wardrive.RouteConfig{
		Area: env.Area, Samples: cfg.Samples, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	camp, err := wardrive.Run(wardrive.CampaignConfig{
		Env: env, Route: route,
		Sensors:  []sensor.Spec{sensor.RTLSDR()},
		Channels: cfg.Channels,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	var all []dataset.Reading
	for _, ch := range cfg.Channels {
		all = append(all, camp.Readings(ch, sensor.KindRTLSDR)...)
	}
	return env, all, nil
}

// session is one server+client incarnation within a harness run. A plain
// run uses a single session; a crash run uses two over the same data
// dir, writing into one shared decision log.
type session struct {
	cfg       Config
	env       *rfenv.Environment
	srv       *dbserver.Server
	ts        *httptest.Server
	cl        *client.Client
	clientReg *telemetry.Registry
	serverReg *telemetry.Registry
	clientTR  *faultinject.Transport
	serverMW  *faultinject.Middleware

	log             *strings.Builder
	cached          map[rfenv.Channel]bool
	uploaded        int
	errsWhileCached uint64
}

// newSession builds the server (durable when dataDir is set — recovering
// whatever the directory holds), wires the faulted HTTP path, and
// connects a fresh client. The client starts cold: a post-crash session
// re-downloads models exactly like a rebooted WSD fleet.
func newSession(cfg Config, env *rfenv.Environment, log *strings.Builder, dataDir string) (*session, error) {
	serverReg := telemetry.New()
	srvCfg := cfg.Server
	srvCfg.Constructor = core.ConstructorConfig{Classifier: core.KindNB, Seed: cfg.Seed}
	srvCfg.AlphaPrimeDB = cfg.AlphaPrimeDB
	srvCfg.Metrics = serverReg
	srvCfg.DataDir = dataDir
	srv, err := dbserver.Open(srvCfg)
	if err != nil {
		return nil, err
	}

	handler := srv.Handler()
	var serverMW *faultinject.Middleware
	if cfg.ServerPlan != nil {
		serverMW = &faultinject.Middleware{Plan: cfg.ServerPlan}
		handler = serverMW.Wrap(handler)
	}
	ts := httptest.NewServer(handler)
	var clientTR *faultinject.Transport
	ccfg := cfg.Client
	if cfg.ClientPlan != nil {
		clientTR = &faultinject.Transport{Plan: cfg.ClientPlan}
		ccfg.HTTPClient = &http.Client{Transport: clientTR}
	}
	clientReg := telemetry.New()
	cl, err := client.NewWithConfig(ts.URL, ccfg)
	if err != nil {
		ts.Close()
		return nil, err
	}
	cl.SetMetrics(clientReg)
	return &session{
		cfg: cfg, env: env, srv: srv, ts: ts, cl: cl,
		clientReg: clientReg, serverReg: serverReg,
		clientTR: clientTR, serverMW: serverMW,
		log:    log,
		cached: make(map[rfenv.Channel]bool, len(cfg.Channels)),
	}, nil
}

// runCycles drives duty cycles [from, to): refresh → scan → upload.
func (s *session) runCycles(ctx context.Context, from, to int) error {
	for cycle := from; cycle < to; cycle++ {
		for _, ch := range s.cfg.Channels {
			model, err := refreshUntil(ctx, s.cl, ch, s.cached, &s.errsWhileCached)
			if err != nil {
				return err
			}
			dec, err := scan(s.cfg, s.env, model, cycle, ch)
			if err != nil {
				return err
			}
			fmt.Fprintf(s.log, "cycle=%d channel=%d label=%v converged=%t readings=%d ci=%.6f rss=%.6f cft=%.6f aft=%.6f\n",
				cycle, int(ch), dec.Label, dec.Converged, dec.ReadingsUsed,
				dec.CISpanDB, dec.Signal.RSSdBm, dec.Signal.CFTdB, dec.Signal.AFTdB)
			if !dec.Converged || dec.CISpanDB > s.cfg.AlphaPrimeDB {
				continue
			}
			batch := uploadBatch(s.cfg, dec, cycle, ch)
			if err := untilOK(ctx, fmt.Sprintf("upload cycle %d ch %d", cycle, ch), func() error {
				return s.cl.UploadCtx(ctx, batch)
			}); err != nil {
				return err
			}
			s.uploaded++
		}
	}
	return nil
}

// epilogue retrains every channel on the grown store and takes the final
// decisions the tests compare byte-for-byte. A fault schedule may still
// be mid-window here; retrains retry until they land (they have
// exactly-once effect — a faulted request never reaches the handler),
// and the final refresh loops until the client serves the post-retrain
// version rather than a stale cache hit, so the final decisions always
// come from the same model bytes.
func (s *session) epilogue(ctx context.Context) (map[rfenv.Channel]int, error) {
	versions := make(map[rfenv.Channel]int, len(s.cfg.Channels))
	for _, ch := range s.cfg.Channels {
		if err := untilOK(ctx, "final retrain", func() error {
			return s.cl.RequestRetrainCtx(ctx, ch, sensor.KindRTLSDR)
		}); err != nil {
			return nil, err
		}
		model, err := refreshFresh(ctx, s.cl, ch, s.srv.ModelVersion(ch, sensor.KindRTLSDR))
		if err != nil {
			return nil, err
		}
		dec, err := scan(s.cfg, s.env, model, s.cfg.Cycles, ch)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(s.log, "final channel=%d label=%v converged=%t readings=%d ci=%.6f rss=%.6f cft=%.6f aft=%.6f\n",
			int(ch), dec.Label, dec.Converged, dec.ReadingsUsed,
			dec.CISpanDB, dec.Signal.RSSdBm, dec.Signal.CFTdB, dec.Signal.AFTdB)
		versions[ch] = s.srv.ModelVersion(ch, sensor.KindRTLSDR)
		fmt.Fprintf(s.log, "final channel=%d model_version=%d store=%d\n",
			int(ch), versions[ch], s.srv.StoreSize(ch, sensor.KindRTLSDR))
	}
	return versions, nil
}

// exportStores renders every store's CSV out-of-band of the chaos wire
// (a corrupt fault on an export response would mangle the CSV without
// signaling an error, so store inspection must not cross the faulted
// path).
func (s *session) exportStores() ([]byte, error) {
	var stores []byte
	for _, ch := range s.cfg.Channels {
		csv, err := export(s.srv.Handler(), ch)
		if err != nil {
			return nil, err
		}
		stores = append(stores, []byte(fmt.Sprintf("# store channel=%d\n", int(ch)))...)
		stores = append(stores, csv...)
	}
	return stores, nil
}

// addCounters folds this session's resilience counters into res.
func (s *session) addCounters(res *Result) {
	res.Retries += s.clientReg.Counter("waldo_client_retries_total", "").Value()
	res.StaleServed += s.clientReg.Counter("waldo_client_stale_served_total", "").Value()
	res.Shed += s.serverReg.Counter("waldo_dbserver_shed_total", "").Value()
	res.UploadsAccepted += uint64(s.uploaded)
	res.RefreshErrorsWhileCached += s.errsWhileCached
	if s.clientTR != nil {
		for k, v := range s.clientTR.Counts() {
			if res.ClientFaults == nil {
				res.ClientFaults = make(map[faultinject.Kind]uint64)
			}
			res.ClientFaults[k] += v
		}
	}
	if s.serverMW != nil {
		for k, v := range s.serverMW.Counts() {
			if res.ServerFaults == nil {
				res.ServerFaults = make(map[faultinject.Kind]uint64)
			}
			res.ServerFaults[k] += v
		}
	}
}

// Run executes one harness run.
func Run(cfg Config) (*Result, error) {
	cfg.defaults()
	ctx, cancel := context.WithTimeout(context.Background(), cfg.MaxWall)
	defer cancel()

	env, bootstrap, err := buildWorld(cfg)
	if err != nil {
		return nil, err
	}
	var log strings.Builder
	sess, err := newSession(cfg, env, &log, "")
	if err != nil {
		return nil, err
	}
	defer sess.ts.Close()
	if err := sess.srv.Bootstrap(bootstrap); err != nil {
		return nil, err
	}
	if err := sess.runCycles(ctx, 0, cfg.Cycles); err != nil {
		return nil, err
	}
	versions, err := sess.epilogue(ctx)
	if err != nil {
		return nil, err
	}
	stores, err := sess.exportStores()
	if err != nil {
		return nil, err
	}
	res := &Result{
		DecisionLog:  []byte(log.String()),
		StoreCSV:     stores,
		ModelVersion: versions,
	}
	sess.addCounters(res)
	return res, nil
}

// refreshUntil refreshes a channel's model until the client yields one:
// instantly when the client stale-serves or the wire is clean, and
// bounded by ctx when a fault schedule is still active. The client
// contract — never an error while a model is cached — makes the loop
// tight after the first success; errsWhileCached tallies every
// violation of that contract so tests can assert it stays zero.
func refreshUntil(ctx context.Context, cl *client.Client, ch rfenv.Channel,
	cached map[rfenv.Channel]bool, errsWhileCached *uint64) (*core.Model, error) {
	var model *core.Model
	err := untilOK(ctx, fmt.Sprintf("refresh model ch %d", int(ch)), func() error {
		m, _, err := cl.RefreshCtx(ctx, ch, sensor.KindRTLSDR)
		if err != nil && cached[ch] {
			*errsWhileCached++
		}
		if err == nil {
			cached[ch] = true
		}
		model = m
		return err
	})
	return model, err
}

// untilOK retries f until it succeeds or ctx expires. Each attempt
// advances the fault schedules (they are request-indexed), so a clearing
// schedule always terminates the loop. The short sleep between failures
// keeps the loop from busy-spinning while the circuit breaker is
// rejecting in its cooldown window (rejections don't advance the
// schedules).
func untilOK(ctx context.Context, op string, f func() error) error {
	for {
		err := f()
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return fmt.Errorf("e2e: %s: %w (last error: %v)", op, ctx.Err(), err)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// scan runs one stationary detection at a cycle-derived location with a
// cycle-derived RNG: identical in every run with the same seed,
// regardless of what the network did.
func scan(cfg Config, env *rfenv.Environment, model *core.Model, cycle int, ch rfenv.Channel) (core.Decision, error) {
	rng := rand.New(rand.NewSource(cycleSeed(cfg.Seed, cycle, ch)))
	dev := sensor.NewDevice(sensor.RTLSDR())
	if err := sensor.CalibrateAndInstall(dev, rng, sensor.CalibrationConfig{}); err != nil {
		return core.Decision{}, err
	}
	radio := &client.SimRadio{Env: env, Device: dev, Rng: rng}
	loc := env.Area.Center().Offset(float64((cycle*47+int(ch))%360), 1500+float64(cycle)*400)
	radio.SetPosition(loc)
	wsd := &client.WSD{
		Radio:    radio,
		Models:   map[rfenv.Channel]*core.Model{ch: model},
		Detector: core.DetectorConfig{AlphaDB: cfg.AlphaDB},
	}
	cs, err := wsd.SenseChannel(ch, loc)
	if err != nil {
		return core.Decision{}, err
	}
	return cs.Decision, nil
}

// uploadBatch packages a converged decision into a deterministic upload:
// the readings' sequence numbers and location are cycle-derived, and the
// signal is the decision's aggregate, so the server's store grows
// identically in every run that reaches the same decisions.
func uploadBatch(cfg Config, dec core.Decision, cycle int, ch rfenv.Channel) core.UploadBatch {
	loc := rfenv.MetroCenter.Offset(float64((cycle*47+int(ch))%360), 1500+float64(cycle)*400)
	batch := core.UploadBatch{CISpanDB: dec.CISpanDB}
	for i := 0; i < 4; i++ {
		batch.Readings = append(batch.Readings, dataset.Reading{
			Seq: cycle*1000 + i, Loc: loc, Channel: ch, Sensor: sensor.KindRTLSDR,
			Signal: dec.Signal,
		})
	}
	return batch
}

// refreshFresh refreshes until the client's cache holds exactly the
// wanted model version. Mid-outage refreshes may legitimately
// stale-serve an older descriptor; the epilogue needs the post-retrain
// one, so it keeps driving the schedule forward (each iteration issues
// real requests) until a clean fetch lands.
func refreshFresh(ctx context.Context, cl *client.Client, ch rfenv.Channel, want int) (*core.Model, error) {
	wantV := strconv.Itoa(want)
	var model *core.Model
	err := untilOK(ctx, fmt.Sprintf("final refresh ch %d", int(ch)), func() error {
		m, _, err := cl.RefreshCtx(ctx, ch, sensor.KindRTLSDR)
		if err != nil {
			return err
		}
		if got := cl.CachedModelVersion(ch, sensor.KindRTLSDR); got != wantV {
			return fmt.Errorf("stale model v%s, want v%s", got, wantV)
		}
		model = m
		return nil
	})
	return model, err
}

// export renders one store's CSV by invoking the server handler
// directly, bypassing any fault middleware on the listening socket.
func export(h http.Handler, ch rfenv.Channel) ([]byte, error) {
	url := fmt.Sprintf("/v1/export?channel=%d&sensor=%d", int(ch), int(sensor.KindRTLSDR))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	if rec.Code != http.StatusOK {
		return nil, fmt.Errorf("e2e: export: %d %s", rec.Code, rec.Body.String())
	}
	return rec.Body.Bytes(), nil
}
