// Package rfenv models the metro-scale TV-band RF environment that stands
// in for the paper's Atlanta measurement campaign: UHF channel geometry,
// empirical propagation models (Hata urban, free space, and a conservative
// FCC-curve-style model), spatially correlated log-normal shadowing
// (Gudmundson), terrain obstructions that carve white-space "pockets", and
// a transmitter registry combined into a queryable ground-truth field.
//
// The field produced here is the physical truth every sensor observes
// through its own front end; the labeling ground truth used in evaluation
// is, as in the paper, the spectrum analyzer's view of this field.
package rfenv

import "fmt"

// Channel is a US TV channel number. Waldo's campaign covers nine UHF
// channels (paper §2.1).
type Channel int

// Channel sets used throughout the reproduction, matching the paper:
// nine channels measured; channels 27 and 39 were fully occupied everywhere
// and are excluded from the system evaluation (§2.1), leaving seven.
var (
	MeasuredChannels = []Channel{15, 17, 21, 22, 27, 30, 39, 46, 47}
	EvalChannels     = []Channel{15, 17, 21, 22, 30, 46, 47}
)

// Valid reports whether c is a post-2009 US UHF TV channel (14–51).
func (c Channel) Valid() bool { return c >= 14 && c <= 51 }

// CenterFreqMHz returns the channel center frequency. US UHF channels are
// 6 MHz wide starting at 470 MHz for channel 14.
func (c Channel) CenterFreqMHz() (float64, error) {
	if !c.Valid() {
		return 0, fmt.Errorf("rfenv: channel %d outside UHF TV band (14-51)", c)
	}
	return 470 + float64(c-14)*6 + 3, nil
}

// PilotFreqMHz returns the ATSC pilot carrier frequency, 0.31 MHz above the
// channel's lower edge.
func (c Channel) PilotFreqMHz() (float64, error) {
	center, err := c.CenterFreqMHz()
	if err != nil {
		return 0, err
	}
	return center - 3 + 0.31, nil
}

// String implements fmt.Stringer.
func (c Channel) String() string { return fmt.Sprintf("ch%d", int(c)) }
