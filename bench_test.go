package waldo

// The benchmark harness regenerates every table and figure of the paper's
// evaluation. Run all of it with:
//
//	go test -bench=. -benchmem
//
// Each benchmark executes its experiment and prints the reproduced
// rows/series once (so `go test -bench=.` emits the full report), and
// reports the figure's headline quantities as custom benchmark metrics.
// The campaign size defaults to the paper's 5,282 readings per channel per
// sensor; set WALDO_BENCH_SAMPLES to scale it down for quick runs.

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/wsdetect/waldo/internal/experiments"
)

var (
	benchOnce  sync.Once
	benchSuite *experiments.Suite
	printed    sync.Map
)

func suite(b *testing.B) *experiments.Suite {
	b.Helper()
	benchOnce.Do(func() {
		samples := 5282
		if v := os.Getenv("WALDO_BENCH_SAMPLES"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				samples = n
			}
		}
		benchSuite = experiments.NewSuite(experiments.Config{Seed: 42, Samples: samples})
	})
	return benchSuite
}

// printOnce emits an experiment's report a single time per process.
func printOnce(name, report string) {
	if _, loaded := printed.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n==== %s ====\n%s\n", name, report)
	}
}

// BenchmarkCampaignGeneration measures the substrate itself: one full
// multi-sensor reading (field evaluation, I/Q synthesis, FFT, features).
func BenchmarkCampaignGeneration(b *testing.B) {
	env, err := BuildMetroEnvironment(42)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunCampaign(CampaignSpec{Env: env, Samples: 300, Channels: []Channel{47}, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(300*3, "readings/op")
}

func BenchmarkFig4SpectrumDatabaseFN(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res, err := s.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		printOnce("Fig. 4", res.Render())
		b.ReportMetric(res.MeanFNPlain, "meanFN")
		b.ReportMetric(res.MeanFPPlain, "meanFP")
	}
}

func BenchmarkFig5SensorSensitivity(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res, err := s.Fig5SensorSensitivity()
		if err != nil {
			b.Fatal(err)
		}
		printOnce("Fig. 5", res.Render())
		for _, fs := range res.Sensors {
			b.ReportMetric(fs.DetectableFloorDBm, "floor-"+fs.Kind.String())
		}
	}
}

func BenchmarkFig6DetectionTraces(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res, err := s.Fig6DetectionTraces(0)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("Fig. 6", res.Render())
		b.ReportMetric(res.Agreement[SensorRTLSDR], "rtl-agreement")
	}
}

func BenchmarkFig7LabelCorrelation(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res, err := s.Fig7LabelCorrelation()
		if err != nil {
			b.Fatal(err)
		}
		printOnce("Fig. 7", res.Render())
		b.ReportMetric(res.Median, "median-r")
	}
}

func BenchmarkSec22SafetyEfficiency(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res, err := s.Sec22SafetyEfficiency()
		if err != nil {
			b.Fatal(err)
		}
		printOnce("§2.2", res.Render())
		b.ReportMetric(res.Overall[SensorRTLSDR].FNRate(), "rtl-misdetect")
		b.ReportMetric(res.Overall[SensorUSRPB200].FNRate(), "usrp-misdetect")
	}
}

func BenchmarkFig10and11FeatureBoxplots(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res, err := s.Fig10and11FeatureBoxplots()
		if err != nil {
			b.Fatal(err)
		}
		printOnce("Figs. 10-11", res.Render())
	}
}

func BenchmarkFig12FeatureEffect(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res, err := s.Fig12FeatureEffect()
		if err != nil {
			b.Fatal(err)
		}
		printOnce("Fig. 12", res.Render())
		_, ratio := res.BestImprovement(SensorUSRPB200, experiments.VariantLegacySVM)
		b.ReportMetric(ratio, "legacy-improvement-x")
	}
}

func BenchmarkFig13LocalModels(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res, err := s.Fig13LocalModels()
		if err != nil {
			b.Fatal(err)
		}
		printOnce("Fig. 13", res.Render())
		fp1, _ := res.Rate(SensorUSRPB200, 1, FeaturesLocationRSSCFT, false)
		fp3, _ := res.Rate(SensorUSRPB200, 3, FeaturesLocationRSSCFT, false)
		b.ReportMetric(fp1, "fp-k1")
		b.ReportMetric(fp3, "fp-k3")
	}
}

func BenchmarkFig14TrainingSize(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res, err := s.Fig14TrainingSize()
		if err != nil {
			b.Fatal(err)
		}
		printOnce("Fig. 14", res.Render())
		b.ReportMetric(res.MeanErrorAt(0.25), "err-25pct")
		b.ReportMetric(res.MeanErrorAt(1.0), "err-100pct")
	}
}

func BenchmarkFig15AntennaCorrection(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res, err := s.Fig15AntennaCorrection()
		if err != nil {
			b.Fatal(err)
		}
		printOnce("Fig. 15", res.Render())
		b.ReportMetric(float64(len(res.SurvivingChannels)), "surviving-channels")
	}
}

func BenchmarkTable1VScopeComparison(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res, err := s.Table1VScopeComparison()
		if err != nil {
			b.Fatal(err)
		}
		printOnce("Table 1 / Fig. 16", res.Render())
		b.ReportMetric(res.VScope.FPRate(), "vscope-fp")
		b.ReportMetric(res.WaldoUSRP.FPRate(), "waldo-usrp-fp")
		_, ratio := res.BestErrorRatio()
		b.ReportMetric(ratio, "best-advantage-x")
	}
}

// BenchmarkFig16ErrorRateComparison aliases the Table 1 experiment (the
// figure and the table come from the same run).
func BenchmarkFig16ErrorRateComparison(b *testing.B) {
	BenchmarkTable1VScopeComparison(b)
}

func BenchmarkFig17Convergence(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res, err := s.Fig17Convergence()
		if err != nil {
			b.Fatal(err)
		}
		printOnce("Fig. 17", res.Render())
		b.ReportMetric(res.Stationary.Mean(), "stationary-s")
		b.ReportMetric(res.MobileConvergedFrac, "mobile-converged")
	}
}

func BenchmarkFig18CPUOverhead(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res, err := s.Fig18CPUOverhead()
		if err != nil {
			b.Fatal(err)
		}
		printOnce("Fig. 18", res.Render())
		b.ReportMetric(res.NormalizedPct, "duty-cycle-pct")
	}
}

func BenchmarkSec5ModelSize(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res, err := s.Sec5ModelSize()
		if err != nil {
			b.Fatal(err)
		}
		printOnce("§5 model sizes", res.Render())
		b.ReportMetric(float64(res.Bytes[ClassifierNB]), "nb-bytes")
		b.ReportMetric(float64(res.Bytes[ClassifierSVM]), "svm-bytes")
	}
}

func BenchmarkTable2Qualitative(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res, err := s.Table2Qualitative()
		if err != nil {
			b.Fatal(err)
		}
		printOnce("Table 2", res.Render())
		b.ReportMetric(res.SensingFNRate, "sensing-fn")
	}
}

func BenchmarkAblationClassifiers(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res, err := s.AblationClassifiers()
		if err != nil {
			b.Fatal(err)
		}
		printOnce("Ablation: classifiers", res.Render())
		b.ReportMetric(res.TreeTrainingError, "tree-train-err")
	}
}

func BenchmarkAblationLabeling(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res, err := s.AblationLabeling()
		if err != nil {
			b.Fatal(err)
		}
		printOnce("Ablation: labeling", res.Render())
	}
}

func BenchmarkAblationFeatureOrder(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res, err := s.AblationFeatureOrder()
		if err != nil {
			b.Fatal(err)
		}
		printOnce("Ablation: feature order", res.Render())
	}
}

// BenchmarkDetectorThroughput measures the mobile hot path: one capture
// offered to the streaming detector (the per-reading cost of Fig. 18).
func BenchmarkDetectorThroughput(b *testing.B) {
	env, err := BuildMetroEnvironment(42)
	if err != nil {
		b.Fatal(err)
	}
	camp, err := RunCampaign(CampaignSpec{Env: env, Samples: 600, Channels: []Channel{47}, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	readings := camp.Readings(47, SensorRTLSDR)
	labels, err := LabelReadings(readings, LabelConfig{})
	if err != nil {
		b.Fatal(err)
	}
	model, err := BuildModel(readings, labels, ConstructorConfig{ClusterK: 3})
	if err != nil {
		b.Fatal(err)
	}
	det, err := NewDetector(model, DetectorConfig{MaxReadings: 64})
	if err != nil {
		b.Fatal(err)
	}
	sig := readings[0].Signal
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if i%64 == 0 {
			det.Reset()
		}
		det.Offer(sig)
	}
	elapsed := time.Since(start)
	if b.N > 0 {
		b.ReportMetric(float64(elapsed.Nanoseconds())/float64(b.N), "ns/offer")
	}
}

func BenchmarkAblationInterpolation(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res, err := s.AblationInterpolation()
		if err != nil {
			b.Fatal(err)
		}
		printOnce("Ablation: interpolation family", res.Render())
	}
}

func BenchmarkAblationSafetyMargin(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res, err := s.AblationSafetyMargin()
		if err != nil {
			b.Fatal(err)
		}
		printOnce("Ablation: safety margin", res.Render())
	}
}

func BenchmarkAblationTemporalDrift(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res, err := s.AblationTemporalDrift()
		if err != nil {
			b.Fatal(err)
		}
		printOnce("Ablation: temporal drift", res.Render())
		b.ReportMetric(res.StaleTotal.ErrorRate(), "stale-err")
		b.ReportMetric(res.UpdatedTotal.ErrorRate(), "updated-err")
	}
}
